#!/bin/sh
# bench.sh — run the dispatch-path benchmarks and record the trajectory.
#
# Runs BenchmarkDispatch and BenchmarkSessionDispatch (module root) and
# BenchmarkHandoffDial (internal/frontend, pooled vs fresh-dial handoff)
# and writes the parsed results to BENCH_PR5.json next to the repo root,
# so successive PRs can diff the hot-path numbers. Usage:
#
#	scripts/bench.sh [benchtime]     # default 1s
#
# Requires only the go toolchain and awk.
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out="BENCH_PR5.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench 'BenchmarkDispatch$|BenchmarkSessionDispatch$' -benchtime "$benchtime" -run '^$' . | tee "$raw"
go test -bench 'BenchmarkHandoffDial' -benchtime "$benchtime" -run '^$' ./internal/frontend | tee -a "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^Benchmark/ && NF >= 4 && $4 == "ns/op" {
		if (n++) results = results ",\n"
		results = results sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s}", $1, $2, $3)
	}
	END {
		printf "{\n  \"date\": \"%s\",\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", date, cpu, results
	}
' "$raw" > "$out"
echo "wrote $out"
