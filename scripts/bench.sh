#!/bin/sh
# bench.sh — run the hot-path benchmarks and record the trajectory.
#
# Runs BenchmarkDispatch and BenchmarkSessionDispatch (module root)
# across -cpu 1,4 — the locked-vs-sharded dispatcher scaling matrix —
# plus BenchmarkHandoffDial (internal/frontend, pooled vs fresh-dial
# handoff) and BenchmarkRelayResponse / BenchmarkRelayRequestBody
# (internal/httprelay, the pooled-buffer relay path) with -benchmem, and
# writes the parsed results to BENCH_PR10.json next to the repo root, so
# successive PRs can diff the hot-path numbers. When the previous PR's
# report (BENCH_PR9.json) is present, benchgate.go compares the handoff
# and relay B/op columns against it and fails the run on a >15%
# allocation regression. It then invokes the saturation harness
# (cmd/capacity), which merges the end-to-end knee report into the same
# file under the "capacity" key, and — with HERD=1 — follows it with the
# thundering-herd overload experiment, recorded under "herd" with the
# well-behaved cohort's goodput and the abuser's shed counts. Usage:
#
#	scripts/bench.sh [benchtime]     # default 1s
#
# SKIP_CAPACITY=1 skips the (minutes-long) saturation sweep;
# CAPACITY_FLAGS="-smoke" runs it in smoke mode instead; HERD=1 chains
# the thundering-herd overload experiment after the sweep.
#
# Requires only the go toolchain and awk.
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-1s}"
out="BENCH_PR10.json"
baseline="BENCH_PR9.json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench 'BenchmarkDispatch$|BenchmarkSessionDispatch$' -benchtime "$benchtime" -benchmem -cpu 1,4 -run '^$' . | tee "$raw"
go test -bench 'BenchmarkHandoffDial' -benchtime "$benchtime" -benchmem -run '^$' ./internal/frontend | tee -a "$raw"
go test -bench 'BenchmarkRelayResponse$|BenchmarkRelayRequestBody$' -benchtime "$benchtime" -benchmem -run '^$' ./internal/httprelay | tee -a "$raw"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
	/^Benchmark/ && NF >= 4 && $4 == "ns/op" {
		if (n++) results = results ",\n"
		results = results sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", $1, $2, $3)
		# Custom metrics (dispatch/s, MB/s) shift the -benchmem columns,
		# so find them by unit rather than by position.
		for (i = 5; i < NF; i += 2) {
			if ($(i + 1) == "B/op")
				results = results sprintf(", \"bytes_per_op\": %s", $i)
			else if ($(i + 1) == "allocs/op")
				results = results sprintf(", \"allocs_per_op\": %s", $i)
		}
		results = results "}"
	}
	END {
		printf "{\n  \"date\": \"%s\",\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n%s\n  ]\n}\n", date, cpu, results
	}
' "$raw" > "$out"
echo "wrote $out"

if [ -f "$baseline" ]; then
	go run scripts/benchgate.go "$baseline" "$out"
fi

if [ "${SKIP_CAPACITY:-}" != "1" ]; then
	herd=""
	[ "${HERD:-}" = "1" ] && herd="-herd"
	# CAPACITY_FLAGS is intentionally word-split (e.g. "-smoke -nodes 2").
	go run ./cmd/capacity -o "$out" $herd ${CAPACITY_FLAGS:-}
fi
