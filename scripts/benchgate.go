//go:build ignore

// Benchgate is the allocation-regression gate: it compares B/op for the
// handoff and relay hot-path benchmarks between two bench.sh JSON
// reports and fails when the new numbers regress past tolerance.
//
//	go run scripts/benchgate.go BENCH_PR7.json BENCH_PR8.json
//
// A benchmark regresses when its bytes/op exceed the baseline by more
// than 15% and by more than 16 bytes absolute — the absolute floor
// keeps near-zero baselines (0 or a few words) from turning measurement
// noise into failures. Dispatcher benchmarks (ns/op-dominated, already
// tracked by eye across PRs) are out of scope; the gate watches exactly
// the paths the //lard:noalloc annotations guard. Exit status: 0 within
// tolerance, 1 regression or missing benchmark, 2 operational error.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name       string  `json:"name"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsOp   float64 `json:"allocs_per_op"`
}

// gated reports whether the benchmark belongs to the allocation-gated
// set: the handoff dial path and the relay copy paths.
func gated(name string) bool {
	return strings.HasPrefix(name, "BenchmarkHandoff") || strings.HasPrefix(name, "BenchmarkRelay")
}

func load(path string) (map[string]benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	m := make(map[string]benchmark)
	for _, b := range r.Benchmarks {
		if gated(b.Name) {
			m[b.Name] = b
		}
	}
	return m, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: go run scripts/benchgate.go BASELINE.json NEW.json")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no gated benchmarks in %s\n", os.Args[1])
		os.Exit(2)
	}

	bad := false
	for name, old := range base {
		now, ok := cur[name]
		if !ok {
			fmt.Printf("FAIL %s: present in baseline, missing from %s\n", name, os.Args[2])
			bad = true
			continue
		}
		limit := old.BytesPerOp * 1.15
		if limit < old.BytesPerOp+16 {
			limit = old.BytesPerOp + 16
		}
		switch {
		case now.BytesPerOp > limit:
			fmt.Printf("FAIL %s: %.0f B/op, baseline %.0f B/op (limit %.0f)\n",
				name, now.BytesPerOp, old.BytesPerOp, limit)
			bad = true
		case now.BytesPerOp < old.BytesPerOp:
			fmt.Printf("ok   %s: %.0f B/op, down from %.0f B/op\n",
				name, now.BytesPerOp, old.BytesPerOp)
		default:
			fmt.Printf("ok   %s: %.0f B/op (baseline %.0f)\n",
				name, now.BytesPerOp, old.BytesPerOp)
		}
	}
	if bad {
		os.Exit(1)
	}
}
