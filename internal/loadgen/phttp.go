package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/httprelay"
	"lard/internal/trace"
)

// This file is the P-HTTP client mode: the paper's Section 5 workload
// where "clients use persistent connections" and the interesting policy
// question is how many requests ride on each connection before it closes.
// Instead of net/http's opaque pooling, each simulated client speaks raw
// HTTP/1.1 over its own TCP connection, issues a bounded number of
// requests drawn from the configured distribution, and closes — framing
// every response through internal/httprelay, the same code the front
// end's relay uses.

// ConnDist names for Config.ConnDist, shared with the simulator so the
// phttp experiment's modelled workload matches the live one.
const (
	ConnDistFixed     = trace.ConnDistFixed
	ConnDistGeometric = trace.ConnDistGeometric
)

// connLenDraw is trace.ConnLenDraw with loadgen-flavoured errors.
func connLenDraw(dist string, mean int, rng *rand.Rand) (func() int, error) {
	draw, err := trace.ConnLenDraw(dist, mean, rng)
	if err != nil {
		return nil, fmt.Errorf("loadgen: %w", err)
	}
	return draw, nil
}

// runPHTTP drives the raw persistent-connection client mode.
func runPHTTP(ctx context.Context, cfg Config, clients, total int, timeout time.Duration, pace *pacer) (Stats, error) {
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return Stats{}, fmt.Errorf("loadgen: bad BaseURL: %w", err)
	}
	if u.Scheme != "http" || u.Host == "" {
		return Stats{}, fmt.Errorf("loadgen: P-HTTP mode needs an http://host:port BaseURL, got %q", cfg.BaseURL)
	}
	host := u.Host
	// Honor a BaseURL path prefix exactly like the net/http mode, which
	// fetches cfg.BaseURL+target.
	prefix := strings.TrimSuffix(u.Path, "/")
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	sources, _ := sourceIPs(cfg.SourceAddrs)

	var (
		cursor  atomic.Int64
		nOK     atomic.Uint64
		nErr    atomic.Uint64
		nShed   atomic.Uint64
		nShedRA atomic.Uint64
		nBytes  atomic.Int64
		latMu   sync.Mutex
		latAll  []time.Duration
		wg      sync.WaitGroup
		started = time.Now()
	)
	counts := &phttpCounts{nBytes: &nBytes, nShed: &nShed, nShedRA: &nShedRA}

	worker := func(id int) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed + int64(id)))
		draw, _ := connLenDraw(cfg.ConnDist, cfg.ReqsPerConn, rng)
		var local *net.TCPAddr
		if len(sources) > 0 {
			local = &net.TCPAddr{IP: sources[id%len(sources)]}
		}
		lats := make([]time.Duration, 0, 1024)
		for ctx.Err() == nil {
			// Claim up to one connection's worth of requests.
			k := int64(draw())
			first := cursor.Add(k) - k
			if first >= int64(total) {
				break
			}
			if first+k > int64(total) {
				k = int64(total) - first
			}
			n, nerr, connLats := runConn(ctx, cfg, host, prefix, first, int(k), timeout, local, counts, pace)
			nOK.Add(n)
			nErr.Add(nerr)
			lats = append(lats, connLats...)
		}
		latMu.Lock()
		latAll = append(latAll, lats...)
		latMu.Unlock()
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go worker(c)
	}
	wg.Wait()

	st := Stats{
		Requests:        nOK.Load(),
		Errors:          nErr.Load(),
		Sheds:           nShed.Load(),
		RetryAfterSheds: nShedRA.Load(),
		BytesRead:       nBytes.Load(),
		Elapsed:         time.Since(started),
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(st.Requests) / st.Elapsed.Seconds()
	}
	summarizeLatencies(&st, latAll)
	return st, nil
}

// phttpCounts bundles the run-wide atomic tallies runConn feeds.
type phttpCounts struct {
	nBytes  *atomic.Int64
	nShed   *atomic.Uint64
	nShedRA *atomic.Uint64
}

// runConn issues requests [first, first+k) of the trace on one persistent
// connection, reconnecting if the server closes early. It returns the
// success and error counts plus per-request latencies. local, when
// non-nil, binds the connection's source address (client identity).
func runConn(ctx context.Context, cfg Config, host, prefix string, first int64, k int, timeout time.Duration, local *net.TCPAddr, counts *phttpCounts, pace *pacer) (uint64, uint64, []time.Duration) {
	var ok, nerr uint64
	lats := make([]time.Duration, 0, k)
	nBytes := counts.nBytes

	var conn net.Conn
	var br *bufio.Reader
	dial := func() error {
		d := net.Dialer{Timeout: timeout, LocalAddr: local}
		var err error
		conn, err = d.Dial("tcp", host)
		if err != nil {
			return err
		}
		br = httprelay.GetReader(conn)
		return nil
	}
	// drop ends the current connection; its reader goes back to the pool
	// (this goroutine is its only user).
	drop := func() {
		conn.Close()
		conn = nil
		httprelay.PutReader(br)
		br = nil
	}
	defer func() {
		if conn != nil {
			drop()
		}
	}()

	for j := 0; j < k; j++ {
		pace.wait(ctx, first+int64(j))
		if ctx.Err() != nil {
			break
		}
		if conn == nil {
			if err := dial(); err != nil {
				if ctx.Err() != nil {
					break // cut off by the run deadline, not failed
				}
				nerr += uint64(k - j) // the rest of this connection is lost
				return ok, nerr, lats
			}
		}
		r := cfg.Trace.At(int((first + int64(j)) % int64(cfg.Trace.Len())))
		t0 := time.Now()
		if sched, paced := pace.due(first + int64(j)); paced && sched.Before(t0) {
			t0 = sched
		}
		conn.SetDeadline(time.Now().Add(timeout))
		// The final request announces the close, as a polite client does.
		connHdr := ""
		if j == k-1 {
			connHdr = "Connection: close\r\n"
		}
		if _, err := fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: %s\r\n%s\r\n", prefix+r.Target, host, connHdr); err != nil {
			if ctx.Err() != nil {
				break
			}
			nerr++
			drop()
			continue
		}
		h, err := httprelay.ReadResponseHead(br, 64<<10)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			nerr++
			drop()
			continue
		}
		n, reusable, err := httprelay.CopyResponseBody(io.Discard, br, h, "GET")
		nBytes.Add(n)
		if err == nil && h.Status == 429 {
			// Quota shed: counted separately, neither goodput nor error.
			counts.nShed.Add(1)
			if bytes.Contains(bytes.ToLower(h.Raw), []byte("retry-after:")) {
				counts.nShedRA.Add(1)
			}
			if !reusable {
				drop()
			}
			continue
		}
		if err != nil || h.Status != 200 {
			if err != nil && ctx.Err() != nil {
				break // copy cut off by the run deadline, not failed
			}
			nerr++
			drop()
			continue
		}
		ok++
		lats = append(lats, time.Since(t0))
		if !reusable {
			drop()
		}
	}
	return ok, nerr, lats
}
