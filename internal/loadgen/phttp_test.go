package loadgen

import (
	"context"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

func TestConnLenDraw(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	fixed, err := connLenDraw(ConnDistFixed, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if k := fixed(); k != 5 {
			t.Fatalf("fixed draw = %d", k)
		}
	}

	geo, err := connLenDraw(ConnDistGeometric, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	sum, n := 0, 20000
	for i := 0; i < n; i++ {
		k := geo()
		if k < 1 {
			t.Fatalf("geometric draw %d < 1", k)
		}
		sum += k
	}
	mean := float64(sum) / float64(n)
	if mean < 7 || mean > 9 {
		t.Fatalf("geometric mean = %.2f, want ≈8", mean)
	}

	if _, err := connLenDraw("weibull", 4, rng); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	// mean 0 clamps to 1 rather than dividing by zero.
	one, err := connLenDraw(ConnDistGeometric, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if k := one(); k < 1 {
		t.Fatalf("clamped draw = %d", k)
	}
}

func TestPHTTPModeBoundsRequestsPerConnection(t *testing.T) {
	var conns, served atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte("ok"))
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()

	st, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Trace:       genTrace(),
		Clients:     1,
		Requests:    20,
		KeepAlive:   true,
		ReqsPerConn: 5,
		ConnDist:    ConnDistFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 20 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if served.Load() != 20 {
		t.Fatalf("server saw %d requests", served.Load())
	}
	// 20 requests at exactly 5 per connection = 4 connections.
	if got := conns.Load(); got != 4 {
		t.Fatalf("connections = %d, want 4", got)
	}
	if st.LatencyP50 <= 0 || st.BytesRead == 0 {
		t.Fatalf("latency/bytes not recorded: %+v", st)
	}
}

func TestPHTTPModeCountsServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/b" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	st, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Trace:       genTrace(),
		Clients:     2,
		KeepAlive:   true,
		ReqsPerConn: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 4 || st.Requests != 6 {
		t.Fatalf("stats %+v, want 6 ok / 4 errors", st)
	}
}

func TestPHTTPModeRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{
		BaseURL: "http://127.0.0.1:0", Trace: genTrace(),
		KeepAlive: true, ReqsPerConn: 2, ConnDist: "nope",
	}); err == nil {
		t.Fatal("bad ConnDist accepted")
	}
	if _, err := Run(context.Background(), Config{
		BaseURL: "ftp://x", Trace: genTrace(),
		KeepAlive: true, ReqsPerConn: 2,
	}); err == nil {
		t.Fatal("non-http BaseURL accepted in P-HTTP mode")
	}
}
