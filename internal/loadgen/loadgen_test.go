package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lard/internal/trace"
)

func genTrace() *trace.Trace {
	return &trace.Trace{
		Name: "lg",
		Targets: []trace.Target{
			{Name: "/a", Size: 100},
			{Name: "/b", Size: 200},
		},
		Requests: []int32{0, 1, 0, 0, 1, 0, 1, 1, 0, 0},
	}
}

func TestRunIssuesAllRequests(t *testing.T) {
	var served atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte(strings.Repeat("x", 50)))
	}))
	defer ts.Close()

	st, err := Run(context.Background(), Config{
		BaseURL: ts.URL,
		Trace:   genTrace(),
		Clients: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 10 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if served.Load() != 10 {
		t.Fatalf("server saw %d requests", served.Load())
	}
	if st.BytesRead != 500 {
		t.Fatalf("BytesRead = %d", st.BytesRead)
	}
	if st.Throughput <= 0 {
		t.Fatalf("Throughput = %v", st.Throughput)
	}
	if st.LatencyP50 <= 0 || st.LatencyMax < st.LatencyP95 || st.LatencyP95 < st.LatencyP50 {
		t.Fatalf("latency ordering: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestRunCountsErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/b" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	st, err := Run(context.Background(), Config{BaseURL: ts.URL, Trace: genTrace(), Clients: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 4 { // four /b requests in the trace
		t.Fatalf("Errors = %d, want 4", st.Errors)
	}
	if st.Requests != 6 {
		t.Fatalf("Requests = %d, want 6", st.Requests)
	}
}

func TestRunRequestBudgetWrapsTrace(t *testing.T) {
	var served atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	st, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Trace:    genTrace(),
		Clients:  2,
		Requests: 25, // wraps the 10-entry trace
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 25 || served.Load() != 25 {
		t.Fatalf("requests %d served %d", st.Requests, served.Load())
	}
}

func TestRunContextCancellation(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st, err := Run(ctx, Config{BaseURL: ts.URL, Trace: genTrace(), Clients: 2, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not stop the run promptly")
	}
	if st.Requests != 0 {
		t.Fatalf("blocked server produced %d successes", st.Requests)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := Run(context.Background(), Config{BaseURL: "http://x"}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestSummarizeLatenciesEmpty(t *testing.T) {
	var st Stats
	summarizeLatencies(&st, nil)
	if st.LatencyAvg != 0 {
		t.Fatal("empty latencies produced averages")
	}
}

func TestKeepAliveMode(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	defer ts.Close()
	st, err := Run(context.Background(), Config{
		BaseURL:   ts.URL,
		Trace:     genTrace(),
		Clients:   1,
		KeepAlive: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 10 {
		t.Fatalf("Requests = %d", st.Requests)
	}
	// One client with keep-alive: a single connection carries all ten
	// requests.
	if conns.Load() != 1 {
		t.Fatalf("connections = %d, want 1", conns.Load())
	}
}

func TestRatePacesOfferedLoad(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	// 20 requests at 200 req/s must take ~100ms; the closed loop against
	// a local echo server would finish in a few milliseconds.
	start := time.Now()
	st, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Trace:    genTrace(),
		Clients:  4,
		Requests: 20,
		Rate:     200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 20 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := time.Since(start); got < 80*time.Millisecond {
		t.Fatalf("paced run finished in %v, want >= ~95ms (rate not applied)", got)
	}
}

func TestDurationEndsTimedRun(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	start := time.Now()
	st, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Trace:    genTrace(),
		Clients:  2,
		Rate:     100,
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got > 2*time.Second {
		t.Fatalf("timed run took %v", got)
	}
	// No request budget was set: the clock ended the run, having looped
	// the 10-entry trace as needed, without counting the cutoff as errors.
	if st.Requests == 0 {
		t.Fatal("timed run issued no requests")
	}
	if st.Errors != 0 {
		t.Fatalf("deadline cutoff counted as %d errors", st.Errors)
	}
	if st.LatencyP99 < st.LatencyP95 || st.LatencyMax < st.LatencyP99 {
		t.Fatalf("latency ordering: %+v", st)
	}
}

func TestBacklogSurfacesInLatency(t *testing.T) {
	// The coordinated-omission regression: offer far more load than the
	// server can absorb and the schedule backlog MUST appear in the
	// latency percentiles — open-loop latency is measured from each
	// request's scheduled send time, not from when a free client finally
	// got around to it. Two clients against a 5ms server cap service at
	// ~400 req/s; offering 4000 req/s for 40 requests puts the tail of
	// the schedule ~90ms behind, dwarfing the 5ms service time.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(5 * time.Millisecond)
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	st, err := Run(context.Background(), Config{
		BaseURL:  ts.URL,
		Trace:    genTrace(),
		Clients:  2,
		Requests: 40,
		Rate:     4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 40 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if st.LatencyP99 < 30*time.Millisecond {
		t.Fatalf("p99 = %v under 10x overload; backlog hidden (coordinated omission)", st.LatencyP99)
	}
}

func TestRatePacesPHTTPMode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	start := time.Now()
	st, err := Run(context.Background(), Config{
		BaseURL:     ts.URL,
		Trace:       genTrace(),
		Clients:     2,
		Requests:    20,
		Rate:        200,
		KeepAlive:   true,
		ReqsPerConn: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 20 || st.Errors != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := time.Since(start); got < 80*time.Millisecond {
		t.Fatalf("paced P-HTTP run finished in %v, want >= ~95ms", got)
	}
}

func TestSourceAddrsBindClientIdentities(t *testing.T) {
	// Each simulated client must present its assigned loopback source IP,
	// in both the net/http and raw P-HTTP modes.
	seen := make(map[string]bool)
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host, _, _ := net.SplitHostPort(r.RemoteAddr)
		mu.Lock()
		seen[host] = true
		mu.Unlock()
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	for _, phttp := range []bool{false, true} {
		mu.Lock()
		for k := range seen {
			delete(seen, k)
		}
		mu.Unlock()
		cfg := Config{
			BaseURL:     ts.URL,
			Trace:       genTrace(),
			Clients:     2,
			Requests:    10,
			SourceAddrs: []string{"127.0.0.2", "127.0.0.3"},
		}
		if phttp {
			cfg.KeepAlive = true
			cfg.ReqsPerConn = 3
		}
		st, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Requests != 10 || st.Errors != 0 {
			t.Fatalf("phttp=%v stats %+v", phttp, st)
		}
		mu.Lock()
		ok := seen["127.0.0.2"] && seen["127.0.0.3"] && !seen["127.0.0.1"]
		got := fmt.Sprint(seen)
		mu.Unlock()
		if !ok {
			t.Fatalf("phttp=%v source identities seen: %v", phttp, got)
		}
	}
}

func TestSourceAddrsValidated(t *testing.T) {
	_, err := Run(context.Background(), Config{
		BaseURL:     "http://127.0.0.1:1",
		Trace:       genTrace(),
		SourceAddrs: []string{"not-an-ip"},
	})
	if err == nil {
		t.Fatal("bad SourceAddrs accepted")
	}
}

func TestShedsCountedSeparately(t *testing.T) {
	// A server that sheds every other request with 429 + Retry-After:
	// sheds must land in Sheds/RetryAfterSheds, not Errors or Requests.
	var n atomic.Uint64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%2 == 0 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	for _, phttp := range []bool{false, true} {
		cfg := Config{
			BaseURL:  ts.URL,
			Trace:    genTrace(),
			Clients:  1,
			Requests: 10,
		}
		if phttp {
			cfg.KeepAlive = true
			cfg.ReqsPerConn = 5
		}
		st, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Requests != 5 || st.Sheds != 5 || st.Errors != 0 {
			t.Fatalf("phttp=%v stats %+v, want 5 served / 5 shed / 0 errors", phttp, st)
		}
		if st.RetryAfterSheds != 5 {
			t.Fatalf("phttp=%v RetryAfterSheds = %d, want 5", phttp, st.RetryAfterSheds)
		}
	}
}
