// Package loadgen is the reproduction of the paper's client software: "an
// event-driven program that simulates multiple HTTP clients", where "each
// simulated HTTP client makes HTTP requests as fast as the server cluster
// can handle them" — a closed-loop load generator.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/trace"
)

// Config describes a load-generation run against a front end.
type Config struct {
	// BaseURL is the front end's root, e.g. "http://127.0.0.1:8080".
	BaseURL string

	// Trace supplies the request sequence; clients share one cursor, so
	// the cluster sees the trace order (approximately, under
	// concurrency).
	Trace *trace.Trace

	// Clients is the number of concurrent simulated clients (default 8).
	Clients int

	// Requests caps the total requests issued (default: one pass over
	// the trace).
	Requests int

	// KeepAlive reuses connections (HTTP/1.1 persistent connections);
	// without it every request opens a fresh connection, exercising one
	// handoff per request as in the paper's HTTP/1.0 measurements.
	KeepAlive bool

	// ReqsPerConn, when > 0 together with KeepAlive, selects the raw
	// P-HTTP client mode (phttp.go): each simulated client issues a
	// bounded number of requests per connection — drawn from ConnDist
	// with this mean — then closes and reconnects, the paper's
	// Section 5 persistent-connection workload. 0 keeps the net/http
	// transport with unbounded connection reuse.
	ReqsPerConn int

	// ConnDist is the requests-per-connection distribution:
	// ConnDistFixed (default) or ConnDistGeometric.
	ConnDist string

	// Seed drives the ConnDist draws (default 1).
	Seed int64

	// Timeout bounds each request (default 30s).
	Timeout time.Duration
}

// Stats summarizes a run.
type Stats struct {
	Requests   uint64
	Errors     uint64
	BytesRead  int64
	Elapsed    time.Duration
	Throughput float64 // successful requests per second

	LatencyAvg time.Duration
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyMax time.Duration
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d reqs (%d errors) in %v: %.1f req/s, p50=%v p95=%v max=%v",
		s.Requests, s.Errors, s.Elapsed.Round(time.Millisecond), s.Throughput,
		s.LatencyP50.Round(time.Microsecond), s.LatencyP95.Round(time.Microsecond),
		s.LatencyMax.Round(time.Microsecond))
}

// Run drives the configured load until the request budget is exhausted or
// the context is cancelled, and returns aggregate statistics.
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.BaseURL == "" {
		return Stats{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Trace == nil || cfg.Trace.Len() == 0 {
		return Stats{}, fmt.Errorf("loadgen: empty trace")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	total := cfg.Requests
	if total <= 0 {
		total = cfg.Trace.Len()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if _, err := connLenDraw(cfg.ConnDist, cfg.ReqsPerConn, nil); err != nil {
		return Stats{}, err
	}
	if cfg.KeepAlive && cfg.ReqsPerConn > 0 {
		return runPHTTP(ctx, cfg, clients, total, timeout)
	}

	transport := &http.Transport{
		DisableKeepAlives:   !cfg.KeepAlive,
		MaxIdleConnsPerHost: clients,
		MaxConnsPerHost:     0,
	}
	defer transport.CloseIdleConnections()
	client := &http.Client{Transport: transport, Timeout: timeout}

	var (
		cursor  atomic.Int64
		nOK     atomic.Uint64
		nErr    atomic.Uint64
		nBytes  atomic.Int64
		latMu   sync.Mutex
		latAll  []time.Duration
		wg      sync.WaitGroup
		started = time.Now()
	)

	worker := func() {
		defer wg.Done()
		lats := make([]time.Duration, 0, 1024)
		for {
			if ctx.Err() != nil {
				break
			}
			i := cursor.Add(1) - 1
			if i >= int64(total) {
				break
			}
			r := cfg.Trace.At(int(i) % cfg.Trace.Len())
			t0 := time.Now()
			n, err := fetch(ctx, client, cfg.BaseURL+r.Target)
			if err != nil {
				nErr.Add(1)
				continue
			}
			lats = append(lats, time.Since(t0))
			nOK.Add(1)
			nBytes.Add(n)
		}
		latMu.Lock()
		latAll = append(latAll, lats...)
		latMu.Unlock()
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()

	st := Stats{
		Requests:  nOK.Load(),
		Errors:    nErr.Load(),
		BytesRead: nBytes.Load(),
		Elapsed:   time.Since(started),
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(st.Requests) / st.Elapsed.Seconds()
	}
	summarizeLatencies(&st, latAll)
	return st, nil
}

// fetch issues one GET and fully drains the body, returning its length.
func fetch(ctx context.Context, client *http.Client, url string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return n, err
	}
	if resp.StatusCode != http.StatusOK {
		return n, fmt.Errorf("status %d", resp.StatusCode)
	}
	return n, nil
}

// summarizeLatencies fills the latency fields from raw samples.
func summarizeLatencies(st *Stats, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	st.LatencyAvg = sum / time.Duration(len(lats))
	st.LatencyP50 = lats[len(lats)/2]
	st.LatencyP95 = lats[len(lats)*95/100]
	st.LatencyMax = lats[len(lats)-1]
}
