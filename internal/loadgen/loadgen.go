// Package loadgen is the reproduction of the paper's client software: "an
// event-driven program that simulates multiple HTTP clients", where "each
// simulated HTTP client makes HTTP requests as fast as the server cluster
// can handle them" — a closed-loop load generator.
package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/trace"
)

// Config describes a load-generation run against a front end.
type Config struct {
	// BaseURL is the front end's root, e.g. "http://127.0.0.1:8080".
	BaseURL string

	// Trace supplies the request sequence; clients share one cursor, so
	// the cluster sees the trace order (approximately, under
	// concurrency).
	Trace *trace.Trace

	// Clients is the number of concurrent simulated clients (default 8).
	Clients int

	// Requests caps the total requests issued (default: one pass over
	// the trace).
	Requests int

	// KeepAlive reuses connections (HTTP/1.1 persistent connections);
	// without it every request opens a fresh connection, exercising one
	// handoff per request as in the paper's HTTP/1.0 measurements.
	KeepAlive bool

	// ReqsPerConn, when > 0 together with KeepAlive, selects the raw
	// P-HTTP client mode (phttp.go): each simulated client issues a
	// bounded number of requests per connection — drawn from ConnDist
	// with this mean — then closes and reconnects, the paper's
	// Section 5 persistent-connection workload. 0 keeps the net/http
	// transport with unbounded connection reuse.
	ReqsPerConn int

	// ConnDist is the requests-per-connection distribution:
	// ConnDistFixed (default) or ConnDistGeometric.
	ConnDist string

	// Seed drives the ConnDist draws (default 1).
	Seed int64

	// Timeout bounds each request (default 30s).
	Timeout time.Duration

	// Rate, when > 0, paces the offered load to this many requests per
	// second across all clients (open-loop-style pacing on a shared
	// schedule: request i is due at start + i/Rate, whichever client
	// claims it). 0 keeps the paper's closed loop — every client requests
	// as fast as the cluster answers. Note the generator still has only
	// Clients requests in flight: when the cluster falls behind the
	// schedule the backlog shows up as latency, which is exactly the
	// signal the saturation harness ramps against.
	Rate float64

	// Duration, when > 0, ends the run after this much wall time (the
	// request budget still applies if Requests is set; otherwise the run
	// loops over the trace until the clock expires). Requests cut off by
	// the deadline are not counted as errors.
	Duration time.Duration

	// SourceAddrs, when non-empty, assigns each simulated client a local
	// source IP from this list (round-robin by client index) and binds
	// its connections to it. On loopback this gives the front end's
	// per-client-IP quota distinct identities to meter: 127.0.0.2,
	// 127.0.0.3, ... are bindable without privileges on Linux. Applies
	// to both the net/http and the raw P-HTTP client modes.
	SourceAddrs []string
}

// Stats summarizes a run.
type Stats struct {
	Requests   uint64
	Errors     uint64
	BytesRead  int64
	Elapsed    time.Duration
	Throughput float64 // successful requests per second

	// Sheds counts 429 responses from the front end's per-client quota.
	// A shed is the overload-protection layer working as designed, so it
	// is not an error; it is not goodput either, so it joins neither
	// Requests nor the latency percentiles.
	Sheds uint64

	// RetryAfterSheds counts the sheds that carried a Retry-After header
	// (all of them, if the front end behaves).
	RetryAfterSheds uint64

	LatencyAvg time.Duration
	LatencyP50 time.Duration
	LatencyP95 time.Duration
	LatencyP99 time.Duration
	LatencyMax time.Duration
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d reqs (%d errors, %d shed) in %v: %.1f req/s, p50=%v p95=%v p99=%v max=%v",
		s.Requests, s.Errors, s.Sheds, s.Elapsed.Round(time.Millisecond), s.Throughput,
		s.LatencyP50.Round(time.Microsecond), s.LatencyP95.Round(time.Microsecond),
		s.LatencyP99.Round(time.Microsecond), s.LatencyMax.Round(time.Microsecond))
}

// Run drives the configured load until the request budget is exhausted or
// the context is cancelled, and returns aggregate statistics.
func Run(ctx context.Context, cfg Config) (Stats, error) {
	if cfg.BaseURL == "" {
		return Stats{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Trace == nil || cfg.Trace.Len() == 0 {
		return Stats{}, fmt.Errorf("loadgen: empty trace")
	}
	clients := cfg.Clients
	if clients <= 0 {
		clients = 8
	}
	total := cfg.Requests
	if total <= 0 {
		total = cfg.Trace.Len()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	if _, err := connLenDraw(cfg.ConnDist, cfg.ReqsPerConn, nil); err != nil {
		return Stats{}, err
	}
	if _, err := sourceIPs(cfg.SourceAddrs); err != nil {
		return Stats{}, err
	}
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
		if cfg.Requests <= 0 {
			// Timed run: loop over the trace until the clock expires.
			total = int(int64(1) << 52)
		}
	}
	pace := newPacer(cfg.Rate)
	if cfg.KeepAlive && cfg.ReqsPerConn > 0 {
		return runPHTTP(ctx, cfg, clients, total, timeout, pace)
	}

	sources, _ := sourceIPs(cfg.SourceAddrs)
	sharedTransport := newTransport(cfg, clients, nil)
	defer sharedTransport.CloseIdleConnections()

	var (
		cursor  atomic.Int64
		nOK     atomic.Uint64
		nErr    atomic.Uint64
		nShed   atomic.Uint64
		nShedRA atomic.Uint64
		nBytes  atomic.Int64
		latMu   sync.Mutex
		latAll  []time.Duration
		wg      sync.WaitGroup
		started = time.Now()
	)

	worker := func(id int) {
		defer wg.Done()
		transport := sharedTransport
		if len(sources) > 0 {
			// Per-worker transport so this client's connections all carry
			// its own source identity.
			transport = newTransport(cfg, clients, sources[id%len(sources)])
			defer transport.CloseIdleConnections()
		}
		client := &http.Client{Transport: transport, Timeout: timeout}
		lats := make([]time.Duration, 0, 1024)
		for {
			if ctx.Err() != nil {
				break
			}
			i := cursor.Add(1) - 1
			if i >= int64(total) {
				break
			}
			pace.wait(ctx, i)
			if ctx.Err() != nil {
				break
			}
			r := cfg.Trace.At(int(i % int64(cfg.Trace.Len())))
			t0 := time.Now()
			if sched, ok := pace.due(i); ok && sched.Before(t0) {
				t0 = sched
			}
			n, shed, retryAfter, err := fetch(ctx, client, cfg.BaseURL+r.Target)
			if err != nil {
				if ctx.Err() != nil {
					// Cut off by the run deadline, not failed.
					break
				}
				nErr.Add(1)
				continue
			}
			if shed {
				nShed.Add(1)
				if retryAfter {
					nShedRA.Add(1)
				}
				continue
			}
			lats = append(lats, time.Since(t0))
			nOK.Add(1)
			nBytes.Add(n)
		}
		latMu.Lock()
		latAll = append(latAll, lats...)
		latMu.Unlock()
	}

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go worker(c)
	}
	wg.Wait()

	st := Stats{
		Requests:        nOK.Load(),
		Errors:          nErr.Load(),
		Sheds:           nShed.Load(),
		RetryAfterSheds: nShedRA.Load(),
		BytesRead:       nBytes.Load(),
		Elapsed:         time.Since(started),
	}
	if st.Elapsed > 0 {
		st.Throughput = float64(st.Requests) / st.Elapsed.Seconds()
	}
	summarizeLatencies(&st, latAll)
	return st, nil
}

// fetch issues one GET and fully drains the body. It returns the body
// length, whether the request was quota-shed (429), and whether the shed
// carried a Retry-After header.
func fetch(ctx context.Context, client *http.Client, url string) (int64, bool, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, false, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, false, false, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return n, false, false, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		return n, true, resp.Header.Get("Retry-After") != "", nil
	}
	if resp.StatusCode != http.StatusOK {
		return n, false, false, fmt.Errorf("status %d", resp.StatusCode)
	}
	return n, false, false, nil
}

// sourceIPs parses Config.SourceAddrs; every entry must be a bare IP.
func sourceIPs(addrs []string) ([]net.IP, error) {
	if len(addrs) == 0 {
		return nil, nil
	}
	ips := make([]net.IP, len(addrs))
	for i, a := range addrs {
		ip := net.ParseIP(a)
		if ip == nil {
			return nil, fmt.Errorf("loadgen: SourceAddrs[%d] = %q is not an IP address", i, a)
		}
		ips[i] = ip
	}
	return ips, nil
}

// newTransport builds the net/http transport for one client identity;
// src nil keeps the OS-chosen source address.
func newTransport(cfg Config, clients int, src net.IP) *http.Transport {
	t := &http.Transport{
		DisableKeepAlives:   !cfg.KeepAlive,
		MaxIdleConnsPerHost: clients,
		MaxConnsPerHost:     0,
	}
	if src != nil {
		d := &net.Dialer{LocalAddr: &net.TCPAddr{IP: src}}
		t.DialContext = d.DialContext
	}
	return t
}

// summarizeLatencies fills the latency fields from raw samples.
func summarizeLatencies(st *Stats, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, d := range lats {
		sum += d
	}
	st.LatencyAvg = sum / time.Duration(len(lats))
	st.LatencyP50 = lats[len(lats)/2]
	st.LatencyP95 = lats[len(lats)*95/100]
	st.LatencyP99 = lats[len(lats)*99/100]
	st.LatencyMax = lats[len(lats)-1]
}

// pacer spreads the run's requests over time: request i is due at
// start + i*interval. A zero pacer (interval 0) never waits — the
// closed loop.
type pacer struct {
	start    time.Time
	interval time.Duration
}

func newPacer(rate float64) *pacer {
	p := &pacer{start: time.Now()}
	if rate > 0 {
		p.interval = time.Duration(float64(time.Second) / rate)
	}
	return p
}

// due returns request i's scheduled send time, or false for the
// closed loop (no schedule). Open-loop latency is measured from this
// instant, not from the actual send: when the server falls behind the
// schedule, the backlog a real client would experience as queueing
// delay must show up in the percentiles, or saturation is invisible
// (the coordinated-omission trap).
func (p *pacer) due(i int64) (time.Time, bool) {
	if p.interval <= 0 {
		return time.Time{}, false
	}
	return p.start.Add(time.Duration(i) * p.interval), true
}

// wait blocks until request i is due (or the context ends).
func (p *pacer) wait(ctx context.Context, i int64) {
	if p.interval <= 0 {
		return
	}
	d := time.Until(p.start.Add(time.Duration(i) * p.interval))
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
