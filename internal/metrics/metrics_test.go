package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("lard_sheds_total", "sheds", "reason", "quota")
	b := r.Counter("lard_sheds_total", "", "reason", "quota")
	if a != b {
		t.Fatal("same name+labels must return the same collector")
	}
	c := r.Counter("lard_sheds_total", "", "reason", "overload")
	if a == c {
		t.Fatal("different labels must return distinct collectors")
	}
	a.Inc()
	a.Add(4)
	if a.Value() != 5 || c.Value() != 0 {
		t.Fatalf("values = %d, %d; want 5, 0", a.Value(), c.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as gauge after counter must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("lard_inflight", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lard_request_seconds", "")
	// 90 fast observations, 10 slow: p50 must bound the fast cluster,
	// p99 the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(80 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	wantSum := 90*100*time.Microsecond + 10*80*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	p50 := h.Quantile(0.50)
	if p50 < 100*time.Microsecond || p50 > 200*time.Microsecond {
		t.Fatalf("p50 = %v, want a ~100µs bucket bound", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 80*time.Millisecond || p99 > 160*time.Millisecond {
		t.Fatalf("p99 = %v, want a ~80ms bucket bound", p99)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's upper bound must contain its own observations.
	for _, d := range []time.Duration{1, 7, 1000, time.Millisecond, time.Hour} {
		if up := bucketUpper(bucketOf(d)); up < d {
			t.Errorf("bucketUpper(bucketOf(%v)) = %v < %v", d, up, d)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("lard_sheds_total", "requests shed", "reason", "quota").Add(3)
	r.Counter("lard_sheds_total", "", "reason", "overload").Inc()
	r.Gauge("lard_nodes", "cluster size").Set(4)
	h := r.Histogram("lard_request_seconds", "request latency", "policy", "pin")
	h.Observe(100 * time.Microsecond)
	h.Observe(3 * time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP lard_sheds_total requests shed\n",
		"# TYPE lard_sheds_total counter\n",
		`lard_sheds_total{reason="quota"} 3` + "\n",
		`lard_sheds_total{reason="overload"} 1` + "\n",
		"# TYPE lard_nodes gauge\nlard_nodes 4\n",
		"# TYPE lard_request_seconds histogram\n",
		`lard_request_seconds_bucket{policy="pin",le="+Inf"} 2` + "\n",
		`lard_request_seconds_count{policy="pin"} 2` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name for deterministic scrapes.
	if strings.Index(out, "lard_nodes") > strings.Index(out, "lard_request_seconds") {
		t.Fatal("families not sorted by name")
	}
	// Histogram sum: 0.0031s.
	if !strings.Contains(out, `lard_request_seconds_sum{policy="pin"} 0.0031`) {
		t.Fatalf("histogram sum missing:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", "k", `va"l\ue`+"\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `m{k="va\"l\\ue\n"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped series %q missing in:\n%s", want, b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(time.Duration(j))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d, hist count = %d; want 8000, 8000", c.Value(), h.Count())
	}
}
