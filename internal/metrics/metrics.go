// Package metrics is a dependency-free counters/gauges/histograms
// registry for the front end's observability surface.
//
// Collectors are created once (start-up, AddBackend) and then updated
// from the relay hot path, so the update operations — Counter.Inc/Add,
// Gauge.Set/Add, Histogram.Observe — are single atomic instructions on
// pre-allocated storage, verified allocation-free by the lardlint
// noalloc analyzer. All rendering cost (label formatting, sorting) is
// paid at creation or exposition time.
//
// Histograms are log-bucketed: an observation of d nanoseconds lands in
// bucket ⌈log2 d⌉, giving ~64 fixed buckets that cover nanoseconds to
// centuries with constant-time, allocation-free recording — precise
// enough for the p50/p99 read-outs the admin surface wants.
//
// WritePrometheus renders the whole registry in the Prometheus text
// exposition format (version 0.0.4), served as GET /admin/metrics by
// cmd/lardfe. The package never reads a clock (observations arrive as
// time.Durations measured by the caller), so it sits on the lardlint
// wallclock virtual-clock package list with the rest of the core.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind is a family's collector type; mixing kinds under one family name
// is a programming error and panics at creation.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is the common part of every collector: its rendered label set.
type series struct {
	labels string // rendered `{k="v",...}` or ""
}

// Counter is a monotonically increasing counter.
type Counter struct {
	series
	v atomic.Uint64
}

// Inc adds 1.
//
//lard:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//lard:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous integer value.
type Gauge struct {
	series
	v atomic.Int64
}

// Set replaces the value.
//
//lard:noalloc
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
//
//lard:noalloc
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets covers every possible bits.Len64 result (0..64).
const histBuckets = 65

// Histogram records durations in log2 buckets.
type Histogram struct {
	series
	count   atomic.Uint64
	sumNs   atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf maps a duration to its log2 bucket index.
func bucketOf(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d) - 1) // ⌈log2 d⌉: bucket i holds d ≤ 2^i
}

// Observe records one duration.
//
//lard:noalloc
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1): the
// upper edge of the bucket the q·count-th observation fell into. Zero
// observations yield zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is bucket i's inclusive upper bound.
func bucketUpper(i int) time.Duration {
	if i >= 63 {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(uint64(1) << uint(i))
}

// family is all series sharing one metric name.
type family struct {
	name string
	help string
	kind kind
	// ordered series; each entry is *Counter, *Gauge or *Histogram.
	order []any
	byKey map[string]any
}

// Registry holds metric families and renders them.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels formats label pairs ("k1", "v1", "k2", "v2", ...) into
// the exposition form `{k1="v1",k2="v2"}`. Values are escaped per the
// text format (backslash, quote, newline).
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("metrics: odd label list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		v := labels[i+1]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating as needed) the series for name+labels,
// checking the family's kind. mk builds a new collector.
func (r *Registry) lookup(name, help string, k kind, labels []string, mk func(s series) any) any {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, byKey: map[string]any{}}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as both %v and %v", name, f.kind, k))
	}
	if f.help == "" {
		f.help = help
	}
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := mk(series{labels: key})
	f.byKey[key] = c
	f.order = append(f.order, c)
	return c
}

// Counter returns the counter for name+labels, creating it on first
// use. Labels are ("key", "value") pairs; repeated calls with the same
// identity return the same collector.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.lookup(name, help, kindCounter, labels, func(s series) any {
		return &Counter{series: s}
	}).(*Counter)
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func(s series) any {
		return &Gauge{series: s}
	}).(*Gauge)
}

// Histogram returns the histogram for name+labels, creating it on
// first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, func(s series) any {
		return &Histogram{series: s}
	}).(*Histogram)
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name, series in creation order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	// Collectors are atomic; rendering outside the registry lock only
	// risks missing a series created mid-render, which the next scrape
	// picks up.
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.order {
			if err := writeSeries(w, f.name, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, c any) error {
	switch m := c.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, m.labels, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, m.labels, m.Value())
		return err
	case *Histogram:
		return writeHistogram(w, name, m)
	}
	return fmt.Errorf("metrics: unknown collector %T", c)
}

// writeHistogram renders the cumulative _bucket/_sum/_count triplet.
// Bucket bounds are the log2 upper edges converted to seconds; empty
// high buckets above the last occupied one are folded into +Inf.
func writeHistogram(w io.Writer, name string, h *Histogram) error {
	// Prometheus wants every label set to include the le label, so the
	// rendered labels must be spliced.
	open := func(le string) string {
		if h.labels == "" {
			return `{le="` + le + `"}`
		}
		return h.labels[:len(h.labels)-1] + `,le="` + le + `"}`
	}
	last := -1
	for i := 0; i < histBuckets; i++ {
		if h.buckets[i].Load() > 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += h.buckets[i].Load()
		le := fmt.Sprintf("%g", float64(bucketUpper(i))/float64(time.Second))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, open(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, open("+Inf"), h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, h.labels, float64(h.Sum())/float64(time.Second)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, h.Count())
	return err
}
