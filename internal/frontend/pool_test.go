package frontend

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"lard/internal/backend"
	"lard/internal/handoff"
	"lard/internal/httprelay"
)

// pipeConn returns the pool-side end of a fresh in-memory connection.
func pipeConn(t *testing.T) net.Conn {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a
}

// TestPoolProperty drives the pool through a seeded random schedule of
// puts, checkouts, and sabotage (aging entries past the TTL, killing idle
// conns) and asserts its invariants: the idle population never exceeds
// the per-node bound, expired connections are never handed out, and the
// counters balance — every checkout is exactly one hit or one miss (even
// when it pops only expired/dead conns before coming up empty), and every
// put is eventually a hit, an eviction, or still idle.
func TestPoolProperty(t *testing.T) {
	const size = 3
	const ttl = time.Hour // out of reach except via deliberate aging
	p := newBackendPool(size, ttl)
	rng := rand.New(rand.NewSource(7))

	var puts, checkouts, handedOut int
	for i := 0; i < 800; i++ {
		node := rng.Intn(4)
		switch rng.Intn(5) {
		case 0, 1:
			c := pipeConn(t)
			p.put(node, c, bufio.NewReaderSize(c, 1<<10))
			puts++
		case 2, 3:
			if _, _, ok := p.get(node); ok {
				handedOut++
			}
			checkouts++
		case 4:
			// Sabotage one idle entry so checkouts exercise the
			// expired/dead fall-through: evictions, then a deeper hit
			// or — the undercount regression — exactly one miss.
			p.mu.Lock()
			if conns := p.idle[node]; len(conns) > 0 {
				j := rng.Intn(len(conns))
				if rng.Intn(2) == 0 {
					conns[j].since = conns[j].since.Add(-2 * ttl)
				} else {
					conns[j].c.Close() // the liveness peek will see a dead conn
				}
			}
			p.mu.Unlock()
		}
		for n := 0; n < 4; n++ {
			if _, forNode := p.idleCount(n); forNode > size {
				t.Fatalf("node %d holds %d idle conns, bound %d", n, forNode, size)
			}
		}
	}
	hits, misses, evictions := p.counters()
	if hits+misses != uint64(checkouts) {
		t.Fatalf("hits %d + misses %d != checkouts %d", hits, misses, checkouts)
	}
	if hits != uint64(handedOut) {
		t.Fatalf("hits %d != successful checkouts %d", hits, handedOut)
	}
	idle, _ := p.idleCount(-1)
	if uint64(puts) != hits+evictions+uint64(idle) {
		t.Fatalf("puts %d != hits %d + evictions %d + idle %d", puts, hits, evictions, idle)
	}
}

// TestPoolMissCountsExpiredFallthrough is the undercount regression: a
// checkout that pops only expired conns and comes up empty must record
// the evictions AND one miss — the fresh dial it falls through to — so
// PoolHits+PoolMisses equals checkouts and hit-rate stats stay honest.
func TestPoolMissCountsExpiredFallthrough(t *testing.T) {
	p := newBackendPool(4, time.Hour)
	for i := 0; i < 2; i++ {
		c := pipeConn(t)
		p.put(0, c, bufio.NewReaderSize(c, 1<<10))
	}
	p.mu.Lock()
	for i := range p.idle[0] {
		p.idle[0][i].since = p.idle[0][i].since.Add(-2 * time.Hour)
	}
	p.mu.Unlock()
	if _, _, ok := p.get(0); ok {
		t.Fatal("expired conn handed out")
	}
	hits, misses, ev := p.counters()
	if hits != 0 || misses != 1 || ev != 2 {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 0/1/2", hits, misses, ev)
	}
}

// TestPoolZeroesVacatedSlots is the slice-tail-retention regression: the
// capacity-eviction shift in put, the checkout pop, and the sweep
// compaction all truncate the per-node slice, and each must zero the
// vacated tail slots — a dropped pooledConn left in the underlying array
// keeps its conn and 16 KiB reader reachable.
func TestPoolZeroesVacatedSlots(t *testing.T) {
	p := newBackendPool(2, time.Hour)
	assertTailZeroed := func(context string) {
		t.Helper()
		p.mu.Lock()
		defer p.mu.Unlock()
		conns := p.idle[0]
		full := conns[:cap(conns)]
		for i := len(conns); i < cap(conns); i++ {
			if full[i] != (pooledConn{}) {
				t.Fatalf("%s: vacated slot %d retains %+v", context, i, full[i])
			}
		}
	}

	for i := 0; i < 2; i++ {
		c := pipeConn(t)
		p.put(0, c, bufio.NewReaderSize(c, 1<<10))
	}
	c := pipeConn(t)
	p.put(0, c, bufio.NewReaderSize(c, 1<<10)) // over capacity: shift-evicts the oldest
	assertTailZeroed("capacity eviction")

	if _, _, ok := p.get(0); !ok {
		t.Fatal("checkout failed")
	}
	assertTailZeroed("checkout pop")

	p.mu.Lock()
	for i := range p.idle[0] {
		p.idle[0][i].since = p.idle[0][i].since.Add(-2 * time.Hour)
	}
	p.mu.Unlock()
	p.sweep()
	if idle, _ := p.idleCount(-1); idle != 0 {
		t.Fatalf("sweep left %d idle conns", idle)
	}
	assertTailZeroed("sweep compaction")
}

// wrapErrConn wraps every error its Read returns, hiding the net.Error
// behind fmt's wrapper — the shape instrumented and test conns produce.
type wrapErrConn struct{ net.Conn }

func (c wrapErrConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if err != nil {
		err = fmt.Errorf("instrumented: %w", err)
	}
	return n, err
}

// TestIsDeadlineErrUnwraps is the misclassification regression: a wrapped
// deadline error is still a deadline expiry, and EOF never is.
func TestIsDeadlineErrUnwraps(t *testing.T) {
	if !isDeadlineErr(os.ErrDeadlineExceeded) {
		t.Fatal("bare deadline error not recognized")
	}
	if !isDeadlineErr(fmt.Errorf("peek: %w", os.ErrDeadlineExceeded)) {
		t.Fatal("wrapped deadline error not recognized")
	}
	if isDeadlineErr(io.EOF) || isDeadlineErr(fmt.Errorf("x: %w", io.EOF)) {
		t.Fatal("EOF misread as deadline expiry")
	}
}

// TestPoolKeepsConnWithWrappedDeadlineErr: the liveness peek on a healthy
// idle conn whose Read wraps its errors must classify the deadline expiry
// as "alive and silent" and hand the conn out, not evict it.
func TestPoolKeepsConnWithWrappedDeadlineErr(t *testing.T) {
	p := newBackendPool(2, time.Hour)
	c := wrapErrConn{pipeConn(t)}
	p.put(0, c, bufio.NewReaderSize(c, 1<<10))
	cc, _, ok := p.get(0)
	if !ok {
		t.Fatal("healthy conn with wrapping Read evicted as dead")
	}
	if cc != net.Conn(c) {
		t.Fatal("a different conn was handed out")
	}
	hits, misses, ev := p.counters()
	if hits != 1 || misses != 0 || ev != 0 {
		t.Fatalf("hits=%d misses=%d evictions=%d, want 1/0/0", hits, misses, ev)
	}
}

// TestPoolTTLAndSweep: an idle connection past its TTL is not handed out
// at checkout, and the janitor's sweep discards it without traffic.
func TestPoolTTLAndSweep(t *testing.T) {
	p := newBackendPool(2, 30*time.Millisecond)

	c0 := pipeConn(t)
	p.put(0, c0, bufio.NewReaderSize(c0, 1<<10))
	time.Sleep(50 * time.Millisecond)
	if _, _, ok := p.get(0); ok {
		t.Fatal("expired connection handed out")
	}
	if _, _, ev := p.counters(); ev != 1 {
		t.Fatalf("evictions = %d, want 1 (TTL)", ev)
	}

	c1 := pipeConn(t)
	p.put(1, c1, bufio.NewReaderSize(c1, 1<<10))
	time.Sleep(50 * time.Millisecond)
	p.sweep()
	if idle, _ := p.idleCount(-1); idle != 0 {
		t.Fatalf("sweep left %d idle conns", idle)
	}
}

// TestPoolDetectsDeadConnAtCheckout: a connection the back end closed
// while idle must be discarded by the checkout liveness probe, never
// handed to a session.
func TestPoolDetectsDeadConnAtCheckout(t *testing.T) {
	p := newBackendPool(2, time.Hour)
	a, b := net.Pipe()
	defer a.Close()
	p.put(0, a, bufio.NewReaderSize(a, 1<<10))
	b.Close() // the "back end" hangs up while the conn is idle
	if _, _, ok := p.get(0); ok {
		t.Fatal("dead connection handed out")
	}
	if hits, _, ev := p.counters(); hits != 0 || ev != 1 {
		t.Fatalf("hits=%d evictions=%d, want 0/1", hits, ev)
	}
}

// startPooledFrontend builds a pooled front end over the given back ends.
func startPooledFrontend(t *testing.T, addrs []string, mod ...func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{
		Backends:      addrs,
		Strategy:      "wrr",
		ConnPolicy:    "perreq",
		ProbeInterval: -1,
	}
	for _, m := range mod {
		m(&cfg)
	}
	fe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() { fe.Close() })
	return fe, ln.Addr().String()
}

// rawKeepAliveGet performs one request on a fresh client connection
// without announcing "Connection: close" — the session ends by the
// client hanging up after the response, like a browser abandoning a
// keep-alive connection — and then waits for the front end to retire the
// session, so the back-end transport is back in the pool before the
// caller's next request. (A client that *does* send Connection: close
// gets a close-flagged back-end response, which correctly makes the
// transport non-reusable; pooling pays off for keep-alive clients.)
func rawKeepAliveGet(t *testing.T, fe *Server, feAddr, target string) int {
	t.Helper()
	conn, err := net.Dial("tcp", feAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", target)
	br := bufio.NewReader(conn)
	h, _ := readOneResponse(t, br, "GET")
	conn.Close()
	waitFor(t, 5*time.Second, "session to retire", func() bool {
		return fe.Stats().ActiveSessions == 0
	})
	return h.Status
}

// TestPooledHandoffReuse is the tentpole's e2e smoke: successive client
// connections to the same node must reuse one back-end transport (pool
// hits), and the back end must see one TCP connection carrying many
// sessions.
func TestPooledHandoffReuse(t *testing.T) {
	tr := smallTrace(t, 10, 50)
	store := backend.NewDocStore(tr.Targets)
	be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	fe, feAddr := startPooledFrontend(t, []string{ln.Addr().String()})

	const reqs = 20
	for i := 0; i < reqs; i++ {
		if code := rawKeepAliveGet(t, fe, feAddr, tr.At(i%tr.Len()).Target); code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	st := fe.Stats()
	if st.PoolHits == 0 {
		t.Fatalf("no pool hits over %d sequential sessions: %+v", reqs, st)
	}
	if st.PoolHits+st.PoolMisses == 0 || st.PoolMisses > 3 {
		t.Fatalf("pool misses %d: the dial was not amortized (hits %d)", st.PoolMisses, st.PoolHits)
	}
	if got := be.Stats().Requests; got != reqs {
		t.Fatalf("back end served %d requests, want %d", got, reqs)
	}
	if sessions := ln.Sessions(); sessions != reqs {
		t.Fatalf("back end saw %d sessions, want %d", sessions, reqs)
	}
}

// TestPoolEvictionOnMembership: drain, mark-down, and removal must each
// discard the node's pooled connections — no session may be handed to a
// gone node through a warm transport. Runs in the CI race job.
func TestPoolEvictionOnMembership(t *testing.T) {
	tr := smallTrace(t, 12, 60)
	store := backend.NewDocStore(tr.Targets)
	var addrs []string
	for i := 0; i < 3; i++ {
		be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
		ln, err := handoff.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: be.Handler()}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close(); ln.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	fe, feAddr := startPooledFrontend(t, addrs)

	get := func(i int) {
		t.Helper()
		if code := rawKeepAliveGet(t, fe, feAddr, tr.At(i%tr.Len()).Target); code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	// Warm the pool on every node (WRR round-robins).
	for i := 0; i < 12; i++ {
		get(i)
	}
	if idle, _ := fe.pool.idleCount(0); idle == 0 {
		t.Fatal("pool not warmed")
	}

	// Drain node 0: its idle transports must go immediately.
	fe.DrainBackend(0)
	if _, forNode := fe.pool.idleCount(0); forNode != 0 {
		t.Fatalf("drained node still pools %d conns", forNode)
	}
	before := fe.Stats()
	for i := 0; i < 9; i++ {
		get(100 + i)
	}
	if _, forNode := fe.pool.idleCount(0); forNode != 0 {
		t.Fatalf("drained node re-pooled %d conns under traffic", forNode)
	}
	if hits := fe.Stats().PoolHits; hits == before.PoolHits {
		t.Fatal("survivors not served through the pool")
	}

	// Removal likewise.
	fe.UndrainBackend(0)
	for i := 0; i < 6; i++ {
		get(200 + i)
	}
	fe.RemoveBackend(0)
	if _, forNode := fe.pool.idleCount(0); forNode != 0 {
		t.Fatalf("removed node still pools %d conns", forNode)
	}

	// Mark-down (via SetBackendDown, the manual Section 2.6 path).
	if _, forNode := fe.pool.idleCount(1); forNode == 0 {
		for i := 0; i < 6; i++ {
			get(300 + i)
		}
	}
	fe.SetBackendDown(1, true)
	if _, forNode := fe.pool.idleCount(1); forNode != 0 {
		t.Fatalf("marked-down node still pools %d conns", forNode)
	}
}

// TestDialFailureRedispatch is the headline bugfix test: with healthy
// alternates present, a refused back-end dial must never surface to the
// client as a 502 — the session re-dispatches to another node.
func TestDialFailureRedispatch(t *testing.T) {
	tr := smallTrace(t, 8, 40)
	store := backend.NewDocStore(tr.Targets)
	be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	// A dead address that refuses instantly.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	// The mark-down threshold is out of reach: every request that WRR
	// sends to the dead node must be saved by re-dispatch alone.
	fe, feAddr := startPooledFrontend(t, []string{deadAddr, ln.Addr().String()}, func(c *Config) {
		c.DialTimeout = 250 * time.Millisecond
		c.DialFailuresBeforeDown = 1 << 30
	})

	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	for i := 0; i < 20; i++ {
		resp, err := client.Get("http://" + feAddr + tr.At(i%tr.Len()).Target)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d — dial failure leaked to the client", i, resp.StatusCode)
		}
	}
	st := fe.Stats()
	if st.Redispatches == 0 {
		t.Fatalf("no re-dispatches recorded: %+v", st)
	}
	if st.RehandoffFails != 0 {
		t.Fatalf("RehandoffFails = %d, want 0", st.RehandoffFails)
	}
	// WRR keeps choosing the dead node, so roughly half the requests
	// should have been saved.
	if st.Redispatches < 5 {
		t.Fatalf("Redispatches = %d, want ~10", st.Redispatches)
	}

	// Regression: completing a redispatched request must release the
	// *replacement* claim (the original done was superseded) — idle
	// keep-alive connections hold no admission capacity. Two sessions,
	// one request each, held open: WRR guarantees one of them was
	// redispatched off the dead node.
	var held []net.Conn
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", feAddr)
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, conn)
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", tr.At(i).Target)
		readOneResponse(t, bufio.NewReader(conn), "GET")
	}
	waitFor(t, 5*time.Second, "idle sessions to release their slots", func() bool {
		return fe.Dispatcher().InFlight() == 0
	})
}

// TestStaleConnRetriedTransparently: a pooled transport the back end
// drops right after accepting the next session's header (the keep-alive
// race: header written, nothing comes back) must be retried once on a
// fresh connection with nothing visible to the client.
func TestStaleConnRetriedTransparently(t *testing.T) {
	const doc = "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\nok"
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })

	// A hand-rolled back end speaking the session-framed protocol: the
	// first transport serves one session, absorbs the end-of-session
	// record, accepts the *second* session's header — and hangs up. The
	// retry's fresh transport then serves normally.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		br := bufio.NewReader(conn)
		if _, err := handoff.ReadHeader(br); err != nil {
			return
		}
		io.WriteString(conn, doc)
		var end [4]byte
		io.ReadFull(br, end[:]) // end-of-session record
		// Second session: take the header, then die silently.
		handoff.ReadHeader(br)
		conn.Close()

		conn2, err := ln.Accept()
		if err != nil {
			return
		}
		br2 := bufio.NewReader(conn2)
		if _, err := handoff.ReadHeader(br2); err != nil {
			return
		}
		io.WriteString(conn2, doc)
		var end2 [4]byte
		io.ReadFull(br2, end2[:])
		conn2.Close()
	}()

	fe, feAddr := startPooledFrontend(t, []string{ln.Addr().String()})
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	for i := 0; i < 2; i++ {
		resp, err := client.Get("http://" + feAddr + "/x")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "ok" {
			t.Fatalf("request %d: %d %q — stale conn leaked to the client", i, resp.StatusCode, body)
		}
	}
	st := fe.Stats()
	if st.StaleRetries == 0 {
		t.Fatalf("StaleRetries = 0: the retry path did not run (%+v)", st)
	}
	if st.PoolHits == 0 {
		t.Fatalf("PoolHits = 0: second session did not come from the pool (%+v)", st)
	}
}

// TestPoolDisabledFallsBackToV1: PoolSize < 0 reverts to one dial per
// handoff with the plain (v1) protocol — the pre-pool behavior — and the
// pool counters stay zero.
func TestPoolDisabledFallsBackToV1(t *testing.T) {
	tr := smallTrace(t, 6, 20)
	store := backend.NewDocStore(tr.Targets)
	be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	fe, feAddr := startPooledFrontend(t, []string{ln.Addr().String()}, func(c *Config) {
		c.PoolSize = -1
	})
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://" + feAddr + tr.At(i%tr.Len()).Target)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	st := fe.Stats()
	if st.PoolHits != 0 || st.PoolMisses != 0 || st.PoolIdle != 0 {
		t.Fatalf("pool counters moved with pooling disabled: %+v", st)
	}
	if got := be.Stats().Requests; got != 5 {
		t.Fatalf("back end served %d requests, want 5", got)
	}
}

// buildRequestHead parses a literal head for tests and benchmarks.
func buildRequestHead(t testing.TB, raw string) httprelay.RequestHead {
	t.Helper()
	head, err := httprelay.ReadRequestHead(bufio.NewReader(strings.NewReader(raw)), 1<<16)
	if err != nil {
		t.Fatalf("parsing %q: %v", raw, err)
	}
	return head
}
