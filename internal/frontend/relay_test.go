package frontend

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"lard/internal/backend"
	"lard/internal/handoff"
	"lard/internal/httprelay"
	"lard/internal/loadgen"
)

// startRawBackend runs fn for every handed-off connection on a fresh
// handoff listener, for tests that need byte-level control of the
// back-end side.
func startRawBackend(t *testing.T, fn func(net.Conn)) string {
	t.Helper()
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go fn(conn)
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// startRelayFrontend builds a re-handoff front end over the given
// back-end addresses.
func startRelayFrontend(t *testing.T, addrs []string, mod ...func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{
		Backends:            addrs,
		Strategy:            "wrr",
		RehandoffPerRequest: true,
		ProbeInterval:       -1,
	}
	for _, m := range mod {
		m(&cfg)
	}
	fe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() { fe.Close() })
	return fe, ln.Addr().String()
}

// readOneResponse reads one full response off a raw client connection.
func readOneResponse(t *testing.T, br *bufio.Reader, method string) (httprelay.ResponseHead, string) {
	t.Helper()
	h, err := httprelay.ReadResponseHead(br, 1<<16)
	if err != nil {
		t.Fatalf("reading response head: %v", err)
	}
	var body strings.Builder
	if _, _, err := httprelay.CopyResponseBody(&body, br, h, method); err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return h, body.String()
}

// TestChunkedResponseThroughRehandoff is the acceptance criterion: a
// chunked HTTP/1.1 response relays through re-handoff mode without
// downgrading the connection — the same client connection carries the
// next request, served by a different back end.
func TestChunkedResponseThroughRehandoff(t *testing.T) {
	// Two real net/http back ends whose handler emits chunked responses
	// (no Content-Length, explicit flush).
	var addrs []string
	for i := 0; i < 2; i++ {
		i := i
		ln, err := handoff.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fl := w.(http.Flusher)
			fmt.Fprintf(w, "chunk-one-from-%d|", i)
			fl.Flush()
			fmt.Fprintf(w, "chunk-two-for%s", r.URL.Path)
		})}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close(); ln.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	fe, feAddr := startRelayFrontend(t, addrs, func(c *Config) { c.Strategy = "lb" })

	conn, err := net.Dial("tcp", feAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)

	// Enough distinct targets that LB maps some to each back end.
	seen := map[string]bool{}
	for i := 0; i < 8; i++ {
		target := fmt.Sprintf("/doc-%d", i)
		fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: t\r\n\r\n", target)
		h, body := readOneResponse(t, br, "GET")
		if h.Status != 200 || !h.Chunked {
			t.Fatalf("request %d: status %d chunked=%v (response downgraded?)", i, h.Status, h.Chunked)
		}
		if !strings.Contains(body, "chunk-two-for"+target) {
			t.Fatalf("request %d: body %q lost through chunk relay", i, body)
		}
		for _, b := range []string{"from-0", "from-1"} {
			if strings.Contains(body, b) {
				seen[b] = true
			}
		}
	}
	st := fe.Stats()
	if st.Accepted != 1 {
		t.Fatalf("Accepted = %d: the client connection did not survive chunked relaying", st.Accepted)
	}
	if len(seen) < 2 || st.Rehandoffs == 0 {
		t.Fatalf("no re-handoff across back ends (seen %v, rehandoffs %d)", seen, st.Rehandoffs)
	}
}

// TestHTTP10BackendResponseNotReused is the satellite regression: an
// HTTP/1.0 back-end response without Connection: keep-alive must not
// leave the back-end connection in the reuse pool — the front end closes
// the client connection (the close semantics were relayed verbatim)
// instead of blocking a follow-up request against a dying socket.
func TestHTTP10BackendResponseNotReused(t *testing.T) {
	addr := startRawBackend(t, func(conn net.Conn) {
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, err := httprelay.ReadRequestHead(br, 1<<16); err != nil {
			return
		}
		// An HTTP/1.0 server: respond, then close without ceremony.
		io.WriteString(conn, "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok")
	})
	_, feAddr := startRelayFrontend(t, []string{addr})

	conn, err := net.Dial("tcp", feAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "GET /a HTTP/1.1\r\nHost: t\r\n\r\n")
	h, body := readOneResponse(t, br, "GET")
	if h.Status != 200 || body != "ok" {
		t.Fatalf("first response: %d %q", h.Status, body)
	}
	// The front end must close promptly (EOF), not hold the connection
	// waiting to relay onto the closed back-end socket.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection after HTTP/1.0 response: %v, want EOF", err)
	}
}

// TestSmugglingShapedRequestsRejected covers the Content-Length satellite
// end to end: framing violations must be answered with 400 and never
// forwarded, in both whole-connection and re-handoff modes.
func TestSmugglingShapedRequestsRejected(t *testing.T) {
	forwarded := make(chan string, 16)
	addr := startRawBackend(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 4096)
		n, _ := conn.Read(buf)
		forwarded <- string(buf[:n])
	})

	bad := []string{
		"POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: -5\r\n\r\n",
		"POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: 5 GET /evil HTTP/1.1\r\n\r\n",
		"POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
		"POST /x HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
	}
	for _, rehandoff := range []bool{false, true} {
		_, feAddr := startRelayFrontend(t, []string{addr}, func(c *Config) {
			c.RehandoffPerRequest = rehandoff
		})
		for _, raw := range bad {
			conn, err := net.Dial("tcp", feAddr)
			if err != nil {
				t.Fatal(err)
			}
			io.WriteString(conn, raw)
			conn.SetReadDeadline(time.Now().Add(5 * time.Second))
			h, err := httprelay.ReadResponseHead(bufio.NewReader(conn), 1<<16)
			if err != nil {
				t.Fatalf("rehandoff=%v %q: no response: %v", rehandoff, raw, err)
			}
			if h.Status != 400 {
				t.Fatalf("rehandoff=%v %q: status %d, want 400", rehandoff, raw, h.Status)
			}
			conn.Close()
		}
		select {
		case head := <-forwarded:
			t.Fatalf("rehandoff=%v: smuggling-shaped head reached the back end: %q", rehandoff, head)
		default:
		}
	}
}

// TestPersistentKeepAliveE2E drives the whole P-HTTP stack end to end:
// the load generator's raw keep-alive client (bounded requests per
// connection) against a live front end in per-request re-handoff mode
// over real back ends — every response framed by the same httprelay code
// on both sides. Run under -race in CI.
func TestPersistentKeepAliveE2E(t *testing.T) {
	tr := smallTrace(t, 60, 600)
	perNodeCache := int64(20 * 4096)
	mc := startCluster(t, 3, "lard", tr, perNodeCache, func(c *Config) {
		c.RehandoffPerRequest = true
	})

	st, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     "http://" + mc.feAddr,
		Trace:       tr,
		Clients:     4,
		KeepAlive:   true,
		ReqsPerConn: 8,
		ConnDist:    loadgen.ConnDistGeometric,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors > 0 {
		t.Fatalf("loadgen errors: %d of %d", st.Errors, st.Requests+st.Errors)
	}
	if st.Requests != uint64(tr.Len()) {
		t.Fatalf("served %d of %d requests", st.Requests, tr.Len())
	}
	var reqs uint64
	for _, be := range mc.backends {
		s := be.Stats()
		reqs += s.Requests
		if s.Requests == 0 {
			t.Fatal("a back end saw no traffic: re-handoff not spreading")
		}
	}
	if reqs != uint64(tr.Len()) {
		t.Fatalf("back ends served %d of %d", reqs, tr.Len())
	}
	fst := mc.fe.Stats()
	// Bounded connections: far fewer accepts than requests; re-handoffs
	// must have occurred for mixed targets on one connection.
	if fst.Accepted >= uint64(tr.Len())/2 {
		t.Fatalf("Accepted = %d for %d requests: keep-alive not reusing connections", fst.Accepted, tr.Len())
	}
	if fst.Rehandoffs == 0 {
		t.Fatal("no re-handoffs across a keep-alive run")
	}
}

// TestIdleConnectionTimeoutClosesQuietly pins the end-of-life
// classification: a connection that idles past HeaderTimeout without
// sending a byte is closed silently — no 400, no error count — in both
// dispatch modes. (A connection that dies *mid-head* is still a framing
// error.)
func TestIdleConnectionTimeoutClosesQuietly(t *testing.T) {
	addr := startRawBackend(t, func(conn net.Conn) { conn.Close() })
	for _, rehandoff := range []bool{false, true} {
		fe, feAddr := startRelayFrontend(t, []string{addr}, func(c *Config) {
			c.RehandoffPerRequest = rehandoff
			c.HeaderTimeout = 150 * time.Millisecond
		})
		conn, err := net.Dial("tcp", feAddr)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		buf := make([]byte, 64)
		n, rerr := conn.Read(buf)
		if n != 0 || rerr != io.EOF {
			t.Fatalf("rehandoff=%v: idle timeout produced %d bytes (%q), err %v; want silent EOF",
				rehandoff, n, buf[:n], rerr)
		}
		conn.Close()
		if got := fe.Stats().Errors; got != 0 {
			t.Fatalf("rehandoff=%v: idle timeout counted %d errors", rehandoff, got)
		}
	}
}

// TestAddBackendProbedAfterMarkDown is the health-slice regression: a
// node added via AddBackend after construction must be counted by the
// mark-down accounting and revived by the prober, exactly like a
// configured node.
func TestAddBackendProbedAfterMarkDown(t *testing.T) {
	tr := smallTrace(t, 10, 20)
	mc := startCluster(t, 1, "wrr", tr, 1<<20, func(c *Config) {
		c.ProbeInterval = 50 * time.Millisecond
		c.DialFailuresBeforeDown = 1
		c.DialTimeout = 500 * time.Millisecond
	})

	// Reserve an address with nothing behind it, then join it.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	joinAddr := dead.Addr().String()
	dead.Close()
	node := mc.fe.AddBackend(joinAddr)

	// Drive fresh connections until the added node attracts a dial and
	// gets marked down.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	deadline := time.Now().Add(10 * time.Second)
	for mc.fe.Stats().MarkedDown == 0 {
		if time.Now().After(deadline) {
			t.Fatal("added node never marked down")
		}
		resp, err := client.Get("http://" + mc.feAddr + tr.At(0).Target)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}

	// Bring a real back end up on the joined address; the prober must
	// restore the node without operator intervention.
	ln, err := handoff.Listen("tcp", joinAddr)
	if err != nil {
		t.Skipf("could not rebind reserved address %s: %v", joinAddr, err)
	}
	be := backend.New(backend.Config{Store: backend.NewDocStore(tr.Targets), CacheBytes: 1 << 20})
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	for mc.fe.Stats().ProbeRecoveries == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("probe never restored added node %d (stats %+v, nodes %+v)",
				node, mc.fe.Stats(), mc.fe.Nodes())
		}
		time.Sleep(10 * time.Millisecond)
	}
	states := mc.fe.Dispatcher().NodeStates()
	if states[node].Down {
		t.Fatalf("node %d still down after probe recovery", node)
	}
}
