package frontend

import (
	"context"
	"net"
	"net/http"
	"testing"

	"lard/internal/backend"
	"lard/internal/handoff"
	"lard/internal/loadgen"
	"lard/internal/trace"
)

// TestPersistentConnectionPolicy addresses the paper's open question
// (Section 5): "The protocol allows the front end to either let one back
// end serve all of the requests on a persistent connection or to hand off
// a connection multiple times ... However, further research is needed to
// determine the appropriate policy."
//
// This experiment runs both policies under keep-alive clients and
// measures the locality each achieves: whole-connection handoff dispatches
// once per connection, so a client's mixed targets land on one back end
// and cache partitioning degrades toward WRR; per-request re-handoff
// preserves LARD's locality at the cost of extra dispatch work.
func TestPersistentConnectionPolicy(t *testing.T) {
	cfg := trace.SyntheticConfig{
		Name:         "persistent",
		Targets:      90,
		Requests:     900,
		DataSetBytes: 90 * 4096,
		ZipfAlpha:    0.7,
		SizeSigma:    0.3,
		MinFileBytes: 1024,
	}
	tr := trace.MustGenerate(cfg, 123)
	perNodeCache := int64(30 * 4096) // each node caches 1/3 of the catalog

	hitRatio := func(rehandoff bool) float64 {
		store := backend.NewDocStore(tr.Targets)
		var addrs []string
		var nodes []*backend.Server
		for i := 0; i < 3; i++ {
			be := backend.New(backend.Config{Store: store, CacheBytes: perNodeCache})
			ln, err := handoff.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			srv := &http.Server{Handler: be.Handler()}
			go srv.Serve(ln)
			t.Cleanup(func() { srv.Close(); ln.Close() })
			addrs = append(addrs, ln.Addr().String())
			nodes = append(nodes, be)
		}
		fe, err := New(Config{
			Backends:            addrs,
			Strategy:            "lard",
			RehandoffPerRequest: rehandoff,
		})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go fe.Serve(ln)
		t.Cleanup(func() { fe.Close() })

		// Keep-alive clients: few connections, many requests each.
		st, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:   "http://" + ln.Addr().String(),
			Trace:     tr,
			Clients:   4,
			KeepAlive: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Errors > 0 {
			t.Fatalf("loadgen errors: %d", st.Errors)
		}
		var hits, reqs uint64
		for _, be := range nodes {
			s := be.Stats()
			hits += s.Hits
			reqs += s.Requests
		}
		if reqs == 0 {
			t.Fatal("no requests reached back ends")
		}
		return float64(hits) / float64(reqs)
	}

	whole := hitRatio(false)
	perRequest := hitRatio(true)
	t.Logf("persistent-connection policy: whole-connection hit ratio %.3f, per-request re-handoff %.3f",
		whole, perRequest)
	// Re-handoff must restore a substantial share of LARD's locality.
	if perRequest <= whole {
		t.Fatalf("per-request re-handoff (%.3f) did not beat whole-connection handoff (%.3f) under keep-alive clients",
			perRequest, whole)
	}
}
