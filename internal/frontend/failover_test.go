package frontend

import (
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"lard/internal/backend"
	"lard/internal/handoff"
)

// startBackendAt starts a fresh back-end server on addr ("127.0.0.1:0"
// for an ephemeral port) and returns it with an idempotent stop func and
// the bound address. Binding retries briefly so a just-killed address can
// be reclaimed for a restart.
func startBackendAt(t *testing.T, addr string, store *backend.DocStore, cacheBytes int64) (*backend.Server, func(), string) {
	t.Helper()
	var ln *handoff.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = handoff.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("binding backend at %s: %v", addr, err)
	}
	be := backend.New(backend.Config{Store: store, CacheBytes: cacheBytes})
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	var once sync.Once
	stop := func() { once.Do(func() { srv.Close(); ln.Close() }) }
	t.Cleanup(stop)
	return be, stop, ln.Addr().String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestEndToEndFailover is the headline membership test: a real front end
// over four real back ends on loopback, driven through real HTTP. One
// back end is killed mid-run; after the mark-down window requests must
// keep succeeding on the survivors with zero client-visible errors. The
// back end then restarts on the same address, the health prober restores
// it without any manual intervention, and it serves traffic again.
func TestEndToEndFailover(t *testing.T) {
	tr := smallTrace(t, 60, 600)
	store := backend.NewDocStore(tr.Targets)

	const nodes = 4
	var (
		backends []*backend.Server
		stops    []func()
		addrs    []string
	)
	for i := 0; i < nodes; i++ {
		be, stop, addr := startBackendAt(t, "127.0.0.1:0", store, 1<<20)
		backends = append(backends, be)
		stops = append(stops, stop)
		addrs = append(addrs, addr)
	}

	fe, err := New(Config{
		Backends:               addrs,
		Strategy:               "lard",
		DialTimeout:            250 * time.Millisecond,
		ProbeInterval:          25 * time.Millisecond,
		DialFailuresBeforeDown: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(feLn)
	t.Cleanup(func() { fe.Close() })
	base := "http://" + feLn.Addr().String()

	// Fresh connection per request so every request passes through
	// dispatch (a kept-alive connection is already handed off).
	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	get := func(i int) int {
		resp, err := client.Get(base + tr.At(i%tr.Len()).Target)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Phase 1: a healthy warm-up pass must be error-free.
	for i := 0; i < 120; i++ {
		if code := get(i); code != 200 {
			t.Fatalf("warm-up request %d: status %d", i, code)
		}
	}

	// Phase 2: kill back end 1 and drive traffic until the front end
	// marks it down. The mark-down window no longer tolerates client-
	// visible errors: every dial the dead node refuses is re-dispatched
	// to a survivor, so the client sees 200s throughout while the
	// consecutive-failure count still converges on the mark-down.
	const victim = 1
	stops[victim]()
	windowErrors, cursor := 0, 200
	waitFor(t, 5*time.Second, "victim mark-down", func() bool {
		if get(cursor) != 200 {
			windowErrors++
		}
		cursor++
		return fe.Dispatcher().NodeStates()[victim].Down
	})
	if windowErrors != 0 {
		t.Fatalf("%d failed requests during the mark-down window, want 0 (dial failures must re-dispatch)",
			windowErrors)
	}
	if st := fe.Stats(); st.Redispatches == 0 {
		t.Fatalf("mark-down window produced no re-dispatches: %+v", st)
	}

	// Phase 3: with the victim down, every request must succeed on the
	// three survivors — zero client-visible errors — and none may reach
	// the dead node.
	victimServed := backends[victim].Stats().Requests
	for i := 0; i < 150; i++ {
		if code := get(300 + i); code != 200 {
			t.Fatalf("post-mark-down request %d: status %d", i, code)
		}
	}
	if got := backends[victim].Stats().Requests; got != victimServed {
		t.Fatalf("dead victim served %d more requests", got-victimServed)
	}

	// Phase 4: restart the victim cold on the same address; the prober
	// must restore it with no manual intervention.
	restarted, _, _ := startBackendAt(t, addrs[victim], store, 1<<20)
	waitFor(t, 5*time.Second, "prober to restore the victim", func() bool {
		return !fe.Dispatcher().NodeStates()[victim].Down
	})
	if st := fe.Stats(); st.ProbeRecoveries == 0 {
		t.Fatalf("node restored without a probe recovery: %+v", st)
	}

	// Phase 5: the restarted node must receive traffic again. Its load is
	// zero, so LARD's least-loaded first-time assignment and imbalance
	// moves steer targets back; every request must also keep succeeding.
	waitFor(t, 10*time.Second, "restarted node to serve traffic", func() bool {
		for i := 0; i < 60; i++ {
			if code := get(600 + i); code != 200 {
				t.Fatalf("post-recovery request %d: status %d", i, code)
			}
		}
		return restarted.Stats().Requests > 0
	})
}

// TestProberHealsOneStrikeOutage is the regression test for the seed's
// permanent-outage bug: internal/frontend marked a node down on a single
// refused dial and never restored it, so one transient error blackholed a
// back end forever. With the prober, the node must return to rotation by
// itself once it answers dials again.
func TestProberHealsOneStrikeOutage(t *testing.T) {
	tr := smallTrace(t, 8, 40)
	store := backend.NewDocStore(tr.Targets)
	_, stop, addr := startBackendAt(t, "127.0.0.1:0", store, 1<<20)

	fe, err := New(Config{
		Backends:               []string{addr},
		Strategy:               "wrr",
		DialTimeout:            250 * time.Millisecond,
		ProbeInterval:          20 * time.Millisecond,
		DialFailuresBeforeDown: 1, // the seed's one-strike policy
	})
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(feLn)
	t.Cleanup(func() { fe.Close() })

	client := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   5 * time.Second,
	}
	get := func() int {
		resp, err := client.Get("http://" + feLn.Addr().String() + tr.At(0).Target)
		if err != nil {
			return -1
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get(); code != 200 {
		t.Fatalf("healthy request: status %d", code)
	}

	// One refused dial marks the only node down: total outage (503s).
	stop()
	waitFor(t, 5*time.Second, "one-strike mark-down", func() bool {
		get()
		return fe.Dispatcher().NodeStates()[0].Down
	})
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("outage request: status %d, want 503", code)
	}

	// Back end returns: without any operator action the prober must lift
	// the mark-down and traffic must flow again. Before the prober
	// existed this state was permanent.
	startBackendAt(t, addr, store, 1<<20)
	waitFor(t, 5*time.Second, "prober recovery", func() bool {
		return !fe.Dispatcher().NodeStates()[0].Down
	})
	waitFor(t, 5*time.Second, "traffic after recovery", func() bool {
		return get() == 200
	})
	if st := fe.Stats(); st.ProbeRecoveries == 0 || st.MarkedDown == 0 {
		t.Fatalf("stats missing the down/up cycle: %+v", st)
	}
}
