package frontend

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"lard/internal/backend"
	"lard/internal/breaker"
	"lard/internal/handoff"
)

// rawGet issues one GET on a fresh raw connection and returns the parsed
// response. The accept-time quota shed answers before reading the
// request — legal HTTP/1.1 (a server may respond early), but net/http's
// transport races its background read against the request write and
// reports "unsolicited response" instead of returning the 429; a plain
// connection just reads whatever comes back.
func rawGet(t *testing.T, addr, target string) *http.Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	fmt.Fprintf(conn, "GET %s HTTP/1.1\r\nHost: lard\r\nConnection: close\r\n\r\n", target)
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp
}

func TestQuotaSheds429WithRetryAfter(t *testing.T) {
	tr := smallTrace(t, 10, 10)
	mc := startCluster(t, 2, "wrr", tr, 1<<20, func(c *Config) {
		c.QuotaRate = 1
		c.QuotaBurst = 2
	})
	// Fresh connections: every loopback request shares one quota bucket
	// (keyed by client IP), and the burst of 2 runs out on the third.
	var shed *http.Response
	ok := 0
	for i := 0; i < 6; i++ {
		resp := rawGet(t, mc.feAddr, tr.At(0).Target)
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			if shed == nil {
				shed = resp
			}
		default:
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	if ok == 0 || shed == nil {
		t.Fatalf("ok=%d shed=%v: want some served within burst and some shed", ok, shed)
	}
	if ra := shed.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 missing Retry-After")
	}
	st := mc.fe.Stats()
	if st.QuotaSheds == 0 {
		t.Fatalf("stats: QuotaSheds = 0 after shedding, %+v", st)
	}
	if st.QuotaClients == 0 {
		t.Fatal("stats: no quota clients tracked")
	}
	var buf bytes.Buffer
	if err := mc.fe.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `lard_fe_sheds_total{reason="quota"}`) {
		t.Fatalf("metrics missing quota shed series:\n%s", buf.String())
	}
}

func TestOverload503CarriesRetryAfter(t *testing.T) {
	tr := smallTrace(t, 5, 5)
	mc := startCluster(t, 1, "wrr", tr, 1<<20,
		func(c *Config) { c.ProbeInterval = -1 })
	mc.fe.SetBackendDown(0, true)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	resp, err := client.Get("http://" + mc.feAddr + tr.At(0).Target)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
}

// TestBreakerTripsOnDeadBackend exercises the breaker layer end to end:
// a dead back end's dial failures trip its breaker well before the
// (deliberately high) mark-down threshold, the node gate detours traffic
// to the live back end, and the trip is visible in Stats and metrics.
func TestBreakerTripsOnDeadBackend(t *testing.T) {
	tr := smallTrace(t, 5, 5)
	store := backend.NewDocStore(tr.Targets)
	be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	fe, err := New(Config{
		Backends:               []string{deadAddr, ln.Addr().String()},
		Strategy:               "wrr",
		DialTimeout:            500 * time.Millisecond,
		DialFailuresBeforeDown: 100, // mark-down effectively off: the breaker acts first
		ProbeInterval:          -1,
		Breaker: &breaker.Config{
			FailureThreshold: 2,
			OpenBase:         time.Minute, // stays open for the whole test
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(feLn)
	t.Cleanup(func() { fe.Close() })

	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	for i := 0; i < 8; i++ {
		resp, err := client.Get("http://" + feLn.Addr().String() + tr.At(0).Target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Every request must succeed: failed dials redispatch to the live
		// node inside the same request.
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	st := fe.Stats()
	if st.BreakerTrips == 0 {
		t.Fatalf("breaker never tripped: %+v", st)
	}
	if len(st.BreakerStates) < 1 || st.BreakerStates[0] != "open" {
		t.Fatalf("breaker states = %v, want node 0 open", st.BreakerStates)
	}
	// The gate keeps further traffic off the dead node: dial failures must
	// stop accumulating once open.
	fails := fe.dialFailures(0)
	for i := 0; i < 4; i++ {
		resp, err := client.Get("http://" + feLn.Addr().String() + tr.At(0).Target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if got := fe.dialFailures(0); got != fails {
		t.Fatalf("gated node still being dialed: failures %d -> %d", fails, got)
	}
	var buf bytes.Buffer
	if err := fe.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `lard_fe_breaker_transitions_total{node="0",to="open"}`) {
		t.Fatalf("metrics missing breaker transition series:\n%s", buf.String())
	}
}

func TestMetricsSurfaceAfterTraffic(t *testing.T) {
	tr := smallTrace(t, 10, 20)
	mc := startCluster(t, 2, "lard", tr, 1<<20)
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://" + mc.feAddr + tr.At(i).Target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	st := mc.fe.Stats()
	if st.Served != 5 {
		t.Fatalf("Served = %d, want 5", st.Served)
	}
	var buf bytes.Buffer
	if err := mc.fe.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"lard_fe_requests_total 5",
		"lard_fe_responses_total 5",
		`lard_fe_request_seconds_bucket{policy="pin",le="+Inf"} 5`,
		`lard_fe_node_request_seconds_bucket{node="0",le="+Inf"}`,
		`lard_fe_request_seconds_count{policy="pin"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}
}
