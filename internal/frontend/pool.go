package frontend

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"time"

	"lard/internal/httprelay"
)

// This file is the front end's per-back-end connection pool. The paper's
// efficiency argument (Section 5) budgets a few hundred microseconds per
// connection handoff; a fresh TCP dial per handoff — and per *re-handoff*
// — spends that budget on connection establishment instead of handoff
// processing. With the session-sequenced handoff protocol
// (internal/handoff, FlagSessionFramed) one back-end connection carries a
// sequence of client sessions, so when a session ends (or re-handoffs
// away) the connection is checked back into a bounded per-node idle pool
// and the next handoff to that node reuses it: the dial is paid once per
// pool fill, not once per handoff.

// DefaultPoolSize is the per-node idle-connection bound used when
// Config.PoolSize is zero.
const DefaultPoolSize = 8

// DefaultPoolIdle is the idle TTL after which a pooled connection is
// discarded, used when Config.PoolIdle is zero. It must stay well below
// the back end's handoff.DefaultSessionIdleTimeout so the front end's
// eviction, not the back end's safety net, ends an idle transport.
const DefaultPoolIdle = 30 * time.Second

// pooledConn is one idle back-end transport: the connection, its buffered
// response reader (which must travel with the conn so no response bytes
// are lost across checkouts), and when it went idle.
type pooledConn struct {
	c     net.Conn
	br    *bufio.Reader
	since time.Time
}

// backendPool is a bounded per-node idle pool with TTL expiry. Checkouts
// are LIFO — the most recently used connection is the least likely to
// have been idle-closed by the back end.
type backendPool struct {
	size int
	ttl  time.Duration

	mu     sync.Mutex
	idle   map[int][]pooledConn
	closed bool

	// Counters, guarded by mu; surfaced through Stats.
	hits      uint64 // checkouts served from the pool
	misses    uint64 // checkouts that found no live idle conn
	evictions uint64 // conns discarded: capacity, TTL, death, or node eviction
}

func newBackendPool(size int, ttl time.Duration) *backendPool {
	return &backendPool{size: size, ttl: ttl, idle: make(map[int][]pooledConn)}
}

// get checks out an idle connection for node, discarding expired or dead
// ones. The liveness probe is a zero-deadline peek: an idle transport
// should have nothing to say, so readable data or EOF both mean the
// connection is unusable (the back end hung up, or broke protocol).
//
// Counter contract: every checkout is exactly one hit or one miss. The
// miss is recorded here, once per get that returns no conn — not in pop —
// so a checkout that pops only expired/dead conns (each recorded as an
// eviction) still counts as the miss it is, and hits+misses always equals
// checkouts in Stats.
func (p *backendPool) get(node int) (net.Conn, *bufio.Reader, bool) {
	for {
		pc, ok := p.pop(node)
		if !ok {
			p.countMiss()
			return nil, nil, false
		}
		if p.ttl > 0 && time.Since(pc.since) > p.ttl {
			p.discard(pc)
			continue
		}
		if pc.br.Buffered() == 0 {
			pc.c.SetReadDeadline(time.Now())
			_, err := pc.br.Peek(1)
			pc.c.SetReadDeadline(time.Time{})
			if err == nil || !isDeadlineErr(err) {
				// Data or EOF where silence was required: dead or dirty.
				p.discard(pc)
				continue
			}
		} else {
			// Buffered bytes between sessions are a protocol violation.
			p.discard(pc)
			continue
		}
		p.mu.Lock()
		p.hits++
		p.mu.Unlock()
		return pc.c, pc.br, true
	}
}

func (p *backendPool) pop(node int) (pooledConn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.idle[node]
	if len(conns) == 0 {
		return pooledConn{}, false
	}
	pc := conns[len(conns)-1]
	// Zero the vacated slot: the entry holds a conn and a 16 KiB reader,
	// and a truncating reslice alone keeps both reachable through the
	// underlying array.
	conns[len(conns)-1] = pooledConn{}
	p.idle[node] = conns[:len(conns)-1]
	return pc, true
}

// discard retires a dead or expired pooled entry: close the transport,
// recycle its reader, count the eviction.
func (p *backendPool) discard(pc pooledConn) {
	pc.c.Close()
	httprelay.PutReader(pc.br)
	p.mu.Lock()
	p.evictions++
	p.mu.Unlock()
}

func (p *backendPool) countMiss() {
	p.mu.Lock()
	p.misses++
	p.mu.Unlock()
}

// put checks a clean (end-of-session sent, response fully read) transport
// back in. Beyond the per-node bound the oldest idle conn is evicted —
// LIFO reuse means the oldest is the most likely to die next anyway.
func (p *backendPool) put(node int, c net.Conn, br *bufio.Reader) {
	p.mu.Lock()
	if p.closed || p.size <= 0 {
		p.mu.Unlock()
		c.Close()
		httprelay.PutReader(br)
		return
	}
	conns := p.idle[node]
	var evict pooledConn
	if len(conns) >= p.size {
		evict = conns[0]
		n := copy(conns, conns[1:])
		// The shift leaves a duplicate of the newest entry in the tail
		// slot; zero it so the reslice does not retain it.
		conns[n] = pooledConn{}
		conns = conns[:n]
		p.evictions++
	}
	p.idle[node] = append(conns, pooledConn{c: c, br: br, since: time.Now()})
	p.mu.Unlock()
	if evict.c != nil {
		evict.c.Close()
		httprelay.PutReader(evict.br)
	}
}

// evictNode discards every idle connection to node — called on drain,
// removal, and mark-down, so no session can be handed to a gone node
// through the pool.
func (p *backendPool) evictNode(node int) {
	p.mu.Lock()
	conns := p.idle[node]
	delete(p.idle, node)
	p.evictions += uint64(len(conns))
	p.mu.Unlock()
	for _, pc := range conns {
		pc.c.Close()
		httprelay.PutReader(pc.br)
	}
}

// sweep discards idle connections past the TTL; the janitor calls it so
// an idle pool drains even with no traffic arriving.
func (p *backendPool) sweep() {
	if p.ttl <= 0 {
		return
	}
	cutoff := time.Now().Add(-p.ttl)
	var dead []pooledConn
	p.mu.Lock()
	for node, conns := range p.idle {
		kept := conns[:0]
		for _, pc := range conns {
			if pc.since.Before(cutoff) {
				dead = append(dead, pc)
				p.evictions++
			} else {
				kept = append(kept, pc)
			}
		}
		// The compaction dropped len(conns)-len(kept) entries but their
		// conns and 16 KiB readers stay reachable through the shared
		// array until the tail is zeroed.
		for i := len(kept); i < len(conns); i++ {
			conns[i] = pooledConn{}
		}
		p.idle[node] = kept
	}
	p.mu.Unlock()
	for _, pc := range dead {
		pc.c.Close()
		httprelay.PutReader(pc.br)
	}
}

// closeAll shuts the pool down; subsequent puts close their conns.
func (p *backendPool) closeAll() {
	p.mu.Lock()
	p.closed = true
	var all []pooledConn
	for _, conns := range p.idle {
		all = append(all, conns...)
	}
	p.idle = make(map[int][]pooledConn)
	p.mu.Unlock()
	for _, pc := range all {
		pc.c.Close()
		httprelay.PutReader(pc.br)
	}
}

// idleCount returns the number of idle connections, total and for node
// (node < 0 skips the per-node count).
func (p *backendPool) idleCount(node int) (total, forNode int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for n, conns := range p.idle {
		total += len(conns)
		if n == node {
			forNode = len(conns)
		}
	}
	return total, forNode
}

// counters snapshots the pool's counters.
func (p *backendPool) counters() (hits, misses, evictions uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.evictions
}

// janitor sweeps expired idle connections until stop closes.
func (p *backendPool) janitor(stop <-chan struct{}) {
	if p.ttl <= 0 {
		return
	}
	interval := p.ttl / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.sweep()
		}
	}
}

// isDeadlineErr reports a read-deadline expiry — the healthy outcome of
// the liveness peek. It unwraps: an instrumented or test conn that wraps
// the deadline error must still read as "alive and silent", not as a
// dead transport to evict.
func isDeadlineErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
