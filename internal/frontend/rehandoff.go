package frontend

import (
	"bufio"
	"net"
	"time"

	"lard/internal/handoff"
	"lard/internal/httprelay"
)

// This file implements the paper's alternative persistent-connection
// design (Section 5): "the protocol allows the front end ... to hand off a
// connection multiple times, so that different requests on the same
// connection can be served by different back ends."
//
// Per-request re-handoff requires the front end to retain HTTP framing —
// it must know where each request and each response ends — so this path
// runs every message through internal/httprelay: request bodies are
// delimited by Content-Length or chunked framing, responses by
// Content-Length, chunked framing, bodiless status rules (1xx/204/304,
// HEAD), or connection close. Chunked responses relay chunk by chunk
// without downgrading the connection, 100 Continue interleaves with the
// withheld request body, and back-end connection reuse honours the
// response's actual HTTP version (an HTTP/1.0 response without an
// explicit keep-alive is never pooled).

// handlePerRequest relays one client connection, re-dispatching every
// request.
func (s *Server) handlePerRequest(client net.Conn) {
	defer client.Close()

	br := bufio.NewReaderSize(client, 16<<10)
	var (
		backend     net.Conn
		backendNode = -1
		backendDone func() // releases the active connection's slot
		backendBR   *bufio.Reader
	)
	defer func() {
		if backendDone != nil {
			backendDone()
		}
		if backend != nil {
			backend.Close()
		}
	}()

	for {
		client.SetReadDeadline(time.Now().Add(s.cfg.HeaderTimeout))
		head, err := httprelay.ReadRequestHead(br, s.cfg.MaxHeaderBytes)
		if err != nil {
			s.headReadFailed(client, err, "rehandoff head")
			return
		}
		client.SetReadDeadline(time.Time{})

		// The connection is between requests: release the previous
		// request's slot before re-dispatching, so the same-backend fast
		// path doesn't need transient admission headroom (at a saturated
		// budget that would 503 requests needing no new capacity). A
		// concurrent connection may win the freed slot first — admission
		// is first-come-first-served at saturation, which is fair but not
		// sticky; an atomic exchange is impossible anyway when the new
		// target hashes to a different dispatcher shard.
		if backendDone != nil {
			backendDone()
			backendDone = nil
		}
		node, done, err := s.dispatch(head.Target, head.Size())
		if err != nil {
			s.rejected.Add(1)
			writeServiceUnavailable(client)
			return
		}
		backendDone = done

		// Re-handoff: switch back ends when the policy says so.
		if backend == nil || node != backendNode {
			if backend != nil {
				backend.Close()
				s.rehandoffs.Add(1)
			}
			conn, err := s.dialRehandoff(node, client, head)
			if err != nil {
				s.errors.Add(1)
				s.logf("frontend: rehandoff dial backend %d: %v", node, err)
				writeBadGateway(client)
				return
			}
			backend = conn
			backendNode = node
			backendBR = bufio.NewReaderSize(backend, 16<<10)
			s.handoffs.Add(1)
		} else {
			// Same back end: reuse the connection under the fresh slot.
			if _, err := backend.Write(head.Raw); err != nil {
				s.errors.Add(1)
				s.logf("frontend: rehandoff write: %v", err)
				return
			}
		}

		// Forward the request body. Under Expect: 100-continue the
		// client withholds it until the back end's 100 arrives, so the
		// copy becomes the relay's on100 hook instead of running here.
		bodySent := !head.HasBody()
		sendBody := func() error {
			if bodySent {
				return nil
			}
			bodySent = true
			n, err := httprelay.RelayRequestBody(backend, br, head)
			s.forward.ClientToBackend.Add(n)
			return err
		}
		var on100 func() error
		if head.ExpectContinue && !bodySent {
			on100 = sendBody
		} else if err := sendBody(); err != nil {
			s.errors.Add(1)
			s.logf("frontend: rehandoff request body: %v", err)
			return
		}

		// Relay the response(s); the head travels to the client verbatim,
		// so the connection semantics the client sees are the back end's.
		n, reusable, err := httprelay.RelayResponse(client, backendBR, head.Method, s.cfg.MaxHeaderBytes, on100)
		s.forward.BackendToClient.Add(n)
		if err != nil {
			s.errors.Add(1)
			s.logf("frontend: rehandoff response: %v", err)
			return
		}
		// Stop unless every party can continue: the request asked to keep
		// the connection, the back end's response says its side stays
		// open (relayed verbatim, the client saw the same signal), and no
		// Expect dance left a request body undelivered.
		if !head.KeepAlive || !reusable || !bodySent {
			return
		}
	}
}

// dialRehandoff opens a back-end connection and sends the handoff message
// for one request.
func (s *Server) dialRehandoff(node int, client net.Conn, head httprelay.RequestHead) (net.Conn, error) {
	backend, err := s.dialBackend(node)
	if err != nil {
		return nil, err
	}
	if err := handoff.Send(backend, client.RemoteAddr().String(), head.Raw, handoff.FlagRehandoff); err != nil {
		backend.Close()
		return nil, err
	}
	return backend, nil
}
