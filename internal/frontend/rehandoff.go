package frontend

import (
	"bufio"
	"errors"
	"io"
	"net"
	"time"

	"lard/internal/handoff"
	"lard/internal/httprelay"
	"lard/pkg/lard"
)

// This file is the front end's one relay loop: every client connection —
// whatever its connection policy — runs through a lard.Session that owns
// the paper's Section 5 decision ("the protocol allows the front end ...
// to hand off a connection multiple times, so that different requests on
// the same connection can be served by different back ends"). The
// session consults the configured ConnPolicy per request: under "pin" it
// keeps returning the first back end (and the loop keeps reusing one
// back-end connection, the paper's whole-connection handoff), under
// "perreq" every request follows the strategy, and under "costaware"
// the session moves only when the locality regained is worth the switch.
// Because the decision is re-taken per request, a session whose back end
// drains, fails, or is removed moves on its next request under every
// policy.
//
// Back-end connections come from the per-node pool (pool.go): a handoff
// is a session-framed header on a pooled transport when one is idle, and
// a fresh dial only on a pool miss, so the paper's ~300µs handoff budget
// is not spent on TCP establishment per handoff. Three error paths keep
// back-end trouble away from the client:
//
//   - a failed dial re-dispatches the session to another eligible node
//     (bounded attempts, failed nodes excluded) before any 502 — a
//     single refused connection must not surface to the client while
//     healthy nodes exist;
//   - a pooled transport that died while idle (header write fails, or
//     the first response read returns nothing) is stale: retried once,
//     transparently, on a freshly dialed connection — but never when
//     part of the request body has already been relayed and cannot be
//     replayed;
//   - the re-handoff counter moves only after the replacement handoff
//     succeeds, so failed moves show up as RehandoffFails, not as
//     re-handoffs the phttp figures would credit.
//
// Retaining HTTP framing is what makes multiple handoff — and pooling —
// possible: the front end must know where each request and each response
// ends, so the loop runs every message through internal/httprelay. The
// end of the session's last response is exactly the moment the back-end
// transport is back at a message boundary and can be checked into the
// pool.

// dialRedispatchLimit bounds how many alternate nodes a session tries
// after a failed back-end dial before giving up with a 502.
const dialRedispatchLimit = 2

// backendConn is the relay loop's handle on one handed-off back-end
// connection: the transport, its buffered response reader, and the
// session-framing writer when the pooled (v2) protocol is in use.
type backendConn struct {
	node int
	c    net.Conn
	br   *bufio.Reader
	w    io.Writer              // request-direction writer: sw when framed, else c
	sw   *handoff.SessionWriter // non-nil iff the handoff was session-framed

	fromPool bool // checked out of the idle pool (stale-retry eligible)
	served   int  // complete responses relayed on this checkout
	clean    bool // at a message boundary: eligible for pool check-in
}

// handleConn relays one client connection through its session.
func (s *Server) handleConn(client net.Conn) {
	defer client.Close()

	// Connection-accept quota gate: a client already over its rate is
	// shed before the front end reads a byte or opens a session. The
	// check is non-consuming — the per-request Allow below pays.
	quotaKey := clientQuotaKey(client)
	if ok, retry := s.ov.quota.Check(quotaKey, s.now()); !ok {
		s.shedQuota(client, retry)
		return
	}

	sess := s.d.NewSession(s.policy)
	defer sess.Close()
	s.sessions.Add(1)
	s.activeSess.Add(1)
	defer s.activeSess.Add(-1)

	br := httprelay.GetReader(client)
	var (
		backend     *backendConn
		requestDone func()
	)
	defer func() {
		if requestDone != nil {
			requestDone()
		}
		s.releaseBackend(backend)
		// The loop is the reader's only user; once it returns the reader
		// can serve the next client connection.
		httprelay.PutReader(br)
	}()

	for {
		client.SetReadDeadline(time.Now().Add(s.cfg.HeaderTimeout))
		head, err := httprelay.ReadRequestHead(br, s.cfg.MaxHeaderBytes)
		if err != nil {
			s.headReadFailed(client, err, "reading request head")
			return
		}
		client.SetReadDeadline(time.Time{})
		reqStart := s.now()

		// Per-request quota: each parsed head costs one token; an empty
		// bucket sheds the request (and, via Connection: close, the
		// connection) with a Retry-After computed from the deficit.
		if ok, retry := s.ov.quota.Allow(quotaKey, reqStart); !ok {
			s.shedQuota(client, retry)
			return
		}
		s.ov.m.requests.Inc()

		// The session owns the pin/re-handoff decision and the
		// connection-slot accounting across moves; both a saturated
		// cluster (lard.ErrOverloaded) and a total outage
		// (lard.ErrUnavailable) surface to the client as 503.
		node, moved, done, err := sess.Dispatch(reqStart,
			lard.Request{Target: head.Target, Size: head.Size()})
		if err != nil {
			s.rejected.Add(1)
			s.ov.m.shedOverload.Inc()
			writeServiceUnavailable(client)
			return
		}
		s.dispatches.Add(1)
		requestDone = done

		if backend == nil || moved {
			// Re-handoff (or first handoff): the old transport is at a
			// message boundary — the loop only continues past a complete
			// reusable response — so it goes back to the pool for the next
			// session needing its node.
			prev := backend
			if prev != nil {
				s.releaseBackend(prev)
				backend = nil
			}
			nb, ndone, err := s.establishBackend(sess, node, client, head)
			if err != nil {
				if prev != nil {
					s.rehandoffFails.Add(1)
				}
				if errors.Is(err, errBreakerDenied) {
					// No candidate node's breaker would admit the handoff:
					// the cluster is recovering, not broken — shed with a
					// retry hint rather than a 502.
					s.ov.m.shedBreaker.Inc()
					writeServiceUnavailable(client)
					return
				}
				s.errors.Add(1)
				s.logf("frontend: handoff dial backend %d: %v", node, err)
				writeBadGateway(client)
				return
			}
			if ndone != nil {
				// The dial failed and the session re-dispatched: the
				// replacement claim's done supersedes the original.
				requestDone = ndone
			}
			backend = nb
			s.handoffs.Add(1)
			if prev != nil && nb.node != prev.node {
				// Counted only now, after the replacement handoff
				// succeeded — and only if the back end actually changed: a
				// failed move, or a dial-failure redispatch that landed
				// back on the previous node, must not inflate the
				// re-handoff stats the phttp figures report.
				s.rehandoffs.Add(1)
			}
		} else {
			// Same back end: the next request rides the same handed-off
			// session under the fresh slot.
			backend.clean = false
			if _, err := backend.w.Write(head.Raw); err != nil {
				// First write of a new request onto a reused connection
				// failed: the back end silently dropped its keep-alive.
				// Safe to retry for any method — an errored write cannot
				// have delivered a complete, parseable request (a partial
				// frame or truncated head never executes) — so retry once
				// on a fresh connection, re-dispatching if the node
				// itself is what died, instead of killing the session.
				prev := backend.node
				s.logf("frontend: stale back-end conn to %d (write: %v), retrying fresh", prev, err)
				s.discardBackend(backend)
				backend = nil
				s.staleRetries.Add(1)
				nb, ndone, err2 := s.recoverBackend(sess, prev, client, head)
				if err2 != nil {
					s.errors.Add(1)
					s.logf("frontend: stale-retry dial backend %d: %v", prev, err2)
					writeBadGateway(client)
					return
				}
				if ndone != nil {
					requestDone = ndone
				}
				backend = nb
				s.handoffs.Add(1)
				if nb.node != prev {
					s.rehandoffs.Add(1)
				}
			}
		}

		// Forward the request body. Under Expect: 100-continue the
		// client withholds it until the back end's 100 arrives, so the
		// copy becomes the relay's on100 hook instead of running here.
		// bodyWritten tracks actual body bytes leaving for the back end:
		// once any have, the request can no longer be replayed on a
		// different connection.
		bodySent := !head.HasBody()
		bodyWritten := false
		sendBody := func() error {
			if bodySent {
				return nil
			}
			bodySent = true
			bodyWritten = true
			n, err := httprelay.RelayRequestBody(backend.w, br, head)
			s.forward.ClientToBackend.Add(n)
			return err
		}
		var on100 func() error
		if head.ExpectContinue && !bodySent {
			on100 = sendBody
		} else if err := sendBody(); err != nil {
			s.errors.Add(1)
			s.logf("frontend: relay request body: %v", err)
			return
		}

		// Relay the response(s); the head travels to the client verbatim,
		// so the connection semantics the client sees are the back end's.
		// The write tracker tells a dead pooled transport (no client
		// write was ever attempted: the failure was reading the back
		// end's head) from a client-side write failure — retrying the
		// latter would re-execute a request the back end already served.
		cw := &writeTracker{w: client}
		n, reusable, err := httprelay.RelayResponseFrom(cw, backend.br, backend.c, head.Method, s.cfg.MaxHeaderBytes, on100)
		s.forward.BackendToClient.Add(n)
		if err != nil && !cw.wrote && backend.fromPool && backend.served == 0 &&
			!bodyWritten && idempotentMethod(head.Method) {
			// The pooled transport accepted the handoff but produced no
			// response — the keep-alive race: the back end closed while
			// the header was in flight. Nothing reached the client and no
			// body was consumed, so the request replays verbatim on a
			// fresh connection. Idempotent methods only: the header write
			// succeeded, so the back end may have executed the request
			// before dying — net/http's transport draws the same line.
			prev := backend.node
			s.logf("frontend: stale back-end conn to %d (read: %v), retrying fresh", prev, err)
			s.discardBackend(backend)
			backend = nil
			s.staleRetries.Add(1)
			if nb, ndone, err2 := s.recoverBackend(sess, prev, client, head); err2 == nil {
				if ndone != nil {
					requestDone = ndone
				}
				backend = nb
				s.handoffs.Add(1)
				if nb.node != prev {
					s.rehandoffs.Add(1)
				}
				n, reusable, err = httprelay.RelayResponseFrom(cw, backend.br, backend.c, head.Method, s.cfg.MaxHeaderBytes, on100)
				s.forward.BackendToClient.Add(n)
			}
		}
		if err != nil {
			s.errors.Add(1)
			s.logf("frontend: relay response: %v", err)
			return
		}
		// The request is complete: under a non-pinning policy this
		// releases the connection slot, so an idle keep-alive connection
		// holds no admission capacity between requests. requestDone, not
		// done: a dial-failure redispatch replaced the original claim
		// with the fallback node's, and that one must be released.
		requestDone()
		requestDone = nil
		backend.served++
		s.observeRequest(backend.node, s.now()-reqStart)
		// The transport is at a message boundary iff the response was
		// fully framed and keep-alive, and no Expect dance left request
		// body bytes undelivered.
		backend.clean = reusable && bodySent
		// Stop unless every party can continue: the request asked to keep
		// the connection, the back end's response says its side stays
		// open (relayed verbatim, the client saw the same signal), and no
		// Expect dance left a request body undelivered.
		if !head.KeepAlive || !reusable || !bodySent {
			return
		}
	}
}

// establishBackend obtains a handed-off back-end connection for the
// session's chosen node, re-dispatching to alternate nodes on dial
// failure: a single refused dial must not become a client-visible 502
// while healthy back ends exist. When the session was re-dispatched, the
// returned done func supersedes the one from the original Dispatch.
func (s *Server) establishBackend(sess *lard.Session, node int, client net.Conn, head httprelay.RequestHead) (*backendConn, func(), error) {
	// The breaker admission runs before any connection work: a HalfOpen
	// node's probe budget and a Recovering node's admission fraction
	// meter new handoffs here. A denial is handled exactly like a dial
	// failure — try the alternates.
	if !s.breakerAllow(node) {
		return s.redispatchBackend(sess, client, head, []int{node}, errBreakerDenied)
	}
	b, err := s.connectBackend(node, client, head, true)
	if err == nil {
		return b, nil, nil
	}
	return s.redispatchBackend(sess, client, head, []int{node}, err)
}

// recoverBackend replaces a back-end connection that died mid-session
// (stale pooled transport, dropped keep-alive) for a fully replayable
// request: a fresh dial to the same node first, the re-dispatch loop if
// that node refuses too — its process may be what killed the connection.
func (s *Server) recoverBackend(sess *lard.Session, node int, client net.Conn, head httprelay.RequestHead) (*backendConn, func(), error) {
	if !s.breakerAllow(node) {
		return s.redispatchBackend(sess, client, head, []int{node}, errBreakerDenied)
	}
	b, err := s.connectBackend(node, client, head, false)
	if err == nil {
		return b, nil, nil
	}
	return s.redispatchBackend(sess, client, head, []int{node}, err)
}

// redispatchBackend is the bounded dial-failure recovery loop: ask the
// session for the least-loaded eligible node outside tried, connect,
// repeat. dialErr (the failure that brought us here) is surfaced when no
// alternate works out.
func (s *Server) redispatchBackend(sess *lard.Session, client net.Conn, head httprelay.RequestHead, tried []int, dialErr error) (*backendConn, func(), error) {
	req := lard.Request{Target: head.Target, Size: head.Size()}
	for i := 0; i < dialRedispatchLimit; i++ {
		alt, done, rerr := sess.Redispatch(time.Since(s.start), req, tried)
		if rerr != nil {
			// No alternate can take the request; surface the dial error.
			return nil, nil, dialErr
		}
		if !s.breakerAllow(alt) {
			// The alternate's breaker refused (e.g. it is Recovering and
			// this request fell outside its admission fraction): release
			// the claim and keep looking.
			done()
			tried = append(tried, alt)
			dialErr = errBreakerDenied
			continue
		}
		b, aerr := s.connectBackend(alt, client, head, true)
		if aerr == nil {
			s.redispatches.Add(1)
			return b, done, nil
		}
		// The alternate refused too: release its slot right away instead
		// of leaving it to the next Redispatch, so the dead claim stops
		// consuming admission budget (lardlint: donecall).
		done()
		tried = append(tried, alt)
		dialErr = aerr
	}
	return nil, nil, dialErr
}

// connectBackend obtains a connection to node carrying this session's
// handoff header: from the idle pool when usePool is set (with one
// transparent fall-through to a fresh dial if the pooled transport turns
// out stale), else by dialing. The fresh-dial path keeps the mark-down
// accounting of dialBackend.
func (s *Server) connectBackend(node int, client net.Conn, head httprelay.RequestHead, usePool bool) (*backendConn, error) {
	clientAddr := client.RemoteAddr().String()
	if usePool && s.pool != nil {
		if c, br, ok := s.pool.get(node); ok {
			b := &backendConn{node: node, c: c, br: br, fromPool: true}
			if err := s.sendHandoff(b, clientAddr, head.Raw); err == nil {
				return b, nil
			}
			// Stale pooled transport: the write failed before anything
			// reached the client. Fall through to a fresh dial.
			s.logf("frontend: stale pooled conn to %d, dialing fresh", node)
			s.discardBackend(b)
			s.staleRetries.Add(1)
		}
	}
	c, err := s.dialBackend(node)
	if err != nil {
		return nil, err
	}
	b := &backendConn{node: node, c: c, br: httprelay.GetReader(c)}
	if err := s.sendHandoff(b, clientAddr, head.Raw); err != nil {
		s.discardBackend(b)
		return nil, err
	}
	return b, nil
}

// sendHandoff writes the handoff header for one client session and arms
// the connection's request-direction writer. Every handoff is flagged
// re-handoffable; with pooling enabled it is also session-framed, so the
// transport survives the session for reuse.
func (s *Server) sendHandoff(b *backendConn, clientAddr string, initial []byte) error {
	flags := handoff.FlagRehandoff
	if s.pool != nil {
		flags |= handoff.FlagSessionFramed
	}
	if err := handoff.Send(b.c, clientAddr, initial, flags); err != nil {
		return err
	}
	if s.pool != nil {
		b.sw = handoff.NewSessionWriter(b.c)
		b.w = b.sw
	} else {
		b.w = b.c
	}
	return nil
}

// releaseBackend retires the relay loop's hold on a back-end connection:
// a clean session-framed transport gets its end-of-session record and
// goes back to the idle pool (unless its node can no longer take
// traffic), anything else is closed and its reader recycled.
func (s *Server) releaseBackend(b *backendConn) {
	if b == nil {
		return
	}
	if b.clean && b.sw != nil && s.pool != nil && s.nodePoolable(b.node) {
		if err := b.sw.End(); err == nil {
			// The reader travels with the pooled conn: response bytes it
			// may buffer belong to that transport.
			s.pool.put(b.node, b.c, b.br)
			return
		}
	}
	s.discardBackend(b)
}

// discardBackend closes a back-end transport and recycles its reader.
// The caller must drop every reference to b.br (callers in the relay
// loop null out `backend` right after).
func (s *Server) discardBackend(b *backendConn) {
	b.c.Close()
	httprelay.PutReader(b.br)
	b.br = nil
}

// nodePoolable reports whether idle connections for node may enter the
// pool: a draining, down, or removed node must not keep warm transports
// that could hand it a session.
func (s *Server) nodePoolable(node int) bool {
	return s.d.NodeEligible(node)
}

// idempotentMethod reports whether a request with this method may be
// transparently replayed after the back end might already have executed
// it (RFC 7231 §4.2.2's safe/idempotent set as net/http's transport
// applies it to connection-reuse retries).
func idempotentMethod(m string) bool {
	switch m {
	case "GET", "HEAD", "OPTIONS", "TRACE":
		return true
	}
	return false
}

// writeTracker records whether any write to the client was attempted,
// which is what distinguishes "the back end never answered" (retryable
// on a pooled conn) from "the client went away mid-response" (not).
type writeTracker struct {
	w     io.Writer
	wrote bool
}

func (t *writeTracker) Write(p []byte) (int, error) {
	t.wrote = true
	return t.w.Write(p)
}

// ReadFrom keeps the tracker from hiding the client connection's
// io.ReaderFrom: with it, io.Copy on the response body reaches
// TCPConn.ReadFrom and the kernel splice path can engage.
func (t *writeTracker) ReadFrom(r io.Reader) (int64, error) {
	t.wrote = true
	if rf, ok := t.w.(io.ReaderFrom); ok {
		return rf.ReadFrom(r)
	}
	return io.Copy(t.w, r)
}
