package frontend

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"time"

	"lard/internal/handoff"
)

// This file implements the paper's alternative persistent-connection
// design (Section 5): "the protocol allows the front end ... to hand off a
// connection multiple times, so that different requests on the same
// connection can be served by different back ends."
//
// Per-request re-handoff requires the front end to retain HTTP framing
// (it must know where each request and response ends), so this path is a
// minimal HTTP/1.x relay: request bodies are delimited by Content-Length,
// responses by Content-Length or connection close. Responses without a
// length (e.g. chunked) downgrade the connection to
// forward-until-close on the current back end.

// handlePerRequest relays one client connection, re-dispatching every
// request.
func (s *Server) handlePerRequest(client net.Conn) {
	defer client.Close()

	br := bufio.NewReaderSize(client, 16<<10)
	var (
		backend     net.Conn
		backendNode = -1
		backendDone func() // releases the active connection's slot
		backendBR   *bufio.Reader
	)
	defer func() {
		if backendDone != nil {
			backendDone()
		}
		if backend != nil {
			backend.Close()
		}
	}()

	for {
		client.SetReadDeadline(time.Now().Add(s.cfg.HeaderTimeout))
		head, err := readRequestHead(br, s.cfg.MaxHeaderBytes)
		if err != nil {
			if head.raw == nil || len(head.raw) == 0 {
				return // clean close between requests
			}
			s.errors.Add(1)
			s.logf("frontend: rehandoff head: %v", err)
			return
		}
		client.SetReadDeadline(time.Time{})

		// The connection is between requests: release the previous
		// request's slot before re-dispatching, so the same-backend fast
		// path doesn't need transient admission headroom (at a saturated
		// budget that would 503 requests needing no new capacity). A
		// concurrent connection may win the freed slot first — admission
		// is first-come-first-served at saturation, which is fair but not
		// sticky; an atomic exchange is impossible anyway when the new
		// target hashes to a different dispatcher shard.
		if backendDone != nil {
			backendDone()
			backendDone = nil
		}
		node, done, err := s.dispatch(head.target, head.contentLength)
		if err != nil {
			s.rejected.Add(1)
			writeServiceUnavailable(client)
			return
		}
		backendDone = done

		// Re-handoff: switch back ends when the policy says so.
		if backend == nil || node != backendNode {
			if backend != nil {
				backend.Close()
				s.rehandoffs.Add(1)
			}
			conn, err := s.dialRehandoff(node, client, head)
			if err != nil {
				s.errors.Add(1)
				s.logf("frontend: rehandoff dial backend %d: %v", node, err)
				writeBadGateway(client)
				return
			}
			backend = conn
			backendNode = node
			backendBR = bufio.NewReaderSize(backend, 16<<10)
			s.handoffs.Add(1)
		} else {
			// Same back end: reuse the connection under the fresh slot.
			if _, err := backend.Write(head.raw); err != nil {
				s.errors.Add(1)
				s.logf("frontend: rehandoff write: %v", err)
				return
			}
		}

		// Relay the request body, if any.
		if head.contentLength > 0 {
			n, err := io.CopyN(backend, br, head.contentLength)
			s.forward.ClientToBackend.Add(n)
			if err != nil {
				s.errors.Add(1)
				return
			}
		}

		// Relay the response; keepAlive may be cleared by the response's
		// own framing.
		keepAlive, err := s.relayResponse(client, backendBR, head.method)
		if err != nil {
			s.errors.Add(1)
			s.logf("frontend: rehandoff response: %v", err)
			return
		}
		if !keepAlive || !head.keepAlive {
			return
		}
	}
}

// dialRehandoff opens a back-end connection and sends the handoff message
// for one request.
func (s *Server) dialRehandoff(node int, client net.Conn, head requestHead) (net.Conn, error) {
	backend, err := s.dialBackend(node)
	if err != nil {
		return nil, err
	}
	if err := handoff.Send(backend, client.RemoteAddr().String(), head.raw, handoff.FlagRehandoff); err != nil {
		backend.Close()
		return nil, err
	}
	return backend, nil
}

// relayResponse copies one HTTP response from the back end to the client,
// returning whether the back-end connection remains usable for another
// request.
func (s *Server) relayResponse(client net.Conn, backendBR *bufio.Reader, method string) (keepAlive bool, err error) {
	var raw []byte
	status := ""
	contentLength := int64(-1)
	keepAlive = true
	for {
		line, err := backendBR.ReadString('\n')
		raw = append(raw, line...)
		if err != nil {
			return false, fmt.Errorf("reading response head: %w", err)
		}
		trimmed := trimCRLF(line)
		if status == "" {
			status = trimmed
			continue
		}
		if trimmed == "" {
			break
		}
		if name, value, ok := splitHeader(trimmed); ok {
			switch name {
			case "content-length":
				if v, perr := strconv.ParseInt(value, 10, 64); perr == nil {
					contentLength = v
				}
			case "connection":
				if equalsFold(value, "close") {
					keepAlive = false
				}
			case "transfer-encoding":
				// No chunked parser on the relay path: downgrade to
				// copy-until-close.
				contentLength = -1
				keepAlive = false
			}
		}
	}
	if _, err := client.Write(raw); err != nil {
		return false, err
	}
	s.forward.BackendToClient.Add(int64(len(raw)))

	if method == "HEAD" || contentLength == 0 {
		return keepAlive, nil
	}
	if contentLength > 0 {
		n, err := io.CopyN(client, backendBR, contentLength)
		s.forward.BackendToClient.Add(n)
		if err != nil {
			return false, err
		}
		return keepAlive, nil
	}
	// Unknown length: copy until the back end closes.
	n, _ := io.Copy(client, backendBR)
	s.forward.BackendToClient.Add(n)
	return false, nil
}
