package frontend

import (
	"bufio"
	"net"
	"time"

	"lard/internal/handoff"
	"lard/internal/httprelay"
	"lard/pkg/lard"
)

// This file is the front end's one relay loop: every client connection —
// whatever its connection policy — runs through a lard.Session that owns
// the paper's Section 5 decision ("the protocol allows the front end ...
// to hand off a connection multiple times, so that different requests on
// the same connection can be served by different back ends"). The
// session consults the configured ConnPolicy per request: under "pin" it
// keeps returning the first back end (and the loop keeps reusing one
// back-end connection, the paper's whole-connection handoff), under
// "perreq" every request follows the strategy, and under "costaware"
// the session moves only when the locality regained is worth the switch.
// Because the decision is re-taken per request, a session whose back end
// drains, fails, or is removed moves on its next request under every
// policy — the membership semantics PR 3's split pinned/per-request
// paths could not provide.
//
// Retaining HTTP framing is what makes multiple handoff possible — the
// front end must know where each request and each response ends — so
// the loop runs every message through internal/httprelay: request bodies
// are delimited by Content-Length or chunked framing, responses by
// Content-Length, chunked framing, bodiless status rules (1xx/204/304,
// HEAD), or connection close. Chunked responses relay chunk by chunk
// without downgrading the connection, 100 Continue interleaves with the
// withheld request body, and back-end connection reuse honours the
// response's actual HTTP version (an HTTP/1.0 response without an
// explicit keep-alive is never pooled).

// handleConn relays one client connection through its session.
func (s *Server) handleConn(client net.Conn) {
	defer client.Close()

	sess := s.d.NewSession(s.policy)
	defer sess.Close()
	s.sessions.Add(1)
	s.activeSess.Add(1)
	defer s.activeSess.Add(-1)

	br := bufio.NewReaderSize(client, 16<<10)
	var (
		backend     net.Conn
		backendBR   *bufio.Reader
		requestDone func()
	)
	defer func() {
		if requestDone != nil {
			requestDone()
		}
		if backend != nil {
			backend.Close()
		}
	}()

	for {
		client.SetReadDeadline(time.Now().Add(s.cfg.HeaderTimeout))
		head, err := httprelay.ReadRequestHead(br, s.cfg.MaxHeaderBytes)
		if err != nil {
			s.headReadFailed(client, err, "reading request head")
			return
		}
		client.SetReadDeadline(time.Time{})

		// The session owns the pin/re-handoff decision and the
		// connection-slot accounting across moves; both a saturated
		// cluster (lard.ErrOverloaded) and a total outage
		// (lard.ErrUnavailable) surface to the client as 503.
		node, moved, done, err := sess.Dispatch(time.Since(s.start),
			lard.Request{Target: head.Target, Size: head.Size()})
		if err != nil {
			s.rejected.Add(1)
			writeServiceUnavailable(client)
			return
		}
		s.dispatches.Add(1)
		requestDone = done

		// Re-handoff: switch back ends when the session moved (and dial
		// the first back end on the first request).
		if backend == nil || moved {
			if backend != nil {
				backend.Close()
				s.rehandoffs.Add(1)
			}
			conn, err := s.dialHandoff(node, client, head)
			if err != nil {
				s.errors.Add(1)
				s.logf("frontend: handoff dial backend %d: %v", node, err)
				writeBadGateway(client)
				return
			}
			backend = conn
			backendBR = bufio.NewReaderSize(backend, 16<<10)
			s.handoffs.Add(1)
		} else {
			// Same back end: reuse the connection under the fresh slot.
			if _, err := backend.Write(head.Raw); err != nil {
				s.errors.Add(1)
				s.logf("frontend: relay write: %v", err)
				return
			}
		}

		// Forward the request body. Under Expect: 100-continue the
		// client withholds it until the back end's 100 arrives, so the
		// copy becomes the relay's on100 hook instead of running here.
		bodySent := !head.HasBody()
		sendBody := func() error {
			if bodySent {
				return nil
			}
			bodySent = true
			n, err := httprelay.RelayRequestBody(backend, br, head)
			s.forward.ClientToBackend.Add(n)
			return err
		}
		var on100 func() error
		if head.ExpectContinue && !bodySent {
			on100 = sendBody
		} else if err := sendBody(); err != nil {
			s.errors.Add(1)
			s.logf("frontend: relay request body: %v", err)
			return
		}

		// Relay the response(s); the head travels to the client verbatim,
		// so the connection semantics the client sees are the back end's.
		n, reusable, err := httprelay.RelayResponse(client, backendBR, head.Method, s.cfg.MaxHeaderBytes, on100)
		s.forward.BackendToClient.Add(n)
		if err != nil {
			s.errors.Add(1)
			s.logf("frontend: relay response: %v", err)
			return
		}
		// The request is complete: under a non-pinning policy this
		// releases the connection slot, so an idle keep-alive connection
		// holds no admission capacity between requests.
		done()
		requestDone = nil
		// Stop unless every party can continue: the request asked to keep
		// the connection, the back end's response says its side stays
		// open (relayed verbatim, the client saw the same signal), and no
		// Expect dance left a request body undelivered.
		if !head.KeepAlive || !reusable || !bodySent {
			return
		}
	}
}

// dialHandoff opens a back-end connection and sends the handoff message
// for one request. Every handoff is flagged re-handoffable: whether the
// connection actually moves again is the session's decision, taken per
// request.
func (s *Server) dialHandoff(node int, client net.Conn, head httprelay.RequestHead) (net.Conn, error) {
	backend, err := s.dialBackend(node)
	if err != nil {
		return nil, err
	}
	if err := handoff.Send(backend, client.RemoteAddr().String(), head.Raw, handoff.FlagRehandoff); err != nil {
		backend.Close()
		return nil, err
	}
	return backend, nil
}
