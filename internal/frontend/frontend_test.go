package frontend

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"lard/internal/backend"
	"lard/internal/core"
	"lard/internal/handoff"
	"lard/internal/loadgen"
	"lard/internal/trace"
	"lard/pkg/lard"
)

// miniCluster is a live prototype cluster on loopback: n back ends behind
// one front end.
type miniCluster struct {
	fe       *Server
	feAddr   string
	backends []*backend.Server
}

// startCluster builds and starts a cluster with the given policy and
// back-end count. The store serves the catalog of tr. Optional mod funcs
// adjust the front-end Config before it is built.
func startCluster(t *testing.T, n int, strategy string, tr *trace.Trace, cacheBytes int64, mod ...func(*Config)) *miniCluster {
	t.Helper()
	mc := &miniCluster{}
	store := backend.NewDocStore(tr.Targets)
	var addrs []string
	for i := 0; i < n; i++ {
		be := backend.New(backend.Config{
			Store:         store,
			CacheBytes:    cacheBytes,
			DiskTimeScale: 0.001, // 28µs "seeks": fast tests, real ordering
		})
		ln, err := handoff.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: be.Handler()}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close(); ln.Close() })
		mc.backends = append(mc.backends, be)
		addrs = append(addrs, ln.Addr().String())
	}
	cfg := Config{Backends: addrs, Strategy: strategy}
	for _, m := range mod {
		m(&cfg)
	}
	fe, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() { fe.Close() })
	mc.fe = fe
	mc.feAddr = ln.Addr().String()
	return mc
}

func smallTrace(t *testing.T, files, requests int) *trace.Trace {
	t.Helper()
	cfg := trace.SyntheticConfig{
		Name:         "live",
		Targets:      files,
		Requests:     requests,
		DataSetBytes: int64(files) * 4096,
		ZipfAlpha:    0.9,
		SizeSigma:    0.4,
		MinFileBytes: 512,
	}
	return trace.MustGenerate(cfg, 99)
}

func TestEndToEndSingleRequest(t *testing.T) {
	tr := smallTrace(t, 20, 100)
	mc := startCluster(t, 2, "wrr", tr, 1<<20)
	target := tr.At(0).Target
	resp, err := http.Get("http://" + mc.feAddr + target)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	want := backend.ContentBytes(target, tr.At(0).Size)
	if !bytes.Equal(body, want) {
		t.Fatalf("content corrupted through handoff: %d vs %d bytes", len(body), len(want))
	}
	st := mc.fe.Stats()
	if st.Handoffs != 1 || st.Accepted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLARDBeatsWRRHitRatioLive(t *testing.T) {
	// The paper's prototype result (Figure 18's mechanism): with per-node
	// caches that cannot hold the working set, LARD's partitioning yields
	// far better cluster-wide hit ratios than WRR on real HTTP traffic.
	tr := smallTrace(t, 60, 600)
	perNodeCache := int64(20 * 4096) // each node caches ~1/3 of the catalog

	hitRatio := func(strategy string) float64 {
		mc := startCluster(t, 3, strategy, tr, perNodeCache)
		st, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL: "http://" + mc.feAddr,
			Trace:   tr,
			Clients: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st.Errors > 0 {
			t.Fatalf("loadgen errors: %d", st.Errors)
		}
		var hits, reqs uint64
		for _, be := range mc.backends {
			s := be.Stats()
			hits += s.Hits
			reqs += s.Requests
		}
		if reqs == 0 {
			t.Fatal("no requests reached back ends")
		}
		return float64(hits) / float64(reqs)
	}

	wrr := hitRatio("wrr")
	lard := hitRatio("lard")
	if lard <= wrr+0.1 {
		t.Fatalf("live LARD hit ratio %.3f not well above WRR %.3f", lard, wrr)
	}
}

func TestPersistentConnectionsSingleBackend(t *testing.T) {
	// Default mode: one handoff serves many requests on a keep-alive
	// connection.
	tr := smallTrace(t, 10, 50)
	mc := startCluster(t, 2, "lard/r", tr, 1<<20)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
	for i := 0; i < 10; i++ {
		r := tr.At(i)
		resp, err := client.Get("http://" + mc.feAddr + r.Target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	client.CloseIdleConnections()
	st := mc.fe.Stats()
	if st.Accepted != 1 {
		t.Fatalf("Accepted = %d, want 1 (keep-alive)", st.Accepted)
	}
	if st.Handoffs != 1 {
		t.Fatalf("Handoffs = %d, want 1 in whole-connection mode", st.Handoffs)
	}
}

func TestRehandoffPerRequestMode(t *testing.T) {
	// Re-handoff mode: requests on one connection may be served by
	// different back ends; content must survive the relay.
	tr := smallTrace(t, 30, 100)
	store := backend.NewDocStore(tr.Targets)
	var addrs []string
	var bes []*backend.Server
	for i := 0; i < 2; i++ {
		be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
		ln, err := handoff.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := &http.Server{Handler: be.Handler()}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close(); ln.Close() })
		addrs = append(addrs, ln.Addr().String())
		bes = append(bes, be)
	}
	fe, err := New(Config{
		Backends:            addrs,
		Strategy:            "lb", // deterministic target→backend spread
		RehandoffPerRequest: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(ln)
	t.Cleanup(func() { fe.Close() })

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
	for i := 0; i < 30; i++ {
		r := tr.At(i)
		resp, err := client.Get("http://" + ln.Addr().String() + r.Target)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(body, backend.ContentBytes(r.Target, r.Size)) {
			t.Fatalf("request %d: corrupted body (%d bytes)", i, len(body))
		}
	}
	client.CloseIdleConnections()
	// With LB over 2 back ends and 30 distinct-ish targets, both back
	// ends must have seen traffic through one client connection.
	if bes[0].Stats().Requests == 0 || bes[1].Stats().Requests == 0 {
		t.Fatalf("rehandoff did not spread: %d vs %d",
			bes[0].Stats().Requests, bes[1].Stats().Requests)
	}
	st := fe.Stats()
	if st.Rehandoffs == 0 {
		t.Fatal("no re-handoffs recorded")
	}
}

func TestBackendFailureReturns502AndMarksDown(t *testing.T) {
	tr := smallTrace(t, 10, 10)
	// Probing off: this test marks a perfectly healthy back end down and
	// expects it to stay down; the prober would (correctly) restore it.
	mc := startCluster(t, 2, "lard", tr, 1<<20,
		func(c *Config) { c.ProbeInterval = -1 })
	// Fresh connections each time: a kept-alive connection is already
	// handed off and correctly bypasses the dispatcher.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	// Point backend 0 at a dead address by marking it down directly.
	mc.fe.SetBackendDown(0, true)
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://" + mc.feAddr + tr.At(i).Target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d with one live backend", i, resp.StatusCode)
		}
	}
	if got := mc.backends[0].Stats().Requests; got != 0 {
		t.Fatalf("downed backend served %d requests", got)
	}
	// All backends down → 503 on a fresh connection.
	mc.fe.SetBackendDown(1, true)
	resp, err := client.Get("http://" + mc.feAddr + tr.At(0).Target)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if mc.fe.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

func TestDialFailureMarksNodeDown(t *testing.T) {
	// A front end configured with one dead address and one live back end
	// must converge onto the live one after the first dial failure.
	tr := smallTrace(t, 5, 5)
	store := backend.NewDocStore(tr.Targets)
	be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20})
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })

	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens here any more

	fe, err := New(Config{
		Backends:               []string{deadAddr, ln.Addr().String()},
		Strategy:               "wrr",
		DialTimeout:            500 * time.Millisecond,
		DialFailuresBeforeDown: 1, // seed one-strike behavior
		ProbeInterval:          -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go fe.Serve(feLn)
	t.Cleanup(func() { fe.Close() })

	ok := 0
	for i := 0; i < 6; i++ {
		resp, err := http.Get("http://" + feLn.Addr().String() + tr.At(0).Target)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == 200 {
			ok++
		}
	}
	// At most the first request can fail (502); after NodeDown everything
	// lands on the live back end.
	if ok < 5 {
		t.Fatalf("only %d of 6 requests succeeded after dial failure", ok)
	}
}

func TestConnPolicyConfigAndSessionStats(t *testing.T) {
	// Every policy name must build; the session counters must reflect the
	// traffic.
	tr := smallTrace(t, 10, 30)
	for _, policy := range []string{lard.ConnPin, lard.ConnPerRequest, lard.ConnCostAware} {
		mc := startCluster(t, 2, "lard", tr, 1<<20, func(c *Config) { c.ConnPolicy = policy })
		if got := mc.fe.ConnPolicy().Name(); got != policy {
			t.Fatalf("ConnPolicy() = %q, want %q", got, policy)
		}
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
		for i := 0; i < 6; i++ {
			resp, err := client.Get("http://" + mc.feAddr + tr.At(i).Target)
			if err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		client.CloseIdleConnections()
		st := mc.fe.Stats()
		if st.Dispatches != 6 {
			t.Fatalf("%s: Dispatches = %d, want 6", policy, st.Dispatches)
		}
		if st.SessionsByPolicy[policy] == 0 {
			t.Fatalf("%s: no sessions counted: %+v", policy, st.SessionsByPolicy)
		}
	}
	if _, err := New(Config{Backends: []string{"127.0.0.1:1"}, ConnPolicy: "bogus"}); err == nil {
		t.Fatal("unknown ConnPolicy accepted")
	}
	if _, err := New(Config{
		Backends:            []string{"127.0.0.1:1"},
		ConnPolicy:          lard.ConnPin,
		RehandoffPerRequest: true,
	}); err == nil {
		t.Fatal("conflicting ConnPolicy/RehandoffPerRequest accepted")
	}
	if _, err := New(Config{
		Backends:            []string{"127.0.0.1:1"},
		ConnPolicy:          lard.ConnPerRequest,
		RehandoffPerRequest: true,
	}); err != nil {
		t.Fatalf("redundant but consistent ConnPolicy/RehandoffPerRequest rejected: %v", err)
	}
}

func TestPinnedSessionMovesWhenBackendDrains(t *testing.T) {
	// The membership semantics the unified session loop buys: a
	// keep-alive connection pinned to a draining back end moves on its
	// next request instead of sticking forever.
	tr := smallTrace(t, 12, 40)
	mc := startCluster(t, 2, "lard", tr, 1<<20,
		func(c *Config) { c.ConnPolicy = lard.ConnPin; c.ProbeInterval = -1 })
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 1}}
	get := func(i int) {
		t.Helper()
		resp, err := client.Get("http://" + mc.feAddr + tr.At(i).Target)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	get(0)
	first := -1
	for node := range mc.backends {
		if mc.backends[node].Stats().Requests > 0 {
			first = node
		}
	}
	if first < 0 {
		t.Fatal("no backend served the first request")
	}
	mc.fe.DrainBackend(first)
	for i := 1; i < 6; i++ {
		get(i)
	}
	client.CloseIdleConnections()
	other := 1 - first
	if mc.backends[other].Stats().Requests == 0 {
		t.Fatalf("drained backend %d kept the pinned connection (stats %+v)", first, mc.fe.Stats())
	}
	if mc.fe.Stats().Rehandoffs == 0 {
		t.Fatal("forced move not counted as a re-handoff")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no backends accepted")
	}
	if _, err := New(Config{
		Backends: []string{"127.0.0.1:1"},
		Strategy: "no-such-policy",
	}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	d := lard.MustNew("wrr", lard.WithNodes(3))
	if _, err := New(Config{
		Backends:   []string{"127.0.0.1:1"},
		Dispatcher: d,
	}); err == nil {
		t.Fatal("dispatcher/backend node-count mismatch accepted")
	}
	if _, err := New(Config{
		Backends: []string{"127.0.0.1:1"},
		Strategy: "lard",
		Profiles: []core.Profile{{Weight: -1}},
	}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

// Config.Profiles reaches the dispatcher, and SetProfile retunes it live
// with the resolved thresholds visible through Nodes().
func TestConfigProfilesAndSetProfile(t *testing.T) {
	fe, err := New(Config{
		Backends:      []string{"127.0.0.1:1", "127.0.0.1:2"},
		Strategy:      "wlard",
		Profiles:      []core.Profile{{Weight: 0.5}},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := fe.Nodes()
	if p := nodes[0].Profile; p.Weight != 0.5 || p.THigh != 33 {
		t.Fatalf("node 0 profile = %+v, want weight 0.5 T_high 33", p)
	}
	if p := nodes[1].Profile; p.Weight != 1 || p.THigh != 65 {
		t.Fatalf("node 1 profile = %+v, want fleet default", p)
	}
	if err := fe.SetProfile(0, core.Profile{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if p := fe.Nodes()[0].Profile; p.Weight != 2 || p.THigh != 130 {
		t.Fatalf("node 0 profile after retune = %+v", p)
	}
	if err := fe.SetProfile(9, core.Profile{Weight: 1}); err == nil {
		t.Fatal("retune of unknown node accepted")
	}
}

func TestStatsSnapshot(t *testing.T) {
	tr := smallTrace(t, 5, 5)
	mc := startCluster(t, 2, "wrr", tr, 1<<20)
	resp, err := http.Get("http://" + mc.feAddr + tr.At(0).Target)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	st := mc.fe.Stats()
	if st.BackendToClient == 0 {
		t.Fatalf("no forwarded bytes recorded: %+v", st)
	}
	if len(st.ActivePerNode) != 2 {
		t.Fatalf("ActivePerNode = %v", st.ActivePerNode)
	}
	if fmt.Sprint(st) == "" {
		t.Fatal("unprintable stats")
	}
}
