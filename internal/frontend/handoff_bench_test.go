package frontend

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"

	"lard/internal/backend"
	"lard/internal/handoff"
	"lard/internal/httprelay"
	"lard/internal/trace"
)

// BenchmarkHandoffDial measures the front end's cost of establishing one
// handed-off session and relaying its response — the hot path the
// paper's Section 5 budget (~300µs per handoff) is about — with and
// without the connection pool:
//
//	fresh:  every handoff dials a new back-end TCP connection (protocol
//	        v1, the pre-pool behavior);
//	pooled: the handoff reuses an idle session-framed transport from the
//	        per-node pool; the dial was paid once, at pool fill.
//
// The back end serves a cached document with no emulated disk delay, so
// the difference between the variants is the dial + listener-handshake
// cost the pool amortizes.
func BenchmarkHandoffDial(b *testing.B) {
	cfg := trace.SyntheticConfig{
		Name:         "bench",
		Targets:      8,
		Requests:     8,
		DataSetBytes: 8 * 4096,
		ZipfAlpha:    0.8,
		SizeSigma:    0.1,
		MinFileBytes: 512,
	}
	tr := trace.MustGenerate(cfg, 42)
	store := backend.NewDocStore(tr.Targets)
	be := backend.New(backend.Config{Store: store, CacheBytes: 1 << 20, DiskTimeScale: 0})
	ln, err := handoff.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &http.Server{Handler: be.Handler()}
	go srv.Serve(ln)
	defer func() { srv.Close(); ln.Close() }()

	head := buildRequestHead(b, fmt.Sprintf("GET %s HTTP/1.1\r\nHost: bench\r\n\r\n", tr.At(0).Target))
	clientSide, farSide := net.Pipe() // only RemoteAddr is consulted
	defer clientSide.Close()
	defer farSide.Close()

	run := func(b *testing.B, poolSize int) {
		s, err := New(Config{
			Backends:      []string{ln.Addr().String()},
			Strategy:      "wrr",
			ConnPolicy:    "perreq",
			ProbeInterval: -1,
			PoolSize:      poolSize,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bc, err := s.connectBackend(0, clientSide, head, true)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := httprelay.RelayResponse(io.Discard, bc.br, "GET", 64<<10, nil); err != nil {
				b.Fatal(err)
			}
			bc.clean = true
			s.releaseBackend(bc)
		}
	}

	b.Run("fresh", func(b *testing.B) { run(b, -1) })
	b.Run("pooled", func(b *testing.B) { run(b, 1) })
}
