// Package frontend implements the live prototype's front end (Section 6):
// it accepts client connections and runs each through a lard.Session over
// the public lard.Dispatcher (the same policy code the simulator runs).
// The session owns the paper's Section 5 pin/re-handoff decision through
// the configured connection policy: every request's head is parsed, the
// session decides whether the connection stays on its back end or is
// handed off again, and the message is relayed with full HTTP framing
// (internal/httprelay).
//
// The layering mirrors the paper's Figure 15: the *dispatcher* (policy +
// load accounting + admission + session affinity, pkg/lard) decides per
// request; the *handoff* module transfers the connection; the relay loop
// (rehandoff.go) is the data path.
package frontend

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/breaker"
	"lard/internal/core"
	"lard/internal/handoff"
	"lard/internal/httprelay"
	"lard/internal/metrics"
	"lard/pkg/lard"
)

// Config describes a front end.
type Config struct {
	// Backends lists the back ends' handoff addresses ("host:port").
	Backends []string

	// Strategy is the registry name of the dispatch policy ("wrr", "lb",
	// "lb/gc", "lard", "lard/r", or anything registered with
	// lard.Register). Default "lard/r".
	Strategy string

	// Params are the LARD tuning parameters; zero fields fall back to
	// the paper's defaults (see lard.WithParams), so e.g. setting only
	// MappingCapacity keeps T_low/T_high/K. They also derive the front
	// end's admission bound S = (n−1)·T_high + T_low + 1 per dispatcher
	// shard.
	Params core.Params

	// Profiles optionally describes a heterogeneous fleet: Profiles[i]
	// is back end i's capacity profile (fewer entries than Backends
	// leaves the rest at the fleet default; zero fields fill as
	// lard.WithProfiles documents). The admission bound generalizes to
	// S = Σ T_high,i − max T_high,i + min T_low,i + 1, and profile-aware
	// strategies weight their placement accordingly. Ignored when
	// Dispatcher is set — build that dispatcher with lard.WithProfiles
	// instead.
	Profiles []core.Profile

	// Shards partitions the target space over this many independent
	// strategy instances so dispatch scales with cores; 0 or 1 keeps the
	// paper's single dispatch point.
	Shards int

	// CacheBytes is the per-node cache size assumed by cache-modelling
	// strategies such as "lb/gc" (0 = lard.DefaultCacheBytes).
	CacheBytes int64

	// Dispatcher, when non-nil, is used directly and Strategy, Params and
	// Shards are ignored. Its NodeCount must match len(Backends).
	Dispatcher lard.Dispatcher

	// ConnPolicy selects how each client connection's session trades
	// back-end affinity against locality, by lard.ConnPolicy name:
	// "pin" serves the whole connection where its first request landed,
	// "perreq" re-dispatches every request and always follows the
	// strategy, "costaware" re-dispatches every request but pays a
	// re-handoff only when the modelled locality gain beats the switch
	// cost. Empty selects "perreq" when the deprecated
	// RehandoffPerRequest is set and "pin" otherwise. Regardless of
	// policy, a session whose back end drains, fails, or is removed
	// moves on its next request.
	ConnPolicy string

	// RehandoffPerRequest is the deprecated boolean form of ConnPolicy:
	// true means "perreq", false means "pin". Ignored when ConnPolicy is
	// set.
	RehandoffPerRequest bool

	// DialTimeout bounds back-end dials (default 5s).
	DialTimeout time.Duration

	// PoolSize bounds the idle back-end connections kept per node for
	// handoff reuse (0 = DefaultPoolSize; negative disables pooling, and
	// with it the session-framed handoff protocol — every handoff then
	// pays a fresh dial, the pre-pool behavior).
	PoolSize int

	// PoolIdle is how long an idle pooled connection may wait for its
	// next session before being discarded (0 = DefaultPoolIdle; negative
	// = no expiry). Keep it below the back end's
	// handoff.DefaultSessionIdleTimeout.
	PoolIdle time.Duration

	// ProbeInterval is how often the health prober re-dials back ends
	// that are marked down and restores them on a successful dial
	// (health.go). 0 selects DefaultProbeInterval; a negative value
	// disables probing, reverting to the permanent mark-down behavior.
	ProbeInterval time.Duration

	// DialFailuresBeforeDown is how many consecutive dials to a back end
	// must fail before it is marked down (default
	// DefaultDialFailuresBeforeDown; 1 = one-strike). A transient dial
	// error below the threshold surfaces to that client as a 502 but
	// does not take the node out of rotation.
	DialFailuresBeforeDown int

	// Breaker, when non-nil, layers a per-back-end circuit breaker under
	// the mark-down/prober machinery (see overload.go): dial and probe
	// outcomes feed it, an Open breaker gates its node out of dispatch
	// eligibility, and recovery ramps handoffs back gradually. Zero
	// fields in the config take internal/breaker defaults. Nil disables
	// the breaker layer.
	Breaker *breaker.Config

	// QuotaRate enables per-client token-bucket rate limiting when
	// positive: each client IP may issue this many requests per second
	// sustained (QuotaBurst at once), enforced at connection accept and
	// per request; excess is shed with 429 + Retry-After. 0 disables.
	QuotaRate float64

	// QuotaBurst is the per-client bucket capacity (0 = one second of
	// QuotaRate, minimum 1).
	QuotaBurst float64

	// QuotaMaxClients bounds the quota bucket table; least recently used
	// clients are evicted first (0 = 4096).
	QuotaMaxClients int

	// Metrics, when non-nil, is the registry the front end records into;
	// nil gets a private registry. Either way Server.Metrics returns it
	// (cmd/lardfe serves it as GET /admin/metrics).
	Metrics *metrics.Registry

	// HeaderTimeout bounds how long a client may take to deliver a
	// request head (default 30s).
	HeaderTimeout time.Duration

	// MaxHeaderBytes bounds the request head (default 64 KB).
	MaxHeaderBytes int

	// ErrorLog receives connection-level errors (default: discarded).
	ErrorLog *log.Logger
}

// Stats is a snapshot of front-end activity.
type Stats struct {
	Accepted        uint64
	Dispatches      uint64 // session dispatch decisions taken (one per relayed request)
	Handoffs        uint64
	Rehandoffs      uint64 // completed back-end switches (counted only after the replacement handoff succeeds)
	RehandoffFails  uint64 // moves the session decided on that no back end could be established for
	Redispatches    uint64 // dial failures recovered by re-dispatching the session to another node
	StaleRetries    uint64 // reused back-end transports (pooled checkouts or kept-alive session conns) found dead at first write/read, transparently retried fresh
	Errors          uint64
	Rejected        uint64 // requests refused because no back end was available
	MarkedDown      uint64 // nodes taken out of rotation after consecutive dial failures
	Probes          uint64 // health-probe dials issued to down nodes
	ProbeRecoveries uint64 // nodes restored by a successful probe
	ClientToBackend int64
	BackendToClient int64
	ActivePerNode   []int

	// Connection-pool counters: checkouts served from the per-node idle
	// pool versus fresh dials, discards (capacity, TTL, death, node
	// eviction), and the idle population right now.
	PoolHits      uint64
	PoolMisses    uint64
	PoolEvictions uint64
	PoolIdle      int

	// SessionsByPolicy counts sessions opened per connection-policy name
	// (this front end runs one policy, so one key); ActiveSessions is
	// how many are currently open.
	SessionsByPolicy map[string]uint64
	ActiveSessions   int64

	// Overload-protection counters (overload.go). Served is goodput:
	// complete responses relayed. QuotaSheds counts 429s; BreakerSheds
	// counts 503s where breakers denied every candidate node;
	// BreakerDenials counts individual breaker refusals (most are
	// detoured to another node); BreakerTrips counts transitions to
	// Open. QuotaClients is the bucket-table population.
	Served         uint64
	QuotaSheds     uint64
	QuotaClients   int
	BreakerTrips   uint64
	BreakerDenials uint64
	BreakerSheds   uint64
	BreakerStates  []string
}

// Server is a running front end. Create with New; start with Serve or
// ListenAndServe.
type Server struct {
	cfg   Config
	start time.Time

	// d is the concurrency-safe dispatch layer: policy, per-node load
	// accounting, and admission control all live behind it. policy is
	// the connection policy every client session consults (shared state,
	// e.g. CostAware's recency table, lives inside it).
	d      lard.Dispatcher
	policy lard.ConnPolicy

	// backends holds the per-node handoff addresses; indices line up with
	// dispatcher node ids, including removed nodes (their slots stay).
	// Guarded by backendsMu because AddBackend grows it at runtime.
	backendsMu sync.RWMutex
	backends   []string

	// dialFails counts consecutive failed dials per node; reaching the
	// configured threshold marks the node down. dialEpochs advance on
	// every recovery so stale in-flight dial failures are discounted.
	// probing flags nodes with a health probe currently in flight
	// (health.go).
	healthMu   sync.Mutex
	dialFails  []int
	dialEpochs []uint64
	probing    []bool

	// pool holds idle session-framed transports per node; nil when
	// pooling is disabled (Config.PoolSize < 0).
	pool *backendPool

	accepted       atomic.Uint64
	dispatches     atomic.Uint64
	sessions       atomic.Uint64
	activeSess     atomic.Int64
	handoffs       atomic.Uint64
	rehandoffs     atomic.Uint64
	rehandoffFails atomic.Uint64
	redispatches   atomic.Uint64
	staleRetries   atomic.Uint64
	errors         atomic.Uint64
	rejected       atomic.Uint64
	markdowns      atomic.Uint64
	probes         atomic.Uint64
	recoveries     atomic.Uint64
	forward        handoff.ForwardStats

	// ov is the overload-protection state: breakers, quota, metrics
	// (overload.go).
	ov overload

	lnMu     sync.Mutex
	ln       net.Listener
	closed   atomic.Bool
	stop     chan struct{}
	stopOnce sync.Once
	probeGo  sync.Once
}

// New builds a front end for the given configuration.
func New(cfg Config) (*Server, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("frontend: no back ends configured")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.HeaderTimeout <= 0 {
		cfg.HeaderTimeout = 30 * time.Second
	}
	if cfg.MaxHeaderBytes <= 0 {
		cfg.MaxHeaderBytes = 64 << 10
	}
	d := cfg.Dispatcher
	if d == nil {
		name := cfg.Strategy
		if name == "" {
			name = "lard/r"
		}
		opts := []lard.Option{
			lard.WithNodes(len(cfg.Backends)),
			lard.WithParams(cfg.Params),
			lard.WithShards(max(cfg.Shards, 1)),
		}
		if cfg.CacheBytes > 0 {
			opts = append(opts, lard.WithCacheBytes(cfg.CacheBytes))
		}
		if len(cfg.Profiles) > 0 {
			opts = append(opts, lard.WithProfiles(cfg.Profiles...))
		}
		var err error
		d, err = lard.New(name, opts...)
		if err != nil {
			return nil, fmt.Errorf("frontend: %w", err)
		}
	} else if d.NodeCount() != len(cfg.Backends) {
		return nil, fmt.Errorf("frontend: dispatcher has %d nodes for %d back ends",
			d.NodeCount(), len(cfg.Backends))
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = DefaultProbeInterval
	}
	if cfg.DialFailuresBeforeDown <= 0 {
		cfg.DialFailuresBeforeDown = DefaultDialFailuresBeforeDown
	}
	// One shared resolution rule with the simulator: empty defaults to
	// pin (or perreq under the deprecated boolean), and a leftover
	// -rehandoff next to a conflicting explicit policy is an error, not
	// a silent winner.
	policyName, err := lard.ResolveConnPolicyName(cfg.ConnPolicy, cfg.RehandoffPerRequest)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	policy, err := lard.NewConnPolicy(policyName)
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	if cfg.PoolSize == 0 {
		cfg.PoolSize = DefaultPoolSize
	}
	if cfg.PoolIdle == 0 {
		cfg.PoolIdle = DefaultPoolIdle
	}
	var pool *backendPool
	if cfg.PoolSize > 0 {
		pool = newBackendPool(cfg.PoolSize, cfg.PoolIdle)
	}
	srv := &Server{
		cfg:      cfg,
		start:    time.Now(),
		d:        d,
		policy:   policy,
		pool:     pool,
		backends: append([]string(nil), cfg.Backends...),
		// All three health slices are sized up front: relying on lazy
		// growth inside the health lock left a node added via AddBackend
		// unprobed until its first dial failure happened to grow them.
		dialFails:  make([]int, len(cfg.Backends)),
		dialEpochs: make([]uint64, len(cfg.Backends)),
		probing:    make([]bool, len(cfg.Backends)),
		stop:       make(chan struct{}),
	}
	srv.initOverload(policyName)
	return srv, nil
}

// Dispatcher returns the dispatch layer the front end routes through, for
// diagnostics.
func (s *Server) Dispatcher() lard.Dispatcher { return s.d }

// ConnPolicy returns the connection policy client sessions run under.
func (s *Server) ConnPolicy() lard.ConnPolicy { return s.policy }

// Stats returns a snapshot of the front end's counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Accepted:   s.accepted.Load(),
		Dispatches: s.dispatches.Load(),
		SessionsByPolicy: map[string]uint64{
			s.policy.Name(): s.sessions.Load(),
		},
		ActiveSessions:  s.activeSess.Load(),
		Handoffs:        s.handoffs.Load(),
		Rehandoffs:      s.rehandoffs.Load(),
		RehandoffFails:  s.rehandoffFails.Load(),
		Redispatches:    s.redispatches.Load(),
		StaleRetries:    s.staleRetries.Load(),
		Errors:          s.errors.Load(),
		Rejected:        s.rejected.Load(),
		MarkedDown:      s.markdowns.Load(),
		Probes:          s.probes.Load(),
		ProbeRecoveries: s.recoveries.Load(),
		ClientToBackend: s.forward.ClientToBackend.Load(),
		BackendToClient: s.forward.BackendToClient.Load(),
		ActivePerNode:   s.d.Loads(),
	}
	if s.pool != nil {
		st.PoolHits, st.PoolMisses, st.PoolEvictions = s.pool.counters()
		st.PoolIdle, _ = s.pool.idleCount(-1)
	}
	st.Served = s.ov.m.served.Value()
	st.QuotaSheds = s.ov.m.shedQuota.Value()
	if s.ov.quota.Enabled() {
		st.QuotaClients = s.ov.quota.Len()
	}
	st.BreakerTrips = s.ov.breakerTrips.Load()
	st.BreakerDenials = s.ov.m.breakerDenials.Value()
	st.BreakerSheds = s.ov.m.shedBreaker.Value()
	if s.ov.breakers != nil {
		for _, b := range s.ov.breakers.Snapshot(s.now()) {
			st.BreakerStates = append(st.BreakerStates, b.State.String())
		}
	}
	return st
}

// SetProfile retunes a back end's capacity profile at runtime: the
// dispatcher recomputes the admission bound from the new fleet shape and
// profile-aware strategies pick up the node's thresholds and weight on
// their next decision. Zero profile fields fill like lard.WithProfiles.
func (s *Server) SetProfile(node int, p core.Profile) error {
	return s.d.SetProfile(node, p)
}

// SetBackendDown marks a back end failed or restored, when the strategy
// supports it (Section 2.6 recovery). Marking a node down also evicts
// its pooled connections.
func (s *Server) SetBackendDown(node int, down bool) {
	s.d.SetNodeDown(node, down)
	if down {
		s.evictPooled(node)
	}
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts client connections on ln until Close. The health prober
// starts with the first Serve call (unless probing is disabled).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	if s.cfg.ProbeInterval > 0 || s.pool != nil {
		s.probeGo.Do(func() {
			if s.cfg.ProbeInterval > 0 {
				go s.probeLoop(s.cfg.ProbeInterval)
			}
			if s.pool != nil {
				go s.pool.janitor(s.stop)
			}
		})
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.accepted.Add(1)
		go s.handleConn(conn)
	}
}

// Addr returns the serving address once Serve has been called.
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting connections, stops the health prober, and
// discards the pooled back-end connections.
func (s *Server) Close() error {
	s.closed.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	if s.pool != nil {
		s.pool.closeAll()
	}
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.ErrorLog != nil {
		s.cfg.ErrorLog.Printf(format, args...)
	}
}

// headReadFailed classifies a ReadRequestHead failure: a clean close or
// an idle connection hitting the header timeout without sending a byte
// is the connection's normal end of life (silent); anything else counts
// as an error, and malformed — smuggling-shaped or otherwise
// unframeable — heads are answered with 400, never forwarded.
func (s *Server) headReadFailed(client net.Conn, err error, doing string) {
	if err == io.EOF || errors.Is(err, os.ErrDeadlineExceeded) {
		return
	}
	s.errors.Add(1)
	s.logf("frontend: %s from %v: %v", doing, client.RemoteAddr(), err)
	var malformed *httprelay.MalformedError
	if errors.As(err, &malformed) {
		writeBadRequest(client)
	}
}

// overloadRetryAfter is the Retry-After hint on overload 503s. The
// admission bound recovers as fast as in-flight requests complete —
// milliseconds on a healthy cluster — so one second is the smallest
// honest whole-second hint.
const overloadRetryAfter = 1

func writeServiceUnavailable(c net.Conn) {
	const body = "no back-end node available\n"
	fmt.Fprintf(c, "HTTP/1.1 503 Service Unavailable\r\nContent-Length: %d\r\nRetry-After: %d\r\nConnection: close\r\n\r\n%s", len(body), overloadRetryAfter, body)
}

func writeBadGateway(c net.Conn) {
	const body = "back-end handoff failed\n"
	fmt.Fprintf(c, "HTTP/1.1 502 Bad Gateway\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
}

func writeBadRequest(c net.Conn) {
	const body = "malformed request\n"
	fmt.Fprintf(c, "HTTP/1.1 400 Bad Request\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
}
