package frontend

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/breaker"
	"lard/internal/metrics"
	"lard/internal/quota"
)

// This file is the front end's overload-protection layer: per-back-end
// circuit breakers, per-client quotas, and the metrics that prove both
// are working.
//
// The breaker (internal/breaker) layers *under* the mark-down/prober
// machinery in health.go. Mark-down is the oracle path — N consecutive
// dial failures take the node out of rotation, a probe dial restores
// it. The breaker watches the same connection outcomes (dials, probes)
// but adds what mark-down lacks: exponential backoff between probe
// rounds, and a graduated recovery that ramps *handoffs* back onto a
// restored node instead of slamming it with its full LARD target set.
// Two hooks connect it to the dispatch path:
//
//   - lard.Dispatcher.SetNodeGate(breakers.Healthy): an Open breaker
//     makes its node ineligible exactly like a Down flag — sessions
//     move off it, Redispatch avoids it, the pool refuses its idle
//     connections at check-in — without touching the strategy's
//     target→node mapping, so traffic snaps back on recovery;
//   - breakerAllow (breakers.Allow) runs before every new back-end
//     connection is established and consumes the HalfOpen probe budget
//     or a Recovering admission slot. Requests riding an existing
//     healthy connection are not thinned: the ramp meters new
//     handoffs, which is where a cold recovering node gets hurt.
//
// The quota (internal/quota) is enforced twice: a non-consuming Check
// at connection accept (an over-quota client is shed before the front
// end reads a single byte) and a consuming Allow per request in the
// relay loop. Shed responses are 429s carrying Retry-After computed
// from the client's token deficit, on a closing connection.
//
// Everything observable lands in a metrics.Registry (Prometheus text
// format via cmd/lardfe's GET /admin/metrics): request/goodput/shed
// counters, breaker transitions and denials, and log-bucketed latency
// histograms per connection policy and per node.

// errBreakerDenied is the establishment failure when the chosen node's
// breaker refused the admission (and no alternate worked out); it is
// surfaced to the client as a 503 + Retry-After, not a 502.
var errBreakerDenied = errors.New("frontend: back-end admission denied by circuit breaker")

// feMetrics holds the hot-path collectors, created once in New so the
// relay loop only ever touches pre-allocated atomics.
type feMetrics struct {
	requests       *metrics.Counter // dispatch attempts (one per parsed request head)
	served         *metrics.Counter // complete responses relayed: goodput
	shedQuota      *metrics.Counter // 429s from the per-client quota
	shedOverload   *metrics.Counter // 503s from admission/availability (ErrOverloaded, ErrUnavailable)
	shedBreaker    *metrics.Counter // 503s because breakers denied every candidate node
	breakerDenials *metrics.Counter // individual breaker Allow() refusals (often recovered by redispatch)
	latency        *metrics.Histogram
}

// overload is the Server's overload-protection state.
type overload struct {
	reg      *metrics.Registry
	m        feMetrics
	breakers *breaker.Set   // nil = breaker disabled
	quota    *quota.Limiter // non-nil; Rate <= 0 disables

	// nodeHists is a copy-on-write []*metrics.Histogram indexed by node
	// (per-node request latency); growNodeHists appends under histMu,
	// the relay loop reads it with one atomic load.
	histMu    sync.Mutex
	nodeHists atomic.Value

	// breakerTrips counts transitions to Open; the remaining overload
	// counters live in the metrics collectors (feMetrics), which Stats
	// reads directly.
	breakerTrips atomic.Uint64
}

// now is the front end's clock for the breaker and quota subsystems:
// time since server start, the same form the virtual-clock packages use
// in simulation.
func (s *Server) now() time.Duration { return time.Since(s.start) }

// Metrics returns the server's metrics registry (for GET /admin/metrics).
func (s *Server) Metrics() *metrics.Registry { return s.ov.reg }

// Breakers returns the per-back-end circuit breakers, or nil when the
// breaker layer is disabled.
func (s *Server) Breakers() *breaker.Set { return s.ov.breakers }

// initOverload builds the overload-protection state. Called from New
// after the dispatcher exists; the breaker gate is installed onto it
// here.
func (s *Server) initOverload(policyName string) {
	reg := s.cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s.ov.reg = reg
	s.ov.m = feMetrics{
		requests:       reg.Counter("lard_fe_requests_total", "request heads parsed and offered to the dispatcher"),
		served:         reg.Counter("lard_fe_responses_total", "complete responses relayed to clients (goodput)"),
		shedQuota:      reg.Counter("lard_fe_sheds_total", "requests shed, by reason", "reason", "quota"),
		shedOverload:   reg.Counter("lard_fe_sheds_total", "", "reason", "overload"),
		shedBreaker:    reg.Counter("lard_fe_sheds_total", "", "reason", "breaker"),
		breakerDenials: reg.Counter("lard_fe_breaker_denials_total", "breaker Allow refusals (most are detoured to another node)"),
		latency:        reg.Histogram("lard_fe_request_seconds", "request latency from head parsed to response relayed", "policy", policyName),
	}
	s.ov.nodeHists.Store([]*metrics.Histogram(nil))
	s.growNodeHists(len(s.backends))

	s.ov.quota = quota.New(quota.Config{
		Rate:       s.cfg.QuotaRate,
		Burst:      s.cfg.QuotaBurst,
		MaxClients: s.cfg.QuotaMaxClients,
	})

	if s.cfg.Breaker != nil {
		bcfg := *s.cfg.Breaker
		bcfg.OnTransition = func(node int, from, to breaker.State, now time.Duration) {
			// Called with the breaker Set's mutex held: the registry and
			// the pool are both leaf locks that never call back into the
			// breaker, so this cannot cycle.
			reg.Counter("lard_fe_breaker_transitions_total",
				"breaker state transitions", "node", strconv.Itoa(node), "to", to.String()).Inc()
			if to == breaker.Open {
				s.ov.breakerTrips.Add(1)
				s.evictPooled(node)
			}
		}
		s.ov.breakers = breaker.New(bcfg)
		s.d.SetNodeGate(func(node int) bool {
			return s.ov.breakers.Healthy(node, s.now())
		})
	}
}

// growNodeHists ensures per-node latency histograms exist for nodes
// [0, n); copy-on-write so the relay loop reads without a lock.
func (s *Server) growNodeHists(n int) {
	s.ov.histMu.Lock()
	defer s.ov.histMu.Unlock()
	cur, _ := s.ov.nodeHists.Load().([]*metrics.Histogram)
	if len(cur) >= n {
		return
	}
	grown := append([]*metrics.Histogram(nil), cur...)
	for i := len(grown); i < n; i++ {
		grown = append(grown, s.ov.reg.Histogram("lard_fe_node_request_seconds",
			"request latency by serving back-end node", "node", strconv.Itoa(i)))
	}
	s.ov.nodeHists.Store(grown)
}

// observeRequest records one completed request: goodput counter plus
// the per-policy and per-node latency histograms. It runs once per
// relayed response on the hot path.
//
//lard:noalloc
func (s *Server) observeRequest(node int, d time.Duration) {
	s.ov.m.served.Inc()
	s.ov.m.latency.Observe(d)
	hists, _ := s.ov.nodeHists.Load().([]*metrics.Histogram)
	if node >= 0 && node < len(hists) {
		hists[node].Observe(d)
	}
}

// breakerAllow consumes one breaker admission for node; true when the
// breaker layer is off or the node's breaker admits the connection.
func (s *Server) breakerAllow(node int) bool {
	if s.ov.breakers == nil {
		return true
	}
	if s.ov.breakers.Allow(node, s.now()) {
		return true
	}
	s.ov.m.breakerDenials.Inc()
	return false
}

// breakerSuccess/breakerFailure feed connection outcomes (dials and
// probe dials, health.go) into the node's breaker.
func (s *Server) breakerSuccess(node int) {
	if s.ov.breakers != nil {
		s.ov.breakers.Success(node, s.now())
	}
}

func (s *Server) breakerFailure(node int) {
	if s.ov.breakers != nil {
		s.ov.breakers.Failure(node, s.now())
	}
}

// clientQuotaKey is the per-client identity the quota buckets key on:
// the connection's remote IP (without port, so every connection from
// one host shares a bucket).
func clientQuotaKey(c net.Conn) string {
	addr := c.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

// shedQuota counts one quota shed and answers the client with a closing
// 429 + Retry-After. The accept-time shed writes its response before the
// client's request has been read (often before it has even been sent),
// so the close must linger: closing with unread data in the receive
// queue resets the connection, which can destroy the 429 before the
// client reads it. The drain is bounded in both bytes and time, so an
// abusive client streaming a body cannot hold the goroutine.
func (s *Server) shedQuota(client net.Conn, retry time.Duration) {
	s.ov.m.shedQuota.Inc()
	writeTooManyRequests(client, retry)
	client.SetReadDeadline(time.Now().Add(shedLinger))
	io.CopyN(io.Discard, client, 8<<10)
}

// shedLinger bounds the post-429 drain of a shed connection.
const shedLinger = 50 * time.Millisecond

// retryAfterSeconds renders a Retry-After duration as whole seconds,
// rounded up so the client never retries early (minimum 1).
func retryAfterSeconds(retry time.Duration) int {
	secs := int((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeTooManyRequests(c net.Conn, retry time.Duration) {
	const body = "client over rate quota\n"
	fmt.Fprintf(c, "HTTP/1.1 429 Too Many Requests\r\nContent-Length: %d\r\nRetry-After: %d\r\nConnection: close\r\n\r\n%s",
		len(body), retryAfterSeconds(retry), body)
}
