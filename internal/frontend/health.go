package frontend

import (
	"fmt"
	"net"
	"time"

	"lard/internal/httprelay"
	"lard/pkg/lard"
)

// This file is the front end's health and membership machinery. The seed
// front end marked a node down on a single failed dial and never restored
// it, so one refused connection was a permanent outage. Now:
//
//   - a node is marked down only after DialFailuresBeforeDown
//     *consecutive* dial failures (any successful dial resets the count);
//   - a background prober re-dials down nodes every ProbeInterval and
//     marks them up on the first successful dial, completing the paper's
//     Section 2.6 failure/recovery loop without operator intervention.
//
// The prober's per-node state machine is
//
//	up --(N consecutive dial failures)--> down
//	down --(successful probe dial)--> up (cold cache; LARD re-warms it)
//
// Removed and draining nodes are the dispatcher's business (membership),
// not the prober's: it only probes member nodes whose Down flag is set.

// DefaultProbeInterval is how often the prober re-dials down back ends
// when Config.ProbeInterval is zero.
const DefaultProbeInterval = time.Second

// DefaultDialFailuresBeforeDown is the consecutive-dial-failure threshold
// used when Config.DialFailuresBeforeDown is zero.
const DefaultDialFailuresBeforeDown = 3

// NodeInfo is one back end's administrative view, as served by the
// GET /admin/nodes endpoint of cmd/lardfe.
type NodeInfo struct {
	Node      int            `json:"node"`
	Addr      string         `json:"addr"`
	State     lard.NodeState `json:"state"`
	Active    int            `json:"active"`
	DialFails int            `json:"consecutive_dial_failures"`

	// Profile is the node's resolved capacity profile: the thresholds
	// bounding its backlog, and the weight capacity-aware strategies
	// scale their placement by. Retune live with POST /admin/profile.
	Profile lard.Profile `json:"profile"`
}

// backendAddr returns the handoff address for node, or "" if unknown.
func (s *Server) backendAddr(node int) string {
	s.backendsMu.RLock()
	defer s.backendsMu.RUnlock()
	if node < 0 || node >= len(s.backends) {
		return ""
	}
	return s.backends[node]
}

// dialBackend dials the chosen back end and keeps the consecutive-failure
// accounting: the threshold crossing marks the node down for the policy
// layer, so its targets are re-assigned "as if they had not been assigned
// before".
func (s *Server) dialBackend(node int) (net.Conn, error) {
	addr := s.backendAddr(node)
	epoch := s.dialEpoch(node)
	var conn net.Conn
	var err error
	if addr == "" {
		// A node with no known address (e.g. added through the dispatcher
		// directly rather than AddBackend) must still fail through the
		// mark-down accounting, or it would attract traffic forever.
		err = fmt.Errorf("no address for backend %d", node)
	} else {
		conn, err = net.DialTimeout("tcp", addr, s.cfg.DialTimeout)
	}
	if err != nil {
		s.breakerFailure(node)
		if s.noteDialFailure(node, epoch) && !s.backendDown(node) {
			// The Down check keeps in-flight dials racing the mark-down
			// from re-counting and re-logging the same outage.
			s.markdowns.Add(1)
			s.d.SetNodeDown(node, true)
			s.evictPooled(node)
			s.logf("frontend: backend %d (%q) marked down after %d consecutive dial failures",
				node, addr, s.cfg.DialFailuresBeforeDown)
		}
		return nil, err
	}
	s.resetDialFailures(node)
	s.breakerSuccess(node)
	return conn, nil
}

// noteDialFailure records one failed dial and reports whether the
// consecutive-failure threshold was crossed. Failures from a dial that
// began before the node's last recovery (stale epoch) are ignored, so a
// slow straggler timing out after a probe restore cannot re-mark the
// healthy node down. The counter resets at every crossing, so no restore
// path can leave it stranded above the threshold.
func (s *Server) noteDialFailure(node int, epoch uint64) bool {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.growHealthLocked(node)
	if s.dialEpochs[node] != epoch {
		return false
	}
	s.dialFails[node]++
	if s.dialFails[node] >= s.cfg.DialFailuresBeforeDown {
		s.dialFails[node] = 0
		return true
	}
	return false
}

// backendDown reports whether the dispatcher currently has node marked
// down.
func (s *Server) backendDown(node int) bool {
	states := s.d.NodeStates()
	return node >= 0 && node < len(states) && states[node].Down
}

// dialEpoch returns the node's current recovery epoch, taken before a
// dial starts so a later failure can be attributed to the right outage.
func (s *Server) dialEpoch(node int) uint64 {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.growHealthLocked(node)
	return s.dialEpochs[node]
}

// resetDialFailures clears the node's failure count and advances its
// epoch; called on every successful dial and on probe recovery.
func (s *Server) resetDialFailures(node int) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.growHealthLocked(node)
	s.dialFails[node] = 0
	s.dialEpochs[node]++
}

// growHealthLocked sizes the per-node health slices to include node.
// Callers hold healthMu. New and AddBackend size the slices eagerly, so
// this only triggers for nodes added through the dispatcher directly.
func (s *Server) growHealthLocked(node int) {
	for node >= len(s.dialFails) {
		s.dialFails = append(s.dialFails, 0)
	}
	for node >= len(s.dialEpochs) {
		s.dialEpochs = append(s.dialEpochs, 0)
	}
	for node >= len(s.probing) {
		s.probing = append(s.probing, false)
	}
}

func (s *Server) dialFailures(node int) int {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	if node < 0 || node >= len(s.dialFails) {
		return 0
	}
	return s.dialFails[node]
}

// probeLoop periodically re-dials down back ends until Close.
func (s *Server) probeLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.probeOnce()
		}
	}
}

// probeOnce dials every member node currently marked down and restores
// the ones that answer. Each node's probe runs in its own goroutine and
// at most one probe per node is in flight, so one unresponsive address
// (SYNs dropped, full DialTimeout burned) neither delays other nodes'
// recovery nor stalls the probe ticker.
func (s *Server) probeOnce() {
	for node, st := range s.d.NodeStates() {
		if !st.Member || !st.Down {
			continue
		}
		addr := s.backendAddr(node)
		if addr == "" || !s.beginProbe(node) {
			continue
		}
		s.probes.Add(1)
		go func(node int, addr string) {
			defer s.endProbe(node)
			conn, err := net.DialTimeout("tcp", addr, s.cfg.DialTimeout)
			if err != nil {
				s.breakerFailure(node)
				return
			}
			s.resetDialFailures(node)
			// A probe restore is breaker evidence too: Success while the
			// breaker is Open starts its half-open probe round, so the
			// graduated ramp can begin even before live traffic returns.
			s.breakerSuccess(node)
			s.recoveries.Add(1)
			s.d.SetNodeDown(node, false)
			s.logf("frontend: probe restored backend %d (%s)", node, addr)
			// The probe dial already paid for connection establishment:
			// seed the pool with it instead of throwing it away, so the
			// first handoffs after recovery skip their dials (the back
			// end holds an unused transport in handshake state briefly;
			// its handshake timeout reaps it if traffic never comes).
			// The eligibility re-check mirrors releaseBackend: an admin
			// drain racing the recovery must not get a warm transport.
			if s.pool != nil && s.nodePoolable(node) {
				s.pool.put(node, conn, httprelay.GetReader(conn))
			} else {
				conn.Close()
			}
		}(node, addr)
	}
}

// beginProbe claims the node's probe slot; it returns false if a probe
// for the node is already in flight.
func (s *Server) beginProbe(node int) bool {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.growHealthLocked(node)
	if s.probing[node] {
		return false
	}
	s.probing[node] = true
	return true
}

func (s *Server) endProbe(node int) {
	s.healthMu.Lock()
	defer s.healthMu.Unlock()
	s.probing[node] = false
}

// AddBackend joins a new back end at the given handoff address and
// returns its node index. The admission bound S is recomputed by the
// dispatcher. The address is stored at the index the dispatcher actually
// assigned, so alignment survives even if nodes were added through the
// dispatcher directly.
func (s *Server) AddBackend(addr string) int {
	s.backendsMu.Lock()
	node := s.d.AddNode()
	for node >= len(s.backends) {
		s.backends = append(s.backends, "")
	}
	s.backends[node] = addr
	s.backendsMu.Unlock()
	// Size the health slices now, so the prober and the mark-down
	// accounting see the node without relying on lazy growth.
	s.healthMu.Lock()
	s.growHealthLocked(node)
	s.healthMu.Unlock()
	s.growNodeHists(node + 1)
	return node
}

// RemoveBackend permanently removes a back end; in-flight connections
// finish, new requests go elsewhere, and the node's pooled connections
// are discarded.
func (s *Server) RemoveBackend(node int) {
	s.d.RemoveNode(node)
	s.evictPooled(node)
}

// DrainBackend stops new assignments to a back end; watch
// Stats().ActivePerNode reach zero to know the drain completed. The
// node's pooled connections are discarded so no session can reach it
// through the pool.
func (s *Server) DrainBackend(node int) {
	s.d.Drain(node)
	s.evictPooled(node)
}

// UndrainBackend restores a draining back end.
func (s *Server) UndrainBackend(node int) { s.d.Undrain(node) }

// evictPooled discards node's idle pooled connections; a no-op when
// pooling is off.
func (s *Server) evictPooled(node int) {
	if s.pool != nil {
		s.pool.evictNode(node)
	}
}

// Nodes returns the administrative snapshot of every back end.
func (s *Server) Nodes() []NodeInfo {
	states := s.d.NodeStates()
	loads := s.d.Loads()
	profiles := s.d.Profiles()
	out := make([]NodeInfo, len(states))
	for i, st := range states {
		info := NodeInfo{
			Node:      i,
			Addr:      s.backendAddr(i),
			State:     st,
			DialFails: s.dialFailures(i),
		}
		if i < len(loads) {
			info.Active = loads[i]
		}
		if i < len(profiles) {
			info.Profile = profiles[i]
		}
		out[i] = info
	}
	return out
}
