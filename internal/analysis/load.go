package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Name       string
	Error      *struct{ Err string }
}

// Load lists and type-checks the packages matching patterns (relative to
// dir), returning the matched packages ready for analysis. Dependencies
// — the standard library included — are imported from compiler export
// data produced by `go list -export`, so only the matched packages are
// type-checked from source. Test files are not loaded: the checked
// contracts live in the shipped code, and the vettool mode covers test
// files when run under `go vet`.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Name != "" {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t.ImportPath, t.Dir, absFiles(t.Dir, t.GoFiles))
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -e -export -deps -json` over the patterns.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Name,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks one compilation unit given its
// source files and an import-path → export-data-file map, as provided
// by go vet's unitchecker config. The returned package is ready for
// RunAnalyzers.
func CheckFiles(pkgPath string, files []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(files[0])
	}
	return typeCheck(fset, imp, pkgPath, dir, files)
}

// ExportImporter builds a types.Importer that resolves every import from
// the export-data files in exports (import path → file path), as
// produced by `go list -export`.
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses and type-checks one package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}
