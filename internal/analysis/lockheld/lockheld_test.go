package lockheld_test

import (
	"testing"

	"lard/internal/analysis/atest"
	"lard/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	atest.Run(t, atest.TestData(), lockheld.Analyzer, "lockfix")
}
