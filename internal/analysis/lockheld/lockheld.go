// Package lockheld machine-checks the dispatcher's mutex convention.
//
// The convention, stated in pkg/lard's comments but until now enforced
// only by -race and review, has three parts:
//
//  1. A function whose name ends in "Locked" is a helper that runs
//     inside someone else's critical section: it may only be called
//     while a mutex field of its receiver is held — between Lock() and
//     Unlock() in the same function, under a defer Unlock(), or from
//     another *Locked function on the same receiver.
//  2. A struct that declares a field `mu sync.Mutex` (or RWMutex) and
//     has at least one *Locked method opts into the guarded-fields
//     convention: every field declared after mu is protected, and any
//     direct access to those fields outside a critical section (or
//     outside a *Locked method of the same receiver) is flagged.
//     Fields declared above mu are deliberately unguarded
//     (immutable-after-construction configuration), matching how
//     lockedShard, Session, and membership are laid out.
//  3. Lock() must pair with an Unlock() on every path: returning with
//     the mutex held, double-locking, and unlocking an unheld mutex
//     are all flagged.
//
// Function literals are analyzed as their own functions with no lock
// held — a closure built inside a critical section runs later, outside
// it (exactly the bug class of lockedShard.claimLocked's release
// closure, which must re-take the lock itself).
//
// Freshly allocated locals (x := &T{...}, var x T, x := new(T)) are
// exempt: a constructor initializes fields before the value is shared,
// so no lock can or need be held.
//
// Escape hatch: //lard:allow lockheld on (or above) the flagged line.
package lockheld

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lard/internal/analysis"
	"lard/internal/analysis/flow"
)

// Analyzer is the lockheld pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "check that *Locked helpers and mu-guarded struct fields are only reached with the mutex held, and that every Lock pairs with an Unlock on all paths",
	Run:  run,
}

// Path states for one mutex key.
const (
	unheld    uint8 = iota
	excl            // Lock() taken, no deferred unlock yet
	exclDefer       // Lock() taken, Unlock() deferred
	rdheld          // RLock() taken
	rdDefer         // RLock() taken, RUnlock() deferred
	caller          // held by the caller (*Locked method's own receiver)
	deferOnly       // defer Unlock() seen before any Lock (runtime-legal)
)

func held(s uint8) bool { return s != unheld && s != deferOnly }

type checker struct {
	pass    *analysis.Pass
	guarded map[*types.Named]map[string]bool // struct type → protected fields
	seen    map[string]bool                  // report dedup
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		guarded: guardedStructs(pass),
		seen:    make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body, recvObject(pass, fd), strings.HasSuffix(fd.Name.Name, "Locked"))
			// Every function literal is its own function: a closure runs
			// outside the critical section it was built in.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(fl.Body, nil, false)
				}
				return true
			})
		}
	}
	return nil
}

// guardedStructs finds package-local struct types with a mutex field
// named mu and at least one *Locked method, mapping them to their
// protected (declared-after-mu) field names.
func guardedStructs(pass *analysis.Pass) map[*types.Named]map[string]bool {
	hasLockedMethod := make(map[*types.Named]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			if obj := recvObject(pass, fd); obj != nil {
				if named := namedOf(obj.Type()); named != nil {
					hasLockedMethod[named] = true
				}
			}
		}
	}
	guarded := make(map[*types.Named]map[string]bool)
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || !hasLockedMethod[named] {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		muIndex := -1
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "mu" && isMutexType(f.Type()) {
				muIndex = i
				break
			}
		}
		if muIndex < 0 {
			continue
		}
		protected := make(map[string]bool)
		for i := muIndex + 1; i < st.NumFields(); i++ {
			if !isMutexType(st.Field(i).Type()) {
				protected[st.Field(i).Name()] = true
			}
		}
		guarded[named] = protected
	}
	return guarded
}

// lockOp is one mutex operation found in the function body.
type lockOp struct {
	key     string // canonical mutex path ("<obj>.mu")
	display string
	method  string // Lock, Unlock, RLock, RUnlock
}

// query is one node that requires a held mutex.
type query struct {
	node    ast.Node
	pos     token.Pos
	keys    map[string]bool // acceptable mutex keys; nil = any key in the function
	display string          // what is being accessed, for the message
	lockstr string          // the lock that should be held, for the message
}

type heldRecord struct {
	visited   bool
	sawUnheld bool
}

// checkFunc analyzes one function body. recvObj is the receiver object
// for methods (nil otherwise); isLocked reports a *Locked name.
func (c *checker) checkFunc(body *ast.BlockStmt, recvObj types.Object, isLocked bool) {
	info := c.pass.TypesInfo

	// Pass 1: collect mutex ops and held-requirement queries.
	ops := make(map[*ast.CallExpr]lockOp)
	keyDisplay := make(map[string]string)
	recvKeys := make(map[string]bool) // keys rooted at the method receiver
	var queries []*query
	fresh := freshLocals(info, body)

	inspectSkippingFuncLit(body, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			if op, ok := c.mutexOp(x); ok {
				ops[x] = op
				keyDisplay[op.key] = op.display
				if recvObj != nil && rootObject(info, x) == recvObj {
					recvKeys[op.key] = true
				}
				return
			}
			if q := c.lockedCallQuery(x, recvObj, isLocked, fresh); q != nil {
				queries = append(queries, q)
			}
		case *ast.SelectorExpr:
			if q := c.fieldAccessQuery(x, recvObj, isLocked, fresh); q != nil {
				queries = append(queries, q)
			}
		}
	})

	keys := make([]string, 0, len(keyDisplay))
	for k := range keyDisplay {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		keys = append(keys, "") // dummy key so queries are still visited
	}

	// Pass 2: per mutex key, interpret the body and record heldness at
	// every query node.
	acc := make(map[string]map[ast.Node]*heldRecord)
	for _, key := range keys {
		key := key
		records := make(map[ast.Node]*heldRecord)
		acc[key] = records
		hasLock := keyHasLock(ops, key)
		initial := unheld
		if isLocked && recvObj != nil && recvKeys[key] {
			// A *Locked method runs inside its caller's critical section
			// on the receiver's mutex.
			initial = caller
		}
		interp := &flow.Interp[uint8]{
			Transfer: func(s uint8, n ast.Node) uint8 {
				deferred := false
				if d, ok := n.(*ast.DeferStmt); ok {
					deferred = true
					n = d.Call
				}
				inspectSkippingFuncLit(n, func(inner ast.Node) {
					switch x := inner.(type) {
					case *ast.CallExpr:
						if op, ok := ops[x]; ok && op.key == key {
							s = c.applyOp(s, op, deferred, hasLock, x.Pos())
						}
					}
					for _, q := range queries {
						if q.node == inner {
							rec := records[q.node]
							if rec == nil {
								rec = &heldRecord{}
								records[q.node] = rec
							}
							rec.visited = true
							if !held(s) {
								rec.sawUnheld = true
							}
						}
					}
				})
				return s
			},
			AtExit: func(s uint8, n ast.Node) {
				if s == excl || s == rdheld {
					c.reportf(n.Pos(), "returns with %s still locked (no unlock on this path)", keyDisplay[key])
				}
			},
			Terminates: analysis.PathTerminates,
		}
		interp.Run(body, initial)
	}

	// Pass 3: a query is satisfied if some acceptable key was held on
	// every path reaching it.
	for _, q := range queries {
		ok := false
		for _, key := range keys {
			if key == "" {
				continue
			}
			if q.keys != nil && !q.keys[key] {
				continue
			}
			if rec := acc[key][q.node]; rec != nil && rec.visited && !rec.sawUnheld {
				ok = true
				break
			}
		}
		// Unreachable code is never visited; stay silent there.
		visited := false
		for _, key := range keys {
			if rec := acc[key][q.node]; rec != nil && rec.visited {
				visited = true
				break
			}
		}
		if visited && !ok {
			c.reportf(q.pos, "%s without holding %s", q.display, q.lockstr)
		}
	}
}

// applyOp folds one mutex operation into the path state, reporting
// misuse.
func (c *checker) applyOp(s uint8, op lockOp, deferred bool, hasLock bool, pos token.Pos) uint8 {
	switch op.method {
	case "Lock":
		if held(s) {
			c.reportf(pos, "%s.Lock on a path where it may already be held (self-deadlock)", op.display)
			return s
		}
		if s == deferOnly {
			return exclDefer
		}
		return excl
	case "RLock":
		if s == excl || s == exclDefer || s == caller {
			c.reportf(pos, "%s.RLock on a path where it may already be exclusively held", op.display)
			return s
		}
		if s == deferOnly {
			return rdDefer
		}
		return rdheld
	case "Unlock", "RUnlock":
		if deferred {
			switch s {
			case excl:
				return exclDefer
			case rdheld:
				return rdDefer
			case unheld:
				return deferOnly
			case exclDefer, rdDefer:
				c.reportf(pos, "second deferred unlock of %s on this path", op.display)
				return s
			}
			return s
		}
		switch s {
		case excl, rdheld:
			return unheld
		case exclDefer, rdDefer:
			c.reportf(pos, "%s unlocked while a deferred unlock is pending (double unlock)", op.display)
			return unheld
		case caller:
			c.reportf(pos, "%s.%s inside a *Locked function: the caller owns this critical section", op.display, op.method)
			return s
		default:
			if hasLock {
				c.reportf(pos, "%s.%s without holding it on this path", op.display, op.method)
			}
			return s
		}
	}
	return s
}

// mutexOp recognizes <path>.mu.Lock() and friends where the receiver is
// a sync.Mutex / sync.RWMutex reachable through a canonical selector
// path.
func (c *checker) mutexOp(call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockOp{}, false
	}
	if !isMutexType(c.pass.TypesInfo.TypeOf(sel.X)) {
		return lockOp{}, false
	}
	key, display, ok := canonPath(c.pass.TypesInfo, sel.X)
	if !ok {
		return lockOp{}, false
	}
	return lockOp{key: key, display: display, method: sel.Sel.Name}, true
}

// lockedCallQuery builds the held-requirement for a call to a *Locked
// function or method.
func (c *checker) lockedCallQuery(call *ast.CallExpr, recvObj types.Object, isLocked bool, fresh map[types.Object]bool) *query {
	info := c.pass.TypesInfo
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if !strings.HasSuffix(fun.Sel.Name, "Locked") {
			return nil
		}
		selInfo := info.Selections[fun]
		if selInfo == nil || selInfo.Kind() != types.MethodVal {
			return nil // package-qualified call or field-of-func; not a method
		}
		base := fun.X
		baseKey, baseDisplay, ok := canonPath(info, base)
		if !ok {
			return nil
		}
		root := rootObjectOfExpr(info, base)
		if fresh[root] {
			return nil
		}
		if isLocked && (recvObj == nil || root == recvObj) {
			// *Locked calling *Locked on the same receiver, or a
			// receiver-less *Locked helper whose caller owns the lock.
			return nil
		}
		// Acceptable: any mutex-typed field of the receiver's struct.
		keys := make(map[string]bool)
		lockNames := []string{}
		if st := structOf(info.TypeOf(base)); st != nil {
			for i := 0; i < st.NumFields(); i++ {
				if isMutexType(st.Field(i).Type()) {
					keys[baseKey+"."+st.Field(i).Name()] = true
					lockNames = append(lockNames, baseDisplay+"."+st.Field(i).Name())
				}
			}
		}
		if len(keys) == 0 {
			return nil // no mutex on the receiver: nothing to check against
		}
		return &query{
			node:    call.Fun,
			pos:     call.Pos(),
			keys:    keys,
			display: fmt.Sprintf("%s.%s is called", baseDisplay, fun.Sel.Name),
			lockstr: strings.Join(lockNames, " or "),
		}
	case *ast.Ident:
		if !strings.HasSuffix(fun.Name, "Locked") {
			return nil
		}
		if _, isFunc := info.Uses[fun].(*types.Func); !isFunc {
			return nil
		}
		if isLocked {
			return nil
		}
		return &query{
			node:    call.Fun,
			pos:     call.Pos(),
			keys:    nil, // any lock held in this function will do
			display: fmt.Sprintf("%s is called", fun.Name),
			lockstr: "a mutex",
		}
	}
	return nil
}

// fieldAccessQuery builds the held-requirement for a direct access to a
// protected field of a guarded struct.
func (c *checker) fieldAccessQuery(sel *ast.SelectorExpr, recvObj types.Object, isLocked bool, fresh map[types.Object]bool) *query {
	info := c.pass.TypesInfo
	selInfo := info.Selections[sel]
	if selInfo == nil || selInfo.Kind() != types.FieldVal {
		return nil
	}
	named := namedOf(info.TypeOf(sel.X))
	if named == nil {
		return nil
	}
	protected, ok := c.guarded[named]
	if !ok || !protected[sel.Sel.Name] {
		return nil
	}
	baseKey, baseDisplay, canonOK := canonPath(info, sel.X)
	if !canonOK {
		return nil
	}
	root := rootObjectOfExpr(info, sel.X)
	if fresh[root] {
		return nil
	}
	if isLocked && (recvObj == nil || root == recvObj) {
		return nil
	}
	return &query{
		node:    sel,
		pos:     sel.Pos(),
		keys:    map[string]bool{baseKey + ".mu": true},
		display: fmt.Sprintf("%s.%s (guarded field of %s) is accessed", baseDisplay, sel.Sel.Name, named.Obj().Name()),
		lockstr: baseDisplay + ".mu",
	}
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v:%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// --- helpers ---

func keyHasLock(ops map[*ast.CallExpr]lockOp, key string) bool {
	for _, op := range ops {
		if op.key == key && (op.method == "Lock" || op.method == "RLock") {
			return true
		}
	}
	return false
}

// canonPath renders a selector chain rooted at an identifier as a
// canonical key (object-identity based) and a display string.
func canonPath(info *types.Info, e ast.Expr) (key, display string, ok bool) {
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			return "", "", false
		}
		return fmt.Sprintf("%p", obj), x.Name, true
	case *ast.SelectorExpr:
		k, d, ok := canonPath(info, x.X)
		if !ok {
			return "", "", false
		}
		return k + "." + x.Sel.Name, d + "." + x.Sel.Name, true
	case *ast.ParenExpr:
		return canonPath(info, x.X)
	}
	return "", "", false
}

// rootObjectOfExpr returns the object of the identifier at the root of a
// selector chain.
func rootObjectOfExpr(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// rootObject returns the root object of a mutex op call's receiver
// chain (sh.mu.Lock() → sh's object).
func rootObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return rootObjectOfExpr(info, sel.X)
}

// freshLocals finds local variables bound to freshly allocated values
// (x := &T{...}, x := T{...}, x := new(T), var x T): their fields are
// init-time state no lock protects yet.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	inspectSkippingFuncLit(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.DEFINE || len(st.Lhs) != len(st.Rhs) {
				return
			}
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isFreshAlloc(st.Rhs[i]) {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := st.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue // zero-valued var declarations only
				}
				for _, id := range vs.Names {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		}
	})
	return fresh
}

func isFreshAlloc(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, ok := x.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func structOf(t types.Type) *types.Struct {
	named := namedOf(t)
	if named == nil {
		return nil
	}
	st, _ := named.Underlying().(*types.Struct)
	return st
}

func recvObject(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]
}

// inspectSkippingFuncLit walks n in pre-order, not descending into
// function literals (closures run elsewhere and are analyzed as their
// own functions).
func inspectSkippingFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(inner ast.Node) bool {
		if inner == nil {
			return false
		}
		if _, ok := inner.(*ast.FuncLit); ok && inner != n {
			return false
		}
		fn(inner)
		return true
	})
}
