// Package lockfix is the lockheld fixture: a shard shaped like
// pkg/lard's lockedShard, exercising every rule — guarded-field access,
// *Locked call sites, lock/unlock pairing, closures, fresh locals, and
// the allow directive.
package lockfix

import "sync"

// shard follows the "mu guards the fields below it" convention:
// strategy (above mu) is immutable configuration; loads and inFlight
// (below mu) are protected.
type shard struct {
	strategy string

	mu       sync.Mutex
	loads    map[string]int
	inFlight int
}

// claimLocked runs inside the caller's critical section; the release
// closure it returns runs outside it and must re-take the lock.
func (sh *shard) claimLocked(n string) func() {
	sh.loads[n]++
	sh.inFlight++
	return func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		sh.loads[n]--
		sh.inFlight--
	}
}

func (sh *shard) bumpLocked() {
	sh.inFlight++
}

// sumLocked calling bumpLocked on its own receiver is fine: both run in
// the same caller-owned critical section.
func (sh *shard) sumLocked() int {
	sh.bumpLocked()
	total := 0
	for _, v := range sh.loads {
		total += v
	}
	return total
}

// goodClaim holds the lock across the *Locked call.
func (sh *shard) goodClaim(n string) func() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.claimLocked(n)
}

// badClaim reaches a *Locked helper with no lock held.
func (sh *shard) badClaim(n string) func() {
	return sh.claimLocked(n) // want `sh\.claimLocked is called without holding sh\.mu`
}

// badAccess touches a guarded field with no lock held.
func (sh *shard) badAccess() int {
	return sh.inFlight // want `sh\.inFlight \(guarded field of shard\) is accessed without holding sh\.mu`
}

// goodAccess is the canonical pattern.
func (sh *shard) goodAccess() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.inFlight
}

// unguarded reads a field declared above mu: configuration, not state.
func (sh *shard) unguarded() string {
	return sh.strategy
}

// leakyRelease builds a closure inside the critical section; the
// closure body runs later, outside it.
func (sh *shard) leakyRelease() func() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.inFlight++
	return func() {
		sh.inFlight-- // want `sh\.inFlight \(guarded field of shard\) is accessed without holding sh\.mu`
	}
}

// leak returns with the mutex held on the early-return path.
func (sh *shard) leak(b bool) {
	sh.mu.Lock()
	if b {
		return // want `returns with sh\.mu still locked`
	}
	sh.mu.Unlock()
}

// twice self-deadlocks.
func (sh *shard) twice() {
	sh.mu.Lock()
	sh.mu.Lock() // want `sh\.mu\.Lock on a path where it may already be held`
	sh.mu.Unlock()
}

// unlockFirst unlocks a mutex it has not locked yet.
func (sh *shard) unlockFirst() {
	sh.mu.Unlock() // want `sh\.mu\.Unlock without holding it on this path`
	sh.mu.Lock()
	sh.mu.Unlock()
}

// stealLocked runs under sh's lock (receiver accesses exempt) but
// touches another shard's guarded state without that shard's lock.
func (sh *shard) stealLocked(other *shard) {
	sh.inFlight += other.inFlight // want `other\.inFlight \(guarded field of shard\) is accessed without holding other\.mu`
}

// mergeLocked does it right: it takes the other shard's lock.
func (sh *shard) mergeLocked(other *shard) {
	other.mu.Lock()
	defer other.mu.Unlock()
	sh.inFlight += other.inFlight
}

// newShard initializes a fresh local: no lock exists to hold yet.
func newShard() *shard {
	sh := &shard{strategy: "llf", loads: make(map[string]int)}
	sh.inFlight = 0
	return sh
}

// peek documents a deliberate racy read with the allow directive.
func (sh *shard) peek() int {
	return sh.inFlight //lard:allow lockheld — fixture: deliberately racy gauge read
}

func resetLocked() {}

// reset calls a receiver-less *Locked helper with nothing held.
func reset() {
	resetLocked() // want `resetLocked is called without holding a mutex`
}

// resetUnder holds a lock — any lock — across the helper call.
func resetUnder(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	resetLocked()
}

// table exercises the RWMutex states.
type table struct {
	mu   sync.RWMutex
	rows map[string]int
}

func (t *table) lenLocked() int { return len(t.rows) }

// get reads under the read lock.
func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[k]
}

// upgrade tries to upgrade a read lock to a write lock: deadlock.
func (t *table) upgrade() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.mu.Lock() // want `t\.mu\.Lock on a path where it may already be held`
}

var _ = newShard
var _ = reset
var _ = resetUnder
