// Package relayfix is the relayclass fixture: consumers of
// internal/httprelay's head readers writing 400 responses with and
// without classifying the error first.
package relayfix

import (
	"bufio"
	"errors"
	"fmt"
	"net"

	"lard/internal/httprelay"
)

// serveBad answers every head-read error with a 400 — including
// io.EOF on a cleanly closed keep-alive connection. This is the bug
// class the analyzer exists for.
func serveBad(c net.Conn, br *bufio.Reader) {
	_, err := httprelay.ReadRequestHead(br, 1<<14)
	if err != nil {
		fmt.Fprintf(c, "HTTP/1.1 400 Bad Request\r\n\r\n") // want `head-read error reaches a 400 response without being classified`
		return
	}
}

// serveBadViaWriter launders the 400 through a local helper; still
// unclassified.
func serveBadViaWriter(c net.Conn, br *bufio.Reader) {
	_, err := httprelay.ReadRequestHead(br, 1<<14)
	if err != nil {
		writeBadRequest(c) // want `head-read error reaches a 400 response without being classified`
		return
	}
}

// serveGood classifies inline with errors.As before writing the 400.
func serveGood(c net.Conn, br *bufio.Reader) {
	_, err := httprelay.ReadRequestHead(br, 1<<14)
	if err != nil {
		var malformed *httprelay.MalformedError
		if errors.As(err, &malformed) {
			writeBadRequest(c)
		}
		return
	}
}

// serveViaClassifier hands the error to the canonical classifier, the
// way internal/frontend's relay loop uses headReadFailed.
func serveViaClassifier(c net.Conn, br *bufio.Reader) {
	_, err := httprelay.ReadRequestHead(br, 1<<14)
	if err != nil {
		headReadFailed(c, err)
		return
	}
}

// serveSwitch classifies with a type switch instead of errors.As.
func serveSwitch(c net.Conn, br *bufio.Reader) {
	_, err := httprelay.ReadResponseHead(br, 1<<14)
	if err != nil {
		switch err.(type) {
		case *httprelay.MalformedError:
			writeBadRequest(c)
		}
		return
	}
}

// serveAllowed documents a deliberate exception.
func serveAllowed(c net.Conn, br *bufio.Reader) {
	_, err := httprelay.ReadRequestHead(br, 1<<14)
	if err != nil {
		writeBadRequest(c) //lard:allow relayclass — fixture: deliberate blanket 400
		return
	}
}

// headReadFailed mimics internal/frontend's classifier: only malformed
// heads earn a 400; transport errors stay silent.
func headReadFailed(c net.Conn, err error) {
	var malformed *httprelay.MalformedError
	if errors.As(err, &malformed) {
		writeBadRequest(c)
	}
}

// writeBadRequest is a plain 400 writer: calling it is only legitimate
// after classification.
func writeBadRequest(c net.Conn) {
	fmt.Fprintf(c, "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\nConnection: close\r\n\r\n")
}
