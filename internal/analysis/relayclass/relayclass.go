// Package relayclass checks error classification on the relay path.
//
// internal/httprelay's contract: ReadRequestHead and ReadResponseHead
// return a *httprelay.MalformedError for protocol violations (those
// deserve a 400) and pass transport errors — io.EOF on a cleanly closed
// keep-alive connection, deadline timeouts — through unwrapped (those
// must NOT surface as 400s; answering a clean close with "400 Bad
// Request" breaks persistent-connection clients and skews error
// accounting). This analyzer enforces the consumer side of the
// contract: in any package importing internal/httprelay, a 400 response
// written under an `err != nil` guard on a head-read error must be
// classified first — by errors.As against *httprelay.MalformedError, a
// type switch on it, or by handing the error to a package-local
// classifier function (internal/frontend's headReadFailed is the
// canonical one).
//
// Escape hatch: //lard:allow relayclass on (or above) the flagged line.
package relayclass

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lard/internal/analysis"
)

// Analyzer is the relayclass pass.
var Analyzer = &analysis.Analyzer{
	Name: "relayclass",
	Doc:  "require httprelay head-read errors to be classified (MalformedError or a classifier func) before a 400 response is written",
	Run:  run,
}

const relayPkgPath = "lard/internal/httprelay"

// readFuncs are the httprelay entry points whose error results carry
// the classification contract.
var readFuncs = map[string]bool{
	"ReadRequestHead":  true,
	"ReadResponseHead": true,
}

func run(pass *analysis.Pass) error {
	if !importsRelay(pass.Pkg) {
		return nil
	}
	c := &checker{pass: pass}
	c.classifiers, c.writers400 = scanLocals(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

type checker struct {
	pass        *analysis.Pass
	classifiers map[types.Object]bool // package-local funcs that classify an error param
	writers400  map[types.Object]bool // package-local funcs that write a 400 status
}

// checkFunc finds head-read error variables and the 400 writes they
// guard.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	info := c.pass.TypesInfo

	// The classifier funcs are exempt from their own rule: inside one,
	// the 400-write is by construction on the classified arm.
	if c.classifiers[info.Defs[fd.Name]] {
		return
	}

	var errObjs []types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Rhs) != 1 {
			return true
		}
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok || !c.isHeadRead(call) {
			return true
		}
		if len(st.Lhs) != 2 {
			return true
		}
		if id, ok := st.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			if obj := objOf(info, id); obj != nil {
				errObjs = append(errObjs, obj)
			}
		}
		return true
	})

	for _, errObj := range errObjs {
		if c.classifiesErr(fd.Body, errObj) {
			continue
		}
		// Unclassified: every 400 write under an err-guard is a
		// potential io.EOF-as-400.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ifst, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			var guarded *ast.BlockStmt
			if condHasNilCompare(info, ifst.Cond, errObj, token.NEQ) {
				guarded = ifst.Body
			} else if condHasNilCompare(info, ifst.Cond, errObj, token.EQL) {
				if b, ok := ifst.Else.(*ast.BlockStmt); ok {
					guarded = b
				}
			}
			if guarded == nil {
				return true
			}
			c.flag400Writes(guarded)
			return true
		})
	}
}

// flag400Writes reports every call in the guarded block that writes a
// 400 status, directly or via a package-local 400-writer.
func (c *checker) flag400Writes(block *ast.BlockStmt) {
	info := c.pass.TypesInfo
	ast.Inspect(block, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeObj(info, call); callee != nil && c.writers400[callee] {
			c.report(call)
			return true
		}
		for _, arg := range call.Args {
			if lit400(arg) {
				c.report(call)
				return false // one report per call, args already covered
			}
		}
		return true
	})
}

func (c *checker) report(call *ast.CallExpr) {
	c.pass.Reportf(call.Pos(),
		"head-read error reaches a 400 response without being classified as *httprelay.MalformedError: io.EOF and timeouts on the relay path must not surface as 400s")
}

// classifiesErr reports whether the function body classifies errObj:
// errors.As against *httprelay.MalformedError, a type switch with a
// MalformedError case, or passing it to a package-local classifier.
func (c *checker) classifiesErr(body *ast.BlockStmt, errObj types.Object) bool {
	info := c.pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isErrorsAs(info, x) && len(x.Args) == 2 &&
				identIs(info, x.Args[0], errObj) && isMalformedPtrPtr(info, x.Args[1]) {
				found = true
				return false
			}
			if callee := calleeObj(info, x); callee != nil && c.classifiers[callee] {
				for _, arg := range x.Args {
					if identIs(info, arg, errObj) {
						found = true
						return false
					}
				}
			}
		case *ast.TypeSwitchStmt:
			if typeSwitchOn(info, x, errObj) && switchHasMalformedCase(info, x) {
				found = true
				return false
			}
		case *ast.TypeAssertExpr:
			if identIs(info, x.X, errObj) && isMalformedPtr(info.TypeOf(x.Type)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// scanLocals finds the package-local classifier functions and
// 400-writer functions.
func scanLocals(pass *analysis.Pass) (classifiers, writers map[types.Object]bool) {
	info := pass.TypesInfo
	classifiers = make(map[types.Object]bool)
	writers = make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			if classifiesAnyErrorParam(info, fd) {
				classifiers[obj] = true
			}
			if bodyHas400Literal(fd.Body) {
				writers[obj] = true
			}
		}
	}
	return classifiers, writers
}

// classifiesAnyErrorParam reports whether fd takes an error parameter
// and classifies it against *httprelay.MalformedError.
func classifiesAnyErrorParam(info *types.Info, fd *ast.FuncDecl) bool {
	var errParams []types.Object
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isErrorType(obj.Type()) {
				errParams = append(errParams, obj)
			}
		}
	}
	if len(errParams) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isErrorsAs(info, x) && len(x.Args) == 2 && isMalformedPtrPtr(info, x.Args[1]) {
				for _, p := range errParams {
					if identIs(info, x.Args[0], p) {
						found = true
					}
				}
			}
		case *ast.TypeSwitchStmt:
			for _, p := range errParams {
				if typeSwitchOn(info, x, p) && switchHasMalformedCase(info, x) {
					found = true
				}
			}
		case *ast.TypeAssertExpr:
			for _, p := range errParams {
				if identIs(info, x.X, p) && isMalformedPtr(info.TypeOf(x.Type)) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// --- small predicates ---

func importsRelay(pkg *types.Package) bool {
	for _, imp := range pkg.Imports() {
		if imp.Path() == relayPkgPath {
			return true
		}
	}
	return false
}

func (c *checker) isHeadRead(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !readFuncs[sel.Sel.Name] {
		return false
	}
	fn, ok := calleeObj(c.pass.TypesInfo, call).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == relayPkgPath
}

func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func isErrorsAs(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "As" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[id].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "errors"
}

// isMalformedPtrPtr matches &m where m is *httprelay.MalformedError
// (the second argument shape of errors.As).
func isMalformedPtrPtr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	return isMalformedPtr(ptr.Elem())
}

func isMalformedPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "MalformedError" && obj.Pkg() != nil && obj.Pkg().Path() == relayPkgPath
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func identIs(info *types.Info, e ast.Expr, obj types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && objOf(info, id) == obj
}

func condHasNilCompare(info *types.Info, cond ast.Expr, obj types.Object, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		if (identIs(info, be.X, obj) && isNil(info, be.Y)) ||
			(identIs(info, be.Y, obj) && isNil(info, be.X)) {
			found = true
		}
		return true
	})
	return found
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := info.Uses[id].(*types.Nil)
	return isNilObj || id.Name == "nil"
}

func typeSwitchOn(info *types.Info, st *ast.TypeSwitchStmt, obj types.Object) bool {
	var x ast.Expr
	switch a := st.Assign.(type) {
	case *ast.ExprStmt:
		ta, ok := a.X.(*ast.TypeAssertExpr)
		if !ok {
			return false
		}
		x = ta.X
	case *ast.AssignStmt:
		if len(a.Rhs) != 1 {
			return false
		}
		ta, ok := a.Rhs[0].(*ast.TypeAssertExpr)
		if !ok {
			return false
		}
		x = ta.X
	default:
		return false
	}
	return identIs(info, x, obj)
}

func switchHasMalformedCase(info *types.Info, st *ast.TypeSwitchStmt) bool {
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isMalformedPtr(info.TypeOf(e)) {
				return true
			}
		}
	}
	return false
}

func bodyHas400Literal(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "400") {
			found = true
		}
		return true
	})
	return found
}

func lit400(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && lit.Kind == token.STRING && strings.Contains(lit.Value, "400") {
			found = true
		}
		return true
	})
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
