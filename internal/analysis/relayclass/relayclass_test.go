package relayclass_test

import (
	"testing"

	"lard/internal/analysis/atest"
	"lard/internal/analysis/relayclass"
)

func TestRelayclass(t *testing.T) {
	atest.Run(t, atest.TestData(), relayclass.Analyzer, "relayfix")
}
