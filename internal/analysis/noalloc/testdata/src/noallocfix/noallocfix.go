// Package noallocfix is the noalloc fixture: annotated functions that
// allocate (escaping make, address-taken local moved to heap), a clean
// annotated function, an unannotated allocator that must not be
// flagged, and a deliberate allocation waived with //lard:allow.
package noallocfix

var sink []byte

var sunk *int

// escapingMake allocates a slice that escapes through the return.
//
//lard:noalloc
func escapingMake(n int) []byte {
	return make([]byte, n) // want `heap allocation in //lard:noalloc function escapingMake: make\(\[\]byte, n\) escapes to heap`
}

// movedLocal takes the address of a local and leaks it.
//
//lard:noalloc
func movedLocal() *int {
	x := 7 // want `heap allocation in //lard:noalloc function movedLocal: x escapes to heap`
	return &x
}

// clean stays on the stack: arithmetic and a write through a
// caller-owned slice.
//
//lard:noalloc
func clean(buf []byte, v byte) int {
	n := 0
	for i := range buf {
		buf[i] = v
		n++
	}
	return n
}

// unannotated allocates freely; without the directive nothing is
// checked.
func unannotated(n int) []byte {
	return make([]byte, n)
}

// waived carries a written-down exception.
//
//lard:noalloc
func waived(n int) {
	//lard:allow noalloc — fixture: demonstrates the escape hatch
	sink = make([]byte, n)
}
