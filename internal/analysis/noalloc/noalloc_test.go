package noalloc_test

import (
	"testing"

	"lard/internal/analysis/atest"
	"lard/internal/analysis/noalloc"
)

func TestNoalloc(t *testing.T) {
	atest.Run(t, atest.TestData(), noalloc.Analyzer, "noallocfix")
}
