// Package noalloc verifies that functions annotated
//
//	//lard:noalloc
//
// in their doc comment contain no heap allocations, by driving the
// compiler's own escape analysis (`go build -gcflags='-m -m'`) over
// the package and mapping "escapes to heap" / "moved to heap"
// diagnostics back into the annotated function bodies. The annotation
// belongs on the relay hot paths PR 7 made allocation-free — the copy
// loops in internal/httprelay, the frame read/write path in
// internal/handoff, Session.Dispatch in pkg/lard — and turns the
// measured B/op reductions into an invariant the build enforces: a
// change that quietly boxes a value or grows a closure on one of these
// paths becomes a lint finding, not a benchmark regression someone may
// notice months later.
//
// Two properties of the escape output matter here:
//
//   - Allocations inlined from callees are attributed to positions in
//     the *annotated* function (the call site), so the check covers the
//     whole inlined fast path, not just syntax written in the function.
//   - The go build cache replays -m diagnostics on cache hits, so the
//     check is cheap and reliable on warm builds.
//
// The analyzer needs the package's directory to invoke the compiler,
// so it runs in standalone lardlint only — under go vet's unitchecker
// (file lists, possibly including _test.go files) it is a no-op and is
// not registered.
//
// Escape hatch: //lard:allow noalloc — reason, on (or directly above)
// the line the compiler flags. Use it only for diagnostics that are
// provably not runtime allocations on the hot path (e.g. an inlined
// callee's cold arm that cannot execute with pooled inputs).
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"lard/internal/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "check that //lard:noalloc functions compile without heap allocations (escape analysis clean)",
	Run:  run,
}

// region is one annotated function's body extent within a file.
type region struct {
	name       string
	start, end int // line range, inclusive
}

// diagLine matches one compiler diagnostic: file:line:col: message.
var diagLine = regexp.MustCompile(`^(.*\.go):(\d+):(\d+): (.*)$`)

func run(pass *analysis.Pass) error {
	// Collect annotated functions per file basename.
	regions := make(map[string][]region)
	files := make(map[string]*token.File)
	count := 0
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf == nil {
			continue
		}
		base := filepath.Base(tf.Name())
		files[base] = tf
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			regions[base] = append(regions[base], region{
				name:  fd.Name.Name,
				start: pass.Fset.Position(fd.Pos()).Line,
				end:   pass.Fset.Position(fd.Body.End()).Line,
			})
			count++
		}
	}
	if count == 0 {
		return nil
	}
	if pass.Dir == "" {
		// Unitchecker mode has no package directory to build; the
		// standalone run covers the check.
		return nil
	}

	// The compiler's escape analysis over the package. Diagnostics go
	// to stderr; the build cache replays them on cache hits, so this is
	// cheap when nothing changed. -m -m adds the flow chains, whose
	// detail lines the message filter below drops.
	cmd := exec.Command("go", "build", "-gcflags=-m -m", ".")
	cmd.Dir = pass.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go build -gcflags=-m in %s: %v\n%s", pass.Dir, err, out)
	}

	// -m -m reports the same allocation more than once (the verbose
	// "escapes to heap:" headline plus the plain line, or an escape plus
	// "moved to heap"); one finding per source position is enough.
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !isAllocation(msg) {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		base := filepath.Base(m[1])
		tf := files[base]
		if tf == nil {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d", base, lineNo, col)
		if seen[key] {
			continue
		}
		seen[key] = true
		for _, rg := range regions[base] {
			if lineNo < rg.start || lineNo > rg.end {
				continue
			}
			pos := posAt(tf, lineNo, col)
			if pos == token.NoPos {
				break
			}
			pass.Reportf(pos, "heap allocation in //lard:noalloc function %s: %s",
				rg.name, strings.TrimSuffix(msg, ":"))
			break
		}
	}
	return nil
}

// hasNoallocDirective reports a //lard:noalloc line in the function's
// doc comment.
func hasNoallocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == "lard:noalloc" {
			return true
		}
	}
	return false
}

// isAllocation keeps only the escape-analysis headlines that mean a
// runtime heap allocation: "x escapes to heap" (with or without the
// -m -m trailing colon) and "moved to heap: x". Everything else the
// flag prints — "leaking param", "can inline", the indented "flow:"
// chains — is not an allocation.
func isAllocation(msg string) bool {
	if strings.HasPrefix(msg, " ") {
		return false // -m -m detail lines are indented under the headline
	}
	if strings.HasPrefix(msg, "moved to heap:") {
		return true
	}
	return strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:")
}

// posAt synthesizes a token.Pos for line:col in tf, so Reportf's
// //lard:allow suppression and test-file filtering work on compiler
// positions.
func posAt(tf *token.File, line, col int) token.Pos {
	if line < 1 || line > tf.LineCount() {
		return token.NoPos
	}
	p := tf.LineStart(line)
	return p + token.Pos(col-1)
}
