// Package donefix is the donecall fixture: a dispatcher shaped like
// pkg/lard's, exercising the exactly-once done-func contract on every
// path shape the analyzer understands.
package donefix

import "errors"

type dispatcher struct{ load []int }

// Dispatch mimics lard.Dispatcher: done is non-nil iff err is nil.
func (d *dispatcher) Dispatch(now int64, key string) (int, func(), error) {
	if len(d.load) == 0 {
		return -1, nil, errors.New("no nodes")
	}
	d.load[0]++
	return 0, func() { d.load[0]-- }, nil
}

// claimLocked mimics the error-free variant: done is always non-nil.
func (d *dispatcher) claimLocked(node int) func() {
	d.load[node]++
	return func() { d.load[node]-- }
}

// good is the canonical shape: check err, call done exactly once.
func good(d *dispatcher) error {
	_, done, err := d.Dispatch(0, "a")
	if err != nil {
		return err
	}
	done()
	return nil
}

// goodDefer releases via defer after the error check.
func goodDefer(d *dispatcher) error {
	_, done, err := d.Dispatch(0, "a")
	if err != nil {
		return err
	}
	defer done()
	return nil
}

// goodPanic ends the error path with panic (the log.Fatal shape in the
// examples): done() below is unreachable on the err arm.
func goodPanic(d *dispatcher) {
	_, done, err := d.Dispatch(0, "a")
	if err != nil {
		panic(err)
	}
	done()
}

// goodNilCheck gates the call on done itself rather than err.
func goodNilCheck(d *dispatcher) {
	_, done, _ := d.Dispatch(0, "a")
	if done != nil {
		done()
	}
}

// discard throws the done func away.
func discard(d *dispatcher) {
	d.Dispatch(0, "a") // want `Dispatch returns a done func that is discarded`
}

// blank assigns the done func to _.
func blank(d *dispatcher) {
	_, _, err := d.Dispatch(0, "a") // want `Dispatch returns a done func that is discarded \(assigned to _\)`
	_ = err
}

// leak forgets to call done on the success path.
func leak(d *dispatcher) error {
	_, done, err := d.Dispatch(0, "a")
	if err != nil {
		return err
	}
	_ = done
	return nil // want `done func from Dispatch \(line \d+\) is not called on this path`
}

// leakBranch calls done on one arm only.
func leakBranch(d *dispatcher, b bool) {
	_, done, err := d.Dispatch(0, "a")
	if err != nil {
		return
	}
	if b {
		done()
	}
	return // want `done func from Dispatch \(line \d+\) is not called on this path`
}

// double may call done twice on the b-path.
func double(d *dispatcher, b bool) {
	done := d.claimLocked(0)
	if b {
		done()
	}
	done() // want `done func from claimLocked \(line \d+\) may already have been called on this path`
}

// nilCall invokes done exactly where it is guaranteed nil.
func nilCall(d *dispatcher) {
	_, done, err := d.Dispatch(0, "a")
	if err != nil {
		done() // want `done func from Dispatch \(line \d+\) is called on a path where it is nil`
		return
	}
	done()
}

// overwrite drops a live done by reassigning it.
func overwrite(d *dispatcher) {
	done := d.claimLocked(0)
	done = d.claimLocked(1) // want `done func from claimLocked \(line \d+\) is overwritten before being called`
	done()
}

// loopLeak claims again next iteration without releasing, and leaves
// the last claim unreleased when the loop exits (hence the diagnostic
// on the function's opening line, where fall-off-the-end reports land).
func loopLeak(d *dispatcher, n int) { // want `done func from claimLocked \(line \d+\) is not called on this path`
	for i := 0; i < n; i++ {
		done := d.claimLocked(0) // want `done func from claimLocked \(line \d+\) is overwritten before being called`
		_ = done
	}
}

// loopGood releases every iteration.
func loopGood(d *dispatcher, n int) {
	for i := 0; i < n; i++ {
		done := d.claimLocked(0)
		done()
	}
}

// escapeReturn hands the obligation to the caller.
func escapeReturn(d *dispatcher) (func(), error) {
	_, done, err := d.Dispatch(0, "a")
	return done, err
}

// escapeArg hands the obligation to another function.
func escapeArg(d *dispatcher, sink func(func())) {
	done := d.claimLocked(0)
	sink(done)
}

// escapeCapture hands the obligation to a closure.
func escapeCapture(d *dispatcher) func() {
	done := d.claimLocked(0)
	return func() { done() }
}

// holder mimics Session parking the release func in a struct field.
type holder struct{ release func() }

// escapeStore parks the obligation in a struct the way Session does.
func escapeStore(d *dispatcher, h *holder) {
	h.release = d.claimLocked(0)
}

// allowDirective suppresses a deliberate leak; fall-off-the-end reports
// land on the opening line, so the directive sits above the function.
//
//lard:allow donecall — fixture: leak is the point of this helper
func allowDirective(d *dispatcher) {
	done := d.claimLocked(0)
	_ = done
}
