// Package donecall proves the done-func contract of the dispatch layer.
//
// Every dispatch-layer call — Dispatch, dispatch, Redispatch, claimNode,
// claimFallback, claimLocked, redispatchBackend — returns a done func()
// that releases the claimed slot on a backend node. The contract is
// exactly-once: a path that never calls done leaks the slot (the node's
// reported load stays high forever and the LARD policy routes around a
// phantom connection); a path that calls it twice drives the load
// negative and the policy floods the node. In the style of the vet
// lostcancel check, this analyzer interprets every path through a
// function and reports:
//
//   - the done result discarded (assigned to _ or the call used as a
//     bare statement);
//   - a path that returns without calling done while it may be live;
//   - a path on which done may be called twice;
//   - done called on a path where the accompanying error is non-nil
//     (the dispatch layer returns a nil done alongside an error);
//   - done overwritten while still live.
//
// The analysis understands `if err != nil` / `if done == nil` branch
// refinement, treats `return done` and passing done to another function
// or storing it in a struct as transferring the obligation (escape),
// and analyzes closures as separate functions (a done captured by a
// closure escapes to it).
//
// Escape hatch: //lard:allow donecall on (or above) the flagged line.
package donecall

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"lard/internal/analysis"
	"lard/internal/analysis/flow"
)

// Analyzer is the donecall pass.
var Analyzer = &analysis.Analyzer{
	Name: "donecall",
	Doc:  "check that the done func returned by dispatch-layer calls is called exactly once on every path",
	Run:  run,
}

// trackedNames are the dispatch-layer callees whose done result is
// checked.
var trackedNames = map[string]bool{
	"Dispatch":          true,
	"dispatch":          true,
	"Redispatch":        true,
	"claimNode":         true,
	"claimFallback":     true,
	"claimLocked":       true,
	"redispatchBackend": true,
}

// Path states of one obligation.
const (
	none      uint8 = iota // before the defining assignment
	undecided              // assigned; err not yet examined (done may be nil)
	live                   // non-nil; must be called exactly once
	nilv                   // nil (error path); must not be called
	called                 // called once
	escaped                // responsibility transferred; stop tracking
)

type checker struct {
	pass *analysis.Pass
	seen map[string]bool
}

// obligation is one tracked dispatch-layer call site.
type obligation struct {
	define  *ast.AssignStmt
	call    *ast.CallExpr
	callee  string
	line    int
	doneObj types.Object // nil if unreachable (blank etc.)
	errObj  types.Object // nil when the callee has no error result
	start   uint8        // live when the callee returns no error
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, seen: make(map[string]bool)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	obs := c.collect(body)
	for _, ob := range obs {
		c.interpret(body, ob)
	}
}

// collect finds the tracked call sites in one function body, reporting
// immediately-wrong shapes (discarded done) and returning the
// obligations worth path-tracking.
func (c *checker) collect(body *ast.BlockStmt) []*obligation {
	info := c.pass.TypesInfo
	var obs []*obligation

	inspectSkippingFuncLit(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if name, doneIdx, _ := c.trackedCall(call); doneIdx >= 0 {
					c.reportf(call.Pos(),
						"%s returns a done func that is discarded: it must be called exactly once", name)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			name, doneIdx, errIdx := c.trackedCall(call)
			if doneIdx < 0 || len(st.Lhs) <= doneIdx {
				return
			}
			doneExpr := st.Lhs[doneIdx]
			id, isIdent := doneExpr.(*ast.Ident)
			if !isIdent {
				// Stored straight into a field or element: the owner of
				// that location carries the obligation now.
				return
			}
			if id.Name == "_" {
				c.reportf(call.Pos(),
					"%s returns a done func that is discarded (assigned to _): it must be called exactly once", name)
				return
			}
			doneObj := info.Defs[id]
			if doneObj == nil {
				doneObj = info.Uses[id]
			}
			if doneObj == nil {
				return
			}
			ob := &obligation{
				define:  st,
				call:    call,
				callee:  name,
				line:    c.pass.Fset.Position(call.Pos()).Line,
				doneObj: doneObj,
				start:   undecided,
			}
			if errIdx < 0 {
				ob.start = live
			} else if errIdx < len(st.Lhs) {
				if eid, ok := st.Lhs[errIdx].(*ast.Ident); ok && eid.Name != "_" {
					if obj := info.Defs[eid]; obj != nil {
						ob.errObj = obj
					} else {
						ob.errObj = info.Uses[eid]
					}
				}
			}
			// A done captured by any closure in this function escapes to
			// it: the closure runs at an unknown time.
			if capturedByFuncLit(info, body, ob.doneObj) {
				return
			}
			obs = append(obs, ob)
		}
	})
	return obs
}

// trackedCall reports whether call is a dispatch-layer call, returning
// its display name and the result indices of the done func and the
// error (-1 when absent / not tracked).
func (c *checker) trackedCall(call *ast.CallExpr) (name string, doneIdx, errIdx int) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", -1, -1
	}
	if !trackedNames[name] {
		return "", -1, -1
	}
	doneIdx, errIdx = -1, -1
	t := c.pass.TypesInfo.TypeOf(call)
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if doneIdx < 0 && isNiladicFunc(rt.At(i).Type()) {
				doneIdx = i
			}
			if errIdx < 0 && isErrorType(rt.At(i).Type()) {
				errIdx = i
			}
		}
	default:
		if isNiladicFunc(t) {
			doneIdx = 0
		}
	}
	if doneIdx < 0 {
		return "", -1, -1
	}
	return name, doneIdx, errIdx
}

// interpret runs the path analysis for one obligation.
func (c *checker) interpret(body *ast.BlockStmt, ob *obligation) {
	info := c.pass.TypesInfo
	interp := &flow.Interp[uint8]{
		Transfer: func(s uint8, n ast.Node) uint8 {
			if d, ok := n.(*ast.DeferStmt); ok {
				n = d.Call
			}
			if n == ob.define {
				if s == live || s == undecided {
					c.reportf(ob.define.Pos(),
						"done func from %s (line %d) is overwritten before being called: the claimed slot leaks", ob.callee, ob.line)
				}
				return ob.start
			}
			if s == none || s == escaped {
				// Not yet defined / no longer ours: only the defining
				// assignment matters.
				return s
			}
			accounted := accountedIdents(info, n, ob.doneObj)
			inspectSkippingFuncLit(n, func(inner ast.Node) {
				switch x := inner.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && objOf(info, id) == ob.doneObj {
							if s == live || s == undecided {
								c.reportf(x.Pos(),
									"done func from %s (line %d) is overwritten before being called: the claimed slot leaks", ob.callee, ob.line)
							}
							s = escaped
						}
					}
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok && objOf(info, id) == ob.doneObj {
						switch s {
						case live, undecided:
							s = called
						case called:
							c.reportf(x.Pos(),
								"done func from %s (line %d) may already have been called on this path", ob.callee, ob.line)
						case nilv:
							c.reportf(x.Pos(),
								"done func from %s (line %d) is called on a path where it is nil (err != nil)", ob.callee, ob.line)
						}
					}
				case *ast.Ident:
					if objOf(info, x) == ob.doneObj && !accounted[x] {
						// Any other use — argument, return value, copy,
						// comparison to a func var — hands the obligation
						// off.
						s = escaped
					}
				}
			})
			return s
		},
		Refine: func(s uint8, cond ast.Expr, taken bool) (uint8, bool) {
			if s == none || s == escaped || s == called {
				return s, true
			}
			obj, isNeq, ok := nilCompare(info, cond)
			if !ok {
				return s, true
			}
			switch obj {
			case ob.doneObj:
				nonNil := isNeq == taken
				if nonNil {
					if s == nilv {
						return s, false
					}
					if s == undecided {
						return live, true
					}
				} else {
					if s == live {
						return s, false
					}
					if s == undecided {
						return nilv, true
					}
				}
			case ob.errObj:
				if ob.errObj == nil {
					return s, true
				}
				errNonNil := isNeq == taken
				if errNonNil {
					if s == live {
						return s, false
					}
					if s == undecided {
						return nilv, true
					}
				} else {
					if s == nilv {
						return s, false
					}
					if s == undecided {
						return live, true
					}
				}
			}
			return s, true
		},
		AtExit: func(s uint8, n ast.Node) {
			if s == live || s == undecided {
				c.reportf(n.Pos(),
					"done func from %s (line %d) is not called on this path: the node's claimed slot leaks", ob.callee, ob.line)
			}
		},
		Terminates: analysis.PathTerminates,
	}
	interp.Run(body, none)
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v:%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// --- helpers ---

// accountedIdents collects the identifier occurrences of doneObj within
// n that the Transfer switch already interprets (call operands,
// assignment targets, nil comparisons) so any other occurrence can be
// treated as an escape.
func accountedIdents(info *types.Info, n ast.Node, doneObj types.Object) map[*ast.Ident]bool {
	accounted := make(map[*ast.Ident]bool)
	inspectSkippingFuncLit(n, func(inner ast.Node) {
		switch x := inner.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && objOf(info, id) == doneObj {
				accounted[id] = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && objOf(info, id) == doneObj {
					accounted[id] = true
				}
			}
			// `_ = done` keeps or discards the value in place; it is not
			// a handoff, so the leak check must keep tracking.
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						if rid, ok := unparen(x.Rhs[i]).(*ast.Ident); ok && objOf(info, rid) == doneObj {
							accounted[rid] = true
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if id, ok := unparen(side).(*ast.Ident); ok && objOf(info, id) == doneObj {
						if isNilIdent(info, x.X) || isNilIdent(info, x.Y) {
							accounted[id] = true
						}
					}
				}
			}
		}
	})
	return accounted
}

// nilCompare matches `x == nil` / `x != nil`, returning x's object and
// whether the operator is !=.
func nilCompare(info *types.Info, cond ast.Expr) (obj types.Object, isNeq, ok bool) {
	be, isBin := unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	var varSide ast.Expr
	switch {
	case isNilIdent(info, be.Y):
		varSide = be.X
	case isNilIdent(info, be.X):
		varSide = be.Y
	default:
		return nil, false, false
	}
	id, isIdent := unparen(varSide).(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	o := objOf(info, id)
	if o == nil {
		return nil, false, false
	}
	return o, be.Op == token.NEQ, true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

func capturedByFuncLit(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok && objOf(info, id) == obj {
				found = true
			}
			return !found
		})
		return false
	})
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isNiladicFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// inspectSkippingFuncLit walks n in pre-order without descending into
// function literals.
func inspectSkippingFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(inner ast.Node) bool {
		if inner == nil {
			return false
		}
		if _, ok := inner.(*ast.FuncLit); ok && inner != n {
			return false
		}
		fn(inner)
		return true
	})
}
