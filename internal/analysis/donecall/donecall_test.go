package donecall_test

import (
	"testing"

	"lard/internal/analysis/atest"
	"lard/internal/analysis/donecall"
)

func TestDonecall(t *testing.T) {
	atest.Run(t, atest.TestData(), donecall.Analyzer, "donefix")
}
