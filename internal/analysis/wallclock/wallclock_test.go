package wallclock_test

import (
	"testing"

	"lard/internal/analysis/atest"
	"lard/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	atest.Run(t, atest.TestData(), wallclock.Analyzer,
		"lard/internal/sim", // virtual-clock package: wall-clock calls flagged
		"other/pkg",         // anything else: silent
	)
}
