// Package wallclock bans wall-clock time sources inside the
// virtual-clock packages.
//
// The simulator and the dispatcher layers run on an injected virtual
// clock (a time.Duration threaded through every Dispatch call) so that
// runs are reproducible: the same trace and seed must produce the same
// dispatch sequence, the same figures, the same test outcome. One
// stray time.Now() in internal/sim silently re-couples a "simulated"
// run to the machine's scheduler. This analyzer flags every call to a
// wall-clock function of package time — Now, Since, Until, Tick,
// NewTicker, NewTimer, After, AfterFunc, Sleep — inside the
// virtual-clock packages. Using time.Duration and time.Time as types
// remains fine; only the clock-reading calls are banned.
//
// A rare deliberate exception (a benchmark helper, a debug guard) is
// annotated at the call site:
//
//	//lard:allow wallclock — reason
package wallclock

import (
	"go/ast"
	"go/types"
	"strings"

	"lard/internal/analysis"
)

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbid wall-clock time sources in the virtual-clock packages (internal/core, internal/sim, internal/cluster, internal/experiments, internal/breaker, internal/quota, internal/metrics, pkg/lard)",
	Run:  run,
}

// virtualClockPkgs are the import-path suffixes of the packages that
// must stay on the injected clock.
var virtualClockPkgs = []string{
	"internal/core",
	"internal/sim",
	"internal/cluster",
	"internal/experiments",
	"internal/breaker",
	"internal/quota",
	"internal/metrics",
	"pkg/lard",
}

// banned are the package time functions that read or schedule off the
// wall clock.
var banned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"After":     true,
	"AfterFunc": true,
	"Sleep":     true,
}

func run(pass *analysis.Pass) error {
	if !isVirtualClockPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !banned[sel.Sel.Name] {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"time.%s in virtual-clock package %s: use the injected clock (annotate a deliberate exception with //lard:allow wallclock)",
				sel.Sel.Name, pass.Pkg.Path())
			return true
		})
	}
	return nil
}

func isVirtualClockPkg(path string) bool {
	for _, suffix := range virtualClockPkgs {
		if path == suffix || strings.HasSuffix(path, "/"+suffix) {
			return true
		}
	}
	return false
}
