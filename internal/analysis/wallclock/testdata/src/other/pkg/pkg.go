// Package pkg is not a virtual-clock package: wall-clock reads are
// legitimate here (the live front end really does live on wall time).
package pkg

import "time"

func fine() time.Time {
	time.Sleep(0)
	return time.Now()
}
