// Package sim is a wallclock fixture shaped like a virtual-clock
// package: every wall-clock call must be flagged, type-only uses of
// package time must not be, and the allow directive must suppress.
package sim

import "time"

// Event is fine: time.Duration is a type, not a clock read.
type Event struct {
	At time.Duration
}

func step(now time.Duration) time.Duration {
	start := time.Now() // want `time\.Now in virtual-clock package`
	_ = start
	elapsed := time.Since(start) // want `time\.Since in virtual-clock package`
	_ = elapsed
	time.Sleep(time.Millisecond)    // want `time\.Sleep in virtual-clock package`
	t := time.NewTimer(time.Second) // want `time\.NewTimer in virtual-clock package`
	t.Stop()
	<-time.After(0) // want `time\.After in virtual-clock package`
	go func() {
		<-time.Tick(time.Second) // want `time\.Tick in virtual-clock package`
	}()
	return now + time.Millisecond
}

func allowed() time.Time {
	//lard:allow wallclock — fixture: deliberate exception, directive on the line above
	return time.Now()
}

func allowedSameLine() time.Time {
	return time.Now() //lard:allow wallclock — fixture: same-line directive
}

// virtualOnly shows the clean pattern: durations in, durations out.
func virtualOnly(now, dt time.Duration) time.Duration { return now + dt }
