// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to host the
// project's own static checks (lockheld, donecall, wallclock,
// relayclass) without pulling x/tools into the module. The shapes —
// Analyzer, Pass, Diagnostic — deliberately mirror the upstream API so
// the analyzers could be ported to a real multichecker by changing
// imports, and so anyone who has written a go/analysis pass can read
// these.
//
// The framework loads packages through the go command itself
// (`go list -export`), type-checks target packages from source with the
// standard library's gc importer, and runs each analyzer over one
// package at a time. Facts (cross-package analysis results) are not
// supported; every analyzer here is package-local by design.
//
// Suppression: a comment of the form
//
//	//lard:allow <analyzer>[,<analyzer>...] [— reason]
//
// on the flagged line or the line directly above it suppresses that
// analyzer's diagnostics for the line. Deliberate exceptions should
// carry a reason; the directive is grep-able either way.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lard:allow
	// directives. Lower-case, no spaces.
	Name string

	// Doc is the analyzer's one-paragraph description; the first line is
	// used as a summary.
	Doc string

	// Run executes the check over one package and reports findings
	// through pass.Report / pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// PkgPath and Dir identify the package on disk, for analyzers that
	// shell out to the go tool over it (noalloc drives the compiler's
	// escape analysis). Dir may be empty under go vet's unitchecker,
	// whose units are file lists.
	PkgPath string
	Dir     string

	// report receives every non-suppressed diagnostic.
	report func(Diagnostic)

	// allow maps "file:line" to the set of analyzer names allowed there,
	// built once per package from //lard:allow directives.
	allow map[string]map[string]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf reports a finding at pos unless a //lard:allow directive
// covers it. Findings in _test.go files are dropped wholesale: tests
// deliberately leak done funcs, sleep on the wall clock, and poke
// guarded state to prove the shipped code handles it — the contracts
// these analyzers enforce bind the shipped code only. (Standalone mode
// never loads test files; this matters under `go vet -vettool`, whose
// compilation units include them.)
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	if p.allowedAt(position) {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowedAt consults //lard:allow directives: one on the flagged line
// itself, or on the line directly above it, suppresses the diagnostic.
func (p *Pass) allowedAt(pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := p.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]; names != nil {
			if names[p.Analyzer.Name] || names["all"] {
				return true
			}
		}
	}
	return false
}

// buildAllow scans the package's comments for //lard:allow directives.
func buildAllow(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	allow := make(map[string]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lard:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lard:allow"))
				// Everything after the first whitespace-delimited field is
				// the human reason.
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				set := allow[key]
				if set == nil {
					set = make(map[string]bool)
					allow[key] = set
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						set[name] = true
					}
				}
			}
		}
	}
	return allow
}

// RunAnalyzers applies each analyzer to the package and returns the
// diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := buildAllow(pkg.Fset, pkg.Syntax)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.PkgPath,
			Dir:       pkg.Dir,
			allow:     allow,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return diags, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
