// Package poolfix is the poolpair fixture: acquire/release shapes over
// pooled readers, a mock back-end pool, and dialed conns — leaks on
// error arms, double releases, releases of never-acquired resources,
// ownership transfers that must NOT be flagged, and cross-function
// releases proven through interprocedural summaries.
package poolfix

import (
	"bufio"
	"net"

	"lard/internal/httprelay"
)

// --- mocks mirroring internal/frontend's shapes ---

type backendPool struct{}

func (p *backendPool) get(node int) (net.Conn, *bufio.Reader, bool) { return nil, nil, false }

func (p *backendPool) put(node int, c net.Conn, br *bufio.Reader) {}

func dialBackend(node int) (net.Conn, error) { return nil, nil }

func ping(c net.Conn) error { return nil }

func flaky() bool { return false }

// --- leaks ---

// leakOnError forgets the reader on the error arm.
func leakOnError(c net.Conn) error {
	br := httprelay.GetReader(c)
	if err := ping(c); err != nil {
		return err // want `pooled reader br \(line \d+\) is not released on this path`
	}
	httprelay.PutReader(br)
	return nil
}

// dialLeak loses the dialed conn on the second early return.
func dialLeak() error {
	c, err := dialBackend(0)
	if err != nil {
		return err
	}
	if flaky() {
		return nil // want `dialed conn c \(line \d+\) is not released`
	}
	return c.Close()
}

// discarded drops acquire results on the floor.
func discarded(c net.Conn) {
	httprelay.GetReader(c)     // want `pooled reader from httprelay.GetReader is discarded`
	_ = httprelay.GetReader(c) // want `is discarded \(assigned to _\)`
}

// overwritten reuses the variable while the first reader is live.
func overwritten(c net.Conn) {
	br := httprelay.GetReader(c)
	br = httprelay.GetReader(c) // want `pooled reader br \(line \d+\) is overwritten before being released`
	httprelay.PutReader(br)
}

// --- double release and release-of-unacquired ---

// doubleRelease recycles the reader twice.
func doubleRelease(c net.Conn) {
	br := httprelay.GetReader(c)
	httprelay.PutReader(br)
	httprelay.PutReader(br) // want `pooled reader br \(line \d+\) may already have been released`
}

// releaseUnacquired returns the pool pair on the arm where get said no.
func releaseUnacquired(p *backendPool) {
	c, br, ok := p.get(0)
	if !ok {
		p.put(0, c, br) // want `pooled transport c \(line \d+\) is released on a path where it was never acquired` `pooled transport br \(line \d+\) is released on a path where it was never acquired`
		return
	}
	p.put(0, c, br)
}

// --- correct shapes: no findings ---

// okGated releases both results exactly when the acquire succeeded.
func okGated(p *backendPool) {
	if c, br, ok := p.get(1); ok {
		p.put(1, c, br)
	}
}

// deferredRelease is the canonical defer shape.
func deferredRelease(c net.Conn) error {
	br := httprelay.GetReader(c)
	defer httprelay.PutReader(br)
	return ping(c)
}

// errGatedClose releases via the resource's own Close method.
func errGatedClose() error {
	c, err := dialBackend(2)
	if err != nil {
		return err
	}
	defer c.Close()
	return ping(c)
}

// --- ownership transfer: adoption must not be flagged ---

type owner struct {
	c  net.Conn
	br *bufio.Reader
}

// adoptedAtBirth builds the owner around the acquire itself — the
// rehandoff.go backendConn shape. No finding.
func adoptedAtBirth(c net.Conn) *owner {
	return &owner{c: c, br: httprelay.GetReader(c)}
}

// handedOff stores a tracked reader into a struct: the owner carries
// the obligation from there. No finding.
func handedOff(c net.Conn) *owner {
	br := httprelay.GetReader(c)
	return &owner{c: c, br: br}
}

// capturedByClosure gives the reader to the closure. No finding here.
func capturedByClosure(c net.Conn) func() {
	br := httprelay.GetReader(c)
	return func() { httprelay.PutReader(br) }
}

// --- cross-function release via interprocedural summaries ---

// recycle always releases its argument (summary: releases-always).
func recycle(br *bufio.Reader) {
	httprelay.PutReader(br)
}

// releaseViaHelper is clean: recycle's summary discharges the
// obligation.
func releaseViaHelper(c net.Conn) {
	br := httprelay.GetReader(c)
	recycle(br)
}

// peek only reads its argument (summary: borrows).
func peek(br *bufio.Reader) {
	_, _ = br.Peek(1)
}

// borrowIsNotARelease leaks: a borrowing helper leaves the obligation
// with the caller.
func borrowIsNotARelease(c net.Conn) { // want `pooled reader br \(line \d+\) is not released`
	br := httprelay.GetReader(c)
	peek(br)
}

// maybeRecycle releases on some paths only (summary: releases-some).
func maybeRecycle(br *bufio.Reader, drop bool) {
	if drop {
		httprelay.PutReader(br)
	}
}

// halfReleased proves nothing either way: the conservative summary
// stops tracking, so neither a leak nor a double release is reported.
func halfReleased(c net.Conn, drop bool) {
	br := httprelay.GetReader(c)
	maybeRecycle(br, drop)
}

// --- acquire through a wrapper (summary: returns-acquired) ---

// fresh acquires on every return path.
func fresh(c net.Conn) *bufio.Reader {
	return httprelay.GetReader(c)
}

// wrapperLeak is tracked through fresh's summary.
func wrapperLeak(c net.Conn) { // want `resource acquired via fresh br \(line \d+\) is not released`
	br := fresh(c)
	_ = br.Buffered()
}

// wrapperReleased is the clean shape.
func wrapperReleased(c net.Conn) {
	br := fresh(c)
	httprelay.PutReader(br)
}
