package poolpair_test

import (
	"testing"

	"lard/internal/analysis/atest"
	"lard/internal/analysis/poolpair"
)

func TestPoolpair(t *testing.T) {
	atest.Run(t, atest.TestData(), poolpair.Analyzer, "poolfix")
}
