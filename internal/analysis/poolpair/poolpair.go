// Package poolpair proves the exactly-once release contract of the
// relay stack's paired resources:
//
//   - pooled readers:      httprelay.GetReader → httprelay.PutReader
//   - pooled transports:   backendPool.get     → backendPool.put
//     (or Close + PutReader on the parts, via discard)
//   - dialed transports:   dialBackend         → Close
//
// PR 7 made the hot path allocation-free by pooling these resources;
// a path that forgets the release quietly reintroduces the per-request
// allocation (and, for conns, leaks a file descriptor), while a double
// release poisons the pool with a reader two goroutines share. In the
// style of donecall, the analyzer interprets every path through a
// function tracking each acquired resource and reports:
//
//   - the acquire result discarded (bare call statement, or assigned
//     to _);
//   - a path that reaches an exit with the resource live (leaked);
//   - a path that releases twice;
//   - a release on a path where the acquire's ok was false or err was
//     non-nil (release of a resource never acquired);
//   - the resource overwritten while live.
//
// Unlike donecall, a call is not automatically an escape: the analyzer
// consults flow.Summarize's bottom-up interprocedural summaries, so a
// helper that always releases its parameter discharges the caller's
// obligation, a helper that only reads it (httprelay's relay functions,
// handoff.ReadHeader, any method on the resource except Close) leaves
// the obligation with the caller, and a helper that stores it adopts
// it. Ownership transfer at birth is recognized structurally: an
// acquire nested in a composite literal or call argument (the
// backendConn adoption in rehandoff.go) is never tracked, and a
// resource captured by a closure is the closure's.
//
// Escape hatch: //lard:allow poolpair — reason, on or above the line.
package poolpair

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lard/internal/analysis"
	"lard/internal/analysis/flow"
)

// Analyzer is the poolpair pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolpair",
	Doc:  "check that pooled readers, pooled transports, and dialed conns are released exactly once on every path",
	Run:  run,
}

// pairSpec describes one acquire/release pair.
type pairSpec struct {
	what    string // noun for diagnostics, e.g. "pooled reader"
	release string // how the resource is released, for diagnostics
	results []int  // result indices that carry an obligation
	okIdx   int    // bool result gating the acquisition, -1 if none
	errIdx  int    // error result gating the acquisition, -1 if none
}

// acquireSpec matches the configured acquire entry points.
func acquireSpec(info *types.Info, call *ast.CallExpr) *pairSpec {
	fn := flow.CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	switch {
	case fn.Name() == "GetReader" && pkgSuffix(fn, "internal/httprelay"):
		return &pairSpec{what: "pooled reader", release: "httprelay.PutReader",
			results: []int{0}, okIdx: -1, errIdx: -1}
	case fn.Name() == "get" && recvNamed(fn) == "backendPool":
		return &pairSpec{what: "pooled transport", release: "pool.put (or Close + PutReader)",
			results: []int{0, 1}, okIdx: 2, errIdx: -1}
	case fn.Name() == "dialBackend":
		return &pairSpec{what: "dialed conn", release: "Close",
			results: []int{0}, okIdx: -1, errIdx: 1}
	}
	return nil
}

// releaseArgs matches the configured release entry points, returning
// the operand positions released (-1 = receiver).
func releaseArgs(info *types.Info, call *ast.CallExpr) []int {
	fn := flow.CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	switch {
	case fn.Name() == "PutReader" && pkgSuffix(fn, "internal/httprelay"):
		return []int{0}
	case fn.Name() == "put" && recvNamed(fn) == "backendPool":
		return []int{1, 2}
	case fn.Name() == "Close" && len(call.Args) == 0 && isMethod(fn):
		return []int{-1}
	}
	return nil
}

// borrowedArg reports externally known callees that read a resource
// argument without retaining or releasing it.
func borrowedArg(info *types.Info, call *ast.CallExpr, pos int) bool {
	fn := flow.CalleeFunc(info, call)
	if fn == nil || pos < 0 {
		return false
	}
	if pkgSuffix(fn, "internal/httprelay") {
		// httprelay's head readers and relay functions read through a
		// caller-owned reader and never retain it; GetReader/PutReader
		// are the package's only ownership-moving entry points and are
		// matched above.
		return fn.Name() != "GetReader" && fn.Name() != "PutReader"
	}
	if pkgSuffix(fn, "internal/handoff") {
		// Header parsing and the send path read through their reader /
		// write to their conn without retaining either.
		switch fn.Name() {
		case "ReadHeader", "Send":
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	cfg := &flow.SummaryConfig{
		Info:        info,
		ReleaseArgs: func(call *ast.CallExpr) []int { return releaseArgs(info, call) },
		AcquireResults: func(call *ast.CallExpr) []int {
			if sp := acquireSpec(info, call); sp != nil {
				return sp.results
			}
			return nil
		},
		Borrows:    func(call *ast.CallExpr, pos int) bool { return borrowedArg(info, call, pos) },
		Terminates: analysis.PathTerminates,
	}
	c := &checker{
		pass: pass,
		cfg:  cfg,
		sums: flow.Summarize(pass.Files, cfg),
		seen: make(map[string]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					c.checkFunc(fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	cfg  *flow.SummaryConfig
	sums map[*types.Func]*flow.Summary
	seen map[string]bool
}

// Path states of one obligation.
const (
	none      uint8 = iota // before the defining assignment
	undecided              // acquired; ok/err not yet examined
	live                   // held; must be released exactly once
	nilv                   // never acquired (ok false / err non-nil)
	released               // released once
	escaped                // ownership transferred; stop tracking
)

// obligation is one tracked acquire site.
type obligation struct {
	define *ast.AssignStmt
	spec   *pairSpec
	name   string // variable name, for diagnostics
	line   int
	obj    types.Object
	okObj  types.Object
	errObj types.Object
	start  uint8
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	for _, ob := range c.collect(body) {
		c.interpret(body, ob)
	}
}

// collect finds acquire sites in one function body, reporting
// immediately-wrong shapes (discarded results) and returning the
// obligations worth path-tracking.
func (c *checker) collect(body *ast.BlockStmt) []*obligation {
	info := c.pass.TypesInfo
	var obs []*obligation
	inspectSkippingFuncLit(body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if sp := c.anyAcquireSpec(call); sp != nil {
					c.reportf(call.Pos(),
						"%s from %s is discarded: it is never released (release with %s)",
						sp.what, calleeName(call), sp.release)
				}
			}
		case *ast.AssignStmt:
			if len(st.Rhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok {
				return
			}
			sp := c.anyAcquireSpec(call)
			if sp == nil {
				return
			}
			var okObj, errObj types.Object
			if sp.okIdx >= 0 && sp.okIdx < len(st.Lhs) {
				if id, ok := st.Lhs[sp.okIdx].(*ast.Ident); ok && id.Name != "_" {
					okObj = objOf(info, id)
				}
			}
			if sp.errIdx >= 0 && sp.errIdx < len(st.Lhs) {
				if id, ok := st.Lhs[sp.errIdx].(*ast.Ident); ok && id.Name != "_" {
					errObj = objOf(info, id)
				}
			}
			for _, ri := range sp.results {
				if ri >= len(st.Lhs) {
					continue
				}
				id, isIdent := st.Lhs[ri].(*ast.Ident)
				if !isIdent {
					// Stored straight into a field or element: the owner
					// of that location carries the obligation now.
					continue
				}
				if id.Name == "_" {
					c.reportf(call.Pos(),
						"%s from %s is discarded (assigned to _): it is never released (release with %s)",
						sp.what, calleeName(call), sp.release)
					continue
				}
				// Only a freshly defined local is tracked: an assignment
				// to an outer variable (a closure writing through its
				// capture) is owned elsewhere.
				obj := info.Defs[id]
				if obj == nil {
					continue
				}
				if flow.CapturedByFuncLit(info, body, obj) {
					// The resource's lifetime is the closure's.
					continue
				}
				start := live
				if okObj != nil || errObj != nil {
					start = undecided
				}
				obs = append(obs, &obligation{
					define: st,
					spec:   sp,
					name:   id.Name,
					line:   c.pass.Fset.Position(call.Pos()).Line,
					obj:    obj,
					okObj:  okObj,
					errObj: errObj,
					start:  start,
				})
			}
		}
	})
	return obs
}

// anyAcquireSpec matches both the configured acquire entry points and
// package-local wrappers whose summary says a result always carries a
// fresh obligation (flow.RetAlways) — the "returns an acquired
// resource" half of the interprocedural summaries.
func (c *checker) anyAcquireSpec(call *ast.CallExpr) *pairSpec {
	info := c.pass.TypesInfo
	if sp := acquireSpec(info, call); sp != nil {
		return sp
	}
	fn := flow.CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	sum := c.sums[fn]
	if sum == nil {
		return nil
	}
	var results []int
	for j, r := range sum.Results {
		if r == flow.RetAlways {
			results = append(results, j)
		}
	}
	if len(results) == 0 {
		return nil
	}
	// RetAlways means acquired on every return path, so no ok/err
	// gating applies: the caller must always release.
	return &pairSpec{
		what:    fmt.Sprintf("resource acquired via %s", fn.Name()),
		release: "its paired release func",
		results: results, okIdx: -1, errIdx: -1,
	}
}

// interpret runs the path analysis for one obligation.
func (c *checker) interpret(body *ast.BlockStmt, ob *obligation) {
	info := c.pass.TypesInfo
	sp := ob.spec
	interp := &flow.Interp[uint8]{
		Transfer: func(s uint8, n ast.Node) uint8 {
			if d, ok := n.(*ast.DeferStmt); ok {
				// A deferred release runs at exit; treating it at its
				// lexical position is the same one-release-per-path fact.
				n = d.Call
			}
			if g, ok := n.(*ast.GoStmt); ok {
				if s != none && s != escaped && usesObj(info, g.Call, ob.obj) {
					return escaped
				}
				return s
			}
			if n == ob.define {
				if s == live || s == undecided {
					c.reportf(ob.define.Pos(),
						"%s %s (line %d) is overwritten before being released: it leaks",
						sp.what, ob.name, ob.line)
				}
				return ob.start
			}
			if s == none || s == escaped {
				return s
			}
			accounted := accountedIdents(info, n, ob.obj)
			inspectSkippingFuncLit(n, func(inner ast.Node) {
				if s == escaped {
					return
				}
				switch x := inner.(type) {
				case *ast.AssignStmt:
					for _, lhs := range x.Lhs {
						if id, ok := lhs.(*ast.Ident); ok && objOf(info, id) == ob.obj {
							if s == live || s == undecided {
								c.reportf(x.Pos(),
									"%s %s (line %d) is overwritten before being released: it leaks",
									sp.what, ob.name, ob.line)
							}
							s = escaped
						}
					}
				case *ast.CallExpr:
					ps := flow.CallPositions(info, x, ob.obj)
					if len(ps) == 0 {
						return
					}
					switch flow.ClassifyCall(c.cfg, c.sums, x, ps) {
					case flow.EffReleasesAlways:
						switch s {
						case live, undecided:
							s = released
						case released:
							c.reportf(x.Pos(),
								"%s %s (line %d) may already have been released on this path",
								sp.what, ob.name, ob.line)
						case nilv:
							c.reportf(x.Pos(),
								"%s %s (line %d) is released on a path where it was never acquired",
								sp.what, ob.name, ob.line)
						}
					case flow.EffReleasesSome:
						// Half-released by the callee: nothing provable
						// either way from here.
						s = escaped
					case flow.EffAdopts:
						s = escaped
					}
				case *ast.Ident:
					if objOf(info, x) == ob.obj && !accounted[x] {
						// Returned, stored, address taken, passed inside a
						// composite: ownership moves.
						s = escaped
					}
				}
			})
			return s
		},
		Refine: func(s uint8, cond ast.Expr, taken bool) (uint8, bool) {
			if s == none || s == escaped || s == released {
				return s, true
			}
			if obj, isNeq, ok := nilCompare(info, cond); ok {
				switch obj {
				case ob.obj:
					nonNil := isNeq == taken
					if nonNil {
						if s == nilv {
							return s, false
						}
						if s == undecided {
							return live, true
						}
					} else {
						if s == live {
							return s, false
						}
						if s == undecided {
							return nilv, true
						}
					}
				case ob.errObj:
					if ob.errObj == nil {
						return s, true
					}
					errNonNil := isNeq == taken
					if errNonNil {
						if s == live {
							return s, false
						}
						if s == undecided {
							return nilv, true
						}
					} else {
						if s == nilv {
							return s, false
						}
						if s == undecided {
							return live, true
						}
					}
				}
				return s, true
			}
			if ob.okObj != nil {
				if obj, negated, ok := boolCond(info, cond); ok && obj == ob.okObj {
					acquired := negated != taken // `ok` taken, or `!ok` not taken
					if acquired {
						if s == nilv {
							return s, false
						}
						if s == undecided {
							return live, true
						}
					} else {
						if s == live {
							return s, false
						}
						if s == undecided {
							return nilv, true
						}
					}
				}
			}
			return s, true
		},
		AtExit: func(s uint8, n ast.Node) {
			if s == live || s == undecided {
				c.reportf(n.Pos(),
					"%s %s (line %d) is not released on this path: release with %s",
					sp.what, ob.name, ob.line, sp.release)
			}
		},
		Terminates: analysis.PathTerminates,
	}
	interp.Run(body, none)
}

func (c *checker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%v:%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Reportf(pos, "%s", msg)
}

// --- helpers ---

func pkgSuffix(fn *types.Func, suffix string) bool {
	if fn.Pkg() == nil {
		return false
	}
	p := fn.Pkg().Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

func recvNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func isMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "acquire"
}

// boolCond matches a bare boolean condition `ok` or `!ok`, returning
// the variable's object and whether it is negated.
func boolCond(info *types.Info, cond ast.Expr) (obj types.Object, negated, ok bool) {
	e := unparen(cond)
	if ue, isNot := e.(*ast.UnaryExpr); isNot && ue.Op == token.NOT {
		negated = true
		e = unparen(ue.X)
	}
	id, isIdent := e.(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	o := objOf(info, id)
	if o == nil {
		return nil, false, false
	}
	return o, negated, true
}

// accountedIdents collects the occurrences of obj within n that the
// Transfer switch already interprets (direct call operands, assignment
// targets, `_ = obj`, nil comparisons) so any other occurrence can be
// treated as an escape.
func accountedIdents(info *types.Info, n ast.Node, obj types.Object) map[*ast.Ident]bool {
	accounted := make(map[*ast.Ident]bool)
	inspectSkippingFuncLit(n, func(inner ast.Node) {
		switch x := inner.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := unparen(sel.X).(*ast.Ident); ok && objOf(info, id) == obj {
					accounted[id] = true
				}
			}
			for _, a := range x.Args {
				if id, ok := unparen(a).(*ast.Ident); ok && objOf(info, id) == obj {
					accounted[id] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && objOf(info, id) == obj {
					accounted[id] = true
				}
			}
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						if rid, ok := unparen(x.Rhs[i]).(*ast.Ident); ok && objOf(info, rid) == obj {
							accounted[rid] = true
						}
					}
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.EQL || x.Op == token.NEQ {
				if isNilIdent(info, x.X) || isNilIdent(info, x.Y) {
					for _, side := range []ast.Expr{x.X, x.Y} {
						if id, ok := unparen(side).(*ast.Ident); ok && objOf(info, id) == obj {
							accounted[id] = true
						}
					}
				}
			}
		}
	})
	return accounted
}

// nilCompare matches `x == nil` / `x != nil`, returning x's object and
// whether the operator is !=.
func nilCompare(info *types.Info, cond ast.Expr) (obj types.Object, isNeq, ok bool) {
	be, isBin := unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	var varSide ast.Expr
	switch {
	case isNilIdent(info, be.Y):
		varSide = be.X
	case isNilIdent(info, be.X):
		varSide = be.Y
	default:
		return nil, false, false
	}
	id, isIdent := unparen(varSide).(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	o := objOf(info, id)
	if o == nil {
		return nil, false, false
	}
	return o, be.Op == token.NEQ, true
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(inner ast.Node) bool {
		if id, ok := inner.(*ast.Ident); ok && objOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// inspectSkippingFuncLit walks n in pre-order without descending into
// function literals.
func inspectSkippingFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(inner ast.Node) bool {
		if inner == nil {
			return false
		}
		if _, ok := inner.(*ast.FuncLit); ok && inner != n {
			return false
		}
		fn(inner)
		return true
	})
}
