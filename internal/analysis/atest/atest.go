// Package atest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest
// closely enough that the fixtures read the same way:
//
//	x := sh.inFlight // want `accessed without holding`
//
// A want comment holds one or more quoted regular expressions (double
// quotes or backquotes); each must be matched, in order of appearance,
// by a diagnostic the analyzer reports on that line. Diagnostics with
// no matching want, and wants with no matching diagnostic, fail the
// test.
//
// Fixture packages may import real module packages (the import is
// resolved through the repository's own build, via `go list -export`),
// and their import path is their directory path relative to
// testdata/src — so a fixture that must look like a virtual-clock
// package lives at testdata/src/lard/internal/sim.
package atest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"lard/internal/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	dir, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return dir
}

// Run loads each fixture package (a path relative to testdata/src),
// applies the analyzer, and checks diagnostics against // want
// comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixturePkgs ...string) {
	t.Helper()
	exports, err := moduleExports()
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	for _, rel := range fixturePkgs {
		rel := rel
		t.Run(strings.ReplaceAll(rel, "/", "_"), func(t *testing.T) {
			t.Helper()
			pkg, err := loadFixture(filepath.Join(testdata, "src", rel), rel, exports)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			check(t, pkg, diags)
		})
	}
}

// moduleExports builds the import-path → export-data map for the whole
// module and its dependencies (stdlib included), so fixtures can import
// real packages.
func moduleExports() (map[string]string, error) {
	gomod, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return nil, fmt.Errorf("go env GOMOD: %v", err)
	}
	moduleDir := filepath.Dir(strings.TrimSpace(string(gomod)))
	cmd := exec.Command("go", "list", "-e", "-export", "-deps",
		"-f", "{{if .Export}}{{.ImportPath}}\t{{.Export}}{{end}}",
		"./...", "std")
	cmd.Dir = moduleDir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list -export: %v", err)
	}
	exports := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		if path, file, ok := strings.Cut(line, "\t"); ok {
			exports[path] = file
		}
	}
	return exports, nil
}

func loadFixture(dir, importPath string, exports map[string]string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture %s: %w", importPath, err)
	}
	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %w", e.Name(), err)
		}
		syntax = append(syntax, f)
	}
	if len(syntax) == 0 {
		return nil, fmt.Errorf("fixture %s: no Go files in %s", importPath, dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: analysis.ExportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %w", importPath, err)
	}
	return &analysis.Package{
		PkgPath:   importPath,
		Dir:       dir,
		Fset:      fset,
		Syntax:    syntax,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// wantRx extracts the quoted regexps from a // want comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func check(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want ")
				if !strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ") {
					continue
				}
				spec := text[i+len("want "):]
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(spec, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, pattern: rx})
				}
			}
		}
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}
