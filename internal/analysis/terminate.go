package analysis

import "go/ast"

// terminatingNames are callee names that never return. Name-based on
// purpose: at statement position, a call spelled panic / os.Exit /
// log.Fatalf / t.FailNow that does return would be a worse bug than a
// missed diagnostic.
var terminatingNames = map[string]bool{
	"panic":   true,
	"Exit":    true,
	"Fatal":   true,
	"Fatalf":  true,
	"Fatalln": true,
	"Goexit":  true,
	"FailNow": true,
	"SkipNow": true,
}

// PathTerminates reports whether stmt is a call statement that never
// returns, ending the control-flow path. It is the Terminates hook
// shared by the flow-based analyzers.
func PathTerminates(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return terminatingNames[fun.Name]
	case *ast.SelectorExpr:
		return terminatingNames[fun.Sel.Name]
	}
	return false
}
