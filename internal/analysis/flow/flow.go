// Package flow runs a structured abstract interpretation over one Go
// function body. It is the control-flow engine behind the lockheld and
// donecall analyzers: instead of building an explicit CFG (the stdlib
// has no go/cfg), it walks the AST's structure — if/else, for, range,
// switch, select, labeled break/continue — propagating small
// caller-defined path states and merging them as sets, which keeps
// disjunctive facts ("the mutex is held on this path but not that one")
// exact without inventing a lattice join.
//
// The interpreter is deliberately modest:
//
//   - States must be comparable and small; sets are deduplicated maps.
//   - Loops run to a fixpoint by accumulating entry states, capped at
//     maxLoopIterations; analyses terminate because their state spaces
//     are finite.
//   - goto aborts the function's analysis (reports already made stand;
//     unexplored paths are skipped). The repository does not use goto.
//   - Function literals are NOT entered: a closure body executes at some
//     other time, so it must be analyzed as its own function by the
//     caller. Transfer receives leaf nodes whole and must skip nested
//     *ast.FuncLit subtrees itself.
package flow

import "go/ast"

const (
	maxLoopIterations = 64
	maxStates         = 256
)

// Interp interprets one function body for one analysis client.
type Interp[S comparable] struct {
	// Transfer folds one leaf node (a simple statement, or an expression
	// such as an if condition) into a path state. It is where the client
	// observes calls, assignments, and accesses, and may report
	// diagnostics as a side effect.
	Transfer func(s S, n ast.Node) S

	// Refine splits a path state on a branch condition: it returns the
	// state refined under cond being taken (true arm) or not (false
	// arm), and whether that arm is feasible. A nil Refine leaves states
	// unchanged and both arms feasible.
	Refine func(s S, cond ast.Expr, taken bool) (S, bool)

	// AtExit is invoked once per path state that reaches a return
	// statement (n is the *ast.ReturnStmt) or falls off the end of the
	// body (n is the *ast.BlockStmt body itself).
	AtExit func(s S, n ast.Node)

	// Terminates reports that a leaf statement never returns (panic,
	// os.Exit, log.Fatal): the path ends there without reaching AtExit.
	// Nil means no statement terminates.
	Terminates func(n ast.Stmt) bool
}

type set[S comparable] map[S]struct{}

func (ss set[S]) add(s S) bool {
	if _, ok := ss[s]; ok {
		return false
	}
	if len(ss) >= maxStates {
		return false
	}
	ss[s] = struct{}{}
	return true
}

func (ss set[S]) union(other set[S]) bool {
	grew := false
	for s := range other {
		if ss.add(s) {
			grew = true
		}
	}
	return grew
}

func (ss set[S]) clone() set[S] {
	out := make(set[S], len(ss))
	for s := range ss {
		out[s] = struct{}{}
	}
	return out
}

// run is the per-function interpreter state.
type run[S comparable] struct {
	in      *Interp[S]
	aborted bool

	// breaks and continues collect states escaping to a labeled (or
	// innermost, label "") loop/switch/select. Stacked by frames.
	frames []*frame[S]
}

type frame[S comparable] struct {
	labels    []string // "" plus any explicit labels on the statement
	isLoop    bool     // continue targets only loops
	breaks    set[S]
	continues set[S]
	fallth    set[S]
}

// Run interprets body starting from the single initial state. It returns
// false if the analysis was aborted (goto); diagnostics reported before
// the abort stand.
func (in *Interp[S]) Run(body *ast.BlockStmt, initial S) bool {
	r := &run[S]{in: in}
	states := set[S]{}
	states.add(initial)
	out := r.execStmt(body, states, nil)
	for s := range out {
		if in.AtExit != nil {
			in.AtExit(s, body)
		}
	}
	return !r.aborted
}

func (r *run[S]) transfer(states set[S], n ast.Node) set[S] {
	if n == nil || r.in.Transfer == nil {
		return states
	}
	out := set[S]{}
	for s := range states {
		out.add(r.in.Transfer(s, n))
	}
	return out
}

func (r *run[S]) refine(states set[S], cond ast.Expr, taken bool) set[S] {
	out := set[S]{}
	for s := range states {
		if r.in.Refine == nil {
			out.add(s)
			continue
		}
		rs, feasible := r.in.Refine(s, cond, taken)
		if feasible {
			out.add(rs)
		}
	}
	return out
}

// findFrame locates the break/continue target for a label.
func (r *run[S]) findFrame(label string, needLoop bool) *frame[S] {
	for i := len(r.frames) - 1; i >= 0; i-- {
		f := r.frames[i]
		if needLoop && !f.isLoop {
			continue
		}
		for _, l := range f.labels {
			if l == label {
				return f
			}
		}
	}
	return nil
}

// execStmt interprets one statement from the given input states and
// returns the states that flow past it. labels carries any label names
// attached directly to this statement (for labeled loops).
func (r *run[S]) execStmt(stmt ast.Stmt, states set[S], labels []string) set[S] {
	if r.aborted || len(states) == 0 {
		return states
	}
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		for _, s := range st.List {
			states = r.execStmt(s, states, nil)
			if r.aborted {
				return set[S]{}
			}
		}
		return states

	case *ast.LabeledStmt:
		return r.execStmt(st.Stmt, states, append(labels, st.Label.Name))

	case *ast.ReturnStmt:
		states = r.transfer(states, st)
		for s := range states {
			if r.in.AtExit != nil {
				r.in.AtExit(s, st)
			}
		}
		return set[S]{}

	case *ast.BranchStmt:
		switch st.Tok.String() {
		case "break":
			if f := r.findFrame(labelOf(st), false); f != nil {
				f.breaks.union(states)
			}
			return set[S]{}
		case "continue":
			if f := r.findFrame(labelOf(st), true); f != nil {
				f.continues.union(states)
			}
			return set[S]{}
		case "fallthrough":
			if len(r.frames) > 0 {
				r.frames[len(r.frames)-1].fallth.union(states)
			}
			return set[S]{}
		default: // goto
			r.aborted = true
			return set[S]{}
		}

	case *ast.IfStmt:
		if st.Init != nil {
			states = r.execStmt(st.Init, states, nil)
		}
		states = r.transfer(states, st.Cond)
		thenIn := r.refine(states, st.Cond, true)
		elseIn := r.refine(states, st.Cond, false)
		out := r.execStmt(st.Body, thenIn, nil)
		if st.Else != nil {
			out = out.clone()
			out.union(r.execStmt(st.Else, elseIn, nil))
		} else {
			out = out.clone()
			out.union(elseIn)
		}
		return out

	case *ast.ForStmt:
		if st.Init != nil {
			states = r.execStmt(st.Init, states, nil)
		}
		f := &frame[S]{labels: append([]string{""}, labels...), isLoop: true,
			breaks: set[S]{}, continues: set[S]{}, fallth: set[S]{}}
		r.frames = append(r.frames, f)
		exit := set[S]{}
		entry := states.clone()
		for i := 0; i < maxLoopIterations; i++ {
			condStates := entry.clone()
			if st.Cond != nil {
				condStates = r.transfer(condStates, st.Cond)
				exit.union(r.refine(condStates, st.Cond, false))
				condStates = r.refine(condStates, st.Cond, true)
			}
			bodyOut := r.execStmt(st.Body, condStates, nil)
			if r.aborted {
				break
			}
			next := bodyOut.clone()
			next.union(f.continues)
			f.continues = set[S]{}
			if st.Post != nil {
				next = r.execStmt(st.Post, next, nil)
			}
			if !entry.union(next) {
				break
			}
		}
		// With no condition (for{}) only break reaches exit.
		r.frames = r.frames[:len(r.frames)-1]
		exit.union(f.breaks)
		return exit

	case *ast.RangeStmt:
		states = r.transfer(states, st.X)
		if st.Key != nil {
			states = r.transfer(states, st.Key)
		}
		if st.Value != nil {
			states = r.transfer(states, st.Value)
		}
		f := &frame[S]{labels: append([]string{""}, labels...), isLoop: true,
			breaks: set[S]{}, continues: set[S]{}, fallth: set[S]{}}
		r.frames = append(r.frames, f)
		exit := states.clone() // zero iterations
		entry := states.clone()
		for i := 0; i < maxLoopIterations; i++ {
			bodyOut := r.execStmt(st.Body, entry.clone(), nil)
			if r.aborted {
				break
			}
			next := bodyOut.clone()
			next.union(f.continues)
			f.continues = set[S]{}
			exit.union(next) // loop may end after any iteration
			if !entry.union(next) {
				break
			}
		}
		r.frames = r.frames[:len(r.frames)-1]
		exit.union(f.breaks)
		return exit

	case *ast.SwitchStmt:
		if st.Init != nil {
			states = r.execStmt(st.Init, states, nil)
		}
		if st.Tag != nil {
			states = r.transfer(states, st.Tag)
		}
		return r.execCases(st.Body, states, labels, func(cc *ast.CaseClause) {
			for _, e := range cc.List {
				// Case expressions evaluate, but refine nothing here.
				_ = e
			}
		})

	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			states = r.execStmt(st.Init, states, nil)
		}
		states = r.transfer(states, st.Assign)
		return r.execCases(st.Body, states, labels, nil)

	case *ast.SelectStmt:
		f := &frame[S]{labels: append([]string{""}, labels...),
			breaks: set[S]{}, continues: set[S]{}, fallth: set[S]{}}
		r.frames = append(r.frames, f)
		out := set[S]{}
		any := false
		for _, cl := range st.Body.List {
			comm := cl.(*ast.CommClause)
			any = true
			in := states.clone()
			if comm.Comm != nil {
				in = r.execStmt(comm.Comm, in, nil)
			}
			for _, s := range comm.Body {
				in = r.execStmt(s, in, nil)
				if r.aborted {
					break
				}
			}
			out.union(in)
		}
		r.frames = r.frames[:len(r.frames)-1]
		out.union(f.breaks)
		if !any {
			return set[S]{} // select{} blocks forever
		}
		return out

	default:
		// Leaf statements: assignments, expression statements, defers,
		// go statements, declarations, sends, inc/dec, empty.
		states = r.transfer(states, stmt)
		if r.in.Terminates != nil && r.in.Terminates(stmt) {
			return set[S]{}
		}
		return states
	}
}

// execCases interprets a switch body: each clause starts from the
// switch-entry states (plus any fallthrough states from the previous
// clause); a missing default lets entry states flow past the switch.
func (r *run[S]) execCases(body *ast.BlockStmt, states set[S], labels []string, onCase func(*ast.CaseClause)) set[S] {
	f := &frame[S]{labels: append([]string{""}, labels...),
		breaks: set[S]{}, continues: set[S]{}, fallth: set[S]{}}
	r.frames = append(r.frames, f)
	out := set[S]{}
	hasDefault := false
	carry := set[S]{} // fallthrough from the previous clause
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		if onCase != nil {
			onCase(cc)
		}
		in := states.clone()
		in.union(carry)
		f.fallth = set[S]{}
		for _, s := range cc.Body {
			in = r.execStmt(s, in, nil)
			if r.aborted {
				break
			}
		}
		out.union(in)
		carry = f.fallth
	}
	r.frames = r.frames[:len(r.frames)-1]
	out.union(f.breaks)
	if !hasDefault {
		out.union(states)
	}
	return out
}

func labelOf(st *ast.BranchStmt) string {
	if st.Label != nil {
		return st.Label.Name
	}
	return ""
}
