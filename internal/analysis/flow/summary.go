// Interprocedural obligation summaries. Summarize computes, bottom-up
// over one package's call graph, what each function does with the
// resource obligations it touches: whether calling it releases the
// obligation carried by its N-th parameter (on all paths, some paths,
// or never), whether it adopts the parameter outright (stores it,
// returns it, hands it to code the analysis cannot see), and whether
// its results carry freshly acquired obligations. Path-sensitive
// checkers (poolpair) consult these summaries through ClassifyCall so
// a call is an escape only when it genuinely might be, not merely
// because it is a call.
//
// The call graph is the package's own FuncDecls; calls that leave the
// package are classified by the SummaryConfig callbacks (known
// releasers, acquirers, and borrowers) and are otherwise conservative
// (EffAdopts). Strongly connected components — recursion, mutual or
// direct — are cut conservatively: a call to a function whose summary
// is not yet computed counts as an adoption, so cyclic functions
// summarize to EffAdopts for any parameter they forward around the
// cycle. Function literals are never entered (they run at an unknown
// time); a parameter one captures is adopted.
package flow

import (
	"go/ast"
	"go/types"
)

// Effect is what a callee does with the obligation carried by one of
// its parameters.
type Effect uint8

const (
	// EffNone: the function borrows the parameter — reads through it,
	// never releases or retains it. The caller's obligation is intact.
	EffNone Effect = iota

	// EffReleasesSome: released on some paths through the callee but
	// not all. The caller can no longer prove anything either way.
	EffReleasesSome

	// EffReleasesAlways: released on every path; the caller's
	// obligation is discharged by the call.
	EffReleasesAlways

	// EffAdopts: ownership transfers to the callee (stored, returned,
	// captured, passed to unknown code). The caller stops tracking.
	EffAdopts
)

func (e Effect) String() string {
	switch e {
	case EffNone:
		return "none"
	case EffReleasesSome:
		return "releases-some"
	case EffReleasesAlways:
		return "releases-always"
	case EffAdopts:
		return "adopts"
	}
	return "invalid"
}

// RetEffect is whether one function result carries a freshly acquired
// obligation the caller must release.
type RetEffect uint8

const (
	RetNever  RetEffect = iota // result never carries an obligation
	RetSome                    // acquired on some return paths
	RetAlways                  // acquired on every return path
)

func (r RetEffect) String() string {
	switch r {
	case RetNever:
		return "never"
	case RetSome:
		return "some"
	case RetAlways:
		return "always"
	}
	return "invalid"
}

// Summary is one function's interprocedural obligation summary.
type Summary struct {
	// Params holds the effect on each declared parameter (receivers are
	// not summarized; a method call on a resource is a borrow unless
	// the configuration names it a releaser, e.g. Close).
	Params []Effect

	// Results holds, per result, whether it carries a fresh obligation.
	Results []RetEffect

	// Recursive marks functions in a call cycle; their summaries were
	// computed with the cycle cut conservatively.
	Recursive bool
}

// SummaryConfig tells Summarize (and ClassifyCall) which calls that
// leave the analyzed package acquire, release, or merely borrow
// obligations. All callbacks may be nil.
type SummaryConfig struct {
	Info *types.Info

	// ReleaseArgs returns the operand positions whose obligation the
	// (externally known) callee releases: argument indices, or -1 for
	// the method receiver.
	ReleaseArgs func(call *ast.CallExpr) []int

	// AcquireResults returns the result indices of call that carry a
	// fresh obligation, for externally known acquirers.
	AcquireResults func(call *ast.CallExpr) []int

	// Borrows reports that the externally known callee only reads the
	// operand at pos (same position convention as ReleaseArgs).
	Borrows func(call *ast.CallExpr, pos int) bool

	// Terminates reports a statement that never returns (panic,
	// os.Exit); forwarded to the path interpreter.
	Terminates func(n ast.Stmt) bool
}

// Summarize computes obligation summaries for every FuncDecl with a
// body in files, bottom-up over the package-local call graph.
func Summarize(files []*ast.File, cfg *SummaryConfig) map[*types.Func]*Summary {
	sz := &summarizer{
		cfg:   cfg,
		info:  cfg.Info,
		decls: make(map[*types.Func]*ast.FuncDecl),
		sums:  make(map[*types.Func]*Summary),
	}
	var order []*types.Func // declaration order, for deterministic SCC output
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := sz.info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sz.decls[fn] = fd
			order = append(order, fn)
		}
	}
	edges := make(map[*types.Func][]*types.Func, len(order))
	for _, fn := range order {
		edges[fn] = sz.callees(sz.decls[fn])
	}
	// Tarjan emits SCCs callees-first, so each function (outside its own
	// cycle) sees its callees' finished summaries; within a cycle the
	// missing summary reads as EffAdopts.
	for _, comp := range sccs(order, edges) {
		rec := len(comp) > 1 || hasEdge(edges, comp[0], comp[0])
		for _, fn := range comp {
			sz.sums[fn] = sz.summarize(fn, sz.decls[fn], rec)
		}
	}
	return sz.sums
}

type summarizer struct {
	cfg   *SummaryConfig
	info  *types.Info
	decls map[*types.Func]*ast.FuncDecl
	sums  map[*types.Func]*Summary
}

// callees lists the package-local functions fd calls directly (calls
// inside function literals excluded — a closure runs at unknown time
// and its captures are handled as adoptions).
func (sz *summarizer) callees(fd *ast.FuncDecl) []*types.Func {
	var out []*types.Func
	seen := make(map[*types.Func]bool)
	inspectSkipLits(fd.Body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if fn := CalleeFunc(sz.info, call); fn != nil && sz.decls[fn] != nil && !seen[fn] {
			seen[fn] = true
			out = append(out, fn)
		}
	})
	return out
}

func hasEdge(edges map[*types.Func][]*types.Func, from, to *types.Func) bool {
	for _, fn := range edges[from] {
		if fn == to {
			return true
		}
	}
	return false
}

func (sz *summarizer) summarize(fn *types.Func, fd *ast.FuncDecl, rec bool) *Summary {
	sig := fn.Type().(*types.Signature)
	s := &Summary{
		Recursive: rec,
		Params:    make([]Effect, sig.Params().Len()),
		Results:   make([]RetEffect, sig.Results().Len()),
	}
	for i := range s.Params {
		s.Params[i] = sz.paramEffect(fd, sig.Params().At(i))
	}
	sz.resultEffects(fd, s.Results)
	return s
}

// Per-parameter path states for the summary interpretation.
const (
	pLive     uint8 = iota // obligation with the caller, untouched so far
	pMaybe                 // passed through a releases-some callee
	pReleased              // released on this path
	pEscaped               // adopted: stored, returned, unknown call
)

// paramEffect runs the path interpreter over fd's body tracking one
// parameter's obligation and folds the per-exit states into an Effect.
func (sz *summarizer) paramEffect(fd *ast.FuncDecl, obj *types.Var) Effect {
	if obj.Name() == "" || obj.Name() == "_" {
		return EffNone // unreferencable: cannot be released or retained
	}
	if isBasic(obj.Type()) {
		return EffNone // a basic value cannot carry an obligation
	}
	if CapturedByFuncLit(sz.info, fd.Body, obj) {
		return EffAdopts
	}
	var (
		escaped     bool
		exits       int
		releasedAll = true
		releasedAny bool
	)
	interp := &Interp[uint8]{
		Transfer: func(s uint8, n ast.Node) uint8 {
			if s == pEscaped {
				return s
			}
			return sz.transferParam(s, n, obj)
		},
		AtExit: func(s uint8, n ast.Node) {
			exits++
			switch s {
			case pReleased:
				releasedAny = true
			case pMaybe:
				releasedAny = true
				releasedAll = false
			case pEscaped:
				escaped = true
			default:
				releasedAll = false
			}
		},
		Terminates: sz.cfg.Terminates,
	}
	interp.Run(fd.Body, pLive)
	switch {
	case escaped:
		return EffAdopts
	case exits > 0 && releasedAll:
		return EffReleasesAlways
	case releasedAny:
		return EffReleasesSome
	default:
		return EffNone
	}
}

// transferParam folds one leaf node into a parameter's obligation
// state.
func (sz *summarizer) transferParam(s uint8, n ast.Node, obj types.Object) uint8 {
	if d, ok := n.(*ast.DeferStmt); ok {
		n = d.Call
	}
	if g, ok := n.(*ast.GoStmt); ok {
		// The spawned call runs at an unknown time: any involvement of
		// the obligation is out of this function's hands.
		if usesObject(sz.info, g.Call, obj) {
			return pEscaped
		}
		return s
	}
	accounted := accountedObligationIdents(sz.info, n, obj)
	inspectSkipLits(n, func(inner ast.Node) {
		if s == pEscaped {
			return
		}
		switch x := inner.(type) {
		case *ast.CallExpr:
			ps := CallPositions(sz.info, x, obj)
			if len(ps) == 0 {
				return
			}
			switch ClassifyCall(sz.cfg, sz.sums, x, ps) {
			case EffReleasesAlways:
				if s == pLive || s == pMaybe {
					s = pReleased
				}
			case EffReleasesSome:
				if s == pLive {
					s = pMaybe
				}
			case EffAdopts:
				s = pEscaped
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && objectOf(sz.info, id) == obj {
					// The parameter is rebound: the incoming value's fate
					// is no longer trackable here.
					s = pEscaped
				}
			}
		case *ast.Ident:
			if objectOf(sz.info, x) == obj && !accounted[x] {
				// Any unclassified use — returned, stored in a struct or
				// slice, address taken — hands the obligation off.
				s = pEscaped
			}
		}
	})
	return s
}

// resultEffects fills out[j] with whether fd's j-th result carries a
// fresh obligation, by classifying every return statement.
func (sz *summarizer) resultEffects(fd *ast.FuncDecl, out []RetEffect) {
	if len(out) == 0 {
		return
	}
	acquired := sz.acquiredLocals(fd)
	counts := make([]int, len(out))
	total := 0
	inspectSkipLits(fd.Body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		total++
		if len(ret.Results) == 1 && len(out) > 1 {
			// Tuple forwarding: `return f()`.
			if call, ok := unparenExpr(ret.Results[0]).(*ast.CallExpr); ok {
				for _, j := range sz.acquireIndices(call) {
					if j >= 0 && j < len(counts) {
						counts[j]++
					}
				}
			}
			return
		}
		for j, e := range ret.Results {
			if j < len(counts) && sz.exprAcquired(e, acquired) {
				counts[j]++
			}
		}
	})
	for j := range out {
		switch {
		case total > 0 && counts[j] == total:
			out[j] = RetAlways
		case counts[j] > 0:
			out[j] = RetSome
		}
	}
}

// acquireIndices returns the result indices of call that carry a fresh
// obligation: the external configuration's, plus RetAlways results of
// summarized package-local callees. (A callee's RetSome results are
// deliberately not propagated: the caller of the wrapper cannot be
// obliged to release what may not exist.)
func (sz *summarizer) acquireIndices(call *ast.CallExpr) []int {
	var out []int
	if sz.cfg.AcquireResults != nil {
		out = append(out, sz.cfg.AcquireResults(call)...)
	}
	if fn := CalleeFunc(sz.info, call); fn != nil {
		if sum := sz.sums[fn]; sum != nil {
			for j, r := range sum.Results {
				if r == RetAlways {
					out = append(out, j)
				}
			}
		}
	}
	return out
}

// exprAcquired reports whether a single-valued return operand carries a
// fresh obligation: a direct acquiring call, or a single-assignment
// local bound to one.
func (sz *summarizer) exprAcquired(e ast.Expr, acquired map[types.Object]bool) bool {
	switch x := unparenExpr(e).(type) {
	case *ast.CallExpr:
		for _, j := range sz.acquireIndices(x) {
			if j == 0 {
				return true
			}
		}
	case *ast.Ident:
		return acquired[objectOf(sz.info, x)]
	}
	return false
}

// acquiredLocals finds locals assigned exactly once, from an acquiring
// call, so `br := GetReader(c); ...; return br` summarizes as returning
// an acquired resource.
func (sz *summarizer) acquiredLocals(fd *ast.FuncDecl) map[types.Object]bool {
	cand := make(map[types.Object]bool)
	assigns := make(map[types.Object]int)
	inspectSkipLits(fd.Body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := objectOf(sz.info, id)
			if obj == nil {
				continue
			}
			assigns[obj]++
			if len(as.Rhs) != 1 {
				continue
			}
			if call, ok := unparenExpr(as.Rhs[0]).(*ast.CallExpr); ok {
				for _, j := range sz.acquireIndices(call) {
					if j == i {
						cand[obj] = true
					}
				}
			}
		}
	})
	out := make(map[types.Object]bool)
	for obj := range cand {
		if assigns[obj] == 1 {
			out[obj] = true
		}
	}
	return out
}

// --- call classification (shared with checkers) ---

// CalleeFunc resolves a call's statically known callee, or nil for
// calls through function values, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparenExpr(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CallPositions returns the operand positions at which obj appears
// directly in call: -1 for the method receiver, i for argument i.
// Appearances nested deeper (inside a composite literal, an address-of,
// a field selector) are not positions — the caller's generic ident
// handling classifies those as adoptions.
func CallPositions(info *types.Info, call *ast.CallExpr, obj types.Object) []int {
	var ps []int
	if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := unparenExpr(sel.X).(*ast.Ident); ok && objectOf(info, id) == obj {
			ps = append(ps, -1)
		}
	}
	for i, a := range call.Args {
		if id, ok := unparenExpr(a).(*ast.Ident); ok && objectOf(info, id) == obj {
			ps = append(ps, i)
		}
	}
	return ps
}

// ClassifyCall reports the effect call has on the obligation held by
// the value appearing at the given operand positions, consulting the
// external configuration first and package-local summaries second. An
// unknown callee adopts; a method call on the resource itself (pos -1)
// borrows unless the configuration names it a releaser.
func ClassifyCall(cfg *SummaryConfig, sums map[*types.Func]*Summary, call *ast.CallExpr, positions []int) Effect {
	if len(positions) == 0 {
		return EffNone
	}
	rel := make(map[int]bool)
	if cfg.ReleaseArgs != nil {
		for _, i := range cfg.ReleaseArgs(call) {
			rel[i] = true
		}
	}
	eff := EffNone
	for _, pos := range positions {
		var e Effect
		switch {
		case rel[pos]:
			e = EffReleasesAlways
		case cfg.Borrows != nil && cfg.Borrows(call, pos):
			e = EffNone
		case pos == -1:
			// A method call on the resource reads it; ownership transfer
			// through the receiver is expressed via ReleaseArgs (Close).
			e = EffNone
		default:
			e = calleeParamEffect(cfg.Info, sums, call, pos)
		}
		if e > eff {
			eff = e
		}
	}
	return eff
}

// calleeParamEffect looks up the summarized effect of call's callee on
// its argIdx-th parameter, conservatively EffAdopts for unknown
// callees, unfinished summaries (cycles), variadic tails, and method
// expressions (whose argument indices are shifted by the receiver).
func calleeParamEffect(info *types.Info, sums map[*types.Func]*Summary, call *ast.CallExpr, argIdx int) Effect {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return EffAdopts
	}
	sum := sums[fn]
	if sum == nil {
		return EffAdopts
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return EffAdopts
	}
	if sig.Recv() != nil {
		if sel, ok := unparenExpr(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := unparenExpr(sel.X).(*ast.Ident); ok {
				if _, isType := info.Uses[id].(*types.TypeName); isType {
					return EffAdopts // method expression: indices shifted
				}
			}
		}
	}
	if sig.Variadic() && argIdx >= sig.Params().Len()-1 {
		return EffAdopts
	}
	if argIdx < 0 || argIdx >= len(sum.Params) {
		return EffAdopts
	}
	return sum.Params[argIdx]
}

// CapturedByFuncLit reports whether any function literal within body
// references obj.
func CapturedByFuncLit(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok && objectOf(info, id) == obj {
				found = true
			}
			return !found
		})
		return false
	})
	return found
}

// accountedObligationIdents collects the occurrences of obj within n
// that the obligation transfer functions already interpret — direct
// call operands, assignment targets, `_ = obj`, nil comparisons — so
// any other occurrence can be treated as an adoption.
func accountedObligationIdents(info *types.Info, n ast.Node, obj types.Object) map[*ast.Ident]bool {
	accounted := make(map[*ast.Ident]bool)
	inspectSkipLits(n, func(inner ast.Node) {
		switch x := inner.(type) {
		case *ast.CallExpr:
			if sel, ok := unparenExpr(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := unparenExpr(sel.X).(*ast.Ident); ok && objectOf(info, id) == obj {
					accounted[id] = true
				}
			}
			for _, a := range x.Args {
				if id, ok := unparenExpr(a).(*ast.Ident); ok && objectOf(info, id) == obj {
					accounted[id] = true
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && objectOf(info, id) == obj {
					accounted[id] = true
				}
			}
			// `_ = obj` keeps or discards the value in place; it is not a
			// handoff.
			if len(x.Lhs) == len(x.Rhs) {
				for i, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
						if rid, ok := unparenExpr(x.Rhs[i]).(*ast.Ident); ok && objectOf(info, rid) == obj {
							accounted[rid] = true
						}
					}
				}
			}
		case *ast.BinaryExpr:
			// Comparing the resource against nil examines it, nothing more.
			if isNilIdentExpr(info, x.X) || isNilIdentExpr(info, x.Y) {
				for _, side := range []ast.Expr{x.X, x.Y} {
					if id, ok := unparenExpr(side).(*ast.Ident); ok && objectOf(info, id) == obj {
						accounted[id] = true
					}
				}
			}
		}
	})
	return accounted
}

// --- small helpers ---

// sccs is Tarjan's strongly-connected-components algorithm; components
// are emitted callees-first (reverse topological order).
func sccs(nodes []*types.Func, edges map[*types.Func][]*types.Func) [][]*types.Func {
	index := make(map[*types.Func]int)
	low := make(map[*types.Func]int)
	onStack := make(map[*types.Func]bool)
	var stack []*types.Func
	var out [][]*types.Func
	next := 0
	var strong func(v *types.Func)
	strong = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range edges[v] {
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strong(v)
		}
	}
	return out
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func unparenExpr(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isNilIdentExpr(info *types.Info, e ast.Expr) bool {
	id, ok := unparenExpr(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil || id.Name == "nil"
}

func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(inner ast.Node) bool {
		if id, ok := inner.(*ast.Ident); ok && objectOf(info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBasic(t types.Type) bool {
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

// inspectSkipLits walks n in pre-order without descending into function
// literals (other than n itself).
func inspectSkipLits(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(inner ast.Node) bool {
		if inner == nil {
			return false
		}
		if _, ok := inner.(*ast.FuncLit); ok && inner != n {
			return false
		}
		fn(inner)
		return true
	})
}
