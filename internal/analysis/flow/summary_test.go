package flow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"lard/internal/analysis/flow"
)

// The synthetic package: acquire/release are bodyless stubs, so the
// summarizer treats them as external calls classified purely by the
// SummaryConfig, and everything else exercises the bottom-up
// computation — chains, conditional releases, borrows, adoption,
// direct and mutual recursion, method values, and returns-acquired
// propagation through wrappers.
const summarySrc = `package p

type res struct{ n int }

func acquire() *res
func acquire2() (*res, bool)
func release(r *res)

func (r *res) size() int { return r.n }

var sink *res

func releasesAlways(r *res) {
	release(r)
}

func releasesSome(r *res, drop bool) {
	if drop {
		release(r)
	}
}

func borrows(r *res) int {
	return r.size()
}

func adoptsStore(r *res) {
	sink = r
}

func adoptsReturn(r *res) *res {
	return r
}

func chained(r *res) {
	releasesAlways(r)
}

func chainedBorrow(r *res) {
	borrows(r)
	release(r)
}

func countdown(r *res, n int) {
	if n == 0 {
		release(r)
		return
	}
	countdown(r, n-1)
}

func pingPong(r *res, n int) {
	if n == 0 {
		release(r)
		return
	}
	pongPing(r, n-1)
}

func pongPing(r *res, n int) {
	pingPong(r, n)
}

func methodValue(r *res) {
	f := release
	f(r)
}

func boundMethod(r *res) int {
	g := r.size
	return g()
}

func capturedParam(r *res) func() {
	return func() { release(r) }
}

func returnsAcquired() *res {
	return acquire()
}

func returnsAcquiredLocal() *res {
	r := acquire()
	return r
}

func returnsSometimes(ok bool) *res {
	if ok {
		return acquire()
	}
	return nil
}

func viaWrapper() *res {
	return returnsAcquired()
}

func forwardsTuple() (*res, bool) {
	return acquire2()
}
`

func loadSummarySrc(t *testing.T) ([]*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", summarySrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return []*ast.File{f}, info
}

func summaryCfg(info *types.Info) *flow.SummaryConfig {
	calleeName := func(call *ast.CallExpr) string {
		if fn := flow.CalleeFunc(info, call); fn != nil {
			return fn.Name()
		}
		return ""
	}
	return &flow.SummaryConfig{
		Info: info,
		ReleaseArgs: func(call *ast.CallExpr) []int {
			if calleeName(call) == "release" {
				return []int{0}
			}
			return nil
		},
		AcquireResults: func(call *ast.CallExpr) []int {
			switch calleeName(call) {
			case "acquire", "acquire2":
				return []int{0}
			}
			return nil
		},
	}
}

func summaryByName(t *testing.T, sums map[*types.Func]*flow.Summary, name string) *flow.Summary {
	t.Helper()
	for fn, sum := range sums {
		if fn.Name() == name {
			return sum
		}
	}
	t.Fatalf("no summary for %s", name)
	return nil
}

func TestSummarizeParamEffects(t *testing.T) {
	files, info := loadSummarySrc(t)
	sums := flow.Summarize(files, summaryCfg(info))
	cases := []struct {
		fn    string
		param int
		want  flow.Effect
	}{
		{"releasesAlways", 0, flow.EffReleasesAlways},
		{"releasesSome", 0, flow.EffReleasesSome},
		{"borrows", 0, flow.EffNone},
		{"adoptsStore", 0, flow.EffAdopts},
		{"adoptsReturn", 0, flow.EffAdopts},
		// Through a summarized callee: the chain releases.
		{"chained", 0, flow.EffReleasesAlways},
		// A borrowing callee first, then the release.
		{"chainedBorrow", 0, flow.EffReleasesAlways},
		// Cycles are cut conservatively: the self/mutual call adopts.
		{"countdown", 0, flow.EffAdopts},
		{"pingPong", 0, flow.EffAdopts},
		{"pongPing", 0, flow.EffAdopts},
		// Calls through function and method values are unknown callees.
		{"methodValue", 0, flow.EffAdopts},
		{"boundMethod", 0, flow.EffAdopts},
		// Captured by a closure: the closure owns it now.
		{"capturedParam", 0, flow.EffAdopts},
		// The basic-typed parameters can carry no obligation.
		{"releasesSome", 1, flow.EffNone},
		{"countdown", 1, flow.EffNone},
	}
	for _, c := range cases {
		sum := summaryByName(t, sums, c.fn)
		if got := sum.Params[c.param]; got != c.want {
			t.Errorf("%s param %d: got %v, want %v", c.fn, c.param, got, c.want)
		}
	}
}

func TestSummarizeResultEffects(t *testing.T) {
	files, info := loadSummarySrc(t)
	sums := flow.Summarize(files, summaryCfg(info))
	cases := []struct {
		fn     string
		result int
		want   flow.RetEffect
	}{
		{"returnsAcquired", 0, flow.RetAlways},
		{"returnsAcquiredLocal", 0, flow.RetAlways},
		{"returnsSometimes", 0, flow.RetSome},
		// Propagated through the wrapper's own summary.
		{"viaWrapper", 0, flow.RetAlways},
		// Tuple forwarding: `return acquire2()`.
		{"forwardsTuple", 0, flow.RetAlways},
		{"forwardsTuple", 1, flow.RetNever},
		{"borrows", 0, flow.RetNever},
	}
	for _, c := range cases {
		sum := summaryByName(t, sums, c.fn)
		if got := sum.Results[c.result]; got != c.want {
			t.Errorf("%s result %d: got %v, want %v", c.fn, c.result, got, c.want)
		}
	}
}

func TestSummarizeRecursionFlags(t *testing.T) {
	files, info := loadSummarySrc(t)
	sums := flow.Summarize(files, summaryCfg(info))
	for _, name := range []string{"countdown", "pingPong", "pongPing"} {
		if !summaryByName(t, sums, name).Recursive {
			t.Errorf("%s: expected Recursive", name)
		}
	}
	for _, name := range []string{"releasesAlways", "chained", "viaWrapper"} {
		if summaryByName(t, sums, name).Recursive {
			t.Errorf("%s: unexpected Recursive", name)
		}
	}
}
