package trace

import (
	"math/rand"
	"testing"
)

func BenchmarkZipfSample(b *testing.B) {
	z := NewZipfShifted(37703, 1.4, 60)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Sample(rng)
	}
}

func BenchmarkGenerateRice(b *testing.B) {
	cfg := RiceProfile()
	cfg.Requests = 100000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.Requests), "reqs/gen")
}

func BenchmarkComputeCDF(b *testing.B) {
	cfg := RiceProfile()
	cfg.Requests = 100000
	tr := MustGenerate(cfg, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeCDF(tr)
	}
}
