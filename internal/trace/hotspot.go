package trace

import (
	"fmt"
	"math/rand"
)

// HotSpotConfig describes the Section 4.2 workload modification: "we
// modified the Rice trace to include a small number of artificial high
// frequency targets and varied their request rate between [2] and [10]% of
// the total number of requests".
type HotSpotConfig struct {
	// Count is the number of artificial hot targets added to the catalog.
	Count int

	// Size is the size in bytes of each hot target. The paper observes the
	// largest LARD/R gains "when the size of the hot targets is larger
	// than [20] KBytes".
	Size int64

	// RequestFraction in (0, 1) is the combined share of all requests that
	// is redirected to the hot targets.
	RequestFraction float64
}

// Validate reports whether the hot-spot configuration is usable.
func (c HotSpotConfig) Validate() error {
	switch {
	case c.Count < 1:
		return fmt.Errorf("trace: hotspot Count = %d, need >= 1", c.Count)
	case c.Size < 1:
		return fmt.Errorf("trace: hotspot Size = %d, need >= 1", c.Size)
	case c.RequestFraction <= 0 || c.RequestFraction >= 1:
		return fmt.Errorf("trace: hotspot RequestFraction %v outside (0,1)", c.RequestFraction)
	}
	return nil
}

// InjectHotSpots returns a new trace in which a RequestFraction share of
// the original requests, chosen uniformly at random, is replaced by
// requests to Count new hot targets (round-robin across them, so each hot
// target receives an equal share). The original catalog is retained; the
// request count is unchanged.
func InjectHotSpots(t *Trace, cfg HotSpotConfig, seed int64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	targets := make([]Target, len(t.Targets), len(t.Targets)+cfg.Count)
	copy(targets, t.Targets)
	hotBase := int32(len(targets))
	for i := 0; i < cfg.Count; i++ {
		targets = append(targets, Target{
			Name: fmt.Sprintf("/hot/target%03d.bin", i),
			Size: cfg.Size,
		})
	}

	reqs := make([]int32, len(t.Requests))
	copy(reqs, t.Requests)
	hot := 0
	for i := range reqs {
		if rng.Float64() < cfg.RequestFraction {
			reqs[i] = hotBase + int32(hot%cfg.Count)
			hot++
		}
	}

	out := &Trace{
		Name:     fmt.Sprintf("%s+hot(%d@%.0f%%)", t.Name, cfg.Count, cfg.RequestFraction*100),
		Targets:  targets,
		Requests: reqs,
	}
	return out, nil
}
