package trace

import (
	"strings"
	"testing"
)

func tinyTrace() *Trace {
	return &Trace{
		Name: "tiny",
		Targets: []Target{
			{Name: "/a", Size: 100},
			{Name: "/b", Size: 200},
			{Name: "/c", Size: 300},
		},
		Requests: []int32{0, 1, 0, 2, 0, 1},
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := tinyTrace()
	if tr.Len() != 6 {
		t.Fatalf("Len = %d, want 6", tr.Len())
	}
	if tr.TargetCount() != 3 {
		t.Fatalf("TargetCount = %d, want 3", tr.TargetCount())
	}
	r := tr.At(3)
	if r.Target != "/c" || r.Size != 300 {
		t.Fatalf("At(3) = %+v", r)
	}
	if got := tr.DataSetBytes(); got != 600 {
		t.Fatalf("DataSetBytes = %d, want 600", got)
	}
	if got := tr.TransferBytes(); got != 100*3+200*2+300 {
		t.Fatalf("TransferBytes = %d", got)
	}
}

func TestTraceCounts(t *testing.T) {
	counts := tinyTrace().Counts()
	want := []int64{3, 2, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("Counts = %v, want %v", counts, want)
		}
	}
}

func TestTraceSlice(t *testing.T) {
	tr := tinyTrace()
	s := tr.Slice(1, 4)
	if s.Len() != 3 {
		t.Fatalf("slice Len = %d, want 3", s.Len())
	}
	if s.At(0).Target != "/b" {
		t.Fatalf("slice At(0) = %+v", s.At(0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bounds did not panic")
		}
	}()
	tr.Slice(4, 2)
}

func TestTraceValidate(t *testing.T) {
	if err := tinyTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := tinyTrace()
	bad.Requests[0] = 9
	if bad.Validate() == nil {
		t.Fatal("out-of-range request index accepted")
	}
	bad = tinyTrace()
	bad.Targets[1].Size = -1
	if bad.Validate() == nil {
		t.Fatal("negative size accepted")
	}
	bad = tinyTrace()
	bad.Targets[1].Name = "/a"
	if bad.Validate() == nil {
		t.Fatal("duplicate target accepted")
	}
	bad = tinyTrace()
	bad.Targets[0].Name = ""
	if bad.Validate() == nil {
		t.Fatal("empty target name accepted")
	}
}

func TestTraceString(t *testing.T) {
	s := tinyTrace().String()
	if !strings.Contains(s, "tiny") || !strings.Contains(s, "3 files") {
		t.Fatalf("String() = %q", s)
	}
}

func TestMergeCombinesCatalogs(t *testing.T) {
	a := &Trace{Name: "a",
		Targets:  []Target{{Name: "/x", Size: 10}, {Name: "/y", Size: 20}},
		Requests: []int32{0, 1}}
	b := &Trace{Name: "b",
		Targets:  []Target{{Name: "/y", Size: 20}, {Name: "/z", Size: 30}},
		Requests: []int32{0, 1, 1}}
	m, err := Merge("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.TargetCount() != 3 {
		t.Fatalf("merged targets = %d, want 3", m.TargetCount())
	}
	if m.Len() != 5 {
		t.Fatalf("merged requests = %d, want 5", m.Len())
	}
	// b's requests to /y must map to the shared catalog entry.
	if m.At(2).Target != "/y" || m.At(2).Size != 20 {
		t.Fatalf("At(2) = %+v", m.At(2))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeConflictingSizes(t *testing.T) {
	a := &Trace{Targets: []Target{{Name: "/x", Size: 10}}, Requests: []int32{0}}
	b := &Trace{Targets: []Target{{Name: "/x", Size: 99}}, Requests: []int32{0}}
	if _, err := Merge("bad", a, b); err == nil {
		t.Fatal("conflicting sizes accepted")
	}
}

func TestMergeEmpty(t *testing.T) {
	if _, err := Merge("none"); err == nil {
		t.Fatal("empty merge accepted")
	}
}
