package trace

import (
	"fmt"
	"io"
	"sort"
)

// CDF holds the cumulative request-frequency and file-size distributions of
// a trace with targets sorted by decreasing request frequency — exactly the
// curves plotted in the paper's Figures 5 and 6.
type CDF struct {
	// Files[i] describes the (i+1) most-requested targets considered
	// together.
	Files []CDFPoint

	TotalRequests int64
	TotalBytes    int64 // data set (catalog) bytes
}

// CDFPoint is one point on the cumulative curves: the top k targets by
// request frequency cover CumRequests requests and CumBytes catalog bytes.
type CDFPoint struct {
	Rank        int   // k, 1-based
	Requests    int64 // requests to this target alone
	Size        int64 // this target's size
	CumRequests int64
	CumBytes    int64
}

// RequestFraction returns the fraction of all requests covered by the top
// k targets at this point.
func (p CDFPoint) requestFraction(total int64) float64 {
	if total == 0 {
		return 0
	}
	return float64(p.CumRequests) / float64(total)
}

// ComputeCDF builds the Figure 5/6 curves for a trace.
func ComputeCDF(t *Trace) *CDF {
	counts := t.Counts()
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := counts[order[a]], counts[order[b]]
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b] // deterministic tie-break
	})
	c := &CDF{Files: make([]CDFPoint, 0, len(order))}
	var cumReq, cumBytes int64
	for rank, idx := range order {
		cumReq += counts[idx]
		cumBytes += t.Targets[idx].Size
		c.Files = append(c.Files, CDFPoint{
			Rank:        rank + 1,
			Requests:    counts[idx],
			Size:        t.Targets[idx].Size,
			CumRequests: cumReq,
			CumBytes:    cumBytes,
		})
	}
	c.TotalRequests = cumReq
	c.TotalBytes = cumBytes
	return c
}

// BytesToCover returns the memory needed to hold the most-requested targets
// that together cover at least the given fraction of requests — the paper's
// "X MB of memory is needed to cover Y% of all requests" statistic.
func (c *CDF) BytesToCover(fraction float64) int64 {
	if fraction <= 0 || c.TotalRequests == 0 {
		return 0
	}
	for _, p := range c.Files {
		if p.requestFraction(c.TotalRequests) >= fraction {
			return p.CumBytes
		}
	}
	return c.TotalBytes
}

// TopRequestShare returns the fraction of requests going to the single
// most-requested target (the paper reports 1-2% for Rice/IBM, motivating
// the hot-target experiment).
func (c *CDF) TopRequestShare() float64 {
	if len(c.Files) == 0 || c.TotalRequests == 0 {
		return 0
	}
	return float64(c.Files[0].Requests) / float64(c.TotalRequests)
}

// WriteTable renders the CDF as a fixed-width table of sample points
// (normalized rank, cumulative request fraction, cumulative size fraction),
// the textual equivalent of Figures 5 and 6. points controls resolution.
func (c *CDF) WriteTable(w io.Writer, points int) error {
	if points < 2 {
		points = 2
	}
	if _, err := fmt.Fprintf(w, "%-12s %-14s %-14s\n", "files(norm)", "cum.requests", "cum.size"); err != nil {
		return err
	}
	n := len(c.Files)
	for i := 0; i < points; i++ {
		idx := (n - 1) * i / (points - 1)
		p := c.Files[idx]
		_, err := fmt.Fprintf(w, "%-12.4f %-14.4f %-14.4f\n",
			float64(p.Rank)/float64(n),
			float64(p.CumRequests)/float64(c.TotalRequests),
			float64(p.CumBytes)/float64(c.TotalBytes))
		if err != nil {
			return err
		}
	}
	return nil
}
