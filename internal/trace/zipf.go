package trace

import (
	"math"
	"math/rand"
	"sort"
)

// Zipf samples ranks 1..N with probability proportional to
// 1/(rank+shift)^alpha — a generalized (shifted) Zipf distribution.
// Web-server request popularity is classically Zipf-like but with a
// flattened head: the single most requested file accounts for only a
// percent or two of requests (the paper reports 1-2% for its traces),
// while the popularity *body* still concentrates most requests in a
// modest fraction of files. The shift parameter flattens the head
// without flattening the body, letting the synthetic profiles match both
// published statistics at once.
//
// The sampler precomputes the cumulative distribution and draws by binary
// search, so sampling is O(log N) with exact probabilities (no rejection),
// and is deterministic for a given *rand.Rand.
type Zipf struct {
	cdf []float64
}

// NewZipf returns a sampler over ranks 1..n with exponent alpha >= 0 and
// no head shift. It panics if n < 1 or alpha is negative or not finite.
func NewZipf(n int, alpha float64) *Zipf {
	return NewZipfShifted(n, alpha, 0)
}

// NewZipfShifted returns a sampler over ranks 1..n with probability
// proportional to (rank+shift)^-alpha. It panics if n < 1, alpha is
// negative or not finite, or shift is negative or not finite.
func NewZipfShifted(n int, alpha, shift float64) *Zipf {
	if n < 1 {
		panic("trace: Zipf needs n >= 1")
	}
	if alpha < 0 || math.IsNaN(alpha) || math.IsInf(alpha, 0) {
		panic("trace: Zipf alpha must be finite and non-negative")
	}
	if shift < 0 || math.IsNaN(shift) || math.IsInf(shift, 0) {
		panic("trace: Zipf shift must be finite and non-negative")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1)+shift, -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N) (0 = most popular) using rng.
func (z *Zipf) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of rank i (0-based).
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// CoverageRanks returns the smallest k such that ranks [0, k) together
// account for at least the given fraction of probability mass.
func (z *Zipf) CoverageRanks(fraction float64) int {
	if fraction <= 0 {
		return 0
	}
	if fraction >= 1 {
		return len(z.cdf)
	}
	return sort.SearchFloat64s(z.cdf, fraction) + 1
}
