package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Requests-per-connection distributions for persistent-connection
// (P-HTTP) workloads. The same generator feeds the live load generator
// (internal/loadgen) and the simulator (internal/cluster), so the
// workload the phttp experiment simulates is the workload the prototype
// is driven with.
const (
	// ConnDistFixed gives every connection exactly the mean number of
	// requests.
	ConnDistFixed = "fixed"
	// ConnDistGeometric draws each connection's request count from a
	// geometric distribution with the given mean (the memoryless
	// browser-session model: most connections short, a long tail).
	ConnDistGeometric = "geometric"
)

// ConnLenDraw returns a requests-per-connection generator for the named
// distribution ("" selects ConnDistFixed). The mean is clamped to at
// least 1; every draw is at least 1. Geometric draws use inverse-CDF
// sampling from rng, so a seeded rng reproduces the sequence.
func ConnLenDraw(dist string, mean int, rng *rand.Rand) (func() int, error) {
	if mean < 1 {
		mean = 1
	}
	switch dist {
	case "", ConnDistFixed:
		return func() int { return mean }, nil
	case ConnDistGeometric:
		p := 1.0 / float64(mean)
		return func() int {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			k := int(math.Ceil(math.Log(u) / math.Log(1-p)))
			if k < 1 {
				k = 1
			}
			return k
		}, nil
	default:
		return nil, fmt.Errorf("trace: unknown connection-length distribution %q (want %q or %q)",
			dist, ConnDistFixed, ConnDistGeometric)
	}
}
