package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file reads and writes traces in two on-disk formats:
//
//   - Common Log Format (CLF), the format of the Apache access logs the
//     paper's traces came from:
//       host ident user [date] "METHOD /path HTTP/1.0" status bytes
//     Only GET lines with 2xx/304 statuses contribute requests; the
//     observed maximum byte count per path defines the target size (log
//     lines report the transfer size, which for static files equals the
//     file size on full responses).
//
//   - Tokenized format, the simulator's native representation (paper
//     Section 3.2: "a stream of tokenized target requests ... associated
//     with each token is a target size in bytes"): one "path size" pair
//     per line.

// ParseCLF builds a trace from an Apache Common Log Format stream.
// Malformed lines are skipped; the count of skipped lines is returned.
func ParseCLF(name string, r io.Reader) (*Trace, int, error) {
	t := &Trace{Name: name}
	index := make(map[string]int32)
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		path, size, ok := parseCLFLine(line)
		if !ok {
			if strings.TrimSpace(line) != "" {
				skipped++
			}
			continue
		}
		idx, seen := index[path]
		if !seen {
			idx = int32(len(t.Targets))
			t.Targets = append(t.Targets, Target{Name: path, Size: size})
			index[path] = idx
		} else if size > t.Targets[idx].Size {
			// Partial transfers under-report; keep the maximum observed.
			t.Targets[idx].Size = size
		}
		t.Requests = append(t.Requests, idx)
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("trace: reading CLF: %w", err)
	}
	return t, skipped, nil
}

// parseCLFLine extracts (path, bytes) from one CLF line, returning ok=false
// for lines that are malformed or are not successful GETs.
func parseCLFLine(line string) (path string, size int64, ok bool) {
	// Locate the quoted request field.
	q1 := strings.IndexByte(line, '"')
	if q1 < 0 {
		return "", 0, false
	}
	q2 := strings.IndexByte(line[q1+1:], '"')
	if q2 < 0 {
		return "", 0, false
	}
	req := line[q1+1 : q1+1+q2]
	rest := strings.Fields(line[q1+q2+2:])
	if len(rest) < 2 {
		return "", 0, false
	}
	status, err := strconv.Atoi(rest[0])
	if err != nil {
		return "", 0, false
	}
	if !(status >= 200 && status < 300 || status == 304) {
		return "", 0, false
	}
	size = 0
	if rest[1] != "-" {
		size, err = strconv.ParseInt(rest[1], 10, 64)
		if err != nil || size < 0 {
			return "", 0, false
		}
	}
	parts := strings.Fields(req)
	if len(parts) < 2 || parts[0] != "GET" {
		return "", 0, false
	}
	path = parts[1]
	// Strip query string: the paper keys targets by URL path + arguments,
	// but arguments on static GETs are overwhelmingly cache-busters; keep
	// the full target including arguments to match "a target is specified
	// by a URL and any applicable arguments".
	if path == "" || path[0] != '/' {
		return "", 0, false
	}
	return path, size, true
}

// WriteCLF emits the trace as minimal Common Log Format lines, usable as
// input for other tools.
func WriteCLF(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		if _, err := fmt.Fprintf(bw, "- - - [01/Jan/1998:00:00:00 +0000] \"GET %s HTTP/1.0\" 200 %d\n", r.Target, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTokenized reads the native "path size" format.
func ParseTokenized(name string, r io.Reader) (*Trace, error) {
	t := &Trace{Name: name}
	index := make(map[string]int32)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("trace: %s:%d: want \"path size\", got %q", name, lineNo, line)
		}
		size, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil || size < 0 {
			return nil, fmt.Errorf("trace: %s:%d: bad size %q", name, lineNo, fields[1])
		}
		path := fields[0]
		idx, seen := index[path]
		if !seen {
			idx = int32(len(t.Targets))
			t.Targets = append(t.Targets, Target{Name: path, Size: size})
			index[path] = idx
		} else if t.Targets[idx].Size != size {
			return nil, fmt.Errorf("trace: %s:%d: target %q size changed from %d to %d",
				name, lineNo, path, t.Targets[idx].Size, size)
		}
		t.Requests = append(t.Requests, idx)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading tokenized trace: %w", err)
	}
	return t, nil
}

// WriteTokenized emits the native "path size" format, one request per line.
func WriteTokenized(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s: %d requests, %d targets\n", t.Name, t.Len(), t.TargetCount()); err != nil {
		return err
	}
	for i := 0; i < t.Len(); i++ {
		r := t.At(i)
		if _, err := fmt.Fprintf(bw, "%s %d\n", r.Target, r.Size); err != nil {
			return err
		}
	}
	return bw.Flush()
}
