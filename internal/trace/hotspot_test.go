package trace

import (
	"math"
	"strings"
	"testing"
)

func TestInjectHotSpotsFraction(t *testing.T) {
	cfg := RiceProfile()
	cfg.Targets = 500
	cfg.Requests = 50000
	cfg.DataSetBytes = 30 << 20
	base := MustGenerate(cfg, 11)

	hot, err := InjectHotSpots(base, HotSpotConfig{Count: 4, Size: 25 << 10, RequestFraction: 0.1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Len() != base.Len() {
		t.Fatalf("request count changed: %d -> %d", base.Len(), hot.Len())
	}
	if hot.TargetCount() != base.TargetCount()+4 {
		t.Fatalf("catalog grew by %d, want 4", hot.TargetCount()-base.TargetCount())
	}
	// Count requests landing on hot targets.
	var hotReqs int64
	counts := hot.Counts()
	for i := base.TargetCount(); i < hot.TargetCount(); i++ {
		hotReqs += counts[i]
	}
	frac := float64(hotReqs) / float64(hot.Len())
	if math.Abs(frac-0.1) > 0.01 {
		t.Fatalf("hot fraction = %v, want ~0.1", frac)
	}
	// Hot requests are spread evenly across hot targets.
	var min, max int64 = math.MaxInt64, 0
	for i := base.TargetCount(); i < hot.TargetCount(); i++ {
		if counts[i] < min {
			min = counts[i]
		}
		if counts[i] > max {
			max = counts[i]
		}
	}
	if max-min > 1 {
		t.Fatalf("hot target counts uneven: min %d, max %d", min, max)
	}
	if err := hot.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(hot.Name, "hot") {
		t.Fatalf("name = %q", hot.Name)
	}
}

func TestInjectHotSpotsSizes(t *testing.T) {
	base := tinyTrace()
	hot, err := InjectHotSpots(base, HotSpotConfig{Count: 2, Size: 12345, RequestFraction: 0.5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := base.TargetCount(); i < hot.TargetCount(); i++ {
		if hot.Targets[i].Size != 12345 {
			t.Fatalf("hot target size = %d", hot.Targets[i].Size)
		}
	}
}

func TestInjectHotSpotsDoesNotMutateOriginal(t *testing.T) {
	base := tinyTrace()
	orig := append([]int32(nil), base.Requests...)
	if _, err := InjectHotSpots(base, HotSpotConfig{Count: 1, Size: 10, RequestFraction: 0.9}, 3); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if base.Requests[i] != orig[i] {
			t.Fatal("original trace mutated")
		}
	}
}

func TestHotSpotConfigValidate(t *testing.T) {
	bad := []HotSpotConfig{
		{Count: 0, Size: 10, RequestFraction: 0.5},
		{Count: 1, Size: 0, RequestFraction: 0.5},
		{Count: 1, Size: 10, RequestFraction: 0},
		{Count: 1, Size: 10, RequestFraction: 1},
	}
	for i, cfg := range bad {
		if _, err := InjectHotSpots(tinyTrace(), cfg, 1); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}
