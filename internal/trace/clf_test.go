package trace

import (
	"strings"
	"testing"
)

const sampleCLF = `192.168.1.1 - - [10/Oct/1997:13:55:36 -0700] "GET /index.html HTTP/1.0" 200 2326
192.168.1.2 - frank [10/Oct/1997:13:55:37 -0700] "GET /pics/logo.gif HTTP/1.0" 200 4096
192.168.1.1 - - [10/Oct/1997:13:55:38 -0700] "GET /index.html HTTP/1.0" 304 -
192.168.1.3 - - [10/Oct/1997:13:55:39 -0700] "POST /cgi-bin/form HTTP/1.0" 200 512
192.168.1.4 - - [10/Oct/1997:13:55:40 -0700] "GET /missing.html HTTP/1.0" 404 178
192.168.1.5 - - [10/Oct/1997:13:55:41 -0700] "GET /index.html HTTP/1.0" 200 2326
garbage line without quotes
192.168.1.6 - - [10/Oct/1997:13:55:42 -0700] "GET /big.tar HTTP/1.0" 200 1048576
`

func TestParseCLF(t *testing.T) {
	tr, skipped, err := ParseCLF("sample", strings.NewReader(sampleCLF))
	if err != nil {
		t.Fatal(err)
	}
	// Valid GETs: index.html x3 (one 304), logo.gif, big.tar = 5 requests.
	if tr.Len() != 5 {
		t.Fatalf("requests = %d, want 5", tr.Len())
	}
	if tr.TargetCount() != 3 {
		t.Fatalf("targets = %d, want 3", tr.TargetCount())
	}
	// POST, 404, and the garbage line are skipped.
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
	// index.html size is the max observed (2326; the 304 reports "-").
	for _, tg := range tr.Targets {
		if tg.Name == "/index.html" && tg.Size != 2326 {
			t.Fatalf("/index.html size = %d", tg.Size)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseCLFEmptyAndBlank(t *testing.T) {
	tr, skipped, err := ParseCLF("empty", strings.NewReader("\n\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	// Blank and whitespace-only lines are ignored silently, not counted.
	if tr.Len() != 0 || skipped != 0 {
		t.Fatalf("len=%d skipped=%d", tr.Len(), skipped)
	}
}

func TestCLFRoundTrip(t *testing.T) {
	orig := tinyTrace()
	var sb strings.Builder
	if err := WriteCLF(&sb, orig); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ParseCLF("roundtrip", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("round trip skipped %d lines", skipped)
	}
	if back.Len() != orig.Len() || back.TargetCount() != orig.TargetCount() {
		t.Fatalf("round trip shape: %d/%d vs %d/%d",
			back.Len(), back.TargetCount(), orig.Len(), orig.TargetCount())
	}
	for i := 0; i < orig.Len(); i++ {
		if back.At(i) != orig.At(i) {
			t.Fatalf("request %d: %+v vs %+v", i, back.At(i), orig.At(i))
		}
	}
}

func TestTokenizedRoundTrip(t *testing.T) {
	orig := tinyTrace()
	var sb strings.Builder
	if err := WriteTokenized(&sb, orig); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "#") {
		t.Fatal("missing header comment")
	}
	back, err := ParseTokenized("roundtrip", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("len %d vs %d", back.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if back.At(i) != orig.At(i) {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestParseTokenizedErrors(t *testing.T) {
	cases := []string{
		"/a\n",           // missing size
		"/a ten\n",       // non-numeric size
		"/a -5\n",        // negative size
		"/a 10\n/a 20\n", // size conflict
		"/a 10 extra oops\n",
	}
	for i, in := range cases {
		if _, err := ParseTokenized("bad", strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted: %q", i, in)
		}
	}
}

func TestParseCLFLineEdgeCases(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
	}{
		{`1.1.1.1 - - [d] "GET /x HTTP/1.0" 200 100`, true},
		{`1.1.1.1 - - [d] "GET /x HTTP/1.0" 304 -`, true},
		{`1.1.1.1 - - [d] "HEAD /x HTTP/1.0" 200 100`, false},
		{`1.1.1.1 - - [d] "GET /x HTTP/1.0" 500 100`, false},
		{`1.1.1.1 - - [d] "GET x HTTP/1.0" 200 100`, false}, // path must start with /
		{`1.1.1.1 - - [d] "GET" 200 100`, false},
		{`no quotes here`, false},
		{`1.1.1.1 - - [d] "GET /x HTTP/1.0" abc 100`, false},
		{`1.1.1.1 - - [d] "GET /x HTTP/1.0" 200`, false}, // missing bytes
		{`1.1.1.1 - - [d] "GET /x HTTP/1.0" 200 -12`, false},
	}
	for i, tc := range cases {
		_, _, ok := parseCLFLine(tc.line)
		if ok != tc.ok {
			t.Fatalf("case %d (%q): ok = %v, want %v", i, tc.line, ok, tc.ok)
		}
	}
}
