package trace

import (
	"strings"
	"testing"
)

func TestComputeCDFOrdersByFrequency(t *testing.T) {
	tr := tinyTrace() // /a:3 reqs, /b:2, /c:1
	c := ComputeCDF(tr)
	if len(c.Files) != 3 {
		t.Fatalf("points = %d", len(c.Files))
	}
	if c.Files[0].Requests != 3 || c.Files[1].Requests != 2 || c.Files[2].Requests != 1 {
		t.Fatalf("frequency order wrong: %+v", c.Files)
	}
	if c.TotalRequests != 6 {
		t.Fatalf("TotalRequests = %d", c.TotalRequests)
	}
	if c.TotalBytes != 600 {
		t.Fatalf("TotalBytes = %d", c.TotalBytes)
	}
	if c.Files[2].CumRequests != 6 || c.Files[2].CumBytes != 600 {
		t.Fatalf("final cumulative point wrong: %+v", c.Files[2])
	}
}

func TestCDFCumulativesMonotonic(t *testing.T) {
	cfg := RiceProfile()
	cfg.Targets = 500
	cfg.Requests = 20000
	cfg.DataSetBytes = 30 << 20
	c := ComputeCDF(MustGenerate(cfg, 9))
	for i := 1; i < len(c.Files); i++ {
		if c.Files[i].CumRequests < c.Files[i-1].CumRequests {
			t.Fatal("cumulative requests decreased")
		}
		if c.Files[i].CumBytes < c.Files[i-1].CumBytes {
			t.Fatal("cumulative bytes decreased")
		}
		if c.Files[i].Requests > c.Files[i-1].Requests {
			t.Fatal("per-target requests not sorted descending")
		}
	}
}

func TestBytesToCover(t *testing.T) {
	tr := tinyTrace()
	c := ComputeCDF(tr)
	// Top target (/a, 100 bytes) covers 3/6 = 50% of requests.
	if got := c.BytesToCover(0.5); got != 100 {
		t.Fatalf("BytesToCover(0.5) = %d, want 100", got)
	}
	// 5/6 ≈ 83% needs /a + /b = 300 bytes.
	if got := c.BytesToCover(0.83); got != 300 {
		t.Fatalf("BytesToCover(0.83) = %d, want 300", got)
	}
	if got := c.BytesToCover(1.0); got != 600 {
		t.Fatalf("BytesToCover(1.0) = %d, want 600", got)
	}
	if got := c.BytesToCover(0); got != 0 {
		t.Fatalf("BytesToCover(0) = %d, want 0", got)
	}
}

func TestTopRequestShare(t *testing.T) {
	c := ComputeCDF(tinyTrace())
	if got := c.TopRequestShare(); got != 0.5 {
		t.Fatalf("TopRequestShare = %v, want 0.5", got)
	}
	empty := ComputeCDF(&Trace{Name: "empty"})
	if empty.TopRequestShare() != 0 {
		t.Fatal("empty trace TopRequestShare != 0")
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	c := ComputeCDF(tinyTrace())
	if err := c.WriteTable(&sb, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 points
		t.Fatalf("table:\n%s", out)
	}
	if !strings.HasSuffix(lines[3], "1.0000         1.0000        ") &&
		!strings.Contains(lines[3], "1.0000") {
		t.Fatalf("final row should reach 1.0: %q", lines[3])
	}
}
