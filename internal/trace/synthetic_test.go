package trace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfProbabilitiesSumToOne(t *testing.T) {
	z := NewZipf(1000, 0.9)
	var sum float64
	for i := 0; i < z.N(); i++ {
		sum += z.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z := NewZipf(100, 1.1)
	for i := 1; i < z.N(); i++ {
		if z.Prob(i) > z.Prob(i-1)+1e-12 {
			t.Fatalf("Prob(%d)=%v > Prob(%d)=%v", i, z.Prob(i), i-1, z.Prob(i-1))
		}
	}
}

func TestZipfAlphaZeroIsUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for i := 0; i < 10; i++ {
		if math.Abs(z.Prob(i)-0.1) > 1e-9 {
			t.Fatalf("Prob(%d) = %v, want 0.1", i, z.Prob(i))
		}
	}
}

func TestZipfSampleMatchesDistribution(t *testing.T) {
	z := NewZipf(50, 1.0)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 50)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Sample(rng)]++
	}
	// Empirical frequency of rank 0 within 5% relative error.
	got := float64(counts[0]) / n
	want := z.Prob(0)
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("rank-0 frequency %v, want ~%v", got, want)
	}
	// More popular ranks should dominate on aggregate.
	if counts[0] < counts[10] || counts[10] < counts[49] {
		t.Fatalf("counts not decreasing: %d, %d, %d", counts[0], counts[10], counts[49])
	}
}

func TestZipfCoverageRanks(t *testing.T) {
	z := NewZipf(100, 1.2)
	if got := z.CoverageRanks(0); got != 0 {
		t.Fatalf("CoverageRanks(0) = %d", got)
	}
	if got := z.CoverageRanks(1); got != 100 {
		t.Fatalf("CoverageRanks(1) = %d", got)
	}
	k := z.CoverageRanks(0.5)
	var sum float64
	for i := 0; i < k; i++ {
		sum += z.Prob(i)
	}
	if sum < 0.5 {
		t.Fatalf("top %d ranks cover %v < 0.5", k, sum)
	}
	if k > 1 {
		sum -= z.Prob(k - 1)
		if sum >= 0.5 {
			t.Fatalf("top %d ranks already cover %v; k not minimal", k-1, sum)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(10, -1) },
		func() { NewZipf(10, math.NaN()) },
		func() { NewZipf(10, math.Inf(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := RiceProfile()
	cfg.Targets = 500
	cfg.Requests = 5000
	cfg.DataSetBytes = 20 << 20
	a := MustGenerate(cfg, 42)
	b := MustGenerate(cfg, 42)
	if a.Len() != b.Len() || a.TargetCount() != b.TargetCount() {
		t.Fatal("same seed produced different shapes")
	}
	for i := range a.Requests {
		if a.Requests[i] != b.Requests[i] {
			t.Fatalf("request %d differs", i)
		}
	}
	c := MustGenerate(cfg, 43)
	same := true
	for i := range a.Requests {
		if a.Requests[i] != c.Requests[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical request streams")
	}
}

func TestGenerateMatchesAggregates(t *testing.T) {
	cfg := RiceProfile()
	cfg.Targets = 2000
	cfg.Requests = 50000
	cfg.DataSetBytes = 100 << 20
	tr := MustGenerate(cfg, 7)
	if tr.TargetCount() != 2000 {
		t.Fatalf("targets = %d", tr.TargetCount())
	}
	if tr.Len() != 50000 {
		t.Fatalf("requests = %d", tr.Len())
	}
	got := tr.DataSetBytes()
	want := cfg.DataSetBytes
	if math.Abs(float64(got-want))/float64(want) > 0.05 {
		t.Fatalf("data set bytes %d, want within 5%% of %d", got, want)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMinFileBytes(t *testing.T) {
	cfg := RiceProfile()
	cfg.Targets = 300
	cfg.Requests = 100
	cfg.DataSetBytes = 10 << 20
	cfg.MinFileBytes = 1024
	tr := MustGenerate(cfg, 3)
	for _, tg := range tr.Targets {
		if tg.Size < 1024 {
			t.Fatalf("target %q size %d below MinFileBytes", tg.Name, tg.Size)
		}
	}
}

func TestIBMProfileHasMoreLocalityThanRice(t *testing.T) {
	// The defining difference between Figures 5 and 6: covering a given
	// fraction of requests needs far less memory on the IBM trace.
	rice, ibm := RiceProfile(), IBMProfile()
	rice.Targets, ibm.Targets = 4000, 4000
	rice.Requests, ibm.Requests = 200000, 200000
	rice.DataSetBytes, ibm.DataSetBytes = 150<<20, 110<<20

	riceCDF := ComputeCDF(MustGenerate(rice, 1))
	ibmCDF := ComputeCDF(MustGenerate(ibm, 1))
	riceNeed := riceCDF.BytesToCover(0.97)
	ibmNeed := ibmCDF.BytesToCover(0.97)
	if ibmNeed*2 >= riceNeed {
		t.Fatalf("IBM 97%% coverage needs %d bytes, Rice needs %d; want IBM << Rice",
			ibmNeed, riceNeed)
	}
}

func TestPopularSmallBiasShrinksHotDocuments(t *testing.T) {
	cfg := IBMProfile()
	cfg.Targets = 2000
	cfg.Requests = 1000
	cfg.DataSetBytes = 50 << 20
	tr := MustGenerate(cfg, 5)
	// Average size of the 100 most popular ranks must be well below the
	// catalog average (ranks are popularity-ordered by construction).
	var hot, all int64
	for i, tg := range tr.Targets {
		if i < 100 {
			hot += tg.Size
		}
		all += tg.Size
	}
	hotAvg := float64(hot) / 100
	allAvg := float64(all) / float64(len(tr.Targets))
	if hotAvg > allAvg*0.85 {
		t.Fatalf("hot doc avg %.0f not below catalog avg %.0f", hotAvg, allAvg)
	}
	// A bias of 1 pins the very smallest sizes onto the hottest ranks.
	cfg.PopularSmallBias = 1
	tr = MustGenerate(cfg, 5)
	prev := int64(-1)
	for i := 0; i < 100; i++ {
		if tr.Targets[i].Size < prev {
			t.Fatalf("bias=1 sizes not ascending at rank %d", i)
		}
		prev = tr.Targets[i].Size
	}
}

func TestChessProfileWorkingSetFitsOneCache(t *testing.T) {
	cfg := ChessProfile()
	cfg.Requests = 10000
	tr := MustGenerate(cfg, 2)
	if tr.DataSetBytes() > 32<<20 {
		t.Fatalf("chess data set %d bytes exceeds one 32 MB node cache", tr.DataSetBytes())
	}
}

func TestScaled(t *testing.T) {
	cfg := RiceProfile()
	s := cfg.Scaled(0.1)
	if s.Requests != cfg.Requests/10 {
		t.Fatalf("Scaled requests = %d", s.Requests)
	}
	if s.Targets != cfg.Targets {
		t.Fatal("Scaled changed catalog size")
	}
	// Scaling must not move the target namespace: a scaled trace has to
	// address the same document paths as the unscaled catalog.
	full := MustGenerate(RiceProfile(), 2)
	scaled := MustGenerate(s, 2)
	if full.Targets[0].Name != scaled.Targets[0].Name {
		t.Fatalf("Scaled moved target paths: %q vs %q",
			full.Targets[0].Name, scaled.Targets[0].Name)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	cfg.Scaled(0)
}

func TestConfigValidate(t *testing.T) {
	good := RiceProfile()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*SyntheticConfig){
		func(c *SyntheticConfig) { c.Targets = 0 },
		func(c *SyntheticConfig) { c.Requests = -1 },
		func(c *SyntheticConfig) { c.DataSetBytes = 0 },
		func(c *SyntheticConfig) { c.ZipfAlpha = -0.5 },
		func(c *SyntheticConfig) { c.ParetoTail = 1.5 },
		func(c *SyntheticConfig) { c.PopularSmallBias = -0.1 },
	}
	for i, mutate := range cases {
		c := RiceProfile()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
		if _, err := Generate(c, 1); err == nil {
			t.Fatalf("case %d: Generate accepted invalid config", i)
		}
	}
}

// Property: generated traces are always valid and respect catalog bounds.
func TestPropertyGenerateValid(t *testing.T) {
	f := func(targets uint8, reqs uint8, seed int64) bool {
		cfg := SyntheticConfig{
			Name:         "prop",
			Targets:      int(targets)%200 + 1,
			Requests:     int(reqs) * 10,
			DataSetBytes: 10 << 20,
			ZipfAlpha:    1.0,
			SizeSigma:    1.2,
			MinFileBytes: 64,
		}
		tr, err := Generate(cfg, seed)
		if err != nil {
			return false
		}
		return tr.Validate() == nil && tr.Len() == cfg.Requests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
