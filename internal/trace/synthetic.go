package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SyntheticConfig describes a synthetic workload. The three profile
// constructors (RiceProfile, IBMProfile, ChessProfile) return configurations
// calibrated to the aggregate statistics the paper publishes for its traces;
// Generate turns a config into a concrete trace.
type SyntheticConfig struct {
	// Name labels the generated trace.
	Name string

	// Catalog names the target-path namespace: documents are generated at
	// "/<catalog>/doc%06d.html". Empty means Name. It must stay fixed
	// under Scaled so a scaled trace still addresses the documents of the
	// unscaled catalog (what cmd/lardbe serves).
	Catalog string

	// Targets is the catalog size (unique files).
	Targets int

	// Requests is the number of requests to draw.
	Requests int

	// DataSetBytes is the total catalog size; generated file sizes are
	// scaled so the catalog sums to (approximately) this value.
	DataSetBytes int64

	// ZipfAlpha is the popularity skew: higher alpha means a smaller
	// working set covers more of the requests (more locality).
	ZipfAlpha float64

	// ZipfShift flattens the head of the popularity distribution
	// (probability ∝ (rank+shift)^-alpha): real traces concentrate
	// requests in their body while the single hottest file stays at only
	// 1-2% of requests.
	ZipfShift float64

	// SizeSigma is the lognormal shape parameter of the file-size body.
	// Larger values widen the spread between small and large files.
	SizeSigma float64

	// ParetoTail is the fraction of files drawn from a heavy Pareto tail
	// instead of the lognormal body, producing the few very large files
	// typical of web data sets.
	ParetoTail float64

	// ParetoAlpha is the Pareto tail index (smaller = heavier tail).
	ParetoAlpha float64

	// PopularSmallBias in [0, 1] correlates popularity with small size:
	// with this probability, the next-most-popular target is assigned the
	// smallest unassigned size. The paper notes the IBM trace's "content
	// designers have likely spent effort to minimize the sizes of high
	// frequency documents"; this parameter reproduces that effect.
	PopularSmallBias float64

	// MinFileBytes clamps the smallest generated file.
	MinFileBytes int64

	// MaxFileBytes clamps the largest generated file (0 = uncapped). The
	// profiles cap at a few MB: the handful of giant archives in real
	// logs attract so few requests that they contribute negligible load,
	// and leaving them uncapped gives the synthetic trace multi-second
	// disk reads no 1998 web workload exhibited.
	MaxFileBytes int64

	// TemporalLocality in [0, 1) is the probability that a request
	// re-references one of the last TemporalWindow requests instead of
	// drawing fresh from the popularity distribution. Real server logs
	// exhibit strong temporal locality (requests for a target cluster in
	// time); purely independent sampling understates cache hit ratios and
	// overstates the per-window working set.
	TemporalLocality float64

	// TemporalWindow is the recency window for TemporalLocality
	// (default 1000 when TemporalLocality > 0).
	TemporalWindow int
}

// Validate reports whether the configuration is generatable.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Targets < 1:
		return fmt.Errorf("trace: config %q: Targets = %d, need >= 1", c.Name, c.Targets)
	case c.Requests < 0:
		return fmt.Errorf("trace: config %q: negative Requests", c.Name)
	case c.DataSetBytes < int64(c.Targets):
		return fmt.Errorf("trace: config %q: DataSetBytes %d smaller than one byte per target", c.Name, c.DataSetBytes)
	case c.ZipfAlpha < 0:
		return fmt.Errorf("trace: config %q: negative ZipfAlpha", c.Name)
	case c.ZipfShift < 0:
		return fmt.Errorf("trace: config %q: negative ZipfShift", c.Name)
	case c.ParetoTail < 0 || c.ParetoTail > 1:
		return fmt.Errorf("trace: config %q: ParetoTail %v outside [0,1]", c.Name, c.ParetoTail)
	case c.PopularSmallBias < 0 || c.PopularSmallBias > 1:
		return fmt.Errorf("trace: config %q: PopularSmallBias %v outside [0,1]", c.Name, c.PopularSmallBias)
	case c.MaxFileBytes < 0 || (c.MaxFileBytes > 0 && c.MaxFileBytes < c.MinFileBytes):
		return fmt.Errorf("trace: config %q: MaxFileBytes %d below MinFileBytes %d", c.Name, c.MaxFileBytes, c.MinFileBytes)
	case c.TemporalLocality < 0 || c.TemporalLocality >= 1:
		return fmt.Errorf("trace: config %q: TemporalLocality %v outside [0,1)", c.Name, c.TemporalLocality)
	case c.TemporalWindow < 0:
		return fmt.Errorf("trace: config %q: negative TemporalWindow", c.Name)
	}
	return nil
}

// Scaled returns a copy of the config with the request count multiplied by
// f (catalog unchanged), for fast simulation runs that preserve the
// working-set geometry. f must be positive. Only the display Name gains
// the scale suffix; the Catalog (and therefore every target path) stays
// that of the unscaled profile, so scaled traces address the same
// documents a back end serving the full catalog exposes.
func (c SyntheticConfig) Scaled(f float64) SyntheticConfig {
	if f <= 0 {
		panic("trace: non-positive scale factor")
	}
	c.Requests = int(float64(c.Requests) * f)
	if c.Requests < 1 {
		c.Requests = 1
	}
	if c.Catalog == "" {
		c.Catalog = c.Name
	}
	c.Name = fmt.Sprintf("%s(x%.3g)", c.Name, f)
	return c
}

// RiceProfile models the merged Rice University departmental logs:
// 2.3 million requests, 37703 files, 1418 MB, weak locality (Figure 5) —
// covering most requests needs several hundred MB of cache, far above a
// single node's 32 MB.
func RiceProfile() SyntheticConfig {
	return SyntheticConfig{
		Name:             "rice",
		Targets:          37703,
		Requests:         2_300_000,
		DataSetBytes:     1418 << 20,
		ZipfAlpha:        1.40,
		ZipfShift:        60,
		SizeSigma:        1.6,
		ParetoTail:       0.015,
		ParetoAlpha:      1.15,
		PopularSmallBias: 0.40,
		MinFileBytes:     128,
		MaxFileBytes:     4 << 20,
		TemporalLocality: 0.35,
		TemporalWindow:   2000,
	}
}

// IBMProfile models the www.ibm.com logs: 15.6 million requests, 38527
// files, 1029 MB, strong locality with popular documents kept small
// (Figure 6) — a small cache covers most requests.
func IBMProfile() SyntheticConfig {
	return SyntheticConfig{
		Name:             "ibm",
		Targets:          38527,
		Requests:         15_600_000,
		DataSetBytes:     1029 << 20,
		ZipfAlpha:        1.80,
		ZipfShift:        60,
		SizeSigma:        1.5,
		ParetoTail:       0.01,
		ParetoAlpha:      1.2,
		PopularSmallBias: 0.60,
		MinFileBytes:     128,
		MaxFileBytes:     4 << 20,
		TemporalLocality: 0.35,
		TemporalWindow:   2000,
	}
}

// ChessProfile models the IBM Deep Blue/Kasparov match server: a very
// large number of requests to a small set of targets whose working set
// fits in a single node's 32 MB cache — the paper's best case for WRR and
// worst case for LARD.
func ChessProfile() SyntheticConfig {
	return SyntheticConfig{
		Name:             "chess",
		Targets:          300,
		Requests:         2_000_000,
		DataSetBytes:     20 << 20,
		ZipfAlpha:        1.4,
		SizeSigma:        1.0,
		ParetoTail:       0,
		ParetoAlpha:      1.5,
		PopularSmallBias: 0.5,
		MinFileBytes:     256,
	}
}

// Generate draws a concrete trace from the configuration using the given
// seed. Identical (config, seed) pairs produce identical traces.
func Generate(cfg SyntheticConfig, seed int64) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))

	sizes := generateSizes(cfg, rng)
	sizes = assignSizesToRanks(sizes, cfg.PopularSmallBias, rng)

	catalog := cfg.Catalog
	if catalog == "" {
		catalog = cfg.Name
	}
	targets := make([]Target, cfg.Targets)
	for i := range targets {
		// Rank 0 is the most popular target.
		targets[i] = Target{Name: fmt.Sprintf("/%s/doc%06d.html", catalog, i), Size: sizes[i]}
	}

	zipf := NewZipfShifted(cfg.Targets, cfg.ZipfAlpha, cfg.ZipfShift)
	reqs := make([]int32, cfg.Requests)
	window := cfg.TemporalWindow
	if window <= 0 {
		window = 1000
	}
	for i := range reqs {
		if cfg.TemporalLocality > 0 && i > 0 && rng.Float64() < cfg.TemporalLocality {
			// Re-reference a recent request (temporal locality).
			back := rng.Intn(min(i, window))
			reqs[i] = reqs[i-1-back]
			continue
		}
		reqs[i] = int32(zipf.Sample(rng))
	}

	tr := &Trace{Name: cfg.Name, Targets: targets, Requests: reqs}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("trace: generated trace invalid: %w", err)
	}
	return tr, nil
}

// MustGenerate is Generate, panicking on error; for tests and examples with
// known-good configurations.
func MustGenerate(cfg SyntheticConfig, seed int64) *Trace {
	tr, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return tr
}

// generateSizes draws raw file sizes (lognormal body + Pareto tail) and
// rescales them so the catalog totals cfg.DataSetBytes.
func generateSizes(cfg SyntheticConfig, rng *rand.Rand) []int64 {
	raw := make([]float64, cfg.Targets)
	var sum float64
	for i := range raw {
		var s float64
		if cfg.ParetoTail > 0 && rng.Float64() < cfg.ParetoTail {
			// Pareto: x_m * U^(-1/alpha); x_m chosen as a large-file floor.
			u := rng.Float64()
			if u < 1e-9 {
				u = 1e-9
			}
			s = 100_000 * math.Pow(u, -1/cfg.ParetoAlpha)
		} else {
			// Lognormal body around a few-KB median.
			s = math.Exp(math.Log(5000) + cfg.SizeSigma*rng.NormFloat64())
		}
		raw[i] = s
		sum += s
	}
	scale := float64(cfg.DataSetBytes) / sum
	sizes := make([]int64, cfg.Targets)
	min := cfg.MinFileBytes
	if min < 1 {
		min = 1
	}
	for i, s := range raw {
		v := int64(s * scale)
		if v < min {
			v = min
		}
		if cfg.MaxFileBytes > 0 && v > cfg.MaxFileBytes {
			v = cfg.MaxFileBytes
		}
		sizes[i] = v
	}
	return sizes
}

// assignSizesToRanks orders sizes by popularity rank. With bias 0 the
// assignment is a uniform random permutation (size independent of
// popularity); with bias b, each successive rank takes the smallest
// remaining size with probability b, else a uniformly random remaining one.
func assignSizesToRanks(sizes []int64, bias float64, rng *rand.Rand) []int64 {
	n := len(sizes)
	if bias <= 0 {
		out := make([]int64, n)
		perm := rng.Perm(n)
		for i, p := range perm {
			out[i] = sizes[p]
		}
		return out
	}
	// Sort ascending, then draw: front of the remaining window = smallest.
	sorted := append([]int64(nil), sizes...)
	sortInt64s(sorted)
	out := make([]int64, 0, n)
	lo, hi := 0, n-1
	// Remaining sizes occupy sorted[lo..hi]; random picks swap to the back.
	for lo <= hi {
		if rng.Float64() < bias {
			out = append(out, sorted[lo])
			lo++
			continue
		}
		k := lo + rng.Intn(hi-lo+1)
		out = append(out, sorted[k])
		sorted[k] = sorted[lo]
		lo++
	}
	return out
}

func sortInt64s(v []int64) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}
