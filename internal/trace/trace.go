// Package trace models the tokenized request streams that drive the LARD
// paper's simulator and prototype (Section 3.2).
//
// A trace is a catalog of targets (unique objects, each with a size) plus a
// sequence of requests referencing catalog entries, exactly the paper's
// "stream of tokenized target requests where each token represents a unique
// target being served [with] a target size in bytes".
//
// The paper evaluates on logs from Rice University departmental servers,
// IBM's www.ibm.com, and the IBM Deep Blue chess-match server. Those logs
// are not available, so this package provides synthetic generators
// (synthetic.go) calibrated to the aggregate statistics and cumulative
// distribution shapes the paper publishes for each trace, plus parsers for
// real logs in Common Log Format (clf.go) for users who have their own.
package trace

import (
	"errors"
	"fmt"
)

// Target is a unique object served by the cluster: a URL plus the size in
// bytes of the object's content.
type Target struct {
	Name string
	Size int64
}

// Request is a single trace entry, resolved from the catalog.
type Request struct {
	Target string
	Size   int64
}

// Trace is a replayable request stream over a target catalog. Requests are
// stored as catalog indices to keep multi-million-request traces compact.
type Trace struct {
	Name     string
	Targets  []Target
	Requests []int32
}

// Len returns the number of requests in the trace.
func (t *Trace) Len() int { return len(t.Requests) }

// At returns the i'th request.
func (t *Trace) At(i int) Request {
	tg := t.Targets[t.Requests[i]]
	return Request{Target: tg.Name, Size: tg.Size}
}

// TargetCount returns the number of unique targets in the catalog.
func (t *Trace) TargetCount() int { return len(t.Targets) }

// DataSetBytes returns the total size of the catalog (each unique target
// counted once) — the paper's "total data set size".
func (t *Trace) DataSetBytes() int64 {
	var sum int64
	for _, tg := range t.Targets {
		sum += tg.Size
	}
	return sum
}

// TransferBytes returns the total bytes transferred when every request in
// the trace is served.
func (t *Trace) TransferBytes() int64 {
	var sum int64
	for _, idx := range t.Requests {
		sum += t.Targets[idx].Size
	}
	return sum
}

// Counts returns the number of requests per catalog index.
func (t *Trace) Counts() []int64 {
	counts := make([]int64, len(t.Targets))
	for _, idx := range t.Requests {
		counts[idx]++
	}
	return counts
}

// Slice returns a shallow copy of the trace containing only requests
// [from, to). The catalog is shared. It panics if the bounds are invalid.
func (t *Trace) Slice(from, to int) *Trace {
	if from < 0 || to > len(t.Requests) || from > to {
		panic(fmt.Sprintf("trace: invalid slice bounds [%d, %d) of %d", from, to, len(t.Requests)))
	}
	return &Trace{
		Name:     fmt.Sprintf("%s[%d:%d]", t.Name, from, to),
		Targets:  t.Targets,
		Requests: t.Requests[from:to],
	}
}

// Validate checks internal consistency: all request indices are within the
// catalog and no target has a negative size or an empty or duplicate name.
func (t *Trace) Validate() error {
	seen := make(map[string]struct{}, len(t.Targets))
	for i, tg := range t.Targets {
		if tg.Name == "" {
			return fmt.Errorf("trace %q: target %d has empty name", t.Name, i)
		}
		if tg.Size < 0 {
			return fmt.Errorf("trace %q: target %q has negative size %d", t.Name, tg.Name, tg.Size)
		}
		if _, dup := seen[tg.Name]; dup {
			return fmt.Errorf("trace %q: duplicate target %q", t.Name, tg.Name)
		}
		seen[tg.Name] = struct{}{}
	}
	for i, idx := range t.Requests {
		if idx < 0 || int(idx) >= len(t.Targets) {
			return fmt.Errorf("trace %q: request %d references target %d of %d", t.Name, i, idx, len(t.Targets))
		}
	}
	return nil
}

// String summarizes the trace in the style of the paper's Figure 5/6
// captions ("2.3 million reqs, 37703 files, 1418 MB total").
func (t *Trace) String() string {
	return fmt.Sprintf("%s: %.1f million reqs, %d files, %d MB total",
		t.Name, float64(len(t.Requests))/1e6, len(t.Targets), t.DataSetBytes()>>20)
}

// Merge concatenates the request streams of several traces over a combined
// catalog, modelling the paper's merged departmental logs. Targets with the
// same name must have the same size.
func Merge(name string, traces ...*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, errors.New("trace: Merge needs at least one trace")
	}
	merged := &Trace{Name: name}
	index := make(map[string]int32)
	for _, tr := range traces {
		remap := make([]int32, len(tr.Targets))
		for i, tg := range tr.Targets {
			if j, ok := index[tg.Name]; ok {
				if merged.Targets[j].Size != tg.Size {
					return nil, fmt.Errorf("trace: target %q has conflicting sizes %d and %d",
						tg.Name, merged.Targets[j].Size, tg.Size)
				}
				remap[i] = j
				continue
			}
			j := int32(len(merged.Targets))
			merged.Targets = append(merged.Targets, tg)
			index[tg.Name] = j
			remap[i] = j
		}
		for _, idx := range tr.Requests {
			merged.Requests = append(merged.Requests, remap[idx])
		}
	}
	return merged, nil
}
