package httprelay

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// relayChunked forwards one chunked message body — every chunk, the
// terminating zero chunk, and any trailer section — from br to dst,
// preserving the sender's framing byte for byte. Parsing the chunk sizes
// is what lets the relay know where the body ends, so a chunked response
// no longer downgrades the connection to copy-until-close. It returns
// the number of body bytes forwarded (framing included).
func relayChunked(dst io.Writer, br *bufio.Reader) (int64, error) {
	var total int64
	write := func(p []byte) error {
		n, err := dst.Write(p)
		total += int64(n)
		return err
	}
	for {
		line, err := readLine(br, maxLineBytes)
		if err != nil {
			return total, chunkErr(err, "reading chunk size")
		}
		size, err := parseChunkSize(trimCRLF(string(line)))
		if err != nil {
			return total, err
		}
		if err := write(line); err != nil {
			return total, err
		}
		if size == 0 {
			break
		}
		n, err := copyNBuffered(dst, br, size)
		total += n
		if err != nil {
			return total, chunkErr(err, "copying chunk data")
		}
		// Each chunk's data is followed by its own CRLF.
		term, err := readLine(br, maxLineBytes)
		if err != nil {
			return total, chunkErr(err, "reading chunk terminator")
		}
		if trimCRLF(string(term)) != "" {
			return total, malformedf("chunk data not followed by CRLF")
		}
		if err := write(term); err != nil {
			return total, err
		}
	}
	// Trailer section: zero or more header lines, then a blank line.
	for {
		line, err := readLine(br, maxLineBytes)
		if err != nil {
			return total, chunkErr(err, "reading chunk trailers")
		}
		if err := write(line); err != nil {
			return total, err
		}
		if trimCRLF(string(line)) == "" {
			return total, nil
		}
	}
}

// parseChunkSize parses a chunk-size line: hex digits optionally followed
// by ";ext" chunk extensions, which are ignored.
func parseChunkSize(line string) (int64, error) {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = trimOWS(line[:i])
	}
	if line == "" {
		return 0, malformedf("empty chunk size")
	}
	n, err := strconv.ParseUint(line, 16, 63)
	if err != nil {
		return 0, malformedf("invalid chunk size %q", line)
	}
	return int64(n), nil
}

// chunkErr wraps transport errors inside chunked framing; malformed
// errors pass through untouched.
func chunkErr(err error, doing string) error {
	if _, ok := err.(*MalformedError); ok {
		return err
	}
	return malformedf("%s: %v", doing, err)
}
