package httprelay

import (
	"bufio"
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func reqReader(s string) *bufio.Reader { return bufio.NewReader(strings.NewReader(s)) }

func TestReadRequestHeadTable(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want RequestHead // Raw ignored; zero want + wantErr checks rejection
		err  bool
	}{
		{
			name: "http11 defaults keep-alive",
			in:   "GET /x HTTP/1.1\r\nHost: h\r\n\r\n",
			want: RequestHead{Method: "GET", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1, KeepAlive: true},
		},
		{
			name: "http10 defaults close",
			in:   "GET /x HTTP/1.0\r\nHost: h\r\n\r\n",
			want: RequestHead{Method: "GET", Target: "/x", Proto: "HTTP/1.0", Major: 1, Minor: 0},
		},
		{
			name: "http10 keep-alive token",
			in:   "GET /x HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
			want: RequestHead{Method: "GET", Target: "/x", Proto: "HTTP/1.0", Major: 1, Minor: 0, KeepAlive: true},
		},
		{
			name: "connection token list",
			in:   "GET /x HTTP/1.1\r\nConnection: TE, close\r\n\r\n",
			want: RequestHead{Method: "GET", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1},
		},
		{
			name: "close beats keep-alive",
			in:   "GET /x HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n",
			want: RequestHead{Method: "GET", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1},
		},
		{
			name: "content length",
			in:   "POST /x HTTP/1.1\r\nContent-Length: 12\r\n\r\n",
			want: RequestHead{Method: "POST", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1, ContentLength: 12, KeepAlive: true},
		},
		{
			name: "duplicate equal content lengths fold",
			in:   "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\n",
			want: RequestHead{Method: "POST", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1, ContentLength: 5, KeepAlive: true},
		},
		{
			name: "comma list equal content lengths fold",
			in:   "POST /x HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\n",
			want: RequestHead{Method: "POST", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1, ContentLength: 5, KeepAlive: true},
		},
		{
			name: "chunked request",
			in:   "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
			want: RequestHead{Method: "POST", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1, Chunked: true, KeepAlive: true},
		},
		{
			name: "expect 100-continue",
			in:   "POST /x HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 3\r\n\r\n",
			want: RequestHead{Method: "POST", Target: "/x", Proto: "HTTP/1.1", Major: 1, Minor: 1, ContentLength: 3, KeepAlive: true, ExpectContinue: true},
		},
		// The smuggling shapes: all must be rejected, never forwarded.
		{name: "negative content length", in: "POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n", err: true},
		{name: "plus-signed content length", in: "POST /x HTTP/1.1\r\nContent-Length: +5\r\n\r\n", err: true},
		{name: "trailing garbage content length", in: "POST /x HTTP/1.1\r\nContent-Length: 5 GET /evil HTTP/1.1\r\n\r\n", err: true},
		{name: "hex content length", in: "POST /x HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n", err: true},
		{name: "conflicting duplicate content lengths", in: "POST /x HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n", err: true},
		{name: "conflicting comma list", in: "POST /x HTTP/1.1\r\nContent-Length: 5, 6\r\n\r\n", err: true},
		{name: "cl plus te", in: "POST /x HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n", err: true},
		{name: "unknown transfer coding", in: "POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", err: true},
		{name: "chunked not final", in: "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked, gzip\r\n\r\n", err: true},
		{name: "obsolete line folding", in: "GET /x HTTP/1.1\r\nX-A: b\r\n    folded\r\n\r\n", err: true},
		{name: "header without colon", in: "GET /x HTTP/1.1\r\nNONSENSE\r\n\r\n", err: true},
		{name: "space before colon hides header", in: "POST /x HTTP/1.1\r\nContent-Length : 5\r\n\r\nAAAAA", err: true},
		{name: "tab before colon hides header", in: "POST /x HTTP/1.1\r\nContent-Length\t: 5\r\n\r\nAAAAA", err: true},
		{name: "malformed request line", in: "NONSENSE\r\n\r\n", err: true},
		{name: "malformed version", in: "GET /x HTTP/one.one\r\n\r\n", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ReadRequestHead(reqReader(tc.in), 1<<16)
			if tc.err {
				if err == nil {
					t.Fatalf("accepted %q: %+v", tc.in, h)
				}
				if _, ok := err.(*MalformedError); !ok {
					t.Fatalf("error %v is not a MalformedError", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("rejected %q: %v", tc.in, err)
			}
			if string(h.Raw) != tc.in {
				t.Fatalf("raw = %q, want %q", h.Raw, tc.in)
			}
			h.Raw = nil
			if !reflect.DeepEqual(h, tc.want) {
				t.Fatalf("head = %+v, want %+v", h, tc.want)
			}
		})
	}
}

func TestReadRequestHeadPipelining(t *testing.T) {
	two := "GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n"
	br := reqReader(two)
	h1, err := ReadRequestHead(br, 1<<16)
	if err != nil || h1.Target != "/a" {
		t.Fatalf("first head: %+v, %v", h1, err)
	}
	h2, err := ReadRequestHead(br, 1<<16)
	if err != nil || h2.Target != "/b" {
		t.Fatalf("second head: %+v, %v", h2, err)
	}
	if _, err := ReadRequestHead(br, 1<<16); err != io.EOF {
		t.Fatalf("end of pipeline: %v, want io.EOF", err)
	}
}

func TestReadRequestHeadLimits(t *testing.T) {
	big := "GET /x HTTP/1.1\r\n" + strings.Repeat("A: b\r\n", 1000) + "\r\n"
	if _, err := ReadRequestHead(reqReader(big), 256); err == nil {
		t.Fatal("oversized head accepted")
	}
	// A single unterminated line must not be buffered without bound.
	if _, err := ReadRequestHead(reqReader("GET /x HTTP/1.1\r\n"+strings.Repeat("a", 1<<12)), 256); err == nil {
		t.Fatal("unterminated oversized line accepted")
	}
	// Truncated mid-head is not a clean EOF.
	if _, err := ReadRequestHead(reqReader("GET /x HTTP/1.1\r\nHost:"), 1<<16); err == nil || err == io.EOF {
		t.Fatalf("truncated head: %v", err)
	}
}

func TestReadResponseHeadTable(t *testing.T) {
	cases := []struct {
		name      string
		in        string
		status    int
		cl        int64
		chunked   bool
		keepAlive bool
		err       bool
	}{
		{name: "http11 with length", in: "HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\n", status: 200, cl: 4, keepAlive: true},
		{name: "http11 no length", in: "HTTP/1.1 200 OK\r\n\r\n", status: 200, cl: -1, keepAlive: true},
		{name: "http10 default close", in: "HTTP/1.0 200 OK\r\nContent-Length: 4\r\n\r\n", status: 200, cl: 4, keepAlive: false},
		{name: "http10 keep-alive token", in: "HTTP/1.0 200 OK\r\nConnection: keep-alive\r\nContent-Length: 4\r\n\r\n", status: 200, cl: 4, keepAlive: true},
		{name: "http11 connection close", in: "HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 4\r\n\r\n", status: 200, cl: 4, keepAlive: false},
		{name: "chunked", in: "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n", status: 200, cl: -1, chunked: true, keepAlive: true},
		{name: "chunked wins over length", in: "HTTP/1.1 200 OK\r\nContent-Length: 10\r\nTransfer-Encoding: chunked\r\n\r\n", status: 200, cl: -1, chunked: true, keepAlive: true},
		{name: "no reason phrase", in: "HTTP/1.1 204\r\n\r\n", status: 204, cl: -1, keepAlive: true},
		{name: "interim", in: "HTTP/1.1 100 Continue\r\n\r\n", status: 100, cl: -1, keepAlive: true},
		{name: "unknown coding falls back to close-delimited", in: "HTTP/1.1 200 OK\r\nTransfer-Encoding: gzip\r\n\r\n", status: 200, cl: -1, chunked: false, keepAlive: false},
		{name: "chunked not final falls back to close-delimited", in: "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked, gzip\r\n\r\n", status: 200, cl: -1, chunked: false, keepAlive: false},
		{name: "bad status", in: "HTTP/1.1 20 OK\r\n\r\n", err: true},
		{name: "no status", in: "HTTP/1.1\r\n\r\n", err: true},
		{name: "conflicting lengths", in: "HTTP/1.1 200 OK\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n", err: true},
		{name: "space before colon", in: "HTTP/1.1 200 OK\r\nContent-Length : 5\r\n\r\n", err: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, err := ReadResponseHead(reqReader(tc.in), 1<<16)
			if tc.err {
				if err == nil {
					t.Fatalf("accepted %q: %+v", tc.in, h)
				}
				return
			}
			if err != nil {
				t.Fatalf("rejected %q: %v", tc.in, err)
			}
			if h.Status != tc.status || h.ContentLength != tc.cl || h.Chunked != tc.chunked || h.KeepAlive != tc.keepAlive {
				t.Fatalf("head = %+v", h)
			}
			if string(h.Raw) != tc.in {
				t.Fatalf("raw = %q", h.Raw)
			}
		})
	}
}

func TestBodilessStatus(t *testing.T) {
	for _, st := range []int{100, 101, 199, 204, 304} {
		if !(ResponseHead{Status: st}).BodilessStatus() {
			t.Fatalf("status %d should be bodiless", st)
		}
	}
	for _, st := range []int{200, 203, 205, 206, 301, 303, 400, 500} {
		if (ResponseHead{Status: st}).BodilessStatus() {
			t.Fatalf("status %d should have a body", st)
		}
	}
}

func TestRelayResponseTable(t *testing.T) {
	const chunkedBody = "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n"
	cases := []struct {
		name     string
		in       string // backend bytes
		method   string
		out      string // bytes the client must receive
		reusable bool
	}{
		{
			name:     "content-length",
			in:       "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello" + "JUNK-NEXT-RESPONSE",
			method:   "GET",
			out:      "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello",
			reusable: true,
		},
		{
			name:     "chunked relays without downgrade",
			in:       "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + chunkedBody + "NEXT",
			method:   "GET",
			out:      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" + chunkedBody,
			reusable: true,
		},
		{
			name:     "chunked with extensions and trailers",
			in:       "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\nNEXT",
			method:   "GET",
			out:      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n",
			reusable: true,
		},
		{
			name:     "204 no body",
			in:       "HTTP/1.1 204 No Content\r\n\r\nNEXT",
			method:   "GET",
			out:      "HTTP/1.1 204 No Content\r\n\r\n",
			reusable: true,
		},
		{
			name:     "304 ignores content-length",
			in:       "HTTP/1.1 304 Not Modified\r\nContent-Length: 1234\r\n\r\nNEXT",
			method:   "GET",
			out:      "HTTP/1.1 304 Not Modified\r\nContent-Length: 1234\r\n\r\n",
			reusable: true,
		},
		{
			name:     "HEAD ignores content-length",
			in:       "HTTP/1.1 200 OK\r\nContent-Length: 1234\r\n\r\nNEXT",
			method:   "HEAD",
			out:      "HTTP/1.1 200 OK\r\nContent-Length: 1234\r\n\r\n",
			reusable: true,
		},
		{
			name:     "interim 1xx then final",
			in:       "HTTP/1.1 102 Processing\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokNEXT",
			method:   "GET",
			out:      "HTTP/1.1 102 Processing\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok",
			reusable: true,
		},
		{
			name:     "http10 without keep-alive is not reusable",
			in:       "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok",
			method:   "GET",
			out:      "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\nok",
			reusable: false,
		},
		{
			name:     "unknown length copies until close",
			in:       "HTTP/1.1 200 OK\r\n\r\neverything until EOF",
			method:   "GET",
			out:      "HTTP/1.1 200 OK\r\n\r\neverything until EOF",
			reusable: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var client bytes.Buffer
			n, reusable, err := RelayResponse(&client, reqReader(tc.in), tc.method, 1<<16, nil)
			if err != nil {
				t.Fatal(err)
			}
			if client.String() != tc.out {
				t.Fatalf("client received %q, want %q", client.String(), tc.out)
			}
			if n != int64(len(tc.out)) {
				t.Fatalf("written = %d, want %d", n, len(tc.out))
			}
			if reusable != tc.reusable {
				t.Fatalf("reusable = %v, want %v", reusable, tc.reusable)
			}
		})
	}
}

func TestRelayResponse100Continue(t *testing.T) {
	backend := "HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
	var client bytes.Buffer
	fired := 0
	_, reusable, err := RelayResponse(&client, reqReader(backend), "POST", 1<<16, func() error {
		fired++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("on100 fired %d times", fired)
	}
	if !reusable {
		t.Fatal("connection not reusable after 100 + final")
	}
	if got := client.String(); got != backend {
		t.Fatalf("client received %q", got)
	}
	// The 100 head must have been relayed before on100 ran — verified by
	// prefix: on100 appends nothing here, but ordering is observable via
	// a writer-side check.
	var ordered bytes.Buffer
	RelayResponse(&ordered, reqReader(backend), "POST", 1<<16, func() error {
		if !strings.HasPrefix(ordered.String(), "HTTP/1.1 100 Continue\r\n\r\n") {
			t.Fatalf("on100 ran before the 100 head was relayed: %q", ordered.String())
		}
		return nil
	})
}

func TestRelayRequestBody(t *testing.T) {
	// Length-delimited.
	var dst bytes.Buffer
	h := RequestHead{ContentLength: 5}
	if n, err := RelayRequestBody(&dst, reqReader("helloNEXT"), h); err != nil || n != 5 || dst.String() != "hello" {
		t.Fatalf("identity body: n=%d err=%v got=%q", n, err, dst.String())
	}
	// Chunked.
	dst.Reset()
	ch := "3\r\nabc\r\n0\r\n\r\n"
	if n, err := RelayRequestBody(&dst, reqReader(ch+"NEXT"), RequestHead{Chunked: true}); err != nil || dst.String() != ch {
		t.Fatalf("chunked body: n=%d err=%v got=%q", n, err, dst.String())
	}
	// Bodiless.
	dst.Reset()
	if n, err := RelayRequestBody(&dst, reqReader("NEXT"), RequestHead{}); err != nil || n != 0 || dst.Len() != 0 {
		t.Fatalf("bodiless: n=%d err=%v got=%q", n, err, dst.String())
	}
}

func TestRelayChunkedMalformed(t *testing.T) {
	for _, in := range []string{
		"zz\r\nabc\r\n0\r\n\r\n",    // non-hex size
		"\r\nabc\r\n0\r\n\r\n",      // empty size
		"3\r\nabcXX0\r\n\r\n",       // missing chunk terminator CRLF
		"ffffffffffffffff\r\nx\r\n", // size overflow
	} {
		var dst bytes.Buffer
		if _, err := relayChunked(&dst, reqReader(in)); err == nil {
			t.Fatalf("accepted malformed chunked body %q", in)
		}
	}
	// Truncated mid-chunk is an error, not silent success.
	var dst bytes.Buffer
	if _, err := relayChunked(&dst, reqReader("10\r\nshort")); err == nil {
		t.Fatal("accepted truncated chunk")
	}
}

func TestParseRequestLineTable(t *testing.T) {
	cases := []struct {
		in                    string
		method, target, proto string
		ok                    bool
	}{
		{"GET / HTTP/1.1", "GET", "/", "HTTP/1.1", true},
		{"GET /a/b?q=1 HTTP/1.0", "GET", "/a/b?q=1", "HTTP/1.0", true},
		{"POST /form HTTP/1.1", "POST", "/form", "HTTP/1.1", true},
		{"GET /odd path HTTP/1.1", "GET", "/odd path", "HTTP/1.1", true},
		{"GET", "", "", "", false},
		{"GET /x", "", "", "", false},
		{"", "", "", "", false},
	}
	for _, tc := range cases {
		m, tg, p, ok := ParseRequestLine(tc.in)
		if ok != tc.ok || m != tc.method || tg != tc.target || p != tc.proto {
			t.Fatalf("ParseRequestLine(%q) = (%q,%q,%q,%v)", tc.in, m, tg, p, ok)
		}
	}
}

func TestRequestHeadHelpers(t *testing.T) {
	if (RequestHead{ContentLength: 5}).Size() != 5 {
		t.Fatal("Size with length")
	}
	if (RequestHead{Chunked: true, ContentLength: 5}).Size() != 0 {
		t.Fatal("Size with chunked")
	}
	if !(RequestHead{Chunked: true}).HasBody() || !(RequestHead{ContentLength: 1}).HasBody() || (RequestHead{}).HasBody() {
		t.Fatal("HasBody")
	}
}
