// Package httprelay implements the HTTP/1.x framing the front end needs
// on its persistent-connection relay path (paper Section 5).
//
// The paper's re-handoff design — "the front end ... hands off a
// connection multiple times, so that different requests on the same
// connection can be served by different back ends" — requires the front
// end to know exactly where each request and each response ends, because
// between two messages the connection must be quiescent enough to hand
// off. This package is that framing layer, shared by the front end's
// dispatch parser, the re-handoff relay, and the load generator's raw
// persistent-connection client:
//
//   - request heads with strict Content-Length parsing (digits only,
//     no negatives, conflicting duplicates rejected — the
//     request-smuggling shapes surface as MalformedError, which the
//     front end answers with 400 instead of forwarding verbatim);
//   - Connection header token-list parsing ("keep-alive, TE" is a list,
//     not a literal) and version-aware keep-alive defaults (HTTP/1.1
//     defaults to persistent, HTTP/1.0 to close);
//   - chunked transfer framing relayed chunk by chunk — the relay knows
//     where the body ends without downgrading the connection to
//     copy-until-close;
//   - bodiless responses (1xx, 204, 304, and any response to HEAD) and
//     100 Continue interleaving;
//   - pipelined requests: readers consume exactly one message, leaving
//     any follow-on bytes buffered for the next read.
package httprelay

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// MalformedError reports a message that violates HTTP framing rules in a
// way the relay must not paper over (request smuggling shapes included).
// The front end maps request-side MalformedErrors to 400 responses.
type MalformedError struct {
	Reason string
}

func (e *MalformedError) Error() string { return "httprelay: malformed message: " + e.Reason }

func malformedf(format string, args ...any) error {
	return &MalformedError{Reason: fmt.Sprintf(format, args...)}
}

// maxLineBytes bounds any single line read outside the head-size budget
// (chunk-size lines and trailer lines).
const maxLineBytes = 16 << 10

// readLine reads one line through its '\n' terminator, erroring once the
// line exceeds max bytes, so a peer cannot grow a single unterminated
// line without bound.
func readLine(br *bufio.Reader, max int) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		line = append(line, frag...)
		if len(line) > max {
			return nil, malformedf("line exceeds %d bytes", max)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		return line, err
	}
}

// trimCRLF strips trailing CR/LF bytes.
func trimCRLF(s string) string {
	for len(s) > 0 && (s[len(s)-1] == '\n' || s[len(s)-1] == '\r') {
		s = s[:len(s)-1]
	}
	return s
}

// splitHeader splits "Name: value" into a lower-cased name and a
// whitespace-trimmed value. A name containing whitespace ("Name : v")
// is rejected, not trimmed: RFC 7230 §3.2.4 mandates treating it as an
// error, because a relay that ignores such a header while forwarding it
// verbatim lets a lenient peer honor a field this parser never saw —
// the message-boundary desync behind request smuggling.
func splitHeader(line string) (name, value string, ok bool) {
	i := strings.IndexByte(line, ':')
	if i < 0 {
		return "", "", false
	}
	name = line[:i]
	if strings.ContainsAny(name, " \t") {
		return "", "", false
	}
	return strings.ToLower(name), trimOWS(line[i+1:]), true
}

// trimOWS trims optional whitespace (SP / HTAB) from both ends.
func trimOWS(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

// tokens splits a comma-separated header value into lower-cased,
// OWS-trimmed tokens, dropping empty elements ("a,, b" yields "a", "b").
func tokens(value string) []string {
	parts := strings.Split(value, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.ToLower(trimOWS(p)); t != "" {
			out = append(out, t)
		}
	}
	return out
}

// hasToken reports whether the comma-list value contains the (lower-case)
// token.
func hasToken(value, token string) bool {
	for _, t := range tokens(value) {
		if t == token {
			return true
		}
	}
	return false
}

// parseContentLength parses one strict Content-Length value: ASCII digits
// only, so "+5", "-1", "0x10", and "5 GET /" are all rejected rather than
// truncated or sign-extended. The header value may be a comma-separated
// list of identical copies (the shape proxies produce when folding
// duplicate headers); differing members are a smuggling shape and are
// rejected.
func parseContentLength(value string, prev int64, seen bool) (int64, error) {
	members := tokens(value)
	if len(members) == 0 {
		return 0, malformedf("empty Content-Length")
	}
	n := prev
	have := seen
	for _, m := range members {
		for i := 0; i < len(m); i++ {
			if m[i] < '0' || m[i] > '9' {
				return 0, malformedf("invalid Content-Length %q", value)
			}
		}
		v, err := strconv.ParseInt(m, 10, 64)
		if err != nil {
			return 0, malformedf("invalid Content-Length %q: %v", value, err)
		}
		if have && v != n {
			return 0, malformedf("conflicting Content-Length values %d and %d", n, v)
		}
		n, have = v, true
	}
	return n, nil
}

// parseHTTPVersion parses "HTTP/major.minor".
func parseHTTPVersion(proto string) (major, minor int, ok bool) {
	const prefix = "HTTP/"
	if !strings.HasPrefix(proto, prefix) {
		return 0, 0, false
	}
	rest := proto[len(prefix):]
	dot := strings.IndexByte(rest, '.')
	if dot <= 0 || dot == len(rest)-1 {
		return 0, 0, false
	}
	maj, err1 := strconv.Atoi(rest[:dot])
	mnr, err2 := strconv.Atoi(rest[dot+1:])
	if err1 != nil || err2 != nil || maj < 0 || mnr < 0 {
		return 0, 0, false
	}
	return maj, mnr, true
}

// atLeast11 reports whether an HTTP version is 1.1 or newer — the
// versions whose connections default to persistent.
func atLeast11(major, minor int) bool {
	return major > 1 || (major == 1 && minor >= 1)
}
