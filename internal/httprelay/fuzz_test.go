package httprelay

// Fuzz targets for the two parsers that stand between untrusted client
// bytes and a back end: the request-head reader and the chunked-body
// relay. Both are desync-sensitive — the relay forwards the very bytes
// it parsed, so any disagreement between "what was consumed" and "what
// was forwarded" is a request-smuggling primitive, which is why the
// invariants below are byte-exact prefix equalities rather than mere
// doesn't-crash checks.
//
// CI runs each target for a short smoke window (-fuzz -fuzztime=10s);
// the committed corpus under testdata/fuzz seeds it with the smuggling
// shapes from the table-driven tests.

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReadRequestHead checks the head parser's error contract and
// consumed-prefix identity on arbitrary input.
func FuzzReadRequestHead(f *testing.F) {
	seeds := []string{
		"GET /index.html HTTP/1.1\r\nHost: a\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
		"POST /u HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: +5\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: 5 GET /evil HTTP/1.1\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: 5, 6\r\n\r\n",
		"POST /u HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n",
		"POST /u HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n",
		"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked, gzip\r\n\r\n",
		"GET / HTTP/1.1\r\nX-Long: a\r\n b\r\n\r\n",
		"GET / HTTP/1.1\r\nNONSENSE\r\n\r\n",
		"GET / HTTP/1.1\r\nContent-Length : 5\r\n\r\n",
		"GET / HTTP/1.1\r\nHost\t: a\r\n\r\n",
		"GET\r\n\r\n",
		"GET / HTTP/one.one\r\n\r\n",
		"\r\n\r\nGET / HTTP/1.1\r\n\r\n",
		"",
		"GET / HTT",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		under := bytes.NewReader(data)
		br := bufio.NewReader(under)
		h, err := ReadRequestHead(br, 1<<14)
		consumed := len(data) - br.Buffered() - under.Len()
		if err != nil {
			var malformed *MalformedError
			if !errors.As(err, &malformed) {
				// The only transport error a bytes.Reader produces is a
				// clean EOF, and the contract passes that through only
				// when nothing was received.
				if err != io.EOF {
					t.Fatalf("non-malformed, non-EOF error: %v", err)
				}
				if len(data) != 0 {
					t.Fatalf("bare io.EOF after %d bytes of input", len(data))
				}
			}
			return
		}
		// Desync check 1: Raw is exactly the bytes consumed from the
		// stream — what gets forwarded is what was parsed.
		if !bytes.Equal(h.Raw, data[:consumed]) {
			t.Fatalf("Raw != consumed prefix:\nraw:      %q\nconsumed: %q", h.Raw, data[:consumed])
		}
		// Desync check 2: re-parsing the forwarded bytes yields the
		// identical head, so the back end cannot disagree with the relay.
		under2 := bytes.NewReader(h.Raw)
		br2 := bufio.NewReader(under2)
		h2, err2 := ReadRequestHead(br2, 1<<14)
		if err2 != nil {
			t.Fatalf("re-parsing forwarded head failed: %v\nraw: %q", err2, h.Raw)
		}
		if rest := br2.Buffered() + under2.Len(); rest != 0 {
			t.Fatalf("re-parse left %d bytes unconsumed of %q", rest, h.Raw)
		}
		if h2.Method != h.Method || h2.Target != h.Target || h2.Proto != h.Proto ||
			h2.ContentLength != h.ContentLength || h2.Chunked != h.Chunked ||
			h2.KeepAlive != h.KeepAlive || h2.ExpectContinue != h.ExpectContinue ||
			!bytes.Equal(h2.Raw, h.Raw) {
			t.Fatalf("re-parse disagrees:\nfirst:  %+v\nsecond: %+v", h, h2)
		}
	})
}

// FuzzChunkedRelay checks that the chunked-body relay forwards exactly
// the bytes it consumed and classifies every failure as malformed.
func FuzzChunkedRelay(f *testing.F) {
	seeds := []string{
		"0\r\n\r\n",
		"5\r\nhello\r\n0\r\n\r\n",
		"5;ext=1\r\nhello\r\n0\r\n\r\n",
		"5\r\nhello\r\n0\r\nTrailer: v\r\n\r\n",
		"5\r\nhello\r\n0\r\n",
		"5\r\nhell",
		"-5\r\nhello\r\n0\r\n\r\n",
		"0x5\r\nhello\r\n0\r\n\r\n",
		"ffffffffffffffff\r\n",
		"5\r\nhelloX\r\n0\r\n\r\n",
		"",
		"zz\r\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		under := bytes.NewReader(data)
		br := bufio.NewReader(under)
		var dst bytes.Buffer
		total, err := relayChunked(&dst, br)
		if total != int64(dst.Len()) {
			t.Fatalf("reported %d forwarded bytes, wrote %d", total, dst.Len())
		}
		if err != nil {
			var malformed *MalformedError
			if !errors.As(err, &malformed) {
				t.Fatalf("relayChunked error is not malformed: %v", err)
			}
			return
		}
		// Success: output is the exact consumed prefix, and relaying the
		// forwarded bytes again reproduces them — the next hop sees the
		// same body boundary.
		consumed := len(data) - br.Buffered() - under.Len()
		if !bytes.Equal(dst.Bytes(), data[:consumed]) {
			t.Fatalf("forwarded bytes != consumed prefix:\nforwarded: %q\nconsumed:  %q", dst.Bytes(), data[:consumed])
		}
		var dst2 bytes.Buffer
		if _, err := relayChunked(&dst2, bufio.NewReader(strings.NewReader(dst.String()))); err != nil {
			t.Fatalf("re-relaying forwarded body failed: %v\nbody: %q", err, dst.Bytes())
		}
		if !bytes.Equal(dst2.Bytes(), dst.Bytes()) {
			t.Fatalf("re-relay disagrees:\nfirst:  %q\nsecond: %q", dst.Bytes(), dst2.Bytes())
		}
	})
}
