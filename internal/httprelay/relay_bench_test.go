package httprelay

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// plainWriter strips io.ReaderFrom from its underlying writer, so the
// benchmark exercises the relay's own copy loop the way the front end's
// writeTracker-wrapped client conn does when no kernel path is available.
type plainWriter struct{ w io.Writer }

func (p plainWriter) Write(b []byte) (int, error) { return p.w.Write(b) }

// BenchmarkRelayResponse measures one response relayed through
// RelayResponse — head parse plus body copy — for each body framing the
// relay supports. The interesting number is allocs/op: with pooled copy
// buffers and no per-message scratch, steady-state relaying should not
// allocate per response beyond the parsed head itself.
func BenchmarkRelayResponse(b *testing.B) {
	const bodyLen = 64 << 10
	body := strings.Repeat("x", bodyLen)

	chunked := func() string {
		var sb strings.Builder
		sb.WriteString("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n")
		for off := 0; off < bodyLen; off += 8 << 10 {
			chunk := body[off : off+8<<10]
			fmt.Fprintf(&sb, "%x\r\n%s\r\n", len(chunk), chunk)
		}
		sb.WriteString("0\r\n\r\n")
		return sb.String()
	}()

	cases := []struct {
		name string
		msg  string
	}{
		{"content-length", fmt.Sprintf("HTTP/1.1 200 OK\r\nContent-Length: %d\r\nConnection: keep-alive\r\n\r\n%s", bodyLen, body)},
		{"chunked", chunked},
		{"close-delimited", "HTTP/1.1 200 OK\r\nConnection: close\r\n\r\n" + body},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			msg := []byte(tc.msg)
			r := bytes.NewReader(msg)
			br := bufio.NewReaderSize(r, 16<<10)
			dst := plainWriter{io.Discard}
			b.SetBytes(int64(len(msg)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Reset(msg)
				br.Reset(r)
				if _, _, err := RelayResponse(dst, br, "GET", 64<<10, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRelayRequestBody measures the request-direction body copy
// (client→backend), which on the pooled handoff path feeds the framing
// SessionWriter rather than a raw conn.
func BenchmarkRelayRequestBody(b *testing.B) {
	const bodyLen = 16 << 10
	body := strings.Repeat("y", bodyLen)
	msg := []byte(fmt.Sprintf("PUT /d HTTP/1.1\r\nHost: b\r\nContent-Length: %d\r\n\r\n%s", bodyLen, body))

	r := bytes.NewReader(msg)
	br := bufio.NewReaderSize(r, 16<<10)
	dst := plainWriter{io.Discard}
	b.SetBytes(int64(len(msg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(msg)
		br.Reset(r)
		head, err := ReadRequestHead(br, 64<<10)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RelayRequestBody(dst, br, head); err != nil {
			b.Fatal(err)
		}
	}
}
