package httprelay

import (
	"bufio"
	"io"
	"sync"
)

// This file is the relay's copy machinery. Two costs matter on the hot
// path:
//
//   - allocation: io.Copy/io.CopyN allocate a fresh 32 KiB buffer
//     whenever neither end offers a kernel path, which on the relay
//     means one buffer per response body (and per chunk run). The pools
//     here make steady-state relaying allocation-free.
//   - userspace copying: when both ends are TCP connections, Go's
//     TCPConn.ReadFrom can splice bytes kernel-side — but only when the
//     source it sees is the *raw* connection (or an io.LimitedReader
//     around one), not a bufio.Reader. The ...Buffered helpers and the
//     body-copy functions in response.go are arranged so that once the
//     parse buffer is drained, the remaining body bytes are copied
//     straight from the raw conn and the splice path can engage.

// copyBufSize matches io.Copy's internal buffer size.
const copyBufSize = 32 << 10

// copyBufPool recycles the relay's copy buffers.
var copyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, copyBufSize)
		return &b
	},
}

// copyBuffered is io.Copy with a pooled buffer. Like io.Copy it defers
// to src.WriteTo / dst.ReadFrom when available — the pooled buffer is
// then unused and the kernel path (splice/sendfile) may engage.
//
//lard:noalloc
func copyBuffered(dst io.Writer, src io.Reader) (int64, error) {
	bp := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(dst, src, *bp)
	copyBufPool.Put(bp)
	return n, err
}

// limitedReaderPool recycles the io.LimitedReader wrappers copyNBuffered
// builds per body copy; io.LimitReader would heap-allocate one each call.
var limitedReaderPool = sync.Pool{
	New: func() any { return new(io.LimitedReader) },
}

// copyNBuffered is io.CopyN with a pooled buffer: exactly n bytes or an
// error, io.EOF when src ends early (io.CopyN's contract). The
// *io.LimitedReader it hands to copyBuffered is the shape
// TCPConn.ReadFrom recognizes for a bounded splice — and it comes from a
// pool, so a content-length body copy allocates nothing here.
//
//lard:noalloc
func copyNBuffered(dst io.Writer, src io.Reader, n int64) (int64, error) {
	lr := limitedReaderPool.Get().(*io.LimitedReader)
	lr.R, lr.N = src, n
	written, err := copyBuffered(dst, lr)
	lr.R = nil
	limitedReaderPool.Put(lr)
	if written == n {
		return written, nil
	}
	if written < n && err == nil {
		// src stopped early with a clean EOF inside the declared length.
		err = io.EOF
	}
	return written, err
}

// readerSize is the relay's standard bufio.Reader capacity, shared by
// every connection-wrapping reader the relay stack pools.
const readerSize = 16 << 10

// readerPool recycles connection readers across connections and
// sessions; see GetReader.
var readerPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, readerSize) },
}

// GetReader returns a pooled 16 KiB bufio.Reader reset to r. The relay
// stack (front-end client and back-end conns, handoff transports, the
// P-HTTP load generator) churns through one such reader per connection;
// pooling them keeps connection setup allocation-free in steady state.
//
//lard:noalloc
func GetReader(r io.Reader) *bufio.Reader {
	br := readerPool.Get().(*bufio.Reader)
	//lard:allow noalloc — inlined bufio.Reset cold arm (nil-buf make) never runs: pooled readers always carry their 16 KiB buffer
	br.Reset(r)
	return br
}

// PutReader recycles a reader obtained from GetReader. The caller must
// be the reader's last user: recycle only once no other goroutine can
// read through it. Readers of a different capacity (tests build small
// ones) are dropped rather than pooled.
//
//lard:noalloc
func PutReader(br *bufio.Reader) {
	if br == nil || br.Size() != readerSize {
		return
	}
	//lard:allow noalloc — inlined bufio.Reset cold arm (nil-buf make) never runs: the size guard above admits only full-size readers
	br.Reset(nil)
	readerPool.Put(br)
}

// drainBuffered writes up to limit bytes of br's buffered data to dst
// (limit < 0 = all buffered bytes), consuming exactly what was written.
// It is the first half of the splice arrangement: empty the parse
// buffer, then let the caller copy the rest from the raw connection.
//
//lard:noalloc
func drainBuffered(dst io.Writer, br *bufio.Reader, limit int64) (int64, error) {
	buffered := int64(br.Buffered())
	if buffered == 0 {
		return 0, nil
	}
	if limit >= 0 && buffered > limit {
		buffered = limit
	}
	if buffered == 0 {
		return 0, nil
	}
	peeked, err := br.Peek(int(buffered))
	if err != nil {
		return 0, err
	}
	n, err := dst.Write(peeked)
	if _, derr := br.Discard(n); derr != nil && err == nil {
		err = derr
	}
	return int64(n), err
}
