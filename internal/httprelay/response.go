package httprelay

import (
	"bufio"
	"bytes"
	"io"
	"strconv"
)

// ResponseHead is one parsed HTTP response head.
type ResponseHead struct {
	// Raw holds the head exactly as received, terminated by the blank
	// line.
	Raw []byte

	Proto string
	Major int
	Minor int

	// Status is the three-digit status code.
	Status int

	// ContentLength is the declared body length, or -1 when absent (body
	// delimited by connection close). Meaningless when Chunked is set.
	ContentLength int64

	// Chunked reports a "Transfer-Encoding: chunked" body.
	Chunked bool

	// KeepAlive reports whether the sender will keep its side of the
	// connection open after this response: HTTP/1.1 defaults to yes,
	// HTTP/1.0 to no ("Connection: keep-alive" required), and a
	// "Connection: close" token always wins. This is the satellite-fix
	// semantics: an HTTP/1.0 back-end response without an explicit
	// keep-alive must NOT be treated as reusable.
	KeepAlive bool
}

// BodilessStatus reports whether the status code forbids a message body
// regardless of framing headers: 1xx, 204, 304 (RFC 7230 §3.3.3).
func (h ResponseHead) BodilessStatus() bool {
	return (h.Status >= 100 && h.Status < 200) || h.Status == 204 || h.Status == 304
}

// Informational reports a 1xx interim response, which is always followed
// by another response on the same connection.
func (h ResponseHead) Informational() bool { return h.Status >= 100 && h.Status < 200 }

// ReadResponseHead consumes exactly one response head (through the blank
// line) from br. Framing violations return a MalformedError; the relay
// should treat the back-end connection as poisoned (502 + close), never
// guess at the body boundary.
func ReadResponseHead(br *bufio.Reader, maxBytes int) (ResponseHead, error) {
	h := ResponseHead{ContentLength: -1}
	var raw bytes.Buffer
	var sawCL, sawClose, sawKeepAlive, unknownTE bool
	started := false
	for {
		line, err := readLine(br, maxBytes-raw.Len()+1)
		raw.Write(line)
		if err != nil {
			if _, ok := err.(*MalformedError); ok {
				return h, err
			}
			return h, malformedf("truncated response head: %v", err)
		}
		if raw.Len() > maxBytes {
			return h, malformedf("response head exceeds %d bytes", maxBytes)
		}
		trimmed := trimCRLF(string(line))
		if !started {
			started = true
			var ok bool
			h.Proto, h.Status, ok = parseStatusLine(trimmed)
			if !ok {
				return h, malformedf("malformed status line %q", trimmed)
			}
			h.Major, h.Minor, ok = parseHTTPVersion(h.Proto)
			if !ok {
				return h, malformedf("malformed HTTP version %q", h.Proto)
			}
			h.KeepAlive = atLeast11(h.Major, h.Minor)
			continue
		}
		if trimmed == "" {
			break
		}
		if line[0] == ' ' || line[0] == '\t' {
			return h, malformedf("obsolete line folding in response head")
		}
		name, value, ok := splitHeader(trimmed)
		if !ok {
			return h, malformedf("malformed header line %q", trimmed)
		}
		switch name {
		case "content-length":
			prev := h.ContentLength
			if !sawCL {
				prev = 0
			}
			v, err := parseContentLength(value, prev, sawCL)
			if err != nil {
				return h, err
			}
			h.ContentLength, sawCL = v, true
		case "transfer-encoding":
			tks := tokens(value)
			if len(tks) > 0 && tks[len(tks)-1] == "chunked" {
				h.Chunked = true
			} else {
				// A coding this relay cannot frame. Unlike a request
				// (rejected with 400), a response body has a fallback
				// boundary — the connection close (RFC 7230 §3.3.3) —
				// so degrade to copy-until-close rather than dropping
				// the response on the floor.
				unknownTE = true
			}
		case "connection":
			for _, t := range tokens(value) {
				switch t {
				case "close":
					sawClose = true
				case "keep-alive":
					sawKeepAlive = true
				}
			}
		}
	}
	if h.Chunked {
		// In a response Transfer-Encoding wins over Content-Length
		// (RFC 7230 §3.3.3); the length header is ignored, not fatal,
		// because the chunk framing still tells us where the body ends.
		h.ContentLength = -1
	}
	if sawClose {
		h.KeepAlive = false
	} else if sawKeepAlive {
		h.KeepAlive = true
	}
	if unknownTE {
		// Close-delimited fallback: the sender's close is the only body
		// boundary we can trust, chunk framing included.
		h.Chunked = false
		h.ContentLength = -1
		h.KeepAlive = false
	}
	h.Raw = raw.Bytes()
	return h, nil
}

// parseStatusLine splits "HTTP/1.1 200 OK" into the protocol and status
// code; the reason phrase is free text and may be empty.
func parseStatusLine(line string) (proto string, status int, ok bool) {
	sp := -1
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			sp = i
			break
		}
	}
	if sp <= 0 || len(line) < sp+4 {
		return "", 0, false
	}
	code := line[sp+1 : sp+4]
	if len(line) > sp+4 && line[sp+4] != ' ' {
		return "", 0, false
	}
	n, err := strconv.Atoi(code)
	if err != nil || n < 100 || n > 999 {
		return "", 0, false
	}
	return line[:sp], n, true
}

// CopyResponseBody forwards the body of a response whose head has already
// been written, framed per the head and the request method: HEAD
// responses and bodiless statuses copy nothing, chunked bodies relay
// chunk by chunk, length-delimited bodies copy exactly ContentLength
// bytes, and unframed bodies copy until the back end closes. It returns
// the bytes forwarded and whether the source connection remains usable
// for another message.
func CopyResponseBody(dst io.Writer, br *bufio.Reader, h ResponseHead, reqMethod string) (int64, bool, error) {
	return CopyResponseBodyFrom(dst, br, nil, h, reqMethod)
}

// CopyResponseBodyFrom is CopyResponseBody told what lies beneath br: raw
// is the connection the reader wraps (nil if unknown). For length- and
// close-delimited bodies the copy drains br's buffered bytes and then
// reads the remainder from raw directly, so a TCP-to-TCP relay hands
// io.Copy a raw *net.TCPConn (or an io.LimitedReader around one) and the
// kernel splice path in TCPConn.ReadFrom can engage instead of shuttling
// body bytes through a userspace buffer. Chunked bodies must stay on br —
// the relay parses their framing. br is left positioned exactly after the
// body either way.
func CopyResponseBodyFrom(dst io.Writer, br *bufio.Reader, raw io.Reader, h ResponseHead, reqMethod string) (int64, bool, error) {
	if reqMethod == "HEAD" || h.BodilessStatus() {
		return 0, h.KeepAlive, nil
	}
	if h.Chunked {
		n, err := relayChunked(dst, br)
		return n, err == nil && h.KeepAlive, err
	}
	if h.ContentLength >= 0 {
		n, err := copyBodyN(dst, br, raw, h.ContentLength)
		return n, err == nil && h.KeepAlive, err
	}
	// No framing: the body ends when the sender closes (HTTP/1.0 style);
	// the connection is spent by construction.
	n, err := copyBody(dst, br, raw)
	return n, false, err
}

// copyBodyN copies exactly n body bytes: br's buffered prefix first, then
// the remainder — from raw when the caller supplied it (splice-eligible),
// else through br with a pooled buffer.
func copyBodyN(dst io.Writer, br *bufio.Reader, raw io.Reader, n int64) (int64, error) {
	if raw == nil {
		return copyNBuffered(dst, br, n)
	}
	written, err := drainBuffered(dst, br, n)
	if err != nil || written == n {
		return written, err
	}
	m, err := copyNBuffered(dst, raw, n-written)
	return written + m, err
}

// copyBody copies until the source closes: br's buffered prefix first,
// then the remainder from raw when supplied.
func copyBody(dst io.Writer, br *bufio.Reader, raw io.Reader) (int64, error) {
	if raw == nil {
		return copyBuffered(dst, br)
	}
	written, err := drainBuffered(dst, br, -1)
	if err != nil {
		return written, err
	}
	m, err := copyBuffered(dst, raw)
	return written + m, err
}

// RelayResponse relays one complete response — interim 1xx heads
// included — from the back end to the client: each head verbatim, the
// final body reframed per its declared encoding. on100, when non-nil, is
// invoked (once) after a 100 Continue head has been relayed, which is
// where the caller forwards the withheld request body of an
// Expect: 100-continue request. reqMethod gives HEAD its bodiless
// semantics.
//
// It returns the bytes written to the client and whether the *back-end*
// connection remains usable for another request. A 101 Switching
// Protocols response means the stream is no longer HTTP: the relay
// degrades to forwarding backend→client until the back end closes and
// reports the connection spent. The client→backend direction is NOT
// pumped — upgraded protocols where the client speaks first will stall
// until the back end gives up, so callers that need real upgrades must
// splice the raw connections themselves.
func RelayResponse(client io.Writer, backendBR *bufio.Reader, reqMethod string, maxHeadBytes int, on100 func() error) (int64, bool, error) {
	return RelayResponseFrom(client, backendBR, nil, reqMethod, maxHeadBytes, on100)
}

// RelayResponseFrom is RelayResponse told what lies beneath backendBR:
// backendRaw is the back-end connection the reader wraps (nil if
// unknown), which lets the body copy engage the kernel splice path — see
// CopyResponseBodyFrom.
func RelayResponseFrom(client io.Writer, backendBR *bufio.Reader, backendRaw io.Reader, reqMethod string, maxHeadBytes int, on100 func() error) (int64, bool, error) {
	var written int64
	for {
		h, err := ReadResponseHead(backendBR, maxHeadBytes)
		if err != nil {
			return written, false, err
		}
		n, err := client.Write(h.Raw)
		written += int64(n)
		if err != nil {
			return written, false, err
		}
		if h.Informational() {
			if h.Status == 101 {
				nc, err := copyBody(client, backendBR, backendRaw)
				written += nc
				return written, false, err
			}
			if h.Status == 100 && on100 != nil {
				if err := on100(); err != nil {
					return written, false, err
				}
				on100 = nil
			}
			continue
		}
		nb, reusable, err := CopyResponseBodyFrom(client, backendBR, backendRaw, h, reqMethod)
		written += nb
		return written, reusable, err
	}
}
