package httprelay

import (
	"bufio"
	"bytes"
	"io"
)

// RequestHead is one parsed HTTP request head: the exact bytes received
// (forwarded verbatim on handoff) plus the fields the dispatcher and the
// relay need.
type RequestHead struct {
	// Raw holds the head exactly as received, terminated by the blank
	// line. It is only populated for heads that parse cleanly — a head
	// that fails validation must not be forwarded.
	Raw []byte

	Method string
	Target string
	Proto  string
	Major  int
	Minor  int

	// ContentLength is the declared body length; 0 when the request has
	// no Content-Length header. Meaningless when Chunked is set.
	ContentLength int64

	// Chunked reports a "Transfer-Encoding: chunked" body.
	Chunked bool

	// KeepAlive is the connection's fate after this request: the
	// version-appropriate default (HTTP/1.1 persistent, HTTP/1.0 close)
	// overridden by Connection header tokens.
	KeepAlive bool

	// ExpectContinue reports an "Expect: 100-continue" request: the
	// client withholds the body until a 100 Continue arrives, so the
	// relay must interleave the back end's response with the body copy.
	ExpectContinue bool
}

// HasBody reports whether the request carries a message body.
func (h RequestHead) HasBody() bool { return h.Chunked || h.ContentLength > 0 }

// Size is the body size the dispatcher should account for (0 when
// unknown, e.g. chunked).
func (h RequestHead) Size() int64 {
	if h.Chunked {
		return 0
	}
	return h.ContentLength
}

// ReadRequestHead consumes exactly one request head (through the blank
// line) from br, leaving any pipelined follow-on bytes buffered. Framing
// violations — trailing garbage or signs in Content-Length, conflicting
// duplicate Content-Length headers, a body declared both chunked and
// length-delimited, unknown transfer codings, obsolete line folding —
// return a MalformedError; the caller should answer 400 and close rather
// than forward the head.
//
// An I/O error before any byte of the head — io.EOF on a clean close
// between pipelined requests, a read-deadline expiry on an idle
// keep-alive connection — is returned untouched, so callers can tell the
// connection's normal end of life from a truncated or malformed message
// (only the latter are MalformedErrors deserving a 400).
func ReadRequestHead(br *bufio.Reader, maxBytes int) (RequestHead, error) {
	var h RequestHead
	var raw bytes.Buffer
	var sawCL, sawClose, sawKeepAlive bool
	started := false
	for {
		line, err := readLine(br, maxBytes-raw.Len()+1)
		raw.Write(line)
		if err != nil {
			if !started && raw.Len() == 0 {
				if _, ok := err.(*MalformedError); !ok {
					return h, err // nothing received: not a framing fault
				}
			}
			if _, ok := err.(*MalformedError); ok {
				return h, err
			}
			return h, malformedf("truncated request head: %v", err)
		}
		if raw.Len() > maxBytes {
			return h, malformedf("request head exceeds %d bytes", maxBytes)
		}
		trimmed := trimCRLF(string(line))
		if !started {
			if trimmed == "" {
				continue // tolerate blank lines before the request line
			}
			started = true
			var ok bool
			h.Method, h.Target, h.Proto, ok = ParseRequestLine(trimmed)
			if !ok {
				return h, malformedf("malformed request line %q", trimmed)
			}
			h.Major, h.Minor, ok = parseHTTPVersion(h.Proto)
			if !ok {
				return h, malformedf("malformed HTTP version %q", h.Proto)
			}
			h.KeepAlive = atLeast11(h.Major, h.Minor)
			continue
		}
		if trimmed == "" {
			break // end of head
		}
		if line[0] == ' ' || line[0] == '\t' {
			// Obsolete line folding: a parser that ignores the
			// continuation while forwarding it verbatim lets a header
			// smuggle past inspection; reject instead (RFC 7230 §3.2.4).
			return h, malformedf("obsolete line folding in request head")
		}
		name, value, ok := splitHeader(trimmed)
		if !ok {
			return h, malformedf("malformed header line %q", trimmed)
		}
		switch name {
		case "content-length":
			v, err := parseContentLength(value, h.ContentLength, sawCL)
			if err != nil {
				return h, err
			}
			h.ContentLength, sawCL = v, true
		case "transfer-encoding":
			tks := tokens(value)
			if len(tks) == 0 || tks[len(tks)-1] != "chunked" {
				// A transfer coding we cannot frame (or chunked applied
				// non-finally) makes the body boundary unknowable.
				return h, malformedf("unsupported Transfer-Encoding %q", value)
			}
			h.Chunked = true
		case "connection":
			for _, t := range tokens(value) {
				switch t {
				case "close":
					sawClose = true
				case "keep-alive":
					sawKeepAlive = true
				}
			}
		case "expect":
			if hasToken(value, "100-continue") {
				h.ExpectContinue = true
			}
		}
	}
	if h.Chunked && sawCL {
		// The classic request-smuggling shape: two peers disagreeing on
		// which header frames the body (RFC 7230 §3.3.3).
		return h, malformedf("both Content-Length and Transfer-Encoding present")
	}
	// "close" wins over "keep-alive" if a confused peer sends both.
	if sawClose {
		h.KeepAlive = false
	} else if sawKeepAlive {
		h.KeepAlive = true
	}
	h.Raw = raw.Bytes()
	return h, nil
}

// ParseRequestLine splits "METHOD target HTTP/x.y" on the first and last
// space, so targets containing (technically illegal) spaces still parse.
func ParseRequestLine(line string) (method, target, proto string, ok bool) {
	sp1 := -1
	for i := 0; i < len(line); i++ {
		if line[i] == ' ' {
			sp1 = i
			break
		}
	}
	if sp1 <= 0 {
		return "", "", "", false
	}
	sp2 := -1
	for i := len(line) - 1; i > sp1; i-- {
		if line[i] == ' ' {
			sp2 = i
			break
		}
	}
	if sp2 <= sp1+1 {
		return "", "", "", false
	}
	return line[:sp1], line[sp1+1 : sp2], line[sp2+1:], true
}

// RelayRequestBody forwards the request's body from the (buffered) client
// side to the back end, framed per the head: chunked bodies are relayed
// chunk by chunk through their trailers, length-delimited bodies copy
// exactly ContentLength bytes, and bodiless requests copy nothing. It
// returns the bytes forwarded.
func RelayRequestBody(dst io.Writer, br *bufio.Reader, h RequestHead) (int64, error) {
	if h.Chunked {
		return relayChunked(dst, br)
	}
	if h.ContentLength > 0 {
		return copyNBuffered(dst, br, h.ContentLength)
	}
	return 0, nil
}
