package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestServerIdleJobRunsImmediately(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	done := time.Duration(-1)
	completion := s.Schedule(10*time.Millisecond, func() { done = e.Now() })
	if completion != 10*time.Millisecond {
		t.Fatalf("completion = %v, want 10ms", completion)
	}
	e.Run()
	if done != 10*time.Millisecond {
		t.Fatalf("done at %v, want 10ms", done)
	}
}

func TestServerFIFOQueueing(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	var completions []time.Duration
	record := func() { completions = append(completions, e.Now()) }
	s.Schedule(10*time.Millisecond, record)
	s.Schedule(5*time.Millisecond, record)
	s.Schedule(1*time.Millisecond, record)
	e.Run()
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond, 16 * time.Millisecond}
	for i := range want {
		if completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", completions, want)
		}
	}
}

func TestServerQueueDrainsThenIdles(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "disk")
	s.Schedule(10*time.Millisecond, nil)
	e.Run()
	// After drain, a new job starts at Now, not at old horizon + d.
	var done time.Duration
	e.At(50*time.Millisecond, func() {
		s.Schedule(5*time.Millisecond, func() { done = e.Now() })
	})
	e.Run()
	if done != 55*time.Millisecond {
		t.Fatalf("done = %v, want 55ms", done)
	}
}

func TestServerBacklogAndBusy(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	if s.Busy() {
		t.Fatal("new server reports busy")
	}
	if s.Backlog() != 0 {
		t.Fatalf("Backlog = %v, want 0", s.Backlog())
	}
	s.Schedule(10*time.Millisecond, nil)
	s.Schedule(20*time.Millisecond, nil)
	if !s.Busy() {
		t.Fatal("server with jobs reports idle")
	}
	if s.Backlog() != 30*time.Millisecond {
		t.Fatalf("Backlog = %v, want 30ms", s.Backlog())
	}
	e.RunUntil(12 * time.Millisecond)
	if s.Backlog() != 18*time.Millisecond {
		t.Fatalf("Backlog after 12ms = %v, want 18ms", s.Backlog())
	}
	e.Run()
	if s.Busy() {
		t.Fatal("drained server reports busy")
	}
}

func TestServerNegativeDurationIsZero(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	fired := false
	c := s.Schedule(-time.Second, func() { fired = true })
	if c != 0 {
		t.Fatalf("completion = %v, want 0", c)
	}
	e.Run()
	if !fired {
		t.Fatal("zero-length job did not fire")
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	s.Schedule(30*time.Millisecond, nil)
	s.Schedule(30*time.Millisecond, nil)
	e.Run()
	e.RunUntil(120 * time.Millisecond)
	if got := s.BusyTime(); got != 60*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 60ms", got)
	}
	if got := s.Utilization(e.Now()); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if got := s.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
	if got := s.Utilization(time.Millisecond); got != 1 {
		t.Fatalf("Utilization clamps to 1, got %v", got)
	}
	if s.Jobs() != 2 {
		t.Fatalf("Jobs = %d, want 2", s.Jobs())
	}
}

func TestServerName(t *testing.T) {
	e := NewEngine()
	if got := NewServer(e, "disk0").Name(); got != "disk0" {
		t.Fatalf("Name = %q", got)
	}
}

func TestNewServerNilEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer(nil) did not panic")
		}
	}()
	NewServer(nil, "x")
}

func TestTwoServersOverlap(t *testing.T) {
	// CPU and disk work for different requests overlaps; total elapsed time
	// equals the max of the two independent schedules, not the sum.
	e := NewEngine()
	cpu := NewServer(e, "cpu")
	disk := NewServer(e, "disk")
	cpu.Schedule(10*time.Millisecond, nil)
	disk.Schedule(25*time.Millisecond, nil)
	e.Run()
	if e.Now() != 25*time.Millisecond {
		t.Fatalf("elapsed = %v, want 25ms (overlapped)", e.Now())
	}
}

// Property: completion times are non-decreasing in submission order, and
// total busy time equals the sum of service times.
func TestPropertyServerFIFOInvariants(t *testing.T) {
	f := func(durs []uint16) bool {
		e := NewEngine()
		s := NewServer(e, "cpu")
		var sum time.Duration
		last := time.Duration(-1)
		for _, d := range durs {
			dd := time.Duration(d) * time.Microsecond
			sum += dd
			c := s.Schedule(dd, func() {})
			if c < last {
				return false
			}
			last = c
		}
		e.Run()
		if len(durs) == 0 {
			return s.BusyTime() == 0 && e.Now() == 0
		}
		return s.BusyTime() == sum && e.Now() == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
