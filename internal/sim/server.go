package sim

import "time"

// Server models a work-conserving FIFO resource such as a CPU or a disk.
// Jobs submitted to the server execute one at a time in submission order;
// a job submitted while the server is busy waits its turn.
//
// Because service times are known when a job is submitted, the server is
// modelled analytically: it keeps a single "busy until" horizon instead of
// an explicit queue, so submitting a job is O(log n) in the engine's event
// heap and the simulated behaviour is exactly FIFO.
//
// The server also keeps exact utilization integrals (total busy time and
// job count) for the simulator's CPU/disk utilization statistics.
type Server struct {
	eng       *Engine
	name      string
	busyUntil time.Duration
	busyTime  time.Duration
	jobs      uint64
}

// NewServer returns a server bound to the given engine. The name is used
// only for diagnostics.
func NewServer(eng *Engine, name string) *Server {
	if eng == nil {
		panic("sim: NewServer called with nil engine")
	}
	return &Server{eng: eng, name: name}
}

// Name returns the diagnostic name given at construction.
func (s *Server) Name() string { return s.name }

// Schedule submits a job with the given service time. The job starts when
// all previously submitted jobs have completed (or immediately if the
// server is idle) and done, if non-nil, is invoked at its completion time.
// Schedule returns the virtual time at which the job will complete.
// Negative durations are treated as zero.
func (s *Server) Schedule(d time.Duration, done func()) time.Duration {
	if d < 0 {
		d = 0
	}
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	completion := start + d
	s.busyUntil = completion
	s.busyTime += d
	s.jobs++
	if done == nil {
		done = func() {}
	}
	// Always schedule the completion event, even without a callback, so the
	// engine's clock advances past the server's drain point when run.
	s.eng.At(completion, done)
	return completion
}

// Backlog returns how much work is queued or in progress: the delay a job
// submitted now would wait before starting.
func (s *Server) Backlog() time.Duration {
	if s.busyUntil <= s.eng.Now() {
		return 0
	}
	return s.busyUntil - s.eng.Now()
}

// Busy reports whether the server has queued or in-progress work.
func (s *Server) Busy() bool { return s.busyUntil > s.eng.Now() }

// BusyTime returns the total service time of all submitted jobs, i.e. the
// integral of the server's busy indicator over virtual time once all
// submitted jobs have run.
func (s *Server) BusyTime() time.Duration { return s.busyTime }

// Jobs returns the number of jobs submitted so far.
func (s *Server) Jobs() uint64 { return s.jobs }

// Utilization returns BusyTime divided by the given elapsed interval,
// clamped to [0, 1]. It returns 0 for non-positive intervals.
func (s *Server) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(s.busyTime) / float64(elapsed)
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}
