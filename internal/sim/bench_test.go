package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineSchedule measures raw event scheduling + dispatch
// throughput, the floor under every simulation in this repository.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Microsecond, func() {})
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + time.Millisecond)
		}
	}
	e.Run()
}

// BenchmarkServerSchedule measures the FIFO resource model's job cost.
func BenchmarkServerSchedule(b *testing.B) {
	e := NewEngine()
	s := NewServer(e, "cpu")
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Microsecond, nil)
		if e.Pending() > 1024 {
			e.RunUntil(e.Now() + time.Millisecond)
		}
	}
	e.Run()
}
