// Package sim provides a small, deterministic discrete-event simulation
// engine. It is the substrate on which the cluster simulator of the LARD
// paper (Section 3) is built.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in FIFO order, which makes
// simulations fully deterministic: the same schedule of calls always
// produces the same execution.
//
// Virtual time is expressed as time.Duration offsets from the start of the
// simulation. The engine never consults the wall clock.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int // heap index; -1 once removed
}

// Time returns the virtual time at which the event is scheduled to fire.
func (ev *Event) Time() time.Duration { return ev.at }

// Engine is a deterministic discrete-event simulator. The zero value is not
// usable; construct one with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool

	// processed counts events that have fired since construction.
	processed uint64
}

// NewEngine returns an engine with an empty event queue and the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return e.queue.Len() }

// Processed returns the total number of events that have fired.
func (e *Engine) Processed() uint64 { return e.processed }

// At schedules fn to run at virtual time t. If t is in the past, the event
// fires at the current time (events never fire retroactively). Events
// scheduled for the same instant fire in the order they were scheduled.
func (e *Engine) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < e.now {
		t = e.now
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current virtual time. Negative
// durations are treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event so it will not fire. It reports whether the
// event was still pending. Cancelling an already-fired or already-cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Step fires the single earliest pending event, advancing the clock to its
// scheduled time. It reports whether an event fired.
func (e *Engine) Step() bool {
	if e.stopped || e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	ev.index = -1
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.processed++
	fn()
	return true
}

// Run fires events until the queue is empty or Stop is called. It returns
// the number of events processed by this call.
func (e *Engine) Run() uint64 {
	start := e.processed
	e.stopped = false
	for e.Step() {
	}
	return e.processed - start
}

// RunUntil fires events with scheduled time <= t, then advances the clock to
// exactly t (even if no event was pending at t). It returns the number of
// events processed by this call.
func (e *Engine) RunUntil(t time.Duration) uint64 {
	start := e.processed
	e.stopped = false
	for !e.stopped && e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
	return e.processed - start
}

// Stop makes the currently executing Run or RunUntil return after the
// current event completes. The queue is left intact, so execution can be
// resumed with another Run call.
func (e *Engine) Stop() { e.stopped = true }

// String describes the engine state, for debugging.
func (e *Engine) String() string {
	return fmt.Sprintf("sim.Engine{now: %v, pending: %d, processed: %d}",
		e.now, e.queue.Len(), e.processed)
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
