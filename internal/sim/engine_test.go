package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Millisecond, func() { order = append(order, 3) })
	e.At(10*time.Millisecond, func() { order = append(order, 1) })
	e.At(20*time.Millisecond, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", e.Now())
	}
}

func TestSimultaneousEventsFireFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: order[%d] = %d", i, v)
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := NewEngine()
	var firedAt time.Duration
	e.At(10*time.Millisecond, func() {
		e.At(5*time.Millisecond, func() { firedAt = e.Now() })
	})
	e.Run()
	if firedAt != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamped to 10ms", firedAt)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.At(5*time.Millisecond, func() {
		e.After(7*time.Millisecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 12*time.Millisecond {
		t.Fatalf("After fired at %v, want 12ms", at)
	}
}

func TestAfterNegativeDurationFiresNow(t *testing.T) {
	e := NewEngine()
	var at time.Duration = -1
	e.At(time.Millisecond, func() {
		e.After(-time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != time.Millisecond {
		t.Fatalf("negative After fired at %v, want 1ms", at)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(time.Millisecond, func() { fired = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Cancel(ev) {
		t.Fatal("second Cancel returned true")
	}
	if e.Cancel(nil) {
		t.Fatal("Cancel(nil) returned true")
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	ev := e.At(time.Millisecond, func() {})
	e.Run()
	if e.Cancel(ev) {
		t.Fatal("Cancel returned true for fired event")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(time.Duration(i)*time.Millisecond, func() { order = append(order, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	if len(order) != 8 {
		t.Fatalf("got %d events, want 8", len(order))
	}
	for _, v := range order {
		if v == 4 || v == 7 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		e.At(d, func() { fired = append(fired, d) })
	}
	n := e.RunUntil(25 * time.Millisecond)
	if n != 2 {
		t.Fatalf("RunUntil processed %d events, want 2", n)
	}
	if e.Now() != 25*time.Millisecond {
		t.Fatalf("Now() = %v, want 25ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	// Boundary: an event exactly at the horizon fires.
	n = e.RunUntil(30 * time.Millisecond)
	if n != 1 {
		t.Fatalf("RunUntil(30ms) processed %d events, want 1", n)
	}
	if e.Now() != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", e.Now())
	}
}

func TestRunUntilWithEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(time.Second)
	if e.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("processed %d events before Stop, want 3", count)
	}
	// Resume.
	e.Run()
	if count != 10 {
		t.Fatalf("after resume processed %d, want 10", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 50 {
			e.After(time.Millisecond, schedule)
		}
	}
	e.At(0, schedule)
	e.Run()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if e.Now() != 49*time.Millisecond {
		t.Fatalf("Now() = %v, want 49ms", e.Now())
	}
}

func TestAtNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	NewEngine().At(0, nil)
}

func TestProcessedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(time.Duration(i), func() {})
	}
	if got := e.Run(); got != 5 {
		t.Fatalf("Run() = %d, want 5", got)
	}
	if e.Processed() != 5 {
		t.Fatalf("Processed() = %d, want 5", e.Processed())
	}
}

func TestEngineStringDescribesState(t *testing.T) {
	e := NewEngine()
	e.At(time.Millisecond, func() {})
	s := e.String()
	if s == "" {
		t.Fatal("String() empty")
	}
}

// Property: for any set of scheduled times, events fire in non-decreasing
// time order and the clock equals the last event's time.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		e := NewEngine()
		var fired []time.Duration
		for _, off := range offsets {
			d := time.Duration(off) * time.Microsecond
			e.At(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: deterministic replay — the same schedule processed twice yields
// identical firing orders.
func TestPropertyDeterministicReplay(t *testing.T) {
	run := func(seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var order []int
		for i := 0; i < 500; i++ {
			i := i
			e.At(time.Duration(rng.Intn(100))*time.Millisecond, func() {
				order = append(order, i)
			})
		}
		e.Run()
		return order
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
