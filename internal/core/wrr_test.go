package core

import (
	"testing"
	"time"
)

func TestWRRPicksLeastLoaded(t *testing.T) {
	loads := &fakeLoads{loads: []int{10, 3, 7}}
	s := NewWRR(loads)
	if s.Name() != "WRR" {
		t.Fatalf("Name = %q", s.Name())
	}
	if got := s.Select(0, Request{Target: "/x"}); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
}

func TestWRRIgnoresTarget(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 5}}
	s := NewWRR(loads)
	a := s.Select(0, Request{Target: "/a"})
	b := s.Select(0, Request{Target: "/b"})
	if a != 0 || b != 0 {
		t.Fatalf("WRR should always pick the least-loaded node: %d, %d", a, b)
	}
}

func TestWRRBalancesUnderFeedback(t *testing.T) {
	// With load feedback (each selection increments the node's load),
	// WRR must spread requests perfectly evenly.
	loads := &fakeLoads{loads: make([]int, 4)}
	s := NewWRR(loads)
	counts := make([]int, 4)
	for i := 0; i < 400; i++ {
		n := s.Select(0, Request{Target: "/t"})
		counts[n]++
		loads.loads[n]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("node %d received %d requests, want 100 (counts %v)", i, c, counts)
		}
	}
}

func TestWRRRoundRobinOnTies(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0, 0}}
	s := NewWRR(loads)
	seen := map[int]bool{}
	for i := 0; i < 3; i++ {
		seen[s.Select(0, Request{})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("tied loads not rotated: saw %v", seen)
	}
}

func TestWRRFailure(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewWRR(loads)
	s.NodeDown(0)
	for i := 0; i < 5; i++ {
		if got := s.Select(0, Request{}); got != 1 {
			t.Fatalf("Select = %d with node 0 down", got)
		}
	}
	s.NodeDown(1)
	if got := s.Select(0, Request{}); got != -1 {
		t.Fatalf("Select = %d with all nodes down, want -1", got)
	}
	s.NodeUp(0)
	if got := s.Select(0, Request{}); got != 0 {
		t.Fatalf("Select = %d after NodeUp(0)", got)
	}
}

func TestWRRSelectIsTimeIndependent(t *testing.T) {
	loads := &fakeLoads{loads: []int{1, 0}}
	s := NewWRR(loads)
	if s.Select(0, Request{}) != s.Select(time.Hour, Request{}) {
		t.Fatal("WRR selection depended on time")
	}
}
