package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// driveRandomly pushes a strategy through a randomized closed-loop-like
// load pattern and verifies universal invariants:
//
//   - Select returns a node in [0, n) or -1,
//   - Select never returns a down node,
//   - with at least one alive node, Select never returns -1.
func driveRandomly(s Strategy, fa FailureAware, loads *fakeLoads, seed int64, steps int) error {
	rng := rand.New(rand.NewSource(seed))
	n := len(loads.loads)
	down := make([]bool, n)
	aliveCount := n
	for i := 0; i < steps; i++ {
		switch rng.Intn(10) {
		case 0: // random load perturbation
			loads.loads[rng.Intn(n)] = rng.Intn(200)
		case 1: // fail or restore a node
			if fa != nil {
				node := rng.Intn(n)
				if down[node] {
					fa.NodeUp(node)
					down[node] = false
					aliveCount++
				} else if aliveCount > 1 || rng.Intn(4) == 0 {
					fa.NodeDown(node)
					down[node] = true
					aliveCount--
				}
			}
		}
		target := fmt.Sprintf("/t%d", rng.Intn(50))
		got := s.Select(time.Duration(i)*time.Second, Request{Target: target})
		if got < -1 || got >= n {
			return fmt.Errorf("step %d: Select returned %d with %d nodes", i, got, n)
		}
		if got >= 0 && down[got] {
			return fmt.Errorf("step %d: Select returned down node %d", i, got)
		}
		if got == -1 && aliveCount > 0 {
			return fmt.Errorf("step %d: Select returned -1 with %d alive nodes", i, aliveCount)
		}
		if got >= 0 {
			loads.loads[got]++
		}
		// Random completions keep loads bounded.
		if j := rng.Intn(n); loads.loads[j] > 0 {
			loads.loads[j]--
		}
	}
	return nil
}

func TestPropertyStrategiesNeverMisroute(t *testing.T) {
	build := map[string]func(*fakeLoads) (Strategy, FailureAware){
		"WRR": func(l *fakeLoads) (Strategy, FailureAware) {
			s := NewWRR(l)
			return s, s
		},
		"LB": func(l *fakeLoads) (Strategy, FailureAware) {
			s := NewLB(l)
			return s, s
		},
		"LBGC": func(l *fakeLoads) (Strategy, FailureAware) {
			s := NewLBGC(l, 1<<20)
			return s, s
		},
		"LARD": func(l *fakeLoads) (Strategy, FailureAware) {
			s := NewLARD(l, DefaultParams())
			return s, s
		},
		"LARDR": func(l *fakeLoads) (Strategy, FailureAware) {
			s := NewLARDR(l, DefaultParams())
			return s, s
		},
	}
	for name, mk := range build {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, nodes uint8) bool {
				n := int(nodes)%8 + 2
				loads := &fakeLoads{loads: make([]int, n)}
				s, fa := mk(loads)
				if err := driveRandomly(s, fa, loads, seed, 400); err != nil {
					t.Log(err)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: under stable, balanced load LARD's assignment for a target
// never changes — locality is only sacrificed on real imbalance.
func TestPropertyLARDStableUnderBalance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		loads := &fakeLoads{loads: make([]int, 4)}
		s := NewLARD(loads, DefaultParams())
		assigned := map[string]int{}
		for i := 0; i < 500; i++ {
			// Loads stay strictly between TLow and THigh: no trigger can
			// fire.
			for j := range loads.loads {
				loads.loads[j] = 30 + rng.Intn(30)
			}
			target := fmt.Sprintf("/t%d", rng.Intn(30))
			got := s.Select(0, Request{Target: target})
			if prev, ok := assigned[target]; ok && prev != got {
				return false
			}
			assigned[target] = got
		}
		return s.Moves() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: whenever LARD reassigns a target, the load difference between
// the old and new node is at least T_high − T_low (the paper's Section 2.4
// guarantee, which holds whenever the admission bound S is respected).
func TestPropertyLARDMoveGapBound(t *testing.T) {
	p := DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 4
		loads := &fakeLoads{loads: make([]int, n)}
		s := NewLARD(loads, p)
		s.Select(0, Request{Target: "/x"}) // initial assignment
		for i := 0; i < 300; i++ {
			// Draw loads that respect the S bound.
			budget := p.MaxOutstanding(n)
			for j := range loads.loads {
				v := rng.Intn(p.THigh * 2)
				if v > budget {
					v = budget
				}
				loads.loads[j] = v
				budget -= v
			}
			before, ok := s.Assignment("/x")
			if !ok {
				return false
			}
			after := s.Select(0, Request{Target: "/x"})
			if after != before {
				gap := loads.loads[before] - loads.loads[after]
				if gap < p.THigh-p.TLow {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: LARD/R server sets never contain duplicates or dead nodes,
// and never exceed the cluster size.
func TestPropertyLARDRSetWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 5
		loads := &fakeLoads{loads: make([]int, n)}
		s := NewLARDR(loads, DefaultParams())
		for i := 0; i < 400; i++ {
			for j := range loads.loads {
				loads.loads[j] = rng.Intn(200)
			}
			target := fmt.Sprintf("/t%d", rng.Intn(5))
			s.Select(time.Duration(i)*time.Second, Request{Target: target})
			set := s.ServerSet(target)
			if len(set) > n {
				return false
			}
			seen := map[int]bool{}
			for _, node := range set {
				if node < 0 || node >= n || seen[node] {
					return false
				}
				seen[node] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
