package core

import (
	"fmt"
	"testing"
)

func testParams() Params {
	return Params{TLow: 25, THigh: 65, K: 20e9}
}

func TestLARDFirstRequestGoesToLeastLoaded(t *testing.T) {
	loads := &fakeLoads{loads: []int{9, 2, 5}}
	s := NewLARD(loads, testParams())
	if s.Name() != "LARD" {
		t.Fatalf("Name = %q", s.Name())
	}
	if got := s.Select(0, Request{Target: "/a"}); got != 1 {
		t.Fatalf("first assignment = %d, want least-loaded 1", got)
	}
	if s.Assignments() != 1 {
		t.Fatalf("Assignments = %d", s.Assignments())
	}
}

func TestLARDStickyAssignment(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARD(loads, testParams())
	n := s.Select(0, Request{Target: "/a"})
	// Moderate load on the assigned node must not move the target.
	loads.loads[n] = 60 // below THigh
	for i := 0; i < 10; i++ {
		if got := s.Select(0, Request{Target: "/a"}); got != n {
			t.Fatalf("target moved at load 60 < THigh: %d -> %d", n, got)
		}
	}
	if s.Moves() != 0 {
		t.Fatalf("Moves = %d, want 0", s.Moves())
	}
}

func TestLARDMovesWhenOverloadedAndIdleExists(t *testing.T) {
	// Figure 2 first condition: n.load > T_high && exists load < T_low.
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARD(loads, testParams())
	n := s.Select(0, Request{Target: "/a"})
	other := 1 - n
	loads.loads[n] = 66    // > THigh
	loads.loads[other] = 5 // < TLow
	got := s.Select(0, Request{Target: "/a"})
	if got != other {
		t.Fatalf("target not moved to idle node: got %d", got)
	}
	if s.Moves() != 1 {
		t.Fatalf("Moves = %d, want 1", s.Moves())
	}
	// The mapping is updated: subsequent requests go to the new node.
	loads.loads[other] = 30
	if got := s.Select(0, Request{Target: "/a"}); got != other {
		t.Fatal("mapping not updated after move")
	}
}

func TestLARDNoMoveWithoutIdleNode(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARD(loads, testParams())
	n := s.Select(0, Request{Target: "/a"})
	other := 1 - n
	loads.loads[n] = 80     // > THigh but < 2*THigh
	loads.loads[other] = 40 // not < TLow
	if got := s.Select(0, Request{Target: "/a"}); got != n {
		t.Fatalf("target moved without an idle node: %d -> %d", n, got)
	}
}

func TestLARDMovesAtTwiceTHigh(t *testing.T) {
	// Figure 2 second condition: n.load >= 2*T_high moves unconditionally.
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARD(loads, testParams())
	n := s.Select(0, Request{Target: "/a"})
	other := 1 - n
	loads.loads[n] = 130    // = 2*THigh
	loads.loads[other] = 60 // not idle, but less loaded
	if got := s.Select(0, Request{Target: "/a"}); got != other {
		t.Fatalf("target not moved at 2*THigh: got %d", got)
	}
}

func TestLARDNoSelfMove(t *testing.T) {
	// If the overloaded node is still the least loaded (single alive
	// node), the target stays and no move is counted.
	loads := &fakeLoads{loads: []int{200}}
	s := NewLARD(loads, testParams())
	if got := s.Select(0, Request{Target: "/a"}); got != 0 {
		t.Fatalf("got %d", got)
	}
	if got := s.Select(0, Request{Target: "/a"}); got != 0 {
		t.Fatalf("got %d", got)
	}
	if s.Moves() != 0 {
		t.Fatalf("Moves = %d, want 0", s.Moves())
	}
}

func TestLARDPartitionsTargets(t *testing.T) {
	// With load feedback, LARD spreads distinct targets over nodes
	// (locality partitioning), unlike WRR which would mix them all.
	loads := &fakeLoads{loads: make([]int, 4)}
	s := NewLARD(loads, testParams())
	assignment := map[string]int{}
	for i := 0; i < 64; i++ {
		target := fmt.Sprintf("/t%d", i)
		n := s.Select(0, Request{Target: target})
		assignment[target] = n
		loads.loads[n]++
	}
	counts := make([]int, 4)
	for _, n := range assignment {
		counts[n]++
	}
	for i, c := range counts {
		if c != 16 {
			t.Fatalf("node %d assigned %d targets, want 16 (%v)", i, c, counts)
		}
	}
	// Assignments are stable under balanced load.
	for target, n := range assignment {
		if got := s.Select(0, Request{Target: target}); got != n {
			t.Fatalf("target %s moved under balanced load", target)
		}
	}
}

func TestLARDFailureReassigns(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 10}}
	s := NewLARD(loads, testParams())
	n := s.Select(0, Request{Target: "/a"}) // node 0
	if n != 0 {
		t.Fatalf("setup: got %d", n)
	}
	s.NodeDown(0)
	got := s.Select(0, Request{Target: "/a"})
	if got != 1 {
		t.Fatalf("target not reassigned after failure: %d", got)
	}
	// Recovery does not move it back: the new assignment sticks.
	s.NodeUp(0)
	if got := s.Select(0, Request{Target: "/a"}); got != 1 {
		t.Fatalf("assignment flapped after recovery: %d", got)
	}
}

func TestLARDAllNodesDown(t *testing.T) {
	s := NewLARD(&fakeLoads{loads: []int{0}}, testParams())
	s.NodeDown(0)
	if got := s.Select(0, Request{Target: "/a"}); got != -1 {
		t.Fatalf("Select = %d, want -1", got)
	}
}

func TestLARDMappingCapacityBound(t *testing.T) {
	p := testParams()
	p.MappingCapacity = 10
	loads := &fakeLoads{loads: make([]int, 2)}
	s := NewLARD(loads, p)
	for i := 0; i < 100; i++ {
		s.Select(0, Request{Target: fmt.Sprintf("/t%d", i)})
	}
	if s.MappedTargets() != 10 {
		t.Fatalf("MappedTargets = %d, want 10", s.MappedTargets())
	}
	// A discarded target is simply re-assigned, not an error.
	if got := s.Select(0, Request{Target: "/t0"}); got < 0 {
		t.Fatalf("re-assignment after discard failed: %d", got)
	}
}

func TestLARDAssignmentAccessor(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 5}}
	s := NewLARD(loads, testParams())
	if _, ok := s.Assignment("/a"); ok {
		t.Fatal("Assignment reported unknown target")
	}
	n := s.Select(0, Request{Target: "/a"})
	if got, ok := s.Assignment("/a"); !ok || got != n {
		t.Fatalf("Assignment = (%d, %v), want (%d, true)", got, ok, n)
	}
}

func TestLARDInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLARD(&fakeLoads{loads: []int{0}}, Params{TLow: 10, THigh: 5})
}
