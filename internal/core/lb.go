package core

import (
	"hash/fnv"
	"time"
)

// LB is the pure locality-based strategy (Section 2.3): "partitioning the
// name space of the database in some way and assigning requests for all
// targets in a particular partition to a particular back end. For instance,
// a hash function can be used to perform the partitioning."
//
// LB maximizes cache aggregation — each back end caches only its partition
// of the working set — but ignores load entirely, so a popular partition
// can overload its node while others idle.
type LB struct {
	nodes nodeSet
}

// NewLB returns an LB strategy. It consults the LoadReader only for the
// node count (and liveness bookkeeping), never for load.
func NewLB(loads LoadReader) *LB {
	return &LB{nodes: newNodeSet(loads, DefaultProfile())}
}

// Name implements Strategy.
func (s *LB) Name() string { return "LB" }

// Select implements Strategy: FNV-1a hash of the target name over the
// alive nodes.
func (s *LB) Select(_ time.Duration, r Request) int {
	alive := s.nodes.aliveNodes()
	if len(alive) == 0 {
		return -1
	}
	return alive[hashTarget(r.Target)%uint64(len(alive))]
}

// NodeDown implements FailureAware. Targets of the failed node re-hash
// over the remaining nodes.
func (s *LB) NodeDown(node int) { s.nodes.setDown(node, true) }

// NodeUp implements FailureAware.
func (s *LB) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware. The whole name space re-hashes over
// the enlarged alive set — the partitioning shift the paper's LB scheme
// inherently pays on membership change.
func (s *LB) AddNode() int { return s.nodes.add() }

// RemoveNode implements MembershipAware.
func (s *LB) RemoveNode(node int) { s.nodes.remove(node) }

// SetDraining implements MembershipAware.
func (s *LB) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// SetProfile implements ProfileAware. LB partitions by hash alone, so the
// profile is recorded (and reported) but deliberately does not influence
// Select — the paper's LB scheme is load- and capacity-blind.
func (s *LB) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *LB) NodeProfile(node int) Profile { return s.nodes.profile(node) }

// hashTarget hashes a target name for partitioning.
func hashTarget(target string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(target))
	return h.Sum64()
}

var (
	_ Strategy        = (*LB)(nil)
	_ FailureAware    = (*LB)(nil)
	_ MembershipAware = (*LB)(nil)
	_ ProfileAware    = (*LB)(nil)
)
