package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestProfileValidate(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Profile{
		{TLow: 0, THigh: 65, Weight: 1},
		{TLow: 25, THigh: 25, Weight: 1},
		{TLow: 25, THigh: 10, Weight: 1},
		{TLow: 25, THigh: 65, Weight: 0},
		{TLow: 25, THigh: 65, Weight: -1},
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid profile accepted: %+v", i, p)
		}
	}
}

// Property (satellite 3): on a uniform fleet the generalized bound
// S = Σ T_high,i − max T_high,i + min T_low,i + 1 reduces exactly to the
// paper's S = (n−1)·T_high + T_low + 1 for random thresholds and sizes.
func TestMaxOutstandingOverUniformReduction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(32)
		p := Params{
			TLow:  1 + rng.Intn(100),
			THigh: 0,
			K:     time.Second,
		}
		p.THigh = p.TLow + 1 + rng.Intn(200)
		profiles := make([]Profile, n)
		for i := range profiles {
			profiles[i] = p.Profile()
		}
		got := MaxOutstandingOver(profiles)
		want := p.MaxOutstanding(n)
		if got != want {
			t.Fatalf("n=%d params=%+v: MaxOutstandingOver = %d, MaxOutstanding = %d",
				n, p, got, want)
		}
	}
}

func TestMaxOutstandingOverHeterogeneous(t *testing.T) {
	// 2 small (T_low 25, T_high 65) + 1 big (T_low 100, T_high 260):
	// S = (65+65+260) − 260 + 25 + 1 = 156.
	profiles := []Profile{
		{TLow: 25, THigh: 65, Weight: 1},
		{TLow: 25, THigh: 65, Weight: 1},
		{TLow: 100, THigh: 260, Weight: 4},
	}
	if got := MaxOutstandingOver(profiles); got != 156 {
		t.Fatalf("MaxOutstandingOver = %d, want 156", got)
	}
	if got := MaxOutstandingOver(nil); got != 0 {
		t.Fatalf("MaxOutstandingOver(nil) = %d, want 0", got)
	}
}

// The generalized bound preserves the paper's argument on a mixed fleet:
// S admits no state where every node is at or above its own T_high, yet
// still lets every node run above the fleet-minimum T_low (so hitting the
// admission bound never forces a node idle).
func TestMaxOutstandingOverPaperProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		profiles := make([]Profile, n)
		sumHigh, minLow := 0, 0
		for i := range profiles {
			low := 1 + rng.Intn(50)
			profiles[i] = Profile{TLow: low, THigh: low + 1 + rng.Intn(300), Weight: 1}
			sumHigh += profiles[i].THigh
			if i == 0 || low < minLow {
				minLow = low
			}
		}
		s := MaxOutstandingOver(profiles)
		if sumHigh <= s {
			t.Fatalf("trial %d: S=%d admits all nodes at their own T_high (sum %d)", trial, s, sumHigh)
		}
		// S ≥ n·(min T_low + 1): all nodes can sit above the fleet-min T_low.
		if n*(minLow+1) > s {
			t.Fatalf("trial %d: S=%d cannot keep all %d nodes above fleet-min T_low %d", trial, s, n, minLow)
		}
	}
}

// On a uniform fleet WLARD must be behaviourally identical to LARD: same
// assignments, same moves, for an identical request/load sequence.
func TestWLARDUniformMatchesLARD(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	loadsA := &fakeLoads{loads: make([]int, 6)}
	loadsB := &fakeLoads{loads: make([]int, 6)}
	params := DefaultParams()
	lard := NewLARD(loadsA, params)
	wlard := NewWLARD(loadsB, params)
	targets := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for step := 0; step < 5000; step++ {
		for i := range loadsA.loads {
			l := rng.Intn(2 * params.THigh)
			loadsA.loads[i] = l
			loadsB.loads[i] = l
		}
		r := Request{Target: targets[rng.Intn(len(targets))], Size: 1}
		now := time.Duration(step) * time.Millisecond
		a := lard.Select(now, r)
		b := wlard.Select(now, r)
		if a != b {
			t.Fatalf("step %d target %q: LARD picked %d, WLARD picked %d", step, r.Target, a, b)
		}
	}
	if lard.Moves() != wlard.Moves() {
		t.Fatalf("moves diverged: LARD %d, WLARD %d", lard.Moves(), wlard.Moves())
	}
	if lard.Moves() == 0 {
		t.Fatal("test exercised no moves")
	}
}

// A weighted node trips WLARD's move condition only at weight-scaled
// thresholds: raw load 100 on a weight-4 node is relative load 25, well
// under T_high.
func TestWLARDWeightScaling(t *testing.T) {
	loads := &fakeLoads{loads: []int{100, 10}}
	params := DefaultParams() // TLow 25, THigh 65
	s := NewWLARD(loads, params)
	s.SetProfile(0, Profile{TLow: 100, THigh: 260, Weight: 4})

	// First request for "x": least relative-loaded is node 1 (10 < 25).
	if got := s.Select(0, Request{Target: "x"}); got != 1 {
		t.Fatalf("first assignment = %d, want 1", got)
	}
	// Pin "y" to node 0 while it is relatively idle.
	loads.set(0, 200)
	if got := s.Select(0, Request{Target: "y"}); got != 0 {
		t.Fatalf("assignment = %d, want 0", got)
	}
	// Raw 200 on weight 4 is relative 50 < T_high: no move even with an
	// idle node available.
	loads.set(200, 10)
	if got := s.Select(0, Request{Target: "y"}); got != 0 {
		t.Fatalf("weighted node moved at relative load 50: got %d", got)
	}
	if s.Moves() != 0 {
		t.Fatalf("moves = %d, want 0", s.Moves())
	}
	// Relative load 70 > T_high with node 1 under T_low: now it moves.
	loads.set(280, 10)
	if got := s.Select(0, Request{Target: "y"}); got != 1 {
		t.Fatalf("overloaded weighted node kept target: got %d", got)
	}
	if s.Moves() != 1 {
		t.Fatalf("moves = %d, want 1", s.Moves())
	}
}

// POD's candidate set is a pure function of the target: repeated requests
// with stable loads land on the same node, and distinct targets spread.
func TestPODDeterministicCandidates(t *testing.T) {
	loads := &fakeLoads{loads: make([]int, 8)}
	s := NewPOD(loads, DefaultParams(), 2)
	if s.Choices() != 2 {
		t.Fatalf("Choices = %d, want 2", s.Choices())
	}
	first := s.Select(0, Request{Target: "steady"})
	for i := 0; i < 50; i++ {
		if got := s.Select(0, Request{Target: "steady"}); got != first {
			t.Fatalf("pick drifted from %d to %d with stable loads", first, got)
		}
	}
	// Many targets should hit more than d nodes overall.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[s.Select(0, Request{Target: string(rune('a'+i%26)) + string(rune('0'+i/26))})] = true
	}
	if len(seen) < 3 {
		t.Fatalf("200 targets hit only %d nodes", len(seen))
	}
}

func TestPODSkipsPanickedCandidate(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewPOD(loads, DefaultParams(), 2)
	// Find a target whose two candidates differ.
	var target string
	for i := 0; ; i++ {
		target = "t" + string(rune('a'+i))
		a := saltedHash(target, 0) % 2
		b := saltedHash(target, 1) % 2
		if a != b {
			break
		}
	}
	base := s.Select(0, Request{Target: target})
	other := 1 - base
	// Panic the preferred candidate: 2×T_high = 130.
	loads.loads[base] = 130
	if got := s.Select(0, Request{Target: target}); got != other {
		t.Fatalf("panicked candidate still picked: got %d, want %d", got, other)
	}
	// Panic both: spill to least relative-loaded.
	loads.loads[other] = 131
	if got := s.Select(0, Request{Target: target}); got != base {
		t.Fatalf("spill pick = %d, want %d (lower load)", got, base)
	}
	if s.Spills() != 1 {
		t.Fatalf("spills = %d, want 1", s.Spills())
	}
}

func TestPODWeightAwarePick(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewPOD(loads, DefaultParams(), 2)
	s.SetProfile(0, Profile{TLow: 100, THigh: 260, Weight: 4})
	var target string
	for i := 0; ; i++ {
		target = "w" + string(rune('a'+i))
		if saltedHash(target, 0)%2 != saltedHash(target, 1)%2 {
			break
		}
	}
	// Node 0 at raw 40 (relative 10) beats node 1 at raw 20 (relative 20).
	loads.set(40, 20)
	if got := s.Select(0, Request{Target: target}); got != 0 {
		t.Fatalf("pick = %d, want weighted node 0", got)
	}
}

func TestWRRWeightProportional(t *testing.T) {
	loads := &fakeLoads{loads: []int{40, 30}}
	s := NewWRR(loads)
	// Uniform weights: raw least-loaded wins.
	if got := s.Select(0, Request{}); got != 1 {
		t.Fatalf("uniform pick = %d, want 1", got)
	}
	// Weight 4 on node 0: relative 10 vs 30.
	s.SetProfile(0, Profile{TLow: 100, THigh: 260, Weight: 4})
	if got := s.Select(0, Request{}); got != 0 {
		t.Fatalf("weighted pick = %d, want 0", got)
	}
	if got := s.NodeProfile(0).Weight; got != 4 {
		t.Fatalf("NodeProfile(0).Weight = %v, want 4", got)
	}
}

// LARD with per-node profiles: a half-capacity node sheds a target at its
// own lower T_high, not the fleet default.
func TestLARDPerNodeThresholds(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	params := DefaultParams() // TLow 25, THigh 65
	s := NewLARD(loads, params)
	s.SetProfile(0, Profile{TLow: 13, THigh: 33, Weight: 0.5})

	if got := s.Select(0, Request{Target: "x"}); got < 0 {
		t.Fatal("no pick")
	}
	// Pin "x" to node 0.
	loads.set(0, 100)
	if got := s.Select(0, Request{Target: "x"}); got != 0 {
		t.Fatalf("assignment = %d, want 0", got)
	}
	// Load 34 on the small node exceeds its own T_high 33; node 1 at 10
	// is below its T_low 25 → move. Under the fleet default (65) this
	// load would not trigger.
	loads.set(34, 10)
	if got := s.Select(0, Request{Target: "x"}); got != 1 {
		t.Fatalf("small node kept target at load 34 > its T_high 33: got %d", got)
	}
	if s.Moves() != 1 {
		t.Fatalf("moves = %d, want 1", s.Moves())
	}
}
