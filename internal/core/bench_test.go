package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// benchLoads simulates a balanced 8-node cluster.
type benchLoads struct{ loads [8]int }

func (l *benchLoads) NodeCount() int { return len(l.loads) }
func (l *benchLoads) Load(i int) int { return l.loads[i] }

// benchDispatch measures a strategy's per-request dispatch cost — the
// paper notes the dispatcher "amounts to only a small fraction of the
// handoff overhead" (≈10 µs of 300 µs on its hardware).
func benchDispatch(b *testing.B, s Strategy) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	targets := make([]string, 4096)
	for i := range targets {
		targets[i] = fmt.Sprintf("/doc%04d.html", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(time.Duration(i)*time.Millisecond, Request{Target: targets[rng.Intn(len(targets))]})
	}
}

func BenchmarkWRRSelect(b *testing.B) { benchDispatch(b, NewWRR(&benchLoads{})) }
func BenchmarkLBSelect(b *testing.B)  { benchDispatch(b, NewLB(&benchLoads{})) }
func BenchmarkLARDSelect(b *testing.B) {
	benchDispatch(b, NewLARD(&benchLoads{}, DefaultParams()))
}
func BenchmarkLARDRSelect(b *testing.B) {
	benchDispatch(b, NewLARDR(&benchLoads{}, DefaultParams()))
}
func BenchmarkLBGCSelect(b *testing.B) {
	benchDispatch(b, NewLBGC(&benchLoads{}, 32<<20))
}
