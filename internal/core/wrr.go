package core

import "time"

// WRR is the paper's baseline: "weighted round-robin request distribution
// ... weighted by some measure of the load on the different back ends"
// (Section 2.2). Each request goes to the currently least-loaded alive
// node, with ties broken round-robin — the limiting behaviour of weighted
// round-robin when the weight is the (inverse) number of open connections,
// which is the load measure the paper's front end maintains.
//
// WRR produces near-perfect load balancing but ignores locality: every
// back end sees (a sample of) the entire working set.
//
// On a heterogeneous fleet WRR is weight-proportional: the pick minimizes
// load divided by the node's profile Weight, so a 2× node settles at
// twice the connections of a 1× node. With uniform weights (the default)
// this is exactly the paper's least-loaded pick.
type WRR struct {
	nodes nodeSet
}

// NewWRR returns a WRR strategy over the given load information. Nodes
// start at weight 1 (the uniform paper baseline); SetProfile assigns
// per-node weights.
func NewWRR(loads LoadReader) *WRR {
	return &WRR{nodes: newNodeSet(loads, DefaultProfile())}
}

// Name implements Strategy.
func (s *WRR) Name() string { return "WRR" }

// Select implements Strategy.
func (s *WRR) Select(_ time.Duration, _ Request) int {
	return s.nodes.leastRelLoaded()
}

// NodeDown implements FailureAware.
func (s *WRR) NodeDown(node int) { s.nodes.setDown(node, true) }

// NodeUp implements FailureAware.
func (s *WRR) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware.
func (s *WRR) AddNode() int { return s.nodes.add() }

// RemoveNode implements MembershipAware.
func (s *WRR) RemoveNode(node int) { s.nodes.remove(node) }

// SetDraining implements MembershipAware.
func (s *WRR) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// SetProfile implements ProfileAware: the node's weight shifts its share of
// subsequent picks proportionally.
func (s *WRR) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *WRR) NodeProfile(node int) Profile { return s.nodes.profile(node) }

var (
	_ Strategy        = (*WRR)(nil)
	_ FailureAware    = (*WRR)(nil)
	_ MembershipAware = (*WRR)(nil)
	_ ProfileAware    = (*WRR)(nil)
)
