package core

import "time"

// LARDR implements LARD with replication, a direct transcription of the
// paper's Figure 3:
//
//	while true
//	    fetch next request r
//	    if serverSet[r.target] = ∅ then
//	        n, serverSet[r.target] ← {least loaded node}
//	    else
//	        n ← {least loaded node in serverSet[r.target]}
//	        m ← {most loaded node in serverSet[r.target]}
//	        if (n.load > T_high && ∃ node with load < T_low) ||
//	           n.load ≥ 2·T_high then
//	            p ← {least loaded node}
//	            add p to serverSet[r.target]
//	            n ← p
//	        if |serverSet[r.target]| > 1 &&
//	           time() − serverSet[r.target].lastMod > K then
//	            remove m from serverSet[r.target]
//	    send r to n
//	    if serverSet[r.target] changed in this iteration then
//	        serverSet[r.target].lastMod ← time()
//
// A target hot enough to overload a single node accumulates multiple
// servers and requests fan out over them (each request goes to the least
// loaded member); a set that has been stable for K seconds shrinks by its
// most loaded member, so "the degree of replication for a target does not
// remain unnecessarily high once it is requested less often".
type LARDR struct {
	nodes    nodeSet
	params   Params
	sets     *mapping[targetSet]
	grows    uint64
	shrinks  uint64
	assigns  uint64
	maxDepth int
}

type targetSet struct {
	nodes   []int
	lastMod time.Duration
}

// NewLARDR returns a LARD-with-replication strategy. It panics if params
// are invalid.
func NewLARDR(loads LoadReader, params Params) *LARDR {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &LARDR{
		nodes:  newNodeSet(loads, params.Profile()),
		params: params,
		sets:   newMapping[targetSet](params.MappingCapacity),
	}
}

// Name implements Strategy.
func (s *LARDR) Name() string { return "LARD/R" }

// Select implements Strategy.
func (s *LARDR) Select(now time.Duration, r Request) int {
	set, ok := s.sets.get(r.Target)
	if ok {
		set.nodes = s.pruneDead(set.nodes)
	}
	if !ok || len(set.nodes) == 0 {
		n := s.nodes.leastLoaded()
		if n < 0 {
			return -1
		}
		s.sets.put(r.Target, targetSet{nodes: []int{n}, lastMod: now})
		s.assigns++
		return n
	}

	n := s.leastLoadedOf(set.nodes)
	m := s.mostLoadedOf(set.nodes)
	changed := false

	// As in LARD, the imbalance test consults the serving node's own
	// thresholds, so replication triggers at the load that overloads the
	// set's least-loaded member specifically.
	load := s.nodes.loads.Load(n)
	high := s.nodes.profile(n).THigh
	if (load > high && s.nodes.anyBelowTLow()) || load >= 2*high {
		if p := s.nodes.leastLoaded(); p >= 0 && !containsNode(set.nodes, p) {
			set.nodes = append(set.nodes, p)
			n = p
			changed = true
			s.grows++
			if len(set.nodes) > s.maxDepth {
				s.maxDepth = len(set.nodes)
			}
		}
	}

	if len(set.nodes) > 1 && now-set.lastMod > s.params.K {
		set.nodes = removeNode(set.nodes, m)
		changed = true
		s.shrinks++
		if n == m {
			// The node we were about to use left the set; fall back to the
			// least loaded remaining member.
			n = s.leastLoadedOf(set.nodes)
		}
	}

	if changed {
		set.lastMod = now
	}
	s.sets.put(r.Target, set)
	return n
}

// pruneDead drops failed nodes from a server set.
func (s *LARDR) pruneDead(nodes []int) []int {
	out := nodes[:0]
	for _, n := range nodes {
		if s.nodes.alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// leastLoadedOf returns the member with minimum load (first wins ties).
func (s *LARDR) leastLoadedOf(nodes []int) int {
	best, bestLoad := -1, 0
	for _, n := range nodes {
		l := s.nodes.loads.Load(n)
		if best == -1 || l < bestLoad {
			best, bestLoad = n, l
		}
	}
	return best
}

// mostLoadedOf returns the member with maximum load (last wins ties, so a
// tied set never removes the node Select is about to use when n was chosen
// first-wins).
func (s *LARDR) mostLoadedOf(nodes []int) int {
	best, bestLoad := -1, -1
	for _, n := range nodes {
		l := s.nodes.loads.Load(n)
		if l >= bestLoad {
			best, bestLoad = n, l
		}
	}
	return best
}

func containsNode(nodes []int, n int) bool {
	for _, v := range nodes {
		if v == n {
			return true
		}
	}
	return false
}

func removeNode(nodes []int, n int) []int {
	out := nodes[:0]
	for _, v := range nodes {
		if v != n {
			out = append(out, v)
		}
	}
	return out
}

// NodeDown implements FailureAware: failed nodes are pruned from server
// sets lazily on the next request for each target.
func (s *LARDR) NodeDown(node int) { s.nodes.setDown(node, true) }

// NodeUp implements FailureAware.
func (s *LARDR) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware.
func (s *LARDR) AddNode() int { return s.nodes.add() }

// RemoveNode implements MembershipAware: server-set entries naming the
// removed node are pruned lazily on the next request for each target,
// exactly like a Section 2.6 failure that never recovers.
func (s *LARDR) RemoveNode(node int) { s.nodes.remove(node) }

// SetDraining implements MembershipAware: a draining node drops out of
// server sets lazily, shifting each target's traffic onto the remaining
// replicas (or a fresh assignment).
func (s *LARDR) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// SetProfile implements ProfileAware.
func (s *LARDR) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *LARDR) NodeProfile(node int) Profile { return s.nodes.profile(node) }

// ServerSet returns a copy of the current server set for target, for tests
// and diagnostics.
func (s *LARDR) ServerSet(target string) []int {
	set, ok := s.sets.get(target)
	if !ok {
		return nil
	}
	return append([]int(nil), set.nodes...)
}

// MappedTargets returns the number of targets currently tracked.
func (s *LARDR) MappedTargets() int { return s.sets.len() }

// Grows and Shrinks report how many replication additions and removals
// occurred; MaxReplication reports the deepest server set seen.
func (s *LARDR) Grows() uint64 { return s.grows }

// Shrinks returns the number of server-set removals.
func (s *LARDR) Shrinks() uint64 { return s.shrinks }

// MaxReplication returns the largest server-set size observed.
func (s *LARDR) MaxReplication() int { return s.maxDepth }

var (
	_ Strategy        = (*LARDR)(nil)
	_ FailureAware    = (*LARDR)(nil)
	_ MembershipAware = (*LARDR)(nil)
	_ ProfileAware    = (*LARDR)(nil)
)
