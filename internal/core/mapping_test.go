package core

import (
	"fmt"
	"testing"
)

func TestMappingGetPut(t *testing.T) {
	m := newMapping[int](0)
	if _, ok := m.get("x"); ok {
		t.Fatal("empty mapping returned a value")
	}
	m.put("x", 3)
	if v, ok := m.get("x"); !ok || v != 3 {
		t.Fatalf("get(x) = (%d, %v)", v, ok)
	}
	m.put("x", 7)
	if v, _ := m.get("x"); v != 7 {
		t.Fatalf("updated value = %d, want 7", v)
	}
	if m.len() != 1 {
		t.Fatalf("len = %d, want 1", m.len())
	}
}

func TestMappingRemove(t *testing.T) {
	m := newMapping[string](0)
	m.put("a", "1")
	m.remove("a")
	if _, ok := m.get("a"); ok {
		t.Fatal("removed key still present")
	}
	m.remove("missing") // must not panic
	if m.len() != 0 {
		t.Fatalf("len = %d", m.len())
	}
}

func TestMappingLRUBound(t *testing.T) {
	m := newMapping[int](3)
	for i := 0; i < 5; i++ {
		m.put(fmt.Sprintf("k%d", i), i)
	}
	if m.len() != 3 {
		t.Fatalf("len = %d, want 3", m.len())
	}
	// k0 and k1 (oldest) were evicted.
	for _, gone := range []string{"k0", "k1"} {
		if _, ok := m.get(gone); ok {
			t.Fatalf("%s survived past the capacity bound", gone)
		}
	}
	for _, kept := range []string{"k2", "k3", "k4"} {
		if _, ok := m.get(kept); !ok {
			t.Fatalf("%s evicted wrongly", kept)
		}
	}
}

func TestMappingLRURecencyOnGet(t *testing.T) {
	m := newMapping[int](2)
	m.put("a", 1)
	m.put("b", 2)
	m.get("a") // refresh a; b becomes LRU
	m.put("c", 3)
	if _, ok := m.get("b"); ok {
		t.Fatal("b should have been the LRU victim")
	}
	if _, ok := m.get("a"); !ok {
		t.Fatal("a was evicted despite recent access")
	}
}

func TestMappingUnboundedGrowth(t *testing.T) {
	m := newMapping[int](0)
	for i := 0; i < 10000; i++ {
		m.put(fmt.Sprintf("k%d", i), i)
	}
	if m.len() != 10000 {
		t.Fatalf("len = %d, want 10000", m.len())
	}
}

func TestMappingEach(t *testing.T) {
	m := newMapping[int](0)
	m.put("a", 1)
	m.put("b", 2)
	seen := map[string]int{}
	m.each(func(k string, v *int) {
		seen[k] = *v
		*v *= 10 // mutate through the pointer
	})
	if len(seen) != 2 || seen["a"] != 1 || seen["b"] != 2 {
		t.Fatalf("each saw %v", seen)
	}
	if v, _ := m.get("a"); v != 10 {
		t.Fatalf("mutation not visible: a = %d", v)
	}
}

func TestMappingNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	newMapping[int](-1)
}
