package core

import (
	"fmt"
	"testing"
)

func TestLBGCHitRoutesToCachingNode(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLBGC(loads, 1000)
	if s.Name() != "LB/GC" {
		t.Fatalf("Name = %q", s.Name())
	}
	first := s.Select(0, Request{Target: "/a", Size: 100})
	// Pile load onto the caching node; a modelled hit must still go there.
	loads.loads[first] = 500
	if got := s.Select(0, Request{Target: "/a", Size: 100}); got != first {
		t.Fatalf("hit routed to %d, cached on %d", got, first)
	}
}

func TestLBGCFillsFreeNodesFirst(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLBGC(loads, 300)
	// Each miss goes to the node with the most modelled free space, so
	// placements alternate while both have room.
	n1 := s.Select(0, Request{Target: "/a", Size: 100})
	n2 := s.Select(0, Request{Target: "/b", Size: 100})
	if n1 == n2 {
		t.Fatalf("both first misses placed on node %d", n1)
	}
}

func TestLBGCMissEvictsGloballyOldest(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLBGC(loads, 100)
	// Fill both modelled caches: /a is the globally oldest entry.
	na := s.Select(0, Request{Target: "/a", Size: 100})
	nb := s.Select(0, Request{Target: "/b", Size: 100})
	if na == nb {
		t.Fatalf("setup failed: same node %d", na)
	}
	// New target: no free space anywhere; must go to /a's node.
	nc := s.Select(0, Request{Target: "/c", Size: 100})
	if nc != na {
		t.Fatalf("miss routed to %d, want globally-oldest owner %d", nc, na)
	}
	// /a was evicted from the model; requesting it again is a miss whose
	// globally-oldest victim is now /b.
	na2 := s.Select(0, Request{Target: "/a", Size: 100})
	if na2 != nb {
		t.Fatalf("re-request of evicted /a routed to %d, want %d", na2, nb)
	}
}

func TestLBGCHitRefreshesGlobalAge(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLBGC(loads, 100)
	na := s.Select(0, Request{Target: "/a", Size: 100})
	nb := s.Select(0, Request{Target: "/b", Size: 100})
	s.Select(0, Request{Target: "/a", Size: 100}) // hit: /b is now oldest
	nc := s.Select(0, Request{Target: "/c", Size: 100})
	if nc != nb {
		t.Fatalf("miss went to %d, want %d (owner of oldest /b)", nc, nb)
	}
	_ = na
}

func TestLBGCOversizedObjectNotTracked(t *testing.T) {
	loads := &fakeLoads{loads: []int{3, 1}}
	s := NewLBGC(loads, 100)
	got := s.Select(0, Request{Target: "/huge", Size: 500})
	if got != 1 {
		t.Fatalf("oversized object routed to %d, want least-loaded 1", got)
	}
	if s.ModelledEntries() != 0 {
		t.Fatalf("oversized object tracked in model")
	}
}

func TestLBGCModelRespectsNodeCapacity(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0, 0}}
	s := NewLBGC(loads, 250)
	for i := 0; i < 50; i++ {
		s.Select(0, Request{Target: fmt.Sprintf("/f%d", i), Size: 100})
	}
	for i, used := range s.nodeUsed {
		if used > 250 {
			t.Fatalf("node %d modelled usage %d exceeds capacity", i, used)
		}
	}
	// 3 nodes × 250 bytes hold at most 2 entries of 100 bytes each.
	if s.ModelledEntries() > 6 {
		t.Fatalf("ModelledEntries = %d, want <= 6", s.ModelledEntries())
	}
}

func TestLBGCNodeDownForgetsEntries(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLBGC(loads, 1000)
	n := s.Select(0, Request{Target: "/a", Size: 100})
	before := s.ModelledEntries()
	s.NodeDown(n)
	if s.ModelledEntries() >= before {
		t.Fatalf("entries not dropped on failure: %d -> %d", before, s.ModelledEntries())
	}
	got := s.Select(0, Request{Target: "/a", Size: 100})
	if got == n || got == -1 {
		t.Fatalf("target still routed to failed node %d (got %d)", n, got)
	}
	s.NodeUp(n)
}

func TestLBGCAllNodesDown(t *testing.T) {
	s := NewLBGC(&fakeLoads{loads: []int{0}}, 100)
	s.NodeDown(0)
	if got := s.Select(0, Request{Target: "/a", Size: 10}); got != -1 {
		t.Fatalf("Select = %d, want -1", got)
	}
}

func TestLBGCNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLBGC(&fakeLoads{loads: []int{0}}, -1)
}
