package core

import (
	"container/list"
	"time"
)

// LBGC is the paper's idealized locality-based strategy with a front-end
// global-cache model ("LB/GC", Section 4): "the front end keeps track of
// each back end's cache state to achieve the effect of a global cache. On
// a cache hit the front end sends the request to the back end that caches
// the target. On a miss the front end sends the request to the back end
// that caches the globally 'oldest' target, thus causing eviction of that
// target."
//
// The model is deliberately idealized — the paper uses it as an upper
// bound on what cache-state tracking could buy, and finds that plain LB
// (and therefore LARD, which tracks no cache state) comes close.
type LBGC struct {
	nodes    nodeSet
	nodeCap  int64
	global   *list.List // front = most recently used modelled cache entry
	index    map[string]*list.Element
	nodeUsed []int64
}

type lbgcEntry struct {
	target string
	node   int
	size   int64
}

// NewLBGC returns an LB/GC strategy modelling a per-node cache of
// nodeCacheBytes. It panics if nodeCacheBytes is negative.
func NewLBGC(loads LoadReader, nodeCacheBytes int64) *LBGC {
	if nodeCacheBytes < 0 {
		panic("core: negative LB/GC node cache size")
	}
	ns := newNodeSet(loads, DefaultProfile())
	return &LBGC{
		nodes:    ns,
		nodeCap:  nodeCacheBytes,
		global:   list.New(),
		index:    make(map[string]*list.Element),
		nodeUsed: make([]int64, loads.NodeCount()),
	}
}

// Name implements Strategy.
func (s *LBGC) Name() string { return "LB/GC" }

// Select implements Strategy.
func (s *LBGC) Select(_ time.Duration, r Request) int {
	if el, ok := s.index[r.Target]; ok {
		ent := el.Value.(*lbgcEntry)
		if s.nodes.alive(ent.node) {
			s.global.MoveToFront(el)
			return ent.node
		}
		// The caching node failed; forget the stale entry and re-place.
		s.evictElement(el)
	}

	// Miss. Objects too large for the modelled cache are served by the
	// least-loaded node and not tracked.
	if r.Size > s.nodeCap {
		return s.nodes.leastLoaded()
	}

	node := s.placeMiss(r.Size)
	if node < 0 {
		return -1
	}
	// Model the insertion, evicting the chosen node's globally oldest
	// entries until the object fits.
	s.makeRoom(node, r.Size)
	s.nodeUsed[node] += r.Size
	s.index[r.Target] = s.global.PushFront(&lbgcEntry{target: r.Target, node: node, size: r.Size})
	return node
}

// placeMiss picks the node for an uncached target: a node with modelled
// free space if one exists (most free space wins), otherwise the node
// caching the globally oldest target.
func (s *LBGC) placeMiss(size int64) int {
	best, bestFree := -1, int64(-1)
	for _, i := range s.nodes.aliveNodes() {
		free := s.nodeCap - s.nodeUsed[i]
		if free >= size && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best >= 0 {
		return best
	}
	// All full: route to the owner of the globally oldest entry.
	for el := s.global.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*lbgcEntry)
		if s.nodes.alive(ent.node) {
			return ent.node
		}
	}
	return s.nodes.leastLoaded()
}

// makeRoom evicts node's oldest modelled entries until size fits.
func (s *LBGC) makeRoom(node int, size int64) {
	for s.nodeUsed[node]+size > s.nodeCap {
		el := s.oldestOf(node)
		if el == nil {
			return
		}
		s.evictElement(el)
	}
}

// oldestOf returns the globally oldest modelled entry belonging to node.
func (s *LBGC) oldestOf(node int) *list.Element {
	for el := s.global.Back(); el != nil; el = el.Prev() {
		if el.Value.(*lbgcEntry).node == node {
			return el
		}
	}
	return nil
}

func (s *LBGC) evictElement(el *list.Element) {
	ent := el.Value.(*lbgcEntry)
	s.global.Remove(el)
	delete(s.index, ent.target)
	s.nodeUsed[ent.node] -= ent.size
}

// NodeDown implements FailureAware: the failed node's modelled cache
// contents are forgotten, so its targets are re-placed on demand exactly
// "as if they had not been assigned before".
func (s *LBGC) NodeDown(node int) {
	s.nodes.setDown(node, true)
	s.dropEntriesOf(node)
}

// NodeUp implements FailureAware.
func (s *LBGC) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware: the new node starts with an empty
// modelled cache, so placeMiss favors it until it fills.
func (s *LBGC) AddNode() int {
	s.nodeUsed = append(s.nodeUsed, 0)
	return s.nodes.add()
}

// RemoveNode implements MembershipAware: the removed node's modelled cache
// contents are forgotten, like a Section 2.6 failure with no recovery.
func (s *LBGC) RemoveNode(node int) {
	s.nodes.remove(node)
	s.dropEntriesOf(node)
}

// SetDraining implements MembershipAware. Modelled entries are not
// dropped eagerly, but Select's liveness check lazily evicts and
// re-places any entry of a draining node that is accessed — mirroring
// that another node now caches the target. Only entries never touched
// during the drain survive to an Undrain.
func (s *LBGC) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// dropEntriesOf forgets every modelled entry belonging to node.
func (s *LBGC) dropEntriesOf(node int) {
	var next *list.Element
	for el := s.global.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*lbgcEntry).node == node {
			s.evictElement(el)
		}
	}
}

// SetProfile implements ProfileAware. LB/GC places by modelled cache state,
// not load, so the profile is recorded for reporting but does not alter
// placement — matching the paper's capacity-blind idealization.
func (s *LBGC) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *LBGC) NodeProfile(node int) Profile { return s.nodes.profile(node) }

// ModelledEntries returns the number of targets currently tracked by the
// front-end cache model, for tests and diagnostics.
func (s *LBGC) ModelledEntries() int { return s.global.Len() }

var (
	_ Strategy        = (*LBGC)(nil)
	_ FailureAware    = (*LBGC)(nil)
	_ MembershipAware = (*LBGC)(nil)
	_ ProfileAware    = (*LBGC)(nil)
)
