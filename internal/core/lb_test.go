package core

import (
	"fmt"
	"testing"
)

func TestLBDeterministicPartitioning(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0, 0, 0}}
	s := NewLB(loads)
	if s.Name() != "LB" {
		t.Fatalf("Name = %q", s.Name())
	}
	first := s.Select(0, Request{Target: "/some/file.html"})
	for i := 0; i < 10; i++ {
		if got := s.Select(0, Request{Target: "/some/file.html"}); got != first {
			t.Fatalf("same target moved: %d then %d", first, got)
		}
	}
}

func TestLBIgnoresLoad(t *testing.T) {
	loads := &fakeLoads{loads: []int{1000, 0}}
	s := NewLB(loads)
	// Find a target that maps to the overloaded node 0 and confirm it
	// stays there regardless of load.
	for i := 0; i < 100; i++ {
		target := fmt.Sprintf("/t%d", i)
		if s.Select(0, Request{Target: target}) == 0 {
			loads.set(5000, 0)
			if got := s.Select(0, Request{Target: target}); got != 0 {
				t.Fatalf("LB moved target off overloaded node")
			}
			return
		}
	}
	t.Fatal("no target hashed to node 0 in 100 tries")
}

func TestLBPartitionsRoughlyEvenly(t *testing.T) {
	// "A good hashing function partitions both the name space and the
	// working set more or less evenly among the back ends."
	loads := &fakeLoads{loads: make([]int, 8)}
	s := NewLB(loads)
	counts := make([]int, 8)
	const targets = 8000
	for i := 0; i < targets; i++ {
		counts[s.Select(0, Request{Target: fmt.Sprintf("/dir%d/file%d.html", i%37, i)})]++
	}
	want := targets / 8
	for i, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Fatalf("node %d got %d targets, want %d±20%% (counts %v)", i, c, want, counts)
		}
	}
}

func TestLBFailureRehashes(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0, 0}}
	s := NewLB(loads)
	target := "/sticky.html"
	orig := s.Select(0, Request{Target: target})
	s.NodeDown(orig)
	moved := s.Select(0, Request{Target: target})
	if moved == orig || moved == -1 {
		t.Fatalf("target not re-hashed after failure: %d -> %d", orig, moved)
	}
	s.NodeUp(orig)
	if got := s.Select(0, Request{Target: target}); got != orig {
		t.Fatalf("target did not return to original node after recovery: %d", got)
	}
	s.NodeDown(0)
	s.NodeDown(1)
	s.NodeDown(2)
	if got := s.Select(0, Request{Target: target}); got != -1 {
		t.Fatalf("Select = %d with all down, want -1", got)
	}
}
