// Package core implements the request-distribution strategies of the LARD
// paper (Section 2) — the paper's primary contribution.
//
// A Strategy decides, for each incoming request, which back-end node should
// serve it. The same Strategy implementations drive both the trace-driven
// cluster simulator (internal/cluster) and the live prototype front end
// (internal/frontend), mirroring how the paper evaluates one policy in both
// settings.
//
// Implemented strategies:
//
//   - WRR: weighted round-robin over back-end load, the paper's
//     "state-of-the-art" baseline (Section 2.2).
//   - LB: locality-based hash partitioning of the target name space
//     (Section 2.3).
//   - LBGC: LB with a front-end model of a global cache — on a hit route
//     to the caching node, on a miss route to the node caching the
//     globally oldest target (Section 4, "LB/GC").
//   - LARD: basic locality-aware request distribution (Figure 2).
//   - LARDR: LARD with replication (Figure 3).
//
// Strategies are deterministic and not safe for concurrent use; callers
// that dispatch from multiple goroutines (the live front end) must
// serialize calls. The paper's front end is likewise a single dispatch
// point.
package core

import (
	"fmt"
	"time"
)

// Request carries the request attributes visible to the front end after
// inspecting the connection's first request: the target (URL plus
// arguments, per the paper's definition) and, when known, its size.
type Request struct {
	Target string
	Size   int64
}

// LoadReader exposes back-end load information to strategies. The paper's
// front end derives load from its own connection bookkeeping: "a node's
// load is measured as the number of active connections", requiring no
// communication with the back ends.
type LoadReader interface {
	// NodeCount returns the number of back-end nodes (alive or not).
	NodeCount() int

	// Load returns the number of active connections assigned to node:
	// handed off and not yet completed.
	Load(node int) int
}

// Strategy selects a back-end node for each request.
type Strategy interface {
	// Name returns the strategy's short name as used in the paper's
	// figures (e.g. "WRR", "LARD/R").
	Name() string

	// Select returns the node that should serve r, given the current
	// (virtual or wall-clock) time. It returns -1 if no back-end node is
	// available.
	Select(now time.Duration, r Request) int
}

// FailureAware is implemented by strategies that support the paper's
// back-end failure recovery (Section 2.6): on failure the front end
// "simply re-assigns targets assigned to the failed back end as if they
// had not been assigned before".
type FailureAware interface {
	// NodeDown marks a node failed; Select will no longer return it.
	NodeDown(node int)

	// NodeUp restores a failed node.
	NodeUp(node int)
}

// MembershipAware is implemented by strategies that support runtime
// cluster membership changes. Node indices are stable and never reused:
// AddNode always extends the index space, and a removed node's index
// remains permanently ineligible.
//
// Removal invalidates a strategy's state for the node exactly like a
// Section 2.6 failure: mappings and server-set entries pointing at it are
// ignored (and lazily re-assigned) as if they had never been made.
type MembershipAware interface {
	// AddNode grows the node set by one and returns the new node's index.
	// The caller must have extended its LoadReader first, so Load(new) is
	// valid before AddNode returns.
	AddNode() int

	// RemoveNode permanently retires a node; Select will never return it
	// again. Removing an unknown or already-removed node is a no-op.
	RemoveNode(node int)

	// SetDraining marks a node draining (true) or restores it (false). A
	// draining node receives no new assignments — Select treats it like a
	// failed node — while its in-flight work finishes elsewhere in the
	// stack.
	SetDraining(node int, draining bool)
}

// Params holds the LARD tuning parameters (Section 2.4).
type Params struct {
	// TLow is the load "below which a back end is likely to have idle
	// resources".
	TLow int

	// THigh is the load "above which a node is likely to cause substantial
	// delay in serving requests". A target is moved when its node exceeds
	// THigh while another sits below TLow, or unconditionally at 2×THigh.
	THigh int

	// K is the replication timer of LARD/R: a server set that has not
	// changed for K shrinks by one node.
	K time.Duration

	// MappingCapacity bounds the number of targets tracked in the
	// front end's mapping, evicting least-recently-used assignments
	// (Section 2.6: "the mappings can be maintained in an LRU cache").
	// Zero means unbounded.
	MappingCapacity int
}

// DefaultParams returns the settings the paper found "to give good
// performance across all workloads we tested": TLow = 25 and THigh = 65
// active connections, K = 20 s.
func DefaultParams() Params {
	return Params{TLow: 25, THigh: 65, K: 20 * time.Second}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.TLow < 1:
		return fmt.Errorf("core: TLow = %d, need >= 1", p.TLow)
	case p.THigh <= p.TLow:
		return fmt.Errorf("core: THigh = %d must exceed TLow = %d", p.THigh, p.TLow)
	case p.K < 0:
		return fmt.Errorf("core: negative K")
	case p.MappingCapacity < 0:
		return fmt.Errorf("core: negative MappingCapacity")
	}
	return nil
}

// MaxOutstanding returns S = (n−1)·T_high + T_low + 1, the total number of
// connections the front end admits to an n-node cluster. The paper chooses
// S so that "at most n−1 nodes can have a load ≥ T_high while no node has
// load < T_low", leaving room for bounded imbalance without idling nodes.
// It is the uniform-fleet special case of MaxOutstandingOver.
func (p Params) MaxOutstanding(n int) int {
	if n < 1 {
		return 0
	}
	return (n-1)*p.THigh + p.TLow + 1
}

// Profile is one node's capacity profile: the per-node generalization of
// the fleet-wide Params thresholds for heterogeneous clusters.
//
// TLow and THigh play the roles of Params.TLow/THigh for this node alone:
// a small node trips the move condition at a lower load than a big one.
// Weight is the node's relative capacity used by placement rules that
// compare loads across nodes (WRR's weight-proportional pick, POD's
// choice cost, WLARD's weight-scaled imbalance test); 1.0 is a standard
// node, 2.0 a node with twice the capacity.
type Profile struct {
	// TLow is the load below which this node is likely to have idle
	// resources.
	TLow int

	// THigh is the load above which this node is likely to cause
	// substantial delay; its targets move away when it exceeds THigh
	// while another node sits below its own TLow, or unconditionally at
	// 2×THigh.
	THigh int

	// Weight is the node's relative capacity (> 0).
	Weight float64
}

// DefaultProfile returns the profile of a standard node under the paper's
// default parameters: TLow = 25, THigh = 65, Weight = 1.
func DefaultProfile() Profile { return DefaultParams().Profile() }

// Profile returns the uniform per-node profile implied by the fleet-wide
// parameters: every node gets p's thresholds at weight 1.
func (p Params) Profile() Profile {
	return Profile{TLow: p.TLow, THigh: p.THigh, Weight: 1}
}

// Validate reports whether the profile is usable.
func (p Profile) Validate() error {
	switch {
	case p.TLow < 1:
		return fmt.Errorf("core: profile TLow = %d, need >= 1", p.TLow)
	case p.THigh <= p.TLow:
		return fmt.Errorf("core: profile THigh = %d must exceed TLow = %d", p.THigh, p.TLow)
	case p.Weight <= 0:
		return fmt.Errorf("core: profile Weight = %v, need > 0", p.Weight)
	}
	return nil
}

// MaxOutstandingOver returns the heterogeneous admission bound
//
//	S = Σᵢ T_high,i − maxᵢ T_high,i + minᵢ T_low,i + 1
//
// over the given per-node profiles. It preserves the paper's guarantee in
// per-node form: with at most S connections outstanding, at most n−1 nodes
// can sit at or above their own T_high while no node is below its own
// T_low — so whenever some node is overloaded by its profile's standard,
// an idle node exists and the strategies' move condition can fire. On a
// uniform fleet it reduces exactly to Params.MaxOutstanding(n).
func MaxOutstandingOver(profiles []Profile) int {
	if len(profiles) == 0 {
		return 0
	}
	sum, maxHigh, minLow := 0, profiles[0].THigh, profiles[0].TLow
	for _, p := range profiles {
		sum += p.THigh
		if p.THigh > maxHigh {
			maxHigh = p.THigh
		}
		if p.TLow < minLow {
			minLow = p.TLow
		}
	}
	return sum - maxHigh + minLow + 1
}

// ProfileAware is implemented by strategies that carry per-node capacity
// profiles. All built-in strategies implement it (through the shared
// nodeSet); the dispatcher layer uses it to install initial profiles and
// to fan out runtime profile changes.
type ProfileAware interface {
	// SetProfile replaces node's capacity profile. The caller has
	// validated the profile; setting a profile on an unknown node is a
	// no-op.
	SetProfile(node int, p Profile)

	// NodeProfile returns node's current capacity profile.
	NodeProfile(node int) Profile
}

// nodeSet tracks which nodes are eligible for new assignments and
// provides the load-based node picks shared by the strategies. A node is
// eligible ("alive" below) when it has not failed (Section 2.6), is not
// draining, and has not been removed from the cluster. The set is
// growable; indices are stable and never reused.
//
// The set also carries each node's capacity Profile. Nodes start from the
// default profile the strategy was built with (derived from its Params, or
// DefaultProfile for strategies without thresholds) and may be retuned
// per node through setProfile; nodes added later inherit the default.
type nodeSet struct {
	loads    LoadReader
	def      Profile
	profiles []Profile
	down     []bool
	drain    []bool
	removed  []bool
	// rr rotates tie-breaks so equal-load nodes are picked round-robin.
	rr int
}

func newNodeSet(loads LoadReader, def Profile) nodeSet {
	if loads == nil {
		panic("core: nil LoadReader")
	}
	if err := def.Validate(); err != nil {
		panic(err)
	}
	n := loads.NodeCount()
	if n < 1 {
		panic("core: LoadReader reports no nodes")
	}
	profiles := make([]Profile, n)
	for i := range profiles {
		profiles[i] = def
	}
	return nodeSet{
		loads:    loads,
		def:      def,
		profiles: profiles,
		down:     make([]bool, n),
		drain:    make([]bool, n),
		removed:  make([]bool, n),
	}
}

// profile returns node's capacity profile (the default for out-of-range
// indices, which keeps lookups on the dispatch path branch-cheap).
func (s *nodeSet) profile(node int) Profile {
	if node < 0 || node >= len(s.profiles) {
		return s.def
	}
	return s.profiles[node]
}

// setProfile replaces node's capacity profile. Unknown nodes are ignored.
func (s *nodeSet) setProfile(node int, p Profile) {
	if node >= 0 && node < len(s.profiles) {
		s.profiles[node] = p
	}
}

func (s *nodeSet) alive(node int) bool {
	return node >= 0 && node < len(s.down) &&
		!s.down[node] && !s.drain[node] && !s.removed[node]
}

func (s *nodeSet) setDown(node int, down bool) {
	if node >= 0 && node < len(s.down) {
		s.down[node] = down
	}
}

// add extends the node set with one fresh, eligible node carrying the
// default profile and returns its index. The caller's LoadReader must
// already report the new node.
func (s *nodeSet) add() int {
	s.profiles = append(s.profiles, s.def)
	s.down = append(s.down, false)
	s.drain = append(s.drain, false)
	s.removed = append(s.removed, false)
	return len(s.down) - 1
}

// remove permanently retires a node; its index is never reused.
func (s *nodeSet) remove(node int) {
	if node >= 0 && node < len(s.removed) {
		s.removed[node] = true
	}
}

func (s *nodeSet) setDraining(node int, draining bool) {
	if node >= 0 && node < len(s.drain) {
		s.drain[node] = draining
	}
}

// aliveNodes returns the alive node indices in ascending order.
func (s *nodeSet) aliveNodes() []int {
	out := make([]int, 0, len(s.down))
	for i := range s.down {
		if s.alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// leastLoaded returns the alive node with the minimum load, rotating the
// starting point so ties are broken round-robin, or -1 if none is alive.
func (s *nodeSet) leastLoaded() int {
	n := len(s.down)
	best, bestLoad := -1, 0
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if !s.alive(i) {
			continue
		}
		l := s.loads.Load(i)
		if best == -1 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best >= 0 {
		s.rr = (best + 1) % n
	}
	return best
}

// anyBelowTLow reports whether some alive node sits below its own
// profile's T_low — the per-node form of the paper's "∃ node with load <
// T_low" idle test.
func (s *nodeSet) anyBelowTLow() bool {
	for i := range s.down {
		if s.alive(i) && s.loads.Load(i) < s.profiles[i].TLow {
			return true
		}
	}
	return false
}

// / relLoad returns node's capacity-relative load: active connections
// divided by the profile weight, so a 2× node at 40 connections compares
// equal to a 1× node at 20.
func (s *nodeSet) relLoad(node int) float64 {
	return float64(s.loads.Load(node)) / s.profiles[node].Weight
}

// leastRelLoaded returns the alive node with the minimum capacity-relative
// load (load / weight), rotating the starting point so ties are broken
// round-robin, or -1 if none is alive. On a uniform fleet (all weights 1)
// it is exactly leastLoaded.
func (s *nodeSet) leastRelLoaded() int {
	n := len(s.down)
	best, bestLoad := -1, 0.0
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if !s.alive(i) {
			continue
		}
		l := s.relLoad(i)
		if best == -1 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best >= 0 {
		s.rr = (best + 1) % n
	}
	return best
}

// anyRelBelow reports whether some alive node has capacity-relative load
// strictly below bound.
func (s *nodeSet) anyRelBelow(bound float64) bool {
	for i := range s.down {
		if s.alive(i) && s.relLoad(i) < bound {
			return true
		}
	}
	return false
}
