// Package core implements the request-distribution strategies of the LARD
// paper (Section 2) — the paper's primary contribution.
//
// A Strategy decides, for each incoming request, which back-end node should
// serve it. The same Strategy implementations drive both the trace-driven
// cluster simulator (internal/cluster) and the live prototype front end
// (internal/frontend), mirroring how the paper evaluates one policy in both
// settings.
//
// Implemented strategies:
//
//   - WRR: weighted round-robin over back-end load, the paper's
//     "state-of-the-art" baseline (Section 2.2).
//   - LB: locality-based hash partitioning of the target name space
//     (Section 2.3).
//   - LBGC: LB with a front-end model of a global cache — on a hit route
//     to the caching node, on a miss route to the node caching the
//     globally oldest target (Section 4, "LB/GC").
//   - LARD: basic locality-aware request distribution (Figure 2).
//   - LARDR: LARD with replication (Figure 3).
//
// Strategies are deterministic and not safe for concurrent use; callers
// that dispatch from multiple goroutines (the live front end) must
// serialize calls. The paper's front end is likewise a single dispatch
// point.
package core

import (
	"fmt"
	"time"
)

// Request carries the request attributes visible to the front end after
// inspecting the connection's first request: the target (URL plus
// arguments, per the paper's definition) and, when known, its size.
type Request struct {
	Target string
	Size   int64
}

// LoadReader exposes back-end load information to strategies. The paper's
// front end derives load from its own connection bookkeeping: "a node's
// load is measured as the number of active connections", requiring no
// communication with the back ends.
type LoadReader interface {
	// NodeCount returns the number of back-end nodes (alive or not).
	NodeCount() int

	// Load returns the number of active connections assigned to node:
	// handed off and not yet completed.
	Load(node int) int
}

// Strategy selects a back-end node for each request.
type Strategy interface {
	// Name returns the strategy's short name as used in the paper's
	// figures (e.g. "WRR", "LARD/R").
	Name() string

	// Select returns the node that should serve r, given the current
	// (virtual or wall-clock) time. It returns -1 if no back-end node is
	// available.
	Select(now time.Duration, r Request) int
}

// FailureAware is implemented by strategies that support the paper's
// back-end failure recovery (Section 2.6): on failure the front end
// "simply re-assigns targets assigned to the failed back end as if they
// had not been assigned before".
type FailureAware interface {
	// NodeDown marks a node failed; Select will no longer return it.
	NodeDown(node int)

	// NodeUp restores a failed node.
	NodeUp(node int)
}

// MembershipAware is implemented by strategies that support runtime
// cluster membership changes. Node indices are stable and never reused:
// AddNode always extends the index space, and a removed node's index
// remains permanently ineligible.
//
// Removal invalidates a strategy's state for the node exactly like a
// Section 2.6 failure: mappings and server-set entries pointing at it are
// ignored (and lazily re-assigned) as if they had never been made.
type MembershipAware interface {
	// AddNode grows the node set by one and returns the new node's index.
	// The caller must have extended its LoadReader first, so Load(new) is
	// valid before AddNode returns.
	AddNode() int

	// RemoveNode permanently retires a node; Select will never return it
	// again. Removing an unknown or already-removed node is a no-op.
	RemoveNode(node int)

	// SetDraining marks a node draining (true) or restores it (false). A
	// draining node receives no new assignments — Select treats it like a
	// failed node — while its in-flight work finishes elsewhere in the
	// stack.
	SetDraining(node int, draining bool)
}

// Params holds the LARD tuning parameters (Section 2.4).
type Params struct {
	// TLow is the load "below which a back end is likely to have idle
	// resources".
	TLow int

	// THigh is the load "above which a node is likely to cause substantial
	// delay in serving requests". A target is moved when its node exceeds
	// THigh while another sits below TLow, or unconditionally at 2×THigh.
	THigh int

	// K is the replication timer of LARD/R: a server set that has not
	// changed for K shrinks by one node.
	K time.Duration

	// MappingCapacity bounds the number of targets tracked in the
	// front end's mapping, evicting least-recently-used assignments
	// (Section 2.6: "the mappings can be maintained in an LRU cache").
	// Zero means unbounded.
	MappingCapacity int
}

// DefaultParams returns the settings the paper found "to give good
// performance across all workloads we tested": TLow = 25 and THigh = 65
// active connections, K = 20 s.
func DefaultParams() Params {
	return Params{TLow: 25, THigh: 65, K: 20 * time.Second}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	switch {
	case p.TLow < 1:
		return fmt.Errorf("core: TLow = %d, need >= 1", p.TLow)
	case p.THigh <= p.TLow:
		return fmt.Errorf("core: THigh = %d must exceed TLow = %d", p.THigh, p.TLow)
	case p.K < 0:
		return fmt.Errorf("core: negative K")
	case p.MappingCapacity < 0:
		return fmt.Errorf("core: negative MappingCapacity")
	}
	return nil
}

// MaxOutstanding returns S = (n−1)·T_high + T_low + 1, the total number of
// connections the front end admits to an n-node cluster. The paper chooses
// S so that "at most n−1 nodes can have a load ≥ T_high while no node has
// load < T_low", leaving room for bounded imbalance without idling nodes.
func (p Params) MaxOutstanding(n int) int {
	if n < 1 {
		return 0
	}
	return (n-1)*p.THigh + p.TLow + 1
}

// nodeSet tracks which nodes are eligible for new assignments and
// provides the load-based node picks shared by the strategies. A node is
// eligible ("alive" below) when it has not failed (Section 2.6), is not
// draining, and has not been removed from the cluster. The set is
// growable; indices are stable and never reused.
type nodeSet struct {
	loads   LoadReader
	down    []bool
	drain   []bool
	removed []bool
	// rr rotates tie-breaks so equal-load nodes are picked round-robin.
	rr int
}

func newNodeSet(loads LoadReader) nodeSet {
	if loads == nil {
		panic("core: nil LoadReader")
	}
	n := loads.NodeCount()
	if n < 1 {
		panic("core: LoadReader reports no nodes")
	}
	return nodeSet{
		loads:   loads,
		down:    make([]bool, n),
		drain:   make([]bool, n),
		removed: make([]bool, n),
	}
}

func (s *nodeSet) alive(node int) bool {
	return node >= 0 && node < len(s.down) &&
		!s.down[node] && !s.drain[node] && !s.removed[node]
}

func (s *nodeSet) setDown(node int, down bool) {
	if node >= 0 && node < len(s.down) {
		s.down[node] = down
	}
}

// add extends the node set with one fresh, eligible node and returns its
// index. The caller's LoadReader must already report the new node.
func (s *nodeSet) add() int {
	s.down = append(s.down, false)
	s.drain = append(s.drain, false)
	s.removed = append(s.removed, false)
	return len(s.down) - 1
}

// remove permanently retires a node; its index is never reused.
func (s *nodeSet) remove(node int) {
	if node >= 0 && node < len(s.removed) {
		s.removed[node] = true
	}
}

func (s *nodeSet) setDraining(node int, draining bool) {
	if node >= 0 && node < len(s.drain) {
		s.drain[node] = draining
	}
}

// aliveNodes returns the alive node indices in ascending order.
func (s *nodeSet) aliveNodes() []int {
	out := make([]int, 0, len(s.down))
	for i := range s.down {
		if s.alive(i) {
			out = append(out, i)
		}
	}
	return out
}

// leastLoaded returns the alive node with the minimum load, rotating the
// starting point so ties are broken round-robin, or -1 if none is alive.
func (s *nodeSet) leastLoaded() int {
	n := len(s.down)
	best, bestLoad := -1, 0
	for k := 0; k < n; k++ {
		i := (s.rr + k) % n
		if !s.alive(i) {
			continue
		}
		l := s.loads.Load(i)
		if best == -1 || l < bestLoad {
			best, bestLoad = i, l
		}
	}
	if best >= 0 {
		s.rr = (best + 1) % n
	}
	return best
}

// anyBelow reports whether some alive node has load < bound.
func (s *nodeSet) anyBelow(bound int) bool {
	for i := range s.down {
		if s.alive(i) && s.loads.Load(i) < bound {
			return true
		}
	}
	return false
}
