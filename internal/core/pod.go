package core

import (
	"encoding/binary"
	"hash/fnv"
	"time"
)

// POD is a power-of-d-choices strategy with per-node capacity cost, after
// Pourmiri et al.'s proximity-aware balanced allocations: each target
// deterministically hashes to d candidate nodes, and a request goes to the
// candidate with the lowest capacity-relative load (load divided by the
// node's profile Weight).
//
// Because the candidate set is a pure function of the target name, a
// target's requests concentrate on at most d nodes — bounding cache
// dilution at d copies of the working set instead of WRR's n — while the
// least-relative-loaded pick keeps the fleet balanced in proportion to
// capacity. Unlike LARD it needs no per-target front-end state, trading
// locality precision for O(1) memory.
//
// A candidate at or above twice its own T_high is skipped (the same panic
// level LARD uses to abandon a node); if every candidate is panicked the
// request spills to the least relative-loaded alive node.
type POD struct {
	nodes  nodeSet
	d      int
	spills uint64
}

// DefaultChoices is the number of hash candidates POD uses when the caller
// does not specify one. Two choices already gets the bulk of the
// power-of-d balancing benefit while keeping cache dilution minimal.
const DefaultChoices = 2

// NewPOD returns a power-of-d-choices strategy with d candidates per
// target. It panics if params are invalid or d < 1. Every node starts on
// the uniform profile params imply; SetProfile retunes individual nodes.
func NewPOD(loads LoadReader, params Params, d int) *POD {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	if d < 1 {
		panic("core: POD needs at least one choice")
	}
	return &POD{nodes: newNodeSet(loads, params.Profile()), d: d}
}

// Name implements Strategy.
func (s *POD) Name() string { return "POD" }

// Select implements Strategy.
func (s *POD) Select(_ time.Duration, r Request) int {
	alive := s.nodes.aliveNodes()
	if len(alive) == 0 {
		return -1
	}
	best, bestRel := -1, 0.0
	for c := 0; c < s.d; c++ {
		n := alive[saltedHash(r.Target, uint64(c))%uint64(len(alive))]
		load := s.nodes.loads.Load(n)
		if load >= 2*s.nodes.profile(n).THigh {
			continue // panicked candidate, same abandon level as LARD
		}
		rel := s.nodes.relLoad(n)
		if best == -1 || rel < bestRel {
			best, bestRel = n, rel
		}
	}
	if best >= 0 {
		return best
	}
	// Every candidate is panicked: spill to the least relative-loaded
	// node, sacrificing locality to shed the overload.
	s.spills++
	return s.nodes.leastRelLoaded()
}

// saltedHash hashes target under a per-choice salt, giving each choice an
// independent (but deterministic) candidate.
func saltedHash(target string, salt uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], salt)
	h.Write(b[:])
	h.Write([]byte(target))
	return h.Sum64()
}

// NodeDown implements FailureAware. The alive set shrinks, so all targets
// re-hash over the survivors.
func (s *POD) NodeDown(node int) { s.nodes.setDown(node, true) }

// NodeUp implements FailureAware.
func (s *POD) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware. Candidate sets re-hash over the
// enlarged alive set, the same partitioning shift LB pays.
func (s *POD) AddNode() int { return s.nodes.add() }

// RemoveNode implements MembershipAware.
func (s *POD) RemoveNode(node int) { s.nodes.remove(node) }

// SetDraining implements MembershipAware.
func (s *POD) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// SetProfile implements ProfileAware: the node's weight reshapes the
// relative-load comparison and its T_high moves the panic level.
func (s *POD) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *POD) NodeProfile(node int) Profile { return s.nodes.profile(node) }

// Choices returns the number of hash candidates per target.
func (s *POD) Choices() int { return s.d }

// Spills returns how many requests found every candidate panicked and
// fell back to the global least relative-loaded pick.
func (s *POD) Spills() uint64 { return s.spills }

var (
	_ Strategy        = (*POD)(nil)
	_ FailureAware    = (*POD)(nil)
	_ MembershipAware = (*POD)(nil)
	_ ProfileAware    = (*POD)(nil)
)
