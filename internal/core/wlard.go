package core

import "time"

// WLARD is LARD with a weight-scaled imbalance test, after Sharma &
// Saxena's weighted locality-aware distribution: targets stick to an
// assigned node exactly as in Figure 2, but every load the algorithm
// inspects is first divided by the node's profile Weight, and the scaled
// values are compared against the fleet-base T_low/T_high from Params.
//
// A Weight-w node therefore trips the move condition at w·T_high raw
// connections and advertises idle capacity below w·T_low — the thresholds
// a uniform fleet of its speed would use — and first-time assignments and
// moves pick the least relative-loaded node, so big nodes absorb
// proportionally more of the working set. On a uniform fleet (all weights
// 1) WLARD is behaviourally identical to LARD.
type WLARD struct {
	nodes   nodeSet
	params  Params
	server  *mapping[int]
	moves   uint64
	assigns uint64
}

// NewWLARD returns a weighted LARD strategy. It panics if params are
// invalid. Every node starts at weight 1; SetProfile retunes individual
// nodes for heterogeneous fleets.
func NewWLARD(loads LoadReader, params Params) *WLARD {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &WLARD{
		nodes:  newNodeSet(loads, params.Profile()),
		params: params,
		server: newMapping[int](params.MappingCapacity),
	}
}

// Name implements Strategy.
func (s *WLARD) Name() string { return "WLARD" }

// Select implements Strategy.
func (s *WLARD) Select(_ time.Duration, r Request) int {
	node, ok := s.server.get(r.Target)
	if !ok || !s.nodes.alive(node) {
		node = s.nodes.leastRelLoaded()
		if node < 0 {
			return -1
		}
		s.server.put(r.Target, node)
		s.assigns++
		return node
	}
	rel := s.nodes.relLoad(node)
	high := float64(s.params.THigh)
	if (rel > high && s.nodes.anyRelBelow(float64(s.params.TLow))) || rel >= 2*high {
		moved := s.nodes.leastRelLoaded()
		if moved >= 0 && moved != node {
			s.server.put(r.Target, moved)
			s.moves++
			return moved
		}
	}
	return node
}

// NodeDown implements FailureAware: mappings to the failed node are
// re-assigned lazily by Select's liveness check.
func (s *WLARD) NodeDown(node int) { s.nodes.setDown(node, true) }

// NodeUp implements FailureAware.
func (s *WLARD) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware.
func (s *WLARD) AddNode() int { return s.nodes.add() }

// RemoveNode implements MembershipAware.
func (s *WLARD) RemoveNode(node int) { s.nodes.remove(node) }

// SetDraining implements MembershipAware.
func (s *WLARD) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// SetProfile implements ProfileAware: the node's weight rescales its
// contribution to every subsequent load comparison.
func (s *WLARD) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *WLARD) NodeProfile(node int) Profile { return s.nodes.profile(node) }

// Assignment returns the node currently assigned to target, if any, for
// tests and diagnostics.
func (s *WLARD) Assignment(target string) (node int, ok bool) {
	return s.server.get(target)
}

// MappedTargets returns the number of targets currently tracked.
func (s *WLARD) MappedTargets() int { return s.server.len() }

// Moves returns how many load-triggered reassignments occurred.
func (s *WLARD) Moves() uint64 { return s.moves }

// Assignments returns the number of first-time target assignments.
func (s *WLARD) Assignments() uint64 { return s.assigns }

var (
	_ Strategy        = (*WLARD)(nil)
	_ FailureAware    = (*WLARD)(nil)
	_ MembershipAware = (*WLARD)(nil)
	_ ProfileAware    = (*WLARD)(nil)
)
