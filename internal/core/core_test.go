package core

import (
	"testing"
	"time"
)

// fakeLoads is a LoadReader backed by a mutable slice, for driving
// strategies through exact load scenarios.
type fakeLoads struct {
	loads []int
}

func (f *fakeLoads) NodeCount() int   { return len(f.loads) }
func (f *fakeLoads) Load(i int) int   { return f.loads[i] }
func (f *fakeLoads) set(loads ...int) { f.loads = loads }

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.TLow != 25 || p.THigh != 65 {
		t.Fatalf("defaults = %+v, want TLow 25, THigh 65", p)
	}
	if p.K != 20*time.Second {
		t.Fatalf("K = %v, want 20s", p.K)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{TLow: 0, THigh: 65, K: time.Second},
		{TLow: 25, THigh: 25, K: time.Second},
		{TLow: 25, THigh: 10, K: time.Second},
		{TLow: 25, THigh: 65, K: -time.Second},
		{TLow: 25, THigh: 65, K: time.Second, MappingCapacity: -1},
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestMaxOutstanding(t *testing.T) {
	p := DefaultParams()
	// S = (n-1)*T_high + T_low + 1.
	cases := map[int]int{
		1:  26,  // 0*65 + 25 + 1
		2:  91,  // 65 + 26
		8:  481, // 7*65 + 26
		16: 1001,
	}
	for n, want := range cases {
		if got := p.MaxOutstanding(n); got != want {
			t.Fatalf("MaxOutstanding(%d) = %d, want %d", n, got, want)
		}
	}
	if got := p.MaxOutstanding(0); got != 0 {
		t.Fatalf("MaxOutstanding(0) = %d, want 0", got)
	}
}

// The paper's argument for S: with S connections admitted, at most n−1
// nodes can be at or above T_high while no node is below T_low.
func TestMaxOutstandingPaperProperty(t *testing.T) {
	p := DefaultParams()
	for n := 1; n <= 16; n++ {
		s := p.MaxOutstanding(n)
		// If all n nodes had load >= T_high, total >= n*T_high > S.
		if n*p.THigh <= s {
			t.Fatalf("n=%d: S=%d admits all nodes at T_high", n, s)
		}
		// All n nodes can simultaneously exceed T_low (be fully utilized).
		if n*(p.TLow+1) > s {
			t.Fatalf("n=%d: S=%d cannot keep all nodes above T_low", n, s)
		}
	}
}

func TestNodeSetLeastLoaded(t *testing.T) {
	loads := &fakeLoads{loads: []int{5, 2, 9, 2}}
	ns := newNodeSet(loads, DefaultProfile())
	// Strict minimum.
	if got := ns.leastLoaded(); got != 1 {
		t.Fatalf("leastLoaded = %d, want 1", got)
	}
	// Tie between 1 and 3: rotation starts after the previous pick, so the
	// next call must find node 3 first.
	if got := ns.leastLoaded(); got != 3 {
		t.Fatalf("leastLoaded tie-break = %d, want 3 (round-robin)", got)
	}
}

func TestNodeSetLeastLoadedSkipsDown(t *testing.T) {
	loads := &fakeLoads{loads: []int{1, 0, 5}}
	ns := newNodeSet(loads, DefaultProfile())
	ns.setDown(1, true)
	if got := ns.leastLoaded(); got != 0 {
		t.Fatalf("leastLoaded = %d, want 0 (node 1 down)", got)
	}
	ns.setDown(0, true)
	ns.setDown(2, true)
	if got := ns.leastLoaded(); got != -1 {
		t.Fatalf("leastLoaded with all down = %d, want -1", got)
	}
	ns.setDown(2, false)
	if got := ns.leastLoaded(); got != 2 {
		t.Fatalf("leastLoaded after NodeUp = %d, want 2", got)
	}
}

func TestNodeSetAnyBelowTLow(t *testing.T) {
	loads := &fakeLoads{loads: []int{30, 40}}
	ns := newNodeSet(loads, Profile{TLow: 25, THigh: 65, Weight: 1})
	if ns.anyBelowTLow() {
		t.Fatal("anyBelowTLow = true with loads 30, 40 and T_low 25")
	}
	// Raising node 0's own T_low above its load makes it idle.
	ns.setProfile(0, Profile{TLow: 31, THigh: 65, Weight: 1})
	if !ns.anyBelowTLow() {
		t.Fatal("anyBelowTLow = false with load 30 under its T_low 31")
	}
	ns.setDown(0, true)
	if ns.anyBelowTLow() {
		t.Fatal("down node counted by anyBelowTLow")
	}
}

func TestNodeSetRelLoad(t *testing.T) {
	loads := &fakeLoads{loads: []int{40, 30, 20}}
	ns := newNodeSet(loads, DefaultProfile())
	ns.setProfile(0, Profile{TLow: 25, THigh: 65, Weight: 4})
	// Relative loads: 10, 30, 20 — node 0 wins despite the highest raw load.
	if got := ns.leastRelLoaded(); got != 0 {
		t.Fatalf("leastRelLoaded = %d, want 0", got)
	}
	if got := ns.relLoad(0); got != 10 {
		t.Fatalf("relLoad(0) = %v, want 10", got)
	}
	if !ns.anyRelBelow(11) || ns.anyRelBelow(10) {
		t.Fatal("anyRelBelow bounds wrong around relative load 10")
	}
}

func TestNodeSetAliveNodes(t *testing.T) {
	ns := newNodeSet(&fakeLoads{loads: []int{0, 0, 0}}, DefaultProfile())
	ns.setDown(1, true)
	alive := ns.aliveNodes()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("aliveNodes = %v", alive)
	}
	// Out-of-range setDown is ignored.
	ns.setDown(-1, true)
	ns.setDown(99, true)
	if len(ns.aliveNodes()) != 2 {
		t.Fatal("out-of-range setDown changed the set")
	}
}

func TestNewNodeSetPanics(t *testing.T) {
	for _, f := range []func(){
		func() { newNodeSet(nil, DefaultProfile()) },
		func() { newNodeSet(&fakeLoads{}, DefaultProfile()) },
		func() { newNodeSet(&fakeLoads{loads: []int{0}}, Profile{TLow: 0, THigh: 65, Weight: 1}) },
		func() { newNodeSet(&fakeLoads{loads: []int{0}}, Profile{TLow: 25, THigh: 65, Weight: 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}
