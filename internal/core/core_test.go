package core

import (
	"testing"
	"time"
)

// fakeLoads is a LoadReader backed by a mutable slice, for driving
// strategies through exact load scenarios.
type fakeLoads struct {
	loads []int
}

func (f *fakeLoads) NodeCount() int   { return len(f.loads) }
func (f *fakeLoads) Load(i int) int   { return f.loads[i] }
func (f *fakeLoads) set(loads ...int) { f.loads = loads }

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.TLow != 25 || p.THigh != 65 {
		t.Fatalf("defaults = %+v, want TLow 25, THigh 65", p)
	}
	if p.K != 20*time.Second {
		t.Fatalf("K = %v, want 20s", p.K)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []Params{
		{TLow: 0, THigh: 65, K: time.Second},
		{TLow: 25, THigh: 25, K: time.Second},
		{TLow: 25, THigh: 10, K: time.Second},
		{TLow: 25, THigh: 65, K: -time.Second},
		{TLow: 25, THigh: 65, K: time.Second, MappingCapacity: -1},
	}
	for i, p := range cases {
		if p.Validate() == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
}

func TestMaxOutstanding(t *testing.T) {
	p := DefaultParams()
	// S = (n-1)*T_high + T_low + 1.
	cases := map[int]int{
		1:  26,  // 0*65 + 25 + 1
		2:  91,  // 65 + 26
		8:  481, // 7*65 + 26
		16: 1001,
	}
	for n, want := range cases {
		if got := p.MaxOutstanding(n); got != want {
			t.Fatalf("MaxOutstanding(%d) = %d, want %d", n, got, want)
		}
	}
	if got := p.MaxOutstanding(0); got != 0 {
		t.Fatalf("MaxOutstanding(0) = %d, want 0", got)
	}
}

// The paper's argument for S: with S connections admitted, at most n−1
// nodes can be at or above T_high while no node is below T_low.
func TestMaxOutstandingPaperProperty(t *testing.T) {
	p := DefaultParams()
	for n := 1; n <= 16; n++ {
		s := p.MaxOutstanding(n)
		// If all n nodes had load >= T_high, total >= n*T_high > S.
		if n*p.THigh <= s {
			t.Fatalf("n=%d: S=%d admits all nodes at T_high", n, s)
		}
		// All n nodes can simultaneously exceed T_low (be fully utilized).
		if n*(p.TLow+1) > s {
			t.Fatalf("n=%d: S=%d cannot keep all nodes above T_low", n, s)
		}
	}
}

func TestNodeSetLeastLoaded(t *testing.T) {
	loads := &fakeLoads{loads: []int{5, 2, 9, 2}}
	ns := newNodeSet(loads)
	// Strict minimum.
	if got := ns.leastLoaded(); got != 1 {
		t.Fatalf("leastLoaded = %d, want 1", got)
	}
	// Tie between 1 and 3: rotation starts after the previous pick, so the
	// next call must find node 3 first.
	if got := ns.leastLoaded(); got != 3 {
		t.Fatalf("leastLoaded tie-break = %d, want 3 (round-robin)", got)
	}
}

func TestNodeSetLeastLoadedSkipsDown(t *testing.T) {
	loads := &fakeLoads{loads: []int{1, 0, 5}}
	ns := newNodeSet(loads)
	ns.setDown(1, true)
	if got := ns.leastLoaded(); got != 0 {
		t.Fatalf("leastLoaded = %d, want 0 (node 1 down)", got)
	}
	ns.setDown(0, true)
	ns.setDown(2, true)
	if got := ns.leastLoaded(); got != -1 {
		t.Fatalf("leastLoaded with all down = %d, want -1", got)
	}
	ns.setDown(2, false)
	if got := ns.leastLoaded(); got != 2 {
		t.Fatalf("leastLoaded after NodeUp = %d, want 2", got)
	}
}

func TestNodeSetAnyBelow(t *testing.T) {
	loads := &fakeLoads{loads: []int{30, 40}}
	ns := newNodeSet(loads)
	if ns.anyBelow(25) {
		t.Fatal("anyBelow(25) = true with loads 30, 40")
	}
	if !ns.anyBelow(31) {
		t.Fatal("anyBelow(31) = false with load 30 present")
	}
	ns.setDown(0, true)
	if ns.anyBelow(31) {
		t.Fatal("down node counted by anyBelow")
	}
}

func TestNodeSetAliveNodes(t *testing.T) {
	ns := newNodeSet(&fakeLoads{loads: []int{0, 0, 0}})
	ns.setDown(1, true)
	alive := ns.aliveNodes()
	if len(alive) != 2 || alive[0] != 0 || alive[1] != 2 {
		t.Fatalf("aliveNodes = %v", alive)
	}
	// Out-of-range setDown is ignored.
	ns.setDown(-1, true)
	ns.setDown(99, true)
	if len(ns.aliveNodes()) != 2 {
		t.Fatal("out-of-range setDown changed the set")
	}
}

func TestNewNodeSetPanics(t *testing.T) {
	for _, f := range []func(){
		func() { newNodeSet(nil) },
		func() { newNodeSet(&fakeLoads{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			f()
		}()
	}
}
