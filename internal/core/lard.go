package core

import "time"

// LARD implements the basic locality-aware request distribution strategy,
// a direct transcription of the paper's Figure 2:
//
//	while true
//	    fetch next request r
//	    if server[r.target] = null then
//	        n, server[r.target] ← {least loaded node}
//	    else
//	        n ← server[r.target]
//	        if (n.load > T_high && ∃ node with load < T_low) ||
//	           n.load ≥ 2·T_high then
//	            n, server[r.target] ← {least loaded node}
//	    send r to n
//
// The first request for a target assigns it to a lightly loaded node;
// subsequent requests stick to that node — building locality — unless the
// node is overloaded while another has idle capacity (or is at twice
// T_high), in which case the target moves. Combined with the admission
// bound S (Params.MaxOutstanding), any reassignment is guaranteed to move
// the target between nodes whose loads differ by at least T_high − T_low.
type LARD struct {
	nodes   nodeSet
	params  Params
	server  *mapping[int]
	moves   uint64
	assigns uint64

	// Move-cause diagnostics: movesIdle counts reassignments triggered by
	// the (load > T_high && ∃ load < T_low) clause, movesPanic those from
	// the load ≥ 2·T_high clause.
	movesIdle  uint64
	movesPanic uint64
}

// NewLARD returns a basic LARD strategy. It panics if params are invalid.
// Every node starts on the uniform profile params imply; SetProfile
// retunes individual nodes for heterogeneous fleets.
func NewLARD(loads LoadReader, params Params) *LARD {
	if err := params.Validate(); err != nil {
		panic(err)
	}
	return &LARD{
		nodes:  newNodeSet(loads, params.Profile()),
		params: params,
		server: newMapping[int](params.MappingCapacity),
	}
}

// Name implements Strategy.
func (s *LARD) Name() string { return "LARD" }

// Select implements Strategy.
func (s *LARD) Select(_ time.Duration, r Request) int {
	node, ok := s.server.get(r.Target)
	if !ok || !s.nodes.alive(node) {
		node = s.nodes.leastLoaded()
		if node < 0 {
			return -1
		}
		s.server.put(r.Target, node)
		s.assigns++
		return node
	}
	// The imbalance test uses the serving node's own thresholds: on a
	// heterogeneous fleet a small node trips the move condition at the
	// load that actually overloads *it*, and the idle test asks whether
	// any node is below its own T_low.
	load := s.nodes.loads.Load(node)
	high := s.nodes.profile(node).THigh
	idleExists := load > high && s.nodes.anyBelowTLow()
	panicked := load >= 2*high
	if idleExists || panicked {
		moved := s.nodes.leastLoaded()
		if moved >= 0 && moved != node {
			s.server.put(r.Target, moved)
			s.moves++
			if idleExists {
				s.movesIdle++
			} else {
				s.movesPanic++
			}
			return moved
		}
	}
	return node
}

// NodeDown implements FailureAware. Mappings to the failed node are left
// in place but ignored by Select (the liveness check re-assigns on the
// next request), which is exactly the paper's recovery story: "the front
// end simply re-assigns targets assigned to the failed back end as if they
// had not been assigned before."
func (s *LARD) NodeDown(node int) { s.nodes.setDown(node, true) }

// NodeUp implements FailureAware.
func (s *LARD) NodeUp(node int) { s.nodes.setDown(node, false) }

// AddNode implements MembershipAware. Existing mappings are untouched; the
// new node picks up targets as first-time assignments and load-triggered
// moves route hot targets its way.
func (s *LARD) AddNode() int { return s.nodes.add() }

// RemoveNode implements MembershipAware. Mappings to the removed node are
// invalidated exactly like a Section 2.6 failure: Select's liveness check
// re-assigns each of its targets on the next request, as if they had not
// been assigned before — except the node never comes back.
func (s *LARD) RemoveNode(node int) { s.nodes.remove(node) }

// SetDraining implements MembershipAware. A draining node's targets are
// re-assigned on their next request, migrating its working set off the
// node while in-flight connections finish.
func (s *LARD) SetDraining(node int, draining bool) { s.nodes.setDraining(node, draining) }

// SetProfile implements ProfileAware: the node's thresholds take effect on
// the next Select that consults them.
func (s *LARD) SetProfile(node int, p Profile) { s.nodes.setProfile(node, p) }

// NodeProfile implements ProfileAware.
func (s *LARD) NodeProfile(node int) Profile { return s.nodes.profile(node) }

// Assignment returns the node currently assigned to target, if any. It
// does not refresh the mapping's recency and is intended for tests and
// diagnostics.
func (s *LARD) Assignment(target string) (node int, ok bool) {
	// get refreshes recency; acceptable for a diagnostic accessor.
	return s.server.get(target)
}

// MappedTargets returns the number of targets currently tracked.
func (s *LARD) MappedTargets() int { return s.server.len() }

// Moves returns how many times a target was reassigned due to load
// imbalance; Assignments returns how many first-time assignments occurred.
func (s *LARD) Moves() uint64 { return s.moves }

// MovesByCause splits Moves into those triggered by the idle-node clause
// and those by the 2×T_high clause.
func (s *LARD) MovesByCause() (idle, panic uint64) { return s.movesIdle, s.movesPanic }

// Assignments returns the number of first-time target assignments.
func (s *LARD) Assignments() uint64 { return s.assigns }

var (
	_ Strategy        = (*LARD)(nil)
	_ FailureAware    = (*LARD)(nil)
	_ MembershipAware = (*LARD)(nil)
	_ ProfileAware    = (*LARD)(nil)
)
