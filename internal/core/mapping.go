package core

import "container/list"

// mapping is a target→assignment table with an optional LRU capacity
// bound, implementing Section 2.6's observation that "the mappings can be
// maintained in an LRU cache where assignments for targets that have not
// been accessed recently are discarded": such targets have most likely been
// evicted from the back-end caches anyway, so forgetting them is harmless.
type mapping[V any] struct {
	capacity int // 0 = unbounded
	ll       *list.List
	index    map[string]*list.Element
}

type mappingEntry[V any] struct {
	key   string
	value V
}

func newMapping[V any](capacity int) *mapping[V] {
	if capacity < 0 {
		panic("core: negative mapping capacity")
	}
	return &mapping[V]{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// get returns the assignment for key and refreshes its recency.
func (m *mapping[V]) get(key string) (V, bool) {
	if el, ok := m.index[key]; ok {
		m.ll.MoveToFront(el)
		return el.Value.(*mappingEntry[V]).value, true
	}
	var zero V
	return zero, false
}

// put stores the assignment for key, evicting the least-recently-used
// entry if the capacity bound is exceeded.
func (m *mapping[V]) put(key string, value V) {
	if el, ok := m.index[key]; ok {
		el.Value.(*mappingEntry[V]).value = value
		m.ll.MoveToFront(el)
		return
	}
	m.index[key] = m.ll.PushFront(&mappingEntry[V]{key: key, value: value})
	if m.capacity > 0 && m.ll.Len() > m.capacity {
		oldest := m.ll.Back()
		if oldest != nil {
			m.ll.Remove(oldest)
			delete(m.index, oldest.Value.(*mappingEntry[V]).key)
		}
	}
}

// remove deletes the assignment for key if present.
func (m *mapping[V]) remove(key string) {
	if el, ok := m.index[key]; ok {
		m.ll.Remove(el)
		delete(m.index, key)
	}
}

// len returns the number of tracked targets.
func (m *mapping[V]) len() int { return m.ll.Len() }

// each calls fn for every entry; fn may mutate the value in place through
// the pointer. Iteration order is most-recently-used first.
func (m *mapping[V]) each(fn func(key string, value *V)) {
	for el := m.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*mappingEntry[V])
		fn(ent.key, &ent.value)
	}
}
