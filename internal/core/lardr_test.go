package core

import (
	"fmt"
	"testing"
	"time"
)

func TestLARDRFirstRequestAssignsSingleton(t *testing.T) {
	loads := &fakeLoads{loads: []int{5, 1}}
	s := NewLARDR(loads, testParams())
	if s.Name() != "LARD/R" {
		t.Fatalf("Name = %q", s.Name())
	}
	if got := s.Select(0, Request{Target: "/a"}); got != 1 {
		t.Fatalf("got %d, want least-loaded 1", got)
	}
	set := s.ServerSet("/a")
	if len(set) != 1 || set[0] != 1 {
		t.Fatalf("ServerSet = %v", set)
	}
}

func TestLARDRRoutesToLeastLoadedMember(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0, 0}}
	s := NewLARDR(loads, testParams())
	n := s.Select(0, Request{Target: "/hot"})
	// Overload to force replication onto a second node.
	loads.loads[n] = 70
	p := s.Select(0, Request{Target: "/hot"})
	if p == n {
		t.Fatalf("no replication: still %d", n)
	}
	if len(s.ServerSet("/hot")) != 2 {
		t.Fatalf("ServerSet = %v", s.ServerSet("/hot"))
	}
	// Requests now go to the least loaded member of the set.
	loads.loads[p] = 30
	loads.loads[n] = 10
	if got := s.Select(time.Second, Request{Target: "/hot"}); got != n {
		t.Fatalf("got %d, want least-loaded member %d", got, n)
	}
}

func TestLARDRReplicationGrowsUnderHotLoad(t *testing.T) {
	loads := &fakeLoads{loads: make([]int, 4)}
	s := NewLARDR(loads, testParams())
	// Simulate a single hot target overwhelming each assigned node in
	// turn: every member of the server set is driven past 2×THigh.
	for i := 0; i < 4; i++ {
		n := s.Select(0, Request{Target: "/hot"})
		loads.loads[n] = 130 + i // ≥ 2*THigh forces growth
	}
	if got := len(s.ServerSet("/hot")); got != 4 {
		t.Fatalf("server set size = %d, want 4", got)
	}
	if s.Grows() != 3 {
		t.Fatalf("Grows = %d, want 3", s.Grows())
	}
	if s.MaxReplication() != 4 {
		t.Fatalf("MaxReplication = %d", s.MaxReplication())
	}
}

func TestLARDRNoDuplicateMembers(t *testing.T) {
	loads := &fakeLoads{loads: []int{130, 131}}
	s := NewLARDR(loads, testParams())
	s.Select(0, Request{Target: "/hot"})
	for i := 0; i < 5; i++ {
		s.Select(0, Request{Target: "/hot"})
	}
	set := s.ServerSet("/hot")
	seen := map[int]bool{}
	for _, n := range set {
		if seen[n] {
			t.Fatalf("duplicate member in %v", set)
		}
		seen[n] = true
	}
}

func TestLARDRShrinksAfterK(t *testing.T) {
	p := testParams()
	p.K = 20 * time.Second
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARDR(loads, p)
	n := s.Select(0, Request{Target: "/hot"})
	loads.loads[n] = 130
	s.Select(time.Second, Request{Target: "/hot"}) // replicate at t=1s
	loads.set(10, 10)
	if len(s.ServerSet("/hot")) != 2 {
		t.Fatal("setup: expected replication")
	}
	// Within K of the last modification: set unchanged.
	s.Select(20*time.Second, Request{Target: "/hot"})
	if len(s.ServerSet("/hot")) != 2 {
		t.Fatalf("set shrank before K elapsed: %v", s.ServerSet("/hot"))
	}
	// Beyond K since lastMod (t=1s): the most loaded member is removed.
	loads.set(10, 15)
	s.Select(22*time.Second, Request{Target: "/hot"})
	set := s.ServerSet("/hot")
	if len(set) != 1 {
		t.Fatalf("set did not shrink after K: %v", set)
	}
	if s.Shrinks() != 1 {
		t.Fatalf("Shrinks = %d", s.Shrinks())
	}
	// The removed member was the most loaded one.
	if loads.loads[set[0]] != 10 {
		t.Fatalf("kept the most loaded member: %v", set)
	}
}

func TestLARDRShrinkTimerResetsOnChange(t *testing.T) {
	p := testParams()
	p.K = 10 * time.Second
	loads := &fakeLoads{loads: []int{0, 0, 0}}
	s := NewLARDR(loads, p)
	n := s.Select(0, Request{Target: "/hot"})
	loads.loads[n] = 130
	s.Select(5*time.Second, Request{Target: "/hot"}) // grow at t=5s
	loads.set(10, 10, 10)
	// t=14s: only 9s since lastMod — no shrink.
	s.Select(14*time.Second, Request{Target: "/hot"})
	if len(s.ServerSet("/hot")) != 2 {
		t.Fatalf("set = %v, want size 2", s.ServerSet("/hot"))
	}
	// t=16s: 11s since lastMod — shrink.
	s.Select(16*time.Second, Request{Target: "/hot"})
	if len(s.ServerSet("/hot")) != 1 {
		t.Fatalf("set = %v, want size 1", s.ServerSet("/hot"))
	}
}

func TestLARDRSingletonNeverShrinks(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARDR(loads, testParams())
	s.Select(0, Request{Target: "/a"})
	s.Select(time.Hour, Request{Target: "/a"})
	if len(s.ServerSet("/a")) != 1 {
		t.Fatalf("singleton set changed: %v", s.ServerSet("/a"))
	}
}

func TestLARDRGrowAndShrinkSameIteration(t *testing.T) {
	// Figure 3 allows both in one iteration: the set grows with p and
	// sheds its previously most-loaded member m when the K timer expired.
	p := testParams()
	p.K = time.Second
	loads := &fakeLoads{loads: []int{0, 0, 0}}
	s := NewLARDR(loads, p)
	n := s.Select(0, Request{Target: "/hot"}) // t=0, {n}
	loads.loads[n] = 130
	s.Select(time.Millisecond, Request{Target: "/hot"}) // grow: {n, p}
	set := s.ServerSet("/hot")
	if len(set) != 2 {
		t.Fatalf("setup: %v", set)
	}
	// Both members overloaded again long after K, with a distinct most
	// loaded member: grow + shrink happen in one iteration.
	other := set[0] + set[1] - n // the replica added above
	loads.loads[n] = 130         // least loaded member, still >= 2*THigh
	loads.loads[other] = 140     // most loaded member m: must be removed
	got := s.Select(time.Hour, Request{Target: "/hot"})
	newSet := s.ServerSet("/hot")
	if len(newSet) != 2 {
		t.Fatalf("set = %v, want 2 members (grew and shrank)", newSet)
	}
	if containsNode(newSet, other) {
		t.Fatalf("most loaded member %d not removed: %v", other, newSet)
	}
	if got != 2 {
		t.Fatalf("request routed to %d, want the fresh replica 2", got)
	}
}

func TestLARDRFailurePrunesSets(t *testing.T) {
	loads := &fakeLoads{loads: []int{0, 0}}
	s := NewLARDR(loads, testParams())
	n := s.Select(0, Request{Target: "/a"})
	s.NodeDown(n)
	got := s.Select(0, Request{Target: "/a"})
	if got == n || got == -1 {
		t.Fatalf("selected failed node %d (got %d)", n, got)
	}
	set := s.ServerSet("/a")
	if containsNode(set, n) {
		t.Fatalf("failed node still in set %v", set)
	}
	s.NodeUp(n)
}

func TestLARDRAllNodesDown(t *testing.T) {
	s := NewLARDR(&fakeLoads{loads: []int{0}}, testParams())
	s.NodeDown(0)
	if got := s.Select(0, Request{Target: "/a"}); got != -1 {
		t.Fatalf("Select = %d, want -1", got)
	}
}

func TestLARDRMappingCapacityBound(t *testing.T) {
	p := testParams()
	p.MappingCapacity = 5
	loads := &fakeLoads{loads: make([]int, 2)}
	s := NewLARDR(loads, p)
	for i := 0; i < 50; i++ {
		s.Select(0, Request{Target: fmt.Sprintf("/t%d", i)})
	}
	if s.MappedTargets() != 5 {
		t.Fatalf("MappedTargets = %d, want 5", s.MappedTargets())
	}
}

func TestLARDRInvalidParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLARDR(&fakeLoads{loads: []int{0}}, Params{})
}

func TestLARDRServerSetUnknownTarget(t *testing.T) {
	s := NewLARDR(&fakeLoads{loads: []int{0}}, testParams())
	if got := s.ServerSet("/nope"); got != nil {
		t.Fatalf("ServerSet = %v, want nil", got)
	}
}
