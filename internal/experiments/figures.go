package experiments

import (
	"fmt"
	"time"

	"lard/internal/cluster"
	"lard/internal/trace"
)

// generate materializes a profile at the requested scale.
func generate(profile trace.SyntheticConfig, opt Options) *trace.Trace {
	cfg := profile
	if opt.Scale != 1.0 {
		cfg = cfg.Scaled(opt.Scale)
	}
	return trace.MustGenerate(cfg, opt.Seed)
}

// simulate runs one configuration, reporting progress.
func simulate(opt Options, cfg cluster.Config, tr *trace.Trace) (cluster.Result, error) {
	res, err := cluster.Simulate(cfg, tr)
	if err != nil {
		return res, fmt.Errorf("experiments: %s on %d nodes: %w", cfg.Strategy, cfg.Nodes, err)
	}
	opt.progressf("  %s", res)
	return res, nil
}

// cdfTables renders a trace's Figure 5/6 content: the cumulative curves
// plus the memory-to-cover summary the paper quotes in prose.
func cdfTables(id, title string, tr *trace.Trace) []*Table {
	cdf := trace.ComputeCDF(tr)
	const points = 21
	curves := &Table{
		ID:     id,
		Title:  title + " — " + tr.String(),
		XLabel: "files(norm)",
		YLabel: "cumulative fraction",
	}
	var xs, reqs, sizes []float64
	n := len(cdf.Files)
	for i := 0; i < points; i++ {
		idx := (n - 1) * i / (points - 1)
		p := cdf.Files[idx]
		xs = append(xs, float64(p.Rank)/float64(n))
		reqs = append(reqs, float64(p.CumRequests)/float64(cdf.TotalRequests))
		sizes = append(sizes, float64(p.CumBytes)/float64(cdf.TotalBytes))
	}
	curves.Series = []Series{
		{Label: "requests", X: xs, Y: reqs},
		{Label: "file size", X: xs, Y: sizes},
	}

	coverage := &Table{
		ID:     id + "-coverage",
		Title:  "memory needed to cover a fraction of requests",
		XLabel: "req fraction",
		YLabel: "MB",
	}
	var cx, cy []float64
	for _, f := range []float64{0.90, 0.95, 0.97, 0.99} {
		cx = append(cx, f)
		cy = append(cy, float64(cdf.BytesToCover(f))/(1<<20))
	}
	coverage.Series = []Series{{Label: "MB needed", X: cx, Y: cy}}
	return []*Table{curves, coverage}
}

// Figure5 regenerates the Rice trace CDFs.
func Figure5(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	return cdfTables("figure5", "Rice University trace", tr), nil
}

// Figure6 regenerates the IBM trace CDFs.
func Figure6(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.IBMProfile(), opt)
	return cdfTables("figure6", "IBM trace", tr), nil
}

// strategySweep runs every strategy over the node sweep and returns the
// throughput, miss-ratio, and idle-time tables (the paper's Figures 7-9
// triple for the given trace).
func strategySweep(opt Options, tr *trace.Trace, idPrefix, caption string) (tput, miss, idle *Table, err error) {
	mk := func(id, title, ylabel string) *Table {
		return &Table{ID: id, Title: title + ", " + caption, XLabel: "nodes", YLabel: ylabel}
	}
	tput = mk(idPrefix+"-throughput", "Throughput", "requests/sec")
	miss = mk(idPrefix+"-missratio", "Cache miss ratio", "% requests missed")
	idle = mk(idPrefix+"-idletime", "Node underutilization", "% time underutilized")

	for _, k := range cluster.AllStrategies() {
		var xs, ty, my, iy []float64
		for _, n := range opt.Nodes {
			res, err := simulate(opt, cluster.DefaultConfig(k, n), tr)
			if err != nil {
				return nil, nil, nil, err
			}
			xs = append(xs, float64(n))
			ty = append(ty, res.Throughput)
			my = append(my, res.MissRatio*100)
			iy = append(iy, res.IdleFraction*100)
		}
		tput.Series = append(tput.Series, Series{Label: k.String(), X: xs, Y: ty})
		miss.Series = append(miss.Series, Series{Label: k.String(), X: xs, Y: my})
		idle.Series = append(idle.Series, Series{Label: k.String(), X: xs, Y: iy})
	}
	return tput, miss, idle, nil
}

// Figure7 regenerates throughput vs cluster size on the Rice trace.
func Figure7(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	tput, _, _, err := strategySweep(opt, tr, "figure7", "Rice trace")
	if err != nil {
		return nil, err
	}
	tput.ID = "figure7"
	return []*Table{tput}, nil
}

// Figure8 regenerates cache miss ratio vs cluster size on the Rice trace.
func Figure8(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	_, miss, _, err := strategySweep(opt, tr, "figure8", "Rice trace")
	if err != nil {
		return nil, err
	}
	miss.ID = "figure8"
	return []*Table{miss}, nil
}

// Figure9 regenerates idle time vs cluster size on the Rice trace.
func Figure9(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	_, _, idle, err := strategySweep(opt, tr, "figure9", "Rice trace")
	if err != nil {
		return nil, err
	}
	idle.ID = "figure9"
	return []*Table{idle}, nil
}

// RiceSweep runs the Rice strategy sweep once and returns all three
// Figure 7/8/9 tables — what `lardsim -experiment rice` and the benchmark
// harness use to avoid triplicating the heaviest simulation.
func RiceSweep(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	tput, miss, idle, err := strategySweep(opt, tr, "figure7", "Rice trace")
	if err != nil {
		return nil, err
	}
	tput.ID, miss.ID, idle.ID = "figure7", "figure8", "figure9"
	return []*Table{tput, miss, idle}, nil
}

// Figure10 regenerates throughput vs cluster size on the IBM trace
// (miss-ratio and idle tables included as supplements).
func Figure10(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.IBMProfile(), opt)
	tput, miss, idle, err := strategySweep(opt, tr, "figure10", "IBM trace")
	if err != nil {
		return nil, err
	}
	tput.ID = "figure10"
	return []*Table{tput, miss, idle}, nil
}

// cpuSpeedSettings mirrors the paper: "twice, three and four times the
// default speed setting ... setting the node memory size to 1.5, 2 and 3
// times the base amount (32 MB)".
var cpuSpeedSettings = []struct {
	Label    string
	Speed    float64
	MemScale float64
}{
	{"1x cpu", 1, 1},
	{"2x cpu, 1.5x mem", 2, 1.5},
	{"3x cpu, 2x mem", 3, 2},
	{"4x cpu, 3x mem", 4, 3},
}

// cpuSweep regenerates Figure 11/12 for one strategy.
func cpuSweep(opt Options, kind cluster.StrategyKind, id string) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	table := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s throughput vs CPU speed, Rice trace", kind),
		XLabel: "nodes",
		YLabel: "requests/sec",
	}
	for _, s := range cpuSpeedSettings {
		var xs, ys []float64
		for _, n := range opt.Nodes {
			cfg := cluster.DefaultConfig(kind, n)
			cfg.Cost = cfg.Cost.WithCPUSpeed(s.Speed)
			cfg.CacheBytes = int64(float64(cluster.DefaultCacheBytes) * s.MemScale)
			res, err := simulate(opt, cfg, tr)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, res.Throughput)
		}
		table.Series = append(table.Series, Series{Label: s.Label, X: xs, Y: ys})
	}
	return []*Table{table}, nil
}

// Figure11 regenerates WRR throughput under CPU scaling.
func Figure11(opt Options) ([]*Table, error) {
	return cpuSweep(opt, cluster.WRR, "figure11")
}

// Figure12 regenerates LARD/R throughput under CPU scaling.
func Figure12(opt Options) ([]*Table, error) {
	return cpuSweep(opt, cluster.LARDR, "figure12")
}

// diskSweep regenerates Figure 13/14 for one strategy.
func diskSweep(opt Options, kind cluster.StrategyKind, id string) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	table := &Table{
		ID:     id,
		Title:  fmt.Sprintf("%s throughput vs disks per node, Rice trace", kind),
		XLabel: "nodes",
		YLabel: "requests/sec",
	}
	for _, disks := range []int{1, 2, 3, 4} {
		var xs, ys []float64
		for _, n := range opt.Nodes {
			cfg := cluster.DefaultConfig(kind, n)
			cfg.Disks = disks
			res, err := simulate(opt, cfg, tr)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, res.Throughput)
		}
		label := fmt.Sprintf("%d disks", disks)
		if disks == 1 {
			label = "1 disk"
		}
		table.Series = append(table.Series, Series{Label: label, X: xs, Y: ys})
	}
	return []*Table{table}, nil
}

// Figure13 regenerates WRR throughput with 1-4 disks per node.
func Figure13(opt Options) ([]*Table, error) {
	return diskSweep(opt, cluster.WRR, "figure13")
}

// Figure14 regenerates LARD/R throughput with 1-4 disks per node.
func Figure14(opt Options) ([]*Table, error) {
	return diskSweep(opt, cluster.LARDR, "figure14")
}

// Hotspot regenerates the Section 4.2 hot-target comparison: the Rice
// trace modified with artificial high-frequency targets whose combined
// request share sweeps 2-10%.
func Hotspot(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	base := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 8)

	table := &Table{
		ID:     "hotspot",
		Title:  fmt.Sprintf("Throughput with artificial hot targets, Rice trace, %d nodes", nodes),
		XLabel: "hot req %",
		YLabel: "requests/sec",
	}
	ratio := &Table{
		ID:     "hotspot-ratio",
		Title:  "LARD/R throughput advantage over LARD",
		XLabel: "hot req %",
		YLabel: "LARD/R / LARD",
	}
	var xs, lardY, lardrY, ratioY []float64
	for _, frac := range []float64{0.02, 0.04, 0.06, 0.08, 0.10} {
		hot, err := trace.InjectHotSpots(base, trace.HotSpotConfig{
			Count:           4,
			Size:            25 << 10, // paper: gains largest for hot targets > 20 KB
			RequestFraction: frac,
		}, opt.Seed+1)
		if err != nil {
			return nil, err
		}
		lard, err := simulate(opt, cluster.DefaultConfig(cluster.LARD, nodes), hot)
		if err != nil {
			return nil, err
		}
		lardr, err := simulate(opt, cluster.DefaultConfig(cluster.LARDR, nodes), hot)
		if err != nil {
			return nil, err
		}
		xs = append(xs, frac*100)
		lardY = append(lardY, lard.Throughput)
		lardrY = append(lardrY, lardr.Throughput)
		ratioY = append(ratioY, lardr.Throughput/lard.Throughput)
	}
	table.Series = []Series{
		{Label: "LARD", X: xs, Y: lardY},
		{Label: "LARD/R", X: xs, Y: lardrY},
	}
	ratio.Series = []Series{{Label: "ratio", X: xs, Y: ratioY}}
	return []*Table{table, ratio}, nil
}

// Chess regenerates the Section 4.2 chess-trace comparison: a tiny
// working set where WRR is at its best and LARD must merely keep up.
func Chess(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.ChessProfile(), opt)
	table := &Table{
		ID:     "chess",
		Title:  "Throughput on the chess (Deep Blue) trace — working set fits one node cache",
		XLabel: "nodes",
		YLabel: "requests/sec",
	}
	for _, k := range []cluster.StrategyKind{cluster.WRR, cluster.LARD, cluster.LARDR} {
		var xs, ys []float64
		for _, n := range opt.Nodes {
			res, err := simulate(opt, cluster.DefaultConfig(k, n), tr)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, res.Throughput)
		}
		table.Series = append(table.Series, Series{Label: k.String(), X: xs, Y: ys})
	}
	return []*Table{table}, nil
}

// Delay regenerates the Section 4.4 average-delay comparison on both
// traces.
func Delay(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	var tables []*Table
	for _, p := range []trace.SyntheticConfig{trace.RiceProfile(), trace.IBMProfile()} {
		tr := generate(p, opt)
		table := &Table{
			ID:     "delay-" + p.Name,
			Title:  fmt.Sprintf("Average request delay, %s trace", p.Name),
			XLabel: "nodes",
			YLabel: "ms",
		}
		for _, k := range []cluster.StrategyKind{cluster.WRR, cluster.LARDR} {
			var xs, ys []float64
			for _, n := range opt.Nodes {
				res, err := simulate(opt, cluster.DefaultConfig(k, n), tr)
				if err != nil {
					return nil, err
				}
				xs = append(xs, float64(n))
				ys = append(ys, float64(res.AvgDelay)/float64(time.Millisecond))
			}
			table.Series = append(table.Series, Series{Label: k.String(), X: xs, Y: ys})
		}
		tables = append(tables, table)
	}
	return tables, nil
}

// Sensitivity regenerates the Section 2.4 T_high − T_low study on the
// Rice trace.
func Sensitivity(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 8)

	tput := &Table{
		ID:     "sensitivity",
		Title:  fmt.Sprintf("LARD throughput vs T_high − T_low, Rice trace, %d nodes (T_low = 25)", nodes),
		XLabel: "Thigh-Tlow",
		YLabel: "requests/sec",
	}
	dd := &Table{
		ID:     "sensitivity-delaydiff",
		Title:  "max per-node average delay difference vs T_high − T_low",
		XLabel: "Thigh-Tlow",
		YLabel: "ms",
	}
	var xs, ty, dy []float64
	for _, gap := range []int{15, 40, 70, 105, 175, 275} {
		cfg := cluster.DefaultConfig(cluster.LARD, nodes)
		cfg.Params.THigh = cfg.Params.TLow + gap
		res, err := simulate(opt, cfg, tr)
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(gap))
		ty = append(ty, res.Throughput)
		dy = append(dy, float64(res.NodeDelayDiff)/float64(time.Millisecond))
	}
	tput.Series = []Series{{Label: "LARD", X: xs, Y: ty}}
	dd.Series = []Series{{Label: "LARD", X: xs, Y: dy}}
	return []*Table{tput, dd}, nil
}

// Failover exercises the Section 2.6 recovery story: one back end fails
// mid-run and recovers later; LARD re-assigns its targets on demand.
func Failover(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 4)

	baseline, err := simulate(opt, cluster.DefaultConfig(cluster.LARD, nodes), tr)
	if err != nil {
		return nil, err
	}
	// Fail node 1 for the middle third of the baseline's duration.
	cfg := cluster.DefaultConfig(cluster.LARD, nodes)
	cfg.Failures = []cluster.FailureEvent{{
		Node:   1,
		DownAt: baseline.SimTime / 3,
		UpAt:   baseline.SimTime * 2 / 3,
	}}
	failed, err := simulate(opt, cfg, tr)
	if err != nil {
		return nil, err
	}

	table := &Table{
		ID:     "failover",
		Title:  fmt.Sprintf("LARD with node 1 failed for the middle third of the run, %d nodes", nodes),
		XLabel: "run",
		YLabel: "value (see series)",
	}
	table.Series = []Series{
		{Label: "tput baseline", X: []float64{0}, Y: []float64{baseline.Throughput}},
		{Label: "tput failover", X: []float64{0}, Y: []float64{failed.Throughput}},
		{Label: "miss% baseline", X: []float64{0}, Y: []float64{baseline.MissRatio * 100}},
		{Label: "miss% failover", X: []float64{0}, Y: []float64{failed.MissRatio * 100}},
		{Label: "dropped", X: []float64{0}, Y: []float64{float64(failed.Dropped)}},
	}
	return []*Table{table}, nil
}

// MappingCapacity ablates the LRU bound on the front end's target mapping
// (Section 2.6): a bounded table should cost almost nothing, because
// discarded targets have usually been evicted from back-end caches anyway.
func MappingCapacity(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 8)

	tput := &Table{
		ID:     "mapcap",
		Title:  fmt.Sprintf("LARD/R throughput vs front-end mapping capacity, Rice trace, %d nodes", nodes),
		XLabel: "capacity",
		YLabel: "requests/sec",
	}
	miss := &Table{
		ID:     "mapcap-miss",
		Title:  "cache miss ratio vs front-end mapping capacity",
		XLabel: "capacity",
		YLabel: "% requests missed",
	}
	var xs, ty, my []float64
	for _, capacity := range []int{500, 2000, 8000, 20000, 0} {
		cfg := cluster.DefaultConfig(cluster.LARDR, nodes)
		cfg.Params.MappingCapacity = capacity
		res, err := simulate(opt, cfg, tr)
		if err != nil {
			return nil, err
		}
		x := float64(capacity)
		if capacity == 0 {
			x = float64(tr.TargetCount()) // unbounded ≈ whole catalog
		}
		xs = append(xs, x)
		ty = append(ty, res.Throughput)
		my = append(my, res.MissRatio*100)
	}
	tput.Series = []Series{{Label: "LARD/R", X: xs, Y: ty}}
	miss.Series = []Series{{Label: "LARD/R", X: xs, Y: my}}
	return []*Table{tput, miss}, nil
}

// maxNodes returns the largest value in nodes no greater than limit, or
// limit if the sweep contains larger entries only.
func maxNodes(nodes []int, limit int) int {
	best := 0
	for _, n := range nodes {
		if n <= limit && n > best {
			best = n
		}
	}
	if best == 0 {
		return limit
	}
	return best
}
