// Package experiments regenerates every table and figure of the LARD
// paper's evaluation (Sections 4 and 6) from the reproduction's simulator
// and workload generators.
//
// Each experiment produces one or more Tables — the textual equivalent of
// the paper's figures: a set of labelled series over a common X axis. The
// cmd/lardsim CLI and the top-level benchmark harness are thin wrappers
// around this package.
//
// Absolute numbers depend on the synthetic traces standing in for the
// paper's (unavailable) server logs; the *shapes* — who wins, by what
// factor, where curves cross — are the reproduction targets, and
// EXPERIMENTS.md records them side by side with the paper's.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is the textual equivalent of one paper figure: labelled series
// sharing an X axis.
type Table struct {
	// ID is the experiment identifier ("figure7", "delay", …).
	ID string

	// Title describes the table, quoting the paper's figure caption.
	Title string

	// XLabel and YLabel name the axes.
	XLabel, YLabel string

	// Series holds one labelled curve per strategy/configuration.
	Series []Series
}

// Series is one curve: Y[i] is the value at X[i].
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Value returns the Y value at x, or NaN-free (0, false) if absent.
func (s Series) Value(x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

// Get returns the series with the given label.
func (t *Table) Get(label string) (Series, bool) {
	for _, s := range t.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// WriteTo renders the table as fixed-width text with one row per X value
// and one column per series.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "# Y = %s\n", t.YLabel)

	xs := t.xValues()
	fmt.Fprintf(&sb, "%-12s", t.XLabel)
	for _, s := range t.Series {
		fmt.Fprintf(&sb, " %14s", s.Label)
	}
	sb.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&sb, "%-12.4g", x)
		for _, s := range t.Series {
			if y, ok := s.Value(x); ok {
				fmt.Fprintf(&sb, " %14.4g", y)
			} else {
				fmt.Fprintf(&sb, " %14s", "-")
			}
		}
		sb.WriteByte('\n')
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// xValues returns the sorted union of all series' X values.
func (t *Table) xValues() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range t.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

// Options configures an experiment run.
type Options struct {
	// Seed drives trace generation; identical seeds reproduce identical
	// tables.
	Seed int64

	// Scale multiplies the paper-sized request counts (1.0 = full length;
	// the default 0.2 keeps a full figure sweep under a couple of
	// minutes). The target catalog and data-set size are never scaled, so
	// the working-set geometry is preserved.
	Scale float64

	// Nodes lists the cluster sizes to sweep (default 1,2,4,6,8,12,16).
	Nodes []int

	// Progress, when non-nil, receives one line per completed simulation.
	Progress io.Writer
}

// withDefaults fills in zero values.
func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Scale <= 0 {
		o.Scale = 0.2
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []int{1, 2, 4, 6, 8, 12, 16}
	}
	return o
}

func (o Options) progressf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Experiment ties a paper artifact to its regeneration code.
type Experiment struct {
	// ID is the lookup key ("figure7", "hotspot", …).
	ID string

	// Title summarizes what the paper artifact shows.
	Title string

	// Paper states the published result this experiment reproduces, for
	// side-by-side comparison in the output.
	Paper string

	// Run regenerates the artifact.
	Run func(Options) ([]*Table, error)
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "figure5",
			Title: "Rice University trace cumulative request/size distributions",
			Paper: "2.3M reqs over 37703 files (1418 MB); covering 97/99% of requests needs several hundred MB",
			Run:   Figure5,
		},
		{
			ID:    "figure6",
			Title: "IBM trace cumulative request/size distributions",
			Paper: "15.6M reqs over 38527 files (1029 MB); far less memory covers the same request fractions",
			Run:   Figure6,
		},
		{
			ID:    "figure7",
			Title: "Throughput vs cluster size, Rice trace, all strategies",
			Paper: "LARD/R exceeds WRR ~3.9x at 8 nodes and ~4.5x at 16; superlinear LARD speedup at 8-10 nodes",
			Run:   Figure7,
		},
		{
			ID:    "figure8",
			Title: "Cache miss ratio vs cluster size, Rice trace",
			Paper: "WRR flat (no cache aggregation); LARD/LARD/R decline below 10%/5%; LB/GC lowest",
			Run:   Figure8,
		},
		{
			ID:    "figure9",
			Title: "Node underutilization time vs cluster size, Rice trace",
			Paper: "WRR lowest idle time; LB worst (no load awareness); LARD close to WRR",
			Run:   Figure9,
		},
		{
			ID:    "figure10",
			Title: "Throughput vs cluster size, IBM trace, all strategies",
			Paper: "smaller working set: superlinear speedup only up to ~5 nodes; LARD/R > 2x WRR at >= 5 nodes",
			Run:   Figure10,
		},
		{
			ID:    "figure11",
			Title: "WRR throughput vs CPU speed (1x-4x, memory 1x/1.5x/2x/3x), Rice trace",
			Paper: "WRR cannot benefit from added CPU at all since it is disk bound",
			Run:   Figure11,
		},
		{
			ID:    "figure12",
			Title: "LARD/R throughput vs CPU speed (1x-4x, memory 1x/1.5x/2x/3x), Rice trace",
			Paper: "LARD/R capitalizes on added CPU: cache aggregation makes the system CPU bound",
			Run:   Figure12,
		},
		{
			ID:    "figure13",
			Title: "WRR throughput vs disks per node (1-4), Rice trace",
			Paper: "WRR greatly benefits from multiple disks (disk-subsystem bound)",
			Run:   Figure13,
		},
		{
			ID:    "figure14",
			Title: "LARD/R throughput vs disks per node (1-4), Rice trace",
			Paper: "a second disk yields a mild gain; additional disks achieve no further benefit",
			Run:   Figure14,
		},
		{
			ID:    "hotspot",
			Title: "LARD vs LARD/R with artificial high-frequency targets (Section 4.2)",
			Paper: "LARD/R exceeds LARD when hot targets (>20 KB) draw a large fraction of requests",
			Run:   Hotspot,
		},
		{
			ID:    "chess",
			Title: "Chess (Deep Blue) trace: best case for WRR, worst for LARD (Section 4.2)",
			Paper: "LARD and LARD/R closely match WRR's performance",
			Run:   Chess,
		},
		{
			ID:    "delay",
			Title: "Average request delay, LARD/R vs WRR (Section 4.4)",
			Paper: "LARD/R delay is a fraction of WRR's on Rice; about one half on IBM",
			Run:   Delay,
		},
		{
			ID:    "sensitivity",
			Title: "Sensitivity to T_high - T_low (Section 2.4)",
			Paper: "delay difference grows ~linearly with T_high-T_low; throughput rises mildly then flattens",
			Run:   Sensitivity,
		},
		{
			ID:    "failover",
			Title: "Back-end failure and recovery under LARD (Section 2.6, extension)",
			Paper: "the front end re-assigns targets of a failed back end as if never assigned",
			Run:   Failover,
		},
		{
			ID:    "churn",
			Title: "Failure/recovery timeline: windowed throughput and miss ratio, LARD and LARD/R (Section 2.6, extension)",
			Paper: "throughput dips on failure and recovers after the node rejoins; the rejoined node's cold cache spikes the miss ratio until it re-warms",
			Run:   Churn,
		},
		{
			ID:    "phttp",
			Title: "Persistent connections: per-connection handoff vs per-request re-handoff, LARD and WRR (Section 5, extension)",
			Paper: "the protocol allows either one back end per persistent connection or multiple handoffs; further research is needed to determine the appropriate policy",
			Run:   PHTTP,
		},
		{
			ID:    "mapcap",
			Title: "Bounded (LRU) mapping table ablation (Section 2.6, extension)",
			Paper: "discarding mappings for idle targets is of little consequence",
			Run:   MappingCapacity,
		},
		{
			ID:    "wrr10x",
			Title: "WRR with a tenfold node cache vs LARD/R (Section 4.1 verification)",
			Paper: "it would take a ten times larger cache in each node for WRR to match LARD",
			Run:   WRRTenfoldCache,
		},
		{
			ID:    "lru",
			Title: "GDS vs LRU back-end replacement policy (Section 3.1 check)",
			Paper: "relative ordering unaffected; absolute throughput up to 30% lower with LRU",
			Run:   LRUAblation,
		},
		{
			ID:    "hetero",
			Title: "Heterogeneous fleet (4 half + 2 double nodes): goodput under uniform vs per-node capacity thresholds (extension)",
			Paper: "the paper's fleet is homogeneous; its per-node T_low/T_high generalize to capacity profiles with bound S = sum(T_high_i) - max(T_high_i) + min(T_low_i) + 1",
			Run:   Hetero,
		},
	}
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
