package experiments

import "testing"

// The tentpole shape: on the 4-small+2-big fleet at pinned overload,
// profile-aware placement (wlard) beats uniform-threshold LARD on
// goodput by a wide margin while raw throughput stays flat, and the
// thresholds-only variant lands in between. Holds at tiny scale.
func TestHeteroShape(t *testing.T) {
	tables, err := Hetero(Options{Seed: 42, Scale: 0.05, Nodes: []int{6}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("Hetero returned %d tables, want 3", len(tables))
	}
	goodput, tput, mix := tables[0], tables[1], tables[2]
	if goodput.ID != "hetero" || tput.ID != "hetero-tput" || mix.ID != "hetero-mix" {
		t.Fatalf("table IDs = %q, %q, %q", goodput.ID, tput.ID, mix.ID)
	}

	for _, label := range []string{"lard-uni", "lard-prof", "lardr-prof", "pod", "wlard"} {
		s, ok := goodput.Get(label)
		if !ok {
			t.Fatalf("goodput table missing series %q", label)
		}
		if len(s.X) != 3 {
			t.Fatalf("series %q has %d points, want 3 alphas", label, len(s.X))
		}
	}

	// The acceptance margin: ≥20% at full scale, ≥10% even at this tiny
	// scale, at every skew.
	uni, _ := goodput.Get("lard-uni")
	wlard, _ := goodput.Get("wlard")
	prof, _ := goodput.Get("lard-prof")
	for i, alpha := range uni.X {
		if wlard.Y[i] < 1.10*uni.Y[i] {
			t.Errorf("alpha %.1f: wlard goodput %.0f not ≥10%% over lard-uni %.0f",
				alpha, wlard.Y[i], uni.Y[i])
		}
		if prof.Y[i] <= uni.Y[i] {
			t.Errorf("alpha %.1f: lard-prof goodput %.0f not above lard-uni %.0f",
				alpha, prof.Y[i], uni.Y[i])
		}
	}

	// Raw throughput stays flat: the collapse is a goodput effect, not a
	// capacity one.
	tuni, _ := tput.Get("lard-uni")
	twlard, _ := tput.Get("wlard")
	for i := range tuni.X {
		if r := twlard.Y[i] / tuni.Y[i]; r < 0.9 || r > 1.1 {
			t.Errorf("throughput diverges at alpha %.1f: wlard/uni = %.2f", tuni.X[i], r)
		}
	}

	// The mix sweep: scaled thresholds win at every small-node count.
	muni, _ := mix.Get("lard-uni")
	mprof, _ := mix.Get("lard-prof")
	if len(muni.X) != 4 {
		t.Fatalf("mix sweep has %d points, want 4", len(muni.X))
	}
	for i, small := range muni.X {
		if mprof.Y[i] <= muni.Y[i] {
			t.Errorf("%v small nodes: lard-prof goodput %.0f not above lard-uni %.0f",
				small, mprof.Y[i], muni.Y[i])
		}
	}
}
