package experiments

import (
	"fmt"
	"time"

	"lard/internal/cluster"
	"lard/internal/core"
	"lard/internal/trace"
)

// heteroOutstanding pins every variant's admission bound to the same
// offered concurrency (~50 per node on the 6-node fleet), below each
// policy's own derived S. Without this the closed loop saturates each
// policy at a *different* total backlog, and by Little's law average
// delay collapses to S/throughput regardless of placement — the
// uniform fleet's larger S would be charged against it as extra delay.
// Pinning the bound makes the comparison fair: identical offered load,
// and only where the connections sit — the thing the thresholds and
// weights govern — differs between runs.
const heteroOutstanding = 300

// heteroSLO is the per-request delay bound goodput is counted against,
// calibrated between the queue-drain times placement policy produces on
// the mixed fleet: weight-aware placement equalizes *relative* load, so
// every node drains its backlog in the same ~150-190 ms, while
// capacity-blind least-loaded placement equalizes raw connection
// counts, leaving a half-speed node a ~300 ms backlog (a full share at
// four times a big node's per-request cost). The bound sits between the
// two, so exactly the requests stuck behind a small node's over-deep
// queue miss it.
const heteroSLO = 230 * time.Millisecond

// heteroFleet builds a mixed fleet: the first small nodes at half weight
// and speed, the remaining big nodes at double. A 4+2 mix advertises the
// same nominal capacity as six standard nodes (4·0.5 + 2·2 = 6).
func heteroFleet(small, big int) []cluster.NodeProfile {
	fleet := make([]cluster.NodeProfile, 0, small+big)
	for i := 0; i < small; i++ {
		fleet = append(fleet, cluster.NodeProfile{Profile: core.Profile{Weight: 0.5}, Speed: 0.5})
	}
	for i := 0; i < big; i++ {
		fleet = append(fleet, cluster.NodeProfile{Profile: core.Profile{Weight: 2}, Speed: 2})
	}
	return fleet
}

// uniformThresholds strips a fleet's capacity advertisement while keeping
// its hardware: every node serves at its real speed but carries the fleet
// default weight-1 thresholds — the pre-profile dispatcher's view of a
// mixed fleet.
func uniformThresholds(fleet []cluster.NodeProfile) []cluster.NodeProfile {
	out := make([]cluster.NodeProfile, len(fleet))
	for i, p := range fleet {
		speed := p.Speed
		if speed == 0 {
			speed = p.Weight
		}
		if speed == 0 {
			speed = 1
		}
		out[i] = cluster.NodeProfile{Profile: core.Profile{Weight: 1}, Speed: speed}
	}
	return out
}

// heteroTrace builds the workload for the heterogeneity experiment: a
// catalog small enough that the fleet's aggregate cache covers it, with
// a narrow file-size spread. Unlike the Rice trace (whose working set
// dwarfs memory, making runs disk-bound, and whose heavy-tailed sizes
// swamp queueing delay with service-time variance), this keeps the back
// ends CPU-bound and per-request cost near-constant, so request delay
// is queueing behind a node's connection backlog — the quantity the
// T_low/T_high thresholds govern, and the one heterogeneous capacity
// distorts.
func heteroTrace(alpha float64) trace.SyntheticConfig {
	return trace.SyntheticConfig{
		Name:             fmt.Sprintf("hetero-a%.2g", alpha),
		Catalog:          "hetero",
		Targets:          1000,
		Requests:         2_300_000,
		DataSetBytes:     32 << 20,
		ZipfAlpha:        alpha,
		ZipfShift:        10,
		SizeSigma:        0.25,
		PopularSmallBias: 0,
		MinFileBytes:     8 << 10,
		MaxFileBytes:     128 << 10,
	}
}

// Hetero measures capacity-profile awareness on a heterogeneous fleet:
// four half-capacity and two double-capacity nodes serving a cache-warm
// Zipf workload across a skew sweep, every variant at the same pinned
// offered concurrency. The hardware is identical in every run; only
// what the dispatcher believes about it differs.
//
//   - "lard-uni" is LARD with uniform weight-1 thresholds — its raw
//     least-loaded placement equalizes connection counts, so a
//     half-speed node carries the same backlog as a double-speed one
//     and drains it four times slower; the requests stuck behind it
//     blow the delay SLO while raw throughput stays flat (the queued
//     requests do complete);
//   - "lard-prof" carries per-node scaled thresholds (T_high 33 on the
//     small nodes), which cap how deep a small node's backlog grows —
//     worth ~17% goodput — but its *picks* are still capacity-blind;
//   - "wlard" also scales the placement itself (least *relative* load,
//     imbalance tested against weight-scaled thresholds) and recovers
//     ~22% over uniform: the full profile-aware LARD;
//   - "lardr-prof" and "pod" trade locality for replication/sampled
//     placement; on a cache-warm trace that costs misses and they trail
//     even lard-uni — capacity awareness does not rescue a policy that
//     gives up locality.
//
// The second table reports raw throughput for the same runs (flat
// across variants — the collapse is purely a goodput effect), and the
// third sweeps the fleet mix at the Rice skew: the uniform-threshold
// goodput penalty grows with the number of small nodes.
func Hetero(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	const nodes = 6
	fleet := heteroFleet(4, 2)

	type variant struct {
		label string
		kind  cluster.StrategyKind
		profs []cluster.NodeProfile
	}
	variants := []variant{
		{"lard-uni", cluster.LARD, uniformThresholds(fleet)},
		{"lard-prof", cluster.LARD, fleet},
		{"lardr-prof", cluster.LARDR, fleet},
		{"pod", cluster.POD, fleet},
		{"wlard", cluster.WLARD, fleet},
	}

	goodput := &Table{
		ID: "hetero",
		Title: fmt.Sprintf("Goodput (requests within %v) on 4 half + 2 double nodes vs Zipf skew, cache-warm trace",
			heteroSLO),
		XLabel: "zipf-alpha",
		YLabel: "goodput (reqs/sec within SLO)",
	}
	tput := &Table{
		ID:     "hetero-tput",
		Title:  "Raw throughput for the same runs (uniform thresholds keep throughput while losing goodput)",
		XLabel: "zipf-alpha",
		YLabel: "requests/sec",
	}

	run := func(v variant, tr *trace.Trace) (cluster.Result, error) {
		cfg := cluster.DefaultConfig(v.kind, nodes)
		cfg.Profiles = v.profs
		cfg.DelaySLO = heteroSLO
		cfg.MaxOutstanding = heteroOutstanding
		return simulate(opt, cfg, tr)
	}

	for _, alpha := range []float64{0.8, 1.1, 1.4} {
		tr := generate(heteroTrace(alpha), opt)
		for _, v := range variants {
			res, err := run(v, tr)
			if err != nil {
				return nil, err
			}
			appendPoint(goodput, v.label, alpha, res.Goodput)
			appendPoint(tput, v.label, alpha, res.Throughput)
		}
	}

	mix := &Table{
		ID:     "hetero-mix",
		Title:  "Goodput vs fleet mix (small nodes of 6, rest double) at the Rice skew: the uniform-threshold penalty grows with every small node",
		XLabel: "small-nodes",
		YLabel: "goodput (reqs/sec within SLO)",
	}
	mixTrace := generate(heteroTrace(1.4), opt)
	for _, small := range []int{2, 3, 4, 5} {
		f := heteroFleet(small, nodes-small)
		for _, v := range []variant{
			{"lard-uni", cluster.LARD, uniformThresholds(f)},
			{"lard-prof", cluster.LARD, f},
		} {
			res, err := run(v, mixTrace)
			if err != nil {
				return nil, err
			}
			appendPoint(mix, v.label, float64(small), res.Goodput)
		}
	}

	return []*Table{goodput, tput, mix}, nil
}

// appendPoint adds (x, y) to the table's series with the given label,
// creating the series on first use.
func appendPoint(t *Table, label string, x, y float64) {
	for i := range t.Series {
		if t.Series[i].Label == label {
			t.Series[i].X = append(t.Series[i].X, x)
			t.Series[i].Y = append(t.Series[i].Y, y)
			return
		}
	}
	t.Series = append(t.Series, Series{Label: label, X: []float64{x}, Y: []float64{y}})
}
