package experiments

import (
	"fmt"

	"lard/internal/cluster"
	"lard/internal/trace"
	"lard/pkg/lard"
)

// PHTTP sweeps the paper's Section 5 open question empirically: under
// persistent connections (P-HTTP), how should the front end trade a
// connection's back-end affinity against LARD's locality? "The protocol
// allows the front end to either let one back end serve all of the
// requests on a persistent connection or to hand off a connection
// multiple times ... However, further research is needed to determine
// the appropriate policy."
//
// X axis: mean requests per connection (1 = single-request connections,
// where the policies coincide; every point on the sweep charges the
// same per-handoff cost model, so curves are comparable across X). For
// each of LARD and WRR, the three lard.ConnPolicy built-ins run the
// same workload:
//
//   - "pin" hands the whole connection to its first request's node:
//     cheapest (no switches), but requests 2..k land wherever request 1
//     went, so LARD's miss ratio climbs toward WRR's and throughput
//     falls with it as connections lengthen;
//   - "perreq" re-dispatches every request, paying the Table 2 handoff
//     CPU on every back-end switch: LARD keeps its HTTP/1.0 locality
//     (flat miss ratio) — the misses avoided cost milliseconds of disk,
//     the handoffs paid cost microseconds of CPU;
//   - "costaware" re-dispatches every request but switches only when
//     the modelled locality gain beats the switch cost: expected to
//     hold near per-request throughput and miss ratio with a fraction
//     of its re-handoffs, because moves for targets that are cold
//     everywhere (the trace's long tail) buy nothing;
//   - WRR is mode-insensitive: it has no locality to lose, so its
//     series track each other.
//
// The third table counts re-handoffs per dispatched request — the cost
// side of the trade-off that the throughput table's CPU charge hides.
func PHTTP(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 8)
	reqsPerConn := []int{1, 2, 4, 8, 16}
	policies := []string{lard.ConnPin, lard.ConnPerRequest, lard.ConnCostAware}

	tput := &Table{
		ID: "phttp",
		Title: fmt.Sprintf("Throughput vs mean requests per persistent connection, %d nodes, Rice trace: pin vs per-request re-handoff vs cost-aware",
			nodes),
		XLabel: "reqs/conn",
		YLabel: "requests/sec",
	}
	miss := &Table{
		ID:     "phttp-miss",
		Title:  "Cache miss ratio for the same sweep (pinning scatters LARD's locality; re-handoff keeps it; cost-aware keeps most of it)",
		XLabel: "reqs/conn",
		YLabel: "miss ratio",
	}
	moves := &Table{
		ID:     "phttp-rehandoffs",
		Title:  "Re-handoffs per request for the same sweep (the switch cost cost-aware saves)",
		XLabel: "reqs/conn",
		YLabel: "rehandoffs/request",
	}

	for _, kind := range []cluster.StrategyKind{cluster.LARD, cluster.WRR} {
		for _, policy := range policies {
			label := kind.String() + " " + policy
			var xs, ty, my, ry []float64
			for _, k := range reqsPerConn {
				cfg := cluster.DefaultConfig(kind, nodes)
				cfg.ReqsPerConn = k
				cfg.ConnSeed = opt.Seed
				cfg.ConnPolicy = policy
				res, err := simulate(opt, cfg, tr)
				if err != nil {
					return nil, err
				}
				xs = append(xs, float64(k))
				ty = append(ty, res.Throughput)
				my = append(my, res.MissRatio)
				ry = append(ry, float64(res.Rehandoffs)/float64(max(res.Requests, 1)))
			}
			tput.Series = append(tput.Series, Series{Label: label, X: xs, Y: ty})
			miss.Series = append(miss.Series, Series{Label: label, X: xs, Y: my})
			moves.Series = append(moves.Series, Series{Label: label, X: xs, Y: ry})
		}
	}
	return []*Table{tput, miss, moves}, nil
}
