package experiments

import (
	"fmt"

	"lard/internal/cluster"
	"lard/internal/trace"
)

// PHTTP sweeps the paper's Section 5 open question empirically: under
// persistent connections (P-HTTP), should the front end hand a
// connection to one back end for its whole lifetime, or re-hand it off
// per request? "The protocol allows the front end to either let one back
// end serve all of the requests on a persistent connection or to hand
// off a connection multiple times ... However, further research is
// needed to determine the appropriate policy."
//
// X axis: mean requests per connection (1 = single-request connections,
// where the two policies coincide; every point on the sweep charges the
// same per-handoff cost model, so curves are comparable across X). For
// each of LARD and WRR, a per-connection
// series pins connections to their first request's node and a
// per-request series re-dispatches every request, paying the Table 2
// handoff CPU on every back-end switch. Expected shape:
//
//   - LARD per-connection degrades as connections lengthen — requests
//     2..k land wherever request 1 went, so the miss ratio climbs
//     toward WRR's and throughput falls with it;
//   - LARD per-request holds its HTTP/1.0 locality (flat miss ratio)
//     at a small per-switch CPU cost, finishing well above pinning —
//     the misses it avoids cost milliseconds of disk, the handoffs it
//     pays cost microseconds of CPU;
//   - WRR is mode-insensitive: it has no locality to lose, so the two
//     series track each other.
func PHTTP(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 8)
	reqsPerConn := []int{1, 2, 4, 8, 16}

	tput := &Table{
		ID: "phttp",
		Title: fmt.Sprintf("Throughput vs mean requests per persistent connection, %d nodes, Rice trace: per-connection handoff vs per-request re-handoff",
			nodes),
		XLabel: "reqs/conn",
		YLabel: "requests/sec",
	}
	miss := &Table{
		ID:     "phttp-miss",
		Title:  "Cache miss ratio for the same sweep (pinning scatters LARD's locality; re-handoff keeps it)",
		XLabel: "reqs/conn",
		YLabel: "miss ratio",
	}

	for _, kind := range []cluster.StrategyKind{cluster.LARD, cluster.WRR} {
		for _, rehandoff := range []bool{false, true} {
			label := kind.String() + " per-conn"
			if rehandoff {
				label = kind.String() + " per-req"
			}
			var xs, ty, my []float64
			for _, k := range reqsPerConn {
				cfg := cluster.DefaultConfig(kind, nodes)
				cfg.ReqsPerConn = k
				cfg.ConnSeed = opt.Seed
				cfg.RehandoffPerRequest = rehandoff
				res, err := simulate(opt, cfg, tr)
				if err != nil {
					return nil, err
				}
				xs = append(xs, float64(k))
				ty = append(ty, res.Throughput)
				my = append(my, res.MissRatio)
			}
			tput.Series = append(tput.Series, Series{Label: label, X: xs, Y: ty})
			miss.Series = append(miss.Series, Series{Label: label, X: xs, Y: my})
		}
	}
	return []*Table{tput, miss}, nil
}
