package experiments

import (
	"lard/internal/cluster"
	"lard/internal/trace"
)

// This file holds the ablation experiments the paper describes in prose
// rather than in a numbered figure.

// WRRTenfoldCache reproduces the Section 4.1 verification: "with WRR it
// would take a ten times larger cache in each node to match the
// performance of LARD on this particular trace. We have verified this
// fact by simulating WRR with a tenfold node cache size."
func WRRTenfoldCache(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	table := &Table{
		ID:     "wrr10x",
		Title:  "WRR with a tenfold node cache vs LARD/R, Rice trace",
		XLabel: "nodes",
		YLabel: "requests/sec",
	}
	configs := []struct {
		label string
		kind  cluster.StrategyKind
		cache int64
	}{
		{"WRR 32MB", cluster.WRR, cluster.DefaultCacheBytes},
		{"WRR 320MB", cluster.WRR, 10 * cluster.DefaultCacheBytes},
		{"LARD/R 32MB", cluster.LARDR, cluster.DefaultCacheBytes},
	}
	for _, c := range configs {
		var xs, ys []float64
		for _, n := range opt.Nodes {
			cfg := cluster.DefaultConfig(c.kind, n)
			cfg.CacheBytes = c.cache
			res, err := simulate(opt, cfg, tr)
			if err != nil {
				return nil, err
			}
			xs = append(xs, float64(n))
			ys = append(ys, res.Throughput)
		}
		table.Series = append(table.Series, Series{Label: c.label, X: xs, Y: ys})
	}
	return []*Table{table}, nil
}

// LRUAblation reproduces the Section 3.1 replacement-policy check: "We
// have also performed simulations with LRU ... The relative performance
// of the various distribution strategies remained largely unaffected.
// However, the absolute throughput results were up to 30% lower with LRU
// than with GDS."
func LRUAblation(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	table := &Table{
		ID:     "lru",
		Title:  "GDS vs LRU back-end replacement policy, Rice trace",
		XLabel: "nodes",
		YLabel: "requests/sec",
	}
	for _, policy := range []cluster.CachePolicy{cluster.GDS, cluster.LRU} {
		for _, kind := range []cluster.StrategyKind{cluster.WRR, cluster.LARDR} {
			var xs, ys []float64
			for _, n := range opt.Nodes {
				cfg := cluster.DefaultConfig(kind, n)
				cfg.CachePolicy = policy
				res, err := simulate(opt, cfg, tr)
				if err != nil {
					return nil, err
				}
				xs = append(xs, float64(n))
				ys = append(ys, res.Throughput)
			}
			table.Series = append(table.Series, Series{
				Label: kind.String() + "/" + policy.String(),
				X:     xs,
				Y:     ys,
			})
		}
	}
	return []*Table{table}, nil
}
