package experiments

import (
	"fmt"

	"lard/internal/cluster"
	"lard/internal/trace"
)

// Churn regenerates the paper's failure/recovery scenario (Section 2.6's
// recovery story, run the way Section 5.9 of cluster-availability studies
// present it) as a time series rather than a single aggregate: node 1
// fails one third into the run and rejoins with a cold cache at two
// thirds. The expected shape, for both LARD and LARD/R:
//
//   - throughput dips when the node fails (capacity loss plus the burst
//     of re-assignments for its targets);
//   - the cluster re-converges on the survivors (mappings re-built "as if
//     they had not been assigned before");
//   - on recovery, throughput climbs back while the windowed miss ratio
//     spikes and then decays as the rejoined node's cache re-warms.
func Churn(opt Options) ([]*Table, error) {
	opt = opt.withDefaults()
	tr := generate(trace.RiceProfile(), opt)
	nodes := maxNodes(opt.Nodes, 4)

	// Calibrate the schedule against an undisturbed run of the same
	// trace, so the failure window covers the middle third regardless of
	// scale.
	baseline, err := simulate(opt, cluster.DefaultConfig(cluster.LARD, nodes), tr)
	if err != nil {
		return nil, err
	}
	failAt := baseline.SimTime / 3
	recoverAt := baseline.SimTime * 2 / 3

	tput := &Table{
		ID: "churn",
		Title: fmt.Sprintf("Windowed throughput through node 1 failing at %v and rejoining cold at %v, %d nodes, Rice trace",
			failAt.Round(0), recoverAt.Round(0), nodes),
		XLabel: "seconds",
		YLabel: "requests/sec (window)",
	}
	miss := &Table{
		ID:     "churn-miss",
		Title:  "Windowed cache miss ratio through the same failure/recovery run (cold-cache spike decays as the rejoined node re-warms)",
		XLabel: "seconds",
		YLabel: "miss ratio (window)",
	}
	alive := &Table{
		ID:     "churn-alive",
		Title:  "Nodes eligible for new assignments through the same run (the membership ground truth under the curves)",
		XLabel: "seconds",
		YLabel: "alive nodes",
	}

	for _, k := range []cluster.StrategyKind{cluster.LARD, cluster.LARDR} {
		cfg := cluster.DefaultConfig(k, nodes)
		cfg.SampleEvery = baseline.SimTime / 36
		cfg.Churn = []cluster.ChurnEvent{
			cluster.FailAt(1, failAt),
			cluster.RecoverAt(1, recoverAt),
		}
		res, err := simulate(opt, cfg, tr)
		if err != nil {
			return nil, err
		}
		var xs, ty, my, ay []float64
		for _, s := range res.Timeline {
			xs = append(xs, s.At.Seconds())
			ty = append(ty, s.Throughput)
			my = append(my, s.MissRatio)
			ay = append(ay, float64(s.AliveNodes))
		}
		tput.Series = append(tput.Series, Series{Label: k.String(), X: xs, Y: ty})
		miss.Series = append(miss.Series, Series{Label: k.String(), X: xs, Y: my})
		alive.Series = append(alive.Series, Series{Label: k.String(), X: xs, Y: ay})
	}
	return []*Table{tput, miss, alive}, nil
}
