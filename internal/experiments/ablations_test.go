package experiments

import "testing"

func TestWRRTenfoldCacheShape(t *testing.T) {
	// Cache-size effects need request density: at very small scales
	// compulsory misses dominate and no cache size helps, so this test
	// uses a longer trace than the other shape tests.
	opt := Options{Seed: 42, Scale: 0.1, Nodes: []int{4, 8}}
	tables, err := WRRTenfoldCache(opt)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	small, _ := tab.Get("WRR 32MB")
	big, _ := tab.Get("WRR 320MB")
	lardr, _ := tab.Get("LARD/R 32MB")
	s8 := at(t, small, 8)
	b8 := at(t, big, 8)
	l8 := at(t, lardr, 8)
	// Tenfold cache must lift WRR substantially. How closely it matches
	// LARD is trace-structure-sensitive: under WRR every node pays its
	// own compulsory miss per target, which the paper's two-month logs
	// amortize far better than a synthetic trace can — EXPERIMENTS.md
	// records the divergence. The robust directional claims:
	if b8 < s8*1.2 {
		t.Fatalf("10x cache WRR %.0f not well above 1x %.0f", b8, s8)
	}
	if l8 <= b8 {
		t.Fatalf("LARD/R with 32MB (%.0f) should still lead WRR with 320MB (%.0f) on synthetic traces", l8, b8)
	}
}

func TestLRUAblationShape(t *testing.T) {
	tables, err := LRUAblation(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(tab.Series))
	}
	wrrGDS, _ := tab.Get("WRR/GDS")
	wrrLRU, _ := tab.Get("WRR/LRU")
	lardGDS, _ := tab.Get("LARD/R/GDS")
	lardLRU, _ := tab.Get("LARD/R/LRU")
	// The relative ordering survives the policy swap.
	if at(t, lardLRU, 8) <= at(t, wrrLRU, 8) {
		t.Fatalf("LRU: LARD/R %.0f not above WRR %.0f", at(t, lardLRU, 8), at(t, wrrLRU, 8))
	}
	// LRU does not *beat* GDS for the locality strategy (the paper saw
	// up to 30% lower throughput with LRU).
	if at(t, lardLRU, 8) > at(t, lardGDS, 8)*1.1 {
		t.Fatalf("LRU above GDS: %.0f vs %.0f", at(t, lardLRU, 8), at(t, lardGDS, 8))
	}
	_ = wrrGDS
}

func TestAblationsRegistered(t *testing.T) {
	for _, id := range []string{"wrr10x", "lru"} {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("%s not registered", id)
		}
	}
}
