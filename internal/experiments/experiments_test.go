package experiments

import (
	"strings"
	"testing"
)

// tinyOpt keeps experiment tests fast: a short trace and few cluster
// sizes. Shape assertions hold even at this scale.
func tinyOpt() Options {
	return Options{Seed: 42, Scale: 0.02, Nodes: []int{1, 4, 8}}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"figure5", "figure6", "figure7", "figure8", "figure9", "figure10",
		"figure11", "figure12", "figure13", "figure14",
		"hotspot", "chess", "delay", "sensitivity", "failover", "churn",
		"phttp", "mapcap", "wrr10x", "lru", "hetero",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("experiment %d = %q, want %q", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Fatalf("experiment %q incomplete", id)
		}
	}
	if _, ok := Lookup("figure7"); !ok {
		t.Fatal("Lookup(figure7) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
}

func TestTableValueAndGet(t *testing.T) {
	tab := &Table{Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}}}}
	s, ok := tab.Get("a")
	if !ok {
		t.Fatal("Get(a) failed")
	}
	if v, ok := s.Value(2); !ok || v != 20 {
		t.Fatalf("Value(2) = %v, %v", v, ok)
	}
	if _, ok := s.Value(3); ok {
		t.Fatal("Value(3) found")
	}
	if _, ok := tab.Get("b"); ok {
		t.Fatal("Get(b) found")
	}
}

func TestTableWriteTo(t *testing.T) {
	tab := &Table{
		ID: "test", Title: "a test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Label: "s2", X: []float64{2, 3}, Y: []float64{7, 8}},
		},
	}
	var sb strings.Builder
	if _, err := tab.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# test", "s1", "s2", "10", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Union of X values: rows for 1, 2, 3 plus 3 header lines.
	if got := strings.Count(out, "\n"); got != 6 {
		t.Fatalf("line count = %d, want 6:\n%s", got, out)
	}
}

func TestFigure5And6CDFShapes(t *testing.T) {
	opt := tinyOpt()
	rice, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	ibm, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(rice) != 2 || len(ibm) != 2 {
		t.Fatalf("tables: %d, %d", len(rice), len(ibm))
	}
	// Final cumulative point reaches 1 on both curves.
	for _, tab := range []*Table{rice[0], ibm[0]} {
		for _, s := range tab.Series {
			if got := s.Y[len(s.Y)-1]; got < 0.999 || got > 1.001 {
				t.Fatalf("%s %s final cumulative = %v", tab.ID, s.Label, got)
			}
		}
	}
	// The defining contrast: IBM needs far less memory for 97% coverage.
	riceCov, _ := rice[1].Get("MB needed")
	ibmCov, _ := ibm[1].Get("MB needed")
	rice97, _ := riceCov.Value(0.97)
	ibm97, _ := ibmCov.Value(0.97)
	if ibm97*2 >= rice97 {
		t.Fatalf("IBM 97%% coverage %v MB not well below Rice %v MB", ibm97, rice97)
	}
}

func TestFigure7Shape(t *testing.T) {
	tables, err := Figure7(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if tab.ID != "figure7" {
		t.Fatalf("ID = %q", tab.ID)
	}
	if len(tab.Series) != 6 {
		t.Fatalf("series = %d, want 6 strategies", len(tab.Series))
	}
	wrr, _ := tab.Get("WRR")
	lardr, _ := tab.Get("LARD/R")
	w8, _ := wrr.Value(8)
	l8, _ := lardr.Value(8)
	// The paper's headline: LARD/R well above WRR once the cluster's
	// aggregate cache matters (2-4x in the paper; >=1.5x even at tiny
	// scale).
	if l8 < w8*1.5 {
		t.Fatalf("LARD/R@8 = %.0f not >= 1.5x WRR@8 = %.0f", l8, w8)
	}
	// Single node: all strategies identical (within noise) — same code
	// path, no distribution decisions to make.
	l1, _ := lardr.Value(1)
	w1, _ := wrr.Value(1)
	if l1 != w1 {
		t.Fatalf("single-node divergence: LARD/R %v vs WRR %v", l1, w1)
	}
}

func TestRiceSweepProducesThreeTables(t *testing.T) {
	tables, err := RiceSweep(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	ids := []string{"figure7", "figure8", "figure9"}
	for i, id := range ids {
		if tables[i].ID != id {
			t.Fatalf("table %d = %q, want %q", i, tables[i].ID, id)
		}
	}
	// Figure 8 shape: WRR's miss ratio does not fall with cluster size
	// (no cache aggregation); LARD/R's cache aggregation puts it well
	// below WRR at 8 nodes. (At this tiny test scale compulsory misses
	// dominate absolute values, so only relative shapes are asserted —
	// the full-scale runs in EXPERIMENTS.md show the declining curves.)
	missWRR, _ := tables[1].Get("WRR")
	missLARDR, _ := tables[1].Get("LARD/R")
	w1, _ := missWRR.Value(1)
	w8, _ := missWRR.Value(8)
	if w8 < w1*0.8 {
		t.Fatalf("WRR miss fell with nodes: %v -> %v", w1, w8)
	}
	l8, _ := missLARDR.Value(8)
	if l8 >= w8*0.8 {
		t.Fatalf("LARD/R miss %v not well below WRR %v at 8 nodes", l8, w8)
	}
	// Figure 9 shape: LB idles far more than WRR at 8 nodes.
	idleWRR, _ := tables[2].Get("WRR")
	idleLB, _ := tables[2].Get("LB")
	iw, _ := idleWRR.Value(8)
	il, _ := idleLB.Value(8)
	if il <= iw {
		t.Fatalf("LB idle %v not above WRR idle %v", il, iw)
	}
}

func TestChessShape(t *testing.T) {
	tables, err := Chess(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	wrr, _ := tab.Get("WRR")
	lard, _ := tab.Get("LARD")
	lardr, _ := tab.Get("LARD/R")
	// "Both LARD and LARD/R closely match the performance of WRR on this
	// trace": within 15% at every cluster size.
	for i, x := range wrr.X {
		for _, s := range []Series{lard, lardr} {
			v, ok := s.Value(x)
			if !ok {
				t.Fatalf("missing point at %v", x)
			}
			if v < wrr.Y[i]*0.85 {
				t.Fatalf("at %v nodes: %v = %.0f below 85%% of WRR %.0f", x, s.Label, v, wrr.Y[i])
			}
		}
	}
}

func TestHotspotShape(t *testing.T) {
	opt := tinyOpt()
	tables, err := Hotspot(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	ratio, _ := tables[1].Get("ratio")
	// With hot targets drawing up to 10% of requests, replication must
	// help (paper: +13-30%): LARD/R at least matches LARD at the largest
	// hot share.
	last := ratio.Y[len(ratio.Y)-1]
	if last < 1.0 {
		t.Fatalf("LARD/R / LARD = %v < 1 at max hot share", last)
	}
}

func TestDelayShape(t *testing.T) {
	tables, err := Delay(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d (want rice + ibm)", len(tables))
	}
	for _, tab := range tables {
		wrr, _ := tab.Get("WRR")
		lardr, _ := tab.Get("LARD/R")
		w8, _ := wrr.Value(8)
		l8, _ := lardr.Value(8)
		// Section 4.4: LARD/R's average delay is well below WRR's.
		if l8 >= w8 {
			t.Fatalf("%s: LARD/R delay %v not below WRR %v", tab.ID, l8, w8)
		}
	}
}

func TestSensitivityShape(t *testing.T) {
	opt := tinyOpt()
	tables, err := Sensitivity(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	dd, _ := tables[1].Get("LARD")
	// "The maximal delay difference increases approximately linearly with
	// T_high − T_low": the largest gap must show a larger delay
	// difference than the smallest.
	if dd.Y[len(dd.Y)-1] <= dd.Y[0] {
		t.Fatalf("delay difference not increasing: %v", dd.Y)
	}
}

func TestFailoverShape(t *testing.T) {
	tables, err := Failover(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	dropped, _ := tab.Get("dropped")
	if dropped.Y[0] != 0 {
		t.Fatalf("failover dropped %v requests", dropped.Y[0])
	}
	base, _ := tab.Get("tput baseline")
	fail, _ := tab.Get("tput failover")
	if fail.Y[0] >= base.Y[0] {
		t.Fatalf("failure did not cost throughput: %v vs %v", fail.Y[0], base.Y[0])
	}
	if fail.Y[0] < base.Y[0]*0.4 {
		t.Fatalf("failover collapse: %v vs baseline %v", fail.Y[0], base.Y[0])
	}
}

func TestChurnShape(t *testing.T) {
	// Slightly above tinyOpt's scale: the windowed timeline needs enough
	// requests per window for the dip/recovery shape to rise above noise.
	tables, err := Churn(Options{Seed: 42, Scale: 0.05, Nodes: []int{1, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 || tables[0].ID != "churn" || tables[1].ID != "churn-miss" ||
		tables[2].ID != "churn-alive" {
		t.Fatalf("unexpected tables: %v, %v, %v", tables[0].ID, tables[1].ID, tables[2].ID)
	}
	avg := func(ys []float64) float64 {
		s := 0.0
		for _, y := range ys {
			s += y
		}
		return s / float64(len(ys))
	}
	for _, label := range []string{"LARD", "LARD/R"} {
		tput, ok := tables[0].Get(label)
		if !ok || len(tput.Y) < 12 {
			t.Fatalf("%s timeline too short: %d samples", label, len(tput.Y))
		}
		// The last window is the closed loop draining its final requests;
		// drop it before comparing steady-state windows.
		ys := tput.Y[:len(tput.Y)-1]
		// Locate the failure window from the membership ground truth.
		aliveSeries, ok := tables[2].Get(label)
		if !ok {
			t.Fatalf("churn-alive has no %s series", label)
		}
		lo, hi := -1, -1
		for i, a := range aliveSeries.Y[:len(ys)] {
			if a < 4 {
				if lo < 0 {
					lo = i
				}
				hi = i
			}
		}
		if lo <= 3 || hi >= len(ys)-3 {
			t.Fatalf("%s failure window [%d,%d] leaves no healthy samples around it", label, lo, hi)
		}
		// Caches warm over the whole run, so compare the failure window
		// against the windows immediately around it rather than the
		// (cache-cold) start of the run.
		healthy := avg(ys[lo-3 : lo])
		failed := avg(ys[lo : hi+1])
		final := avg(ys[hi+1:])
		if failed >= healthy {
			t.Fatalf("%s throughput did not dip on failure: healthy %.1f, failed %.1f",
				label, healthy, failed)
		}
		if final <= failed {
			t.Fatalf("%s throughput did not recover after rejoin: failed %.1f, final %.1f",
				label, failed, final)
		}
	}
}

func TestPHTTPShape(t *testing.T) {
	// Scale 0.1 rather than tinyOpt's 0.02: CostAware's hot-target
	// replication pays a one-time miss per (target, node) pair, so the
	// acceptance criterion below needs a run long enough to amortize the
	// warm-up (the hot set is rate-defined and does not grow with run
	// length).
	tables, err := PHTTP(Options{Seed: 42, Scale: 0.1, Nodes: []int{1, 4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 || tables[0].ID != "phttp" || tables[1].ID != "phttp-miss" ||
		tables[2].ID != "phttp-rehandoffs" {
		t.Fatalf("unexpected tables: %v, %v, %v", tables[0].ID, tables[1].ID, tables[2].ID)
	}
	tput, miss, moves := tables[0], tables[1], tables[2]
	for _, tab := range tables {
		if len(tab.Series) != 6 {
			t.Fatalf("%s has %d series, want 6", tab.ID, len(tab.Series))
		}
	}

	lardPin := mustGet(t, miss, "LARD pin")
	lardReq := mustGet(t, miss, "LARD perreq")
	lardCA := mustGet(t, miss, "LARD costaware")
	// At reqs/conn = 1 every policy is the same machine: identical
	// results, the sweep's anchor point.
	if at(t, lardPin, 1) != at(t, lardReq, 1) || at(t, lardCA, 1) != at(t, lardReq, 1) {
		t.Fatalf("policies diverge at 1 req/conn: pin %v, perreq %v, costaware %v",
			at(t, lardPin, 1), at(t, lardReq, 1), at(t, lardCA, 1))
	}
	// Long connections: pinning scatters LARD's locality, re-handoff
	// preserves it.
	if at(t, lardPin, 16) <= at(t, lardReq, 16) {
		t.Fatalf("LARD pin miss %.3f not above perreq %.3f at 16 reqs/conn",
			at(t, lardPin, 16), at(t, lardReq, 16))
	}
	// Pinned-mode locality loss must be monotone enough to show: the
	// miss ratio at 16 reqs/conn exceeds the 1-req/conn anchor.
	if at(t, lardPin, 16) <= at(t, lardPin, 1) {
		t.Fatalf("LARD pin miss did not climb with connection length: %v -> %v",
			at(t, lardPin, 1), at(t, lardPin, 16))
	}
	// The throughput consequence: per-request re-handoff beats
	// per-connection handoff for LARD on long connections — avoided disk
	// misses dwarf the handoff CPU.
	tLardPin := mustGet(t, tput, "LARD pin")
	tLardReq := mustGet(t, tput, "LARD perreq")
	if at(t, tLardReq, 16) <= at(t, tLardPin, 16) {
		t.Fatalf("LARD perreq throughput %.1f not above pin %.1f at 16 reqs/conn",
			at(t, tLardReq, 16), at(t, tLardPin, 16))
	}
	// The acceptance criterion for the cost-aware middle: at reqs/conn
	// >= 8 it holds at least 90% of per-request throughput with at most
	// half of its re-handoffs.
	tLardCA := mustGet(t, tput, "LARD costaware")
	rLardReq := mustGet(t, moves, "LARD perreq")
	rLardCA := mustGet(t, moves, "LARD costaware")
	for _, x := range []float64{8, 16} {
		if ca, pr := at(t, tLardCA, x), at(t, tLardReq, x); ca < 0.9*pr {
			t.Fatalf("LARD costaware throughput %.1f below 90%% of perreq %.1f at %v reqs/conn",
				ca, pr, x)
		}
		if ca, pr := at(t, rLardCA, x), at(t, rLardReq, x); ca > 0.5*pr {
			t.Fatalf("LARD costaware re-handoffs %.4f/req above 50%% of perreq %.4f/req at %v reqs/conn",
				ca, pr, x)
		}
	}
	// Cost-aware must also keep most of the locality: its miss ratio
	// stays far below pin's at long connections.
	if at(t, lardCA, 16) >= at(t, lardPin, 16) {
		t.Fatalf("LARD costaware miss %.3f not below pin %.3f at 16 reqs/conn",
			at(t, lardCA, 16), at(t, lardPin, 16))
	}
	// WRR has no locality to lose: its modes stay within 20% of each
	// other everywhere.
	wPin := mustGet(t, tput, "WRR pin")
	wReq := mustGet(t, tput, "WRR perreq")
	wCA := mustGet(t, tput, "WRR costaware")
	for _, x := range wPin.X {
		a, b, c := at(t, wPin, x), at(t, wReq, x), at(t, wCA, x)
		if a > b*1.2 || b > a*1.2 || c > b*1.2 || b > c*1.2 {
			t.Fatalf("WRR mode-sensitive at %v reqs/conn: pin %.1f, perreq %.1f, costaware %.1f", x, a, b, c)
		}
	}
}

func mustGet(t *testing.T, tab *Table, label string) Series {
	t.Helper()
	s, ok := tab.Get(label)
	if !ok {
		t.Fatalf("table %s has no series %q", tab.ID, label)
	}
	return s
}

func TestMappingCapacityShape(t *testing.T) {
	tables, err := MappingCapacity(tinyOpt())
	if err != nil {
		t.Fatal(err)
	}
	tput, _ := tables[0].Get("LARD/R")
	// "Discarding mappings for such targets is of little consequence":
	// a few-thousand-entry table performs within 25% of unbounded.
	bounded := tput.Y[1] // capacity 2000
	unbounded := tput.Y[len(tput.Y)-1]
	if bounded < unbounded*0.75 {
		t.Fatalf("bounded mapping cost too high: %v vs %v", bounded, unbounded)
	}
}

func TestCPUAndDiskSweepShapes(t *testing.T) {
	opt := Options{Seed: 42, Scale: 0.02, Nodes: []int{4, 8}}
	f11, err := Figure11(opt)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Figure12(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 11 vs 12: at 8 nodes, 4x CPU helps LARD/R proportionally
	// more than WRR.
	wrr1, _ := f11[0].Get("1x cpu")
	wrr4, _ := f11[0].Get("4x cpu, 3x mem")
	lard1, _ := f12[0].Get("1x cpu")
	lard4, _ := f12[0].Get("4x cpu, 3x mem")
	w1, _ := wrr1.Value(8)
	w4, _ := wrr4.Value(8)
	l1, _ := lard1.Value(8)
	l4, _ := lard4.Value(8)
	if l4/l1 <= w4/w1 {
		t.Fatalf("CPU scaling gain: LARD/R %.2fx not above WRR %.2fx", l4/l1, w4/w1)
	}

	f13, err := Figure13(opt)
	if err != nil {
		t.Fatal(err)
	}
	f14, err := Figure14(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 13 vs 14: extra disks help WRR proportionally more than
	// LARD/R.
	wd1, _ := f13[0].Get("1 disk")
	wd4, _ := f13[0].Get("4 disks")
	ld1, _ := f14[0].Get("1 disk")
	ld4, _ := f14[0].Get("4 disks")
	wgain := at(t, wd4, 8) / at(t, wd1, 8)
	lgain := at(t, ld4, 8) / at(t, ld1, 8)
	if wgain <= lgain {
		t.Fatalf("disk scaling gain: WRR %.2fx not above LARD/R %.2fx", wgain, lgain)
	}
}

func at(t *testing.T, s Series, x float64) float64 {
	t.Helper()
	v, ok := s.Value(x)
	if !ok {
		t.Fatalf("series %q missing x=%v", s.Label, x)
	}
	return v
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Seed == 0 || o.Scale <= 0 || len(o.Nodes) == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
}
