package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchWorkload drives a cache with a Zipf-ish mix of lookups and inserts
// typical of the simulator's per-node access pattern.
func benchWorkload(b *testing.B, c Cache) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	keys := make([]string, 4096)
	sizes := make([]int64, len(keys))
	for i := range keys {
		keys[i] = fmt.Sprintf("/doc%04d.html", i)
		sizes[i] = int64(512 + rng.Intn(64<<10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := rng.Intn(len(keys))
		if _, ok := c.Lookup(keys[k]); !ok {
			c.Insert(keys[k], sizes[k])
		}
	}
}

func BenchmarkGDSLookupInsert(b *testing.B) { benchWorkload(b, NewGDS(16<<20)) }
func BenchmarkLRULookupInsert(b *testing.B) { benchWorkload(b, NewLRU(16<<20)) }

func BenchmarkGDSHitPath(b *testing.B) {
	c := NewGDS(1 << 20)
	c.Insert("/hot", 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup("/hot")
	}
}

func BenchmarkLRUHitPath(b *testing.B) {
	c := NewLRU(1 << 20)
	c.Insert("/hot", 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup("/hot")
	}
}
