package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// implementations returns fresh instances of every Cache policy at the
// given capacity, for conformance testing.
func implementations(capacity int64) map[string]Cache {
	return map[string]Cache{
		"LRU":        NewLRU(capacity),
		"LRU/cutoff": NewLRUWithCutoff(capacity, capacity/2+1),
		"GDS":        NewGDS(capacity),
		"GDS/size":   NewGDSWithCost(capacity, SizeCost),
	}
}

// TestConformanceCapacityInvariant drives every policy with a random
// workload and checks the shared invariants:
//
//	used <= capacity at all times
//	used == sum of sizes of contained keys
//	len == number of contained keys
//	hits+misses == number of lookups
func TestConformanceCapacityInvariant(t *testing.T) {
	const capacity = 1000
	for name, c := range implementations(capacity) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			live := map[string]int64{}
			c.SetEvictCallback(func(key string, size int64) {
				if live[key] != size {
					t.Fatalf("evict callback (%s,%d) does not match model %d", key, size, live[key])
				}
				delete(live, key)
			})
			lookups := 0
			for i := 0; i < 5000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(300))
				switch rng.Intn(4) {
				case 0, 1:
					_, _ = c.Lookup(key)
					lookups++
				case 2:
					size := int64(rng.Intn(200))
					if c.Insert(key, size) {
						live[key] = size
					}
				case 3:
					if c.Remove(key) {
						delete(live, key)
					} else if _, ok := live[key]; ok {
						t.Fatalf("Remove(%s) = false but model has it", key)
					}
				}
				if c.Used() > c.Capacity() {
					t.Fatalf("used %d exceeds capacity %d", c.Used(), c.Capacity())
				}
				var wantUsed int64
				for _, s := range live {
					wantUsed += s
				}
				if c.Used() != wantUsed {
					t.Fatalf("used %d, model %d", c.Used(), wantUsed)
				}
				if c.Len() != len(live) {
					t.Fatalf("len %d, model %d", c.Len(), len(live))
				}
			}
			st := c.Stats()
			if got := st.Hits + st.Misses; got != uint64(lookups) {
				t.Fatalf("hits+misses = %d, lookups = %d", got, lookups)
			}
		})
	}
}

// TestConformanceLookupAfterInsert: an object small enough to be admitted
// is immediately visible.
func TestConformanceLookupAfterInsert(t *testing.T) {
	for name, c := range implementations(100) {
		t.Run(name, func(t *testing.T) {
			if !c.Insert("x", 10) {
				t.Fatal("insert of admissible object failed")
			}
			if size, ok := c.Lookup("x"); !ok || size != 10 {
				t.Fatalf("Lookup = (%d,%v) right after Insert", size, ok)
			}
			if !c.Contains("x") {
				t.Fatal("Contains = false right after Insert")
			}
		})
	}
}

// TestConformanceContainsHasNoSideEffects: Contains must not alter stats or
// replacement state observably.
func TestConformanceContainsHasNoSideEffects(t *testing.T) {
	for name, c := range implementations(100) {
		t.Run(name, func(t *testing.T) {
			c.Insert("x", 10)
			before := c.Stats()
			for i := 0; i < 10; i++ {
				c.Contains("x")
				c.Contains("nope")
			}
			if c.Stats() != before {
				t.Fatalf("Contains changed stats: %+v -> %+v", before, c.Stats())
			}
		})
	}
}

// Property: the hit ratio computation is consistent with the counters.
func TestPropertyStatsRatios(t *testing.T) {
	f := func(hits, misses uint16) bool {
		s := Stats{Hits: uint64(hits), Misses: uint64(misses)}
		if s.Requests() == 0 {
			return s.HitRatio() == 0 && s.MissRatio() == 0
		}
		sum := s.HitRatio() + s.MissRatio()
		return sum > 0.9999999 && sum < 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a single-entry workload never evicts the working object, for
// any policy and any admissible size.
func TestPropertySingleObjectNeverEvicted(t *testing.T) {
	f := func(sizes []uint8) bool {
		for _, c := range implementations(256) {
			for _, s := range sizes {
				// Stay below every policy's admission bound (the cutoff
				// variant refuses sizes above capacity/2).
				if !c.Insert("only", int64(s%128)) {
					return false
				}
				if _, ok := c.Lookup("only"); !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with unit-size objects both policies behave identically to a
// count-bounded cache: they hold exactly min(inserted, capacity) objects.
func TestPropertyUnitSizeCountBound(t *testing.T) {
	f := func(n uint8) bool {
		const capacity = 64
		for _, c := range implementations(capacity) {
			for i := 0; i < int(n); i++ {
				c.Insert(fmt.Sprintf("k%d", i), 1)
			}
			want := int(n)
			if want > capacity {
				want = capacity
			}
			if c.Len() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
