package cache

import "container/heap"

// GDS is a Greedy-Dual-Size cache (Cao & Irani, USITS '97), the replacement
// policy the LARD paper uses for all reported simulations.
//
// Each cached object p carries a credit value H(p). When an object is
// inserted or hit, H(p) is set to L + cost(p)/size(p), where L is a global
// inflation value. On eviction the object with the minimum H is removed and
// L is raised to that minimum. The inflation makes recently-touched objects
// more valuable without requiring per-access aging of every entry.
//
// With the default uniform cost function cost(p) = 1 the policy maximizes
// object hit ratio (the paper's figure of merit); a size-proportional cost
// function turns it into a byte-hit-ratio policy.
type GDS struct {
	capacity int64
	used     int64
	inflate  float64 // L
	cost     CostFunc
	pq       gdsHeap
	entries  map[string]*gdsEntry
	stats    Stats
	onEvict  func(string, int64)
}

// CostFunc computes the retrieval cost of an object for GDS priorities.
type CostFunc func(key string, size int64) float64

// UniformCost assigns every object cost 1, optimizing object hit ratio.
// This is GDS(1), the variant the paper's simulations use.
func UniformCost(string, int64) float64 { return 1 }

// SizeCost assigns cost proportional to size, optimizing byte hit ratio.
func SizeCost(_ string, size int64) float64 { return float64(size) }

type gdsEntry struct {
	key   string
	size  int64
	h     float64 // credit H(p)
	seq   uint64  // tie-break: older entries evicted first
	index int
}

// NewGDS returns a Greedy-Dual-Size cache with uniform (hit-ratio) costs.
// It panics if capacity is negative.
func NewGDS(capacity int64) *GDS {
	return NewGDSWithCost(capacity, UniformCost)
}

// NewGDSWithCost returns a GDS cache with a custom cost function. A nil
// cost function means UniformCost. It panics if capacity is negative.
func NewGDSWithCost(capacity int64, cost CostFunc) *GDS {
	if capacity < 0 {
		panic("cache: negative GDS capacity")
	}
	if cost == nil {
		cost = UniformCost
	}
	return &GDS{
		capacity: capacity,
		cost:     cost,
		entries:  make(map[string]*gdsEntry),
	}
}

// priority computes a fresh H value for an object of the given size.
func (c *GDS) priority(key string, size int64) float64 {
	if size <= 0 {
		size = 1
	}
	return c.inflate + c.cost(key, size)/float64(size)
}

// Lookup implements Cache.
func (c *GDS) Lookup(key string) (int64, bool) {
	if ent, ok := c.entries[key]; ok {
		ent.h = c.priority(key, ent.size)
		heap.Fix(&c.pq, ent.index)
		c.stats.Hits++
		c.stats.BytesHit += uint64(ent.size)
		return ent.size, true
	}
	c.stats.Misses++
	return 0, false
}

// Contains implements Cache.
func (c *GDS) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Insert implements Cache.
//
// Following the canonical algorithm, room is made by evicting minimum-H
// objects before the new object is admitted, so the incoming object is
// never its own insertion's victim.
func (c *GDS) Insert(key string, size int64) bool {
	if size < 0 || size > c.capacity {
		c.stats.Rejected++
		return false
	}
	if ent, ok := c.entries[key]; ok {
		// Re-admission of an existing key: take it out of the running,
		// make room for the new size, then put it back refreshed.
		heap.Remove(&c.pq, ent.index)
		c.used -= ent.size
		c.makeRoom(size)
		ent.size = size
		ent.h = c.priority(key, size)
		ent.seq = c.pq.nextSeq()
		heap.Push(&c.pq, ent)
		c.used += size
		return true
	}
	c.makeRoom(size)
	ent := &gdsEntry{key: key, size: size, h: c.priority(key, size), seq: c.pq.nextSeq()}
	heap.Push(&c.pq, ent)
	c.entries[key] = ent
	c.used += size
	c.stats.Insertions++
	return true
}

// makeRoom evicts minimum-H entries until an object of the given size fits,
// raising the inflation value L to each evicted entry's H.
func (c *GDS) makeRoom(need int64) {
	for c.used+need > c.capacity {
		ent := c.pq.min()
		if ent == nil {
			return
		}
		c.inflate = ent.h
		c.removeEntry(ent)
		c.stats.Evictions++
		c.stats.BytesEvicted += uint64(ent.size)
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.size)
		}
	}
}

// Remove implements Cache.
func (c *GDS) Remove(key string) bool {
	ent, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeEntry(ent)
	return true
}

func (c *GDS) removeEntry(ent *gdsEntry) {
	heap.Remove(&c.pq, ent.index)
	delete(c.entries, ent.key)
	c.used -= ent.size
}

// Len implements Cache.
func (c *GDS) Len() int { return len(c.entries) }

// Used implements Cache.
func (c *GDS) Used() int64 { return c.used }

// Capacity implements Cache.
func (c *GDS) Capacity() int64 { return c.capacity }

// Stats implements Cache.
func (c *GDS) Stats() Stats { return c.stats }

// SetEvictCallback implements Cache.
func (c *GDS) SetEvictCallback(fn func(string, int64)) { c.onEvict = fn }

// Victim returns the key that would be evicted next (minimum H), or ""
// if the cache is empty. The LB/GC front-end model uses it to route misses.
func (c *GDS) Victim() (key string, size int64, ok bool) {
	ent := c.pq.min()
	if ent == nil {
		return "", 0, false
	}
	return ent.key, ent.size, true
}

var _ Cache = (*GDS)(nil)

// gdsHeap is a min-heap on (h, seq).
type gdsHeap struct {
	items []*gdsEntry
	seq   uint64
}

func (h *gdsHeap) nextSeq() uint64 { h.seq++; return h.seq }

func (h *gdsHeap) min() *gdsEntry {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *gdsHeap) Len() int { return len(h.items) }

func (h *gdsHeap) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.h != b.h {
		return a.h < b.h
	}
	return a.seq < b.seq
}

func (h *gdsHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index = i
	h.items[j].index = j
}

func (h *gdsHeap) Push(x any) {
	ent := x.(*gdsEntry)
	ent.index = len(h.items)
	h.items = append(h.items, ent)
}

func (h *gdsHeap) Pop() any {
	old := h.items
	n := len(old)
	ent := old[n-1]
	old[n-1] = nil
	h.items = old[:n-1]
	return ent
}
