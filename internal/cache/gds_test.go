package cache

import (
	"fmt"
	"testing"
)

func TestGDSBasicHitMiss(t *testing.T) {
	c := NewGDS(100)
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("lookup on empty cache hit")
	}
	if !c.Insert("a", 10) {
		t.Fatal("insert failed")
	}
	size, ok := c.Lookup("a")
	if !ok || size != 10 {
		t.Fatalf("Lookup(a) = (%d,%v), want (10,true)", size, ok)
	}
}

func TestGDSPrefersSmallObjectsUnderUniformCost(t *testing.T) {
	// With cost=1, H = L + 1/size: a large object has lower priority than a
	// small one inserted at the same inflation level, so it is evicted
	// first even if more recently inserted.
	c := NewGDS(100)
	c.Insert("small", 1)
	c.Insert("large", 90)
	c.Insert("trigger", 20) // overflow: evict lowest H
	if c.Contains("large") {
		t.Fatal("large object survived; GDS(1) should evict it first")
	}
	if !c.Contains("small") || !c.Contains("trigger") {
		t.Fatal("wrong victim evicted")
	}
}

func TestGDSHitRestoresPriority(t *testing.T) {
	// A hit sets H = L + cost/size again. Once the inflation value L has
	// risen above a stale object's H, a touched object survives while an
	// equally sized untouched one is evicted.
	c := NewGDS(100)
	c.Insert("touched", 10) // H = 0 + 1/10
	c.Insert("stale", 10)   // H = 0 + 1/10
	// Churn large fillers to drive L upward: each filler has H = L + 1/50
	// and is evicted by the next, raising L by 1/50 per round.
	for i := 0; i < 20; i++ {
		c.Insert(fmt.Sprintf("filler%d", i), 50)
		c.Lookup("touched") // refresh: H = L + 1/10
	}
	// L is now ~20/50 = 0.4, far above stale's H of 0.1.
	if c.Contains("stale") {
		t.Fatal("stale object survived churn; inflation not working")
	}
	if !c.Contains("touched") {
		t.Fatal("frequently hit object was evicted")
	}
}

func TestGDSInflationMonotone(t *testing.T) {
	// The L value must never decrease: evicted Hs are non-decreasing.
	c := NewGDS(50)
	var lastH float64 = -1
	c.SetEvictCallback(func(key string, size int64) {
		// At eviction time, inflate equals the evicted entry's H.
		if c.inflate < lastH {
			t.Fatalf("inflation decreased: %v -> %v", lastH, c.inflate)
		}
		lastH = c.inflate
	})
	for i := 0; i < 200; i++ {
		c.Insert(fmt.Sprintf("k%d", i), int64(1+i%25))
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("test exercised no evictions")
	}
}

func TestGDSSizeCostIsByteOriented(t *testing.T) {
	// With cost = size, H = L + 1 for every object: pure inflation ordering
	// (FIFO-with-refresh), so the oldest untouched object goes first
	// regardless of size.
	c := NewGDSWithCost(100, SizeCost)
	c.Insert("first", 50)
	c.Insert("second", 40)
	c.Insert("third", 20) // overflow: evict "first" (oldest, same H)
	if c.Contains("first") {
		t.Fatal("oldest same-priority object not evicted")
	}
	if !c.Contains("second") || !c.Contains("third") {
		t.Fatal("wrong victim")
	}
}

func TestGDSVictim(t *testing.T) {
	c := NewGDS(100)
	if _, _, ok := c.Victim(); ok {
		t.Fatal("Victim on empty cache returned ok")
	}
	c.Insert("small", 2)
	c.Insert("large", 50)
	key, size, ok := c.Victim()
	if !ok || key != "large" || size != 50 {
		t.Fatalf("Victim = (%s,%d,%v), want (large,50,true)", key, size, ok)
	}
}

func TestGDSUpdateExistingKey(t *testing.T) {
	c := NewGDS(100)
	c.Insert("a", 10)
	c.Insert("a", 70)
	if c.Used() != 70 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d, want 70, 1", c.Used(), c.Len())
	}
	c.Insert("b", 20)
	c.Insert("a", 90) // growing a over capacity evicts b
	if c.Contains("b") {
		t.Fatal("b survived overflow caused by growing a")
	}
	if !c.Contains("a") {
		t.Fatal("a lost while growing")
	}
}

func TestGDSRejectsOversizedAndNegative(t *testing.T) {
	c := NewGDS(100)
	c.Insert("a", 50)
	if c.Insert("huge", 101) {
		t.Fatal("oversized insert accepted")
	}
	if c.Insert("neg", -5) {
		t.Fatal("negative insert accepted")
	}
	if !c.Contains("a") {
		t.Fatal("rejection disturbed existing entries")
	}
	if c.Stats().Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", c.Stats().Rejected)
	}
}

func TestGDSRemove(t *testing.T) {
	c := NewGDS(100)
	c.Insert("a", 10)
	c.Insert("b", 20)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if c.Remove("a") {
		t.Fatal("double remove = true")
	}
	if c.Used() != 20 || c.Len() != 1 {
		t.Fatalf("Used=%d Len=%d", c.Used(), c.Len())
	}
}

func TestGDSZeroSizeObject(t *testing.T) {
	// Zero-size objects must not divide by zero.
	c := NewGDS(100)
	if !c.Insert("empty", 0) {
		t.Fatal("zero-size insert rejected")
	}
	if _, ok := c.Lookup("empty"); !ok {
		t.Fatal("zero-size object not found")
	}
}

func TestGDSNilCostDefaultsToUniform(t *testing.T) {
	c := NewGDSWithCost(100, nil)
	c.Insert("small", 1)
	c.Insert("large", 90)
	c.Insert("x", 20)
	if c.Contains("large") {
		t.Fatal("nil cost did not behave as UniformCost")
	}
}

func TestGDSNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGDS(-1)
}

func TestGDSEvictCallback(t *testing.T) {
	c := NewGDS(20)
	evictions := map[string]int64{}
	c.SetEvictCallback(func(key string, size int64) { evictions[key] = size })
	c.Insert("a", 15)
	c.Insert("b", 15) // evicts a
	if evictions["a"] != 15 {
		t.Fatalf("evictions = %v", evictions)
	}
}
