// Package cache implements the whole-file main-memory caches used by the
// LARD paper's back-end nodes (Section 3.1).
//
// Two replacement policies are provided behind a single interface:
//
//   - GDS: Greedy-Dual-Size (Cao & Irani), the policy the paper uses for
//     all reported simulations because "it appears to be the best known
//     policy for Web workloads".
//   - LRU: least-recently-used with an admission cutoff that never caches
//     files above a configurable size, the paper's alternative policy
//     (reported as up to ~30% lower absolute throughput, same relative
//     ordering of the distribution strategies).
//
// Caches are keyed by target name (URL) and account capacity in bytes of
// file content, matching the paper's whole-file caching model. The
// implementations are not safe for concurrent use; the simulator is
// single-goroutine and the live back end wraps its cache in a mutex.
package cache

// Stats counts cache activity since construction. Byte counters accumulate
// the sizes of the objects involved.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Insertions uint64
	Evictions  uint64
	Rejected   uint64 // insertions refused (object larger than capacity)

	BytesHit     uint64
	BytesMissed  uint64
	BytesEvicted uint64
}

// Requests returns the total number of lookups recorded.
func (s Stats) Requests() uint64 { return s.Hits + s.Misses }

// HitRatio returns Hits / (Hits + Misses), or 0 if no lookups occurred.
func (s Stats) HitRatio() float64 {
	total := s.Requests()
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// MissRatio returns 1 − HitRatio for non-empty stats, else 0.
func (s Stats) MissRatio() float64 {
	if s.Requests() == 0 {
		return 0
	}
	return 1 - s.HitRatio()
}

// Cache is a byte-capacity-bounded mapping from target names to their
// sizes, with a replacement policy.
type Cache interface {
	// Lookup records a request for key. It returns the object's size and
	// true on a hit (updating the policy's replacement metadata), or 0 and
	// false on a miss.
	Lookup(key string) (size int64, ok bool)

	// Contains reports whether key is cached without updating replacement
	// metadata or stats.
	Contains(key string) bool

	// Insert adds key with the given size, evicting objects as needed. It
	// returns false — and caches nothing — if size exceeds the capacity or
	// is negative. Inserting an existing key updates its size and
	// replacement metadata.
	Insert(key string, size int64) bool

	// Remove evicts key if present, without counting it as an eviction in
	// Stats, and reports whether it was present. It is used for explicit
	// invalidation.
	Remove(key string) bool

	// Len returns the number of cached objects.
	Len() int

	// Used returns the total bytes of cached content.
	Used() int64

	// Capacity returns the configured capacity in bytes.
	Capacity() int64

	// Stats returns a copy of the activity counters.
	Stats() Stats

	// SetEvictCallback registers fn to be called with the key and size of
	// every object removed by the replacement policy (not by Remove).
	// Passing nil clears the callback.
	SetEvictCallback(fn func(key string, size int64))
}
