package cache

import "testing"

func TestLRUBasicHitMiss(t *testing.T) {
	c := NewLRU(100)
	if _, ok := c.Lookup("a"); ok {
		t.Fatal("lookup on empty cache hit")
	}
	if !c.Insert("a", 10) {
		t.Fatal("insert failed")
	}
	size, ok := c.Lookup("a")
	if !ok || size != 10 {
		t.Fatalf("Lookup(a) = (%d, %v), want (10, true)", size, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Insertions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := NewLRU(30)
	c.Insert("a", 10)
	c.Insert("b", 10)
	c.Insert("c", 10)
	c.Lookup("a") // a is now MRU; b is LRU
	c.Insert("d", 10)
	if c.Contains("b") {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if !c.Contains(k) {
			t.Fatalf("%s missing", k)
		}
	}
}

func TestLRUEvictsMultipleForLargeInsert(t *testing.T) {
	c := NewLRU(30)
	c.Insert("a", 10)
	c.Insert("b", 10)
	c.Insert("c", 10)
	c.Insert("big", 25)
	if !c.Contains("big") {
		t.Fatal("big not cached")
	}
	if c.Used() > c.Capacity() {
		t.Fatalf("used %d > capacity %d", c.Used(), c.Capacity())
	}
	// 25 fits only alone in a 30-byte cache holding 10-byte entries:
	// a, b and c must all be evicted, in LRU order.
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if c.Contains("a") || c.Contains("b") || c.Contains("c") {
		t.Fatal("wrong victims")
	}
}

func TestLRURejectsOversized(t *testing.T) {
	c := NewLRU(100)
	c.Insert("a", 10)
	if c.Insert("huge", 101) {
		t.Fatal("oversized insert accepted")
	}
	if !c.Contains("a") {
		t.Fatal("rejected insert evicted existing entries")
	}
	if c.Stats().Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1", c.Stats().Rejected)
	}
}

func TestLRURejectsNegativeSize(t *testing.T) {
	c := NewLRU(100)
	if c.Insert("neg", -1) {
		t.Fatal("negative-size insert accepted")
	}
}

func TestLRUAdmissionCutoff(t *testing.T) {
	// The paper's LRU variant never caches files above a size cutoff.
	c := NewLRUWithCutoff(1<<20, 500)
	if c.Insert("big", 501) {
		t.Fatal("file above cutoff was cached")
	}
	if !c.Insert("small", 500) {
		t.Fatal("file at cutoff rejected")
	}
}

func TestLRUUpdateExistingKeySize(t *testing.T) {
	c := NewLRU(100)
	c.Insert("a", 10)
	c.Insert("a", 60)
	if c.Used() != 60 {
		t.Fatalf("Used = %d, want 60", c.Used())
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	size, ok := c.Lookup("a")
	if !ok || size != 60 {
		t.Fatalf("Lookup = (%d,%v), want (60,true)", size, ok)
	}
	// Growing an entry can trigger evictions of others.
	c.Insert("b", 30)
	c.Insert("b", 45) // 60+45 > 100 -> evict a (LRU)
	if c.Contains("a") {
		t.Fatal("a should have been evicted after b grew")
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU(100)
	c.Insert("a", 10)
	if !c.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if c.Remove("a") {
		t.Fatal("double Remove(a) = true")
	}
	if c.Used() != 0 || c.Len() != 0 {
		t.Fatalf("Used=%d Len=%d after removal", c.Used(), c.Len())
	}
	if c.Stats().Evictions != 0 {
		t.Fatal("Remove counted as eviction")
	}
}

func TestLRUEvictCallback(t *testing.T) {
	c := NewLRU(20)
	var evicted []string
	c.SetEvictCallback(func(key string, size int64) {
		evicted = append(evicted, key)
		if size != 10 {
			t.Fatalf("evict size = %d, want 10", size)
		}
	})
	c.Insert("a", 10)
	c.Insert("b", 10)
	c.Insert("c", 10) // evicts a
	c.Insert("d", 10) // evicts b
	if len(evicted) != 2 || evicted[0] != "a" || evicted[1] != "b" {
		t.Fatalf("evicted = %v, want [a b]", evicted)
	}
	c.SetEvictCallback(nil)
	c.Insert("e", 10) // must not panic
}

func TestLRUOldest(t *testing.T) {
	c := NewLRU(100)
	if _, _, ok := c.Oldest(); ok {
		t.Fatal("Oldest on empty cache returned ok")
	}
	c.Insert("a", 10)
	c.Insert("b", 20)
	key, size, ok := c.Oldest()
	if !ok || key != "a" || size != 10 {
		t.Fatalf("Oldest = (%s,%d,%v), want (a,10,true)", key, size, ok)
	}
	c.Lookup("a")
	key, _, _ = c.Oldest()
	if key != "b" {
		t.Fatalf("Oldest after touching a = %s, want b", key)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	if c.Insert("a", 1) {
		t.Fatal("insert into zero-capacity cache accepted")
	}
	if c.Insert("empty", 0) != true {
		t.Fatal("zero-size object should fit in zero-capacity cache")
	}
}

func TestLRUNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLRU(-1)
}

func TestLRUNegativeCutoffPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLRUWithCutoff(10, -1)
}
