package cache

import "container/list"

// LRU is a least-recently-used cache over whole files with an optional
// admission cutoff: files larger than MaxFileSize are never cached. This is
// the paper's alternative replacement policy ("LRU where files with a size
// of more than [the cutoff] are never cached").
type LRU struct {
	capacity    int64
	maxFileSize int64
	used        int64
	ll          *list.List // front = most recently used
	entries     map[string]*list.Element
	stats       Stats
	onEvict     func(string, int64)
}

type lruEntry struct {
	key  string
	size int64
}

// NewLRU returns an LRU cache with the given byte capacity and no admission
// cutoff. It panics if capacity is negative.
func NewLRU(capacity int64) *LRU {
	return NewLRUWithCutoff(capacity, 0)
}

// NewLRUWithCutoff returns an LRU cache that refuses to cache files larger
// than maxFileSize bytes. A maxFileSize of 0 disables the cutoff. It panics
// if capacity or maxFileSize is negative.
func NewLRUWithCutoff(capacity, maxFileSize int64) *LRU {
	if capacity < 0 {
		panic("cache: negative LRU capacity")
	}
	if maxFileSize < 0 {
		panic("cache: negative LRU file-size cutoff")
	}
	return &LRU{
		capacity:    capacity,
		maxFileSize: maxFileSize,
		ll:          list.New(),
		entries:     make(map[string]*list.Element),
	}
}

// Lookup implements Cache.
func (c *LRU) Lookup(key string) (int64, bool) {
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		size := el.Value.(*lruEntry).size
		c.stats.Hits++
		c.stats.BytesHit += uint64(size)
		return size, true
	}
	c.stats.Misses++
	return 0, false
}

// Contains implements Cache.
func (c *LRU) Contains(key string) bool {
	_, ok := c.entries[key]
	return ok
}

// Insert implements Cache.
//
// Room is made by evicting least-recently-used entries before the object is
// admitted, so the incoming object is never its own insertion's victim.
func (c *LRU) Insert(key string, size int64) bool {
	if size < 0 || size > c.capacity || (c.maxFileSize > 0 && size > c.maxFileSize) {
		c.stats.Rejected++
		return false
	}
	if el, ok := c.entries[key]; ok {
		ent := el.Value.(*lruEntry)
		c.used -= ent.size
		c.ll.Remove(el)
		delete(c.entries, key)
		c.makeRoom(size)
		c.entries[key] = c.ll.PushFront(ent)
		ent.size = size
		c.used += size
		return true
	}
	c.makeRoom(size)
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, size: size})
	c.used += size
	c.stats.Insertions++
	return true
}

// makeRoom removes least-recently-used entries until an object of the given
// size fits.
func (c *LRU) makeRoom(need int64) {
	for c.used+need > c.capacity {
		el := c.ll.Back()
		if el == nil {
			return
		}
		ent := el.Value.(*lruEntry)
		c.removeElement(el)
		c.stats.Evictions++
		c.stats.BytesEvicted += uint64(ent.size)
		if c.onEvict != nil {
			c.onEvict(ent.key, ent.size)
		}
	}
}

// Remove implements Cache.
func (c *LRU) Remove(key string) bool {
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.removeElement(el)
	return true
}

func (c *LRU) removeElement(el *list.Element) {
	ent := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.used -= ent.size
}

// Len implements Cache.
func (c *LRU) Len() int { return len(c.entries) }

// Used implements Cache.
func (c *LRU) Used() int64 { return c.used }

// Capacity implements Cache.
func (c *LRU) Capacity() int64 { return c.capacity }

// Stats implements Cache.
func (c *LRU) Stats() Stats { return c.stats }

// SetEvictCallback implements Cache.
func (c *LRU) SetEvictCallback(fn func(string, int64)) { c.onEvict = fn }

// Oldest returns the least-recently-used key, or "" if the cache is empty.
// The LB/GC front-end model uses it to find global eviction victims.
func (c *LRU) Oldest() (key string, size int64, ok bool) {
	el := c.ll.Back()
	if el == nil {
		return "", 0, false
	}
	ent := el.Value.(*lruEntry)
	return ent.key, ent.size, true
}

var _ Cache = (*LRU)(nil)
