// Package capacity is the saturation harness: it answers "how many
// requests per second can this cluster configuration sustain?" the way
// the paper's Section 6 throughput figures do, but closed-loop against
// the live prototype. A probe offers a fixed request rate (loadgen's
// paced mode) for a measurement window and checks the result against a
// service-level objective — p99 latency and error rate. The harness
// ramps the offered rate geometrically until the SLO breaks, then
// binary-searches the knee: the highest rate the SLO still holds at.
// The sweep driver (sweep.go) repeats the search across dispatcher
// configurations (locked vs sharded, GOMAXPROCS, connection policy) and
// emits the machine-readable report scripts/bench.sh stores as
// BENCH_PR9.json.
package capacity

import (
	"fmt"
	"time"
)

// SLO is the service-level objective a measurement must meet for its
// offered rate to count as sustained.
type SLO struct {
	// P99 is the highest acceptable 99th-percentile request latency.
	P99 time.Duration `json:"p99_ns"`

	// ErrRate is the highest acceptable error fraction
	// (errors / (requests + errors)).
	ErrRate float64 `json:"err_rate"`
}

// DefaultSLO is the sweep's objective when none is given: a generous
// 250ms p99 (an interactive-page budget, far above the healthy-cluster
// latencies on loopback) and at most 1% errors. The knee is insensitive
// to the exact p99 bound because latency explodes, not creeps, past
// saturation.
var DefaultSLO = SLO{P99: 250 * time.Millisecond, ErrRate: 0.01}

// Measurement is one probe: the cluster observed at one offered rate.
type Measurement struct {
	OfferedRate float64       `json:"offered_rps"`
	Throughput  float64       `json:"throughput_rps"` // successful requests per second
	P99         time.Duration `json:"p99_ns"`
	ErrRate     float64       `json:"err_rate"`
	Requests    uint64        `json:"requests"`
	Errors      uint64        `json:"errors"`

	// Sheds counts quota-shed requests (429s): offered but deliberately
	// rejected by the overload-protection layer. Sheds are excluded from
	// ErrRate — shedding is the SLO being defended, not broken.
	Sheds uint64 `json:"sheds,omitempty"`
}

// Meets reports whether the measurement satisfies the SLO.
func (m Measurement) Meets(slo SLO) bool {
	if slo.P99 > 0 && m.P99 > slo.P99 {
		return false
	}
	return m.ErrRate <= slo.ErrRate
}

// A Prober measures the system at one offered rate. Implementations are
// expected to be stateful but resettable: each call is an independent
// measurement window (Fleet.Prober runs the load generator against a
// live cluster; tests substitute analytic models).
type Prober func(rate float64) (Measurement, error)

// SearchConfig tunes FindKnee.
type SearchConfig struct {
	// StartRate is the first offered rate (default 50 req/s). It should
	// be comfortably below any plausible knee.
	StartRate float64

	// MaxRate caps the ramp (default 1<<20 req/s): a system that meets
	// the SLO at MaxRate reports the measurement there as the knee.
	MaxRate float64

	// Tolerance ends the binary search when the bracket has narrowed to
	// this fraction of the breaking rate (default 0.05, i.e. the knee is
	// known to within 5%).
	Tolerance float64

	// Confirm is how many times an SLO-breaking probe is re-measured
	// before the break is believed (default 1; -1 disables). A short
	// measurement window can blow p99 past the bound on a GC pause or a
	// scheduler hiccup alone; requiring the break to reproduce keeps one
	// noisy probe from capping the ramp far below the true knee. Probes
	// that meet the SLO are never re-measured — noise only ever breaks
	// an SLO, it cannot un-break one.
	Confirm int
}

func (c *SearchConfig) fill() {
	if c.StartRate <= 0 {
		c.StartRate = 50
	}
	if c.MaxRate <= 0 {
		c.MaxRate = 1 << 20
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.05
	}
	if c.Confirm == 0 {
		c.Confirm = 1
	} else if c.Confirm < 0 {
		c.Confirm = 0
	}
}

// SearchResult is FindKnee's outcome.
type SearchResult struct {
	// Knee is the highest measured rate that met the SLO. A zero
	// OfferedRate means even the lowest probe broke the SLO.
	Knee Measurement `json:"knee"`

	// Saturated reports whether an SLO-breaking rate was found;
	// false means the ramp hit MaxRate with the SLO intact.
	Saturated bool `json:"saturated"`

	// Probes is every measurement taken, in order (ramp then bisection),
	// so a report reader can see the latency curve, not just its knee.
	Probes []Measurement `json:"probes"`
}

// FindKnee locates the saturation knee: it ramps the offered rate
// geometrically (×2) from StartRate until a probe breaks the SLO (or
// MaxRate is reached), then binary-searches the bracket between the last
// sustained and first breaking rates until it is within Tolerance.
func FindKnee(cfg SearchConfig, slo SLO, probe Prober) (SearchResult, error) {
	cfg.fill()
	var res SearchResult

	// measure probes the rate, re-measuring an SLO break up to Confirm
	// times; the returned bool is the confirmed verdict (true = meets).
	measure := func(rate float64) (Measurement, bool, error) {
		m, err := probe(rate)
		if err != nil {
			return m, false, fmt.Errorf("capacity: probe at %.1f req/s: %w", rate, err)
		}
		res.Probes = append(res.Probes, m)
		if m.Meets(slo) {
			return m, true, nil
		}
		for i := 0; i < cfg.Confirm; i++ {
			m, err = probe(rate)
			if err != nil {
				return m, false, fmt.Errorf("capacity: probe at %.1f req/s: %w", rate, err)
			}
			res.Probes = append(res.Probes, m)
			if m.Meets(slo) {
				return m, true, nil
			}
		}
		return m, false, nil
	}

	// Ramp until the SLO breaks.
	lo, hi := 0.0, 0.0 // highest sustained / lowest breaking rate
	for rate := cfg.StartRate; ; rate *= 2 {
		if rate > cfg.MaxRate {
			rate = cfg.MaxRate
		}
		m, meets, err := measure(rate)
		if err != nil {
			return res, err
		}
		if meets {
			lo, res.Knee = rate, m
			if rate >= cfg.MaxRate {
				return res, nil // never saturated within the ramp
			}
			continue
		}
		hi = rate
		res.Saturated = true
		break
	}

	// Bisect (lo, hi): lo is the highest rate known to hold the SLO
	// (0 if even StartRate broke it), hi the lowest known to break it.
	for hi-lo > cfg.Tolerance*hi {
		mid := (lo + hi) / 2
		m, meets, err := measure(mid)
		if err != nil {
			return res, err
		}
		if meets {
			lo, res.Knee = mid, m
		} else {
			hi = mid
		}
	}
	return res, nil
}
