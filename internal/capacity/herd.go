package capacity

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"lard/internal/loadgen"
)

// This file is the thundering-herd experiment: the end-to-end proof that
// the overload-protection subsystem protects well-behaved clients from
// an abusive one. The cluster is offered a multiple of its measured
// saturation knee (BENCH_PR9's headline number), but almost all of the
// excess comes from a single client identity; the front end's
// per-client-IP quota must shed the abuser (429 + Retry-After) while the
// well-behaved cohort — each client comfortably inside its quota — keeps
// at least WellGoodputBar of its requests succeeding.
//
// Client identities are loopback source IPs: the well-behaved cohort
// binds 127.0.1.1..127.0.1.N and the abuser 127.0.2.1, all unprivileged
// binds on Linux, so the front end's quota (keyed by remote IP) sees
// real distinct clients on one machine.

// WellGoodputBar is the acceptance bar: the fraction of the well-behaved
// cohort's offered requests that must succeed under the herd.
const WellGoodputBar = 0.90

// HerdConfig drives RunHerd.
type HerdConfig struct {
	// Fleet is the cluster template. QuotaRate 0 lets RunHerd derive a
	// quota from the cohort geometry (2× each well-behaved client's
	// offered rate).
	Fleet FleetConfig

	// KneeRPS is the cluster's measured saturation knee (required): the
	// herd offers Multiplier times this.
	KneeRPS float64

	// Multiplier scales the knee into the herd's total offered rate
	// (default 10).
	Multiplier float64

	// WellClients is the number of well-behaved client identities
	// (default 8). Together they offer WellFraction of the knee; the
	// abuser offers everything else.
	WellClients int

	// WellFraction is the share of the knee offered by the well-behaved
	// cohort (default 0.5 — a comfortably sustainable load).
	WellFraction float64

	// Duration is the herd window (default 4s).
	Duration time.Duration

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

func (c *HerdConfig) fill() error {
	if c.KneeRPS <= 0 {
		return fmt.Errorf("capacity: HerdConfig.KneeRPS required (the measured knee)")
	}
	if c.Multiplier <= 0 {
		c.Multiplier = 10
	}
	if c.WellClients <= 0 {
		c.WellClients = 8
	}
	if c.WellFraction <= 0 || c.WellFraction >= 1 {
		c.WellFraction = 0.5
	}
	if c.Duration <= 0 {
		c.Duration = 4 * time.Second
	}
	return nil
}

// Cohort summarizes one client population's view of the herd window.
type Cohort struct {
	OfferedRPS      float64 `json:"offered_rps"`
	Requests        uint64  `json:"requests"` // succeeded (goodput)
	Errors          uint64  `json:"errors"`
	Sheds           uint64  `json:"sheds"`
	RetryAfterSheds uint64  `json:"retry_after_sheds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	GoodputFraction float64 `json:"goodput_fraction"` // Requests / (Requests+Errors+Sheds)
	ShedFraction    float64 `json:"shed_fraction"`
	P99             int64   `json:"p99_ns"`
}

func cohort(rate float64, st loadgen.Stats) Cohort {
	c := Cohort{
		OfferedRPS:      rate,
		Requests:        st.Requests,
		Errors:          st.Errors,
		Sheds:           st.Sheds,
		RetryAfterSheds: st.RetryAfterSheds,
		ThroughputRPS:   st.Throughput,
		P99:             int64(st.LatencyP99),
	}
	if total := st.Requests + st.Errors + st.Sheds; total > 0 {
		c.GoodputFraction = float64(st.Requests) / float64(total)
		c.ShedFraction = float64(st.Sheds) / float64(total)
	}
	return c
}

// HerdResult is the experiment's machine-readable outcome, stored by
// scripts/bench.sh as the "herd" section of BENCH_PR10.json.
type HerdResult struct {
	KneeRPS   float64 `json:"knee_rps"`
	HerdRPS   float64 `json:"herd_rps"` // total offered: knee × multiplier
	QuotaRate float64 `json:"quota_rate"`

	Well   Cohort `json:"well"`
	Abuser Cohort `json:"abuser"`

	// FEQuotaSheds/FEServed are the front end's own counters for the
	// window, cross-checking the client-side view.
	FEQuotaSheds uint64 `json:"fe_quota_sheds"`
	FEServed     uint64 `json:"fe_served"`

	// MetricsProof holds the /admin/metrics shed and goodput series
	// after the window — the metrics surface proving the protection.
	MetricsProof []string `json:"metrics_proof"`

	// Protected is the verdict: the well-behaved cohort kept at least
	// WellGoodputBar goodput, the abuser was shed, and every shed
	// carried Retry-After.
	Protected bool `json:"protected"`
}

// RunHerd offers Multiplier× the measured knee to a quota-protected
// fleet, with all the excess on one abusive client identity, and reports
// whether the well-behaved cohort was protected.
func RunHerd(ctx context.Context, cfg HerdConfig) (HerdResult, error) {
	if err := cfg.fill(); err != nil {
		return HerdResult{}, err
	}
	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	wellRate := cfg.WellFraction * cfg.KneeRPS
	herdRate := cfg.Multiplier * cfg.KneeRPS
	abuserRate := herdRate - wellRate
	perClient := wellRate / float64(cfg.WellClients)

	fc := cfg.Fleet
	if fc.Trace == nil {
		fc.Trace = defaultSweepTrace()
	}
	if fc.QuotaRate <= 0 {
		// Each well-behaved client offers perClient req/s; give 2×
		// headroom so pacing jitter never sheds a good citizen, while the
		// abuser (offering ~abuserRate) is capped to a sliver of it.
		fc.QuotaRate = 2 * perClient
	}
	fleet, err := NewFleet(fc)
	if err != nil {
		return HerdResult{}, err
	}
	defer fleet.Close()

	res := HerdResult{
		KneeRPS:   cfg.KneeRPS,
		HerdRPS:   herdRate,
		QuotaRate: fc.QuotaRate,
	}

	wellIDs := make([]string, cfg.WellClients)
	for i := range wellIDs {
		wellIDs[i] = fmt.Sprintf("127.0.1.%d", i+1)
	}
	logf("herd: knee %.0f req/s, offering %.0f (well %.0f over %d clients, abuser %.0f on one), quota %.1f req/s/client",
		cfg.KneeRPS, herdRate, wellRate, cfg.WellClients, abuserRate, fc.QuotaRate)

	run := func(rate float64, clients, reqsPerConn int, sources []string) (loadgen.Stats, error) {
		return loadgen.Run(ctx, loadgen.Config{
			BaseURL:     "http://" + fleet.Addr(),
			Trace:       fc.Trace,
			Clients:     clients,
			Rate:        rate,
			Duration:    cfg.Duration,
			Requests:    int(rate*cfg.Duration.Seconds()) + clients,
			KeepAlive:   true,
			ReqsPerConn: reqsPerConn,
			Timeout:     cfg.Duration + 5*time.Second,
			SourceAddrs: sources,
		})
	}

	var (
		wellStats, abuserStats loadgen.Stats
		wellErr, abuserErr     error
		wg                     sync.WaitGroup
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		wellStats, wellErr = run(wellRate, cfg.WellClients, 0, wellIDs)
	}()
	go func() {
		defer wg.Done()
		// The abuser hammers over many connections (a real abusive client
		// is not polite enough to serialize), all from one identity. The
		// raw P-HTTP client mode reads accept-time sheds as ordinary
		// responses, where net/http would treat a 429 racing its first
		// request as a dead connection.
		abuserStats, abuserErr = run(abuserRate, 16, 8, []string{"127.0.2.1"})
	}()
	wg.Wait()
	if wellErr != nil {
		return res, fmt.Errorf("capacity: herd well cohort: %w", wellErr)
	}
	if abuserErr != nil {
		return res, fmt.Errorf("capacity: herd abuser: %w", abuserErr)
	}

	res.Well = cohort(wellRate, wellStats)
	res.Abuser = cohort(abuserRate, abuserStats)
	fest := fleet.Frontend().Stats()
	res.FEQuotaSheds = fest.QuotaSheds
	res.FEServed = fest.Served
	res.MetricsProof = metricsProof(fleet)
	res.Protected = res.Well.GoodputFraction >= WellGoodputBar &&
		res.Abuser.Sheds > 0 &&
		res.Abuser.RetryAfterSheds == res.Abuser.Sheds
	logf("herd: well goodput %.1f%% (bar %.0f%%), abuser shed %.1f%% (%d sheds, %d with Retry-After), protected=%v",
		100*res.Well.GoodputFraction, 100*WellGoodputBar,
		100*res.Abuser.ShedFraction, res.Abuser.Sheds, res.Abuser.RetryAfterSheds, res.Protected)
	return res, nil
}

// metricsProof extracts the shed/goodput series from the front end's
// Prometheus exposition.
func metricsProof(fleet *Fleet) []string {
	var buf strings.Builder
	if err := fleet.Frontend().Metrics().WritePrometheus(&buf); err != nil {
		return nil
	}
	var proof []string
	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "lard_fe_sheds_total") ||
			strings.HasPrefix(line, "lard_fe_responses_total") ||
			strings.HasPrefix(line, "lard_fe_requests_total") {
			proof = append(proof, line)
		}
	}
	return proof
}
