package capacity

import (
	"context"
	"math"
	"testing"
	"time"

	"lard/internal/trace"
)

// modelProber simulates a cluster with a hard knee at capacity: below it
// latency is flat and errors zero; above it p99 explodes. It lets the
// search be tested deterministically and without wall time.
func modelProber(capacity float64, calls *int) Prober {
	return func(rate float64) (Measurement, error) {
		*calls++
		m := Measurement{
			OfferedRate: rate,
			Throughput:  math.Min(rate, capacity),
			P99:         5 * time.Millisecond,
			Requests:    uint64(rate),
		}
		if rate > capacity {
			m.P99 = 2 * time.Second
			m.ErrRate = 0.2
		}
		return m, nil
	}
}

func TestFindKneeConverges(t *testing.T) {
	for _, capacity := range []float64{120, 777, 5000, 48000} {
		var calls int
		res, err := FindKnee(SearchConfig{StartRate: 50, Tolerance: 0.05},
			DefaultSLO, modelProber(capacity, &calls))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Saturated {
			t.Fatalf("capacity %.0f: not saturated", capacity)
		}
		knee := res.Knee.OfferedRate
		// The knee must be sustained (≤ capacity) and within tolerance
		// of it from below.
		if knee > capacity {
			t.Fatalf("capacity %.0f: knee %.1f above capacity", capacity, knee)
		}
		if knee < capacity*0.9 {
			t.Fatalf("capacity %.0f: knee %.1f too far below", capacity, knee)
		}
		// Geometric ramp + bisection: the search must stay cheap.
		if calls > 30 {
			t.Fatalf("capacity %.0f: %d probes", capacity, calls)
		}
		if len(res.Probes) != calls {
			t.Fatalf("probes recorded %d, calls %d", len(res.Probes), calls)
		}
	}
}

func TestFindKneeBelowStartRate(t *testing.T) {
	// A system that cannot sustain even the start rate: the knee bisects
	// downward from StartRate instead of reporting garbage.
	var calls int
	res, err := FindKnee(SearchConfig{StartRate: 400, Tolerance: 0.05},
		DefaultSLO, modelProber(100, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatal("not saturated")
	}
	if k := res.Knee.OfferedRate; k > 100 || k < 80 {
		t.Fatalf("knee %.1f, want ~100 from below", k)
	}
}

func TestFindKneeNeverSaturates(t *testing.T) {
	var calls int
	res, err := FindKnee(SearchConfig{StartRate: 100, MaxRate: 1000},
		DefaultSLO, modelProber(1e9, &calls))
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Fatal("reported saturated below capacity")
	}
	if res.Knee.OfferedRate != 1000 {
		t.Fatalf("knee %.1f, want the MaxRate ceiling", res.Knee.OfferedRate)
	}
}

func TestFindKneeSurvivesOneNoisyProbe(t *testing.T) {
	// A single spurious SLO break far below capacity (the 2s-window GC
	// pause in a live sweep) must not cap the ramp: the default Confirm
	// re-measures a breaking probe, the retry passes, and the search
	// continues to the true knee.
	const capacity = 5000
	var calls int
	inner := modelProber(capacity, &calls)
	spent := false
	noisy := func(rate float64) (Measurement, error) {
		m, err := inner(rate)
		if !spent && rate >= 200 && rate <= capacity {
			spent = true
			m.P99 = 2 * time.Second // one-off hiccup, healthy rate
		}
		return m, err
	}

	res, err := FindKnee(SearchConfig{StartRate: 50, Tolerance: 0.05}, DefaultSLO, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if k := res.Knee.OfferedRate; k < capacity*0.9 || k > capacity {
		t.Fatalf("knee %.1f poisoned by one noisy probe (capacity %d)", k, capacity)
	}

	// With confirmation disabled the same hiccup caps the search early —
	// the knob does what it says.
	spent, calls = false, 0
	res, err = FindKnee(SearchConfig{StartRate: 50, Tolerance: 0.05, Confirm: -1},
		DefaultSLO, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if k := res.Knee.OfferedRate; k >= capacity*0.9 {
		t.Fatalf("Confirm: -1 still retried (knee %.1f)", k)
	}
}

func TestMeasurementMeets(t *testing.T) {
	slo := SLO{P99: 100 * time.Millisecond, ErrRate: 0.01}
	ok := Measurement{P99: 50 * time.Millisecond, ErrRate: 0.001}
	if !ok.Meets(slo) {
		t.Fatal("healthy measurement rejected")
	}
	if (Measurement{P99: 200 * time.Millisecond}).Meets(slo) {
		t.Fatal("latency violation accepted")
	}
	if (Measurement{P99: 50 * time.Millisecond, ErrRate: 0.5}).Meets(slo) {
		t.Fatal("error-rate violation accepted")
	}
}

func smokeTrace() *trace.Trace {
	return trace.MustGenerate(trace.SyntheticConfig{
		Name:         "smoke",
		Targets:      32,
		Requests:     256,
		DataSetBytes: 32 * 4096,
		ZipfAlpha:    0.9,
		SizeSigma:    0.2,
		MinFileBytes: 512,
	}, 3)
}

func TestFleetProbeE2E(t *testing.T) {
	// One live probe against a real in-process cluster: a modest offered
	// rate on loopback must meet the default SLO and report sane numbers.
	fleet, err := NewFleet(FleetConfig{
		Nodes:         2,
		Trace:         smokeTrace(),
		Clients:       4,
		ProbeDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	m, err := fleet.Prober(context.Background())(50)
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Fatal("probe issued no requests")
	}
	if !m.Meets(DefaultSLO) {
		t.Fatalf("50 req/s on loopback broke the SLO: %+v", m)
	}
	if m.Throughput <= 0 || m.OfferedRate != 50 {
		t.Fatalf("measurement %+v", m)
	}
}

func TestRunSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke needs a few wall seconds")
	}
	rep, err := RunSweep(context.Background(), SweepConfig{
		Smoke: true,
		Fleet: FleetConfig{
			Nodes:   2,
			Trace:   smokeTrace(),
			Clients: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Smoke sweeps one policy across the two dispatcher variants.
	if len(rep.Results) != 2 {
		t.Fatalf("results: %d, want 2", len(rep.Results))
	}
	for _, cr := range rep.Results {
		if cr.KneeRPS <= 0 {
			t.Fatalf("config %s found no sustainable rate: %+v", cr.Name, cr.Result)
		}
	}
	if best, name := rep.MaxSustainable(); best <= 0 || name == "" {
		t.Fatalf("MaxSustainable: %v %q", best, name)
	}
}
