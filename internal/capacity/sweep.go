package capacity

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"time"

	"lard/internal/trace"
)

// SweepConfig drives RunSweep.
type SweepConfig struct {
	// SLO is the objective each configuration is ramped against
	// (zero value = DefaultSLO).
	SLO SLO

	// Search tunes the knee search (zero value = defaults).
	Search SearchConfig

	// Fleet is the cluster template; Shards, ConnPolicy and
	// ProbeDuration are overridden per sweep point. A nil Trace gets a
	// default synthetic workload.
	Fleet FleetConfig

	// Policies are the connection policies swept (default pin, perreq,
	// costaware).
	Policies []string

	// Procs are the GOMAXPROCS values swept (default 1 and 4).
	Procs []int

	// ShardCounts are the dispatcher variants swept: 1 = locked,
	// >1 = sharded (default 1 and 8).
	ShardCounts []int

	// Smoke shrinks everything — one policy, the current GOMAXPROCS,
	// short probes, low rate ceiling — so CI can exercise the whole
	// harness in seconds.
	Smoke bool

	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// ConfigResult is the knee for one swept configuration.
type ConfigResult struct {
	Name       string  `json:"name"` // e.g. "sharded8/procs4/perreq"
	Dispatcher string  `json:"dispatcher"`
	Shards     int     `json:"shards"`
	Procs      int     `json:"gomaxprocs"`
	Policy     string  `json:"policy"`
	KneeRPS    float64 `json:"knee_rps"`

	Result SearchResult `json:"search"`
}

// Report is the sweep's machine-readable outcome, stored by
// scripts/bench.sh as the "capacity" section of BENCH_PR9.json.
type Report struct {
	Date    string         `json:"date"`
	NumCPU  int            `json:"num_cpu"` // physical parallelism available to the run
	Nodes   int            `json:"nodes"`
	Clients int            `json:"clients"`
	SLO     SLO            `json:"slo"`
	Smoke   bool           `json:"smoke,omitempty"`
	Results []ConfigResult `json:"results"`
}

// MaxSustainable returns the best knee in the report and its
// configuration name — the headline number.
func (r Report) MaxSustainable() (float64, string) {
	best, name := 0.0, ""
	for _, cr := range r.Results {
		if cr.KneeRPS > best {
			best, name = cr.KneeRPS, cr.Name
		}
	}
	return best, name
}

// defaultSweepTrace is the workload used when the caller supplies none:
// a Zipf-popular catalog small enough to stay cache-resident, so the
// knee measures the dispatch + handoff + relay path.
func defaultSweepTrace() *trace.Trace {
	return trace.MustGenerate(trace.SyntheticConfig{
		Name:         "capacity",
		Targets:      256,
		Requests:     4096,
		DataSetBytes: 256 * 8192,
		ZipfAlpha:    0.9,
		SizeSigma:    0.3,
		MinFileBytes: 512,
	}, 7)
}

// RunSweep measures the saturation knee for every configuration in the
// cross product {ShardCounts} × {Procs} × {Policies} and returns the
// report. GOMAXPROCS is set per configuration and restored before
// returning.
func RunSweep(ctx context.Context, cfg SweepConfig) (Report, error) {
	if cfg.SLO == (SLO{}) {
		cfg.SLO = DefaultSLO
	}
	if cfg.Fleet.Trace == nil {
		cfg.Fleet.Trace = defaultSweepTrace()
	}
	if len(cfg.Policies) == 0 {
		cfg.Policies = []string{"pin", "perreq", "costaware"}
	}
	if len(cfg.Procs) == 0 {
		cfg.Procs = []int{1, 4}
	}
	if len(cfg.ShardCounts) == 0 {
		cfg.ShardCounts = []int{1, 8}
	}
	if cfg.Smoke {
		cfg.Policies = cfg.Policies[:1]
		cfg.Procs = []int{runtime.GOMAXPROCS(0)}
		if cfg.Fleet.ProbeDuration <= 0 {
			cfg.Fleet.ProbeDuration = 150 * time.Millisecond
		}
		if cfg.Search.MaxRate <= 0 {
			cfg.Search.MaxRate = 400
		}
		if cfg.Search.StartRate <= 0 {
			cfg.Search.StartRate = 100
		}
		if cfg.Search.Tolerance <= 0 {
			cfg.Search.Tolerance = 0.5
		}
	}

	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}

	rep := Report{
		Date:    time.Now().UTC().Format(time.RFC3339),
		NumCPU:  runtime.NumCPU(),
		SLO:     cfg.SLO,
		Smoke:   cfg.Smoke,
		Results: []ConfigResult{},
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	for _, shards := range cfg.ShardCounts {
		for _, procs := range cfg.Procs {
			for _, policy := range cfg.Policies {
				if err := ctx.Err(); err != nil {
					return rep, err
				}
				disp := "locked"
				if shards > 1 {
					disp = fmt.Sprintf("sharded%d", shards)
				}
				name := fmt.Sprintf("%s/procs%d/%s", disp, procs, policy)

				runtime.GOMAXPROCS(procs)
				fc := cfg.Fleet
				fc.Shards = shards
				fc.ConnPolicy = policy
				fleet, err := NewFleet(fc)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return rep, fmt.Errorf("capacity: fleet for %s: %w", name, err)
				}
				rep.Nodes, rep.Clients = fleet.cfg.Nodes, fleet.cfg.Clients
				logf("capacity: probing %s", name)
				res, err := FindKnee(cfg.Search, cfg.SLO, fleet.Prober(ctx))
				fleet.Close()
				runtime.GOMAXPROCS(prev)
				if err != nil {
					return rep, fmt.Errorf("capacity: %s: %w", name, err)
				}
				logf("capacity: %s knee = %.0f req/s (p99 %v, %d probes)",
					name, res.Knee.OfferedRate, res.Knee.P99.Round(time.Millisecond), len(res.Probes))
				rep.Results = append(rep.Results, ConfigResult{
					Name:       name,
					Dispatcher: disp,
					Shards:     shards,
					Procs:      procs,
					Policy:     policy,
					KneeRPS:    res.Knee.OfferedRate,
					Result:     res,
				})
			}
		}
	}
	return rep, nil
}
