package capacity

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"lard/internal/backend"
	"lard/internal/breaker"
	"lard/internal/frontend"
	"lard/internal/handoff"
	"lard/internal/loadgen"
	"lard/internal/trace"
)

// FleetConfig describes one live in-process cluster: n back ends behind
// one front end on loopback, plus the workload the prober offers it.
type FleetConfig struct {
	// Nodes is the back-end count (default 4).
	Nodes int

	// Shards is the front end's dispatcher sharding: 1 is the paper's
	// single locked dispatch point, >1 the sharded variant (default 1).
	Shards int

	// Strategy is the dispatch policy (default "lard/r").
	Strategy string

	// ConnPolicy is the per-connection handoff policy: "pin", "perreq",
	// or "costaware" (default "pin").
	ConnPolicy string

	// Trace is the workload (required). The fleet's document store
	// serves its catalog.
	Trace *trace.Trace

	// CacheBytes is the per-node cache capacity (default: large enough
	// that capacity is bounded by the dispatch/relay path, not by
	// emulated disk).
	CacheBytes int64

	// DiskTimeScale scales the back ends' emulated disk delay on cache
	// misses (default 0: the harness measures the front end's dispatch
	// and relay capacity, not the paper's disk model).
	DiskTimeScale float64

	// Clients is how many load-generator connections offer the paced
	// load (default 32). It bounds in-flight requests: when the cluster
	// falls behind the offered schedule the backlog surfaces as latency.
	Clients int

	// ProbeDuration is each measurement window (default 2s).
	ProbeDuration time.Duration

	// ReqsPerConn, when > 0, uses loadgen's P-HTTP mode with this mean
	// requests-per-connection; 0 uses net/http keep-alive clients.
	ReqsPerConn int

	// QuotaRate/QuotaBurst/QuotaMaxClients configure the front end's
	// per-client-IP quota (0 rate = off), for overload experiments like
	// RunHerd.
	QuotaRate       float64
	QuotaBurst      float64
	QuotaMaxClients int

	// Breaker, when non-nil, enables the front end's per-back-end
	// circuit breakers with this configuration.
	Breaker *breaker.Config
}

func (c *FleetConfig) fill() error {
	if c.Trace == nil || c.Trace.Len() == 0 {
		return fmt.Errorf("capacity: FleetConfig.Trace required")
	}
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Strategy == "" {
		c.Strategy = "lard/r"
	}
	if c.ConnPolicy == "" {
		c.ConnPolicy = "pin"
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Clients <= 0 {
		c.Clients = 32
	}
	if c.ProbeDuration <= 0 {
		c.ProbeDuration = 2 * time.Second
	}
	return nil
}

// Fleet is a running in-process cluster ready to be probed.
type Fleet struct {
	cfg    FleetConfig
	fe     *frontend.Server
	feAddr string

	srvs []*http.Server
	lns  []*handoff.Listener
}

// NewFleet starts the cluster: Nodes back ends (each a handoff listener
// feeding an unmodified net/http server, exactly the prototype stack)
// and one front end dispatching to them.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	f := &Fleet{cfg: cfg}
	store := backend.NewDocStore(cfg.Trace.Targets)
	var addrs []string
	for i := 0; i < cfg.Nodes; i++ {
		be := backend.New(backend.Config{
			Store:         store,
			CacheBytes:    cfg.CacheBytes,
			DiskTimeScale: cfg.DiskTimeScale,
		})
		ln, err := handoff.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("capacity: back-end listener: %w", err)
		}
		srv := &http.Server{Handler: be.Handler()}
		go srv.Serve(ln)
		f.lns = append(f.lns, ln)
		f.srvs = append(f.srvs, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	fe, err := frontend.New(frontend.Config{
		Backends:        addrs,
		Strategy:        cfg.Strategy,
		Shards:          cfg.Shards,
		ConnPolicy:      cfg.ConnPolicy,
		QuotaRate:       cfg.QuotaRate,
		QuotaBurst:      cfg.QuotaBurst,
		QuotaMaxClients: cfg.QuotaMaxClients,
		Breaker:         cfg.Breaker,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("capacity: front-end listener: %w", err)
	}
	go fe.Serve(ln)
	f.fe = fe
	f.feAddr = ln.Addr().String()
	return f, nil
}

// Addr returns the front end's serving address.
func (f *Fleet) Addr() string { return f.feAddr }

// Frontend returns the running front end, for stats inspection.
func (f *Fleet) Frontend() *frontend.Server { return f.fe }

// Close tears the cluster down.
func (f *Fleet) Close() {
	if f.fe != nil {
		f.fe.Close()
	}
	for _, srv := range f.srvs {
		srv.Close()
	}
	for _, ln := range f.lns {
		ln.Close()
	}
}

// Prober returns the fleet's measurement function: offer rate req/s for
// ProbeDuration through the load generator and summarize the window.
func (f *Fleet) Prober(ctx context.Context) Prober {
	return func(rate float64) (Measurement, error) {
		lg := loadgen.Config{
			BaseURL:  "http://" + f.feAddr,
			Trace:    f.cfg.Trace,
			Clients:  f.cfg.Clients,
			Rate:     rate,
			Duration: f.cfg.ProbeDuration,
			// The request budget doubles as a runaway guard: the window
			// normally ends on the clock.
			Requests:  int(rate*f.cfg.ProbeDuration.Seconds()) + f.cfg.Clients,
			KeepAlive: true,
			Timeout:   f.cfg.ProbeDuration + 5*time.Second,
		}
		if f.cfg.ReqsPerConn > 0 {
			lg.ReqsPerConn = f.cfg.ReqsPerConn
		}
		st, err := loadgen.Run(ctx, lg)
		if err != nil {
			return Measurement{}, err
		}
		m := Measurement{
			OfferedRate: rate,
			Throughput:  st.Throughput,
			P99:         st.LatencyP99,
			Requests:    st.Requests,
			Errors:      st.Errors,
			Sheds:       st.Sheds,
		}
		// Sheds are deliberate load rejection, not failure: they join the
		// denominator (the request was offered) but not the error count,
		// so a quota doing its job does not break the SLO by itself.
		if total := st.Requests + st.Errors + st.Sheds; total > 0 {
			m.ErrRate = float64(st.Errors) / float64(total)
		} else {
			// A window that produced nothing at a nonzero offered rate is
			// a broken cluster, not a sustained one.
			m.ErrRate = 1
		}
		return m, nil
	}
}
