package capacity

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestHerdConfigFill(t *testing.T) {
	c := HerdConfig{}
	if err := c.fill(); err == nil {
		t.Fatal("missing KneeRPS accepted")
	}
	c = HerdConfig{KneeRPS: 1000}
	if err := c.fill(); err != nil {
		t.Fatal(err)
	}
	if c.Multiplier != 10 || c.WellClients != 8 || c.WellFraction != 0.5 || c.Duration != 4*time.Second {
		t.Fatalf("defaults: %+v", c)
	}
}

// TestHerdE2E is the scaled-down thundering-herd run: a small cluster
// offered 10× a modest "knee", one abusive identity supplying the
// excess. The well-behaved cohort must keep >= WellGoodputBar goodput
// and the abuser must be shed with Retry-After on every shed — the same
// assertions the full-scale `make herd` run makes, sized for CI.
func TestHerdE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("herd e2e needs a few wall seconds")
	}
	res, err := RunHerd(context.Background(), HerdConfig{
		Fleet: FleetConfig{
			Nodes:   2,
			Trace:   smokeTrace(),
			Clients: 4,
		},
		KneeRPS:     400, // far below loopback capacity: the quota, not saturation, is under test
		WellClients: 4,
		Duration:    1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Well.Requests == 0 || res.Abuser.Requests+res.Abuser.Sheds == 0 {
		t.Fatalf("cohorts issued nothing: %+v", res)
	}
	if res.Well.GoodputFraction < WellGoodputBar {
		t.Fatalf("well-behaved goodput %.3f under the %.2f bar: %+v",
			res.Well.GoodputFraction, WellGoodputBar, res.Well)
	}
	if res.Abuser.Sheds == 0 {
		t.Fatalf("abuser never shed: %+v", res.Abuser)
	}
	if res.Abuser.RetryAfterSheds != res.Abuser.Sheds {
		t.Fatalf("sheds without Retry-After: %d of %d", res.Abuser.Sheds-res.Abuser.RetryAfterSheds, res.Abuser.Sheds)
	}
	// The abuser must end up mostly shed: its offered rate is many times
	// its quota.
	if res.Abuser.ShedFraction < 0.5 {
		t.Fatalf("abuser shed fraction %.3f, want most of its traffic shed", res.Abuser.ShedFraction)
	}
	if !res.Protected {
		t.Fatalf("verdict not protected: %+v", res)
	}
	if res.FEQuotaSheds == 0 {
		t.Fatal("front end counted no quota sheds")
	}
	found := false
	for _, line := range res.MetricsProof {
		if strings.HasPrefix(line, `lard_fe_sheds_total{reason="quota"}`) && !strings.HasSuffix(line, " 0") {
			found = true
		}
	}
	if !found {
		t.Fatalf("metrics proof missing nonzero quota shed series: %v", res.MetricsProof)
	}
}
