// Package quota implements per-client token-bucket rate limiting for
// the front end's load-shedding layer.
//
// Each client (keyed by IP in the live front end; any string works) has
// one bucket holding at most Burst tokens that refills at Rate tokens
// per second. A request consumes one token; an empty bucket means the
// request is shed with a Retry-After hint computed from the token
// deficit. The bucket table is bounded: at most MaxClients buckets are
// kept, evicting the least-recently-used. Eviction forgets a client's
// spent tokens, which only ever errs in the client's favor — an abuser
// busy enough to matter is never the LRU entry.
//
// Like the rest of the tree, time is an explicit time.Duration on the
// caller's clock (virtual in the simulator, time.Since(start) in the
// live front end), so the package is simulable and wallclock-clean.
// Token arithmetic is float64 seconds; buckets never go negative.
package quota

import (
	"sync"
	"time"
)

// Config tunes a Limiter. The zero value of Burst and MaxClients gets
// defaults; Rate must be positive (a Limiter with Rate <= 0 admits
// everything, letting callers leave quotas off by default).
type Config struct {
	// Rate is the sustained per-client request rate (tokens/second).
	// Rate <= 0 disables limiting: Allow always admits.
	Rate float64

	// Burst is the bucket capacity (default max(Rate, 1) rounded up, so
	// one second of traffic can arrive at once).
	Burst float64

	// MaxClients bounds the bucket table (default 4096). The least
	// recently used bucket is evicted when a new client would exceed it.
	MaxClients int
}

func (c *Config) fill() {
	if c.Burst <= 0 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.MaxClients <= 0 {
		c.MaxClients = 4096
	}
}

// bucket is one client's token bucket, an intrusive doubly linked LRU
// list element. Tokens are stored as of `last`; refill happens lazily.
type bucket struct {
	key        string
	tokens     float64
	last       time.Duration
	prev, next *bucket
}

// Limiter is a bounded table of per-client token buckets. All methods
// are safe for concurrent use; the mutex is a leaf lock.
type Limiter struct {
	mu      sync.Mutex
	cfg     Config
	buckets map[string]*bucket
	// LRU list: head.next is most recent, head.prev least recent.
	head      bucket
	evictions uint64
}

// New returns a Limiter for cfg (zero fields filled with defaults).
func New(cfg Config) *Limiter {
	cfg.fill()
	l := &Limiter{cfg: cfg, buckets: make(map[string]*bucket)}
	l.head.prev, l.head.next = &l.head, &l.head
	return l
}

// Config returns the effective (default-filled) configuration.
func (l *Limiter) Config() Config { return l.cfg }

// Enabled reports whether the limiter actually limits (Rate > 0).
func (l *Limiter) Enabled() bool { return l.cfg.Rate > 0 }

func (l *Limiter) unlink(b *bucket) {
	b.prev.next, b.next.prev = b.next, b.prev
}

func (l *Limiter) pushFront(b *bucket) {
	b.prev, b.next = &l.head, l.head.next
	b.prev.next, b.next.prev = b, b
}

// lookup returns the refreshed bucket for key, creating (and evicting)
// as needed. Caller holds l.mu.
func (l *Limiter) lookup(key string, now time.Duration) *bucket {
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= l.cfg.MaxClients {
			lru := l.head.prev
			l.unlink(lru)
			delete(l.buckets, lru.key)
			l.evictions++
		}
		b = &bucket{key: key, tokens: l.cfg.Burst, last: now}
		l.buckets[key] = b
		l.pushFront(b)
		return b
	}
	l.unlink(b)
	l.pushFront(b)
	// Lazy refill. A clock that jumps backwards (never happens on the
	// monotonic clocks we are given, but cheap to be safe about) leaves
	// the bucket as it was.
	if now > b.last {
		b.tokens += float64(now-b.last) / float64(time.Second) * l.cfg.Rate
		if b.tokens > l.cfg.Burst {
			b.tokens = l.cfg.Burst
		}
		b.last = now
	}
	return b
}

// retryAfter converts a token deficit into a client-facing wait hint:
// the time until one whole token will be available.
func (l *Limiter) retryAfter(b *bucket) time.Duration {
	deficit := 1 - b.tokens
	if deficit <= 0 {
		return 0
	}
	return time.Duration(deficit / l.cfg.Rate * float64(time.Second))
}

// Allow consumes one token from key's bucket. It returns ok = true when
// the request may proceed; otherwise retry is the suggested wait before
// trying again (always > 0 when ok is false).
func (l *Limiter) Allow(key string, now time.Duration) (ok bool, retry time.Duration) {
	if !l.Enabled() {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.lookup(key, now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	retry = l.retryAfter(b)
	if retry <= 0 {
		retry = time.Second
	}
	return false, retry
}

// Check reports whether key's bucket could admit a request at now
// without consuming a token. The front end uses it at connection accept
// to shed clients that are already over quota before reading anything.
func (l *Limiter) Check(key string, now time.Duration) (ok bool, retry time.Duration) {
	if !l.Enabled() {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.lookup(key, now)
	if b.tokens >= 1 {
		return true, 0
	}
	retry = l.retryAfter(b)
	if retry <= 0 {
		retry = time.Second
	}
	return false, retry
}

// Len returns the number of tracked clients.
func (l *Limiter) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Evictions returns how many buckets the LRU bound has evicted.
func (l *Limiter) Evictions() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.evictions
}

// Tokens returns key's current token count (refreshed to now) without
// consuming anything; it reports false if the client is untracked.
// Exposed for tests and the admin stats surface.
func (l *Limiter) Tokens(key string, now time.Duration) (float64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.buckets[key] == nil {
		return 0, false
	}
	return l.lookup(key, now).tokens, true
}
