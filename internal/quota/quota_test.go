package quota

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestDisabledAdmitsEverything(t *testing.T) {
	l := New(Config{}) // Rate 0 = off
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("k", 0); !ok {
			t.Fatal("disabled limiter must admit")
		}
	}
	if l.Len() != 0 {
		t.Fatalf("disabled limiter tracked %d clients, want 0", l.Len())
	}
}

func TestBurstHonored(t *testing.T) {
	l := New(Config{Rate: 10, Burst: 5})
	now := time.Duration(0)
	// A fresh client gets exactly Burst requests at once...
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("request %d within burst shed", i)
		}
	}
	// ...and not one more.
	ok, retry := l.Allow("c", now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 {
		t.Fatalf("retry = %v, want > 0", retry)
	}
	// At 10 tokens/s one whole token takes 100ms.
	if want := 100 * time.Millisecond; retry != want {
		t.Fatalf("retry = %v, want %v", retry, want)
	}
}

func TestRefillAtRate(t *testing.T) {
	l := New(Config{Rate: 10, Burst: 5})
	now := time.Duration(0)
	for i := 0; i < 5; i++ {
		l.Allow("c", now)
	}
	// 250ms refills 2.5 tokens: exactly 2 requests pass.
	now += 250 * time.Millisecond
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := l.Allow("c", now); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("admitted %d after 250ms refill, want 2", admitted)
	}
	// A long idle period refills to Burst, never beyond.
	now += time.Hour
	admitted = 0
	for i := 0; i < 100; i++ {
		if ok, _ := l.Allow("c", now); ok {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("admitted %d after long idle, want Burst=5", admitted)
	}
}

func TestCheckDoesNotConsume(t *testing.T) {
	l := New(Config{Rate: 1, Burst: 2})
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		if ok, _ := l.Check("c", now); !ok {
			t.Fatalf("Check consumed tokens (call %d)", i)
		}
	}
	if tok, _ := l.Tokens("c", now); tok != 2 {
		t.Fatalf("tokens = %v after Checks, want 2", tok)
	}
	l.Allow("c", now)
	l.Allow("c", now)
	if ok, retry := l.Check("c", now); ok || retry <= 0 {
		t.Fatalf("Check = %v/%v on empty bucket, want shed with retry hint", ok, retry)
	}
}

func TestTokensNeverNegative(t *testing.T) {
	// Property: under arbitrary interleavings of clients, times and
	// calls, no bucket ever goes below zero.
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		l := New(Config{Rate: 5, Burst: 3, MaxClients: 8})
		now := time.Duration(0)
		for i := 0; i < 2000; i++ {
			key := fmt.Sprintf("c%d", rng.Intn(12))
			if rng.Intn(2) == 0 {
				l.Allow(key, now)
			} else {
				l.Check(key, now)
			}
			if tok, ok := l.Tokens(key, now); ok && tok < 0 {
				t.Fatalf("seed %d: bucket %s went negative: %v", seed, key, tok)
			}
			now += time.Duration(rng.Intn(int(50 * time.Millisecond)))
		}
	}
}

func TestLRUTableBounded(t *testing.T) {
	l := New(Config{Rate: 1, MaxClients: 16})
	now := time.Duration(0)
	for i := 0; i < 1000; i++ {
		l.Allow(fmt.Sprintf("c%d", i), now)
		if l.Len() > 16 {
			t.Fatalf("table grew to %d, bound is 16", l.Len())
		}
	}
	if l.Len() != 16 {
		t.Fatalf("table length = %d, want 16", l.Len())
	}
	if l.Evictions() != 1000-16 {
		t.Fatalf("evictions = %d, want %d", l.Evictions(), 1000-16)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := New(Config{Rate: 1, Burst: 4, MaxClients: 2})
	now := time.Duration(0)
	l.Allow("old", now)
	l.Allow("kept", now)
	l.Allow("kept", now) // "old" is now the LRU entry
	l.Allow("new", now)  // evicts "old"
	if _, ok := l.Tokens("old", now); ok {
		t.Fatal("LRU entry not evicted")
	}
	if tok, ok := l.Tokens("kept", now); !ok || tok != 2 {
		t.Fatalf("kept client state lost: %v %v", tok, ok)
	}
	// Re-arrival after eviction starts a fresh (full) bucket: eviction
	// only ever errs in the client's favor.
	if tok, _ := l.Tokens("old", now); tok != 0 {
		t.Fatalf("evicted client should be untracked, got %v tokens", tok)
	}
}

func TestRetryAfterShrinksWithRefill(t *testing.T) {
	l := New(Config{Rate: 2, Burst: 1})
	now := time.Duration(0)
	l.Allow("c", now)
	_, r1 := l.Allow("c", now)
	_, r2 := l.Allow("c", now+200*time.Millisecond)
	if r2 >= r1 {
		t.Fatalf("retry hint did not shrink with refill: %v then %v", r1, r2)
	}
}
