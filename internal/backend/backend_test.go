package backend

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"lard/internal/trace"
)

func testStore() *DocStore {
	return NewDocStore([]trace.Target{
		{Name: "/a.html", Size: 1000},
		{Name: "/b.html", Size: 2000},
		{Name: "/big.bin", Size: 300000},
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Store == nil {
		cfg.Store = testStore()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeDocumentContent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := get(t, ts.URL+"/a.html")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(body) != 1000 {
		t.Fatalf("body length %d, want 1000", len(body))
	}
	if !bytes.Equal(body, ContentBytes("/a.html", 1000)) {
		t.Fatal("content mismatch with deterministic generator")
	}
}

func TestCacheHitMissHeaders(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, _ := get(t, ts.URL+"/a.html")
	if got := resp.Header.Get("X-Cache"); got != "MISS" {
		t.Fatalf("first request X-Cache = %q", got)
	}
	resp, _ = get(t, ts.URL+"/a.html")
	if got := resp.Header.Get("X-Cache"); got != "HIT" {
		t.Fatalf("second request X-Cache = %q", got)
	}
	st := srv.Stats()
	if st.Requests != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesSent != 2000 {
		t.Fatalf("BytesSent = %d", st.BytesSent)
	}
}

func TestNotFound(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, _ := get(t, ts.URL+"/missing.html")
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if srv.Stats().NotFound != 1 {
		t.Fatalf("stats %+v", srv.Stats())
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/a.html", "text/plain", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDiskDelayOnMissOnly(t *testing.T) {
	var slept []time.Duration
	var mu sync.Mutex
	cfg := Config{
		DiskTimeScale: 1.0,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}
	_, ts := newTestServer(t, cfg)
	get(t, ts.URL+"/a.html")
	get(t, ts.URL+"/a.html")
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1 (miss only)", len(slept))
	}
	// A 1000-byte file: 28ms + one 4KB transfer unit = 28.41ms.
	if slept[0] != 28*time.Millisecond+410*time.Microsecond {
		t.Fatalf("slept %v", slept[0])
	}
}

func TestCacheEvictionUnderPressure(t *testing.T) {
	cfg := Config{CacheBytes: 2500} // holds a+b but not big
	srv, ts := newTestServer(t, cfg)
	get(t, ts.URL+"/a.html")
	get(t, ts.URL+"/b.html")
	get(t, ts.URL+"/big.bin") // too large to cache at all
	st := srv.Stats()
	if st.CacheUsed > 2500 {
		t.Fatalf("cache used %d over capacity", st.CacheUsed)
	}
	resp, _ := get(t, ts.URL+"/big.bin")
	if resp.Header.Get("X-Cache") != "MISS" {
		t.Fatal("uncacheable object reported HIT")
	}
}

func TestHeadRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Head(ts.URL + "/b.html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.ContentLength != 2000 {
		t.Fatalf("ContentLength = %d", resp.ContentLength)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get(t, ts.URL+"/a.html")
	resp, body := get(t, ts.URL+"/_lard/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte(`"requests":`)) {
		t.Fatalf("stats body: %s", body)
	}
}

func TestLRUPolicyOption(t *testing.T) {
	srv, ts := newTestServer(t, Config{UseLRU: true, CacheBytes: 1 << 20})
	get(t, ts.URL+"/a.html")
	get(t, ts.URL+"/a.html")
	if srv.Stats().Hits != 1 {
		t.Fatalf("stats %+v", srv.Stats())
	}
}

func TestDocStoreBasics(t *testing.T) {
	s := testStore()
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if size, ok := s.Size("/a.html"); !ok || size != 1000 {
		t.Fatalf("Size = %d, %v", size, ok)
	}
	if _, ok := s.Size("/zzz"); ok {
		t.Fatal("phantom target")
	}
	s.Add("/new", 77)
	if size, _ := s.Size("/new"); size != 77 {
		t.Fatal("Add failed")
	}
	targets := s.Targets()
	if len(targets) != 4 || targets[0].Name != "/a.html" {
		t.Fatalf("Targets = %v", targets)
	}
}

func TestContentDeterministicAndDistinct(t *testing.T) {
	a1 := ContentBytes("/x", 256)
	a2 := ContentBytes("/x", 256)
	b := ContentBytes("/y", 256)
	if !bytes.Equal(a1, a2) {
		t.Fatal("content not deterministic")
	}
	if bytes.Equal(a1, b) {
		t.Fatal("different targets share content")
	}
}

func TestContentReaderExactLengths(t *testing.T) {
	f := func(size uint16) bool {
		data, err := io.ReadAll(ContentReader("/t", int64(size)))
		return err == nil && len(data) == int(size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsWithoutStore(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(Config{})
}
