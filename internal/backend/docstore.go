// Package backend implements the live prototype's back-end server
// (Section 6): an HTTP server with an in-memory document cache that
// emulates the paper's Apache back ends. Cache misses pay an emulated disk
// delay derived from the simulator's cost model, so a cluster of these
// back ends exhibits the cache-aggregation behaviour the paper measures —
// on a laptop, over loopback TCP.
package backend

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"

	"lard/internal/trace"
)

// DocStore is the back end's synthetic document database: a catalog of
// targets with sizes, whose content is generated deterministically from
// the target name (so any node serves byte-identical documents and
// integrity can be checked end to end).
type DocStore struct {
	mu    sync.RWMutex
	sizes map[string]int64
}

// NewDocStore builds a store serving the targets of a trace catalog.
func NewDocStore(targets []trace.Target) *DocStore {
	s := &DocStore{sizes: make(map[string]int64, len(targets))}
	for _, t := range targets {
		s.sizes[t.Name] = t.Size
	}
	return s
}

// Size returns the content length of target, if it exists.
func (s *DocStore) Size(target string) (int64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	size, ok := s.sizes[target]
	return size, ok
}

// Add inserts or replaces a document.
func (s *DocStore) Add(target string, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sizes[target] = size
}

// Len returns the number of documents.
func (s *DocStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// Targets returns the catalog sorted by name, for tests and tools.
func (s *DocStore) Targets() []trace.Target {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]trace.Target, 0, len(s.sizes))
	for name, size := range s.sizes {
		out = append(out, trace.Target{Name: name, Size: size})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ContentReader streams the deterministic content of a target: a repeating
// 64-byte block derived from the target name, truncated to size. Content
// never needs to be stored, so multi-GB catalogs cost no memory.
func ContentReader(target string, size int64) io.Reader {
	return &contentReader{block: contentBlock(target), remaining: size}
}

// ContentBytes materializes the deterministic content (for tests and small
// documents).
func ContentBytes(target string, size int64) []byte {
	buf := make([]byte, size)
	if _, err := io.ReadFull(ContentReader(target, size), buf); err != nil {
		panic(fmt.Sprintf("backend: content generation: %v", err))
	}
	return buf
}

// contentBlock derives the repeating unit from the target name.
func contentBlock(target string) []byte {
	h := fnv.New64a()
	h.Write([]byte(target))
	seed := h.Sum64()
	block := make([]byte, 64)
	for i := 0; i < len(block); i += 8 {
		binary.BigEndian.PutUint64(block[i:], seed)
		seed = seed*6364136223846793005 + 1442695040888963407
	}
	return block
}

type contentReader struct {
	block     []byte
	offset    int
	remaining int64
}

func (r *contentReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	n := 0
	for n < len(p) {
		c := copy(p[n:], r.block[r.offset:])
		n += c
		r.offset = (r.offset + c) % len(r.block)
	}
	r.remaining -= int64(n)
	return n, nil
}
