package backend

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"lard/internal/cache"
	"lard/internal/cluster"
)

// Config describes one prototype back end.
type Config struct {
	// Store is the document database served by this node.
	Store *DocStore

	// CacheBytes is the in-memory cache capacity (default 32 MB, the
	// paper's simulated node cache; the paper's real back ends observed
	// "file cache sizes between 42 and 46 MB" under FreeBSD).
	CacheBytes int64

	// UseLRU selects the LRU policy instead of GDS.
	UseLRU bool

	// Disk is the cost model used to emulate disk reads on cache misses
	// (default: the paper's 28 ms + 410 µs/4 KB model).
	Disk cluster.CostModel

	// DiskTimeScale scales the emulated disk delay (1.0 = full 28 ms
	// seeks; tests use small values to stay fast; 0 disables the delay).
	DiskTimeScale float64

	// Sleep replaces time.Sleep, for tests (nil = time.Sleep).
	Sleep func(time.Duration)
}

// Stats reports a back end's activity, exposed on /_lard/stats.
type Stats struct {
	Requests  uint64 `json:"requests"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	NotFound  uint64 `json:"not_found"`
	BytesSent int64  `json:"bytes_sent"`
	CacheUsed int64  `json:"cache_used"`
	CacheLen  int    `json:"cache_len"`
}

// Server is the prototype back-end node: an http.Handler serving the
// document store through a main-memory cache with emulated disk misses.
// It is safe for concurrent use.
type Server struct {
	cfg   Config
	cache cache.Cache
	sleep func(time.Duration)

	mu    sync.Mutex
	stats Stats
}

// New builds a back-end server. It panics if cfg.Store is nil.
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("backend: Config.Store is nil")
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = cluster.DefaultCacheBytes
	}
	if cfg.Disk == (cluster.CostModel{}) {
		cfg.Disk = cluster.DefaultCostModel()
	}
	if cfg.DiskTimeScale < 0 {
		cfg.DiskTimeScale = 0
	}
	var c cache.Cache
	if cfg.UseLRU {
		c = cache.NewLRUWithCutoff(cfg.CacheBytes, cluster.DefaultLRUCutoff)
	} else {
		c = cache.NewGDS(cfg.CacheBytes)
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Server{cfg: cfg, cache: c, sleep: sleep}
}

// Handler returns the node's HTTP handler: documents at their target
// paths, plus GET /_lard/stats for scraping.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/_lard/stats", s.handleStats)
	mux.HandleFunc("/", s.handleDoc)
	return mux
}

// Stats returns a snapshot of the node's counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CacheUsed = s.cache.Used()
	st.CacheLen = s.cache.Len()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleDoc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	target := r.URL.Path
	size, ok := s.cfg.Store.Size(target)
	if !ok {
		s.mu.Lock()
		s.stats.Requests++
		s.stats.NotFound++
		s.mu.Unlock()
		http.NotFound(w, r)
		return
	}

	// Cache consultation mirrors the simulator's node: a hit serves from
	// memory; a miss pays the (scaled) disk read time, then caches.
	s.mu.Lock()
	s.stats.Requests++
	_, hit := s.cache.Lookup(target)
	if hit {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	s.mu.Unlock()

	if !hit {
		if s.cfg.DiskTimeScale > 0 {
			d := time.Duration(float64(s.cfg.Disk.DiskReadTime(size)) * s.cfg.DiskTimeScale)
			s.sleep(d)
		}
		s.mu.Lock()
		s.cache.Insert(target, size)
		s.mu.Unlock()
	}

	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("Content-Type", "application/octet-stream")
	if hit {
		w.Header().Set("X-Cache", "HIT")
	} else {
		w.Header().Set("X-Cache", "MISS")
	}
	if r.Method == http.MethodHead {
		return
	}
	n, err := io.Copy(w, ContentReader(target, size))
	s.mu.Lock()
	s.stats.BytesSent += n
	s.mu.Unlock()
	if err != nil {
		// The client went away mid-transfer; nothing further to do.
		return
	}
	if n != size {
		panic(fmt.Sprintf("backend: wrote %d of %d bytes for %s", n, size, target))
	}
}
