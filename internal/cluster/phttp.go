package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"lard/internal/core"
	"lard/internal/trace"
	"lard/pkg/lard"
)

// This file is the simulator's persistent-connection (P-HTTP) model,
// paper Section 5: consecutive trace requests are grouped into
// connections, and the dispatch policy question — pin the whole
// connection to the back end its first request selected, re-hand it off
// per request, or move only when the locality regained is worth the
// switch — is a lard.ConnPolicy consulted by the lard.Session behind
// each connection. The cost asymmetry is the trade-off under study:
// pinning loses locality (requests 2..k land wherever request 1 went),
// re-handoff keeps locality but charges Cost.HandoffCost + connection
// establishment on every back-end switch and a teardown on the node the
// connection left; the cost-aware middle pays the switch only when the
// modelled miss it avoids costs more.

// connState tracks one in-flight persistent connection: its remaining
// requests, the session owning its dispatch state, and the node that
// served the previous request (for teardown accounting on moves).
type connState struct {
	reqs []core.Request
	i    int // next request to dispatch
	sess *lard.Session
	prev int // node serving the previous request, -1 before the first
}

// newConnLen builds the requests-per-connection generator — the same
// trace.ConnLenDraw the live load generator uses, so simulated and
// driven workloads match. Config.Validate vets ConnDist, so the error
// path is unreachable here.
func newConnLen(cfg Config) func() int {
	seed := cfg.ConnSeed
	if seed == 0 {
		seed = 1
	}
	draw, err := trace.ConnLenDraw(cfg.ConnDist, cfg.ReqsPerConn, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("cluster: unvalidated ConnDist: %v", err))
	}
	return draw
}

// newConnPolicy builds the configured lard.ConnPolicy. CostAware's
// thresholds are derived from this simulation's own cost model, so the
// policy's modelled economics match the costs the simulator charges.
// One instance serves every connection of the run (its recency table is
// shared state, like a front end's).
func newConnPolicy(cfg Config) lard.ConnPolicy {
	if cfg.SessionPolicy != nil {
		return cfg.SessionPolicy
	}
	switch cfg.connPolicyName() {
	case lard.ConnPerRequest:
		return lard.PerRequest()
	case lard.ConnCostAware:
		return lard.CostAware(lard.CostAwareConfig{
			HandoffCost:   cfg.Cost.HandoffTime(),
			EstablishCost: cfg.Cost.EstablishTime(),
			TeardownCost:  cfg.Cost.TeardownTime(),
			MissPenalty:   cfg.Cost.DiskFirstLatency,
			WarmWindow:    cfg.Params.K,
			// A replica earns its one-time miss back once the target
			// draws a couple of requests per node per window.
			HotReplicate: max(3*cfg.Nodes/2, 2),
		})
	default:
		return lard.Pin()
	}
}

// pumpPersistent is the closed loop over connections rather than
// requests. Stalled connections (a dispatch that hit the admission
// bound) resume first — they were admitted earlier and hold the
// connection's place — then new connections enter while capacity
// remains.
func (c *Cluster) pumpPersistent() {
	for len(c.stalled) > 0 {
		if !c.stepConn(c.stalled[0]) {
			return // still saturated; completions will re-pump
		}
		c.stalled = c.stalled[1:]
	}
	for c.next < c.tr.Len() {
		// One length draw per connection, held across overloaded
		// attempts (pendingLen), so the RNG sequence — and with it every
		// later connection's length — is a pure function of ConnSeed,
		// not of when the admission bound happened to push back.
		k := c.pendingLen
		if k == 0 {
			k = c.connLen()
			c.pendingLen = k
		}
		if rem := c.tr.Len() - c.next; k > rem {
			k = rem
		}
		reqs := make([]core.Request, k)
		for i := range reqs {
			r := c.tr.At(c.next + i)
			reqs[i] = core.Request{Target: r.Target, Size: r.Size}
		}
		cs := &connState{reqs: reqs, prev: -1, sess: c.d.NewSession(c.connPolicy)}
		c.next += k
		c.pendingLen = 0
		if !c.stepConn(cs) {
			// Admitted as far as the closed loop is concerned: park it on
			// the stalled queue rather than rebuilding it on every
			// completion.
			c.stalled = append(c.stalled, cs)
			return
		}
	}
	// The loop can end on an outage that dropped the trace tail with
	// nothing in flight; close the timeline here, since no completion
	// callback remains to do it.
	c.maybeFinish()
}

// stepConn dispatches request cs.i of a connection through its session.
// It returns false when the admission bound is hit, leaving cs untouched
// so the caller can park it on the stalled queue.
func (c *Cluster) stepConn(cs *connState) bool {
	req := cs.reqs[cs.i]
	node, moved, done, err := cs.sess.Dispatch(c.eng.Now(), req)
	if errors.Is(err, lard.ErrOverloaded) {
		return false
	}
	if err != nil {
		// Total outage: the client loses the rest of the connection.
		c.dropped += len(cs.reqs) - cs.i
		if cs.prev >= 0 {
			c.nodes[cs.prev].ChargeTeardown()
		}
		cs.sess.Close()
		c.maybeFinish()
		return true
	}
	// Handoff and establishment are processing on the landing node, so
	// they run at that node's speed-scaled costs.
	landing := c.nodes[node].cost
	var extra time.Duration
	switch {
	case cs.prev < 0:
		// The connection's arrival: handoff + establishment at the first
		// back end.
		extra = landing.HandoffTime() + landing.EstablishTime()
	case moved:
		// The session moved the connection: teardown where it was,
		// handoff + establishment where it lands.
		c.nodes[cs.prev].ChargeTeardown()
		c.rehandoffs++
		extra = landing.HandoffTime() + landing.EstablishTime()
	}
	cs.prev = node
	c.outstanding++
	if c.outstanding > c.peak {
		c.peak = c.outstanding
	}
	start := c.eng.Now()
	c.nodes[node].ServePersistent(req, extra, func() {
		done()
		c.outstanding--
		c.completeRequest(node, start)
		cs.i++
		if cs.i < len(cs.reqs) {
			if !c.stepConn(cs) {
				c.stalled = append(c.stalled, cs)
			}
		} else {
			c.nodes[node].ChargeTeardown()
			cs.sess.Close()
		}
		c.pump()
		c.maybeFinish()
	})
	return true
}

// completeRequest folds one finished request into the shared accounting;
// both the HTTP/1.0 and persistent closed loops funnel through it.
func (c *Cluster) completeRequest(node int, start time.Duration) {
	c.served++
	d := c.eng.Now() - start
	c.delaySum += d
	if d > c.delayMax {
		c.delayMax = d
	}
	if c.cfg.DelaySLO > 0 && d <= c.cfg.DelaySLO {
		c.withinSLO++
	}
	c.nodeDelaySum[node] += d
	c.nodeDelayCnt[node]++
}

// maybeFinish closes the timeline when the persistent closed loop has
// fully drained.
func (c *Cluster) maybeFinish() {
	if c.outstanding == 0 && c.next >= c.tr.Len() && len(c.stalled) == 0 {
		c.finishSampling()
	}
}
