package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"lard/internal/core"
	"lard/internal/trace"
	"lard/pkg/lard"
)

// This file is the simulator's persistent-connection (P-HTTP) model,
// paper Section 5: consecutive trace requests are grouped into
// connections, and the dispatch policy question — pin the whole
// connection to the back end its first request selected, or re-hand it
// off per request — becomes a Config switch. The cost asymmetry is the
// trade-off under study: pinning loses locality (requests 2..k land
// wherever request 1 went), re-handoff keeps locality but charges
// Cost.HandoffCost + connection establishment on every back-end switch
// and a teardown on the node the connection left.

// connState tracks one in-flight persistent connection in per-request
// re-handoff mode.
type connState struct {
	reqs     []core.Request
	i        int // next request to dispatch
	prevNode int // node serving the previous request, -1 before the first
}

// newConnLen builds the requests-per-connection generator — the same
// trace.ConnLenDraw the live load generator uses, so simulated and
// driven workloads match. Config.Validate vets ConnDist, so the error
// path is unreachable here.
func newConnLen(cfg Config) func() int {
	seed := cfg.ConnSeed
	if seed == 0 {
		seed = 1
	}
	draw, err := trace.ConnLenDraw(cfg.ConnDist, cfg.ReqsPerConn, rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(fmt.Sprintf("cluster: unvalidated ConnDist: %v", err))
	}
	return draw
}

// pumpPersistent is the closed loop over connections rather than
// requests. Stalled per-request connections (a re-dispatch that hit the
// admission bound) resume first — they were admitted earlier and hold
// the connection's place — then new connections enter while capacity
// remains.
func (c *Cluster) pumpPersistent() {
	for len(c.stalled) > 0 {
		if !c.stepConn(c.stalled[0]) {
			return // still saturated; completions will re-pump
		}
		c.stalled = c.stalled[1:]
	}
	for c.next < c.tr.Len() {
		// One length draw per connection, held across overloaded
		// attempts (pendingLen), so the RNG sequence — and with it every
		// later connection's length — is a pure function of ConnSeed,
		// not of when the admission bound happened to push back.
		k := c.pendingLen
		if k == 0 {
			k = c.connLen()
			c.pendingLen = k
		}
		if rem := c.tr.Len() - c.next; k > rem {
			k = rem
		}
		reqs := make([]core.Request, k)
		for i := range reqs {
			r := c.tr.At(c.next + i)
			reqs[i] = core.Request{Target: r.Target, Size: r.Size}
		}
		if c.cfg.RehandoffPerRequest {
			cs := &connState{reqs: reqs, prevNode: -1}
			c.next += k
			c.pendingLen = 0
			if !c.stepConn(cs) {
				// Admitted as far as the closed loop is concerned: park
				// it at the head of the stalled queue rather than
				// rebuilding it on every completion.
				c.stalled = append(c.stalled, cs)
				return
			}
			continue
		}
		// Per-connection handoff: one dispatch decision — the first
		// request's target — pins every request of the connection.
		node, done, err := c.d.Dispatch(c.eng.Now(), reqs[0])
		if errors.Is(err, lard.ErrOverloaded) {
			return // pendingLen keeps this connection's draw for retry
		}
		c.next += k
		c.pendingLen = 0
		if err != nil {
			c.dropped += k // total outage
			continue
		}
		c.outstanding++
		if c.outstanding > c.peak {
			c.peak = c.outstanding
		}
		c.runPinnedConn(node, reqs, done)
	}
	// The loop can end on an outage that dropped the trace tail with
	// nothing in flight; close the timeline here, since no completion
	// callback remains to do it.
	c.maybeFinish()
}

// runPinnedConn serves a connection's requests sequentially on one node:
// handoff + establishment ahead of the first request, teardown after the
// last. The dispatcher slot is held for the connection's whole lifetime —
// load is "active connections", as the paper counts it.
func (c *Cluster) runPinnedConn(node int, reqs []core.Request, done func()) {
	n := c.nodes[node]
	i := 0
	var serveNext func()
	serveNext = func() {
		extra := time.Duration(0)
		if i == 0 {
			extra = c.cfg.Cost.HandoffTime() + c.cfg.Cost.EstablishTime()
		}
		start := c.eng.Now()
		n.ServePersistent(reqs[i], extra, func() {
			c.completeRequest(node, start)
			i++
			if i < len(reqs) {
				serveNext()
				return
			}
			n.ChargeTeardown()
			done()
			c.outstanding--
			c.pump()
			c.maybeFinish()
		})
	}
	serveNext()
}

// stepConn dispatches request cs.i of a per-request-mode connection. It
// returns false when the admission bound is hit, leaving cs untouched so
// the caller can park it on the stalled queue.
func (c *Cluster) stepConn(cs *connState) bool {
	req := cs.reqs[cs.i]
	node, done, err := c.d.Dispatch(c.eng.Now(), req)
	if errors.Is(err, lard.ErrOverloaded) {
		return false
	}
	if err != nil {
		// Total outage: the client loses the rest of the connection.
		c.dropped += len(cs.reqs) - cs.i
		if cs.prevNode >= 0 {
			c.nodes[cs.prevNode].ChargeTeardown()
		}
		c.maybeFinish()
		return true
	}
	var extra time.Duration
	if node != cs.prevNode {
		// The connection moves: teardown where it was, handoff +
		// establishment where it lands. The first request always pays
		// this (its handoff is the connection's arrival).
		if cs.prevNode >= 0 {
			c.nodes[cs.prevNode].ChargeTeardown()
			c.rehandoffs++
		}
		extra = c.cfg.Cost.HandoffTime() + c.cfg.Cost.EstablishTime()
	}
	cs.prevNode = node
	c.outstanding++
	if c.outstanding > c.peak {
		c.peak = c.outstanding
	}
	start := c.eng.Now()
	c.nodes[node].ServePersistent(req, extra, func() {
		done()
		c.outstanding--
		c.completeRequest(node, start)
		cs.i++
		if cs.i < len(cs.reqs) {
			if !c.stepConn(cs) {
				c.stalled = append(c.stalled, cs)
			}
		} else {
			c.nodes[node].ChargeTeardown()
		}
		c.pump()
		c.maybeFinish()
	})
	return true
}

// completeRequest folds one finished request into the shared accounting
// (mirroring the per-request bookkeeping of the HTTP/1.0 loop).
func (c *Cluster) completeRequest(node int, start time.Duration) {
	c.served++
	d := c.eng.Now() - start
	c.delaySum += d
	if d > c.delayMax {
		c.delayMax = d
	}
	c.nodeDelaySum[node] += d
	c.nodeDelayCnt[node]++
}

// maybeFinish closes the timeline when the persistent closed loop has
// fully drained.
func (c *Cluster) maybeFinish() {
	if c.outstanding == 0 && c.next >= c.tr.Len() && len(c.stalled) == 0 {
		c.finishSampling()
	}
}
