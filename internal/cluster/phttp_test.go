package cluster

import (
	"testing"
	"time"
)

// phttpConfig builds a persistent-connection config over a cache-pressure
// trace.
func phttpConfig(kind StrategyKind, nodes, reqsPerConn int, rehandoff bool) Config {
	cfg := DefaultConfig(kind, nodes)
	cfg.CacheBytes = 64 << 10 // force real cache pressure at test scale
	cfg.ReqsPerConn = reqsPerConn
	cfg.RehandoffPerRequest = rehandoff
	return cfg
}

func TestPersistentValidation(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	cfg.ReqsPerConn = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative ReqsPerConn accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.ConnDist = "weibull"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown ConnDist accepted")
	}
	cfg = DefaultConfig(WRRGMS, 2)
	cfg.ReqsPerConn = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("persistent connections with WRR/GMS accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.Cost.HandoffCost = -time.Microsecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative HandoffCost accepted")
	}
	// Pinned connections cannot track scripted node failures; only
	// re-handoff mode composes with churn.
	cfg = DefaultConfig(LARD, 2)
	cfg.ReqsPerConn = 4
	cfg.Churn = []ChurnEvent{FailAt(1, time.Second)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("pinned persistent connections with churn accepted")
	}
	cfg.RehandoffPerRequest = true
	if err := cfg.Validate(); err != nil {
		t.Fatalf("re-handoff persistent connections with churn rejected: %v", err)
	}
}

func TestNewConnLenDistributions(t *testing.T) {
	fixed := newConnLen(Config{ReqsPerConn: 7})
	for i := 0; i < 5; i++ {
		if k := fixed(); k != 7 {
			t.Fatalf("fixed draw = %d", k)
		}
	}
	geo := newConnLen(Config{ReqsPerConn: 6, ConnDist: "geometric", ConnSeed: 9})
	sum := 0
	for i := 0; i < 10000; i++ {
		k := geo()
		if k < 1 {
			t.Fatalf("geometric draw %d < 1", k)
		}
		sum += k
	}
	if mean := float64(sum) / 10000; mean < 5 || mean > 7 {
		t.Fatalf("geometric mean = %.2f, want ≈6", mean)
	}
	// Same seed, same sequence.
	a := newConnLen(Config{ReqsPerConn: 6, ConnDist: "geometric", ConnSeed: 9})
	b := newConnLen(Config{ReqsPerConn: 6, ConnDist: "geometric", ConnSeed: 9})
	for i := 0; i < 100; i++ {
		if a() != b() {
			t.Fatal("geometric draws not reproducible")
		}
	}
}

func TestPersistentServesWholeTrace(t *testing.T) {
	tr := zipfTrace(40, 8<<10, 2000, 0.8, 7)
	for _, rehandoff := range []bool{false, true} {
		res, err := Simulate(phttpConfig(LARD, 4, 8, rehandoff), tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != tr.Len() || res.Dropped != 0 {
			t.Fatalf("rehandoff=%v: served %d of %d (%d dropped)",
				rehandoff, res.Requests, tr.Len(), res.Dropped)
		}
		var nodeReqs uint64
		for _, n := range res.PerNode {
			nodeReqs += n.Requests
		}
		if nodeReqs != uint64(tr.Len()) {
			t.Fatalf("rehandoff=%v: node requests %d != trace %d", rehandoff, nodeReqs, tr.Len())
		}
		if res.Throughput <= 0 || res.SimTime <= 0 {
			t.Fatalf("rehandoff=%v: degenerate result %+v", rehandoff, res)
		}
		if rehandoff && res.Rehandoffs == 0 {
			t.Fatal("re-handoff mode recorded no back-end switches")
		}
		if !rehandoff && res.Rehandoffs != 0 {
			t.Fatalf("pinned mode recorded %d re-handoffs", res.Rehandoffs)
		}
	}
}

func TestPersistentAffinityCostsLARDLocality(t *testing.T) {
	// The locality-vs-affinity trade-off in one assertion pair: pinning a
	// persistent connection to its first request's node scatters the
	// remaining requests across the wrong caches, so LARD's miss ratio
	// under per-connection handoff must exceed per-request re-handoff,
	// and re-handoff must recover (most of) the HTTP/1.0 miss ratio.
	tr := zipfTrace(120, 8<<10, 4000, 0.7, 11)

	baseline, err := Simulate(phttpConfig(LARD, 4, 0, false), tr) // HTTP/1.0 model
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := Simulate(phttpConfig(LARD, 4, 16, false), tr)
	if err != nil {
		t.Fatal(err)
	}
	rehandoff, err := Simulate(phttpConfig(LARD, 4, 16, true), tr)
	if err != nil {
		t.Fatal(err)
	}

	if pinned.MissRatio <= rehandoff.MissRatio {
		t.Fatalf("pinned miss %.3f not above re-handoff miss %.3f",
			pinned.MissRatio, rehandoff.MissRatio)
	}
	if rehandoff.MissRatio > baseline.MissRatio*1.5 {
		t.Fatalf("re-handoff miss %.3f lost the HTTP/1.0 locality %.3f",
			rehandoff.MissRatio, baseline.MissRatio)
	}
	if rehandoff.Throughput <= pinned.Throughput {
		t.Fatalf("re-handoff throughput %.1f not above pinned %.1f (misses cost more than handoffs)",
			rehandoff.Throughput, pinned.Throughput)
	}
}

func TestPersistentGeometricRuns(t *testing.T) {
	tr := zipfTrace(40, 8<<10, 1500, 0.8, 3)
	cfg := phttpConfig(LARDR, 4, 6, true)
	cfg.ConnDist = "geometric"
	cfg.ConnSeed = 5
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != tr.Len() || res.Dropped != 0 {
		t.Fatalf("served %d of %d (%d dropped)", res.Requests, tr.Len(), res.Dropped)
	}
	// Reproducibility: identical config and trace, identical result.
	res2, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != res2.Throughput || res.MissRatio != res2.MissRatio {
		t.Fatalf("non-deterministic persistent run: %v vs %v", res, res2)
	}
}

func TestPersistentAdmissionBoundHolds(t *testing.T) {
	// The closed loop must still respect S even when connections hold
	// slots for many requests (pinned) or re-dispatch mid-stream.
	tr := zipfTrace(30, 8<<10, 1200, 0.9, 13)
	for _, rehandoff := range []bool{false, true} {
		cfg := phttpConfig(LARD, 2, 8, rehandoff)
		s := cfg.Params.MaxOutstanding(2)
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakOutstanding > s {
			t.Fatalf("rehandoff=%v: peak %d exceeds S=%d", rehandoff, res.PeakOutstanding, s)
		}
	}
}
