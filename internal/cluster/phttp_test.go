package cluster

import (
	"testing"
	"time"

	"lard/pkg/lard"
)

// phttpConfig builds a persistent-connection config over a cache-pressure
// trace, dispatching connections under the named lard.ConnPolicy.
func phttpConfig(kind StrategyKind, nodes, reqsPerConn int, policy string) Config {
	cfg := DefaultConfig(kind, nodes)
	cfg.CacheBytes = 64 << 10 // force real cache pressure at test scale
	cfg.ReqsPerConn = reqsPerConn
	cfg.ConnPolicy = policy
	return cfg
}

func TestPersistentValidation(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	cfg.ReqsPerConn = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative ReqsPerConn accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.ConnDist = "weibull"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown ConnDist accepted")
	}
	cfg = DefaultConfig(WRRGMS, 2)
	cfg.ReqsPerConn = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("persistent connections with WRR/GMS accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.Cost.HandoffCost = -time.Microsecond
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative HandoffCost accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.ReqsPerConn = 4
	cfg.ConnPolicy = "sticky-ish"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown ConnPolicy accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.ReqsPerConn = 4
	cfg.ConnPolicy = lard.ConnPin
	cfg.RehandoffPerRequest = true
	if err := cfg.Validate(); err == nil {
		t.Fatal("conflicting ConnPolicy/RehandoffPerRequest accepted")
	}
	// Sessions re-dispatch when their node fails or drains, so every
	// policy — pinned included — now composes with scripted churn (PR 3
	// had to reject pin + churn).
	for _, policy := range []string{lard.ConnPin, lard.ConnPerRequest, lard.ConnCostAware} {
		cfg = DefaultConfig(LARD, 2)
		cfg.ReqsPerConn = 4
		cfg.ConnPolicy = policy
		cfg.Churn = []ChurnEvent{FailAt(1, time.Second)}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s persistent connections with churn rejected: %v", policy, err)
		}
	}
}

func TestConnPolicyNameResolution(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	if got := cfg.connPolicyName(); got != lard.ConnPin {
		t.Fatalf("default policy = %q, want pin", got)
	}
	cfg.RehandoffPerRequest = true
	if got := cfg.connPolicyName(); got != lard.ConnPerRequest {
		t.Fatalf("legacy rehandoff policy = %q, want perreq", got)
	}
	cfg.ConnPolicy = lard.ConnCostAware
	cfg.RehandoffPerRequest = false
	if got := cfg.connPolicyName(); got != lard.ConnCostAware {
		t.Fatalf("explicit policy = %q, want costaware", got)
	}
}

func TestNewConnLenDistributions(t *testing.T) {
	fixed := newConnLen(Config{ReqsPerConn: 7})
	for i := 0; i < 5; i++ {
		if k := fixed(); k != 7 {
			t.Fatalf("fixed draw = %d", k)
		}
	}
	geo := newConnLen(Config{ReqsPerConn: 6, ConnDist: "geometric", ConnSeed: 9})
	sum := 0
	for i := 0; i < 10000; i++ {
		k := geo()
		if k < 1 {
			t.Fatalf("geometric draw %d < 1", k)
		}
		sum += k
	}
	if mean := float64(sum) / 10000; mean < 5 || mean > 7 {
		t.Fatalf("geometric mean = %.2f, want ≈6", mean)
	}
	// Same seed, same sequence.
	a := newConnLen(Config{ReqsPerConn: 6, ConnDist: "geometric", ConnSeed: 9})
	b := newConnLen(Config{ReqsPerConn: 6, ConnDist: "geometric", ConnSeed: 9})
	for i := 0; i < 100; i++ {
		if a() != b() {
			t.Fatal("geometric draws not reproducible")
		}
	}
}

func TestPersistentServesWholeTrace(t *testing.T) {
	tr := zipfTrace(40, 8<<10, 2000, 0.8, 7)
	for _, policy := range []string{lard.ConnPin, lard.ConnPerRequest, lard.ConnCostAware} {
		res, err := Simulate(phttpConfig(LARD, 4, 8, policy), tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != tr.Len() || res.Dropped != 0 {
			t.Fatalf("%s: served %d of %d (%d dropped)",
				policy, res.Requests, tr.Len(), res.Dropped)
		}
		var nodeReqs uint64
		for _, n := range res.PerNode {
			nodeReqs += n.Requests
		}
		if nodeReqs != uint64(tr.Len()) {
			t.Fatalf("%s: node requests %d != trace %d", policy, nodeReqs, tr.Len())
		}
		if res.Throughput <= 0 || res.SimTime <= 0 {
			t.Fatalf("%s: degenerate result %+v", policy, res)
		}
		if policy != lard.ConnPin && res.Rehandoffs == 0 {
			t.Fatalf("%s recorded no back-end switches", policy)
		}
		if policy == lard.ConnPin && res.Rehandoffs != 0 {
			t.Fatalf("pinned mode recorded %d re-handoffs", res.Rehandoffs)
		}
	}
}

func TestPersistentAffinityCostsLARDLocality(t *testing.T) {
	// The locality-vs-affinity trade-off in one assertion pair: pinning a
	// persistent connection to its first request's node scatters the
	// remaining requests across the wrong caches, so LARD's miss ratio
	// under per-connection handoff must exceed per-request re-handoff,
	// and re-handoff must recover (most of) the HTTP/1.0 miss ratio.
	tr := zipfTrace(120, 8<<10, 4000, 0.7, 11)

	baseline, err := Simulate(phttpConfig(LARD, 4, 0, ""), tr) // HTTP/1.0 model
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := Simulate(phttpConfig(LARD, 4, 16, lard.ConnPin), tr)
	if err != nil {
		t.Fatal(err)
	}
	rehandoff, err := Simulate(phttpConfig(LARD, 4, 16, lard.ConnPerRequest), tr)
	if err != nil {
		t.Fatal(err)
	}

	if pinned.MissRatio <= rehandoff.MissRatio {
		t.Fatalf("pinned miss %.3f not above re-handoff miss %.3f",
			pinned.MissRatio, rehandoff.MissRatio)
	}
	if rehandoff.MissRatio > baseline.MissRatio*1.5 {
		t.Fatalf("re-handoff miss %.3f lost the HTTP/1.0 locality %.3f",
			rehandoff.MissRatio, baseline.MissRatio)
	}
	if rehandoff.Throughput <= pinned.Throughput {
		t.Fatalf("re-handoff throughput %.1f not above pinned %.1f (misses cost more than handoffs)",
			rehandoff.Throughput, pinned.Throughput)
	}
}

func TestCostAwareHoldsLocalityWithFewerMoves(t *testing.T) {
	// The cost-aware middle on a trace with a real cold tail: it must
	// land between the extremes — fewer back-end switches than
	// per-request, better miss ratio than pinning.
	tr := zipfTrace(600, 8<<10, 4000, 0.7, 11)

	pinned, err := Simulate(phttpConfig(LARD, 4, 8, lard.ConnPin), tr)
	if err != nil {
		t.Fatal(err)
	}
	perreq, err := Simulate(phttpConfig(LARD, 4, 8, lard.ConnPerRequest), tr)
	if err != nil {
		t.Fatal(err)
	}
	costaware, err := Simulate(phttpConfig(LARD, 4, 8, lard.ConnCostAware), tr)
	if err != nil {
		t.Fatal(err)
	}

	if costaware.Rehandoffs >= perreq.Rehandoffs {
		t.Fatalf("cost-aware switched %d times, per-request %d: no moves saved",
			costaware.Rehandoffs, perreq.Rehandoffs)
	}
	if costaware.Rehandoffs == 0 {
		t.Fatal("cost-aware never moved: warm targets should justify switches")
	}
	if costaware.MissRatio >= pinned.MissRatio {
		t.Fatalf("cost-aware miss %.3f not below pinned %.3f",
			costaware.MissRatio, pinned.MissRatio)
	}
}

func TestPinnedSessionMovesOnChurn(t *testing.T) {
	// A pinned connection whose node fails moves on its next request —
	// the session semantics that made pin + churn supportable. One of two
	// nodes fails mid-run and recovers later; the whole trace must still
	// be served, with the forced moves visible as re-handoffs.
	tr := zipfTrace(40, 8<<10, 2000, 0.8, 7)
	cfg := phttpConfig(LARD, 2, 16, lard.ConnPin)
	cfg.Churn = []ChurnEvent{FailAt(0, 200*time.Millisecond), RecoverAt(0, 2*time.Second)}
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped != 0 {
		t.Fatalf("%d requests dropped with one node always alive", res.Dropped)
	}
	if res.Rehandoffs == 0 {
		t.Fatal("no forced moves recorded: pinned sessions served through the failure")
	}
}

func TestPersistentGeometricRuns(t *testing.T) {
	tr := zipfTrace(40, 8<<10, 1500, 0.8, 3)
	cfg := phttpConfig(LARDR, 4, 6, lard.ConnPerRequest)
	cfg.ConnDist = "geometric"
	cfg.ConnSeed = 5
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != tr.Len() || res.Dropped != 0 {
		t.Fatalf("served %d of %d (%d dropped)", res.Requests, tr.Len(), res.Dropped)
	}
	// Reproducibility: identical config and trace, identical result.
	res2, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != res2.Throughput || res.MissRatio != res2.MissRatio {
		t.Fatalf("non-deterministic persistent run: %v vs %v", res, res2)
	}
}

func TestPersistentAdmissionBoundHolds(t *testing.T) {
	// The closed loop must still respect S even when connections hold
	// slots for many requests (pinned) or re-dispatch mid-stream.
	tr := zipfTrace(30, 8<<10, 1200, 0.9, 13)
	for _, policy := range []string{lard.ConnPin, lard.ConnPerRequest, lard.ConnCostAware} {
		cfg := phttpConfig(LARD, 2, 8, policy)
		s := cfg.Params.MaxOutstanding(2)
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.PeakOutstanding > s {
			t.Fatalf("%s: peak %d exceeds S=%d", policy, res.PeakOutstanding, s)
		}
	}
}

func TestLegacyRehandoffBoolStillDrivesPerRequest(t *testing.T) {
	// PR 3 callers set RehandoffPerRequest; the boolean must keep
	// selecting the per-request policy bit for bit.
	tr := zipfTrace(40, 8<<10, 1000, 0.8, 7)
	old := phttpConfig(LARD, 4, 8, "")
	old.RehandoffPerRequest = true
	new_ := phttpConfig(LARD, 4, 8, lard.ConnPerRequest)
	a, err := Simulate(old, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(new_, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Rehandoffs != b.Rehandoffs || a.MissRatio != b.MissRatio {
		t.Fatalf("legacy bool diverged from ConnPolicy: %+v vs %+v", a, b)
	}
}
