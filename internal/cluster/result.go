package cluster

import (
	"fmt"
	"time"
)

// Result holds the outputs of one simulation run — the paper's summary
// metrics (Section 3.3: throughput, cache hit/miss ratio, node
// underutilization time) plus delay and utilization detail.
type Result struct {
	Strategy string
	Nodes    int

	// Requests is the number of requests served; Dropped counts requests
	// that could not be assigned (total outages, plus requests lost to an
	// unresponsive node before its breaker tripped); Sheds counts
	// requests rejected by the per-client quota.
	Requests int
	Dropped  int
	Sheds    int

	// AbuserSheds is the share of Sheds charged to the abusive client
	// identity (Config.AbuseShare).
	AbuserSheds int

	// BreakerTrips counts circuit-breaker transitions to Open;
	// BreakerDrops counts requests that failed against an unresponsive
	// node before its breaker took it out of rotation (these are also in
	// Dropped). Both are zero unless Config.Breaker is set.
	BreakerTrips int
	BreakerDrops int

	// SimTime is the virtual time taken to serve the whole trace.
	SimTime time.Duration

	// Throughput is Requests / SimTime, in requests per second — the
	// paper's primary figure of merit.
	Throughput float64

	// WithinSLO counts served requests whose total delay stayed within
	// Config.DelaySLO, and Goodput is their rate (WithinSLO / SimTime,
	// requests per second). Both are zero unless DelaySLO is set. On a
	// heterogeneous fleet this is the metric that separates
	// capacity-aware from uniform-threshold distribution: queued-up
	// small nodes still complete requests (flat Throughput) but blow the
	// delay bound (collapsed Goodput).
	WithinSLO int
	Goodput   float64

	// HitRatio and MissRatio are over all requests, cluster-wide.
	HitRatio  float64
	MissRatio float64

	// RemoteFraction is the fraction of requests served from another
	// node's memory (WRR/GMS only).
	RemoteFraction float64

	// IdleFraction is the underutilization time fraction averaged over
	// nodes ("% time node underutilized", Figure 9).
	IdleFraction float64

	// AvgDelay and MaxDelay are per-request latency (admission to
	// completion). NodeDelayDiff is the difference between the highest
	// and lowest per-node average delays, the "delay difference between
	// back-end nodes" bounded by the T_high − T_low tradeoff
	// (Section 2.4).
	AvgDelay      time.Duration
	MaxDelay      time.Duration
	NodeDelayDiff time.Duration

	// CPUUtilization and DiskUtilization are averaged over nodes (and
	// disks within a node).
	CPUUtilization  float64
	DiskUtilization float64

	// BytesServed is the total content transferred to clients.
	BytesServed int64

	// PeakOutstanding is the highest number of simultaneously admitted
	// connections observed; it never exceeds S = Params.MaxOutstanding(n).
	PeakOutstanding int

	// Rehandoffs counts back-end switches of persistent connections in
	// per-request re-handoff mode (0 otherwise): each one paid a
	// teardown on the node the connection left and a handoff +
	// establishment where it landed.
	Rehandoffs int

	// PerNode holds per-node detail.
	PerNode []NodeStats

	// Timeline holds windowed activity samples when Config.SampleEvery is
	// set — the time axis of the churn (failure/recovery) figures.
	Timeline []TimelineSample
}

// TimelineSample is one Config.SampleEvery window of cluster activity.
type TimelineSample struct {
	// At is the virtual time at the end of the window.
	At time.Duration

	// Completed is the number of requests that finished in the window;
	// Throughput is Completed over the window length, in requests/sec.
	Completed  int
	Throughput float64

	// MissRatio is the window's cache misses over its completions.
	// Misses are counted at service time and completions at completion
	// time, so a window's ratio can exceed 1 transiently under backlog.
	MissRatio float64

	// AliveNodes counts nodes eligible for new assignments at sample
	// time (member, not draining, not down).
	AliveNodes int
}

// NodeStats is the per-node breakdown of a Result.
type NodeStats struct {
	Requests     uint64
	Hits         uint64
	Misses       uint64
	RemoteHits   uint64
	CPUUtil      float64
	DiskUtil     float64
	UnderFrac    float64
	AvgDelay     time.Duration
	CacheEntries int
	CacheUsed    int64
}

// String summarizes the result on one line, in the spirit of a row from
// the paper's throughput figures.
func (r Result) String() string {
	return fmt.Sprintf("%-8s n=%-2d tput=%8.1f req/s  miss=%5.2f%%  idle=%5.2f%%  delay=%8v",
		r.Strategy, r.Nodes, r.Throughput, r.MissRatio*100, r.IdleFraction*100, r.AvgDelay.Round(time.Microsecond))
}
