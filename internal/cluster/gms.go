package cluster

import (
	"lard/internal/core"
)

// GMS simulates a global memory system over the back-end nodes' main
// memories, "loosely based on the GMS described in Feeley et al." and used
// by the paper's WRR/GMS configuration (Section 4).
//
// The model is deliberately generous to GMS, as in the paper: "It was
// assumed that maintaining the global cache directory and implementing
// global cache replacement has no cost." Concretely:
//
//   - A zero-cost global directory maps every cached object to the set of
//     nodes holding it in memory.
//   - A request for an object absent from the local cache but present in
//     a remote node's memory is a remote hit: no disk access occurs, but
//     the transfer costs CPU — a send on the holder and a receive on the
//     requester, each equal to the object's transmit cost — after which
//     the object is inserted into the requester's local cache (as in
//     Feeley et al., fetched pages become locally resident) and
//     transmitted to the client. A remote hit therefore costs three
//     transmit times of aggregate CPU versus one for a local hit.
//   - Replacement is the local GDS policy on each node; evictions update
//     the directory for free.
//
// Hot objects end up replicated in many nodes' memories (shrinking the
// aggregate effective cache towards WRR's), while the long tail is served
// from remote memory instead of disk (approaching LARD's aggregation but
// at triple the per-byte CPU cost). Those two effects are what keep
// WRR/GMS between WRR and LARD in the paper's figures.
type GMS struct {
	// holders maps each in-memory object to the nodes holding it.
	holders map[string]map[int]bool
	nodes   []*Node
}

// newGMS builds a global memory system over the nodes, which keep using
// their own local caches; the GMS adds the directory and remote-fetch
// path. Each node's cache evictions are hooked to maintain the directory.
func newGMS(nodes []*Node) *GMS {
	g := &GMS{
		holders: make(map[string]map[int]bool),
		nodes:   nodes,
	}
	for _, n := range nodes {
		n.gms = g
		id := n.id
		n.cache.SetEvictCallback(func(key string, _ int64) {
			g.drop(id, key)
		})
	}
	return g
}

// insert records that node now holds target in its local cache.
func (g *GMS) insert(node int, target string, size int64) {
	if !g.nodes[node].cache.Insert(target, size) {
		return
	}
	set, ok := g.holders[target]
	if !ok {
		set = make(map[int]bool, 2)
		g.holders[target] = set
	}
	set[node] = true
}

// drop removes node from target's holder set.
func (g *GMS) drop(node int, target string) {
	if set, ok := g.holders[target]; ok {
		delete(set, node)
		if len(set) == 0 {
			delete(g.holders, target)
		}
	}
}

// remoteHolder returns the holder of target with the shortest CPU backlog,
// excluding the requester, or -1 if none exists.
func (g *GMS) remoteHolder(target string, requester int) int {
	best := -1
	var bestBacklog int64
	for id := range g.holders[target] {
		if id == requester {
			continue
		}
		backlog := int64(g.nodes[id].cpu.Backlog())
		if best == -1 || backlog < bestBacklog || (backlog == bestBacklog && id < best) {
			best, bestBacklog = id, backlog
		}
	}
	return best
}

// serveGMS handles the cache-consultation step of a request on a node that
// participates in a GMS.
func (n *Node) serveGMS(req core.Request, done func()) {
	g := n.gms
	if _, ok := n.cache.Lookup(req.Target); ok {
		n.hits++
		n.transmit(req.Size, done)
		return
	}
	if owner := g.remoteHolder(req.Target, n.id); owner >= 0 {
		// Remote memory hit: the holder sends (CPU on holder), we receive
		// (CPU here) and keep a local copy, then transmit to the client.
		// The steps of one request remain sequential across the two nodes.
		n.hits++
		n.remote++
		sender := g.nodes[owner]
		sendCost := sender.cost.TransmitTime(req.Size)
		sender.cpu.Schedule(sendCost, func() {
			recvCost := n.cost.TransmitTime(req.Size)
			n.cpu.Schedule(recvCost, func() {
				g.insert(n.id, req.Target, req.Size)
				n.transmit(req.Size, done)
			})
		})
		return
	}
	n.misses++
	n.readAndServe(req, done)
}
