package cluster

import (
	"testing"
	"time"

	"lard/internal/core"
)

// Satellite regression for runtime joins with explicit profiles: a
// half-capacity node joining mid-run must be admitted under its own
// thresholds — the dispatcher's recomputed bound uses T_high 33, not the
// fleet default 65 — and still pick up traffic.
func TestJoinWithProfileHalfCapacity(t *testing.T) {
	tr := zipfTrace(32, 4<<10, 30000, 0.8, 11)
	base, err := Simulate(churnConfig(LARD), tr)
	if err != nil {
		t.Fatal(err)
	}

	cfg := churnConfig(LARD)
	half := NodeProfile{Profile: core.Profile{Weight: 0.5}, Speed: 0.5}
	cfg.Churn = []ChurnEvent{JoinWithProfileAt(half, base.SimTime/4)}
	c, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run()

	if res.Nodes != 5 {
		t.Fatalf("Result.Nodes = %d, want 5 after join", res.Nodes)
	}
	if res.PerNode[4].Requests == 0 {
		t.Fatal("half-capacity joined node never served a request")
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests", res.Dropped)
	}

	// The dispatcher must hold the joined node's filled profile: weight
	// 0.5 scales the paper thresholds to T_low 13 / T_high 33.
	profiles := c.Dispatcher().Profiles()
	if len(profiles) != 5 {
		t.Fatalf("dispatcher tracks %d profiles", len(profiles))
	}
	got := profiles[4]
	if got.Weight != 0.5 || got.TLow != 13 || got.THigh != 33 {
		t.Fatalf("joined node profile = %+v, want {TLow:13 THigh:33 Weight:0.5}", got)
	}

	// Generalized bound over 4 standard + 1 half node:
	// S = (4·65 + 33) − 65 + 13 + 1 = 242, below the uniform 5-node 286.
	wantS := core.MaxOutstandingOver([]core.Profile{
		{TLow: 25, THigh: 65, Weight: 1}, {TLow: 25, THigh: 65, Weight: 1},
		{TLow: 25, THigh: 65, Weight: 1}, {TLow: 25, THigh: 65, Weight: 1},
		{TLow: 13, THigh: 33, Weight: 0.5},
	})
	if wantS != 242 {
		t.Fatalf("generalized bound = %d, want 242", wantS)
	}
	if res.PeakOutstanding > wantS {
		t.Fatalf("peak outstanding %d exceeds the half-capacity bound %d", res.PeakOutstanding, wantS)
	}
}

// A Speed-2 node under weight-aware WRR must actually absorb roughly
// double the work of a standard node: the profile steers double the
// connections its way, and the scaled cost model serves them in half the
// time.
func TestProfileSpeedServesProportionally(t *testing.T) {
	tr := zipfTrace(64, 4<<10, 40000, 0.6, 3)
	cfg := DefaultConfig(WRR, 2)
	cfg.CacheBytes = 1 << 20
	cfg.Profiles = []NodeProfile{{Profile: core.Profile{Weight: 2}}, {}}
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	big := float64(res.PerNode[0].Requests)
	small := float64(res.PerNode[1].Requests)
	if small == 0 {
		t.Fatal("standard node served nothing")
	}
	if ratio := big / small; ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("big/small request ratio = %.2f, want ≈2", ratio)
	}
}

// Goodput accounting: with a DelaySLO every request of an unloaded run
// completes in bound, so Goodput equals Throughput; without one both
// stay zero.
func TestGoodputAccounting(t *testing.T) {
	tr := zipfTrace(16, 4<<10, 5000, 0.6, 5)
	cfg := DefaultConfig(LARD, 4)
	cfg.DelaySLO = 10 * time.Second
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinSLO != res.Requests {
		t.Fatalf("WithinSLO = %d of %d requests under a 10s SLO", res.WithinSLO, res.Requests)
	}
	if res.Goodput != res.Throughput {
		t.Fatalf("Goodput %.1f != Throughput %.1f with every request in SLO", res.Goodput, res.Throughput)
	}

	cfg.DelaySLO = 0
	res, err = Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithinSLO != 0 || res.Goodput != 0 {
		t.Fatalf("WithinSLO/Goodput nonzero (%d, %.1f) without a DelaySLO", res.WithinSLO, res.Goodput)
	}
}

func TestHeteroConfigValidation(t *testing.T) {
	tr := zipfTrace(8, 4<<10, 100, 0.6, 5)
	bad := []func(*Config){
		func(c *Config) { c.Profiles = make([]NodeProfile, c.Nodes+1) },
		func(c *Config) { c.Profiles = []NodeProfile{{Profile: core.Profile{Weight: -1}}} },
		func(c *Config) { c.Profiles = []NodeProfile{{Speed: -2}} },
		func(c *Config) { c.Profiles = []NodeProfile{{Profile: core.Profile{TLow: 50, THigh: 40}}} },
		func(c *Config) { c.DelaySLO = -time.Second },
		func(c *Config) { c.Choices = -1 },
		func(c *Config) {
			// A profile on a non-join churn event is meaningless.
			p := NodeProfile{}
			c.Churn = []ChurnEvent{{At: time.Second, Op: ChurnDrain, Node: 0, Profile: &p}}
		},
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(LARD, 4)
		mutate(&cfg)
		if _, err := New(cfg, tr); err == nil {
			t.Fatalf("case %d: invalid hetero config accepted", i)
		}
	}
}

// ParseStrategy and registryName round-trip the new capacity-aware kinds.
func TestParseStrategyHetero(t *testing.T) {
	for _, k := range []StrategyKind{POD, WLARD} {
		got, err := ParseStrategy(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseStrategy(%q) = %v, %v", k.String(), got, err)
		}
		if _, err := k.registryName(); err != nil {
			t.Fatal(err)
		}
	}
	// The paper's figure sweep must not pick up the extensions.
	for _, k := range AllStrategies() {
		if k == POD || k == WLARD {
			t.Fatal("AllStrategies includes a heterogeneous extension")
		}
	}
}

// POD and WLARD run end-to-end through the simulator.
func TestHeteroStrategiesSimulate(t *testing.T) {
	tr := zipfTrace(32, 4<<10, 10000, 0.8, 9)
	for _, k := range []StrategyKind{POD, WLARD} {
		cfg := DefaultConfig(k, 4)
		cfg.CacheBytes = 64 << 10
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != tr.Len() {
			t.Fatalf("%v served %d of %d", k, res.Requests, tr.Len())
		}
		if res.Strategy != k.String() {
			t.Fatalf("Strategy = %q, want %q", res.Strategy, k.String())
		}
	}
}
