package cluster

import (
	"testing"

	"lard/internal/cache"
	"lard/internal/core"
	"lard/internal/sim"
)

// newGMSNodes builds n nodes sharing a GMS, each with the given cache.
func newGMSNodes(t *testing.T, n int, cacheBytes int64) (*sim.Engine, []*Node, *GMS) {
	t.Helper()
	eng := sim.NewEngine()
	var nodes []*Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, newNode(i, eng, DefaultCostModel(), cache.NewGDS(cacheBytes), 1, 10))
	}
	g := newGMS(nodes)
	return eng, nodes, g
}

func TestGMSRemoteHitAvoidsDisk(t *testing.T) {
	eng, nodes, _ := newGMSNodes(t, 2, 1<<20)
	// Node 0 reads /a from disk and caches it.
	nodes[0].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	if nodes[0].misses != 1 {
		t.Fatalf("node0 misses = %d", nodes[0].misses)
	}
	// Node 1's request for /a is a remote memory hit: no disk access.
	nodes[1].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	if nodes[1].misses != 0 {
		t.Fatalf("node1 missed despite global copy")
	}
	if nodes[1].remote != 1 {
		t.Fatalf("node1 remote = %d, want 1", nodes[1].remote)
	}
	if nodes[1].disks[0].Jobs() != 0 {
		t.Fatalf("node1 went to disk on a remote hit")
	}
}

func TestGMSRemoteHitReplicatesLocally(t *testing.T) {
	eng, nodes, g := newGMSNodes(t, 2, 1<<20)
	nodes[0].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	nodes[1].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	// As in Feeley et al., the fetched object becomes locally resident:
	// both nodes now hold it, and the next access on node 1 is local.
	if len(g.holders["/a"]) != 2 {
		t.Fatalf("holders = %v, want both nodes", g.holders["/a"])
	}
	nodes[1].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	if nodes[1].remote != 1 {
		t.Fatalf("second access was remote again (remote=%d)", nodes[1].remote)
	}
}

func TestGMSRemoteHitCostsMoreThanLocal(t *testing.T) {
	measure := func(remote bool) (latency int64) {
		eng, nodes, _ := newGMSNodes(t, 2, 1<<20)
		nodes[0].Handle(core.Request{Target: "/a", Size: 8 << 10}, func() {})
		eng.Run()
		server := 0
		if remote {
			server = 1
		}
		start := eng.Now()
		var end int64
		nodes[server].Handle(core.Request{Target: "/a", Size: 8 << 10}, func() { end = int64(eng.Now() - start) })
		eng.Run()
		return end
	}
	local, remote := measure(false), measure(true)
	// Remote = local + send + receive = local + 2 transmit times.
	if remote <= local {
		t.Fatalf("remote hit (%d) not costlier than local (%d)", remote, local)
	}
	extra := remote - local
	twoTransmits := int64(2 * DefaultCostModel().TransmitTime(8<<10))
	if extra != twoTransmits {
		t.Fatalf("remote extra cost = %d, want %d (two transmit times)", extra, twoTransmits)
	}
}

func TestGMSEvictionMaintainsDirectory(t *testing.T) {
	eng, nodes, g := newGMSNodes(t, 2, 10<<10) // tiny caches
	nodes[0].Handle(core.Request{Target: "/a", Size: 8 << 10}, func() {})
	eng.Run()
	if len(g.holders["/a"]) != 1 {
		t.Fatalf("holders = %v", g.holders["/a"])
	}
	// A second large object evicts /a from node 0's cache; the directory
	// must drop the holder too.
	nodes[0].Handle(core.Request{Target: "/b", Size: 8 << 10}, func() {})
	eng.Run()
	if len(g.holders["/a"]) != 0 {
		t.Fatalf("stale directory entry for /a: %v", g.holders["/a"])
	}
	// And a new request for /a on node 1 must go to disk, not to a ghost.
	nodes[1].Handle(core.Request{Target: "/a", Size: 8 << 10}, func() {})
	eng.Run()
	if nodes[1].misses != 1 {
		t.Fatalf("node1 misses = %d, want 1", nodes[1].misses)
	}
}

func TestGMSRemoteHolderPrefersShortestBacklog(t *testing.T) {
	eng, nodes, g := newGMSNodes(t, 3, 1<<20)
	// Both node 0 and node 1 hold /a.
	nodes[0].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	nodes[1].Handle(core.Request{Target: "/a", Size: 4 << 10}, func() {})
	eng.Run()
	// Pile CPU work on node 0: node 2's fetch should come from node 1.
	nodes[0].cpu.Schedule(1e9, nil)
	if got := g.remoteHolder("/a", 2); got != 1 {
		t.Fatalf("remoteHolder = %d, want 1 (shortest backlog)", got)
	}
	// The requester itself is excluded.
	if got := g.remoteHolder("/a", 1); got != 0 {
		t.Fatalf("remoteHolder excluding 1 = %d, want 0", got)
	}
	if got := g.remoteHolder("/zzz", 2); got != -1 {
		t.Fatalf("remoteHolder for unknown target = %d, want -1", got)
	}
}

func TestGMSUncacheableObjectNotTracked(t *testing.T) {
	eng, nodes, g := newGMSNodes(t, 2, 4<<10)
	nodes[0].Handle(core.Request{Target: "/huge", Size: 1 << 20}, func() {})
	eng.Run()
	if len(g.holders["/huge"]) != 0 {
		t.Fatalf("uncacheable object in directory: %v", g.holders["/huge"])
	}
}
