package cluster

import (
	"testing"

	"lard/internal/breaker"
	"lard/internal/trace"
)

// TestQuotaShedsAbuserInSim attributes half the trace to one abusive
// client identity and the rest to 8 well-behaved ones, with a per-client
// quota sized between the two offered rates: the abuser must be shed
// heavily while the well-behaved clients lose nothing.
func TestQuotaShedsAbuserInSim(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	cfg.QuotaRate = 500 // req/s per client: well clients offer ~150, the abuser >1000
	cfg.QuotaClients = 8
	cfg.AbuseShare = 0.5
	tr := repeatTrace(30000,
		trace.Target{Name: "/a.html", Size: 8 << 10},
		trace.Target{Name: "/b.html", Size: 8 << 10})
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests+res.Dropped+res.Sheds != tr.Len() {
		t.Fatalf("accounting: %d served + %d dropped + %d shed != %d trace requests",
			res.Requests, res.Dropped, res.Sheds, tr.Len())
	}
	if res.Sheds == 0 {
		t.Fatal("abusive load was never shed")
	}
	// The abuser offers far over quota, each well-behaved client far
	// under: every shed should land on the abuser.
	if res.AbuserSheds != res.Sheds {
		t.Fatalf("%d of %d sheds hit well-behaved clients", res.Sheds-res.AbuserSheds, res.Sheds)
	}
	// Most of the abuser's ~15000 attributed requests exceed its quota.
	if res.AbuserSheds < tr.Len()/10 {
		t.Fatalf("abuser shed only %d of %d requests — quota not biting", res.AbuserSheds, tr.Len())
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests with all nodes healthy", res.Dropped)
	}
}

// TestQuotaOffShedsNothing: without QuotaRate the sim behaves exactly as
// before the subsystem existed.
func TestQuotaOffShedsNothing(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	tr := repeatTrace(2000, trace.Target{Name: "/x", Size: 4 << 10})
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds != 0 || res.AbuserSheds != 0 || res.BreakerTrips != 0 || res.BreakerDrops != 0 {
		t.Fatalf("overload counters nonzero with the subsystem off: %+v", res)
	}
	if res.Requests != tr.Len() {
		t.Fatalf("Requests = %d, want %d", res.Requests, tr.Len())
	}
}

// TestBreakerDetectsFailureWithoutOracle replaces the simulator's failure
// oracle with breaker detection: a node scripted unresponsive is never
// reported to the dispatcher, yet after a handful of failed dispatches
// its breaker trips and the gate detours traffic — the cluster loses only
// the requests that fed the detection, not a third of the trace.
func TestBreakerDetectsFailureWithoutOracle(t *testing.T) {
	tr := zipfTrace(48, 4<<10, 60000, 0.8, 7)

	run := func(recover bool) (Result, *Cluster) {
		t.Helper()
		base, err := Simulate(churnConfig(LARD), tr)
		if err != nil {
			t.Fatal(err)
		}
		cfg := churnConfig(LARD)
		cfg.Breaker = &breaker.Config{}
		cfg.Churn = []ChurnEvent{FailAt(1, base.SimTime/3)}
		if recover {
			cfg.Churn = append(cfg.Churn, RecoverAt(1, 2*base.SimTime/3))
		}
		c, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return c.Run(), c
	}

	failOnly, cFail := run(false)
	recovered, cRec := run(true)

	for _, res := range []Result{failOnly, recovered} {
		if res.BreakerTrips == 0 {
			t.Fatalf("breaker never tripped: %+v", res)
		}
		if res.BreakerDrops == 0 || res.Dropped != res.BreakerDrops {
			t.Fatalf("drop accounting: dropped=%d breakerDrops=%d", res.Dropped, res.BreakerDrops)
		}
		// Detection costs a few requests per trip cycle (FailureThreshold
		// consecutive failures, then one probe burst per open window) —
		// not a sustained outage.
		if res.BreakerDrops > tr.Len()/100 {
			t.Fatalf("breaker detection lost %d of %d requests — gate not detouring", res.BreakerDrops, tr.Len())
		}
	}

	// With no recovery the failed node's breaker keeps re-opening on
	// probe failures; once recovered it must re-admit the node.
	if st := cRec.ov.breakers.State(1, cRec.eng.Now()); st == breaker.Open {
		t.Fatalf("breaker still open after recovery (state %v)", st)
	}
	if recovered.PerNode[1].Requests <= failOnly.PerNode[1].Requests {
		t.Fatalf("recovered node served %d requests, fail-only %d — recovery never re-admitted it",
			recovered.PerNode[1].Requests, failOnly.PerNode[1].Requests)
	}
	_ = cFail
}

// TestOverloadConfigValidation covers the new Validate rejections.
func TestOverloadConfigValidation(t *testing.T) {
	tr := repeatTrace(10, trace.Target{Name: "/x", Size: 1 << 10})

	cfg := DefaultConfig(LARD, 2)
	cfg.QuotaRate = -1
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("negative QuotaRate accepted")
	}

	cfg = DefaultConfig(LARD, 2)
	cfg.AbuseShare = 0.5 // without QuotaRate
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("AbuseShare without QuotaRate accepted")
	}

	cfg = DefaultConfig(LARD, 2)
	cfg.QuotaRate = 10
	cfg.AbuseShare = 1.5
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("AbuseShare outside [0,1) accepted")
	}

	cfg = DefaultConfig(LARD, 2)
	cfg.QuotaRate = 10
	cfg.ReqsPerConn = 4
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("quota with persistent connections accepted")
	}

	cfg = DefaultConfig(WRRGMS, 2)
	cfg.Breaker = &breaker.Config{}
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("breaker with WRR/GMS accepted")
	}
}
