// Package cluster implements the LARD paper's trace-driven cluster
// simulator (Section 3): a front end distributing requests over simulated
// back-end nodes, each with a CPU queue, one or more disk queues, and a
// whole-file main-memory cache.
//
// "The assumption is that front end and networks are fast enough not to
// limit the cluster's performance ... Therefore, the front end is assumed
// to have no overhead and all networks have infinite capacity in the
// simulations." The front end dispatches through the public
// lard.Dispatcher, which owns the active-connection accounting and
// enforces the admission bound S = (n−1)·T_high + T_low + 1 per
// dispatcher shard — cluster-wide with the default single shard; up to
// S×Shards outstanding when Config.Shards > 1 models a sharded front
// end. The request arrival rate is matched to the aggregate throughput
// of the server (closed loop): a new request enters whenever the
// dispatcher has a slot free.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lard/internal/core"
	"lard/internal/sim"
	"lard/internal/trace"
	"lard/pkg/lard"
)

// Cluster is a fully wired simulation: engine, nodes, dispatcher, and the
// closed-loop front end. Build one with New, run it with Run, or use the
// package-level Simulate convenience.
type Cluster struct {
	cfg        Config
	eng        *sim.Engine
	nodes      []*Node
	gms        *GMS
	d          lard.Dispatcher
	tr         *trace.Trace
	underBound int
	diskFor    func(string) int

	// Front-end state. outstanding mirrors the dispatcher's in-flight
	// count so the hot loop tracks the peak without locking a snapshot.
	outstanding int
	peak        int
	next        int
	dropped     int

	// Persistent-connection state (phttp.go): the connection policy the
	// sessions consult, the per-connection length generator, a
	// drawn-but-not-yet-admitted connection length (so overload pushback
	// never skews the seeded draw sequence), connections parked on the
	// admission bound mid-stream, and the count of back-end switches
	// (session moves).
	connPolicy lard.ConnPolicy
	connLen    func() int
	pendingLen int
	stalled    []*connState
	rehandoffs int

	// Overload protection (overload.go): simulated per-client quota and
	// per-node circuit breakers.
	ov overloadSim

	// Delay accounting.
	delaySum     time.Duration
	delayMax     time.Duration
	withinSLO    int
	nodeDelaySum []time.Duration
	nodeDelayCnt []int64

	// Timeline sampling (Config.SampleEvery).
	served       int
	timeline     []TimelineSample
	lastServed   int
	lastMisses   uint64
	lastSampleAt time.Duration
	samplerEv    *sim.Event
}

// New builds a cluster simulation for the given configuration and trace.
func New(cfg Config, tr *trace.Trace) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	eng := sim.NewEngine()
	underBound := int(cfg.UnderutilizationFraction * float64(cfg.Params.TLow))

	c := &Cluster{
		cfg:          cfg,
		eng:          eng,
		tr:           tr,
		underBound:   underBound,
		nodeDelaySum: make([]time.Duration, cfg.Nodes),
		nodeDelayCnt: make([]int64, cfg.Nodes),
	}

	c.diskFor = diskAssignment(tr, cfg.Disks)
	for i := 0; i < cfg.Nodes; i++ {
		// Each node serves under its own speed-scaled cost model, so a
		// Speed-2 node really completes identical work in half the time.
		n := newNode(i, eng, cfg.Cost.scaledBy(cfg.profileFor(i).Speed), cfg.newCache(), cfg.Disks, underBound)
		n.diskFor = c.diskFor
		c.nodes = append(c.nodes, n)
	}

	name, err := cfg.Strategy.registryName()
	if err != nil {
		return nil, err
	}
	opts := []lard.Option{
		lard.WithNodes(cfg.Nodes),
		lard.WithParams(cfg.Params),
		lard.WithCacheBytes(cfg.CacheBytes),
		lard.WithShards(max(cfg.Shards, 1)),
	}
	if ps := cfg.coreProfiles(); len(ps) > 0 {
		opts = append(opts, lard.WithProfiles(ps...))
	}
	if cfg.Choices > 0 {
		opts = append(opts, lard.WithChoices(cfg.Choices))
	}
	if cfg.MaxOutstanding != 0 {
		opts = append(opts, lard.WithMaxOutstanding(cfg.MaxOutstanding))
	}
	c.d, err = lard.New(name, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Strategy == WRRGMS {
		c.gms = newGMS(c.nodes)
	}
	if cfg.ReqsPerConn >= 1 {
		c.connLen = newConnLen(cfg)
		c.connPolicy = newConnPolicy(cfg)
	}
	c.initOverload()

	c.scheduleFailures()
	c.scheduleChurn()
	c.scheduleSampling()
	return c, nil
}

// Dispatcher returns the dispatch layer driving the cluster, for
// diagnostics (e.g. LARD move counters via Inspect).
func (c *Cluster) Dispatcher() lard.Dispatcher { return c.d }

// Run replays the entire trace and returns the collected metrics.
func (c *Cluster) Run() Result {
	c.pump()
	c.eng.Run()
	return c.collect()
}

// pump admits requests while capacity remains — the closed loop. The
// dispatcher enforces the admission bound: pumping stops when it reports
// ErrOverloaded and resumes when a completion releases a slot. With a
// persistent-connection workload configured, admission happens at
// connection granularity instead (phttp.go).
func (c *Cluster) pump() {
	if c.connLen != nil {
		c.pumpPersistent()
		return
	}
	for c.next < c.tr.Len() {
		r := c.tr.At(c.next)
		req := core.Request{Target: r.Target, Size: r.Size}
		node, done, err := c.d.Dispatch(c.eng.Now(), req)
		if errors.Is(err, lard.ErrOverloaded) {
			return // closed loop: resume on the next completion
		}
		c.next++
		if err != nil {
			// Total outage: the request cannot be served.
			c.dropped++
			continue
		}
		if c.ov.quota != nil {
			// Charge the quota only for requests the admission bound let
			// in: checking before Dispatch would double-charge a client
			// whose request gets pushed back by ErrOverloaded and retried.
			client := c.ov.drawClient()
			if ok, _ := c.ov.quota.Allow(client, c.eng.Now()); !ok {
				done()
				c.ov.sheds++
				if client == abuserClient {
					c.ov.abuserSheds++
				}
				continue
			}
		}
		if c.ov.breakers != nil && c.ov.nodeFailed(node) {
			// The node is scripted unresponsive but its breaker has not
			// tripped yet: the dispatch fails like a refused connection,
			// feeding the breaker until the gate takes it out of rotation.
			done()
			c.ov.breakers.Failure(node, c.eng.Now())
			c.ov.breakerDrops++
			c.dropped++
			continue
		}
		if c.ov.breakers != nil {
			c.ov.breakers.Success(node, c.eng.Now())
		}
		c.outstanding++
		if c.outstanding > c.peak {
			c.peak = c.outstanding
		}
		start := c.eng.Now()
		n := c.nodes[node]
		n.Handle(req, func() {
			done()
			c.outstanding--
			c.completeRequest(node, start)
			c.pump()
			if c.outstanding == 0 && c.next >= c.tr.Len() {
				c.finishSampling()
			}
		})
	}
	// A total outage can drop the trace tail with nothing in flight, in
	// which case no completion callback remains to close the timeline.
	if c.outstanding == 0 && c.next >= c.tr.Len() {
		c.finishSampling()
	}
}

// scheduleFailures translates the legacy Config.Failures events into the
// churn machinery, so there is exactly one failure-injection code path.
func (c *Cluster) scheduleFailures() {
	for _, f := range c.cfg.Failures {
		ev := ChurnEvent{At: f.DownAt, Op: ChurnFail, Node: f.Node}
		c.eng.At(ev.At, func() { c.applyChurn(ev) })
		if f.UpAt > 0 {
			up := ChurnEvent{At: f.UpAt, Op: ChurnRecover, Node: f.Node}
			c.eng.At(up.At, func() { c.applyChurn(up) })
		}
	}
}

// scheduleChurn wires the scripted membership changes into the engine.
func (c *Cluster) scheduleChurn() {
	for _, ev := range c.cfg.Churn {
		ev := ev
		c.eng.At(ev.At, func() { c.applyChurn(ev) })
	}
}

// applyChurn performs one membership change at its virtual time. Events
// that restore or add capacity re-pump the closed loop, since the
// recomputed admission bound S may have opened slots. Validate rejects
// schedules that reference a node before it joins, so the range check
// here is only a belt against future callers bypassing Validate.
func (c *Cluster) applyChurn(ev ChurnEvent) {
	if ev.Op != ChurnJoin && (ev.Node < 0 || ev.Node >= len(c.nodes)) {
		panic(fmt.Sprintf("cluster: churn %s for node %d of %d (unvalidated schedule)",
			ev.Op, ev.Node, len(c.nodes)))
	}
	switch ev.Op {
	case ChurnFail:
		if c.ov.breakers != nil {
			// Breaker-detection mode: nobody tells the dispatcher. The
			// node just stops answering, and it leaves rotation only once
			// its breaker observes enough failed dispatches to trip.
			c.ov.setFailed(ev.Node, true)
			return
		}
		c.d.SetNodeDown(ev.Node, true)
	case ChurnRecover:
		// A recovered node restarts with a cold cache; LARD's mappings to
		// it were invalidated at failure, so it re-warms on new
		// assignments (the Section 2.6 story the churn figure plots).
		c.nodes[ev.Node].cache = c.cfg.newCache()
		if c.ov.breakers != nil {
			c.ov.setFailed(ev.Node, false)
			// The prober's first successful probe is the recovery
			// evidence; Success while Open starts the half-open round.
			c.ov.breakers.Success(ev.Node, c.eng.Now())
			c.pump()
			return
		}
		c.d.SetNodeDown(ev.Node, false)
		c.pump()
	case ChurnJoin:
		// A join without an explicit profile is a cold standard node; with
		// one, the node both serves at the profile's speed and is admitted
		// into the recomputed bound with its declared thresholds.
		p := NodeProfile{}.fill()
		if ev.Profile != nil {
			p = ev.Profile.fill()
		}
		n := newNode(len(c.nodes), c.eng, c.cfg.Cost.scaledBy(p.Speed), c.cfg.newCache(), c.cfg.Disks, c.underBound)
		n.diskFor = c.diskFor
		c.nodes = append(c.nodes, n)
		c.nodeDelaySum = append(c.nodeDelaySum, 0)
		c.nodeDelayCnt = append(c.nodeDelayCnt, 0)
		if id := c.d.AddNode(); id != n.id {
			panic(fmt.Sprintf("cluster: dispatcher assigned node %d, simulator %d", id, n.id))
		}
		if ev.Profile != nil {
			if err := c.d.SetProfile(n.id, p.Profile); err != nil {
				panic(fmt.Sprintf("cluster: profile for joined node %d: %v", n.id, err))
			}
		}
		c.pump()
	case ChurnDrain:
		c.d.Drain(ev.Node)
	case ChurnUndrain:
		c.d.Undrain(ev.Node)
		c.pump()
	case ChurnLeave:
		c.d.RemoveNode(ev.Node)
	}
}

// scheduleSampling starts the timeline sampler when configured.
func (c *Cluster) scheduleSampling() {
	if c.cfg.SampleEvery > 0 {
		c.samplerEv = c.eng.After(c.cfg.SampleEvery, c.sampleTick)
	}
}

// finishSampling runs when the closed loop drains: it cancels the pending
// tick — which would otherwise fire up to one window after the last
// completion and inflate SimTime — and records the final partial window
// at the exact drain instant.
func (c *Cluster) finishSampling() {
	if c.samplerEv == nil {
		return
	}
	c.eng.Cancel(c.samplerEv)
	c.samplerEv = nil
	c.sampleTick()
}

// sampleTick records one timeline window and reschedules itself while the
// run still has admitted or unadmitted work.
func (c *Cluster) sampleTick() {
	now := c.eng.Now()
	var misses uint64
	for _, n := range c.nodes {
		misses += n.misses
	}
	window := now - c.lastSampleAt
	completed := c.served - c.lastServed
	if window == 0 {
		// The drain coincided with a tick that already recorded this
		// window — but completions at the shared instant fired after the
		// tick (engine FIFO), so fold them into that sample rather than
		// lose them.
		if completed > 0 && len(c.timeline) > 0 {
			last := &c.timeline[len(c.timeline)-1]
			prevMisses := last.MissRatio * float64(last.Completed)
			last.Completed += completed
			last.MissRatio = (prevMisses + float64(misses-c.lastMisses)) / float64(last.Completed)
			prevAt := time.Duration(0)
			if n := len(c.timeline); n > 1 {
				prevAt = c.timeline[n-2].At
			}
			if w := now - prevAt; w > 0 {
				last.Throughput = float64(last.Completed) / w.Seconds()
			}
			c.lastServed = c.served
			c.lastMisses = misses
		}
		return
	}
	s := TimelineSample{At: now, Completed: completed}
	s.Throughput = float64(completed) / window.Seconds()
	if completed > 0 {
		s.MissRatio = float64(misses-c.lastMisses) / float64(completed)
		// Misses accumulated in zero-completion windows (deep backlog)
		// carry forward until a window completes something, so none are
		// dropped from the ratio — this is why it can transiently
		// exceed 1.
		c.lastMisses = misses
	}
	for _, st := range c.d.NodeStates() {
		if st.Eligible() {
			s.AliveNodes++
		}
	}
	c.timeline = append(c.timeline, s)
	c.lastSampleAt = now
	c.lastServed = c.served
	if c.next < c.tr.Len() || c.outstanding > 0 {
		c.samplerEv = c.eng.After(c.cfg.SampleEvery, c.sampleTick)
	} else {
		c.samplerEv = nil
	}
}

// collect assembles the Result after the engine has drained.
func (c *Cluster) collect() Result {
	end := c.eng.Now()
	res := Result{
		Strategy:     c.cfg.Strategy.String(),
		Nodes:        len(c.nodes), // configured nodes plus any runtime joins
		Requests:     c.tr.Len() - c.dropped - c.ov.sheds,
		Dropped:      c.dropped,
		Sheds:        c.ov.sheds,
		AbuserSheds:  c.ov.abuserSheds,
		BreakerTrips: c.ov.breakerTrips,
		BreakerDrops: c.ov.breakerDrops,
		SimTime:      end,
		Timeline:     c.timeline,
	}
	if end > 0 {
		res.Throughput = float64(res.Requests) / end.Seconds()
	}
	if c.cfg.DelaySLO > 0 {
		res.WithinSLO = c.withinSLO
		if end > 0 {
			res.Goodput = float64(c.withinSLO) / end.Seconds()
		}
	}

	var hits, misses, remote, reqs uint64
	var underSum, cpuSum, diskSum float64
	var maxNodeDelay, minNodeDelay time.Duration
	minSet := false
	for i, n := range c.nodes {
		n.finishStats(end)
		st := NodeStats{
			Requests:     n.requests,
			Hits:         n.hits,
			Misses:       n.misses,
			RemoteHits:   n.remote,
			CPUUtil:      n.cpu.Utilization(end),
			UnderFrac:    n.underutilizedFraction(end),
			CacheEntries: n.cache.Len(),
			CacheUsed:    n.cache.Used(),
		}
		var dutil float64
		for _, d := range n.disks {
			dutil += d.Utilization(end)
		}
		st.DiskUtil = dutil / float64(len(n.disks))
		if c.nodeDelayCnt[i] > 0 {
			st.AvgDelay = c.nodeDelaySum[i] / time.Duration(c.nodeDelayCnt[i])
			if !minSet || st.AvgDelay < minNodeDelay {
				minNodeDelay = st.AvgDelay
				minSet = true
			}
			if st.AvgDelay > maxNodeDelay {
				maxNodeDelay = st.AvgDelay
			}
		}
		res.PerNode = append(res.PerNode, st)
		hits += n.hits
		misses += n.misses
		remote += n.remote
		reqs += n.requests
		res.BytesServed += n.bytesSent
		underSum += st.UnderFrac
		cpuSum += st.CPUUtil
		diskSum += st.DiskUtil
	}
	if reqs > 0 {
		res.HitRatio = float64(hits) / float64(reqs)
		res.MissRatio = float64(misses) / float64(reqs)
		res.RemoteFraction = float64(remote) / float64(reqs)
	}
	nn := float64(len(c.nodes))
	res.IdleFraction = underSum / nn
	res.CPUUtilization = cpuSum / nn
	res.DiskUtilization = diskSum / nn
	if res.Requests > 0 {
		res.AvgDelay = c.delaySum / time.Duration(res.Requests)
	}
	res.MaxDelay = c.delayMax
	res.PeakOutstanding = c.peak
	res.Rehandoffs = c.rehandoffs
	if minSet {
		res.NodeDelayDiff = maxNodeDelay - minNodeDelay
	}
	return res
}

// Simulate is the one-call convenience: build and run.
func Simulate(cfg Config, tr *trace.Trace) (Result, error) {
	c, err := New(cfg, tr)
	if err != nil {
		return Result{}, err
	}
	return c.Run(), nil
}

// diskAssignment stripes targets across disks "in round-robin fashion
// based on decreasing order of request frequency in the trace", returning
// nil when a single disk makes striping moot.
func diskAssignment(tr *trace.Trace, disks int) func(string) int {
	if disks <= 1 {
		return nil
	}
	counts := tr.Counts()
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := counts[order[a]], counts[order[b]]
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	assign := make(map[string]int, len(order))
	for rank, idx := range order {
		assign[tr.Targets[idx].Name] = rank % disks
	}
	return func(target string) int { return assign[target] }
}
