// Package cluster implements the LARD paper's trace-driven cluster
// simulator (Section 3): a front end distributing requests over simulated
// back-end nodes, each with a CPU queue, one or more disk queues, and a
// whole-file main-memory cache.
//
// "The assumption is that front end and networks are fast enough not to
// limit the cluster's performance ... Therefore, the front end is assumed
// to have no overhead and all networks have infinite capacity in the
// simulations." The front end runs a core.Strategy over its own
// active-connection accounting and enforces the cluster-wide admission
// bound S = (n−1)·T_high + T_low + 1. The request arrival rate is matched
// to the aggregate throughput of the server (closed loop): a new request
// enters whenever the number outstanding drops below S.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"lard/internal/core"
	"lard/internal/sim"
	"lard/internal/trace"
)

// Cluster is a fully wired simulation: engine, nodes, strategy, and the
// closed-loop front end. Build one with New, run it with Run, or use the
// package-level Simulate convenience.
type Cluster struct {
	cfg      Config
	eng      *sim.Engine
	nodes    []*Node
	gms      *GMS
	strategy core.Strategy
	tr       *trace.Trace

	// Front-end state.
	loads       []int // active connections per node (the LoadReader view)
	maxOut      int
	outstanding int
	peak        int
	next        int
	dropped     int

	// Delay accounting.
	delaySum     time.Duration
	delayMax     time.Duration
	nodeDelaySum []time.Duration
	nodeDelayCnt []int64
}

// New builds a cluster simulation for the given configuration and trace.
func New(cfg Config, tr *trace.Trace) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("cluster: empty trace")
	}
	eng := sim.NewEngine()
	underBound := int(cfg.UnderutilizationFraction * float64(cfg.Params.TLow))

	c := &Cluster{
		cfg:          cfg,
		eng:          eng,
		tr:           tr,
		loads:        make([]int, cfg.Nodes),
		maxOut:       cfg.Params.MaxOutstanding(cfg.Nodes),
		nodeDelaySum: make([]time.Duration, cfg.Nodes),
		nodeDelayCnt: make([]int64, cfg.Nodes),
	}

	diskFor := diskAssignment(tr, cfg.Disks)
	for i := 0; i < cfg.Nodes; i++ {
		n := newNode(i, eng, cfg.Cost, cfg.newCache(), cfg.Disks, underBound)
		n.diskFor = diskFor
		c.nodes = append(c.nodes, n)
	}

	switch cfg.Strategy {
	case WRR:
		c.strategy = core.NewWRR(c)
	case LB:
		c.strategy = core.NewLB(c)
	case LBGC:
		c.strategy = core.NewLBGC(c, cfg.CacheBytes)
	case LARD:
		c.strategy = core.NewLARD(c, cfg.Params)
	case LARDR:
		c.strategy = core.NewLARDR(c, cfg.Params)
	case WRRGMS:
		c.strategy = core.NewWRR(c)
		c.gms = newGMS(c.nodes)
	default:
		return nil, fmt.Errorf("cluster: unknown strategy %v", cfg.Strategy)
	}

	c.scheduleFailures()
	return c, nil
}

// NodeCount implements core.LoadReader.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// Load implements core.LoadReader: the front end's own accounting of
// active (handed-off, incomplete) connections per node.
func (c *Cluster) Load(node int) int { return c.loads[node] }

// Strategy returns the strategy instance driving the cluster, for
// diagnostics (e.g. LARD move counters).
func (c *Cluster) Strategy() core.Strategy { return c.strategy }

// Run replays the entire trace and returns the collected metrics.
func (c *Cluster) Run() Result {
	c.pump()
	c.eng.Run()
	return c.collect()
}

// pump admits requests while capacity remains — the closed loop.
func (c *Cluster) pump() {
	for c.outstanding < c.maxOut && c.next < c.tr.Len() {
		r := c.tr.At(c.next)
		c.next++
		req := core.Request{Target: r.Target, Size: r.Size}
		node := c.strategy.Select(c.eng.Now(), req)
		if node < 0 {
			// Total outage: the request cannot be served.
			c.dropped++
			continue
		}
		c.outstanding++
		if c.outstanding > c.peak {
			c.peak = c.outstanding
		}
		c.loads[node]++
		start := c.eng.Now()
		n := c.nodes[node]
		n.Handle(req, func() {
			c.loads[node]--
			c.outstanding--
			d := c.eng.Now() - start
			c.delaySum += d
			if d > c.delayMax {
				c.delayMax = d
			}
			c.nodeDelaySum[node] += d
			c.nodeDelayCnt[node]++
			c.pump()
		})
	}
}

// scheduleFailures wires the configured failure events into the engine.
func (c *Cluster) scheduleFailures() {
	fa, _ := c.strategy.(core.FailureAware)
	for _, f := range c.cfg.Failures {
		f := f
		c.eng.At(f.DownAt, func() {
			if fa != nil {
				fa.NodeDown(f.Node)
			}
		})
		if f.UpAt > 0 {
			c.eng.At(f.UpAt, func() {
				// A restored node restarts with a cold cache.
				c.nodes[f.Node].cache = c.cfg.newCache()
				if fa != nil {
					fa.NodeUp(f.Node)
				}
				c.pump()
			})
		}
	}
}

// collect assembles the Result after the engine has drained.
func (c *Cluster) collect() Result {
	end := c.eng.Now()
	res := Result{
		Strategy: c.cfg.Strategy.String(),
		Nodes:    c.cfg.Nodes,
		Requests: c.tr.Len() - c.dropped,
		Dropped:  c.dropped,
		SimTime:  end,
	}
	if end > 0 {
		res.Throughput = float64(res.Requests) / end.Seconds()
	}

	var hits, misses, remote, reqs uint64
	var underSum, cpuSum, diskSum float64
	var maxNodeDelay, minNodeDelay time.Duration
	minSet := false
	for i, n := range c.nodes {
		n.finishStats(end)
		st := NodeStats{
			Requests:     n.requests,
			Hits:         n.hits,
			Misses:       n.misses,
			RemoteHits:   n.remote,
			CPUUtil:      n.cpu.Utilization(end),
			UnderFrac:    n.underutilizedFraction(end),
			CacheEntries: n.cache.Len(),
			CacheUsed:    n.cache.Used(),
		}
		var dutil float64
		for _, d := range n.disks {
			dutil += d.Utilization(end)
		}
		st.DiskUtil = dutil / float64(len(n.disks))
		if c.nodeDelayCnt[i] > 0 {
			st.AvgDelay = c.nodeDelaySum[i] / time.Duration(c.nodeDelayCnt[i])
			if !minSet || st.AvgDelay < minNodeDelay {
				minNodeDelay = st.AvgDelay
				minSet = true
			}
			if st.AvgDelay > maxNodeDelay {
				maxNodeDelay = st.AvgDelay
			}
		}
		res.PerNode = append(res.PerNode, st)
		hits += n.hits
		misses += n.misses
		remote += n.remote
		reqs += n.requests
		res.BytesServed += n.bytesSent
		underSum += st.UnderFrac
		cpuSum += st.CPUUtil
		diskSum += st.DiskUtil
	}
	if reqs > 0 {
		res.HitRatio = float64(hits) / float64(reqs)
		res.MissRatio = float64(misses) / float64(reqs)
		res.RemoteFraction = float64(remote) / float64(reqs)
	}
	nn := float64(len(c.nodes))
	res.IdleFraction = underSum / nn
	res.CPUUtilization = cpuSum / nn
	res.DiskUtilization = diskSum / nn
	if res.Requests > 0 {
		res.AvgDelay = c.delaySum / time.Duration(res.Requests)
	}
	res.MaxDelay = c.delayMax
	res.PeakOutstanding = c.peak
	if minSet {
		res.NodeDelayDiff = maxNodeDelay - minNodeDelay
	}
	return res
}

// Simulate is the one-call convenience: build and run.
func Simulate(cfg Config, tr *trace.Trace) (Result, error) {
	c, err := New(cfg, tr)
	if err != nil {
		return Result{}, err
	}
	return c.Run(), nil
}

// diskAssignment stripes targets across disks "in round-robin fashion
// based on decreasing order of request frequency in the trace", returning
// nil when a single disk makes striping moot.
func diskAssignment(tr *trace.Trace, disks int) func(string) int {
	if disks <= 1 {
		return nil
	}
	counts := tr.Counts()
	order := make([]int, len(counts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := counts[order[a]], counts[order[b]]
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})
	assign := make(map[string]int, len(order))
	for rank, idx := range order {
		assign[tr.Targets[idx].Name] = rank % disks
	}
	return func(target string) int { return assign[target] }
}
