package cluster

import (
	"time"

	"lard/internal/cache"
	"lard/internal/core"
	"lard/internal/sim"
)

// Node simulates one back-end: a CPU queue, one or more disk queues, and a
// whole-file main-memory cache (Section 3.1). "The individual processing
// steps for a given request must be performed in sequence, but the CPU and
// disk times for differing requests can be overlapped."
//
// The request lifecycle is:
//
//	connection establishment (CPU)
//	→ on a cache miss: per-block disk read, each block's transmission
//	  immediately following its read (disk, CPU, disk, CPU, …)
//	→ on a cache hit: whole-file data transmission (CPU)
//	→ connection teardown (CPU)
//
// Concurrent misses on the same file coalesce into a single disk read;
// the waiting requests transmit from memory once the read completes.
type Node struct {
	id    int
	eng   *sim.Engine
	cost  CostModel
	cpu   *sim.Server
	disks []*sim.Server
	cache cache.Cache
	gms   *GMS // nil unless the cluster runs a global memory system

	// diskFor maps a target to the disk holding it; nil means disk 0.
	diskFor func(target string) int

	// pending tracks in-progress disk reads for coalescing.
	pending map[string]*pendingRead

	// Active-connection accounting for load and underutilization stats.
	active       int
	underBound   int // underutilized when active < underBound
	underSince   time.Duration
	under        bool
	underTotal   time.Duration
	lastActivity time.Duration

	// Counters.
	requests  uint64
	hits      uint64
	misses    uint64
	remote    uint64 // GMS remote-memory hits
	bytesSent int64
}

type pendingRead struct {
	waiters []func()
}

// newNode constructs a node with the given cache and disk count.
func newNode(id int, eng *sim.Engine, cost CostModel, c cache.Cache, disks int, underBound int) *Node {
	if disks < 1 {
		disks = 1
	}
	n := &Node{
		id:         id,
		eng:        eng,
		cost:       cost,
		cpu:        sim.NewServer(eng, "cpu"),
		cache:      c,
		pending:    make(map[string]*pendingRead),
		underBound: underBound,
		under:      true, // starts idle
	}
	for d := 0; d < disks; d++ {
		n.disks = append(n.disks, sim.NewServer(eng, "disk"))
	}
	return n
}

// ID returns the node's index in the cluster.
func (n *Node) ID() int { return n.id }

// Active returns the number of requests handed to the node and not yet
// completed.
func (n *Node) Active() int { return n.active }

// Cache returns the node's cache, for tests and metrics.
func (n *Node) Cache() cache.Cache { return n.cache }

// Handle accepts a request handed off by the front end. done is invoked
// (once) at the virtual time the request completes. The request carries
// its own connection: establishment before, teardown after (the paper's
// HTTP/1.0 model — one connection per request).
func (n *Node) Handle(req core.Request, done func()) {
	n.adjustActive(+1)
	n.requests++
	n.cpu.Schedule(n.cost.EstablishTime(), func() {
		n.serve(req, func() {
			n.cpu.Schedule(n.cost.TeardownTime(), func() {
				n.adjustActive(-1)
				done()
			})
		})
	})
}

// ServePersistent serves one request riding an already-established
// persistent connection: extraCPU — the establishment/handoff charge
// when the connection just arrived at this node, zero for follow-on
// requests — then the cache/disk/transmit pipeline, with no per-request
// connection setup or teardown. The connection-level teardown is the
// caller's to charge via ChargeTeardown when the connection leaves the
// node.
func (n *Node) ServePersistent(req core.Request, extraCPU time.Duration, done func()) {
	n.adjustActive(+1)
	n.requests++
	finish := func() {
		n.adjustActive(-1)
		done()
	}
	if extraCPU > 0 {
		n.cpu.Schedule(extraCPU, func() { n.serve(req, finish) })
		return
	}
	n.serve(req, finish)
}

// ChargeTeardown schedules connection-teardown CPU not tied to any
// request completion: a persistent connection closing, or a re-handoff
// moving it to another node.
func (n *Node) ChargeTeardown() {
	n.cpu.Schedule(n.cost.TeardownTime(), nil)
}

// serve consults the cache (or the global memory system) and either
// transmits or reads from disk, invoking after when the request's data
// has been sent.
func (n *Node) serve(req core.Request, after func()) {
	if n.gms != nil {
		n.serveGMS(req, after)
		return
	}
	if _, ok := n.cache.Lookup(req.Target); ok {
		n.hits++
		n.transmit(req.Size, after)
		return
	}
	n.misses++
	n.readAndServe(req, after)
}

// transmit sends the whole file from memory, then continues.
func (n *Node) transmit(size int64, after func()) {
	n.bytesSent += size
	n.cpu.Schedule(n.cost.TransmitTime(size), after)
}

// readAndServe performs the disk read for a miss, coalescing concurrent
// requests for the same target onto one read.
//
// The file is read as a single contiguous disk occupancy whose duration is
// the blocked-read total (initial seek + per-4KB transfer + an extra seek
// per 44 KB chunk beyond the first, Section 3.1) — the 14 ms inter-chunk
// charge models the file's own on-disk layout, and "multiple requests
// waiting on the same file from disk can be satisfied with only one disk
// read". Data transmission is processed on the CPU after the read; the CPU
// and disk overlap across *different* requests, while the steps of one
// request remain sequential.
func (n *Node) readAndServe(req core.Request, done func()) {
	if pr, ok := n.pending[req.Target]; ok {
		// Another request is already reading this file; wait for the read
		// and then serve from memory.
		pr.waiters = append(pr.waiters, func() {
			n.transmit(req.Size, done)
		})
		return
	}
	pr := &pendingRead{}
	n.pending[req.Target] = pr

	disk := n.disks[n.diskIndex(req.Target)]
	disk.Schedule(n.cost.DiskReadTime(req.Size), func() {
		// The file is now fully in memory: cache it (the policy may refuse,
		// e.g. an object larger than the cache) and release any coalesced
		// waiters, then transmit to our own client.
		n.insert(req)
		delete(n.pending, req.Target)
		for _, w := range pr.waiters {
			w()
		}
		n.transmit(req.Size, done)
	})
}

// insert places a freshly read file in the node's cache (or the global
// cache when running GMS).
func (n *Node) insert(req core.Request) {
	if n.gms != nil {
		n.gms.insert(n.id, req.Target, req.Size)
		return
	}
	n.cache.Insert(req.Target, req.Size)
}

// diskIndex returns the disk holding target.
func (n *Node) diskIndex(target string) int {
	if n.diskFor == nil || len(n.disks) == 1 {
		return 0
	}
	d := n.diskFor(target)
	if d < 0 || d >= len(n.disks) {
		return 0
	}
	return d
}

// adjustActive updates the active-connection count and integrates
// underutilization time (Section 3.3: "the time that a node's load is less
// than 40% of T_low").
func (n *Node) adjustActive(delta int) {
	now := n.eng.Now()
	if n.under {
		n.underTotal += now - n.underSince
	}
	n.active += delta
	n.under = n.active < n.underBound
	if n.under {
		n.underSince = now
	}
	n.lastActivity = now
}

// finishStats closes the underutilization integral at end time.
func (n *Node) finishStats(end time.Duration) {
	if n.under {
		n.underTotal += end - n.underSince
		n.underSince = end
	}
}

// underutilizedFraction returns the fraction of [0, end] the node spent
// below the underutilization bound.
func (n *Node) underutilizedFraction(end time.Duration) float64 {
	if end <= 0 {
		return 0
	}
	return float64(n.underTotal) / float64(end)
}
