package cluster

import (
	"testing"
	"time"

	"lard/internal/cache"
	"lard/internal/core"
	"lard/internal/sim"
)

// newTestNode builds a bare node for unit-level lifecycle tests.
func newTestNode(t *testing.T, cacheBytes int64, disks int) (*sim.Engine, *Node) {
	t.Helper()
	eng := sim.NewEngine()
	n := newNode(0, eng, DefaultCostModel(), cache.NewGDS(cacheBytes), disks, 10)
	return eng, n
}

func TestNodeHitLifecycleCost(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	// Warm the cache.
	warmDone := false
	n.Handle(core.Request{Target: "/a", Size: 8 << 10}, func() { warmDone = true })
	eng.Run()
	if !warmDone {
		t.Fatal("warm request did not complete")
	}
	// A hit costs exactly establish + transmit + teardown = 930 µs.
	start := eng.Now()
	var end time.Duration
	n.Handle(core.Request{Target: "/a", Size: 8 << 10}, func() { end = eng.Now() })
	eng.Run()
	if got := end - start; got != 930*time.Microsecond {
		t.Fatalf("hit latency = %v, want 930µs", got)
	}
}

func TestNodeMissLifecycleCost(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	var end time.Duration
	n.Handle(core.Request{Target: "/b", Size: 4 << 10}, func() { end = eng.Now() })
	eng.Run()
	// establish(145µs) + read(28ms+410µs) + transmit(8*40µs) + teardown(145µs).
	want := 145*time.Microsecond + 28*time.Millisecond + 410*time.Microsecond +
		8*40*time.Microsecond + 145*time.Microsecond
	if end != want {
		t.Fatalf("miss latency = %v, want %v", end, want)
	}
	if n.hits != 0 || n.misses != 1 {
		t.Fatalf("hits=%d misses=%d", n.hits, n.misses)
	}
}

func TestNodeActiveCountTracksLifecycle(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	n.Handle(core.Request{Target: "/a", Size: 1024}, func() {})
	n.Handle(core.Request{Target: "/b", Size: 1024}, func() {})
	if n.Active() != 2 {
		t.Fatalf("Active = %d, want 2", n.Active())
	}
	eng.Run()
	if n.Active() != 0 {
		t.Fatalf("Active after drain = %d", n.Active())
	}
}

func TestNodeUnderutilizationIntegral(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	// The node idles (active=0 < bound=10) for the first 100ms, then
	// serves one request (still under the bound), so it is under the
	// whole time.
	eng.At(100*time.Millisecond, func() {
		n.Handle(core.Request{Target: "/a", Size: 1024}, func() {})
	})
	eng.Run()
	end := eng.Now()
	n.finishStats(end)
	if got := n.underutilizedFraction(end); got != 1.0 {
		t.Fatalf("under fraction = %v, want 1.0 (never reached bound)", got)
	}
}

func TestNodeLeavesUnderWhenBusy(t *testing.T) {
	eng, n := newTestNode(t, 1<<25, 1)
	// Drive 20 concurrent requests (above the bound of 10) for the whole
	// run: the node must NOT be fully underutilized.
	for i := 0; i < 20; i++ {
		n.Handle(core.Request{Target: "/hot", Size: 64 << 10}, func() {})
	}
	eng.Run()
	end := eng.Now()
	n.finishStats(end)
	if got := n.underutilizedFraction(end); got > 0.5 {
		t.Fatalf("under fraction = %v with 20 concurrent requests", got)
	}
}

func TestNodeDiskStriping(t *testing.T) {
	eng, n := newTestNode(t, 1<<10, 2) // cache too small: all misses
	n.diskFor = func(target string) int {
		if target == "/d1" {
			return 1
		}
		return 0
	}
	n.Handle(core.Request{Target: "/d0", Size: 4 << 10}, func() {})
	n.Handle(core.Request{Target: "/d1", Size: 4 << 10}, func() {})
	eng.Run()
	if n.disks[0].Jobs() != 1 || n.disks[1].Jobs() != 1 {
		t.Fatalf("disk jobs = %d, %d; want 1, 1", n.disks[0].Jobs(), n.disks[1].Jobs())
	}
	// Out-of-range assignments fall back to disk 0.
	n.diskFor = func(string) int { return 99 }
	n.Handle(core.Request{Target: "/d2", Size: 4 << 10}, func() {})
	eng.Run()
	if n.disks[0].Jobs() != 2 {
		t.Fatalf("fallback disk jobs = %d", n.disks[0].Jobs())
	}
}

func TestNodeParallelDisksOverlap(t *testing.T) {
	// Two misses on different disks finish in roughly one read time; on
	// one disk they serialize.
	run := func(disks int) time.Duration {
		eng, n := newTestNode(t, 1<<10, disks)
		if disks == 2 {
			calls := 0
			n.diskFor = func(string) int { calls++; return calls % 2 }
		}
		n.Handle(core.Request{Target: "/x", Size: 4 << 10}, func() {})
		n.Handle(core.Request{Target: "/y", Size: 4 << 10}, func() {})
		eng.Run()
		return eng.Now()
	}
	serial, parallel := run(1), run(2)
	if parallel >= serial {
		t.Fatalf("2 disks (%v) not faster than 1 disk (%v)", parallel, serial)
	}
}

func TestNodeCoalescedWaitersServedFromMemory(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	done := 0
	for i := 0; i < 5; i++ {
		n.Handle(core.Request{Target: "/same", Size: 4 << 10}, func() { done++ })
	}
	eng.Run()
	if done != 5 {
		t.Fatalf("completed %d of 5", done)
	}
	if n.disks[0].Jobs() != 1 {
		t.Fatalf("disk jobs = %d, want 1 (coalesced)", n.disks[0].Jobs())
	}
	if n.misses != 5 {
		t.Fatalf("misses = %d; coalesced requests still count as misses", n.misses)
	}
	// Subsequent request hits.
	n.Handle(core.Request{Target: "/same", Size: 4 << 10}, func() {})
	eng.Run()
	if n.hits != 1 {
		t.Fatalf("hits = %d", n.hits)
	}
}

func TestNodeZeroSizeRequest(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	completed := false
	n.Handle(core.Request{Target: "/empty", Size: 0}, func() { completed = true })
	eng.Run()
	if !completed {
		t.Fatal("zero-size request did not complete")
	}
}

func TestNodeBytesSentAccounting(t *testing.T) {
	eng, n := newTestNode(t, 1<<20, 1)
	n.Handle(core.Request{Target: "/a", Size: 1000}, func() {})
	eng.Run()
	n.Handle(core.Request{Target: "/a", Size: 1000}, func() {})
	eng.Run()
	if n.bytesSent != 2000 {
		t.Fatalf("bytesSent = %d, want 2000 (miss + hit)", n.bytesSent)
	}
}
