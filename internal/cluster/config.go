package cluster

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lard/internal/breaker"
	"lard/internal/cache"
	"lard/internal/core"
	"lard/internal/trace"
	"lard/pkg/lard"
)

// StrategyKind names the request-distribution configurations evaluated in
// the paper's simulations (Section 4).
type StrategyKind int

const (
	// WRR is weighted round-robin (load-only, the baseline).
	WRR StrategyKind = iota
	// LB is hash-based locality partitioning.
	LB
	// LBGC is LB with the idealized front-end global-cache model.
	LBGC
	// LARD is basic locality-aware request distribution.
	LARD
	// LARDR is LARD with replication.
	LARDR
	// WRRGMS is WRR over back ends sharing a global memory system.
	WRRGMS
	// POD is power-of-d-choices with per-node capacity cost (an
	// extension beyond the paper, for heterogeneous fleets).
	POD
	// WLARD is LARD with a weight-scaled imbalance test (likewise an
	// extension for heterogeneous fleets).
	WLARD
)

// AllStrategies returns every configuration simulated by the paper, in
// its presentation order. The heterogeneous-fleet extensions (POD, WLARD)
// are deliberately excluded so figure reproductions stay faithful; the
// hetero experiment sweeps them explicitly.
func AllStrategies() []StrategyKind {
	return []StrategyKind{WRR, LB, LBGC, LARD, LARDR, WRRGMS}
}

// String returns the paper's name for the configuration.
func (k StrategyKind) String() string {
	switch k {
	case WRR:
		return "WRR"
	case LB:
		return "LB"
	case LBGC:
		return "LB/GC"
	case LARD:
		return "LARD"
	case LARDR:
		return "LARD/R"
	case WRRGMS:
		return "WRR/GMS"
	case POD:
		return "POD"
	case WLARD:
		return "WLARD"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(k))
	}
}

// registryName maps a StrategyKind to the pkg/lard registry name that
// builds its dispatch policy. WRR/GMS runs plain WRR at the front end; the
// global memory system is wired into the simulated nodes separately.
func (k StrategyKind) registryName() (string, error) {
	switch k {
	case WRR, WRRGMS:
		return "wrr", nil
	case LB:
		return "lb", nil
	case LBGC:
		return "lb/gc", nil
	case LARD:
		return "lard", nil
	case LARDR:
		return "lard/r", nil
	case POD:
		return "pod", nil
	case WLARD:
		return "wlard", nil
	default:
		return "", fmt.Errorf("cluster: unknown strategy %v", k)
	}
}

// ParseStrategy converts a user-supplied name ("wrr", "lard/r", "lardr",
// "wrr/gms", …) to a StrategyKind.
func ParseStrategy(s string) (StrategyKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "wrr":
		return WRR, nil
	case "lb":
		return LB, nil
	case "lb/gc", "lbgc":
		return LBGC, nil
	case "lard":
		return LARD, nil
	case "lard/r", "lardr":
		return LARDR, nil
	case "wrr/gms", "wrrgms", "gms":
		return WRRGMS, nil
	case "pod":
		return POD, nil
	case "wlard":
		return WLARD, nil
	default:
		return 0, fmt.Errorf("cluster: unknown strategy %q (want wrr, lb, lb/gc, lard, lard/r, wrr/gms, pod, or wlard)", s)
	}
}

// CachePolicy selects the back-end cache replacement policy.
type CachePolicy int

const (
	// GDS is Greedy-Dual-Size, the paper's default.
	GDS CachePolicy = iota
	// LRU is least-recently-used with a large-file admission cutoff.
	LRU
)

// String returns the policy name.
func (p CachePolicy) String() string {
	switch p {
	case GDS:
		return "GDS"
	case LRU:
		return "LRU"
	default:
		return fmt.Sprintf("CachePolicy(%d)", int(p))
	}
}

// FailureEvent schedules a back-end failure and recovery for the failover
// experiments (Section 2.6 discusses recovery; the experiment itself is an
// extension of the paper's evaluation).
type FailureEvent struct {
	Node   int
	DownAt time.Duration
	// UpAt restores the node; zero means the node stays down. A restored
	// node starts with a cold cache.
	UpAt time.Duration
}

// ChurnOp enumerates the scripted membership operations a ChurnEvent can
// apply to the running cluster.
type ChurnOp int

const (
	// ChurnFail marks a node down (Section 2.6 failure).
	ChurnFail ChurnOp = iota
	// ChurnRecover restores a failed node with a cold cache.
	ChurnRecover
	// ChurnJoin adds a brand-new node (cold cache) to the cluster; the
	// event's Node field is ignored and the index is assigned at runtime.
	ChurnJoin
	// ChurnDrain stops new assignments to a node; in-flight work
	// finishes.
	ChurnDrain
	// ChurnUndrain restores a draining node (cache still warm).
	ChurnUndrain
	// ChurnLeave permanently removes a node.
	ChurnLeave
)

// String names the operation.
func (op ChurnOp) String() string {
	switch op {
	case ChurnFail:
		return "fail"
	case ChurnRecover:
		return "recover"
	case ChurnJoin:
		return "join"
	case ChurnDrain:
		return "drain"
	case ChurnUndrain:
		return "undrain"
	case ChurnLeave:
		return "leave"
	default:
		return fmt.Sprintf("ChurnOp(%d)", int(op))
	}
}

// NodeProfile is one simulated node's capacity description: the
// dispatcher-visible core.Profile (thresholds + weight) plus the
// simulator-only service-rate multiplier.
type NodeProfile struct {
	core.Profile

	// Speed scales the node's service rate: every cost-model duration on
	// the node (CPU, disk, transmit, handoff) is divided by Speed, so a
	// Speed-2 node finishes the same work in half the simulated time. 0
	// defaults to the profile's Weight (a "2× node" both advertises and
	// delivers double capacity), or 1 when that is also unset.
	Speed float64
}

// fill resolves zero fields: Weight 0 becomes 1 and Speed 0 follows the
// weight, so declaring just {Weight: 2} yields a node that advertises and
// serves double capacity. Thresholds stay zero here — pkg/lard fills them
// from Params scaled by Weight.
func (p NodeProfile) fill() NodeProfile {
	if p.Weight == 0 {
		p.Weight = 1
	}
	if p.Speed == 0 {
		p.Speed = p.Weight
	}
	return p
}

// ChurnEvent is one scripted membership change at virtual time At. Build
// schedules with the FailAt/RecoverAt/JoinAt/DrainAt/LeaveAt helpers.
type ChurnEvent struct {
	At   time.Duration
	Op   ChurnOp
	Node int

	// Profile, set only on ChurnJoin events, is the joining node's
	// capacity profile (see JoinWithProfileAt). Nil joins a standard
	// uniform node.
	Profile *NodeProfile
}

// FailAt schedules node to fail at t.
func FailAt(node int, t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnFail, Node: node}
}

// RecoverAt schedules node to recover (cold cache) at t.
func RecoverAt(node int, t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnRecover, Node: node}
}

// JoinAt schedules a new node to join at t on the uniform default
// profile.
func JoinAt(t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnJoin}
}

// JoinWithProfileAt schedules a new node to join at t with an explicit
// capacity profile: the dispatcher learns its thresholds and weight (and
// recomputes the admission bound) the moment it joins, and the simulated
// node serves at the profile's Speed.
func JoinWithProfileAt(p NodeProfile, t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnJoin, Profile: &p}
}

// DrainAt schedules node to start draining at t.
func DrainAt(node int, t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnDrain, Node: node}
}

// UndrainAt schedules node to return from draining at t.
func UndrainAt(node int, t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnUndrain, Node: node}
}

// LeaveAt schedules node to leave the cluster permanently at t.
func LeaveAt(node int, t time.Duration) ChurnEvent {
	return ChurnEvent{At: t, Op: ChurnLeave, Node: node}
}

// DefaultCacheBytes is the paper's default per-node cache size: "we chose
// to set the default node cache size in our simulations to 32 MB".
const DefaultCacheBytes = 32 << 20

// DefaultLRUCutoff is the large-file admission cutoff used with the LRU
// policy ("files with a size of more than 500 KB are never cached").
const DefaultLRUCutoff = 500 << 10

// Config describes one simulation run.
type Config struct {
	// Strategy is the request-distribution configuration under test.
	Strategy StrategyKind

	// Nodes is the number of back-end nodes.
	Nodes int

	// CacheBytes is the per-node main-memory cache size.
	CacheBytes int64

	// CachePolicy is the replacement policy (GDS by default).
	CachePolicy CachePolicy

	// LRUCutoff is the LRU large-file admission cutoff (0 = none).
	LRUCutoff int64

	// Disks is the number of disks per node (Figure 13/14 sweeps). Files
	// are striped across disks "in round-robin fashion based on
	// decreasing order of request frequency in the trace".
	Disks int

	// Cost is the processing cost model.
	Cost CostModel

	// Params are the LARD thresholds; they also set the cluster-wide
	// admission bound S for every strategy (the front end "limits the
	// number of outstanding requests at the back ends" under all
	// strategies considered).
	Params core.Params

	// UnderutilizationFraction defines node underutilization as load
	// below this fraction of T_low (the paper uses 40%).
	UnderutilizationFraction float64

	// Profiles optionally describes a heterogeneous fleet: Profiles[i]
	// is node i's capacity profile. It may be shorter than Nodes;
	// unlisted nodes are standard (weight 1, speed 1, the Params
	// thresholds). Zero fields fill as NodeProfile documents, so a fleet
	// of "4 small + 2 big" is just two {Weight: w} entries.
	Profiles []NodeProfile

	// MaxOutstanding, when nonzero, overrides the admission bound the
	// thresholds would derive: the front end keeps at most this many
	// requests in flight per shard (negative = unlimited, as in
	// lard.WithMaxOutstanding). Pinning it lets experiments compare
	// threshold policies at identical offered concurrency, so only
	// request placement — not the budget each policy derives — differs
	// between runs.
	MaxOutstanding int

	// DelaySLO, when positive, classifies each completed request by
	// whether its total delay stayed within this bound; Result.Goodput
	// is the rate of requests that did. Overloaded uniform thresholds on
	// a mixed fleet show up here: the throughput stays flat while
	// goodput collapses on the queued-up small nodes.
	DelaySLO time.Duration

	// Choices is the pod strategy's per-target candidate count (0 = the
	// default 2).
	Choices int

	// Shards partitions the front end's target space over this many
	// independent strategy instances (0 or 1 = the paper's single
	// dispatch point). Values above 1 model a sharded front end: each
	// shard balances on its own 1/S view of the load and enforces its own
	// admission budget, so results deliberately diverge from the paper's.
	Shards int

	// Failures optionally injects back-end failures.
	Failures []FailureEvent

	// Churn optionally scripts runtime membership changes: failures,
	// recoveries, joins, drains, and leaves, applied at their virtual
	// times. Joins extend the cluster beyond Nodes.
	Churn []ChurnEvent

	// SampleEvery, when positive, records a windowed activity timeline
	// (Result.Timeline): one sample per interval with the window's
	// throughput and miss ratio — the churn experiments' time axis.
	SampleEvery time.Duration

	// ReqsPerConn, when >= 1, models persistent connections (P-HTTP,
	// paper Section 5): consecutive trace requests are grouped into
	// connections whose request count is drawn from ConnDist with this
	// mean, each connection charging Cost.HandoffCost on arrival at a
	// back end. 1 means single-request connections — same workload
	// shape as HTTP/1.0 but under the P-HTTP cost model, the sweep's
	// anchor point. 0 keeps the paper's original model (no handoff
	// accounting), preserving the published figures.
	ReqsPerConn int

	// ConnDist is the requests-per-connection distribution: "fixed"
	// (default) or "geometric".
	ConnDist string

	// ConnSeed seeds the connection-length draws (default 1), so runs
	// are reproducible.
	ConnSeed int64

	// ConnPolicy selects the persistent-connection dispatch policy by
	// name — how the session behind each simulated connection trades
	// affinity against locality (pkg/lard's ConnPolicy):
	//
	//   - "pin": the whole connection is served by the back end its
	//     first request's target selected — the per-connection policy
	//     whose lost locality the phttp experiment measures;
	//   - "perreq": every request re-dispatches and each move to a
	//     different back end is charged Cost.HandoffCost + establishment
	//     there (plus teardown on the node it left) — the paper's
	//     multiple-handoff design;
	//   - "costaware": re-dispatches every request but only moves when
	//     the modelled locality gain beats the switch cost; the policy's
	//     thresholds are derived from this Config's CostModel and Params.
	//
	// Empty selects "perreq" when the deprecated RehandoffPerRequest is
	// set and "pin" otherwise.
	ConnPolicy string

	// RehandoffPerRequest is the deprecated boolean form of ConnPolicy:
	// true means "perreq", false means "pin". Ignored when ConnPolicy is
	// set (setting both to conflicting values is a Validate error).
	RehandoffPerRequest bool

	// SessionPolicy, when non-nil, is the connection policy instance the
	// simulation's sessions consult, overriding ConnPolicy /
	// RehandoffPerRequest — the hook for custom lard.ConnPolicy
	// implementations and tuned CostAware configurations.
	SessionPolicy lard.ConnPolicy

	// QuotaRate, when > 0, models the front end's per-client token-bucket
	// quota (internal/quota) in the simulation: each trace request is
	// attributed to a client identity and over-quota requests are shed at
	// the front door (Result.Sheds) instead of admitted. Not supported
	// together with persistent connections (ReqsPerConn >= 1).
	QuotaRate float64

	// QuotaBurst is the per-client burst (0 = max(QuotaRate, 1)).
	QuotaBurst float64

	// QuotaClients is the number of well-behaved client identities the
	// trace is spread over (default 16).
	QuotaClients int

	// AbuseShare is the fraction of trace requests issued by one
	// additional abusive client identity (0 = no abuser). The quota
	// should shed the abuser's excess while the well-behaved clients'
	// requests pass.
	AbuseShare float64

	// QuotaSeed seeds the request→client attribution draws (default 1).
	QuotaSeed int64

	// Breaker, when non-nil, replaces the simulator's failure oracle with
	// detection: a scripted ChurnFail stops the node answering instead of
	// telling the dispatcher, connection attempts to it fail (feeding the
	// per-node circuit breaker, internal/breaker), and the node leaves
	// rotation only when its breaker trips and gates it — the live front
	// end's detection path, under the simulator's virtual clock. Recovery
	// feeds the breaker a probe success and the ramp re-admits traffic.
	// Not supported together with persistent connections.
	Breaker *breaker.Config
}

// profileFor returns node i's filled capacity profile; nodes beyond the
// Profiles slice (including runtime joins without an explicit profile)
// are standard weight-1, speed-1 nodes.
func (c Config) profileFor(i int) NodeProfile {
	if i >= 0 && i < len(c.Profiles) {
		return c.Profiles[i].fill()
	}
	return NodeProfile{}.fill()
}

// coreProfiles returns the dispatcher-visible per-node profiles, or nil
// for a uniform fleet (preserving the paper-exact construction path).
func (c Config) coreProfiles() []core.Profile {
	if len(c.Profiles) == 0 {
		return nil
	}
	out := make([]core.Profile, len(c.Profiles))
	for i := range out {
		out[i] = c.Profiles[i].fill().Profile
	}
	return out
}

// connPolicyName resolves the persistent-connection policy name through
// the shared pkg/lard rule; Validate has already rejected unknown names
// and conflicts, so the error path is unreachable here.
func (c Config) connPolicyName() string {
	name, err := lard.ResolveConnPolicyName(c.ConnPolicy, c.RehandoffPerRequest)
	if err != nil {
		panic(fmt.Sprintf("cluster: unvalidated ConnPolicy: %v", err))
	}
	return name
}

// DefaultConfig returns the paper's default simulation setup for the given
// strategy and cluster size: 32 MB GDS caches, one disk per node, the
// Pentium II cost model, T_low = 25 / T_high = 65 / K = 20 s.
func DefaultConfig(strategy StrategyKind, nodes int) Config {
	return Config{
		Strategy:                 strategy,
		Nodes:                    nodes,
		CacheBytes:               DefaultCacheBytes,
		CachePolicy:              GDS,
		LRUCutoff:                DefaultLRUCutoff,
		Disks:                    1,
		Cost:                     DefaultCostModel(),
		Params:                   core.DefaultParams(),
		UnderutilizationFraction: 0.4,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: Nodes = %d, need >= 1", c.Nodes)
	case c.CacheBytes < 0:
		return fmt.Errorf("cluster: negative CacheBytes")
	case c.Disks < 1:
		return fmt.Errorf("cluster: Disks = %d, need >= 1", c.Disks)
	case c.UnderutilizationFraction < 0 || c.UnderutilizationFraction > 1:
		return fmt.Errorf("cluster: UnderutilizationFraction %v outside [0,1]", c.UnderutilizationFraction)
	case c.Shards < 0:
		return fmt.Errorf("cluster: Shards = %d, need >= 0", c.Shards)
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	for _, f := range c.Failures {
		if f.Node < 0 || f.Node >= c.Nodes {
			return fmt.Errorf("cluster: failure event for node %d of %d", f.Node, c.Nodes)
		}
		if f.UpAt != 0 && f.UpAt <= f.DownAt {
			return fmt.Errorf("cluster: failure event recovers at %v before failing at %v", f.UpAt, f.DownAt)
		}
		if c.Strategy == WRRGMS {
			return fmt.Errorf("cluster: failure injection is not supported with WRR/GMS")
		}
	}
	if len(c.Churn) > 0 && c.Strategy == WRRGMS {
		return fmt.Errorf("cluster: churn is not supported with WRR/GMS")
	}
	for _, ev := range c.Churn {
		if ev.At < 0 {
			return fmt.Errorf("cluster: churn %s at negative time %v", ev.Op, ev.At)
		}
		if ev.Profile != nil {
			if ev.Op != ChurnJoin {
				return fmt.Errorf("cluster: churn %s at %v carries a profile; only joins may", ev.Op, ev.At)
			}
			if err := validateNodeProfile(*ev.Profile); err != nil {
				return fmt.Errorf("cluster: churn join at %v: %w", ev.At, err)
			}
		}
	}
	// Joins assign indexes at runtime, so an event may reference a node
	// beyond Nodes − 1 — but only once enough joins have fired. Replay
	// the schedule chronologically (stable for ties, matching the
	// engine's FIFO order for same-instant events) and reject any event
	// that would reference a node before it exists.
	chrono := append([]ChurnEvent(nil), c.Churn...)
	sort.SliceStable(chrono, func(a, b int) bool { return chrono[a].At < chrono[b].At })
	nodes := c.Nodes
	for _, ev := range chrono {
		if ev.Op == ChurnJoin {
			nodes++
			continue
		}
		if ev.Node < 0 || ev.Node >= nodes {
			return fmt.Errorf("cluster: churn %s at %v references node %d, but only %d nodes exist at that time",
				ev.Op, ev.At, ev.Node, nodes)
		}
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("cluster: negative SampleEvery")
	}
	if len(c.Profiles) > c.Nodes {
		return fmt.Errorf("cluster: %d profiles for %d nodes", len(c.Profiles), c.Nodes)
	}
	for i, p := range c.Profiles {
		if err := validateNodeProfile(p); err != nil {
			return fmt.Errorf("cluster: profile for node %d: %w", i, err)
		}
	}
	if c.DelaySLO < 0 {
		return fmt.Errorf("cluster: negative DelaySLO")
	}
	if c.Choices < 0 {
		return fmt.Errorf("cluster: Choices = %d, need >= 0", c.Choices)
	}
	if c.ReqsPerConn < 0 {
		return fmt.Errorf("cluster: ReqsPerConn = %d, need >= 0", c.ReqsPerConn)
	}
	switch c.ConnDist {
	case "", trace.ConnDistFixed, trace.ConnDistGeometric:
	default:
		return fmt.Errorf("cluster: unknown ConnDist %q (want %q or %q)",
			c.ConnDist, trace.ConnDistFixed, trace.ConnDistGeometric)
	}
	if c.ReqsPerConn >= 1 && c.Strategy == WRRGMS {
		return fmt.Errorf("cluster: persistent connections are not supported with WRR/GMS")
	}
	if _, err := lard.ResolveConnPolicyName(c.ConnPolicy, c.RehandoffPerRequest); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if c.QuotaRate < 0 {
		return fmt.Errorf("cluster: negative QuotaRate")
	}
	if c.AbuseShare < 0 || c.AbuseShare >= 1 {
		return fmt.Errorf("cluster: AbuseShare %v outside [0,1)", c.AbuseShare)
	}
	if c.AbuseShare > 0 && c.QuotaRate <= 0 {
		return fmt.Errorf("cluster: AbuseShare needs QuotaRate > 0")
	}
	if c.ReqsPerConn >= 1 && (c.QuotaRate > 0 || c.Breaker != nil) {
		return fmt.Errorf("cluster: quota/breaker simulation is not supported with persistent connections")
	}
	if c.Breaker != nil && c.Strategy == WRRGMS {
		return fmt.Errorf("cluster: breaker detection is not supported with WRR/GMS")
	}
	// Note scripted failures/churn now compose with every connection
	// policy: the session behind each connection re-dispatches when its
	// node drains, fails, or leaves, so even a pinned connection moves on
	// its next request (PR 3 had to reject this combination).
	return nil
}

// validateNodeProfile rejects unusable profile declarations before fill:
// negative knobs, or thresholds that cross once both are explicit.
func validateNodeProfile(p NodeProfile) error {
	switch {
	case p.Weight < 0:
		return fmt.Errorf("negative Weight %v", p.Weight)
	case p.Speed < 0:
		return fmt.Errorf("negative Speed %v", p.Speed)
	case p.TLow < 0 || p.THigh < 0:
		return fmt.Errorf("negative thresholds (TLow %d, THigh %d)", p.TLow, p.THigh)
	case p.TLow > 0 && p.THigh > 0 && p.THigh <= p.TLow:
		return fmt.Errorf("THigh %d must exceed TLow %d", p.THigh, p.TLow)
	}
	return nil
}

// newCache constructs one back-end cache per the configured policy.
func (c Config) newCache() cache.Cache {
	switch c.CachePolicy {
	case LRU:
		return cache.NewLRUWithCutoff(c.CacheBytes, c.LRUCutoff)
	default:
		return cache.NewGDS(c.CacheBytes)
	}
}
