package cluster

import (
	"fmt"
	"strings"
	"time"

	"lard/internal/cache"
	"lard/internal/core"
)

// StrategyKind names the request-distribution configurations evaluated in
// the paper's simulations (Section 4).
type StrategyKind int

const (
	// WRR is weighted round-robin (load-only, the baseline).
	WRR StrategyKind = iota
	// LB is hash-based locality partitioning.
	LB
	// LBGC is LB with the idealized front-end global-cache model.
	LBGC
	// LARD is basic locality-aware request distribution.
	LARD
	// LARDR is LARD with replication.
	LARDR
	// WRRGMS is WRR over back ends sharing a global memory system.
	WRRGMS
)

// AllStrategies returns every simulated configuration, in the paper's
// presentation order.
func AllStrategies() []StrategyKind {
	return []StrategyKind{WRR, LB, LBGC, LARD, LARDR, WRRGMS}
}

// String returns the paper's name for the configuration.
func (k StrategyKind) String() string {
	switch k {
	case WRR:
		return "WRR"
	case LB:
		return "LB"
	case LBGC:
		return "LB/GC"
	case LARD:
		return "LARD"
	case LARDR:
		return "LARD/R"
	case WRRGMS:
		return "WRR/GMS"
	default:
		return fmt.Sprintf("StrategyKind(%d)", int(k))
	}
}

// registryName maps a StrategyKind to the pkg/lard registry name that
// builds its dispatch policy. WRR/GMS runs plain WRR at the front end; the
// global memory system is wired into the simulated nodes separately.
func (k StrategyKind) registryName() (string, error) {
	switch k {
	case WRR, WRRGMS:
		return "wrr", nil
	case LB:
		return "lb", nil
	case LBGC:
		return "lb/gc", nil
	case LARD:
		return "lard", nil
	case LARDR:
		return "lard/r", nil
	default:
		return "", fmt.Errorf("cluster: unknown strategy %v", k)
	}
}

// ParseStrategy converts a user-supplied name ("wrr", "lard/r", "lardr",
// "wrr/gms", …) to a StrategyKind.
func ParseStrategy(s string) (StrategyKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "wrr":
		return WRR, nil
	case "lb":
		return LB, nil
	case "lb/gc", "lbgc":
		return LBGC, nil
	case "lard":
		return LARD, nil
	case "lard/r", "lardr":
		return LARDR, nil
	case "wrr/gms", "wrrgms", "gms":
		return WRRGMS, nil
	default:
		return 0, fmt.Errorf("cluster: unknown strategy %q (want wrr, lb, lb/gc, lard, lard/r, or wrr/gms)", s)
	}
}

// CachePolicy selects the back-end cache replacement policy.
type CachePolicy int

const (
	// GDS is Greedy-Dual-Size, the paper's default.
	GDS CachePolicy = iota
	// LRU is least-recently-used with a large-file admission cutoff.
	LRU
)

// String returns the policy name.
func (p CachePolicy) String() string {
	switch p {
	case GDS:
		return "GDS"
	case LRU:
		return "LRU"
	default:
		return fmt.Sprintf("CachePolicy(%d)", int(p))
	}
}

// FailureEvent schedules a back-end failure and recovery for the failover
// experiments (Section 2.6 discusses recovery; the experiment itself is an
// extension of the paper's evaluation).
type FailureEvent struct {
	Node   int
	DownAt time.Duration
	// UpAt restores the node; zero means the node stays down. A restored
	// node starts with a cold cache.
	UpAt time.Duration
}

// DefaultCacheBytes is the paper's default per-node cache size: "we chose
// to set the default node cache size in our simulations to 32 MB".
const DefaultCacheBytes = 32 << 20

// DefaultLRUCutoff is the large-file admission cutoff used with the LRU
// policy ("files with a size of more than 500 KB are never cached").
const DefaultLRUCutoff = 500 << 10

// Config describes one simulation run.
type Config struct {
	// Strategy is the request-distribution configuration under test.
	Strategy StrategyKind

	// Nodes is the number of back-end nodes.
	Nodes int

	// CacheBytes is the per-node main-memory cache size.
	CacheBytes int64

	// CachePolicy is the replacement policy (GDS by default).
	CachePolicy CachePolicy

	// LRUCutoff is the LRU large-file admission cutoff (0 = none).
	LRUCutoff int64

	// Disks is the number of disks per node (Figure 13/14 sweeps). Files
	// are striped across disks "in round-robin fashion based on
	// decreasing order of request frequency in the trace".
	Disks int

	// Cost is the processing cost model.
	Cost CostModel

	// Params are the LARD thresholds; they also set the cluster-wide
	// admission bound S for every strategy (the front end "limits the
	// number of outstanding requests at the back ends" under all
	// strategies considered).
	Params core.Params

	// UnderutilizationFraction defines node underutilization as load
	// below this fraction of T_low (the paper uses 40%).
	UnderutilizationFraction float64

	// Shards partitions the front end's target space over this many
	// independent strategy instances (0 or 1 = the paper's single
	// dispatch point). Values above 1 model a sharded front end: each
	// shard balances on its own 1/S view of the load and enforces its own
	// admission budget, so results deliberately diverge from the paper's.
	Shards int

	// Failures optionally injects back-end failures.
	Failures []FailureEvent
}

// DefaultConfig returns the paper's default simulation setup for the given
// strategy and cluster size: 32 MB GDS caches, one disk per node, the
// Pentium II cost model, T_low = 25 / T_high = 65 / K = 20 s.
func DefaultConfig(strategy StrategyKind, nodes int) Config {
	return Config{
		Strategy:                 strategy,
		Nodes:                    nodes,
		CacheBytes:               DefaultCacheBytes,
		CachePolicy:              GDS,
		LRUCutoff:                DefaultLRUCutoff,
		Disks:                    1,
		Cost:                     DefaultCostModel(),
		Params:                   core.DefaultParams(),
		UnderutilizationFraction: 0.4,
	}
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("cluster: Nodes = %d, need >= 1", c.Nodes)
	case c.CacheBytes < 0:
		return fmt.Errorf("cluster: negative CacheBytes")
	case c.Disks < 1:
		return fmt.Errorf("cluster: Disks = %d, need >= 1", c.Disks)
	case c.UnderutilizationFraction < 0 || c.UnderutilizationFraction > 1:
		return fmt.Errorf("cluster: UnderutilizationFraction %v outside [0,1]", c.UnderutilizationFraction)
	case c.Shards < 0:
		return fmt.Errorf("cluster: Shards = %d, need >= 0", c.Shards)
	}
	if err := c.Cost.Validate(); err != nil {
		return err
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	for _, f := range c.Failures {
		if f.Node < 0 || f.Node >= c.Nodes {
			return fmt.Errorf("cluster: failure event for node %d of %d", f.Node, c.Nodes)
		}
		if f.UpAt != 0 && f.UpAt <= f.DownAt {
			return fmt.Errorf("cluster: failure event recovers at %v before failing at %v", f.UpAt, f.DownAt)
		}
		if c.Strategy == WRRGMS {
			return fmt.Errorf("cluster: failure injection is not supported with WRR/GMS")
		}
	}
	return nil
}

// newCache constructs one back-end cache per the configured policy.
func (c Config) newCache() cache.Cache {
	switch c.CachePolicy {
	case LRU:
		return cache.NewLRUWithCutoff(c.CacheBytes, c.LRUCutoff)
	default:
		return cache.NewGDS(c.CacheBytes)
	}
}
