package cluster

import (
	"fmt"
	"math"
	"testing"
	"time"

	"lard/internal/trace"
)

// repeatTrace builds a trace of n requests cycling over the given targets.
func repeatTrace(n int, targets ...trace.Target) *trace.Trace {
	tr := &trace.Trace{Name: "test", Targets: targets}
	for i := 0; i < n; i++ {
		tr.Requests = append(tr.Requests, int32(i%len(targets)))
	}
	return tr
}

// zipfTrace builds a cache-pressure workload: files of fileSize bytes with
// Zipf(alpha) popularity.
func zipfTrace(files int, fileSize int64, reqs int, alpha float64, seed int64) *trace.Trace {
	cfg := trace.SyntheticConfig{
		Name:         "zipf",
		Targets:      files,
		Requests:     reqs,
		DataSetBytes: int64(files) * fileSize,
		ZipfAlpha:    alpha,
		SizeSigma:    0.3,
		MinFileBytes: fileSize / 2,
	}
	return trace.MustGenerate(cfg, seed)
}

func TestSingleNodeCachedThroughputMatchesCostModel(t *testing.T) {
	// One 8 KB target requested repeatedly: after the first (cold) miss
	// everything is a CPU-bound cache hit, so throughput must approach the
	// paper's ≈1075 req/s calibration point.
	cfg := DefaultConfig(WRR, 1)
	tr := repeatTrace(5000, trace.Target{Name: "/doc.html", Size: 8 << 10})
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 5000 {
		t.Fatalf("Requests = %d", res.Requests)
	}
	if res.Throughput < 1000 || res.Throughput > 1100 {
		t.Fatalf("throughput = %.1f req/s, want ≈1075", res.Throughput)
	}
	// The initial closed-loop burst admits S = 26 requests before the
	// first (coalesced) disk read completes; all of them count as misses,
	// everything afterwards hits.
	s := cfg.Params.MaxOutstanding(1)
	if res.PerNode[0].Misses != uint64(s) {
		t.Fatalf("misses = %d, want %d (initial burst)", res.PerNode[0].Misses, s)
	}
	if res.MissRatio > 0.01 {
		t.Fatalf("miss ratio = %v", res.MissRatio)
	}
}

func TestAdmissionBoundRespected(t *testing.T) {
	cfg := DefaultConfig(WRR, 4)
	tr := repeatTrace(20000, trace.Target{Name: "/x", Size: 4 << 10})
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	s := cfg.Params.MaxOutstanding(4)
	if res.PeakOutstanding > s {
		t.Fatalf("peak outstanding %d exceeds S = %d", res.PeakOutstanding, s)
	}
	// The closed loop should actually reach the bound on a long trace.
	if res.PeakOutstanding < s {
		t.Fatalf("peak outstanding %d never reached S = %d", res.PeakOutstanding, s)
	}
}

func TestMissCoalescing(t *testing.T) {
	// Many concurrent requests for the same cold file must trigger exactly
	// one disk read ("multiple requests waiting on the same file from disk
	// can be satisfied with only one disk read").
	cfg := DefaultConfig(WRR, 1)
	tr := repeatTrace(50, trace.Target{Name: "/cold.bin", Size: 4 << 10})
	c, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	// All S initially admitted requests miss (the file is cold), but they
	// coalesce onto a single disk read: one 4 KB file = one block = one
	// disk job for the whole run.
	if got := c.nodes[0].disks[0].Jobs(); got != 1 {
		t.Fatalf("disk jobs = %d, want 1", got)
	}
	s := cfg.Params.MaxOutstanding(1)
	if res.PerNode[0].Misses != uint64(s) {
		t.Fatalf("misses = %d, want %d", res.PerNode[0].Misses, s)
	}
}

func TestUncacheableFileAlwaysMisses(t *testing.T) {
	cfg := DefaultConfig(WRR, 1)
	cfg.CacheBytes = 1 << 20
	tr := repeatTrace(10, trace.Target{Name: "/huge.bin", Size: 2 << 20})
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.HitRatio != 0 {
		t.Fatalf("hit ratio = %v for uncacheable file", res.HitRatio)
	}
}

func TestWRRBalancesLoadAcrossNodes(t *testing.T) {
	cfg := DefaultConfig(WRR, 4)
	tr := zipfTrace(200, 8<<10, 20000, 0.9, 1)
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var min, max uint64 = math.MaxUint64, 0
	for _, n := range res.PerNode {
		if n.Requests < min {
			min = n.Requests
		}
		if n.Requests > max {
			max = n.Requests
		}
	}
	// WRR balances *active connections*, not exact request counts; with
	// heterogeneous service times the counts drift a little.
	if float64(max-min) > 0.15*float64(max) {
		t.Fatalf("WRR imbalance: min %d, max %d requests", min, max)
	}
}

func TestLARDBeatsWRRWhenWorkingSetExceedsNodeCache(t *testing.T) {
	// The paper's headline: with a working set far above one node's cache
	// but near the cluster's aggregate, LARD achieves a much lower miss
	// ratio and much higher throughput than WRR.
	const nodes = 4
	tr := zipfTrace(2000, 16<<10, 60000, 0.7, 2) // ~32 MB working set

	mk := func(k StrategyKind) Result {
		cfg := DefaultConfig(k, nodes)
		cfg.CacheBytes = 8 << 20 // 8 MB per node, 32 MB aggregate
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wrr, lard := mk(WRR), mk(LARD)
	if lard.MissRatio >= wrr.MissRatio/2 {
		t.Fatalf("LARD miss %.3f not well below WRR miss %.3f", lard.MissRatio, wrr.MissRatio)
	}
	if lard.Throughput <= wrr.Throughput*1.5 {
		t.Fatalf("LARD throughput %.0f not well above WRR %.0f", lard.Throughput, wrr.Throughput)
	}
}

func TestAllStrategiesServeEveryRequest(t *testing.T) {
	tr := zipfTrace(300, 8<<10, 5000, 0.9, 3)
	for _, k := range AllStrategies() {
		cfg := DefaultConfig(k, 3)
		cfg.CacheBytes = 2 << 20
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if res.Requests != tr.Len() || res.Dropped != 0 {
			t.Fatalf("%v: served %d/%d, dropped %d", k, res.Requests, tr.Len(), res.Dropped)
		}
		var nodeReqs uint64
		for _, n := range res.PerNode {
			nodeReqs += n.Requests
		}
		if nodeReqs != uint64(tr.Len()) {
			t.Fatalf("%v: node request sum %d != %d", k, nodeReqs, tr.Len())
		}
		if res.HitRatio+res.MissRatio < 0.999 || res.HitRatio+res.MissRatio > 1.001 {
			t.Fatalf("%v: hit+miss = %v", k, res.HitRatio+res.MissRatio)
		}
		if res.Throughput <= 0 || res.SimTime <= 0 {
			t.Fatalf("%v: degenerate result %+v", k, res)
		}
	}
}

func TestGMSAggregatesCacheAndCountsRemoteHits(t *testing.T) {
	// Working set fits the aggregate cache but not one node's: WRR/GMS
	// must hit mostly in (global) memory, with many remote hits.
	tr := zipfTrace(500, 16<<10, 20000, 0.5, 4) // ~8 MB working set
	cfg := DefaultConfig(WRRGMS, 4)
	cfg.CacheBytes = 3 << 20 // 12 MB aggregate
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteFraction == 0 {
		t.Fatal("no remote hits recorded under GMS with WRR distribution")
	}
	// Plain WRR with the same node cache must miss far more often: the
	// global memory turns most of its disk reads into remote-memory hits.
	cfgW := DefaultConfig(WRR, 4)
	cfgW.CacheBytes = 3 << 20
	wrr, err := Simulate(cfgW, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissRatio >= wrr.MissRatio*0.7 {
		t.Fatalf("GMS miss %v not well below WRR miss %v", res.MissRatio, wrr.MissRatio)
	}
}

func TestGMSSlowerThanLARDFasterThanWRR(t *testing.T) {
	tr := zipfTrace(1500, 16<<10, 40000, 0.7, 5)
	run := func(k StrategyKind) Result {
		cfg := DefaultConfig(k, 4)
		cfg.CacheBytes = 6 << 20
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wrr, gms, lard := run(WRR), run(WRRGMS), run(LARDR)
	if gms.Throughput <= wrr.Throughput {
		t.Fatalf("GMS %.0f not above WRR %.0f", gms.Throughput, wrr.Throughput)
	}
	if gms.Throughput >= lard.Throughput {
		t.Fatalf("GMS %.0f not below LARD/R %.0f", gms.Throughput, lard.Throughput)
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := zipfTrace(300, 8<<10, 8000, 0.9, 6)
	cfg := DefaultConfig(LARDR, 3)
	cfg.CacheBytes = 2 << 20
	a, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.SimTime != b.SimTime || a.Throughput != b.Throughput ||
		a.HitRatio != b.HitRatio || a.AvgDelay != b.AvgDelay {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
}

func TestFailureInjectionAndRecovery(t *testing.T) {
	tr := zipfTrace(200, 8<<10, 30000, 0.9, 7)
	cfg := DefaultConfig(LARD, 3)
	cfg.CacheBytes = 4 << 20
	cfg.Failures = []FailureEvent{{Node: 1, DownAt: 2 * time.Second, UpAt: 6 * time.Second}}
	c, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run()
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests during partial failure", res.Dropped)
	}
	if res.Requests != tr.Len() {
		t.Fatalf("served %d of %d", res.Requests, tr.Len())
	}
	// The failed node must have served strictly fewer requests than its
	// peers, but some (before failure and after recovery).
	n1 := res.PerNode[1].Requests
	if n1 == 0 {
		t.Fatal("failed node served nothing despite recovery")
	}
	if n1 >= res.PerNode[0].Requests || n1 >= res.PerNode[2].Requests {
		t.Fatalf("failed node served %d, peers %d/%d — no failure effect visible",
			n1, res.PerNode[0].Requests, res.PerNode[2].Requests)
	}
}

func TestFailureValidation(t *testing.T) {
	tr := repeatTrace(10, trace.Target{Name: "/x", Size: 100})
	cfg := DefaultConfig(LARD, 2)
	cfg.Failures = []FailureEvent{{Node: 5, DownAt: time.Second}}
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("out-of-range failure node accepted")
	}
	cfg = DefaultConfig(LARD, 2)
	cfg.Failures = []FailureEvent{{Node: 0, DownAt: 2 * time.Second, UpAt: time.Second}}
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("recovery before failure accepted")
	}
	cfg = DefaultConfig(WRRGMS, 2)
	cfg.Failures = []FailureEvent{{Node: 0, DownAt: time.Second}}
	if _, err := New(cfg, tr); err == nil {
		t.Fatal("failure injection with GMS accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	tr := repeatTrace(10, trace.Target{Name: "/x", Size: 100})
	bad := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CacheBytes = -1 },
		func(c *Config) { c.Disks = 0 },
		func(c *Config) { c.UnderutilizationFraction = 2 },
		func(c *Config) { c.Cost.CPUSpeed = 0 },
		func(c *Config) { c.Params.TLow = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(WRR, 2)
		mutate(&cfg)
		if _, err := New(cfg, tr); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(DefaultConfig(WRR, 2), nil); err == nil {
		t.Fatal("nil trace accepted")
	}
	if _, err := New(DefaultConfig(WRR, 2), &trace.Trace{Name: "empty"}); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestLRUPolicyRuns(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	cfg.CachePolicy = LRU
	cfg.CacheBytes = 2 << 20
	tr := zipfTrace(200, 8<<10, 5000, 0.9, 8)
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != tr.Len() {
		t.Fatalf("served %d", res.Requests)
	}
}

func TestMultipleDisksIncreaseDiskBoundThroughput(t *testing.T) {
	// A 100% miss workload (cache too small) is disk-bound; doubling the
	// disks should raise throughput substantially (Figure 13's mechanism).
	files := 400
	tr := zipfTrace(files, 32<<10, 8000, 0.05, 9) // near-uniform: no locality
	run := func(disks int) Result {
		cfg := DefaultConfig(WRR, 2)
		cfg.CacheBytes = 1 << 20 // tiny: almost everything misses
		cfg.Disks = disks
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one, four := run(1), run(4)
	if four.Throughput < one.Throughput*1.8 {
		t.Fatalf("4 disks %.0f req/s vs 1 disk %.0f req/s: want ≥1.8x", four.Throughput, one.Throughput)
	}
}

func TestCPUSpeedHelpsOnlyCacheBoundStrategies(t *testing.T) {
	// Figures 11/12: WRR stays disk-bound and gains little from CPU
	// speed; LARD/R's cache aggregation makes it CPU-bound, so it scales.
	// Working set (128 MB) far exceeds even the scaled node cache, as in
	// the paper's Rice trace.
	tr := zipfTrace(8000, 16<<10, 60000, 1.1, 10)
	run := func(k StrategyKind, speed float64, cacheMul float64) Result {
		cfg := DefaultConfig(k, 4)
		cfg.CacheBytes = int64(4 * cacheMul * (1 << 20))
		cfg.Cost = cfg.Cost.WithCPUSpeed(speed)
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wrr1, wrr4 := run(WRR, 1, 1), run(WRR, 4, 3)
	lard1, lard4 := run(LARDR, 1, 1), run(LARDR, 4, 3)
	wrrGain := wrr4.Throughput / wrr1.Throughput
	lardGain := lard4.Throughput / lard1.Throughput
	if lardGain < wrrGain*1.2 {
		t.Fatalf("LARD/R CPU-scaling gain %.2fx not well above WRR's %.2fx", lardGain, wrrGain)
	}
	if lard4.Throughput < wrr4.Throughput*1.5 {
		t.Fatalf("at 4x CPU, LARD/R %.0f req/s not well above WRR %.0f req/s",
			lard4.Throughput, wrr4.Throughput)
	}
}

func TestIdleFractionOrdering(t *testing.T) {
	// WRR has the best load balancing (lowest idle time); LB the worst.
	tr := zipfTrace(800, 8<<10, 30000, 1.1, 11)
	run := func(k StrategyKind) Result {
		cfg := DefaultConfig(k, 4)
		cfg.CacheBytes = 4 << 20
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wrr, lb := run(WRR), run(LB)
	if wrr.IdleFraction >= lb.IdleFraction {
		t.Fatalf("WRR idle %.3f not below LB idle %.3f", wrr.IdleFraction, lb.IdleFraction)
	}
}

func TestResultString(t *testing.T) {
	res := Result{Strategy: "LARD", Nodes: 4, Throughput: 1234.5, MissRatio: 0.05}
	s := res.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestDiskAssignmentStripesByFrequency(t *testing.T) {
	tr := &trace.Trace{
		Name: "stripe",
		Targets: []trace.Target{
			{Name: "/hot", Size: 1}, {Name: "/warm", Size: 1}, {Name: "/cold", Size: 1},
		},
		Requests: []int32{0, 0, 0, 1, 1, 2},
	}
	assign := diskAssignment(tr, 2)
	// Frequency order: /hot(3), /warm(2), /cold(1) → disks 0, 1, 0.
	if assign("/hot") != 0 || assign("/warm") != 1 || assign("/cold") != 0 {
		t.Fatalf("assignment = %d %d %d", assign("/hot"), assign("/warm"), assign("/cold"))
	}
	if diskAssignment(tr, 1) != nil {
		t.Fatal("single-disk assignment should be nil")
	}
}

func TestStrategyParsing(t *testing.T) {
	for _, k := range AllStrategies() {
		got, err := ParseStrategy(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseStrategy(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
	if got, _ := ParseStrategy("lardr"); got != LARDR {
		t.Fatalf("lardr alias = %v", got)
	}
}

func TestDelayAccounting(t *testing.T) {
	cfg := DefaultConfig(WRR, 1)
	tr := repeatTrace(100, trace.Target{Name: "/x", Size: 8 << 10})
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgDelay <= 0 || res.MaxDelay < res.AvgDelay {
		t.Fatalf("delays: avg %v max %v", res.AvgDelay, res.MaxDelay)
	}
	// With S=26 admitted to a single FIFO CPU, the max delay is roughly
	// S × service time; it must exceed a single service time.
	if res.MaxDelay < 930*time.Microsecond {
		t.Fatalf("max delay %v below one service time", res.MaxDelay)
	}
}

func TestPerNodeCacheStatsExposed(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	tr := zipfTrace(100, 8<<10, 2000, 0.9, 12)
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	var entries int
	for _, n := range res.PerNode {
		entries += n.CacheEntries
		if n.CacheUsed > cfg.CacheBytes {
			t.Fatalf("cache used %d exceeds capacity", n.CacheUsed)
		}
	}
	if entries == 0 {
		t.Fatal("no cached entries reported")
	}
}

func ExampleSimulate() {
	tr := repeatTrace(1000, trace.Target{Name: "/index.html", Size: 8 << 10})
	res, err := Simulate(DefaultConfig(LARD, 2), tr)
	if err != nil {
		panic(err)
	}
	// The initial burst of S = 91 admitted requests misses (coalesced to
	// one disk read); the remaining 909 hit.
	fmt.Printf("served %d requests, miss ratio %.4f\n", res.Requests, res.MissRatio)
	// Output: served 1000 requests, miss ratio 0.0910
}
