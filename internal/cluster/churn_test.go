package cluster

import (
	"testing"
	"time"
)

// churnConfig is the shared setup of the churn tests: a cache-pressure
// workload (working set ≈ 3 node caches over 4 nodes) with timeline
// sampling on.
func churnConfig(k StrategyKind) Config {
	cfg := DefaultConfig(k, 4)
	cfg.CacheBytes = 64 << 10
	return cfg
}

// TestChurnFailRecoverRewarmsCache pins the Section 2.6 recovery story
// numerically on the scripted fail-at-T/recover-at-2T schedule: when the
// failed node rejoins with a cold cache, LARD's windowed miss ratio spikes
// (the node's targets were re-assigned at failure and now re-assign back
// to it as first-time assignments) and then decays as the cache re-warms.
// WRR, which never had cache aggregation to lose, shows no comparable
// recovery dynamics — its miss ratio is high throughout.
func TestChurnFailRecoverRewarmsCache(t *testing.T) {
	tr := zipfTrace(48, 4<<10, 60000, 0.8, 7)

	run := func(k StrategyKind) Result {
		t.Helper()
		base, err := Simulate(churnConfig(k), tr)
		if err != nil {
			t.Fatal(err)
		}
		cfg := churnConfig(k)
		failAt := base.SimTime / 3
		recoverAt := 2 * base.SimTime / 3
		cfg.Churn = []ChurnEvent{FailAt(1, failAt), RecoverAt(1, recoverAt)}
		cfg.SampleEvery = base.SimTime / 60
		res, err := Simulate(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Dropped != 0 {
			t.Fatalf("%s dropped %d requests with 3 surviving nodes", k, res.Dropped)
		}
		return res
	}

	lard := run(LARD)
	wrr := run(WRR)

	// Locate the recovery point in LARD's timeline: AliveNodes goes
	// 4 → 3 → 4.
	recIdx := -1
	sawFailure := false
	for i, s := range lard.Timeline {
		if s.AliveNodes == 3 {
			sawFailure = true
		}
		if sawFailure && s.AliveNodes == 4 {
			recIdx = i
			break
		}
	}
	if !sawFailure || recIdx < 0 {
		t.Fatalf("LARD timeline never showed failure+recovery: %+v", lard.Timeline)
	}
	tail := lard.Timeline[recIdx:]
	if len(tail) < 6 {
		t.Fatalf("only %d samples after recovery; lengthen the trace", len(tail))
	}

	// The rejoined node's cold cache must spike the windowed miss ratio
	// right after recovery...
	spike := maxMiss(tail[:3])
	if spike < 0.10 {
		t.Fatalf("post-recovery miss spike = %.3f, want a visible cold-cache spike", spike)
	}
	// ...and the spike must decay as LARD re-warms the cache: the last
	// third of the run settles well below the spike.
	settled := avgMiss(tail[2*len(tail)/3:])
	if settled > spike*0.5 {
		t.Fatalf("miss ratio did not decay after recovery: spike %.3f, settled %.3f", spike, settled)
	}

	// WRR has no locality to rebuild: with the working set over the node
	// cache, its steady-state miss ratio stays above LARD's settled one.
	if wrr.MissRatio < lard.MissRatio {
		t.Fatalf("WRR overall miss %.3f below LARD %.3f despite churn", wrr.MissRatio, lard.MissRatio)
	}
	if settled > wrr.MissRatio {
		t.Fatalf("LARD settled windowed miss %.3f above WRR average %.3f — cache never re-aggregated",
			settled, wrr.MissRatio)
	}
}

func maxMiss(ss []TimelineSample) float64 {
	m := 0.0
	for _, s := range ss {
		if s.MissRatio > m {
			m = s.MissRatio
		}
	}
	return m
}

func avgMiss(ss []TimelineSample) float64 {
	if len(ss) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range ss {
		sum += s.MissRatio
	}
	return sum / float64(len(ss))
}

// TestChurnJoinDrainLeave exercises the remaining scripted operations in
// one run: a node joins mid-run and picks up traffic, a draining node
// stops receiving new work, and a removed node never serves again.
func TestChurnJoinDrainLeave(t *testing.T) {
	tr := zipfTrace(32, 4<<10, 30000, 0.8, 11)
	base, err := Simulate(churnConfig(LARDR), tr)
	if err != nil {
		t.Fatal(err)
	}

	cfg := churnConfig(LARDR)
	cfg.Churn = []ChurnEvent{
		JoinAt(base.SimTime / 4),     // node 4 appears
		DrainAt(1, base.SimTime/2),   // node 1 drains...
		LeaveAt(1, 3*base.SimTime/4), // ...and leaves for good
		UndrainAt(0, base.SimTime/3), // no-op: node 0 was never draining
	}
	cfg.SampleEvery = base.SimTime / 30
	res, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}

	if res.Nodes != 5 {
		t.Fatalf("Result.Nodes = %d, want 5 after join", res.Nodes)
	}
	if len(res.PerNode) != 5 {
		t.Fatalf("PerNode has %d entries", len(res.PerNode))
	}
	if res.PerNode[4].Requests == 0 {
		t.Fatal("joined node never served a request")
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests", res.Dropped)
	}
	if res.Requests != tr.Len() {
		t.Fatalf("served %d of %d requests", res.Requests, tr.Len())
	}

	// The timeline's alive count must reflect the schedule: up to 5 after
	// the join, down to 4 after the drain, and still 4 after the leave
	// (drain and leave overlap on node 1).
	peak := 0
	for _, s := range res.Timeline {
		if s.AliveNodes > peak {
			peak = s.AliveNodes
		}
	}
	if peak != 5 {
		t.Fatalf("timeline peak alive = %d, want 5", peak)
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.AliveNodes != 4 {
		t.Fatalf("final alive = %d, want 4", last.AliveNodes)
	}
}

// TestSamplingDoesNotAlterMetrics pins that turning the timeline sampler
// on is purely observational: the pending tick after the last completion
// is cancelled, so SimTime and Throughput match the unsampled run
// exactly (the engine is deterministic).
func TestSamplingDoesNotAlterMetrics(t *testing.T) {
	tr := zipfTrace(16, 4<<10, 5000, 0.8, 3)
	plain, err := Simulate(DefaultConfig(LARD, 2), tr)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(LARD, 2)
	// A coarse window: without cancellation the trailing tick would
	// inflate SimTime by up to half the run.
	cfg.SampleEvery = plain.SimTime / 2
	sampled, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.SimTime != plain.SimTime {
		t.Fatalf("SimTime %v with sampling, %v without", sampled.SimTime, plain.SimTime)
	}
	if sampled.Throughput != plain.Throughput {
		t.Fatalf("Throughput %v with sampling, %v without", sampled.Throughput, plain.Throughput)
	}
	if len(sampled.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	total := 0
	for _, s := range sampled.Timeline {
		total += s.Completed
	}
	if total != sampled.Requests {
		t.Fatalf("timeline windows cover %d of %d requests", total, sampled.Requests)
	}
}

// TestChurnValidation covers the new Config.Validate paths.
func TestChurnValidation(t *testing.T) {
	cfg := DefaultConfig(LARD, 2)
	cfg.Churn = []ChurnEvent{FailAt(5, time.Second)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("out-of-range churn node accepted")
	}
	cfg.Churn = []ChurnEvent{JoinAt(time.Second), FailAt(2, 2*time.Second)}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("join-extended index rejected: %v", err)
	}
	// Referencing the joined node before its join must be rejected, not
	// silently dropped at runtime.
	cfg.Churn = []ChurnEvent{JoinAt(2 * time.Second), FailAt(2, time.Second)}
	if err := cfg.Validate(); err == nil {
		t.Fatal("fail-before-join accepted")
	}
	cfg.Churn = []ChurnEvent{{At: -time.Second, Op: ChurnFail, Node: 0}}
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative churn time accepted")
	}
	cfg.Churn = nil
	cfg.SampleEvery = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative SampleEvery accepted")
	}
	gms := DefaultConfig(WRRGMS, 2)
	gms.Churn = []ChurnEvent{JoinAt(time.Second)}
	if err := gms.Validate(); err == nil {
		t.Fatal("churn with WRR/GMS accepted")
	}
}
