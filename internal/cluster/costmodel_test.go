package cluster

import (
	"testing"
	"time"
)

func TestCostModelPaperCalibration(t *testing.T) {
	m := DefaultCostModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// "Connection establishment and teardown costs are set at 145 µs of
	// CPU time each."
	if m.EstablishTime() != 145*time.Microsecond {
		t.Fatalf("EstablishTime = %v", m.EstablishTime())
	}
	if m.TeardownTime() != 145*time.Microsecond {
		t.Fatalf("TeardownTime = %v", m.TeardownTime())
	}
	// "An 8 KByte document can be served from the main memory cache at a
	// rate of approximately 1075 requests/sec": 145+145+16·40 = 930 µs.
	svc := m.CachedServiceTime(8 << 10)
	if svc != 930*time.Microsecond {
		t.Fatalf("CachedServiceTime(8KB) = %v, want 930µs", svc)
	}
	rate := 1 / svc.Seconds()
	if rate < 1070 || rate > 1080 {
		t.Fatalf("implied cached rate = %.0f req/s, want ≈1075", rate)
	}
}

func TestTransmitTimeRoundsUpPerUnit(t *testing.T) {
	m := DefaultCostModel()
	if got := m.TransmitTime(1); got != 40*time.Microsecond {
		t.Fatalf("TransmitTime(1) = %v", got)
	}
	if got := m.TransmitTime(512); got != 40*time.Microsecond {
		t.Fatalf("TransmitTime(512) = %v", got)
	}
	if got := m.TransmitTime(513); got != 80*time.Microsecond {
		t.Fatalf("TransmitTime(513) = %v", got)
	}
	if got := m.TransmitTime(0); got != 0 {
		t.Fatalf("TransmitTime(0) = %v", got)
	}
}

func TestDiskReadTimeSmallFile(t *testing.T) {
	m := DefaultCostModel()
	// A 4 KB file: 28 ms latency + one 410 µs transfer unit.
	want := 28*time.Millisecond + 410*time.Microsecond
	if got := m.DiskReadTime(4 << 10); got != want {
		t.Fatalf("DiskReadTime(4KB) = %v, want %v", got, want)
	}
	// "Approximately 10 MB/s peak transfer rate": 4 KB / 410 µs ≈ 9.99 MB/s.
	rate := float64(4<<10) / (410 * time.Microsecond).Seconds() / (1 << 20)
	if rate < 9.5 || rate > 10.5 {
		t.Fatalf("implied transfer rate = %.2f MB/s", rate)
	}
}

func TestDiskReadTimeLargeFilePaysExtraSeeks(t *testing.T) {
	m := DefaultCostModel()
	// "For files larger than 44 KB an additional 14 ms is charged for
	// every 44 KB of file length in excess of 44 KB."
	within := m.DiskReadTime(44 << 10)
	beyond := m.DiskReadTime(88 << 10)
	extra := beyond - within
	// One extra 44 KB block: 14 ms + 11 transfer units (44KB/4KB).
	want := 14*time.Millisecond + 11*410*time.Microsecond
	if extra != want {
		t.Fatalf("extra for second 44KB block = %v, want %v", extra, want)
	}
}

func TestBlocks(t *testing.T) {
	m := DefaultCostModel()
	b := m.Blocks(100 << 10) // 100 KB = 44 + 44 + 12
	if len(b) != 3 {
		t.Fatalf("Blocks(100KB) = %v", b)
	}
	if b[0] != 44<<10 || b[1] != 44<<10 || b[2] != 12<<10 {
		t.Fatalf("Blocks = %v", b)
	}
	if got := m.Blocks(0); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Blocks(0) = %v", got)
	}
	var sum int64
	for _, v := range m.Blocks(12345) {
		sum += v
	}
	if sum != 12345 {
		t.Fatalf("blocks sum = %d", sum)
	}
}

func TestBlockReadTimeLatencies(t *testing.T) {
	m := DefaultCostModel()
	first := m.BlockReadTime(0, 4096)
	later := m.BlockReadTime(1, 4096)
	if first-later != 14*time.Millisecond {
		t.Fatalf("first %v vs later %v: latency difference should be 14ms", first, later)
	}
	if got := m.BlockReadTime(0, 0); got != 28*time.Millisecond {
		t.Fatalf("empty first block = %v", got)
	}
}

func TestCPUSpeedScalesOnlyCPU(t *testing.T) {
	m := DefaultCostModel().WithCPUSpeed(2)
	if got := m.EstablishTime(); got != 72500*time.Nanosecond {
		t.Fatalf("2x EstablishTime = %v, want 72.5µs", got)
	}
	if got := m.TransmitTime(512); got != 20*time.Microsecond {
		t.Fatalf("2x TransmitTime = %v", got)
	}
	// Disk timing is unchanged.
	if got := m.DiskReadTime(4 << 10); got != DefaultCostModel().DiskReadTime(4<<10) {
		t.Fatalf("CPU speed changed disk time: %v", got)
	}
}

func TestCostModelValidate(t *testing.T) {
	bad := []func(*CostModel){
		func(m *CostModel) { m.ConnEstablish = -1 },
		func(m *CostModel) { m.TransmitUnit = 0 },
		func(m *CostModel) { m.DiskFirstLatency = -1 },
		func(m *CostModel) { m.DiskTransferUnit = 0 },
		func(m *CostModel) { m.DiskBlock = 0 },
		func(m *CostModel) { m.CPUSpeed = 0 },
	}
	for i, mutate := range bad {
		m := DefaultCostModel()
		mutate(&m)
		if m.Validate() == nil {
			t.Fatalf("case %d: invalid model accepted", i)
		}
	}
}
