package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"lard/internal/breaker"
	"lard/internal/quota"
)

// This file is the simulated half of the overload-protection subsystem:
// the same internal/quota and internal/breaker state machines the live
// front end runs, driven by the simulator's virtual clock (sim.Engine
// time, never the wall clock — lardlint's wallclock analyzer checks all
// three packages).
//
// Quota: each admitted trace request is attributed to a client identity
// (QuotaClients well-behaved clients, drawn uniformly, plus one abuser
// taking AbuseShare of the stream) and charged against that client's
// token bucket; over-quota requests are shed at the front door.
//
// Breaker: with Config.Breaker set, ChurnFail stops telling the
// dispatcher (the oracle the paper's simulator assumes) and instead
// marks the node unresponsive. Requests dispatched to it fail like
// refused connections, feeding its breaker, until the breaker trips and
// its gate (lard.SetNodeGate) detours traffic — detection latency and
// the recovery ramp become visible in the timeline. The simulation
// meters only detection and gating; the live front end additionally
// consumes Allow() admissions per new back-end connection.

// abuserClient is the abusive identity's quota key.
const abuserClient = "abuser"

// overloadSim is the Cluster's overload-protection state.
type overloadSim struct {
	quota    *quota.Limiter // nil = quota off
	breakers *breaker.Set   // nil = breaker detection off
	rng      *rand.Rand
	cfg      Config

	failed []bool // breaker mode: nodes scripted unresponsive

	sheds        int // quota sheds, total
	abuserSheds  int // quota sheds attributed to the abuser
	breakerDrops int // requests lost to an unresponsive node pre-trip
	breakerTrips int // breaker transitions to Open
}

// initOverload wires the quota and breaker simulations; called from New
// after the dispatcher exists.
func (c *Cluster) initOverload() {
	c.ov.cfg = c.cfg
	if c.cfg.QuotaRate > 0 {
		seed := c.cfg.QuotaSeed
		if seed == 0 {
			seed = 1
		}
		c.ov.rng = rand.New(rand.NewSource(seed))
		c.ov.quota = quota.New(quota.Config{
			Rate:  c.cfg.QuotaRate,
			Burst: c.cfg.QuotaBurst,
		})
	}
	if c.cfg.Breaker != nil {
		bcfg := *c.cfg.Breaker
		prev := bcfg.OnTransition
		bcfg.OnTransition = func(node int, from, to breaker.State, now time.Duration) {
			if to == breaker.Open {
				c.ov.breakerTrips++
			}
			if prev != nil {
				prev(node, from, to, now)
			}
		}
		c.ov.breakers = breaker.New(bcfg)
		c.d.SetNodeGate(func(node int) bool {
			return c.ov.breakers.Healthy(node, c.eng.Now())
		})
	}
}

// drawClient attributes the next admitted request to a client identity.
func (s *overloadSim) drawClient() string {
	if s.cfg.AbuseShare > 0 && s.rng.Float64() < s.cfg.AbuseShare {
		return abuserClient
	}
	n := s.cfg.QuotaClients
	if n <= 0 {
		n = 16
	}
	return fmt.Sprintf("client%d", s.rng.Intn(n))
}

// setFailed flags a node (un)responsive for the breaker-detection mode,
// growing the slice for runtime joins.
func (s *overloadSim) setFailed(node int, failed bool) {
	for node >= len(s.failed) {
		s.failed = append(s.failed, false)
	}
	s.failed[node] = failed
}

// nodeFailed reports whether the node is scripted unresponsive.
func (s *overloadSim) nodeFailed(node int) bool {
	return node < len(s.failed) && s.failed[node]
}
