package cluster

import (
	"fmt"
	"time"
)

// CostModel holds the per-request processing costs of the paper's
// simulation model (Section 3.1), "derived by performing measurements on a
// 300 MHz Pentium II machine running FreeBSD 2.2.5 and an aggressive
// experimental web server":
//
//   - connection establishment and teardown cost 145 µs of CPU time each;
//   - transmit processing incurs 40 µs per 512 bytes;
//   - an 8 KB document is therefore served from the main-memory cache at
//     ≈ 1075 requests/sec (145+145+16·40 = 930 µs of CPU);
//   - a disk read has a 28 ms initial latency (2 seeks + rotation) and
//     transfers at 410 µs per 4 KB (≈ 10 MB/s peak);
//   - files larger than 44 KB pay an additional 14 ms (seek + rotation)
//     for every 44 KB of length in excess of 44 KB, 44 KB being the
//     measured average disk transfer size between seeks;
//   - large reads are blocked at 44 KB, with the transmission of each
//     block immediately following its disk read.
type CostModel struct {
	// ConnEstablish and ConnTeardown are per-connection CPU costs.
	ConnEstablish time.Duration
	ConnTeardown  time.Duration

	// TransmitPerUnit is the CPU cost to transmit each TransmitUnit bytes
	// (rounded up).
	TransmitPerUnit time.Duration
	TransmitUnit    int64

	// DiskFirstLatency is the seek + rotational latency of the first
	// block of a read; DiskExtraLatency is charged for each subsequent
	// DiskBlock-sized block.
	DiskFirstLatency time.Duration
	DiskExtraLatency time.Duration

	// DiskTransferPerUnit is the media transfer time per DiskTransferUnit
	// bytes (rounded up).
	DiskTransferPerUnit time.Duration
	DiskTransferUnit    int64

	// DiskBlock is the blocking factor for large reads.
	DiskBlock int64

	// HandoffCost is the CPU charged to a back end for receiving a
	// connection handoff — the handoff-protocol processing the paper's
	// Table 2 measures on the prototype (a few hundred microseconds on
	// the 300 MHz Pentium II class hardware of the cost model). It is
	// paid once per connection under per-connection dispatch and once
	// per back-end *switch* under per-request re-handoff, which is the
	// CPU side of the locality-vs-affinity trade-off the phttp
	// experiment sweeps.
	//
	// Crucially this models handoff *protocol* processing only, not TCP
	// establishment: the live front end's pooled handoff path
	// (internal/frontend/pool.go) exists to keep reality aligned with
	// that assumption. BenchmarkHandoffDial on the prototype measures a
	// fresh dial+handoff round trip at roughly twice the cost of a
	// pooled checkout+handoff (≈87 µs vs ≈41 µs wall-clock on a 2.1 GHz
	// Xeon over loopback, BENCH_PR5.json) — without pooling, the dial
	// would dominate the modeled HandoffCost and the simulator's
	// re-handoff economics would flatter the implementation.
	HandoffCost time.Duration

	// CPUSpeed scales CPU costs down (2.0 = a CPU twice as fast). Disk
	// costs are unaffected, reproducing the paper's Figure 11/12 sweeps
	// where "CPU speeds are expected to improve at a much faster rate
	// than disk speeds".
	CPUSpeed float64
}

// DefaultCostModel returns the paper's calibrated 300 MHz Pentium II model.
func DefaultCostModel() CostModel {
	return CostModel{
		ConnEstablish:       145 * time.Microsecond,
		ConnTeardown:        145 * time.Microsecond,
		TransmitPerUnit:     40 * time.Microsecond,
		TransmitUnit:        512,
		DiskFirstLatency:    28 * time.Millisecond,
		DiskExtraLatency:    14 * time.Millisecond,
		DiskTransferPerUnit: 410 * time.Microsecond,
		DiskTransferUnit:    4096,
		DiskBlock:           44 * 1024,
		HandoffCost:         DefaultHandoffCost,
		CPUSpeed:            1.0,
	}
}

// DefaultHandoffCost is the per-handoff CPU charge used by
// DefaultCostModel, calibrated to the order of magnitude of the paper's
// Table 2 handoff measurements (comparable to connection establishment).
const DefaultHandoffCost = 300 * time.Microsecond

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	switch {
	case m.ConnEstablish < 0 || m.ConnTeardown < 0:
		return fmt.Errorf("cluster: negative connection cost")
	case m.TransmitPerUnit < 0 || m.TransmitUnit < 1:
		return fmt.Errorf("cluster: invalid transmit cost (%v per %d bytes)", m.TransmitPerUnit, m.TransmitUnit)
	case m.DiskFirstLatency < 0 || m.DiskExtraLatency < 0:
		return fmt.Errorf("cluster: negative disk latency")
	case m.DiskTransferPerUnit < 0 || m.DiskTransferUnit < 1:
		return fmt.Errorf("cluster: invalid disk transfer cost")
	case m.DiskBlock < 1:
		return fmt.Errorf("cluster: DiskBlock = %d, need >= 1", m.DiskBlock)
	case m.HandoffCost < 0:
		return fmt.Errorf("cluster: negative HandoffCost")
	case m.CPUSpeed <= 0:
		return fmt.Errorf("cluster: CPUSpeed = %v, need > 0", m.CPUSpeed)
	}
	return nil
}

// WithCPUSpeed returns a copy of the model with the CPU speed multiplier
// set, for the Figure 11/12 scaling experiments.
func (m CostModel) WithCPUSpeed(speed float64) CostModel {
	m.CPUSpeed = speed
	return m
}

// scaledBy returns a copy of the model for a node serving at the given
// speed multiplier: every duration — CPU, disk, and handoff — shrinks by
// the factor, so a speed-2 node completes identical work in half the
// simulated time. This is the whole-node heterogeneity knob behind
// Config.Profiles, distinct from CPUSpeed, which scales only CPU costs
// fleet-wide for the Figure 11/12 sweeps.
func (m CostModel) scaledBy(speed float64) CostModel {
	if speed == 1.0 {
		return m
	}
	div := func(d time.Duration) time.Duration {
		return time.Duration(float64(d) / speed)
	}
	m.ConnEstablish = div(m.ConnEstablish)
	m.ConnTeardown = div(m.ConnTeardown)
	m.TransmitPerUnit = div(m.TransmitPerUnit)
	m.DiskFirstLatency = div(m.DiskFirstLatency)
	m.DiskExtraLatency = div(m.DiskExtraLatency)
	m.DiskTransferPerUnit = div(m.DiskTransferPerUnit)
	m.HandoffCost = div(m.HandoffCost)
	return m
}

// cpu scales a CPU cost by the configured CPU speed.
func (m CostModel) cpu(d time.Duration) time.Duration {
	if m.CPUSpeed == 1.0 {
		return d
	}
	return time.Duration(float64(d) / m.CPUSpeed)
}

// EstablishTime returns the CPU time to accept a connection.
func (m CostModel) EstablishTime() time.Duration { return m.cpu(m.ConnEstablish) }

// TeardownTime returns the CPU time to close a connection.
func (m CostModel) TeardownTime() time.Duration { return m.cpu(m.ConnTeardown) }

// HandoffTime returns the CPU time for a back end to accept a connection
// handoff.
func (m CostModel) HandoffTime() time.Duration { return m.cpu(m.HandoffCost) }

// TransmitTime returns the CPU time to transmit size bytes.
func (m CostModel) TransmitTime(size int64) time.Duration {
	if size <= 0 {
		return 0
	}
	units := (size + m.TransmitUnit - 1) / m.TransmitUnit
	return m.cpu(time.Duration(units) * m.TransmitPerUnit)
}

// Blocks splits a file into the DiskBlock-sized read units of the paper's
// blocked-read model. A zero-size file still occupies one (empty) block,
// paying the initial disk latency.
func (m CostModel) Blocks(size int64) []int64 {
	if size <= 0 {
		return []int64{0}
	}
	n := (size + m.DiskBlock - 1) / m.DiskBlock
	blocks := make([]int64, n)
	for i := range blocks {
		blocks[i] = m.DiskBlock
	}
	if rem := size % m.DiskBlock; rem != 0 {
		blocks[n-1] = rem
	}
	return blocks
}

// BlockReadTime returns the disk time for the i'th block of a read:
// seek/rotation latency (full for the first block, the inter-chunk extra
// for subsequent ones) plus media transfer time.
func (m CostModel) BlockReadTime(i int, blockSize int64) time.Duration {
	lat := m.DiskFirstLatency
	if i > 0 {
		lat = m.DiskExtraLatency
	}
	if blockSize <= 0 {
		return lat
	}
	units := (blockSize + m.DiskTransferUnit - 1) / m.DiskTransferUnit
	return lat + time.Duration(units)*m.DiskTransferPerUnit
}

// DiskReadTime returns the total disk time to read a whole file of the
// given size (the sum over its blocks).
func (m CostModel) DiskReadTime(size int64) time.Duration {
	var total time.Duration
	for i, b := range m.Blocks(size) {
		total += m.BlockReadTime(i, b)
	}
	return total
}

// CachedServiceTime returns the CPU time to serve a request entirely from
// the main-memory cache: establish + transmit + teardown.
func (m CostModel) CachedServiceTime(size int64) time.Duration {
	return m.EstablishTime() + m.TransmitTime(size) + m.TeardownTime()
}
