package handoff

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// This file is the front end's side of the protocol: sending the handoff
// message and the forwarding module (the paper's fast path that relays
// traffic without inspecting it after the handoff decision is made).

// Send transfers an accepted client connection's state to the back end
// over backendConn: the client address and the already-consumed request
// head. After Send succeeds the caller must stop interpreting the byte
// streams and splice them (Forward).
func Send(backendConn net.Conn, clientAddr string, initialData []byte, flags byte) error {
	return WriteHeader(backendConn, Header{
		Flags:       flags,
		ClientAddr:  clientAddr,
		InitialData: initialData,
	})
}

// ForwardStats counts the forwarding module's traffic.
type ForwardStats struct {
	// ClientToBackend and BackendToClient are byte counts.
	ClientToBackend atomic.Int64
	BackendToClient atomic.Int64
}

// bufPool recycles the forwarding module's copy buffers.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 32<<10)
		return &b
	},
}

// Forward splices client and backend until either side closes, counting
// bytes into stats (which may be nil; counters update incrementally, so
// long-lived connections are observable mid-flight). It closes both
// connections before returning — the handed-off connection's lifetime
// ends when either party hangs up, as with the paper's kernel-level
// forwarding.
func Forward(client, backend net.Conn, stats *ForwardStats) {
	var c2b, b2c *atomic.Int64
	if stats != nil {
		c2b, b2c = &stats.ClientToBackend, &stats.BackendToClient
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		copyCounted(backend, client, c2b)
		// Client finished sending (or died): let the back end see EOF on
		// its receive path while its response may still be in flight.
		closeWrite(backend)
	}()
	go func() {
		defer wg.Done()
		copyCounted(client, backend, b2c)
		closeWrite(client)
	}()
	wg.Wait()
	client.Close()
	backend.Close()
}

// copyCounted copies src→dst with a pooled buffer, adding each chunk to
// count (which may be nil) as it moves.
func copyCounted(dst io.Writer, src io.Reader, count *atomic.Int64) {
	bp := bufPool.Get().(*[]byte)
	defer bufPool.Put(bp)
	buf := *bp
	for {
		n, rerr := src.Read(buf)
		if n > 0 {
			if count != nil {
				count.Add(int64(n))
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// closeWrite half-closes a connection when supported, so the peer sees
// EOF without losing its own transmit direction.
func closeWrite(c net.Conn) {
	type closeWriter interface{ CloseWrite() error }
	if cw, ok := c.(closeWriter); ok {
		cw.CloseWrite()
		return
	}
	// No half-close support: leave the connection open; Forward's final
	// Close will tear it down.
}
