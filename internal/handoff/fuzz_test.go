package handoff

// Fuzz targets for the handoff wire format: the handshake header parser
// and the session-framed stream decoder. Both sit on a pooled transport
// that carries many sessions back to back, so the invariants are about
// exact consumption — a parser that reads one byte too many or too few
// desyncs every later session on the connection — and about error
// classes: truncation must surface as io.ErrUnexpectedEOF (the relay
// tears the transport down), never as a clean io.EOF (the relay would
// pool the connection and hand the desynced stream to the next session).

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// fuzzConn is a net.Conn stub whose write side collects bytes;
// sessionConn only uses the raw conn for writes, deadlines, and
// addresses, so nothing else needs to work.
type fuzzConn struct{ bytes.Buffer }

func (*fuzzConn) Close() error                       { return nil }
func (*fuzzConn) LocalAddr() net.Addr                { return &net.TCPAddr{} }
func (*fuzzConn) RemoteAddr() net.Addr               { return &net.TCPAddr{} }
func (*fuzzConn) SetDeadline(t time.Time) error      { return nil }
func (*fuzzConn) SetReadDeadline(t time.Time) error  { return nil }
func (*fuzzConn) SetWriteDeadline(t time.Time) error { return nil }

// FuzzHeaderDecode checks ReadHeader's error contract and the
// decode/encode identity that keeps a pooled transport in sync.
func FuzzHeaderDecode(f *testing.F) {
	for _, h := range []Header{
		{},
		{Flags: FlagRehandoff, ClientAddr: "192.0.2.7:4242"},
		{Flags: FlagSessionFramed, ClientAddr: "[2001:db8::1]:80", InitialData: []byte("GET / HTTP/1.1\r\nHost: a\r\n\r\n")},
	} {
		var b bytes.Buffer
		if err := WriteHeader(&b, h); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Add([]byte("DRAL\x01\x00\x00\x00\x00\x00\x00\x00")) // bad magic
	f.Add([]byte("LARD\x09\x00\x00\x00\x00\x00\x00\x00")) // bad version
	f.Add([]byte("LARD\x01\x00\xff\xff"))                 // oversized addr
	f.Add([]byte("LARD\x01\x00\x00\x00\xff\xff\xff\xff")) // oversized data
	f.Add([]byte("LARD\x01\x00\x00\x04ab"))               // truncated addr
	f.Add([]byte{})                                       //
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		h, err := ReadHeader(r)
		if err != nil {
			if !errors.Is(err, ErrBadHandshake) {
				t.Fatalf("ReadHeader error does not wrap ErrBadHandshake: %v", err)
			}
			return
		}
		if len(h.ClientAddr) > MaxAddrLen || len(h.InitialData) > MaxInitialData {
			t.Fatalf("decoded header exceeds bounds: addr=%d data=%d", len(h.ClientAddr), len(h.InitialData))
		}
		// The encoding has no redundancy, so re-encoding the decoded
		// header must reproduce the consumed prefix exactly: the reader
		// is positioned on the first byte of the session stream.
		consumed := len(data) - r.Len()
		var reenc bytes.Buffer
		if err := WriteHeader(&reenc, h); err != nil {
			t.Fatalf("re-encoding decoded header: %v", err)
		}
		if !bytes.Equal(reenc.Bytes(), data[:consumed]) {
			t.Fatalf("re-encode != consumed prefix:\nre-encoded: %q\nconsumed:   %q", reenc.Bytes(), data[:consumed])
		}
	})
}

// refDecodeFrames is an independent reference decoder for the framed
// stream, used as a differential oracle against sessionConn's
// incremental state machine. It returns the concatenated payload, how
// many bytes of stream it consumed, and the terminal error class.
func refDecodeFrames(stream []byte) (payload []byte, consumed int, err error) {
	r := bytes.NewReader(stream)
	for {
		var lenBuf [4]byte
		if _, e := io.ReadFull(r, lenBuf[:]); e != nil {
			return payload, len(stream) - r.Len(), io.ErrUnexpectedEOF
		}
		size := int(binary.BigEndian.Uint32(lenBuf[:]))
		if size == 0 {
			return payload, len(stream) - r.Len(), io.EOF
		}
		if size > MaxFrameLen {
			return payload, len(stream) - r.Len(), errors.New("frame length exceeds bound")
		}
		// sessionConn streams frame data as it arrives (the relay wants
		// bytes moving before the frame completes), so a truncated frame
		// still delivers its partial payload before the error.
		buf := make([]byte, size)
		n, e := io.ReadFull(r, buf)
		payload = append(payload, buf[:n]...)
		if e != nil {
			return payload, len(stream) - r.Len(), io.ErrUnexpectedEOF
		}
	}
}

// FuzzSessionFrames drives sessionConn over arbitrary wire bytes and
// checks it against the reference decoder, then round-trips the same
// bytes as payload through SessionWriter.
func FuzzSessionFrames(f *testing.F) {
	f.Add([]byte(nil), []byte("\x00\x00\x00\x00"))
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"), []byte("\x00\x00\x00\x05hello\x00\x00\x00\x00"))
	f.Add([]byte("head"), []byte("\x00\x00\x00\x05hel"))
	f.Add([]byte(nil), []byte("\xff\xff\xff\xff"))
	f.Add([]byte(nil), []byte(nil))
	f.Add([]byte("x"), []byte("\x00\x00"))
	f.Fuzz(func(t *testing.T, initial, stream []byte) {
		// Part 1: arbitrary bytes as the framed stream, read through a
		// deliberately tiny buffer to stress the resumable frame state.
		under := bytes.NewReader(stream)
		br := bufio.NewReader(under)
		sc := newSessionConn(&fuzzConn{}, br, Header{ClientAddr: "192.0.2.9:1", InitialData: initial})
		var got bytes.Buffer
		var ferr error
		buf := make([]byte, 3)
		for i := 0; i <= len(initial)+len(stream)+8; i++ {
			n, err := sc.Read(buf)
			got.Write(buf[:n])
			if err != nil {
				ferr = err
				break
			}
		}
		if ferr == nil {
			t.Fatalf("sessionConn.Read never terminated over %d wire bytes", len(stream))
		}
		refPayload, refConsumed, refErr := refDecodeFrames(stream)
		want := append(append([]byte{}, initial...), refPayload...)
		if !bytes.Equal(got.Bytes(), want) {
			t.Fatalf("payload disagrees with reference decoder:\ngot:  %q\nwant: %q", got.Bytes(), want)
		}
		switch {
		case refErr == io.EOF:
			if ferr != io.EOF {
				t.Fatalf("reference saw clean end of session, sessionConn returned %v", ferr)
			}
			if !sc.drained() {
				t.Fatal("io.EOF but drained() is false")
			}
			// The reader must stop exactly after the end record; the next
			// session's header follows on the shared transport.
			if consumed := len(stream) - br.Buffered() - under.Len(); consumed != refConsumed {
				t.Fatalf("consumed %d bytes of stream, reference consumed %d", consumed, refConsumed)
			}
		case refErr == io.ErrUnexpectedEOF:
			if ferr != io.ErrUnexpectedEOF {
				t.Fatalf("truncated stream: want io.ErrUnexpectedEOF, got %v", ferr)
			}
			if sc.drained() {
				t.Fatal("truncated stream but drained() is true")
			}
		default: // oversized frame
			if ferr == io.EOF || ferr == io.ErrUnexpectedEOF {
				t.Fatalf("oversized frame surfaced as %v", ferr)
			}
			if sc.drained() {
				t.Fatal("oversized frame but drained() is true")
			}
		}
		// The terminal condition is sticky: another read must fail the
		// same way, never hand out data.
		if n, err := sc.Read(buf); n != 0 || err == nil || (ferr == io.EOF) != (err == io.EOF) {
			t.Fatalf("read after terminal error returned (%d, %v), first error was %v", n, err, ferr)
		}

		// Part 2: round-trip — frame the fuzz input as payload with
		// SessionWriter, decode it with sessionConn, and confirm the
		// transport is left positioned on the next session's bytes.
		var wire fuzzConn
		w := NewSessionWriter(&wire)
		half := len(stream) / 2
		if _, err := w.Write(stream[:half]); err != nil {
			t.Fatalf("SessionWriter.Write: %v", err)
		}
		if _, err := w.Write(stream[half:]); err != nil {
			t.Fatalf("SessionWriter.Write: %v", err)
		}
		if err := w.End(); err != nil {
			t.Fatalf("SessionWriter.End: %v", err)
		}
		next := "LARDnext-session"
		br2 := bufio.NewReader(io.MultiReader(bytes.NewReader(wire.Bytes()), strings.NewReader(next)))
		sc2 := newSessionConn(&fuzzConn{}, br2, Header{InitialData: initial})
		echoed, err := io.ReadAll(sc2)
		if err != nil {
			t.Fatalf("reading back framed payload: %v", err)
		}
		if !bytes.Equal(echoed, want2(initial, stream)) {
			t.Fatalf("round-trip payload mismatch:\ngot:  %q\nwant: %q", echoed, want2(initial, stream))
		}
		if !sc2.drained() {
			t.Fatal("round-trip stream not drained after io.EOF")
		}
		rest, err := io.ReadAll(br2)
		if err != nil {
			t.Fatalf("reading trailing bytes: %v", err)
		}
		if string(rest) != next {
			t.Fatalf("transport desynced after session: trailing bytes %q, want %q", rest, next)
		}
	})
}

// want2 is the expected round-trip payload: initial data then the framed
// stream bytes.
func want2(initial, stream []byte) []byte {
	return append(append([]byte{}, initial...), stream...)
}
