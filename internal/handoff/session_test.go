package handoff

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startSessionHTTP runs an unmodified net/http server over a handoff
// Listener and returns the listener plus its address.
func startSessionHTTP(t *testing.T, handler http.Handler) (*Listener, string) {
	t.Helper()
	ln, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	return ln, ln.Addr().String()
}

// sendSessionHeader opens one framed session on an established transport.
func sendSessionHeader(t *testing.T, c net.Conn, clientAddr, head string) *SessionWriter {
	t.Helper()
	err := Send(c, clientAddr, []byte(head), FlagRehandoff|FlagSessionFramed)
	if err != nil {
		t.Fatalf("session header: %v", err)
	}
	return NewSessionWriter(c)
}

// readHTTPResponse reads one response and its body off the transport.
func readHTTPResponse(t *testing.T, br *bufio.Reader) (*http.Response, string) {
	t.Helper()
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	resp.Body.Close()
	return resp, string(body)
}

// TestSessionSequencedTransport is the protocol-v2 headline: one TCP
// connection to the back end carries a sequence of handed-off client
// sessions, each with its own client address, served by an unmodified
// net/http server.
func TestSessionSequencedTransport(t *testing.T) {
	ln, addr := startSessionHTTP(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "%s saw %s", r.RemoteAddr, r.URL.Path)
	}))

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	for i := 0; i < 3; i++ {
		client := fmt.Sprintf("192.0.2.%d:4000", i+1)
		sw := sendSessionHeader(t, c, client,
			fmt.Sprintf("GET /doc-%d HTTP/1.1\r\nHost: t\r\n\r\n", i))
		resp, body := readHTTPResponse(t, br)
		if resp.StatusCode != 200 {
			t.Fatalf("session %d: status %d", i, resp.StatusCode)
		}
		want := fmt.Sprintf("%s saw /doc-%d", client, i)
		if body != want {
			t.Fatalf("session %d: body %q, want %q", i, body, want)
		}
		if err := sw.End(); err != nil {
			t.Fatalf("session %d: end: %v", i, err)
		}
	}
	if got := ln.Sessions(); got != 3 {
		t.Fatalf("Sessions = %d, want 3", got)
	}
}

// TestSessionKeepAliveWithinSession covers a session that itself carries
// several keep-alive requests: the first head rides the handoff header's
// initial data, later heads and bodies arrive as frames.
func TestSessionKeepAliveWithinSession(t *testing.T) {
	startedBodies := make(chan string, 8)
	_, addr := startSessionHTTP(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		if len(b) > 0 {
			startedBodies <- string(b)
		}
		fmt.Fprintf(w, "echo %s %d", r.URL.Path, len(b))
	}))

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	sw := sendSessionHeader(t, c, "198.51.100.9:55", "GET /first HTTP/1.1\r\nHost: t\r\n\r\n")
	if _, body := readHTTPResponse(t, br); body != "echo /first 0" {
		t.Fatalf("first response: %q", body)
	}

	// Second request on the same session travels as frames, body split
	// across two frames to prove reassembly.
	if _, err := sw.Write([]byte("POST /second HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, body := readHTTPResponse(t, br); body != "echo /second 10" {
		t.Fatalf("second response: %q", body)
	}
	if got := <-startedBodies; got != "helloworld" {
		t.Fatalf("body reassembled as %q", got)
	}
	if err := sw.End(); err != nil {
		t.Fatal(err)
	}
}

// TestAbandonedSessionClosesTransport: a session closed by the server
// before its end-of-session record (here: the client head asks for
// Connection: close, so net/http closes the virtual conn) leaves the
// transport's read position mid-session; the listener must tear the
// transport down rather than misparse the next header.
func TestAbandonedSessionClosesTransport(t *testing.T) {
	_, addr := startSessionHTTP(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "bye")
	}))

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	sendSessionHeader(t, c, "192.0.2.77:1", "GET /x HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
	resp, body := readHTTPResponse(t, br)
	if resp.StatusCode != 200 || body != "bye" {
		t.Fatalf("response %d %q", resp.StatusCode, body)
	}
	// The server closed its side without reading the (never sent)
	// end-of-session record: the transport must die, not wait for reuse.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("transport after abandoned session: %v, want EOF", err)
	}
}

// TestFrameWriterSplitsOversizedWrites: writes beyond MaxFrameLen must be
// split, not rejected, so large relayed bodies flow regardless of the
// caller's buffer size.
func TestFrameWriterSplitsOversizedWrites(t *testing.T) {
	got := make(chan int, 1)
	_, addr := startSessionHTTP(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		got <- len(b)
		io.WriteString(w, "ok")
	}))

	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	br := bufio.NewReader(c)

	size := MaxFrameLen + MaxFrameLen/2
	sw := sendSessionHeader(t, c, "192.0.2.5:9",
		fmt.Sprintf("POST /big HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n", size))
	if n, err := sw.Write([]byte(strings.Repeat("z", size))); err != nil || n != size {
		t.Fatalf("oversized write: n=%d err=%v", n, err)
	}
	if resp, _ := readHTTPResponse(t, br); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if n := <-got; n != size {
		t.Fatalf("server saw %d body bytes, want %d", n, size)
	}
	if err := sw.End(); err != nil {
		t.Fatal(err)
	}
}
