// Package handoff implements a user-space analogue of the LARD paper's TCP
// connection handoff protocol (Section 5).
//
// In the paper, the front end accepts the client's TCP connection, inspects
// the request, and hands the *established kernel connection state* to the
// chosen back end, which then replies directly to the client; the front end
// only forwards client→server packets (mostly ACKs) through a fast
// forwarding module. A user-space Go library cannot migrate kernel TCP
// state, so this package substitutes a faithful architectural analogue:
//
//   - The front end dials the chosen back end and sends a handoff message
//     carrying the client's address and the bytes already read from the
//     client (the request head) — the analogue of transferring the
//     connection state.
//   - The back end wraps the handed-off stream in a net.Conn whose
//     RemoteAddr is the original client's, and a handoff.Listener feeds
//     those connections to an unmodified net/http server — preserving the
//     paper's claim that "server applications can run unmodified on the
//     back-end nodes".
//   - The front end's forwarding module becomes an opaque bidirectional
//     splice that never re-inspects bytes after the handoff, mirroring the
//     paper's fast path (it additionally relays back-end→client data,
//     which the kernel implementation sent directly).
//
// The roles — dispatcher (policy), handoff (transfer), forwarding (dumb
// fast path) — and their layering match Figure 15 of the paper.
package handoff

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format: magic "LARD", version byte, flags byte, client address
// (uint16 length + bytes), initial data (uint32 length + bytes).
const (
	magic   = "LARD"
	version = 1

	// MaxAddrLen bounds the client address field.
	MaxAddrLen = 1 << 10

	// MaxInitialData bounds the request-head bytes carried in the handoff
	// message (a request head larger than this cannot be handed off).
	MaxInitialData = 1 << 20
)

// Flags for Header.Flags.
const (
	// FlagRehandoff marks a connection that may be handed off again for
	// subsequent requests (the paper's HTTP/1.1 multiple-handoff design).
	FlagRehandoff byte = 1 << 0

	// FlagSessionFramed marks a session-sequenced handoff (protocol v2,
	// session.go): the bytes following this header on the front-end→back-
	// end direction are length-prefixed frames, terminated by an
	// end-of-session record, after which the same TCP connection carries
	// the next handoff header. This is what lets one back-end connection
	// serve a sequence of handed-off client sessions, amortizing the TCP
	// dial the paper's ~300µs handoff budget cannot afford per request.
	FlagSessionFramed byte = 1 << 1
)

// Header is the handoff message exchanged from front end to back end when
// a connection is transferred.
type Header struct {
	// Flags carries handoff options.
	Flags byte

	// ClientAddr is the original client's network address ("ip:port"),
	// reported to the back-end application as the connection's remote
	// address.
	ClientAddr string

	// InitialData holds the bytes the front end already consumed from the
	// client — at least the first request's head — which the back end
	// must process before reading from the connection proper.
	InitialData []byte
}

// ErrBadHandshake is returned when the peer does not speak the handoff
// protocol.
var ErrBadHandshake = errors.New("handoff: bad handshake")

// WriteHeader serializes the handoff message to w.
func WriteHeader(w io.Writer, h Header) error {
	if len(h.ClientAddr) > MaxAddrLen {
		return fmt.Errorf("handoff: client address length %d exceeds %d", len(h.ClientAddr), MaxAddrLen)
	}
	if len(h.InitialData) > MaxInitialData {
		return fmt.Errorf("handoff: initial data length %d exceeds %d", len(h.InitialData), MaxInitialData)
	}
	buf := make([]byte, 0, len(magic)+2+2+len(h.ClientAddr)+4+len(h.InitialData))
	buf = append(buf, magic...)
	buf = append(buf, version, h.Flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.ClientAddr)))
	buf = append(buf, h.ClientAddr...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(h.InitialData)))
	buf = append(buf, h.InitialData...)
	_, err := w.Write(buf)
	return err
}

// ReadHeader parses a handoff message from r.
func ReadHeader(r io.Reader) (Header, error) {
	var h Header
	fixed := make([]byte, len(magic)+2+2)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return h, fmt.Errorf("%w: %v", ErrBadHandshake, err)
	}
	if string(fixed[:len(magic)]) != magic {
		return h, fmt.Errorf("%w: bad magic %q", ErrBadHandshake, fixed[:len(magic)])
	}
	if fixed[len(magic)] != version {
		return h, fmt.Errorf("%w: unsupported version %d", ErrBadHandshake, fixed[len(magic)])
	}
	h.Flags = fixed[len(magic)+1]
	addrLen := binary.BigEndian.Uint16(fixed[len(magic)+2:])
	if addrLen > MaxAddrLen {
		return h, fmt.Errorf("%w: address length %d", ErrBadHandshake, addrLen)
	}
	addr := make([]byte, addrLen)
	if _, err := io.ReadFull(r, addr); err != nil {
		return h, fmt.Errorf("%w: truncated address: %v", ErrBadHandshake, err)
	}
	h.ClientAddr = string(addr)
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return h, fmt.Errorf("%w: truncated length: %v", ErrBadHandshake, err)
	}
	dataLen := binary.BigEndian.Uint32(lenBuf[:])
	if dataLen > MaxInitialData {
		return h, fmt.Errorf("%w: initial data length %d", ErrBadHandshake, dataLen)
	}
	h.InitialData = make([]byte, dataLen)
	if _, err := io.ReadFull(r, h.InitialData); err != nil {
		return h, fmt.Errorf("%w: truncated initial data: %v", ErrBadHandshake, err)
	}
	return h, nil
}

// ReadHeaderBuffered parses a handoff message from a bufio.Reader without
// consuming bytes past the message.
func ReadHeaderBuffered(br *bufio.Reader) (Header, error) {
	return ReadHeader(br)
}
