package handoff

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Session-sequenced handoff (protocol v2). A header sent with
// FlagSessionFramed opens a *session* on the back-end connection instead
// of consuming it: every byte the front end sends after the header is
// wrapped in a length-prefixed frame, and a zero-length frame marks the
// end of the session. The back-end→front-end direction stays raw — the
// front end parses responses with full HTTP framing anyway, so it knows
// exactly where the session's last response ends. After the end-of-
// session record the same TCP connection is back in handshake state and
// the next handoff header (for an unrelated client) may follow, which is
// what lets the front end keep a per-node pool of warm connections and
// pay the TCP dial once per pool fill rather than once per handoff.
//
// Frame wire format: uint32 big-endian payload length, then the payload.
// Length 0 is the end-of-session record. Frames never exceed
// MaxFrameLen; a larger write is split.

// MaxFrameLen bounds one frame's payload. It matches MaxInitialData, the
// bound on the request head a handoff message can carry.
const MaxFrameLen = 1 << 20

// Static frame-path errors: both sit on //lard:noalloc paths, where a
// fmt.Errorf would be a per-call heap allocation.
var (
	errWriteAfterEnd = errors.New("handoff: write after end of session")
	errFrameTooLong  = errors.New("handoff: frame length exceeds MaxFrameLen")
)

// SessionWriter wraps the front-end→back-end direction of a session-
// framed handoff connection: each Write becomes one or more data frames,
// and End emits the end-of-session record that returns the transport to
// handshake state. It is not safe for concurrent use, matching the relay
// loop's one-writer structure.
type SessionWriter struct {
	c      net.Conn
	prefix [4]byte
	// iov is the backing array for the per-frame writev vector; vec is
	// rebuilt from it each frame because net.Buffers.WriteTo consumes the
	// slice it is called on. Keeping both in the writer makes Write
	// allocation-free.
	iov   [2][]byte
	vec   net.Buffers
	ended bool
}

// NewSessionWriter builds the framing writer for a connection on which a
// FlagSessionFramed header has been sent.
func NewSessionWriter(c net.Conn) *SessionWriter { return &SessionWriter{c: c} }

// Write frames p and sends it. It reports len(p) on success, as io.Writer
// requires, even though the wire carries 4 extra bytes per frame.
//
//lard:noalloc
func (w *SessionWriter) Write(p []byte) (int, error) {
	if w.ended {
		return 0, errWriteAfterEnd
	}
	var written int
	for len(p) > 0 {
		chunk := p
		if len(chunk) > MaxFrameLen {
			chunk = chunk[:MaxFrameLen]
		}
		binary.BigEndian.PutUint32(w.prefix[:], uint32(len(chunk)))
		// One writev keeps the frame a single segment on the wire without
		// copying the payload next to its prefix.
		w.iov[0], w.iov[1] = w.prefix[:], chunk
		w.vec = w.iov[:]
		if _, err := w.vec.WriteTo(w.c); err != nil {
			return written, err
		}
		written += len(chunk)
		p = p[len(chunk):]
	}
	return written, nil
}

// End sends the end-of-session record. The transport is then ready for
// the next handoff header (a pool check-in on the front end). End is
// idempotent.
func (w *SessionWriter) End() error {
	if w.ended {
		return nil
	}
	w.ended = true
	binary.BigEndian.PutUint32(w.prefix[:], 0)
	_, err := w.c.Write(w.prefix[:])
	return err
}

// sessionConn is the back end's side of one handed-off session on a
// shared transport: a virtual net.Conn whose reads drain the handoff
// header's initial data and then unwrap data frames, returning io.EOF at
// the end-of-session record. Writes and deadlines pass through to the
// transport raw (one session is active per transport at a time, so the
// response stream needs no framing). Close never closes the transport —
// it hands control back to the listener's transport loop, which either
// reads the next session's header or tears the transport down if the
// session was abandoned mid-stream.
type sessionConn struct {
	raw net.Conn
	br  *bufio.Reader

	initial    []byte
	clientAddr net.Addr
	flags      byte

	// Frame-decoding state. Reads are serialized by the caller (net/http
	// issues one read at a time), but a read blocked on the transport may
	// be aborted via SetReadDeadline and resumed later — net/http's
	// background-read abort does exactly this between requests — so the
	// partially-read length prefix must survive across calls.
	frameLeft int
	lenBuf    [4]byte
	lenGot    int
	sawEnd    bool
	sticky    error

	closeOnce sync.Once
	closed    chan struct{}
}

func newSessionConn(raw net.Conn, br *bufio.Reader, h Header) *sessionConn {
	return &sessionConn{
		raw:        raw,
		br:         br,
		initial:    h.InitialData,
		clientAddr: parseClientAddr(h.ClientAddr),
		flags:      h.Flags,
		closed:     make(chan struct{}),
	}
}

// Read implements net.Conn: initial data first, then frame payloads,
// io.EOF at the end-of-session record.
//
//lard:noalloc
func (c *sessionConn) Read(p []byte) (int, error) {
	if len(c.initial) > 0 {
		n := copy(p, c.initial)
		c.initial = c.initial[n:]
		return n, nil
	}
	if c.sticky != nil {
		return 0, c.sticky
	}
	for {
		if c.frameLeft > 0 {
			if len(p) > c.frameLeft {
				p = p[:c.frameLeft]
			}
			n, err := c.br.Read(p)
			c.frameLeft -= n
			if err != nil && !isTimeout(err) {
				c.sticky = fatalReadErr(err)
				if n > 0 {
					return n, nil
				}
				return 0, c.sticky
			}
			return n, err
		}
		if c.sawEnd {
			return 0, io.EOF
		}
		// Assemble the 4-byte length prefix incrementally so an aborted
		// (deadline) read resumes where it stopped instead of losing
		// prefix bytes.
		for c.lenGot < 4 {
			n, err := c.br.Read(c.lenBuf[c.lenGot:])
			c.lenGot += n
			if err != nil {
				if isTimeout(err) {
					return 0, err
				}
				c.sticky = fatalReadErr(err)
				return 0, c.sticky
			}
		}
		c.lenGot = 0
		size := binary.BigEndian.Uint32(c.lenBuf[:])
		if size == 0 {
			c.sawEnd = true
			return 0, io.EOF
		}
		if size > MaxFrameLen {
			c.sticky = errFrameTooLong
			return 0, c.sticky
		}
		c.frameLeft = int(size)
	}
}

// fatalReadErr normalizes a transport failure mid-session: an EOF inside
// a frame is a truncation, not a clean end of stream, and must not look
// like one to net/http.
func fatalReadErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// isTimeout reports a deadline expiry — the only read error a session
// conn recovers from, because it is how net/http aborts its own
// speculative background read between requests.
func isTimeout(err error) bool {
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

func (c *sessionConn) Write(p []byte) (int, error) { return c.raw.Write(p) }

// Close releases the session back to the transport loop. The transport
// itself stays open if (and only if) the session was read through to its
// end-of-session record; the loop checks drained().
func (c *sessionConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

// drained reports whether the session's framed stream was consumed
// through the end-of-session record, leaving the transport positioned at
// the next handoff header.
func (c *sessionConn) drained() bool {
	return c.sawEnd && c.frameLeft == 0 && c.sticky == nil
}

func (c *sessionConn) LocalAddr() net.Addr  { return c.raw.LocalAddr() }
func (c *sessionConn) RemoteAddr() net.Addr { return c.clientAddr }

// Flags returns the handoff flags, mirroring Conn.Flags.
func (c *sessionConn) Flags() byte { return c.flags }

func (c *sessionConn) SetDeadline(t time.Time) error      { return c.raw.SetDeadline(t) }
func (c *sessionConn) SetReadDeadline(t time.Time) error  { return c.raw.SetReadDeadline(t) }
func (c *sessionConn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// parseClientAddr resolves the handed-off client address, falling back to
// an opaque representation when it is not a parseable TCP address.
func parseClientAddr(s string) net.Addr {
	if tcp, err := net.ResolveTCPAddr("tcp", s); err == nil {
		return tcp
	}
	return clientAddr(s)
}
