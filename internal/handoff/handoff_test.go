package handoff

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Flags:       FlagRehandoff,
		ClientAddr:  "192.0.2.7:49152",
		InitialData: []byte("GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"),
	}
	var buf bytes.Buffer
	if err := WriteHeader(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHeader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flags != h.Flags || got.ClientAddr != h.ClientAddr || !bytes.Equal(got.InitialData, h.InitialData) {
		t.Fatalf("round trip: %+v vs %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(addr string, data []byte, flags byte) bool {
		if len(addr) > MaxAddrLen || len(data) > MaxInitialData {
			return true // out of scope
		}
		h := Header{Flags: flags, ClientAddr: addr, InitialData: data}
		var buf bytes.Buffer
		if err := WriteHeader(&buf, h); err != nil {
			return false
		}
		got, err := ReadHeader(&buf)
		if err != nil {
			return false
		}
		return got.Flags == h.Flags && got.ClientAddr == h.ClientAddr &&
			bytes.Equal(got.InitialData, h.InitialData)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRejectsOversized(t *testing.T) {
	if err := WriteHeader(io.Discard, Header{ClientAddr: strings.Repeat("a", MaxAddrLen+1)}); err == nil {
		t.Fatal("oversized address accepted")
	}
	if err := WriteHeader(io.Discard, Header{InitialData: make([]byte, MaxInitialData+1)}); err == nil {
		t.Fatal("oversized initial data accepted")
	}
}

func TestReadHeaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("GARBAGE!"),
		[]byte("LARD"),                    // truncated
		{'L', 'A', 'R', 'D', 99, 0, 0, 0}, // bad version
		{'L', 'A', 'R', 'D', version, 0, 0xFF, 0xFF}, // address too long
	}
	for i, in := range cases {
		if _, err := ReadHeader(bytes.NewReader(in)); err == nil {
			t.Fatalf("case %d: garbage accepted", i)
		}
	}
}

// startBackend runs an http.Server on a handoff.Listener and returns its
// address and the listener.
func startBackend(t *testing.T, handler http.Handler) (string, *Listener) {
	t.Helper()
	ln, err := Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close(); ln.Close() })
	return ln.Addr().String(), ln
}

// handoffRequest performs the front-end side by hand: connects to the
// backend, sends a handoff header carrying an HTTP request, and returns
// the raw response bytes.
func handoffRequest(t *testing.T, addr, clientAddr, request string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := Send(conn, clientAddr, []byte(request), 0); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestHandoffServesUnmodifiedHTTPServer(t *testing.T) {
	var gotRemote string
	addr, _ := startBackend(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotRemote = r.RemoteAddr
		fmt.Fprintf(w, "hello %s", r.URL.Path)
	}))
	resp := handoffRequest(t, addr, "192.0.2.9:1234",
		"GET /docs/a.html HTTP/1.1\r\nHost: lard\r\nConnection: close\r\n\r\n")
	if !strings.Contains(resp, "200 OK") || !strings.Contains(resp, "hello /docs/a.html") {
		t.Fatalf("response:\n%s", resp)
	}
	// The paper's transparency claim: the server sees the *client's*
	// address, not the front end's.
	if gotRemote != "192.0.2.9:1234" {
		t.Fatalf("backend saw RemoteAddr %q, want client address", gotRemote)
	}
}

func TestHandoffInitialDataPlusStreamedData(t *testing.T) {
	// A request head split across the handoff message and the live
	// stream must reassemble seamlessly.
	addr, _ := startBackend(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		fmt.Fprintf(w, "got %d bytes", len(body))
	}))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	head := "POST /upload HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\nConnection: close\r\n\r\napple"
	if err := Send(conn, "203.0.113.5:5555", []byte(head), 0); err != nil {
		t.Fatal(err)
	}
	// The remaining body bytes arrive over the connection itself.
	if _, err := conn.Write([]byte("grape")); err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).CloseWrite()
	out, _ := io.ReadAll(conn)
	if !strings.Contains(string(out), "got 10 bytes") {
		t.Fatalf("response:\n%s", out)
	}
}

func TestListenerRejectsBadHandshake(t *testing.T) {
	addr, ln := startBackend(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	// A raw HTTP client (no handoff header) must be dropped without
	// killing the accept loop.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("non-handoff connection was served")
	}
	conn.Close()
	// And a proper handoff still works afterwards.
	resp := handoffRequest(t, addr, "192.0.2.1:1", "GET / HTTP/1.0\r\n\r\n")
	if !strings.Contains(resp, "200 OK") {
		t.Fatalf("listener died after bad handshake:\n%s", resp)
	}
	if ln.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", ln.Rejected())
	}
}

func TestConnReadsDrainInitialFirst(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := newConn(b, bufio.NewReader(b), Header{ClientAddr: "198.51.100.2:999", InitialData: []byte("abcdef")})
	go func() {
		a.Write([]byte("ghi"))
		a.Close()
	}()
	out, err := io.ReadAll(c)
	if err != nil && err != io.EOF && !strings.Contains(err.Error(), "closed") {
		t.Fatal(err)
	}
	if string(out) != "abcdefghi" {
		t.Fatalf("read %q", out)
	}
	if c.RemoteAddr().String() != "198.51.100.2:999" {
		t.Fatalf("RemoteAddr = %v", c.RemoteAddr())
	}
}

func TestConnUnparseableClientAddr(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	c := newConn(b, bufio.NewReader(b), Header{ClientAddr: "not-an-address"})
	if c.RemoteAddr().String() != "not-an-address" {
		t.Fatalf("RemoteAddr = %v", c.RemoteAddr())
	}
	if c.RemoteAddr().Network() != "tcp" {
		t.Fatalf("Network = %v", c.RemoteAddr().Network())
	}
}

func TestForwardSplicesBidirectionally(t *testing.T) {
	// client <-> (fe splice) <-> backend, with byte accounting.
	clientFE, feClient := net.Pipe() // client's side, fe's client-facing side
	feBE, beFE := net.Pipe()         // fe's backend-facing side, backend's side

	var stats ForwardStats
	done := make(chan struct{})
	go func() {
		Forward(feClient, feBE, &stats)
		close(done)
	}()

	// Backend echoes twice what it reads.
	go func() {
		buf := make([]byte, 5)
		io.ReadFull(beFE, buf)
		beFE.Write(append(buf, buf...))
		beFE.Close()
	}()

	clientFE.Write([]byte("hello"))
	out := make([]byte, 10)
	if _, err := io.ReadFull(clientFE, out); err != nil {
		t.Fatal(err)
	}
	if string(out) != "hellohello" {
		t.Fatalf("got %q", out)
	}
	clientFE.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Forward did not terminate")
	}
	if stats.ClientToBackend.Load() != 5 || stats.BackendToClient.Load() != 10 {
		t.Fatalf("stats: c2b=%d b2c=%d", stats.ClientToBackend.Load(), stats.BackendToClient.Load())
	}
}

func TestConcurrentHandoffs(t *testing.T) {
	addr, _ := startBackend(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "path=%s", r.URL.Path)
	}))
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			path := fmt.Sprintf("/doc%d", i)
			resp := handoffRequest(t, addr, fmt.Sprintf("10.0.0.%d:1000", i),
				fmt.Sprintf("GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n", path))
			if !strings.Contains(resp, "path="+path) {
				errs <- fmt.Errorf("wrong response for %s: %s", path, resp)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
