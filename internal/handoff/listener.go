package handoff

import (
	"net"
	"sync/atomic"
	"time"
)

// Listener accepts handed-off connections on the back end and presents
// them as ordinary net.Conns whose RemoteAddr is the original client's —
// so an unmodified net/http server (or any other TCP server) can serve
// handed-off connections directly, mirroring the paper's transparency
// property.
type Listener struct {
	ln net.Listener

	// HandshakeTimeout bounds how long a newly accepted connection may
	// take to deliver its handoff header (default 5s).
	HandshakeTimeout time.Duration

	// rejected counts connections dropped for bad handshakes.
	rejected atomic.Uint64
}

// Listen announces on the local network address and returns a handoff
// Listener for it.
func Listen(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return NewListener(ln), nil
}

// NewListener wraps an existing listener.
func NewListener(ln net.Listener) *Listener {
	return &Listener{ln: ln, HandshakeTimeout: 5 * time.Second}
}

// Accept waits for the next successfully handed-off connection. A peer
// that fails the handoff handshake is closed and counted, not surfaced as
// an Accept error, so one malformed client cannot stop an http.Server
// loop.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		raw, err := l.ln.Accept()
		if err != nil {
			return nil, err
		}
		if l.HandshakeTimeout > 0 {
			raw.SetReadDeadline(time.Now().Add(l.HandshakeTimeout))
		}
		h, err := ReadHeader(raw)
		if err != nil {
			raw.Close()
			l.rejected.Add(1)
			continue
		}
		raw.SetReadDeadline(time.Time{})
		return newConn(raw, h), nil
	}
}

// Close closes the underlying listener.
func (l *Listener) Close() error { return l.ln.Close() }

// Addr returns the listener's network address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Rejected returns how many connections were dropped for failing the
// handoff handshake.
func (l *Listener) Rejected() uint64 { return l.rejected.Load() }

// Conn is a handed-off connection: reads drain the handoff message's
// initial data before touching the network, and RemoteAddr reports the
// original client's address.
type Conn struct {
	net.Conn
	initial    []byte
	clientAddr net.Addr
	flags      byte
}

// newConn wraps a raw connection using the parsed handoff header.
func newConn(raw net.Conn, h Header) *Conn {
	var addr net.Addr
	if tcp, err := net.ResolveTCPAddr("tcp", h.ClientAddr); err == nil {
		addr = tcp
	} else {
		addr = clientAddr(h.ClientAddr)
	}
	return &Conn{Conn: raw, initial: h.InitialData, clientAddr: addr, flags: h.Flags}
}

// Read implements net.Conn, serving the handed-off initial data first.
func (c *Conn) Read(p []byte) (int, error) {
	if len(c.initial) > 0 {
		n := copy(p, c.initial)
		c.initial = c.initial[n:]
		return n, nil
	}
	return c.Conn.Read(p)
}

// RemoteAddr reports the original client's address, as the paper's
// client-transparent handoff does.
func (c *Conn) RemoteAddr() net.Addr { return c.clientAddr }

// Flags returns the handoff flags (e.g. FlagRehandoff).
func (c *Conn) Flags() byte { return c.flags }

// clientAddr is the fallback address representation when the handed-off
// client address is not a parseable TCP address.
type clientAddr string

func (a clientAddr) Network() string { return "tcp" }
func (a clientAddr) String() string  { return string(a) }
