package handoff

import (
	"bufio"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lard/internal/httprelay"
)

// DefaultSessionIdleTimeout is how long a session-framed transport may
// sit idle between sessions (in the front end's pool) before the back
// end closes it. It is deliberately much longer than the front end's
// default pool TTL, so the front end's eviction is what normally ends an
// idle transport; this is only the safety net against a front end that
// vanished without closing.
const DefaultSessionIdleTimeout = 2 * time.Minute

// Listener accepts handed-off connections on the back end and presents
// them as ordinary net.Conns whose RemoteAddr is the original client's —
// so an unmodified net/http server (or any other TCP server) can serve
// handed-off connections directly, mirroring the paper's transparency
// property.
//
// A connection whose handoff header carries FlagSessionFramed is a
// session-sequenced transport (protocol v2): Accept yields one virtual
// net.Conn per handed-off session, all sharing the one TCP connection,
// so the front end can pool and reuse back-end connections across client
// sessions. Plain (v1) headers consume the connection as before.
type Listener struct {
	ln net.Listener

	// HandshakeTimeout bounds how long a newly accepted connection may
	// take to deliver its handoff header (default 5s). On a session-
	// framed transport it also bounds each subsequent header, measured
	// from that header's first byte.
	HandshakeTimeout time.Duration

	// SessionIdleTimeout bounds how long a session-framed transport may
	// wait between sessions for the next header's first byte (default
	// DefaultSessionIdleTimeout; negative = no limit).
	SessionIdleTimeout time.Duration

	// rejected counts connections dropped for bad handshakes; sessions
	// counts handed-off sessions accepted (v1 connections count one
	// each).
	rejected atomic.Uint64
	sessions atomic.Uint64

	acceptCh  chan net.Conn
	tempErrCh chan error
	done      chan struct{}

	startOnce sync.Once
	closeOnce sync.Once

	errMu   sync.Mutex
	err     error
	errDone chan struct{}

	// transports tracks live session-framed transports so Close can tear
	// them down (their lifetime is the listener's between sessions, not
	// any accepted conn's).
	transMu    sync.Mutex
	transports map[net.Conn]struct{}
}

// Listen announces on the local network address and returns a handoff
// Listener for it.
func Listen(network, addr string) (*Listener, error) {
	ln, err := net.Listen(network, addr)
	if err != nil {
		return nil, err
	}
	return NewListener(ln), nil
}

// NewListener wraps an existing listener.
func NewListener(ln net.Listener) *Listener {
	return &Listener{
		ln:                 ln,
		HandshakeTimeout:   5 * time.Second,
		SessionIdleTimeout: DefaultSessionIdleTimeout,
		acceptCh:           make(chan net.Conn),
		tempErrCh:          make(chan error),
		done:               make(chan struct{}),
		errDone:            make(chan struct{}),
		transports:         make(map[net.Conn]struct{}),
	}
}

// Accept waits for the next successfully handed-off connection or
// session. A peer that fails the handoff handshake is closed and
// counted, not surfaced as an Accept error, so one malformed client
// cannot stop an http.Server loop.
func (l *Listener) Accept() (net.Conn, error) {
	l.startOnce.Do(func() { go l.acceptLoop() })
	select {
	case c := <-l.acceptCh:
		return c, nil
	case err := <-l.tempErrCh:
		// A transient accept failure (EMFILE, ECONNABORTED): surfaced to
		// this caller — http.Server backs off and retries — while the
		// accept loop keeps running.
		return nil, err
	case <-l.errDone:
		return nil, l.acceptErr()
	}
}

func (l *Listener) acceptErr() error {
	l.errMu.Lock()
	defer l.errMu.Unlock()
	return l.err
}

func (l *Listener) setAcceptErr(err error) {
	l.errMu.Lock()
	if l.err == nil {
		l.err = err
		close(l.errDone)
	}
	l.errMu.Unlock()
}

// acceptLoop pulls raw TCP connections and hands each to its own
// handshake goroutine, so one slow handshake cannot delay other peers.
// Transient accept errors are reported without stopping the loop — a
// moment of fd pressure must not kill the listener for good; only a
// permanent failure (the listener closed) latches.
func (l *Listener) acceptLoop() {
	for {
		raw, err := l.ln.Accept()
		if err != nil {
			// The same transient test http.Server applies before backing
			// off and retrying (net.Error.Temporary, via a local
			// interface: the method is deprecated for new APIs but is
			// precisely the accept-retry contract).
			type temporary interface{ Temporary() bool }
			if te, ok := err.(temporary); ok && te.Temporary() {
				select {
				case l.tempErrCh <- err:
				case <-l.done:
					l.setAcceptErr(err)
					return
				}
				continue
			}
			l.setAcceptErr(err)
			return
		}
		go l.handshake(raw)
	}
}

// handshake reads the first handoff header and routes the connection: a
// v1 header yields the connection itself, a session-framed header starts
// the transport loop that yields one virtual conn per session.
func (l *Listener) handshake(raw net.Conn) {
	br := httprelay.GetReader(raw)
	if l.HandshakeTimeout > 0 {
		raw.SetReadDeadline(time.Now().Add(l.HandshakeTimeout))
	}
	if _, err := br.Peek(1); err != nil {
		// Nothing ever arrived: a health-probe dial, or a pool-seeded
		// transport the front end discarded before first use. A quiet
		// close, not a handshake failure.
		raw.Close()
		httprelay.PutReader(br)
		return
	}
	h, err := ReadHeader(br)
	if err != nil {
		raw.Close()
		httprelay.PutReader(br)
		l.rejected.Add(1)
		return
	}
	raw.SetReadDeadline(time.Time{})
	if h.Flags&FlagSessionFramed != 0 {
		l.addTransport(raw)
		l.serveTransport(raw, br, h)
		return
	}
	l.sessions.Add(1)
	c := newConn(raw, br, h)
	if !l.deliver(c) {
		// Never delivered: this goroutine is still the reader's only
		// user, so it can be recycled (unlike a delivered v1 conn, whose
		// reader lives as long as the server keeps the conn).
		raw.Close()
		httprelay.PutReader(br)
	}
}

// deliver pushes an accepted conn to Accept, reporting false if the
// listener closed first.
func (l *Listener) deliver(c net.Conn) bool {
	select {
	case l.acceptCh <- c:
		return true
	case <-l.done:
		return false
	}
}

// serveTransport runs one session-framed transport: yield a virtual conn
// for the current header, wait for the server to finish with it, then
// read the next header — for as long as each session is drained through
// its end-of-session record and headers keep parsing. Sessions on one
// transport are strictly sequential, mirroring the front end's pool
// (a pooled connection is checked out by at most one client session).
func (l *Listener) serveTransport(raw net.Conn, br *bufio.Reader, h Header) {
	defer l.dropTransport(raw)
	for {
		l.sessions.Add(1)
		sc := newSessionConn(raw, br, h)
		if !l.deliver(sc) {
			// Undelivered: the loop is still the reader's only user.
			httprelay.PutReader(br)
			return
		}
		select {
		case <-sc.closed:
			// The server closed the session; net/http quiesces its reads
			// before Close returns, so from here the loop is again the
			// reader's only user.
		case <-l.done:
			// Listener shutdown with the session possibly live: the server
			// may still be reading through br, so it must NOT be recycled.
			return
		}
		if !sc.drained() {
			// The server abandoned the session mid-stream (error response,
			// handler close): the transport's read position is inside the
			// dead session's frames, so it cannot be reused.
			httprelay.PutReader(br)
			return
		}
		h2, err := l.readNextHeader(raw, br)
		if err != nil {
			if err != errIdleClosed {
				l.rejected.Add(1)
			}
			httprelay.PutReader(br)
			return
		}
		h = h2
	}
}

// errIdleClosed marks a transport that ended cleanly between sessions —
// the front end evicted it from its pool — which is not a handshake
// failure.
var errIdleClosed = &idleClosedError{}

type idleClosedError struct{}

func (*idleClosedError) Error() string { return "handoff: transport closed while idle" }

// readNextHeader waits (bounded by SessionIdleTimeout) for the next
// session's header on an idle transport, then requires the complete
// header within HandshakeTimeout of its first byte.
func (l *Listener) readNextHeader(raw net.Conn, br *bufio.Reader) (Header, error) {
	idle := l.SessionIdleTimeout
	if idle == 0 {
		idle = DefaultSessionIdleTimeout
	}
	if idle > 0 {
		raw.SetReadDeadline(time.Now().Add(idle))
	} else {
		raw.SetReadDeadline(time.Time{})
	}
	if _, err := br.Peek(1); err != nil {
		// EOF here is the pool eviction path: the front end closed a
		// transport it no longer wants. Deadline expiry is the back end
		// giving up on a front end that vanished. Neither is a handshake
		// fault.
		return Header{}, errIdleClosed
	}
	if l.HandshakeTimeout > 0 {
		raw.SetReadDeadline(time.Now().Add(l.HandshakeTimeout))
	} else {
		raw.SetReadDeadline(time.Time{})
	}
	h, err := ReadHeader(br)
	if err != nil {
		return Header{}, err
	}
	raw.SetReadDeadline(time.Time{})
	return h, nil
}

func (l *Listener) addTransport(raw net.Conn) {
	l.transMu.Lock()
	l.transports[raw] = struct{}{}
	l.transMu.Unlock()
}

func (l *Listener) dropTransport(raw net.Conn) {
	l.transMu.Lock()
	delete(l.transports, raw)
	l.transMu.Unlock()
	raw.Close()
}

// Close closes the underlying listener and every session-framed
// transport (virtual conns handed to the server see read errors and
// close in turn).
func (l *Listener) Close() error {
	var err error
	l.closeOnce.Do(func() {
		close(l.done)
		err = l.ln.Close()
		l.transMu.Lock()
		for raw := range l.transports {
			raw.Close()
		}
		l.transMu.Unlock()
	})
	return err
}

// Addr returns the listener's network address.
func (l *Listener) Addr() net.Addr { return l.ln.Addr() }

// Rejected returns how many connections were dropped for failing the
// handoff handshake.
func (l *Listener) Rejected() uint64 { return l.rejected.Load() }

// Sessions returns how many handed-off sessions have been accepted
// (plain v1 connections count one each).
func (l *Listener) Sessions() uint64 { return l.sessions.Load() }

// Conn is a handed-off connection (plain v1 handoff: the whole TCP
// connection carries exactly one session): reads drain the handoff
// message's initial data before touching the network, and RemoteAddr
// reports the original client's address.
type Conn struct {
	net.Conn
	br         *bufio.Reader
	initial    []byte
	clientAddr net.Addr
	flags      byte
}

// newConn wraps a raw connection using the parsed handoff header. br
// holds any bytes the handshake read past the header.
func newConn(raw net.Conn, br *bufio.Reader, h Header) *Conn {
	return &Conn{Conn: raw, br: br, initial: h.InitialData, clientAddr: parseClientAddr(h.ClientAddr), flags: h.Flags}
}

// Read implements net.Conn, serving the handed-off initial data first.
//
//lard:noalloc
func (c *Conn) Read(p []byte) (int, error) {
	if len(c.initial) > 0 {
		n := copy(p, c.initial)
		c.initial = c.initial[n:]
		return n, nil
	}
	return c.br.Read(p)
}

// RemoteAddr reports the original client's address, as the paper's
// client-transparent handoff does.
func (c *Conn) RemoteAddr() net.Addr { return c.clientAddr }

// Flags returns the handoff flags (e.g. FlagRehandoff).
func (c *Conn) Flags() byte { return c.flags }

// clientAddr is the fallback address representation when the handed-off
// client address is not a parseable TCP address.
type clientAddr string

func (a clientAddr) Network() string { return "tcp" }
func (a clientAddr) String() string  { return string(a) }
