package breaker

import (
	"math/rand"
	"testing"
	"time"
)

// testConfig is small and fast so tests can walk the whole cycle.
func testConfig() Config {
	return Config{
		FailureThreshold: 3,
		FailureRate:      0.5,
		WindowMinSamples: 10,
		Window:           time.Second,
		OpenBase:         100 * time.Millisecond,
		OpenMax:          800 * time.Millisecond,
		HalfOpenProbes:   2,
		Ramp:             []int{25, 50, 100},
		RampStep:         50 * time.Millisecond,
	}
}

func trip(t *testing.T, s *Set, id int, now time.Duration) time.Duration {
	t.Helper()
	for i := 0; i < s.Config().FailureThreshold; i++ {
		s.Failure(id, now)
		now += time.Millisecond
	}
	if st := s.State(id, now); st != Open {
		t.Fatalf("after %d failures state = %v, want Open", s.Config().FailureThreshold, st)
	}
	return now
}

func TestTripOnConsecutiveFailures(t *testing.T) {
	s := New(testConfig())
	now := time.Duration(0)
	s.Failure(0, now)
	s.Failure(0, now)
	if st := s.State(0, now); st != Closed {
		t.Fatalf("state after 2 failures = %v, want Closed", st)
	}
	s.Success(0, now) // resets the consecutive count
	s.Failure(0, now)
	s.Failure(0, now)
	if st := s.State(0, now); st != Closed {
		t.Fatalf("success did not reset consecutive failures: %v", st)
	}
	s.Failure(0, now)
	if st := s.State(0, now); st != Open {
		t.Fatalf("state after 3 consecutive failures = %v, want Open", st)
	}
	if !s.Healthy(1, now) || !s.Allow(1, now) {
		t.Fatal("other node's breaker must be unaffected")
	}
}

func TestTripOnFailureRate(t *testing.T) {
	cfg := testConfig()
	cfg.FailureThreshold = 1000 // only the rate can trip
	s := New(cfg)
	now := time.Duration(0)
	// Alternate success/failure: 50% rate, min samples 10.
	for i := 0; i < 9; i++ {
		if i%2 == 0 {
			s.Failure(0, now)
		} else {
			s.Success(0, now)
		}
		if st := s.State(0, now); st != Closed {
			t.Fatalf("tripped before WindowMinSamples at i=%d", i)
		}
	}
	s.Failure(0, now) // 10th sample pushes fails/total to 6/10 ≥ 0.5
	if st := s.State(0, now); st != Open {
		t.Fatalf("state = %v, want Open on failure rate", st)
	}
}

func TestWindowExpiryForgetsRate(t *testing.T) {
	cfg := testConfig()
	cfg.FailureThreshold = 1000
	s := New(cfg)
	now := time.Duration(0)
	for i := 0; i < 4; i++ {
		s.Failure(0, now)
		s.Success(0, now)
		now += 10 * time.Millisecond
	}
	// Window expires; old failures must not count toward the rate.
	now += cfg.Window
	for i := 0; i < 9; i++ {
		s.Success(0, now)
	}
	s.Failure(0, now)
	if st := s.State(0, now); st != Closed {
		t.Fatalf("state = %v, want Closed after window reset (1/10 failures)", st)
	}
}

func TestHalfOpenAdmitsExactlyProbeBudget(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	if s.Allow(0, now) {
		t.Fatal("Open must not admit")
	}
	now += s.backoff(1)
	if st := s.State(0, now); st != HalfOpen {
		t.Fatalf("state after backoff = %v, want HalfOpen", st)
	}
	admitted := 0
	for i := 0; i < 50; i++ {
		if s.Allow(0, now) {
			admitted++
		}
	}
	if admitted != cfg.HalfOpenProbes {
		t.Fatalf("half-open admitted %d, want exactly %d", admitted, cfg.HalfOpenProbes)
	}
	// Healthy (non-consuming) must report unhealthy once the budget is
	// spent, but must never have consumed it itself.
	if s.Healthy(0, now) {
		t.Fatal("Healthy must be false once the probe budget is spent")
	}
}

func TestHealthyDoesNotConsumeBudget(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	now += s.backoff(1)
	for i := 0; i < 100; i++ {
		if !s.Healthy(0, now) {
			t.Fatalf("Healthy consumed probe budget at call %d", i)
		}
	}
	admitted := 0
	for i := 0; i < 10; i++ {
		if s.Allow(0, now) {
			admitted++
		}
	}
	if admitted != cfg.HalfOpenProbes {
		t.Fatalf("admitted %d after Healthy calls, want %d", admitted, cfg.HalfOpenProbes)
	}
}

func TestHalfOpenFailureReopensWithDoubledBackoff(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	now += s.backoff(1)
	if !s.Allow(0, now) {
		t.Fatal("half-open must admit a probe")
	}
	s.Failure(0, now)
	if st := s.State(0, now); st != Open {
		t.Fatalf("state = %v, want Open after probe failure", st)
	}
	// First backoff must not be enough the second time around.
	if st := s.State(0, now+s.backoff(1)); st != Open {
		t.Fatalf("reopened breaker came back after base backoff; want doubled")
	}
	if st := s.State(0, now+s.backoff(2)); st != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen after doubled backoff", st)
	}
}

func TestBackoffCapped(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	if got := s.backoff(20); got != cfg.OpenMax {
		t.Fatalf("backoff(20) = %v, want cap %v", got, cfg.OpenMax)
	}
}

func TestRecoveryRampMonotoneAndCloses(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	now += s.backoff(1)
	for i := 0; i < cfg.HalfOpenProbes; i++ {
		if !s.Allow(0, now) {
			t.Fatal("probe budget exhausted early")
		}
		s.Success(0, now)
	}
	if st := s.State(0, now); st != Recovering {
		t.Fatalf("state = %v, want Recovering after successful probes", st)
	}

	// Sample the admitted fraction at each ramp level; it must be
	// monotone non-decreasing and end at full admission, then Closed.
	prev := -1.0
	for level := range cfg.Ramp {
		admitted := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			if s.Allow(0, now) {
				admitted++
			}
		}
		frac := float64(admitted) / trials
		want := float64(cfg.Ramp[level]) / 100
		if frac < want-0.05 || frac > want+0.05 {
			t.Fatalf("level %d admitted fraction %.2f, want ≈%.2f", level, frac, want)
		}
		if frac < prev {
			t.Fatalf("recovery ramp not monotone: %.2f after %.2f", frac, prev)
		}
		prev = frac
		now += cfg.RampStep
	}
	if st := s.State(0, now); st != Closed {
		t.Fatalf("state = %v, want Closed after full ramp", st)
	}
	// A full close resets the trip count: next trip uses base backoff.
	now = trip(t, s, 0, now)
	if st := s.State(0, now+s.backoff(1)); st != HalfOpen {
		t.Fatalf("trip count not reset by full close: %v", st)
	}
}

func TestRecoveringFailureReopens(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	now += s.backoff(1)
	for i := 0; i < cfg.HalfOpenProbes; i++ {
		s.Allow(0, now)
		s.Success(0, now)
	}
	s.Failure(0, now)
	if st := s.State(0, now); st != Open {
		t.Fatalf("state = %v, want Open after failure during recovery", st)
	}
}

func TestSuccessWhileOpenStartsProbeRound(t *testing.T) {
	// The front-end prober dials a marked-down node out of band; its
	// success is evidence even while the breaker is Open.
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	s.Success(0, now) // prober got through: HalfOpen, 1 success credited
	if st := s.State(0, now); st != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen after success while open", st)
	}
	s.Success(0, now) // second probe success completes the budget of 2
	if st := s.State(0, now); st != Recovering {
		t.Fatalf("state = %v, want Recovering", st)
	}
}

func TestHungHalfOpenReopensWithoutPenalty(t *testing.T) {
	cfg := testConfig()
	s := New(cfg)
	now := trip(t, s, 0, 0)
	now += s.backoff(1)
	s.Allow(0, now) // probe issued, outcome never reported
	now += s.backoff(1)
	if st := s.State(0, now); st != Open {
		t.Fatalf("state = %v, want Open after hung half-open round", st)
	}
	// Trip count unchanged: base backoff re-admits probes.
	now += s.backoff(1)
	if st := s.State(0, now); st != HalfOpen {
		t.Fatalf("state = %v, want HalfOpen (no backoff penalty for hung probes)", st)
	}
}

// TestNeverStuckOpen is the headline liveness property: whatever
// outcome sequence a breaker has absorbed, once failures stop, bounded
// time plus the node's own successful probes always bring it back to
// Closed.
func TestNeverStuckOpen(t *testing.T) {
	cfg := testConfig()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New(cfg)
		now := time.Duration(0)
		// Arbitrary history: random outcomes and time steps.
		for i := 0; i < 500; i++ {
			switch rng.Intn(3) {
			case 0:
				s.Failure(0, now)
			case 1:
				s.Success(0, now)
			case 2:
				s.Allow(0, now)
			}
			now += time.Duration(rng.Intn(int(cfg.OpenBase)))
		}
		// Recovery phase: the node is healthy; every admitted request
		// succeeds. The breaker must reach Closed within a bounded
		// number of backoff spans.
		deadline := now + 20*cfg.OpenMax
		for now < deadline {
			if s.Allow(0, now) {
				s.Success(0, now)
			}
			now += cfg.RampStep / 2
			if s.State(0, now) == Closed {
				break
			}
		}
		if st := s.State(0, now); st != Closed {
			t.Fatalf("seed %d: breaker stuck in %v after healthy phase", seed, st)
		}
	}
}

func TestSnapshotAndReset(t *testing.T) {
	s := New(testConfig())
	now := trip(t, s, 1, 0)
	snap := s.Snapshot(now)
	if len(snap) != 2 {
		t.Fatalf("snapshot length = %d, want 2", len(snap))
	}
	if snap[0].State != Closed || snap[1].State != Open || snap[1].Trips != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	s.Reset(1)
	if st := s.State(1, now); st != Closed {
		t.Fatalf("state after Reset = %v, want Closed", st)
	}
}

func TestTransitionCallback(t *testing.T) {
	var seen []string
	cfg := testConfig()
	cfg.OnTransition = func(node int, from, to State, now time.Duration) {
		seen = append(seen, from.String()+"->"+to.String())
	}
	s := New(cfg)
	now := trip(t, s, 0, 0)
	now += s.backoff(1)
	s.State(0, now) // forces Open -> HalfOpen
	for i := 0; i < cfg.HalfOpenProbes; i++ {
		s.Allow(0, now)
		s.Success(0, now)
	}
	want := []string{"closed->open", "open->halfopen", "halfopen->recovering"}
	if len(seen) != len(want) {
		t.Fatalf("transitions %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
}
