// Package breaker implements per-back-end circuit breakers for the
// front end's overload-protection layer.
//
// A breaker watches the stream of connection outcomes for one back-end
// node and decides whether new traffic should be offered to it at all.
// It is deliberately layered *under* the front end's mark-down/prober
// machinery: mark-down reacts to hard dial failures with an oracle-like
// "the node is gone" verdict, while the breaker also absorbs softer
// evidence (stale pooled connections, failure *rates*) and — more
// importantly — controls how traffic is re-admitted after recovery,
// ramping the node back up instead of slamming it with its full LARD
// target set the instant one probe succeeds.
//
// The state machine:
//
//	Closed ──(consecutive failures ≥ K, or windowed failure rate ≥ R)──▶ Open
//	Open ──(backoff elapses; backoff doubles per trip, capped)──▶ HalfOpen
//	HalfOpen ──(probe budget succeeds)──▶ Recovering ──(ramp holds)──▶ Closed
//	HalfOpen/Recovering ──(any failure)──▶ Open (backoff doubled)
//
// In HalfOpen exactly Config.HalfOpenProbes requests are admitted; their
// outcomes decide the transition. In Recovering an increasing fraction
// of requests is admitted (Config.Ramp, e.g. 25% → 50% → 100%), each
// step held for Config.RampStep without a failure before advancing.
//
// All methods take the current time as a time.Duration on the caller's
// clock — virtual in simulation, time.Since(start) in the live front
// end — so the package is simulable and lardlint-wallclock-checkable.
// Transitions are computed lazily at query time; nothing ticks.
//
// Concurrency: a Set is a single mutex around dense per-node state. It
// is a leaf lock — no callback out of the package is made while it is
// held except Config.OnTransition, which therefore must not call back
// into the Set.
package breaker

import (
	"sync"
	"time"
)

// State is a breaker's position in the trip/recover cycle.
type State uint8

const (
	// Closed admits all traffic (the healthy state).
	Closed State = iota
	// Open admits nothing until the trip backoff elapses.
	Open
	// HalfOpen admits exactly the probe budget and judges the node by
	// those probes' outcomes.
	HalfOpen
	// Recovering admits a ramping fraction of traffic on the way from a
	// successful probe round back to Closed.
	Recovering
)

// String returns the lower-case state name used in metrics labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "halfopen"
	case Recovering:
		return "recovering"
	}
	return "invalid"
}

// Config tunes every breaker in a Set. The zero value selects the
// defaults documented per field.
type Config struct {
	// FailureThreshold trips the breaker after this many consecutive
	// failures regardless of rate (default 5; the front end's dial
	// mark-down usually fires first and stops the count — the breaker
	// then trips on the prober's continued failures).
	FailureThreshold int

	// FailureRate trips the breaker when the failure fraction within the
	// current window reaches this value (default 0.5), provided at least
	// WindowMinSamples outcomes were observed in the window.
	FailureRate float64

	// WindowMinSamples is the minimum number of outcomes in the window
	// before FailureRate applies (default 20) — a single failed request
	// out of two must not trip a node.
	WindowMinSamples int

	// Window is the length of the failure-rate accounting epoch
	// (default 10s). Counters reset when a window expires.
	Window time.Duration

	// OpenBase is the first trip's backoff (default 1s). Each further
	// trip without reaching Closed doubles it, capped at OpenMax.
	OpenBase time.Duration

	// OpenMax caps the exponential backoff (default 30s).
	OpenMax time.Duration

	// HalfOpenProbes is the probe budget: exactly this many requests are
	// admitted in HalfOpen (default 3). All must succeed to start
	// recovery; any failure re-opens.
	HalfOpenProbes int

	// Ramp is the graduated-recovery schedule as admitted percentages
	// (default 25, 50, 100). Each step is held for RampStep without a
	// failure before advancing; after the last step's hold the breaker
	// closes and the trip count resets.
	Ramp []int

	// RampStep is the hold time per recovery step (default 2s).
	RampStep time.Duration

	// OnTransition, when non-nil, is called (with the Set's mutex held —
	// it must not call back into the Set) on every state change.
	OnTransition func(node int, from, to State, now time.Duration)
}

func (c *Config) fill() {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.WindowMinSamples <= 0 {
		c.WindowMinSamples = 20
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.OpenBase <= 0 {
		c.OpenBase = time.Second
	}
	if c.OpenMax <= 0 {
		c.OpenMax = 30 * time.Second
	}
	if c.OpenMax < c.OpenBase {
		c.OpenMax = c.OpenBase
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
	if len(c.Ramp) == 0 {
		c.Ramp = []int{25, 50, 100}
	}
	if c.RampStep <= 0 {
		c.RampStep = 2 * time.Second
	}
}

// node is one back end's breaker state. All fields are guarded by the
// owning Set's mutex.
type node struct {
	state State

	// Closed-state accounting.
	consecFails int
	winStart    time.Duration
	winFails    int
	winTotal    int

	// Trip bookkeeping. trips counts consecutive Open entries without an
	// intervening full close; it drives the exponential backoff.
	trips    int
	openedAt time.Duration

	// HalfOpen accounting.
	hoStart     time.Duration
	hoIssued    int // Allow() grants this half-open round
	hoSuccesses int

	// Recovering accounting.
	rampLevel int // index into cfg.Ramp
	rampStart time.Duration
	admitSeq  int // deterministic fraction-admission counter
}

// Set holds one breaker per back-end node, indexed densely the way the
// dispatcher and front end index nodes.
type Set struct {
	mu    sync.Mutex
	cfg   Config
	nodes []*node
}

// New returns a Set with cfg's zero fields filled with defaults.
func New(cfg Config) *Set {
	cfg.fill()
	return &Set{cfg: cfg}
}

// Config returns the Set's effective (default-filled) configuration.
func (s *Set) Config() Config { return s.cfg }

func (s *Set) get(id int) *node {
	if id < 0 {
		return nil
	}
	for len(s.nodes) <= id {
		s.nodes = append(s.nodes, &node{})
	}
	return s.nodes[id]
}

func (s *Set) backoff(trips int) time.Duration {
	d := s.cfg.OpenBase
	for i := 1; i < trips; i++ {
		d *= 2
		if d >= s.cfg.OpenMax {
			return s.cfg.OpenMax
		}
	}
	if d > s.cfg.OpenMax {
		d = s.cfg.OpenMax
	}
	return d
}

func (s *Set) transition(id int, n *node, to State, now time.Duration) {
	from := n.state
	if from == to {
		return
	}
	n.state = to
	if s.cfg.OnTransition != nil {
		s.cfg.OnTransition(id, from, to, now)
	}
}

// advance applies all time-based transitions due at now. It never
// consumes probe budget or admission counters.
func (s *Set) advance(id int, n *node, now time.Duration) {
	switch n.state {
	case Closed:
		if now-n.winStart >= s.cfg.Window {
			n.winStart, n.winFails, n.winTotal = now, 0, 0
		}
	case Open:
		if now-n.openedAt >= s.backoff(n.trips) {
			n.hoStart, n.hoIssued, n.hoSuccesses = now, 0, 0
			s.transition(id, n, HalfOpen, now)
		}
	case HalfOpen:
		// A half-open round whose probes never report back (hung client,
		// lost outcome) must not wedge the breaker: after one backoff
		// span it re-opens — without raising the trip count, since the
		// node was never proven bad — and will probe again.
		if now-n.hoStart >= s.backoff(n.trips) {
			n.openedAt = now
			s.transition(id, n, Open, now)
		}
	case Recovering:
		for n.state == Recovering && now-n.rampStart >= s.cfg.RampStep {
			if n.rampLevel+1 < len(s.cfg.Ramp) {
				n.rampLevel++
				n.rampStart += s.cfg.RampStep
				continue
			}
			s.close(id, n, now)
		}
	}
}

// close resets a breaker to the fully healthy state.
func (s *Set) close(id int, n *node, now time.Duration) {
	n.consecFails, n.winFails, n.winTotal = 0, 0, 0
	n.winStart = now
	n.trips = 0
	s.transition(id, n, Closed, now)
}

// open trips the breaker, increasing the backoff.
func (s *Set) open(id int, n *node, now time.Duration) {
	n.trips++
	n.openedAt = now
	s.transition(id, n, Open, now)
}

// Healthy reports whether node id should be considered eligible for new
// traffic at now. It applies due time-based transitions but consumes no
// probe budget, so it is safe to call any number of times from
// eligibility checks (the dispatcher's node gate, pool check-in).
func (s *Set) Healthy(id int, now time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.get(id)
	if n == nil {
		return true
	}
	s.advance(id, n, now)
	switch n.state {
	case Closed, Recovering:
		return true
	case HalfOpen:
		return n.hoIssued < s.cfg.HalfOpenProbes
	default: // Open
		return false
	}
}

// Allow asks to actually send one request to node id at now, consuming
// half-open probe budget or a recovery-admission slot. The front end
// calls it once per request after the dispatcher picks the node; a
// false return means "pick someone else right now" (the node stays
// formally eligible so its LARD targets are not remapped).
func (s *Set) Allow(id int, now time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.get(id)
	if n == nil {
		return true
	}
	s.advance(id, n, now)
	switch n.state {
	case Closed:
		return true
	case HalfOpen:
		if n.hoIssued < s.cfg.HalfOpenProbes {
			n.hoIssued++
			return true
		}
		return false
	case Recovering:
		// Deterministic Bresenham-style thinning: admit Ramp[level] out
		// of every 100 requests, spread evenly so tests can count on it.
		pct := s.cfg.Ramp[n.rampLevel]
		seq := n.admitSeq
		n.admitSeq++
		return pct >= 100 || (seq*pct)%100 < pct
	default: // Open
		return false
	}
}

// Success records a successful connection/relay outcome for node id.
// Successes observed while Open or HalfOpen (e.g. the front-end
// prober's dials) count toward the probe budget, so an externally
// verified recovery starts the ramp without waiting for user traffic.
func (s *Set) Success(id int, now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.get(id)
	if n == nil {
		return
	}
	s.advance(id, n, now)
	switch n.state {
	case Closed:
		n.consecFails = 0
		n.winTotal++
	case Open:
		// External evidence (the prober) says the node answers again:
		// move into the half-open round and credit this success.
		n.hoStart, n.hoIssued, n.hoSuccesses = now, 1, 0
		s.transition(id, n, HalfOpen, now)
		s.halfOpenSuccess(id, n, now)
	case HalfOpen:
		s.halfOpenSuccess(id, n, now)
	case Recovering:
		// Ramp advancement is purely time-based; nothing to do.
	}
}

func (s *Set) halfOpenSuccess(id int, n *node, now time.Duration) {
	n.hoSuccesses++
	if n.hoSuccesses >= s.cfg.HalfOpenProbes {
		n.rampLevel, n.rampStart, n.admitSeq = 0, now, 0
		s.transition(id, n, Recovering, now)
	}
}

// Failure records a failed connection/relay outcome for node id.
func (s *Set) Failure(id int, now time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.get(id)
	if n == nil {
		return
	}
	s.advance(id, n, now)
	switch n.state {
	case Closed:
		n.consecFails++
		n.winTotal++
		n.winFails++
		if n.consecFails >= s.cfg.FailureThreshold {
			s.open(id, n, now)
			return
		}
		if n.winTotal >= s.cfg.WindowMinSamples &&
			float64(n.winFails) >= s.cfg.FailureRate*float64(n.winTotal) {
			s.open(id, n, now)
		}
	case HalfOpen, Recovering:
		s.open(id, n, now)
	case Open:
		// Already open; prober noise neither extends nor shortens the
		// backoff (extending could starve recovery forever).
	}
}

// State returns node id's state after applying due transitions.
func (s *Set) State(id int, now time.Duration) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.get(id)
	if n == nil {
		return Closed
	}
	s.advance(id, n, now)
	return n.state
}

// Reset returns node id to a fresh Closed breaker (used when a back end
// is administratively removed and its slot may be reused).
func (s *Set) Reset(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id >= 0 && id < len(s.nodes) {
		s.nodes[id] = &node{}
	}
}

// NodeSnapshot is one breaker's externally visible state.
type NodeSnapshot struct {
	Node  int
	State State
	Trips int
}

// Snapshot returns the per-node states after applying due transitions.
func (s *Set) Snapshot(now time.Duration) []NodeSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]NodeSnapshot, 0, len(s.nodes))
	for id, n := range s.nodes {
		s.advance(id, n, now)
		out = append(out, NodeSnapshot{Node: id, State: n.state, Trips: n.trips})
	}
	return out
}
