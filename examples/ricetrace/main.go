// Ricetrace regenerates the paper's headline result — Figures 7, 8 and 9
// (throughput, cache miss ratio, and idle time versus cluster size on the
// Rice University trace) — at a reduced trace length so it finishes in
// about a minute.
//
// Run with:
//
//	go run ./examples/ricetrace
//
// For paper-length runs use: go run ./cmd/lardsim -experiment rice -scale 1.0
package main

import (
	"fmt"
	"log"
	"os"

	"lard/internal/experiments"
)

func main() {
	opt := experiments.Options{
		Seed:     42,
		Scale:    0.1, // 230k of the 2.3M requests
		Nodes:    []int{1, 2, 4, 8, 16},
		Progress: os.Stderr,
	}
	tables, err := experiments.RiceSweep(opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		if _, err := t.WriteTo(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	tput := tables[0]
	wrr, _ := tput.Get("WRR")
	lardr, _ := tput.Get("LARD/R")
	w, _ := wrr.Value(8)
	l, _ := lardr.Value(8)
	fmt.Printf("At 8 nodes LARD/R delivers %.1fx the throughput of WRR\n", l/w)
	fmt.Println("(the paper reports a factor of two to four on workloads whose")
	fmt.Println("working set exceeds a single node's cache).")
}
