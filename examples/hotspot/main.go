// Hotspot demonstrates LARD/R's replication dynamics (paper Sections 2.5
// and 4.2) through the public dispatch API: a single target hot enough to
// overload one back end gets replicated across several, and the replica
// set shrinks again once the target cools off.
//
// The example drives load the way a real front end does — by holding each
// connection's done() open while the request is in flight — and reads the
// replica set back through Dispatcher.Inspect.
//
// Run with:
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"time"

	"lard/pkg/lard"
)

func main() {
	params := lard.Params{TLow: 3, THigh: 8, K: 20 * time.Second}
	d, err := lard.New("lard/r",
		lard.WithNodes(4),
		lard.WithParams(params),
		lard.WithMaxOutstanding(-1), // observe replication, not admission
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Phase 1: /hot becomes popular; every connection stays open, so the")
	fmt.Println("assigned node's load climbs past 2*T_high and the server set grows")
	fmt.Println("(Figure 3's replication rule).")
	var open []func()
	now := time.Duration(0)
	for i := 0; i < 4*2*params.THigh; i++ {
		node, done, err := d.Dispatch(now, lard.Request{Target: "/hot"})
		if err != nil {
			log.Fatal(err)
		}
		open = append(open, done)
		if i%12 == 0 {
			fmt.Printf("  t=%-6v conn %3d -> node %d   serverSet=%v loads=%v\n",
				now, i+1, node, serverSet(d), d.Loads())
		}
		now += 100 * time.Millisecond
	}

	fmt.Println("\nPhase 2: the connections drain; requests go to the least-loaded")
	fmt.Println("member of the server set.")
	for _, done := range open {
		done()
	}
	open = open[:0]
	for i := 0; i < 3; i++ {
		node, done, err := d.Dispatch(now, lard.Request{Target: "/hot"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  t=%-6v request -> node %d (loads %v)\n", now, node, d.Loads())
		open = append(open, done)
		now += time.Second
	}
	for _, done := range open {
		done()
	}

	fmt.Println("\nPhase 3: the target cools off. After K = 20s without set changes,")
	fmt.Println("each request removes the most-loaded replica until one remains.")
	now += params.K + 5*time.Second
	for len(serverSet(d)) > 1 {
		if _, done, err := d.Dispatch(now, lard.Request{Target: "/hot"}); err == nil {
			done()
		}
		fmt.Printf("  t=%-7v serverSet=%v\n", now, serverSet(d))
		now += params.K + 5*time.Second
	}

	d.Inspect(func(_ int, s lard.Strategy, _ lard.LoadReader) {
		r := s.(*lard.LARDR)
		fmt.Printf("\nreplication events: %d grows, %d shrinks, max degree %d\n",
			r.Grows(), r.Shrinks(), r.MaxReplication())
	})
}

// serverSet reads /hot's replica set out of the dispatcher's LARD/R
// instance.
func serverSet(d lard.Dispatcher) []int {
	var set []int
	d.Inspect(func(_ int, s lard.Strategy, _ lard.LoadReader) {
		set = s.(*lard.LARDR).ServerSet("/hot")
	})
	return set
}
