// Hotspot demonstrates LARD/R's replication dynamics (paper Sections 2.5
// and 4.2): a single target hot enough to overload one back end gets
// replicated across several, and the replica set shrinks again once the
// target cools off.
//
// Run with:
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"time"

	"lard/internal/core"
)

// loads is a hand-driven load table standing in for a live cluster.
type loads struct{ active []int }

func (l *loads) NodeCount() int { return len(l.active) }
func (l *loads) Load(i int) int { return l.active[i] }

func main() {
	cluster := &loads{active: make([]int, 4)}
	strategy := core.NewLARDR(cluster, core.DefaultParams())

	fmt.Println("Phase 1: /hot becomes popular; each assigned node is driven past")
	fmt.Println("2*T_high, so the server set grows (Figure 3's replication rule).")
	now := time.Duration(0)
	for step := 0; step < 4; step++ {
		n := strategy.Select(now, core.Request{Target: "/hot"})
		cluster.active[n] = 130 + step // ≥ 2*T_high = 130: overloaded
		fmt.Printf("  t=%-4v request -> node %d   serverSet=%v\n",
			now, n, strategy.ServerSet("/hot"))
		now += time.Second
	}

	fmt.Println("\nPhase 2: load spreads across the replicas; requests go to the")
	fmt.Println("least-loaded member of the server set.")
	cluster.active = []int{40, 10, 25, 55}
	for step := 0; step < 3; step++ {
		n := strategy.Select(now, core.Request{Target: "/hot"})
		fmt.Printf("  t=%-4v request -> node %d (loads %v)\n", now, n, cluster.active)
		cluster.active[n] += 5
		now += time.Second
	}

	fmt.Println("\nPhase 3: the target cools off. After K = 20s without set changes,")
	fmt.Println("each request removes the most-loaded replica until one remains.")
	cluster.active = []int{10, 10, 10, 10}
	now += 25 * time.Second
	for len(strategy.ServerSet("/hot")) > 1 {
		strategy.Select(now, core.Request{Target: "/hot"})
		fmt.Printf("  t=%-5v serverSet=%v\n", now, strategy.ServerSet("/hot"))
		now += 25 * time.Second
	}

	fmt.Printf("\nreplication events: %d grows, %d shrinks, max degree %d\n",
		strategy.Grows(), strategy.Shrinks(), strategy.MaxReplication())
}
