// Prototype runs the paper's Section 6 experiment live: a real front end
// and real back-end HTTP servers on loopback TCP, connected by the handoff
// protocol, driven by a closed-loop load generator — then compares WRR and
// LARD/R, as in Figure 18.
//
// Back-end cache misses pay a scaled-down version of the paper's disk cost
// model, so the cache-aggregation effect is visible in wall-clock
// throughput on a laptop.
//
// Run with:
//
//	go run ./examples/prototype
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"lard/internal/backend"
	"lard/internal/frontend"
	"lard/internal/handoff"
	"lard/internal/loadgen"
	"lard/internal/trace"
)

const (
	backends      = 3
	nodeCacheSize = 1500 << 10 // 1.5 MB per node
	diskTimeScale = 1.0        // the paper's full 28 ms disk model
)

func main() {
	// A workload whose working set (≈6 MB) exceeds one node's cache but
	// fits the three back ends' aggregate.
	cfg := trace.SyntheticConfig{
		Name:         "proto",
		Targets:      800,
		Requests:     6000,
		DataSetBytes: 4 << 20,
		ZipfAlpha:    1.0,
		SizeSigma:    0.8,
		MinFileBytes: 512,
	}
	tr := trace.MustGenerate(cfg, 7)
	fmt.Printf("workload: %s\n\n", tr)

	for _, strategy := range []string{"wrr", "lard/r"} {
		tput, hit := runCluster(strategy, tr)
		fmt.Printf("%-7s %8.1f req/s   cluster cache hit ratio %5.1f%%\n",
			strategy, tput, hit*100)
	}
	fmt.Println("\nLARD/R partitions the working set over the back ends' caches;")
	fmt.Println("WRR makes every cache fight over the same full working set. The")
	fmt.Println("throughput gap understates the hit-ratio gap because loopback TCP")
	fmt.Println("setup dominates per-request latency on a development machine; the")
	fmt.Println("simulator (cmd/lardsim) isolates the effect the paper measures.")
}

// runCluster starts backends+frontend, drives the trace through them, and
// returns throughput and cluster-wide hit ratio.
func runCluster(strategy string, tr *trace.Trace) (float64, float64) {
	store := backend.NewDocStore(tr.Targets)
	var addrs []string
	var nodes []*backend.Server
	var cleanup []func()
	for i := 0; i < backends; i++ {
		be := backend.New(backend.Config{
			Store:         store,
			CacheBytes:    nodeCacheSize,
			DiskTimeScale: diskTimeScale,
		})
		ln, err := handoff.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: be.Handler()}
		go srv.Serve(ln)
		cleanup = append(cleanup, func() { srv.Close(); ln.Close() })
		addrs = append(addrs, ln.Addr().String())
		nodes = append(nodes, be)
	}
	defer func() {
		for _, f := range cleanup {
			f()
		}
	}()

	fe, err := frontend.New(frontend.Config{Backends: addrs, Strategy: strategy})
	if err != nil {
		log.Fatal(err)
	}
	feLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go fe.Serve(feLn)
	defer fe.Close()

	st, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL: "http://" + feLn.Addr().String(),
		Trace:   tr,
		Clients: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	if st.Errors > 0 {
		log.Fatalf("load generation errors: %d", st.Errors)
	}

	var hits, reqs uint64
	for _, n := range nodes {
		s := n.Stats()
		hits += s.Hits
		reqs += s.Requests
	}
	return st.Throughput, float64(hits) / float64(reqs)
}
