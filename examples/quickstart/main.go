// Quickstart reproduces the paper's Figure 1 idea on a small, concrete
// cluster: two back ends serving a catalog of documents whose combined
// working set exceeds a single back end's cache. A locality-aware front
// end partitions the documents over the two caches so nearly every request
// "finds the requested target in the cache at the back end"; weighted
// round-robin sends every document to both nodes and thrashes both caches.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lard/internal/cluster"
	"lard/internal/trace"
)

func main() {
	// 40 documents of 8 KB (320 KB working set) against 200 KB caches:
	// each back end can hold 25 documents — a bit more than half the
	// catalog, as in Figure 1 where each node fits two of three targets.
	tr := &trace.Trace{Name: "figure1"}
	const files = 40
	for i := 0; i < files; i++ {
		tr.Targets = append(tr.Targets, trace.Target{
			Name: fmt.Sprintf("/doc%02d.html", i),
			Size: 8 << 10,
		})
	}
	for i := 0; i < 60000; i++ {
		tr.Requests = append(tr.Requests, int32(i%files))
	}

	fmt.Println("Figure 1: two back ends, 40 x 8 KB documents, 200 KB caches")
	fmt.Println()
	for _, kind := range []cluster.StrategyKind{cluster.WRR, cluster.LARD} {
		cfg := cluster.DefaultConfig(kind, 2)
		cfg.CacheBytes = 200 << 10
		res, err := cluster.Simulate(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s hit ratio %5.1f%%  throughput %7.1f req/s  disk util %3.0f%%  cpu util %3.0f%%\n",
			res.Strategy, res.HitRatio*100, res.Throughput,
			res.DiskUtilization*100, res.CPUUtilization*100)
		for i, n := range res.PerNode {
			fmt.Printf("       back end %d: %5d requests, %2d cached documents\n",
				i+1, n.Requests, n.CacheEntries)
		}
		fmt.Println()
	}
	fmt.Println("LARD partitions the catalog: each back end caches its own documents,")
	fmt.Println("nearly every request hits, and the cluster becomes CPU bound. WRR")
	fmt.Println("cycles all 40 documents through both caches and stays disk bound —")
	fmt.Println("the paper's motivation for content-based request distribution.")
}
