// Quickstart walks through the public dispatch API (pkg/lard): build a
// concurrency-safe Dispatcher by strategy name, stream requests through
// it, and watch the paper's three mechanisms at work — locality (each
// target sticks to one back end), load balancing (connection slots stay
// spread), and admission control (the front end bounds outstanding
// connections at S = (n−1)·T_high + T_low + 1).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"lard/pkg/lard"
)

func main() {
	const nodes = 4
	params := lard.Params{TLow: 2, THigh: 5, K: 20 * time.Second}
	d, err := lard.New("lard/r",
		lard.WithNodes(nodes),
		lard.WithParams(params),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatcher: strategy=%s nodes=%d shards=%d\n\n", d.Name(), d.NodeCount(), d.Shards())

	// The dispatcher's clock: every Dispatch receives a monotonically
	// advancing virtual (or wall-clock) time. LARD/R ages its replica
	// sets on the K interval measured by this clock, so a caller that
	// hard-codes now = 0 silently freezes the aging machinery.
	now := time.Duration(0)
	tick := func() time.Duration {
		now += 100 * time.Millisecond
		return now
	}

	// 1. Locality: requests for the same document always land on the same
	// back end, so its cache keeps the document hot.
	fmt.Println("locality — 12 documents, 3 requests each:")
	assigned := make(map[string]int)
	for round := 0; round < 3; round++ {
		for i := 0; i < 12; i++ {
			target := fmt.Sprintf("/doc%02d.html", i)
			node, done, err := d.Dispatch(tick(), lard.Request{Target: target})
			if err != nil {
				log.Fatal(err)
			}
			done() // request complete: release the connection slot
			if prev, ok := assigned[target]; ok && prev != node {
				log.Fatalf("%s moved from node %d to %d", target, prev, node)
			}
			assigned[target] = node
		}
	}
	perNode := make([]int, nodes)
	for _, n := range assigned {
		perNode[n]++
	}
	fmt.Printf("  every repeat request hit its first node; documents per node: %v\n\n", perNode)

	// 2. Load accounting: holding done() open models an in-flight
	// connection; the dispatcher's load table drives balancing.
	fmt.Println("load accounting — 8 held connections:")
	var dones []func()
	for i := 0; i < 8; i++ {
		_, done, err := d.Dispatch(tick(), lard.Request{Target: fmt.Sprintf("/doc%02d.html", i)})
		if err != nil {
			log.Fatal(err)
		}
		dones = append(dones, done)
	}
	fmt.Printf("  active connections per node: %v (in flight: %d)\n\n", d.Loads(), d.InFlight())

	// 3. Admission control: beyond S outstanding connections the
	// dispatcher rejects rather than overcommit the cluster.
	s := params.MaxOutstanding(nodes)
	fmt.Printf("admission — paper bound S = (n-1)*T_high + T_low + 1 = %d:\n", s)
	admitted := len(dones)
	for i := 0; ; i++ {
		_, done, err := d.Dispatch(tick(), lard.Request{Target: fmt.Sprintf("/burst%d", i)})
		if err != nil {
			fmt.Printf("  connection %d rejected: %v\n", admitted+1, err)
			break
		}
		dones = append(dones, done)
		admitted++
	}
	fmt.Printf("  admitted exactly %d connections before rejecting\n\n", admitted)
	for _, done := range dones {
		done()
	}

	fmt.Println("The same Dispatcher drives the live front end (internal/frontend),")
	fmt.Println("the cluster simulator (internal/cluster), and scales across cores")
	fmt.Println("with lard.WithShards — see examples/prototype and cmd/lardsim.")
}
